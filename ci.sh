#!/usr/bin/env bash
# Lightweight CI: the full tier-1 suite plus the sanitizer presets.
#
#   ./ci.sh            # default + ubsan(smt) + tsan(runtime) + asan(smt|runtime)
#   ./ci.sh default    # just one stage
#
# The ubsan stage exists because the BigInt small-value representation is
# built on overflow-checked native arithmetic — a missed signed-overflow
# edge must fail the build, not corrupt a SAT/UNSAT verdict. The asan
# stage covers the packed clause arena: raw-pointer propagation walks,
# compacting GC relocation, and lazily dropped watchers are heap-safety
# hazards by construction.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(default ubsan tsan asan)
fi

for preset in "${stages[@]}"; do
  echo "== ci: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

# Trace smoke: run the whole data/ suite through batch_runner with the
# structured trace enabled and validate that stdout and every trace line
# are well-formed JSON. Catches escaping/interleaving regressions that the
# unit tests' synthetic inputs might miss.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: trace smoke =="
  runner=""
  for candidate in build/examples/batch_runner build/default/examples/batch_runner; do
    [ -x "${candidate}" ] && runner="${candidate}" && break
  done
  if [ -z "${runner}" ]; then
    echo "ci: batch_runner binary not found" >&2
    exit 1
  fi
  trace_file=$(mktemp /tmp/psse_trace.XXXXXX.jsonl)
  trap 'rm -f "${trace_file}"' EXIT
  "${runner}" --threads "${jobs}" --portfolio 2 --trace "${trace_file}" data \
    | python3 -c '
import json, sys
n = 0
for line in sys.stdin:
    json.loads(line)  # malformed stdout line -> exception -> nonzero exit
    n += 1
assert n > 0, "batch_runner produced no output"
print(f"ci: {n} result lines OK")
'
  python3 -c '
import json, sys
n = 0
with open(sys.argv[1]) as f:
    for line in f:
        ev = json.loads(line)
        assert "ev" in ev and "t_us" in ev, f"missing envelope: {line!r}"
        n += 1
assert n > 0, "trace file is empty"
print(f"ci: {n} trace events OK")
' "${trace_file}"
else
  echo "== ci: trace smoke skipped (no python3) =="
fi

# Microbench smoke: the SMT microbenchmarks must still run and emit valid
# google-benchmark JSON under --json (one object, non-empty "benchmarks").
# A single repetition with a tiny time budget — this guards the harness and
# the bench registrations, not the timings.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: micro_smt smoke =="
  micro=""
  for candidate in build/bench/micro_smt build/default/bench/micro_smt; do
    [ -x "${candidate}" ] && micro="${candidate}" && break
  done
  if [ -z "${micro}" ]; then
    echo "ci: micro_smt binary not found" >&2
    exit 1
  fi
  "${micro}" --json --benchmark_min_time=0.01 \
      --benchmark_filter='BM_SimplexCheckFeasibility|BM_TheoryPropagation' \
    2>/dev/null | python3 -c '
import json, sys
d = json.load(sys.stdin)  # exactly one JSON object on stdout
names = [b["name"] for b in d["benchmarks"]]
assert names, "micro_smt reported no benchmarks"
for want in ("BM_SimplexCheckFeasibility/0", "BM_SimplexCheckFeasibility/1",
             "BM_TheoryPropagation/0", "BM_TheoryPropagation/1"):
    assert any(n.startswith(want) for n in names), f"missing {want}"
print(f"ci: micro_smt JSON OK ({len(names)} benchmarks)")
'
else
  echo "== ci: micro_smt smoke skipped (no python3) =="
fi
echo "== ci: all stages passed =="
