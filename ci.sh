#!/usr/bin/env bash
# Lightweight CI: the full tier-1 suite plus the sanitizer presets.
#
#   ./ci.sh            # default + ubsan(smt) + tsan(runtime) + asan(smt|runtime)
#   ./ci.sh default    # just one stage
#
# The ubsan stage exists because the BigInt small-value representation is
# built on overflow-checked native arithmetic — a missed signed-overflow
# edge must fail the build, not corrupt a SAT/UNSAT verdict. The asan
# stage covers the packed clause arena: raw-pointer propagation walks,
# compacting GC relocation, and lazily dropped watchers are heap-safety
# hazards by construction.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(default ubsan tsan asan)
fi

for preset in "${stages[@]}"; do
  echo "== ci: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done

# Trace smoke: run the whole data/ suite through batch_runner with the
# structured trace enabled and validate that stdout and every trace line
# are well-formed JSON. Catches escaping/interleaving regressions that the
# unit tests' synthetic inputs might miss.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: trace smoke =="
  runner=""
  for candidate in build/examples/batch_runner build/default/examples/batch_runner; do
    [ -x "${candidate}" ] && runner="${candidate}" && break
  done
  if [ -z "${runner}" ]; then
    echo "ci: batch_runner binary not found" >&2
    exit 1
  fi
  trace_file=$(mktemp /tmp/psse_trace.XXXXXX.jsonl)
  trap 'rm -f "${trace_file}"' EXIT
  "${runner}" --threads "${jobs}" --portfolio 2 --trace "${trace_file}" data \
    | python3 -c '
import json, sys
n = 0
for line in sys.stdin:
    json.loads(line)  # malformed stdout line -> exception -> nonzero exit
    n += 1
assert n > 0, "batch_runner produced no output"
print(f"ci: {n} result lines OK")
'
  python3 -c '
import json, sys
n = 0
with open(sys.argv[1]) as f:
    for line in f:
        ev = json.loads(line)
        assert "ev" in ev and "t_us" in ev, f"missing envelope: {line!r}"
        n += 1
assert n > 0, "trace file is empty"
print(f"ci: {n} trace events OK")
' "${trace_file}"
else
  echo "== ci: trace smoke skipped (no python3) =="
fi

# Cube-and-conquer cross-check: the whole data/ suite once through the
# warm serial service path and once through a 4-member cube-and-conquer
# portfolio. Cubes partition the search space, so every scenario's verdict
# must be bit-identical — a divergence here is a completeness bug in the
# cube tree (a cube lost, double-counted, or misattributed), never a
# tolerance issue.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: cube-and-conquer cross-check =="
  runner=""
  for candidate in build/examples/batch_runner build/default/examples/batch_runner; do
    [ -x "${candidate}" ] && runner="${candidate}" && break
  done
  if [ -z "${runner}" ]; then
    echo "ci: batch_runner binary not found" >&2
    exit 1
  fi
  { "${runner}" --threads "${jobs}" data; echo "===SPLIT==="; \
    "${runner}" --threads "${jobs}" --portfolio 4 --portfolio-mode cube data; } \
    | python3 -c '
import json, sys
runs = [{}]
for line in sys.stdin:
    line = line.strip()
    if line == "===SPLIT===":
        runs.append({})
        continue
    row = json.loads(line)
    assert "error" not in row, row
    runs[-1][row["scenario"]] = row["verdict"]
serial, cube = runs
assert serial and set(serial) == set(cube), "scenario sets diverged"
for name in sorted(serial):
    assert serial[name] == cube[name], \
        f"{name}: serial={serial[name]} cube={cube[name]}"
print(f"ci: cube-and-conquer verdicts identical across {len(serial)} scenarios")
'
else
  echo "== ci: cube-and-conquer cross-check skipped (no python3) =="
fi

# Service smoke: pipe a 20-request mixed workload (verify, server-side
# sweeps, interleaved stats) through the analytics server and validate
# every response line with an independent JSON parser. Catches protocol
# regressions — escaping, response ordering, in-band errors — that the
# unit tests' hand-built requests might miss, because the requests here
# are generated from the shipped data/ scenarios.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: analytics_server smoke =="
  server=""
  for candidate in build/examples/analytics_server \
                   build/default/examples/analytics_server; do
    [ -x "${candidate}" ] && server="${candidate}" && break
  done
  if [ -z "${server}" ]; then
    echo "ci: analytics_server binary not found" >&2
    exit 1
  fi
  python3 -c '
import json, os
reqs = []
scns = sorted(f for f in os.listdir("data") if f.endswith(".scn"))
# 8 file-backed verifies (one per shipped scenario)...
for i, name in enumerate(scns):
    reqs.append({"op": "verify", "id": f"v{i}",
                 "scenario_file": os.path.join("data", name)})
# ...two 4-point server-side sweeps (resource + secured axes)...
reqs.append({"op": "sweep", "id": "s0",
             "scenario_file": "data/ieee14_objective2.scn",
             "axis": "max-measurements", "values": [2, 4, 5, 8]})
reqs.append({"op": "sweep", "id": "s1",
             "scenario_file": "data/ieee14_objective2.scn",
             "axis": "secure-measurement", "values": [46, 1, 32, 12]})
# ...a repeat (must hit the result memo), an inline scenario, one
# in-band parse error, and a stats probe: 20 response lines total.
reqs.append({"op": "verify", "id": "rep",
             "scenario_file": "data/ieee14_objective2.scn"})
reqs.append({"op": "verify", "id": "inl",
             "scenario": "case ieee14\ntarget-only 12\n"
                         "max-measurements 6\n"})
reqs.append({"op": "verify", "id": "bad", "scenario": "caze nope\n"})
reqs.append({"op": "stats"})
print("\n".join(json.dumps(r) for r in reqs))
' | "${server}" --threads "${jobs}" | python3 -c '
import json, sys
lines = [json.loads(l) for l in sys.stdin]   # every line must parse
assert len(lines) == 20, f"expected 20 response lines, got {len(lines)}"
for l in lines:
    json.dumps(l)  # and re-serialise
    assert ("verdict" in l) or (l.get("ok") is False) or ("requests" in l), l
errors = [l for l in lines if l.get("ok") is False]
# The malformed scenario fails at parse time, before it has an id or
# reaches the service: one in-band error line, id empty.
assert len(errors) == 1 and errors[0]["id"] == "", errors
sweep0 = {l["sweep_index"]: l["verdict"]
          for l in lines if l.get("id", "").startswith("s0[")}
assert sweep0 == {0: "unsat", 1: "unsat", 2: "sat", 3: "sat"}, sweep0
rep = [l for l in lines if l.get("id") == "rep"]
assert len(rep) == 1 and rep[0]["memo_hit"], rep
# 9 verifies + inline + 2x4 sweep points reached the service; the parse
# error did not.
stats = lines[-1]
assert stats["requests"] == 18 and stats["errors"] == 0, stats
p99, hits = stats["solve_p99_us"], stats["session_hits"]
print(f"ci: analytics_server {len(lines)} response lines OK "
      f"(p99 solve {p99} us, session hits {hits})")
'
else
  echo "== ci: analytics_server smoke skipped (no python3) =="
fi

# Microbench smoke: the SMT microbenchmarks must still run and emit valid
# google-benchmark JSON under --json (one object, non-empty "benchmarks").
# A single repetition with a tiny time budget — this guards the harness and
# the bench registrations, not the timings.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: micro_smt smoke =="
  micro=""
  for candidate in build/bench/micro_smt build/default/bench/micro_smt; do
    [ -x "${candidate}" ] && micro="${candidate}" && break
  done
  if [ -z "${micro}" ]; then
    echo "ci: micro_smt binary not found" >&2
    exit 1
  fi
  "${micro}" --json --benchmark_min_time=0.01 \
      --benchmark_filter='BM_SimplexCheckFeasibility|BM_TheoryPropagation|BM_SimplexFloatFilter|BM_LpScreen|BM_SimplexFactorUpdate|BM_Ftran|BM_RationalNormalizeCanonical' \
    2>/dev/null | python3 -c '
import json, sys
d = json.load(sys.stdin)  # exactly one JSON object on stdout
names = [b["name"] for b in d["benchmarks"]]
assert names, "micro_smt reported no benchmarks"
for want in ("BM_SimplexCheckFeasibility/0", "BM_SimplexCheckFeasibility/1",
             "BM_TheoryPropagation/0", "BM_TheoryPropagation/1",
             "BM_SimplexFloatFilter/0", "BM_SimplexFloatFilter/1",
             "BM_LpScreen/0", "BM_LpScreen/1",
             "BM_SimplexFactorUpdate/0", "BM_SimplexFactorUpdate/1",
             "BM_Ftran/4", "BM_Ftran/64", "BM_Ftran/1024",
             "BM_RationalNormalizeCanonical/0",
             "BM_RationalNormalizeCanonical/1"):
    assert any(n.startswith(want) for n in names), f"missing {want}"
print(f"ci: micro_smt JSON OK ({len(names)} benchmarks)")
'
else
  echo "== ci: micro_smt smoke skipped (no python3) =="
fi

# Float-filter + screen + eta cross-check: the full fig4a suite once with
# the double-precision filter (default, LP screen annotating each row,
# eta-factorised tableau), once exact-only, once with --no-screen, and
# once with --no-eta (eager row substitution), asserting the verdict of
# every experiment is bit-identical across all four runs. The filter
# certifies every visible verdict on the exact DeltaRational state, the
# screen is a pure front-end that may only prove Unsat, and the eta file
# is a pure representation change whose float mirrors are composed
# identically in both modes — so ANY divergence here is a soundness bug,
# not a tolerance issue. The screened run additionally proves the screen's
# Infeasible claims agree with the solver: every row it marks screened=1
# must carry an unsat verdict.
if command -v python3 >/dev/null 2>&1; then
  echo "== ci: fig4a float-filter/screen/eta cross-check =="
  fig4a=""
  for candidate in build/bench/fig4a_verification_scaling \
                   build/default/bench/fig4a_verification_scaling; do
    [ -x "${candidate}" ] && fig4a="${candidate}" && break
  done
  if [ -z "${fig4a}" ]; then
    echo "ci: fig4a_verification_scaling binary not found" >&2
    exit 1
  fi
  { "${fig4a}" --json; echo "===SPLIT==="; "${fig4a}" --json --exact-simplex; \
    echo "===SPLIT==="; "${fig4a}" --json --no-screen; \
    echo "===SPLIT==="; "${fig4a}" --json --no-eta; } \
    | python3 -c '
import json, sys
runs = [{}]
screened = 0
eager_etas = 0
for line in sys.stdin:
    line = line.strip()
    if line == "===SPLIT===":
        runs.append({})
        continue
    if not line.startswith("{"):
        continue
    row = json.loads(line)
    if row.get("bench") == "fig4a" and "verdict" in row:
        runs[-1][row["case"]] = row["verdict"]
        if len(runs) == 1 and row.get("screened"):
            screened += 1
            assert row["verdict"] == "unsat", \
                f"screen claimed infeasible on a sat case: {row}"
        if len(runs) == 4:
            eager_etas += row.get("eta_updates", 0)
filtered, exact, unscreened, eager = runs
assert filtered and \
    set(filtered) == set(exact) == set(unscreened) == set(eager), \
    "case sets diverged"
assert eager_etas == 0, \
    f"--no-eta run still recorded {eager_etas} eta updates"
for case, verdict in sorted(filtered.items()):
    assert verdict == exact[case] == unscreened[case] == eager[case], \
        f"{case}: filtered={verdict} exact={exact[case]} " \
        f"unscreened={unscreened[case]} eager={eager[case]}"
print(f"ci: fig4a verdicts identical across {len(filtered)} experiments "
      f"x 4 modes ({screened} screen-proved)")
'
else
  echo "== ci: fig4a cross-check skipped (no python3) =="
fi

# Screen soundness gate: screen_sweep replays the ieee300 secured sweep
# with the LP screen on and off and exits nonzero if any verdict differs
# (or if the screened pass fails to be faster). This is the sweep where
# the screen actually fires — fig4a above covers the all-feasible side.
echo "== ci: screen_sweep soundness gate =="
sweep=""
for candidate in build/bench/screen_sweep build/default/bench/screen_sweep; do
  [ -x "${candidate}" ] && sweep="${candidate}" && break
done
if [ -z "${sweep}" ]; then
  echo "ci: screen_sweep binary not found" >&2
  exit 1
fi
"${sweep}"
echo "== ci: all stages passed =="
