#!/usr/bin/env bash
# Lightweight CI: the full tier-1 suite plus both sanitizer presets.
#
#   ./ci.sh            # default + ubsan(smt) + tsan(runtime)
#   ./ci.sh default    # just one stage
#
# The ubsan stage exists because the BigInt small-value representation is
# built on overflow-checked native arithmetic — a missed signed-overflow
# edge must fail the build, not corrupt a SAT/UNSAT verdict.
set -euo pipefail
cd "$(dirname "$0")"

jobs=$(nproc 2>/dev/null || echo 4)
stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
  stages=(default ubsan tsan)
fi

for preset in "${stages[@]}"; do
  echo "== ci: ${preset} =="
  cmake --preset "${preset}"
  cmake --build --preset "${preset}" -j "${jobs}"
  ctest --preset "${preset}" -j "${jobs}"
done
echo "== ci: all stages passed =="
