// Dense linear algebra for the power-system substrate.
//
// The estimation pipeline needs only modest dense kernels: multiplication,
// transpose, LU with partial pivoting (for B*theta = P power-flow solves and
// general inverses), Cholesky (for the WLS normal equations, whose gain
// matrix H^T W H is symmetric positive definite on observable systems), and
// numeric rank (observability analysis). Everything is double precision —
// exactness matters in the SMT attack model, not here, mirroring real EMS
// estimators.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <stdexcept>
#include <string>
#include <vector>

namespace psse::grid {

/// Error thrown on dimension mismatches and singular systems.
class LinAlgError : public std::runtime_error {
 public:
  explicit LinAlgError(const std::string& what) : std::runtime_error(what) {}
};

class Vector {
 public:
  Vector() = default;
  explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}
  Vector(std::initializer_list<double> init) : data_(init) {}

  [[nodiscard]] std::size_t size() const { return data_.size(); }
  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  Vector& operator+=(const Vector& rhs);
  Vector& operator-=(const Vector& rhs);
  Vector& operator*=(double k);
  friend Vector operator+(Vector a, const Vector& b) { return a += b; }
  friend Vector operator-(Vector a, const Vector& b) { return a -= b; }
  friend Vector operator*(Vector a, double k) { return a *= k; }
  friend Vector operator*(double k, Vector a) { return a *= k; }

  /// Euclidean norm.
  [[nodiscard]] double norm2() const;
  /// Dot product.
  [[nodiscard]] double dot(const Vector& rhs) const;
  /// Largest |element|.
  [[nodiscard]] double max_abs() const;

 private:
  std::vector<double> data_;
};

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Identity matrix.
  static Matrix identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Matrix diagonal(const Vector& d);

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  [[nodiscard]] Matrix transposed() const;
  [[nodiscard]] Matrix operator*(const Matrix& rhs) const;
  [[nodiscard]] Vector operator*(const Vector& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator-=(const Matrix& rhs);
  friend Matrix operator+(Matrix a, const Matrix& b) { return a += b; }
  friend Matrix operator-(Matrix a, const Matrix& b) { return a -= b; }

  /// Solves A x = b by LU with partial pivoting. Throws LinAlgError on
  /// dimension mismatch or (numerically) singular A.
  [[nodiscard]] Vector lu_solve(const Vector& b) const;
  /// Solves A X = B column-wise.
  [[nodiscard]] Matrix lu_solve(const Matrix& b) const;
  /// Inverse via LU. Throws on singular input.
  [[nodiscard]] Matrix inverse() const;

  /// Solves A x = b by Cholesky; A must be symmetric positive definite.
  [[nodiscard]] Vector cholesky_solve(const Vector& b) const;

  /// Numeric rank via Gaussian elimination with the given relative
  /// tolerance on pivots.
  [[nodiscard]] std::size_t rank(double tol = 1e-9) const;

  /// Max |entry|, used in residual/stealthiness checks.
  [[nodiscard]] double max_abs() const;

  friend std::ostream& operator<<(std::ostream& os, const Matrix& m);

 private:
  // Factorises into L\U (packed) with row permutation; returns false when a
  // pivot underflows the tolerance.
  bool lu_factor(std::vector<double>& lu, std::vector<std::size_t>& perm)
      const;

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace psse::grid
