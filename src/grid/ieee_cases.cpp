#include "grid/ieee_cases.h"

#include <cmath>
#include <random>

namespace psse::grid::cases {

namespace {

struct BranchX {
  int from;  // 1-based
  int to;    // 1-based
  double x;  // reactance (p.u.); admittance = 1/x
};

void add_branches(Grid& grid, const std::vector<BranchX>& branches) {
  for (const BranchX& br : branches) {
    grid.add_line(br.from - 1, br.to - 1, 1.0 / br.x);
  }
}

void set_loads(Grid& grid, const std::vector<std::pair<int, double>>& pdMw,
               const std::vector<std::pair<int, double>>& pgMw) {
  for (auto [bus, mw] : pdMw) grid.bus(bus - 1).injection -= mw / 100.0;
  for (auto [bus, mw] : pgMw) grid.bus(bus - 1).injection += mw / 100.0;
}

}  // namespace

Grid ieee14() {
  Grid grid(14);
  // Paper Table II: line admittances directly (not reactances).
  struct Adm {
    int from, to;
    double y;
  };
  const Adm lines[] = {
      {1, 2, 16.90}, {1, 5, 4.48},  {2, 3, 5.05},  {2, 4, 5.67},
      {2, 5, 5.75},  {3, 4, 5.85},  {4, 5, 23.75}, {4, 7, 4.78},
      {4, 9, 1.80},  {5, 6, 3.97},  {6, 11, 5.03}, {6, 12, 3.91},
      {6, 13, 7.68}, {7, 8, 5.68},  {7, 9, 9.09},  {9, 10, 11.83},
      {9, 14, 3.70}, {10, 11, 5.21}, {12, 13, 5.00}, {13, 14, 2.87},
  };
  for (const Adm& a : lines) grid.add_line(a.from - 1, a.to - 1, a.y);
  // Table II: lines 5 (2-5) and 13 (6-13) are not part of the core
  // topology — they may be opened, so exclusion attacks can target them.
  grid.line(4).fixed = false;
  grid.line(12).fixed = false;
  // Standard case14 loads/generation (MW, 100 MVA base).
  set_loads(grid,
            {{2, 21.7},
             {3, 94.2},
             {4, 47.8},
             {5, 7.6},
             {6, 11.2},
             {9, 29.5},
             {10, 9.0},
             {11, 3.5},
             {12, 6.1},
             {13, 13.5},
             {14, 14.9}},
            {{1, 232.4}, {2, 40.0}});
  grid.validate();
  return grid;
}

MeasurementPlan paper_plan14(const Grid& grid) {
  MeasurementPlan plan(grid.num_lines(), grid.num_buses());
  // Table III, 1-based measurement ids.
  for (int id : {5, 10, 14, 19, 22, 27, 30, 35, 43, 52}) {
    plan.set_taken(id - 1, false);
  }
  // Table III lists {1,2,6,15,25,32,41} as secured, but the paper's own
  // attack objective 2 (Section III-I) alters measurement 32 — internally
  // inconsistent, since Eq. (19) forbids altering secured measurements.
  // The case studies only reproduce with 32 unsecured, so we omit it and
  // record the discrepancy in DESIGN.md §4.
  for (int id : {1, 2, 6, 15, 25, 41}) {
    plan.set_secured(id - 1, true);
  }
  return plan;
}

Grid ieee30() {
  Grid grid(30);
  const std::vector<BranchX> branches = {
      {1, 2, 0.0575},  {1, 3, 0.1652},  {2, 4, 0.1737},  {3, 4, 0.0379},
      {2, 5, 0.1983},  {2, 6, 0.1763},  {4, 6, 0.0414},  {5, 7, 0.1160},
      {6, 7, 0.0820},  {6, 8, 0.0420},  {6, 9, 0.2080},  {6, 10, 0.5560},
      {9, 11, 0.2080}, {9, 10, 0.1100}, {4, 12, 0.2560}, {12, 13, 0.1400},
      {12, 14, 0.2559}, {12, 15, 0.1304}, {12, 16, 0.1987}, {14, 15, 0.1997},
      {16, 17, 0.1923}, {15, 18, 0.2185}, {18, 19, 0.1292}, {19, 20, 0.0680},
      {10, 20, 0.2090}, {10, 17, 0.0845}, {10, 21, 0.0749}, {10, 22, 0.1499},
      {21, 22, 0.0236}, {15, 23, 0.2020}, {22, 24, 0.1790}, {23, 24, 0.2700},
      {24, 25, 0.3292}, {25, 26, 0.3800}, {25, 27, 0.2087}, {28, 27, 0.3960},
      {27, 29, 0.2198}, {27, 30, 0.3202}, {29, 30, 0.4593}, {8, 28, 0.2000},
      {6, 28, 0.0599},
  };
  add_branches(grid, branches);
  // A handful of parallel-path lines are switchable (non-core), giving the
  // topology attacker something to work with, as in the 14-bus case.
  for (LineId i : {11, 24, 31, 38}) grid.line(i).fixed = false;
  set_loads(grid,
            {{2, 21.7}, {3, 2.4},  {4, 7.6},   {5, 94.2},  {7, 22.8},
             {8, 30.0}, {10, 5.8}, {12, 11.2}, {14, 6.2},  {15, 8.2},
             {16, 3.5}, {17, 9.0}, {18, 3.2},  {19, 9.5},  {20, 2.2},
             {21, 17.5}, {23, 3.2}, {24, 8.7},  {26, 3.5},  {29, 2.4},
             {30, 10.6}},
            {{1, 260.0}, {2, 40.0}, {22, 21.6}, {27, 26.9}});
  grid.validate();
  return grid;
}

Grid ieee57() {
  Grid grid(57);
  // Standard 57-bus topology; reactances approximate the published case
  // data within the IEEE range (see DESIGN.md §5).
  const std::vector<BranchX> branches = {
      {1, 2, 0.0280},  {2, 3, 0.0850},  {3, 4, 0.0366},  {4, 5, 0.1320},
      {4, 6, 0.1480},  {6, 7, 0.1020},  {6, 8, 0.1730},  {8, 9, 0.0505},
      {9, 10, 0.1679}, {9, 11, 0.0848}, {9, 12, 0.2950}, {9, 13, 0.1580},
      {13, 14, 0.0434}, {13, 15, 0.0869}, {1, 15, 0.0910}, {1, 16, 0.2060},
      {1, 17, 0.1080}, {3, 15, 0.0530},  {4, 18, 0.5550}, {4, 18, 0.4300},
      {5, 6, 0.0641},  {7, 8, 0.0712},   {10, 12, 0.1262}, {11, 13, 0.0732},
      {12, 13, 0.0580}, {12, 16, 0.0813}, {12, 17, 0.1790}, {14, 15, 0.0547},
      {18, 19, 0.6850}, {19, 20, 0.4340}, {21, 20, 0.7767}, {21, 22, 0.1170},
      {22, 23, 0.0152}, {23, 24, 0.2560}, {24, 25, 1.1820}, {24, 25, 1.2300},
      {24, 26, 0.0473}, {26, 27, 0.2540}, {27, 28, 0.0954}, {28, 29, 0.0587},
      {7, 29, 0.0648},  {25, 30, 0.2020}, {30, 31, 0.4970}, {31, 32, 0.7550},
      {32, 33, 0.0360}, {34, 32, 0.9530}, {34, 35, 0.0780}, {35, 36, 0.0537},
      {36, 37, 0.0366}, {37, 38, 0.1009}, {37, 39, 0.0379}, {36, 40, 0.0466},
      {22, 38, 0.0295}, {11, 41, 0.7490}, {41, 42, 0.3520}, {41, 43, 0.4120},
      {38, 44, 0.0585}, {15, 45, 0.1042}, {14, 46, 0.0735}, {46, 47, 0.0680},
      {47, 48, 0.0233}, {48, 49, 0.1290}, {49, 50, 0.1280}, {50, 51, 0.2200},
      {10, 51, 0.0712}, {13, 49, 0.1910}, {29, 52, 0.1870}, {52, 53, 0.0984},
      {53, 54, 0.2320}, {54, 55, 0.2265}, {11, 43, 0.1530}, {44, 45, 0.1242},
      {40, 56, 1.1950}, {56, 41, 0.5490}, {56, 42, 0.3540}, {39, 57, 1.3550},
      {57, 56, 0.2600}, {38, 49, 0.1770}, {38, 48, 0.0482}, {9, 55, 0.1205},
  };
  add_branches(grid, branches);
  for (LineId i : {19, 35, 54, 66, 72, 79}) grid.line(i).fixed = false;
  // Representative loads (MW): the large consumers of the published case.
  set_loads(grid,
            {{1, 55.0},  {2, 3.0},   {3, 41.0},  {5, 13.0},  {6, 75.0},
             {8, 150.0}, {9, 121.0}, {10, 5.0},  {12, 377.0}, {13, 18.0},
             {14, 10.5}, {15, 22.0}, {16, 43.0}, {17, 42.0},  {18, 27.2},
             {19, 3.3},  {20, 2.3},  {23, 6.3},  {25, 6.3},   {27, 9.3},
             {28, 4.6},  {29, 17.0}, {30, 3.6},  {31, 5.8},   {32, 1.6},
             {33, 3.8},  {35, 6.0},  {38, 14.0}, {41, 6.3},   {42, 7.1},
             {43, 2.0},  {44, 12.0}, {47, 29.7}, {49, 18.0},  {50, 21.0},
             {51, 18.0}, {52, 4.9},  {53, 20.0}, {54, 4.1},   {55, 6.8},
             {56, 7.6},  {57, 6.7}},
            {{1, 478.0}, {2, 0.0}, {3, 40.0}, {6, 0.0}, {8, 450.0},
             {9, 0.0},   {12, 310.0}});
  grid.validate();
  return grid;
}

Grid synthetic(int buses, int lines, std::uint64_t seed) {
  if (buses < 2 || lines < buses - 1) {
    throw GridError("synthetic: need at least a spanning tree");
  }
  std::mt19937_64 rng(seed);
  Grid grid(buses);
  auto admittance = [&]() {
    std::uniform_real_distribution<double> d(2.0, 24.0);
    return d(rng);
  };
  // Spanning tree with locality: bus i attaches to a nearby earlier bus,
  // giving the chain-of-neighbourhoods look of real transmission systems.
  for (int i = 1; i < buses; ++i) {
    int lo = std::max(0, i - 6);
    std::uniform_int_distribution<int> pick(lo, i - 1);
    grid.add_line(pick(rng), i, admittance());
  }
  // Chords: mostly local redundancy, occasionally a long tie-line.
  int guard = 0;
  while (grid.num_lines() < lines && guard < 100 * lines) {
    ++guard;
    std::uniform_int_distribution<int> pickA(0, buses - 1);
    int a = pickA(rng);
    int b;
    if (rng() % 8 == 0) {
      b = pickA(rng);  // long-distance tie
    } else {
      std::uniform_int_distribution<int> near(std::max(0, a - 8),
                                              std::min(buses - 1, a + 8));
      b = near(rng);
    }
    if (a == b) continue;
    // Avoid exact duplicates (parallel circuits exist but keep them rare).
    bool dup = false;
    for (LineId i : grid.lines_at(a)) {
      const Line& l = grid.line(i);
      if ((l.from == a && l.to == b) || (l.from == b && l.to == a)) {
        dup = true;
        break;
      }
    }
    if (dup) continue;
    grid.add_line(std::min(a, b), std::max(a, b), admittance());
  }
  // ~8% of lines are switchable (non-core).
  for (LineId i = 0; i < grid.num_lines(); ++i) {
    if (rng() % 12 == 0) grid.line(i).fixed = false;
  }
  // Injections: random loads, balanced by spread-out generation.
  std::uniform_real_distribution<double> load(0.05, 0.8);
  double total = 0.0;
  for (BusId b = 1; b < buses; ++b) {
    double p = -load(rng);
    grid.bus(b).injection = p;
    total += p;
  }
  // A few generator buses absorb the total.
  int nGen = std::max(2, buses / 15);
  for (int g = 0; g < nGen; ++g) {
    std::uniform_int_distribution<int> pick(0, buses - 1);
    grid.bus(pick(rng)).injection += -total / nGen;
  }
  grid.validate();
  return grid;
}

Grid ieee118_like() { return synthetic(118, 186, 118118); }

Grid ieee300_like() { return synthetic(300, 411, 300300); }

Grid by_name(const std::string& name) {
  if (name == "ieee14") return ieee14();
  if (name == "ieee30") return ieee30();
  if (name == "ieee57") return ieee57();
  if (name == "ieee118") return ieee118_like();
  if (name == "ieee300") return ieee300_like();
  throw GridError("by_name: unknown case '" + name + "'");
}

std::vector<std::string> standard_names() {
  return {"ieee14", "ieee30", "ieee57", "ieee118", "ieee300"};
}

}  // namespace psse::grid::cases
