#include "grid/grid.h"

#include <queue>

namespace psse::grid {

Grid::Grid(int numBuses) {
  if (numBuses <= 0) throw GridError("Grid: bus count must be positive");
  buses_.resize(static_cast<std::size_t>(numBuses));
  incidence_.resize(static_cast<std::size_t>(numBuses));
  for (int b = 0; b < numBuses; ++b) {
    buses_[static_cast<std::size_t>(b)].name = "bus" + std::to_string(b + 1);
  }
}

void Grid::check_bus(BusId b, const char* who) const {
  if (b < 0 || b >= num_buses()) {
    throw GridError(std::string(who) + ": bus id out of range");
  }
}

LineId Grid::add_line(BusId from, BusId to, double admittance) {
  Line l;
  l.from = from;
  l.to = to;
  l.admittance = admittance;
  return add_line(std::move(l));
}

LineId Grid::add_line(Line line) {
  check_bus(line.from, "add_line");
  check_bus(line.to, "add_line");
  if (line.from == line.to) throw GridError("add_line: self loop");
  if (line.admittance <= 0.0) {
    throw GridError("add_line: admittance must be positive");
  }
  LineId id = static_cast<LineId>(lines_.size());
  incidence_[static_cast<std::size_t>(line.from)].push_back(id);
  incidence_[static_cast<std::size_t>(line.to)].push_back(id);
  lines_.push_back(std::move(line));
  return id;
}

const Line& Grid::line(LineId i) const {
  if (i < 0 || i >= num_lines()) throw GridError("line: id out of range");
  return lines_[static_cast<std::size_t>(i)];
}

Line& Grid::line(LineId i) {
  if (i < 0 || i >= num_lines()) throw GridError("line: id out of range");
  return lines_[static_cast<std::size_t>(i)];
}

const Bus& Grid::bus(BusId b) const {
  check_bus(b, "bus");
  return buses_[static_cast<std::size_t>(b)];
}

Bus& Grid::bus(BusId b) {
  check_bus(b, "bus");
  return buses_[static_cast<std::size_t>(b)];
}

const std::vector<LineId>& Grid::lines_at(BusId b) const {
  check_bus(b, "lines_at");
  return incidence_[static_cast<std::size_t>(b)];
}

int Grid::in_service_degree(BusId b) const {
  check_bus(b, "in_service_degree");
  int deg = 0;
  for (LineId i : incidence_[static_cast<std::size_t>(b)]) {
    if (lines_[static_cast<std::size_t>(i)].in_service) ++deg;
  }
  return deg;
}

double Grid::average_degree() const {
  int total = 0;
  for (const Line& l : lines_) {
    if (l.in_service) total += 2;
  }
  return static_cast<double>(total) / num_buses();
}

bool Grid::is_connected() const {
  std::vector<bool> seen(static_cast<std::size_t>(num_buses()), false);
  std::queue<BusId> frontier;
  frontier.push(0);
  seen[0] = true;
  int reached = 1;
  while (!frontier.empty()) {
    BusId b = frontier.front();
    frontier.pop();
    for (LineId i : incidence_[static_cast<std::size_t>(b)]) {
      const Line& l = lines_[static_cast<std::size_t>(i)];
      if (!l.in_service) continue;
      BusId other = l.from == b ? l.to : l.from;
      if (!seen[static_cast<std::size_t>(other)]) {
        seen[static_cast<std::size_t>(other)] = true;
        ++reached;
        frontier.push(other);
      }
    }
  }
  return reached == num_buses();
}

void Grid::validate() const {
  for (const Line& l : lines_) {
    if (l.from < 0 || l.from >= num_buses() || l.to < 0 ||
        l.to >= num_buses() || l.from == l.to || l.admittance <= 0.0) {
      throw GridError("validate: malformed line");
    }
    if (!l.in_service && l.fixed) {
      throw GridError(
          "validate: a core-topology (fixed) line cannot be out of service");
    }
  }
}

}  // namespace psse::grid
