// DC measurement-model (Jacobian) construction: H = [DA; -DA; A^T DA].
//
// Rows follow the paper's measurement ordering restricted to *taken*
// measurements; columns are bus angles. The builder honours the mapped
// topology: an unmapped line contributes zero rows for its flows and is
// absent from incident buses' injection rows — precisely the model the
// estimator runs against after a topology-poisoning attack.
#pragma once

#include <vector>

#include "grid/grid.h"
#include "grid/matrix.h"
#include "grid/measurement.h"
#include "grid/topology_processor.h"

namespace psse::grid {

struct JacobianModel {
  /// Rows = taken measurements (in MeasId order), cols = buses.
  Matrix h;
  /// Row r of `h` corresponds to measurement row_meas[r].
  std::vector<MeasId> row_meas;
  /// Inverse map: measurement id -> row of `h`, or -1 when untaken.
  std::vector<int> meas_row;
};

/// Builds the estimator's H for the given mapped topology.
[[nodiscard]] JacobianModel build_jacobian(const Grid& grid,
                                           const MeasurementPlan& plan,
                                           const MappedTopology& topo);

/// Convenience: H for the true topology.
[[nodiscard]] JacobianModel build_jacobian(const Grid& grid,
                                           const MeasurementPlan& plan);

/// Restricts a full-length telemetry vector to the taken rows of a model.
[[nodiscard]] Vector restrict_to_rows(const JacobianModel& model,
                                      const Vector& full);

}  // namespace psse::grid
