// Standard IEEE test systems and synthetic large grids.
//
// - ieee14(): exactly the paper's Table II (line admittances, core-topology
//   flags for lines 5 and 13) plus standard case14 loads; paper_plan14()
//   reproduces Table III's taken/secured measurement configuration.
// - ieee30()/ieee57(): the standard test-system topologies with branch
//   reactances from the common MATPOWER case data (57-bus reactances are
//   approximate within the IEEE range; see DESIGN.md §5 — the evaluation
//   depends on size/degree/redundancy, not individual impedances).
// - ieee118_like()/ieee300_like(): deterministic synthetic systems matching
//   the published bus/branch counts and the ~3 average-degree structural
//   invariant the paper cites [16], standing in for the full datasets.
#pragma once

#include <string>
#include <vector>

#include "grid/grid.h"
#include "grid/measurement.h"

namespace psse::grid::cases {

/// IEEE 14-bus system, Table II of the paper (20 lines).
[[nodiscard]] Grid ieee14();
/// The paper's Table III measurement plan for ieee14(): all 54 potential
/// measurements taken except {5,10,14,19,22,27,30,35,43,52} (1-based);
/// {1,2,6,15,25,32,41} secured; everything accessible.
[[nodiscard]] MeasurementPlan paper_plan14(const Grid& grid);

/// IEEE 30-bus system (41 lines).
[[nodiscard]] Grid ieee30();
/// IEEE 57-bus system (80 lines).
[[nodiscard]] Grid ieee57();
/// Synthetic 118-bus / 186-line system (deterministic).
[[nodiscard]] Grid ieee118_like();
/// Synthetic 300-bus / 411-line system (deterministic).
[[nodiscard]] Grid ieee300_like();

/// Deterministic synthetic grid: a connected "ring of neighbourhoods with
/// chords" topology with `lines` branches over `buses` buses, admittances
/// in the IEEE range [2, 24], randomised injections that sum to ~0, and a
/// small fraction of non-core (switchable) lines.
[[nodiscard]] Grid synthetic(int buses, int lines, std::uint64_t seed);

/// Case registry used by benches: "ieee14", "ieee30", "ieee57",
/// "ieee118", "ieee300".
[[nodiscard]] Grid by_name(const std::string& name);
[[nodiscard]] std::vector<std::string> standard_names();

}  // namespace psse::grid::cases
