#include "grid/synthetic.h"

#include "grid/ieee_cases.h"

namespace psse::grid::cases {

const std::vector<SyntheticSpec>& synthetic_specs() {
  // Line counts keep the ~2.9 average degree of the IEEE registry (lines ~=
  // 1.45 * buses); seeds are fixed so every run, every machine, and both
  // sides of an A/B comparison see bit-identical topologies. The 85%
  // measurement density matches the realistic-deployment band the paper
  // sweeps in Fig. 4(b) (70%-100%).
  static const std::vector<SyntheticSpec> kSpecs = {
      {"synth600", 600, 870, 600600, 0.85, 601},
      {"synth1000", 1000, 1450, 10001000, 0.85, 1001},
      {"synth1500", 1500, 2175, 15001500, 0.85, 1501},
  };
  return kSpecs;
}

std::vector<std::string> synthetic_names() {
  std::vector<std::string> names;
  names.reserve(synthetic_specs().size());
  for (const SyntheticSpec& s : synthetic_specs()) names.push_back(s.name);
  return names;
}

const SyntheticSpec& synthetic_spec(const std::string& name) {
  for (const SyntheticSpec& s : synthetic_specs()) {
    if (s.name == name) return s;
  }
  throw GridError("synthetic_spec: unknown case '" + name + "'");
}

Grid synthetic_by_name(const std::string& name) {
  const SyntheticSpec& s = synthetic_spec(name);
  return synthetic(s.buses, s.lines, s.seed);
}

}  // namespace psse::grid::cases
