// Named large synthetic grid cases for the scaling experiments.
//
// The IEEE registry (ieee_cases.h) tops out at 300 buses; the eta-tableau
// and screening work is sized on grids several times larger. This registry
// names deterministic 600/1000/1500-bus cases built by cases::synthetic()
// with the ~3 average-degree structural invariant of real transmission
// systems, plus the measurement density a realistic SCADA deployment
// provides (a fraction of the potential flow/injection meters, not all of
// them — data/synthetic_cases.json records the exact parameters).
//
// Layering: this header stays below est/ (no observability check here).
// Drawing an *observable* plan at the recorded density needs the est layer
// and lives with the callers (bench::observable_fraction_plan).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "grid/grid.h"

namespace psse::grid::cases {

/// One named synthetic case: the generator parameters plus the measurement
/// density its experiments run at. All values are mirrored in
/// data/synthetic_cases.json (kept in sync by GridSynthetic.ManifestMatches).
struct SyntheticSpec {
  std::string name;
  int buses = 0;
  int lines = 0;
  std::uint64_t seed = 0;
  /// Fraction of potential measurements a realistic deployment takes
  /// (benches re-seed the draw until observable).
  double meas_fraction = 0.0;
  /// Seed for the measurement draw (distinct from the topology seed so
  /// density sweeps can vary one without the other).
  std::uint64_t meas_seed = 0;
};

/// The registry, smallest first: synth600, synth1000, synth1500.
[[nodiscard]] const std::vector<SyntheticSpec>& synthetic_specs();

/// Registry names, in registry order.
[[nodiscard]] std::vector<std::string> synthetic_names();

/// Spec lookup by name; throws GridError on unknown names.
[[nodiscard]] const SyntheticSpec& synthetic_spec(const std::string& name);

/// Builds the named case (deterministic). Throws GridError on unknown
/// names.
[[nodiscard]] Grid synthetic_by_name(const std::string& name);

}  // namespace psse::grid::cases
