// The power-grid model: buses, transmission lines, and switching state.
//
// Buses and lines are 0-based internally; the paper (and our scenario file
// format) is 1-based, so I/O layers translate at the boundary. A Line's
// `in_service` flag is the *true* breaker status — what the topology
// processor would map if nobody tampered with the telemetry. The paper's
// topology attributes (core/fixed lines `fl_i`, secured statuses `sl_i`)
// live here too since they are physical/operational facts about the grid.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace psse::grid {

/// Error thrown on malformed grid construction or out-of-range queries.
class GridError : public std::runtime_error {
 public:
  explicit GridError(const std::string& what) : std::runtime_error(what) {}
};

using BusId = int;
using LineId = int;

struct Line {
  BusId from = -1;
  BusId to = -1;
  /// Series admittance (1/reactance) in per unit, as used by the DC model.
  double admittance = 0.0;
  /// True breaker status: is the line actually energised?
  bool in_service = true;
  /// Part of the core topology (paper `fl_i`): never opened, so exclusion
  /// attacks on it are impossible.
  bool fixed = true;
  /// Topology status telemetry is integrity-protected (paper `sl_i`).
  bool status_secured = false;
};

struct Bus {
  std::string name;
  /// Net injection (generation - load) in per unit, used to synthesise
  /// operating points via DC power flow.
  double injection = 0.0;
};

class Grid {
 public:
  /// Creates a grid with `numBuses` unnamed buses and no lines.
  explicit Grid(int numBuses);

  [[nodiscard]] int num_buses() const { return static_cast<int>(buses_.size()); }
  [[nodiscard]] int num_lines() const { return static_cast<int>(lines_.size()); }

  /// Adds a line; returns its id. Throws GridError on bad endpoints,
  /// self-loops, or non-positive admittance.
  LineId add_line(BusId from, BusId to, double admittance);
  LineId add_line(Line line);

  [[nodiscard]] const Line& line(LineId i) const;
  [[nodiscard]] Line& line(LineId i);
  [[nodiscard]] const Bus& bus(BusId b) const;
  [[nodiscard]] Bus& bus(BusId b);
  [[nodiscard]] const std::vector<Line>& lines() const { return lines_; }

  /// Lines incident to bus b (any direction, regardless of service state).
  [[nodiscard]] const std::vector<LineId>& lines_at(BusId b) const;
  /// Degree of bus b counting only in-service lines.
  [[nodiscard]] int in_service_degree(BusId b) const;
  /// Average bus degree over in-service lines — the paper cites ~3 for
  /// real grids [16]; the synthetic generator targets this.
  [[nodiscard]] double average_degree() const;

  /// True iff the in-service subgraph connects all buses.
  [[nodiscard]] bool is_connected() const;

  /// Throws GridError if any invariant is broken (duplicate parallel lines
  /// are allowed, matching real systems).
  void validate() const;

 private:
  void check_bus(BusId b, const char* who) const;

  std::vector<Bus> buses_;
  std::vector<Line> lines_;
  std::vector<std::vector<LineId>> incidence_;
};

}  // namespace psse::grid
