#include "grid/jacobian.h"

namespace psse::grid {

JacobianModel build_jacobian(const Grid& grid, const MeasurementPlan& plan,
                             const MappedTopology& topo) {
  if (plan.num_lines() != grid.num_lines() ||
      plan.num_buses() != grid.num_buses()) {
    throw GridError("build_jacobian: plan dimensions mismatch");
  }
  JacobianModel out;
  out.meas_row.assign(static_cast<std::size_t>(plan.num_potential()), -1);
  for (MeasId m = 0; m < plan.num_potential(); ++m) {
    if (!plan.taken(m)) continue;
    out.meas_row[static_cast<std::size_t>(m)] =
        static_cast<int>(out.row_meas.size());
    out.row_meas.push_back(m);
  }
  const std::size_t rows = out.row_meas.size();
  const std::size_t cols = static_cast<std::size_t>(grid.num_buses());
  out.h = Matrix(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    MeasInfo info = plan.decode(out.row_meas[r]);
    switch (info.type) {
      case MeasType::ForwardFlow:
      case MeasType::BackwardFlow: {
        if (!topo.includes(info.line)) break;  // unmapped: zero row
        const Line& l = grid.line(info.line);
        double sign = info.type == MeasType::ForwardFlow ? 1.0 : -1.0;
        out.h(r, static_cast<std::size_t>(l.from)) += sign * l.admittance;
        out.h(r, static_cast<std::size_t>(l.to)) -= sign * l.admittance;
        break;
      }
      case MeasType::Injection: {
        // Paper convention (Eq. (4)): P^B_j = sum(incoming) - sum(outgoing)
        // flows of mapped lines.
        for (LineId i : grid.lines_at(info.bus)) {
          if (!topo.includes(i)) continue;
          const Line& l = grid.line(i);
          double sign = l.to == info.bus ? 1.0 : -1.0;
          out.h(r, static_cast<std::size_t>(l.from)) += sign * l.admittance;
          out.h(r, static_cast<std::size_t>(l.to)) -= sign * l.admittance;
        }
        break;
      }
    }
  }
  return out;
}

JacobianModel build_jacobian(const Grid& grid, const MeasurementPlan& plan) {
  return build_jacobian(
      grid, plan,
      TopologyProcessor::map(grid, BreakerTelemetry::truthful(grid)));
}

Vector restrict_to_rows(const JacobianModel& model, const Vector& full) {
  Vector out(model.row_meas.size());
  for (std::size_t r = 0; r < model.row_meas.size(); ++r) {
    out[r] = full[static_cast<std::size_t>(model.row_meas[r])];
  }
  return out;
}

}  // namespace psse::grid
