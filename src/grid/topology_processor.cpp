#include "grid/topology_processor.h"

#include <queue>

namespace psse::grid {

BreakerTelemetry BreakerTelemetry::truthful(const Grid& grid) {
  BreakerTelemetry t;
  t.closed.reserve(static_cast<std::size_t>(grid.num_lines()));
  for (const Line& l : grid.lines()) t.closed.push_back(l.in_service);
  return t;
}

int MappedTopology::num_mapped() const {
  int n = 0;
  for (bool m : mapped) n += m ? 1 : 0;
  return n;
}

MappedTopology TopologyProcessor::map(const Grid& grid,
                                      const BreakerTelemetry& reported) {
  if (static_cast<int>(reported.closed.size()) != grid.num_lines()) {
    throw GridError("TopologyProcessor: telemetry size mismatch");
  }
  MappedTopology topo;
  topo.mapped.resize(static_cast<std::size_t>(grid.num_lines()));
  for (LineId i = 0; i < grid.num_lines(); ++i) {
    const Line& l = grid.line(i);
    // Integrity-protected statuses cannot be spoofed in transit.
    topo.mapped[static_cast<std::size_t>(i)] =
        l.status_secured ? l.in_service
                         : reported.closed[static_cast<std::size_t>(i)];
  }
  return topo;
}

bool TopologyProcessor::connected(const Grid& grid,
                                  const MappedTopology& topo) {
  std::vector<bool> seen(static_cast<std::size_t>(grid.num_buses()), false);
  std::queue<BusId> frontier;
  frontier.push(0);
  seen[0] = true;
  int reached = 1;
  while (!frontier.empty()) {
    BusId b = frontier.front();
    frontier.pop();
    for (LineId i : grid.lines_at(b)) {
      if (!topo.includes(i)) continue;
      const Line& l = grid.line(i);
      BusId other = l.from == b ? l.to : l.from;
      if (!seen[static_cast<std::size_t>(other)]) {
        seen[static_cast<std::size_t>(other)] = true;
        ++reached;
        frontier.push(other);
      }
    }
  }
  return reached == grid.num_buses();
}

void apply_exclusion_attack(const Grid& grid, BreakerTelemetry& telemetry,
                            LineId i) {
  const Line& l = grid.line(i);
  if (!l.in_service) {
    throw GridError("exclusion attack: line is not in service");
  }
  if (l.fixed) {
    throw GridError("exclusion attack: line is part of the core topology");
  }
  if (l.status_secured) {
    throw GridError("exclusion attack: line status is secured");
  }
  telemetry.closed[static_cast<std::size_t>(i)] = false;
}

void apply_inclusion_attack(const Grid& grid, BreakerTelemetry& telemetry,
                            LineId i) {
  const Line& l = grid.line(i);
  if (l.in_service) {
    throw GridError("inclusion attack: line is already in service");
  }
  if (l.status_secured) {
    throw GridError("inclusion attack: line status is secured");
  }
  telemetry.closed[static_cast<std::size_t>(i)] = true;
}

}  // namespace psse::grid
