#include "grid/matrix.h"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <stdexcept>

namespace psse::grid {

namespace {
void check(bool cond, const char* msg) {
  if (!cond) throw LinAlgError(msg);
}
}  // namespace

Vector& Vector::operator+=(const Vector& rhs) {
  check(size() == rhs.size(), "Vector+: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Vector& Vector::operator-=(const Vector& rhs) {
  check(size() == rhs.size(), "Vector-: size mismatch");
  for (std::size_t i = 0; i < size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

Vector& Vector::operator*=(double k) {
  for (double& v : data_) v *= k;
  return *this;
}

double Vector::norm2() const {
  double sum = 0.0;
  for (double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double Vector::dot(const Vector& rhs) const {
  check(size() == rhs.size(), "Vector::dot: size mismatch");
  double sum = 0.0;
  for (std::size_t i = 0; i < size(); ++i) sum += data_[i] * rhs.data_[i];
  return sum;
}

double Vector::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::diagonal(const Vector& d) {
  Matrix m(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) m(i, i) = d[i];
  return m;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  check(cols_ == rhs.rows_, "Matrix*: dimension mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += a * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& rhs) const {
  check(cols_ == rhs.size(), "Matrix*Vector: dimension mismatch");
  Vector out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    double sum = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) sum += (*this)(i, j) * rhs[j];
    out[i] = sum;
  }
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  check(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix+: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& rhs) {
  check(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix-: size mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= rhs.data_[i];
  return *this;
}

bool Matrix::lu_factor(std::vector<double>& lu,
                       std::vector<std::size_t>& perm) const {
  check(rows_ == cols_, "lu_factor: matrix not square");
  const std::size_t n = rows_;
  lu = data_;
  perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;
  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting.
    std::size_t best = k;
    double bestAbs = std::fabs(lu[perm[k] * n + k]);
    for (std::size_t i = k + 1; i < n; ++i) {
      double a = std::fabs(lu[perm[i] * n + k]);
      if (a > bestAbs) {
        bestAbs = a;
        best = i;
      }
    }
    if (bestAbs < 1e-12) return false;
    std::swap(perm[k], perm[best]);
    const double pivot = lu[perm[k] * n + k];
    for (std::size_t i = k + 1; i < n; ++i) {
      double factor = lu[perm[i] * n + k] / pivot;
      lu[perm[i] * n + k] = factor;
      for (std::size_t j = k + 1; j < n; ++j) {
        lu[perm[i] * n + j] -= factor * lu[perm[k] * n + j];
      }
    }
  }
  return true;
}

Vector Matrix::lu_solve(const Vector& b) const {
  check(rows_ == b.size(), "lu_solve: rhs size mismatch");
  std::vector<double> lu;
  std::vector<std::size_t> perm;
  if (!lu_factor(lu, perm)) throw LinAlgError("lu_solve: singular matrix");
  const std::size_t n = rows_;
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) sum -= lu[perm[i] * n + j] * y[j];
    y[i] = sum;
  }
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= lu[perm[i] * n + j] * x[j];
    x[i] = sum / lu[perm[i] * n + i];
  }
  return x;
}

Matrix Matrix::lu_solve(const Matrix& b) const {
  check(rows_ == b.rows_, "lu_solve: rhs rows mismatch");
  Matrix out(rows_, b.cols_);
  for (std::size_t c = 0; c < b.cols_; ++c) {
    Vector col(rows_);
    for (std::size_t r = 0; r < rows_; ++r) col[r] = b(r, c);
    Vector x = lu_solve(col);
    for (std::size_t r = 0; r < rows_; ++r) out(r, c) = x[r];
  }
  return out;
}

Matrix Matrix::inverse() const { return lu_solve(identity(rows_)); }

Vector Matrix::cholesky_solve(const Vector& b) const {
  check(rows_ == cols_, "cholesky_solve: matrix not square");
  check(rows_ == b.size(), "cholesky_solve: rhs size mismatch");
  const std::size_t n = rows_;
  // Lower-triangular factor, packed row-major.
  std::vector<double> L(n * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double sum = (*this)(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= L[i * n + k] * L[j * n + k];
      if (i == j) {
        if (sum <= 0.0) {
          throw LinAlgError("cholesky_solve: matrix not positive definite");
        }
        L[i * n + i] = std::sqrt(sum);
      } else {
        L[i * n + j] = sum / L[j * n + j];
      }
    }
  }
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= L[i * n + k] * y[k];
    y[i] = sum / L[i * n + i];
  }
  Vector x(n);
  for (std::size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= L[k * n + i] * x[k];
    x[i] = sum / L[i * n + i];
  }
  return x;
}

std::size_t Matrix::rank(double tol) const {
  std::vector<double> a = data_;
  const std::size_t m = rows_, n = cols_;
  double scale = max_abs();
  if (scale == 0.0) return 0;
  double threshold = tol * scale;
  std::size_t rank = 0;
  std::size_t row = 0;
  for (std::size_t col = 0; col < n && row < m; ++col) {
    // Pivot search in this column.
    std::size_t best = row;
    double bestAbs = std::fabs(a[row * n + col]);
    for (std::size_t i = row + 1; i < m; ++i) {
      double v = std::fabs(a[i * n + col]);
      if (v > bestAbs) {
        bestAbs = v;
        best = i;
      }
    }
    if (bestAbs <= threshold) continue;
    if (best != row) {
      for (std::size_t j = 0; j < n; ++j) {
        std::swap(a[row * n + j], a[best * n + j]);
      }
    }
    const double pivot = a[row * n + col];
    for (std::size_t i = row + 1; i < m; ++i) {
      double factor = a[i * n + col] / pivot;
      if (factor == 0.0) continue;
      for (std::size_t j = col; j < n; ++j) {
        a[i * n + j] -= factor * a[row * n + j];
      }
    }
    ++row;
    ++rank;
  }
  return rank;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    for (std::size_t c = 0; c < m.cols(); ++c) {
      os << (c ? " " : "") << m(r, c);
    }
    os << "\n";
  }
  return os;
}

}  // namespace psse::grid
