#include "grid/dc_powerflow.h"

namespace psse::grid {

DcPowerFlow::DcPowerFlow(const Grid& grid, BusId referenceBus)
    : grid_(grid), ref_(referenceBus) {
  if (ref_ < 0 || ref_ >= grid.num_buses()) {
    throw GridError("DcPowerFlow: reference bus out of range");
  }
}

DcPowerFlowResult DcPowerFlow::solve(const Vector& injections) const {
  const int b = grid_.num_buses();
  if (static_cast<int>(injections.size()) != b) {
    throw GridError("DcPowerFlow: injection vector size mismatch");
  }
  // Reduced susceptance matrix: drop the reference bus row/column.
  auto reduced = [&](BusId bus) {
    return bus < ref_ ? bus : bus - 1;
  };
  Matrix B(static_cast<std::size_t>(b - 1), static_cast<std::size_t>(b - 1));
  for (const Line& l : grid_.lines()) {
    if (!l.in_service) continue;
    const double y = l.admittance;
    if (l.from != ref_) {
      std::size_t i = static_cast<std::size_t>(reduced(l.from));
      B(i, i) += y;
    }
    if (l.to != ref_) {
      std::size_t j = static_cast<std::size_t>(reduced(l.to));
      B(j, j) += y;
    }
    if (l.from != ref_ && l.to != ref_) {
      std::size_t i = static_cast<std::size_t>(reduced(l.from));
      std::size_t j = static_cast<std::size_t>(reduced(l.to));
      B(i, j) -= y;
      B(j, i) -= y;
    }
  }
  Vector p(static_cast<std::size_t>(b - 1));
  for (BusId bus = 0; bus < b; ++bus) {
    if (bus == ref_) continue;
    p[static_cast<std::size_t>(reduced(bus))] =
        injections[static_cast<std::size_t>(bus)];
  }
  Vector reducedTheta = B.lu_solve(p);

  DcPowerFlowResult out;
  out.theta = Vector(static_cast<std::size_t>(b));
  for (BusId bus = 0; bus < b; ++bus) {
    out.theta[static_cast<std::size_t>(bus)] =
        bus == ref_ ? 0.0
                    : reducedTheta[static_cast<std::size_t>(reduced(bus))];
  }
  out.line_flows = Vector(static_cast<std::size_t>(grid_.num_lines()));
  for (LineId i = 0; i < grid_.num_lines(); ++i) {
    const Line& l = grid_.line(i);
    out.line_flows[static_cast<std::size_t>(i)] =
        l.in_service
            ? l.admittance * (out.theta[static_cast<std::size_t>(l.from)] -
                              out.theta[static_cast<std::size_t>(l.to)])
            : 0.0;
  }
  return out;
}

DcPowerFlowResult DcPowerFlow::solve() const {
  Vector inj(static_cast<std::size_t>(grid_.num_buses()));
  for (BusId bus = 0; bus < grid_.num_buses(); ++bus) {
    inj[static_cast<std::size_t>(bus)] = grid_.bus(bus).injection;
  }
  return solve(inj);
}

}  // namespace psse::grid
