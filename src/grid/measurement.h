// The paper's measurement space and per-measurement security attributes.
//
// For a grid with l lines and b buses there are m = 2l + b *potential*
// measurements (paper Section III-B), indexed 0-based here:
//
//   [0,   l)   forward power flow of line i   — meter resides at from(i)
//   [l,  2l)   backward power flow of line i  — meter resides at to(i)
//   [2l, 2l+b) power injection at bus j       — meter resides at bus j
//
// (The paper's 1-based ids are these indices + 1; scenario files translate.)
// MeasurementPlan records which measurements are taken (`mz_i`), secured
// (`sz_i`), and accessible to the adversary (`az_i`).
#pragma once

#include <cstdint>
#include <random>
#include <vector>

#include "grid/grid.h"
#include "grid/matrix.h"

namespace psse::grid {

enum class MeasType : std::uint8_t { ForwardFlow, BackwardFlow, Injection };

using MeasId = int;

/// Decoded measurement identity.
struct MeasInfo {
  MeasType type;
  LineId line = -1;  // flows
  BusId bus = -1;    // injections
};

class MeasurementPlan {
 public:
  /// All measurements taken, none secured, all accessible.
  MeasurementPlan(int numLines, int numBuses);

  [[nodiscard]] int num_lines() const { return l_; }
  [[nodiscard]] int num_buses() const { return b_; }
  /// Total number of potential measurements (2l + b).
  [[nodiscard]] int num_potential() const { return 2 * l_ + b_; }
  [[nodiscard]] int num_taken() const;

  /// Index helpers.
  [[nodiscard]] MeasId forward_flow(LineId i) const;
  [[nodiscard]] MeasId backward_flow(LineId i) const;
  [[nodiscard]] MeasId injection(BusId j) const;
  [[nodiscard]] MeasInfo decode(MeasId m) const;
  /// The bus whose substation hosts measurement m (paper's residence rule:
  /// forward at from-bus, backward at to-bus, injection at the bus).
  [[nodiscard]] BusId residence_bus(MeasId m, const Grid& grid) const;

  /// Attribute accessors; all throw GridError on out-of-range ids.
  [[nodiscard]] bool taken(MeasId m) const { return at(m).taken; }
  [[nodiscard]] bool secured(MeasId m) const { return at(m).secured; }
  [[nodiscard]] bool accessible(MeasId m) const { return at(m).accessible; }
  void set_taken(MeasId m, bool v) { at(m).taken = v; }
  void set_secured(MeasId m, bool v) { at(m).secured = v; }
  void set_accessible(MeasId m, bool v) { at(m).accessible = v; }

  /// Ids of all taken measurements, in index order.
  [[nodiscard]] std::vector<MeasId> taken_ids() const;

  /// Marks every measurement residing at `bus` as secured — the paper's
  /// "secure a bus with a PMU" countermeasure (Eq. (28)).
  void secure_bus(BusId bus, const Grid& grid);

  /// Drops taken measurements uniformly at random until only `fraction`
  /// of the potential set remains taken (used by the Fig. 4(b)/5(b)
  /// sweeps). Keeps the system observable only by chance; callers that
  /// need observability should check it.
  void keep_fraction(double fraction, std::uint64_t seed);

 private:
  struct Attr {
    bool taken = true;
    bool secured = false;
    bool accessible = true;
  };
  [[nodiscard]] const Attr& at(MeasId m) const;
  [[nodiscard]] Attr& at(MeasId m);

  int l_;
  int b_;
  std::vector<Attr> attrs_;
};

/// Measurement vector over the full potential space; entries for untaken
/// measurements are zero and ignored by consumers.
struct Telemetry {
  Vector values;  // size 2l + b
};

/// Simulates SCADA telemetry: true DC flows/injections from bus angles plus
/// i.i.d. Gaussian noise of standard deviation `sigma` on taken
/// measurements.
Telemetry generate_telemetry(const Grid& grid, const Vector& theta,
                             const MeasurementPlan& plan, double sigma,
                             std::mt19937_64& rng);

/// Noise-free telemetry (sigma = 0).
Telemetry exact_telemetry(const Grid& grid, const Vector& theta,
                          const MeasurementPlan& plan);

}  // namespace psse::grid
