// DC power flow: synthesising physically consistent operating points.
//
// Solves [B][theta] = [P] (paper Section II-A) for bus angles given net
// injections, with a reference bus pinned to angle zero. Used to create the
// true system state that telemetry generation and end-to-end attack
// validation run against.
#pragma once

#include "grid/grid.h"
#include "grid/matrix.h"

namespace psse::grid {

struct DcPowerFlowResult {
  Vector theta;       // bus angles (radians), theta[ref] == 0
  Vector line_flows;  // per line, from->to positive direction
};

class DcPowerFlow {
 public:
  explicit DcPowerFlow(const Grid& grid, BusId referenceBus = 0);

  /// Solves for angles given net injections (generation - load, per unit).
  /// Injections must (approximately) balance; the reference bus absorbs the
  /// residual slack. Throws LinAlgError if the in-service grid is split.
  [[nodiscard]] DcPowerFlowResult solve(const Vector& injections) const;

  /// Solves using the injections stored on the grid's buses.
  [[nodiscard]] DcPowerFlowResult solve() const;

  [[nodiscard]] BusId reference_bus() const { return ref_; }

 private:
  const Grid& grid_;
  BusId ref_;
};

}  // namespace psse::grid
