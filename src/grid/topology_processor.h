// The EMS topology processor and the adversary's lever on it.
//
// Breaker/switch statuses are telemetered per line; the processor maps the
// topology the estimator will use (paper Section II-B). A topology
// poisoning attack flips reported statuses: an *exclusion* attack reports
// an energised line as open, an *inclusion* attack reports an open line as
// closed (Section III-C). The processor itself is honest — it maps whatever
// statuses it is fed — which is exactly why the attack works.
#pragma once

#include <vector>

#include "grid/grid.h"

namespace psse::grid {

/// Reported breaker statuses, one per line (true = closed/in service).
struct BreakerTelemetry {
  std::vector<bool> closed;

  /// Honest telemetry reflecting the grid's true switching state.
  static BreakerTelemetry truthful(const Grid& grid);
};

/// The mapped topology: which lines the estimator believes are in service.
struct MappedTopology {
  std::vector<bool> mapped;

  [[nodiscard]] bool includes(LineId i) const {
    return mapped[static_cast<std::size_t>(i)];
  }
  [[nodiscard]] int num_mapped() const;
};

class TopologyProcessor {
 public:
  /// Maps reported statuses to the estimation topology. Secured-status
  /// lines (Line::status_secured) are immune to tampering: their true
  /// status overrides the report, modelling integrity-protected telemetry.
  [[nodiscard]] static MappedTopology map(const Grid& grid,
                                          const BreakerTelemetry& reported);

  /// True iff the mapped in-service subgraph is connected (a mapped
  /// topology that islands the grid is immediately suspicious, so stealthy
  /// exclusion attacks must keep it connected).
  [[nodiscard]] static bool connected(const Grid& grid,
                                      const MappedTopology& topo);
};

/// Applies an exclusion attack on line i (report closed line as open).
/// Throws GridError if the line is open, fixed (core topology), or has
/// secured status — the paper's Eq. (9) feasibility conditions.
void apply_exclusion_attack(const Grid& grid, BreakerTelemetry& telemetry,
                            LineId i);

/// Applies an inclusion attack on line i (report open line as closed).
/// Throws GridError if the line is in service or has secured status
/// (Eq. (10)).
void apply_inclusion_attack(const Grid& grid, BreakerTelemetry& telemetry,
                            LineId i);

}  // namespace psse::grid
