#include "grid/measurement.h"

#include <algorithm>

namespace psse::grid {

MeasurementPlan::MeasurementPlan(int numLines, int numBuses)
    : l_(numLines), b_(numBuses) {
  if (numLines < 0 || numBuses <= 0) {
    throw GridError("MeasurementPlan: bad dimensions");
  }
  attrs_.resize(static_cast<std::size_t>(num_potential()));
}

int MeasurementPlan::num_taken() const {
  int n = 0;
  for (const Attr& a : attrs_) n += a.taken ? 1 : 0;
  return n;
}

MeasId MeasurementPlan::forward_flow(LineId i) const {
  if (i < 0 || i >= l_) throw GridError("forward_flow: line out of range");
  return i;
}

MeasId MeasurementPlan::backward_flow(LineId i) const {
  if (i < 0 || i >= l_) throw GridError("backward_flow: line out of range");
  return l_ + i;
}

MeasId MeasurementPlan::injection(BusId j) const {
  if (j < 0 || j >= b_) throw GridError("injection: bus out of range");
  return 2 * l_ + j;
}

MeasInfo MeasurementPlan::decode(MeasId m) const {
  if (m < 0 || m >= num_potential()) {
    throw GridError("decode: measurement out of range");
  }
  if (m < l_) return {MeasType::ForwardFlow, m, -1};
  if (m < 2 * l_) return {MeasType::BackwardFlow, m - l_, -1};
  return {MeasType::Injection, -1, m - 2 * l_};
}

BusId MeasurementPlan::residence_bus(MeasId m, const Grid& grid) const {
  MeasInfo info = decode(m);
  switch (info.type) {
    case MeasType::ForwardFlow:
      return grid.line(info.line).from;
    case MeasType::BackwardFlow:
      return grid.line(info.line).to;
    case MeasType::Injection:
      return info.bus;
  }
  throw GridError("residence_bus: unreachable");
}

const MeasurementPlan::Attr& MeasurementPlan::at(MeasId m) const {
  if (m < 0 || m >= num_potential()) {
    throw GridError("MeasurementPlan: measurement out of range");
  }
  return attrs_[static_cast<std::size_t>(m)];
}

MeasurementPlan::Attr& MeasurementPlan::at(MeasId m) {
  if (m < 0 || m >= num_potential()) {
    throw GridError("MeasurementPlan: measurement out of range");
  }
  return attrs_[static_cast<std::size_t>(m)];
}

std::vector<MeasId> MeasurementPlan::taken_ids() const {
  std::vector<MeasId> out;
  out.reserve(attrs_.size());
  for (MeasId m = 0; m < num_potential(); ++m) {
    if (attrs_[static_cast<std::size_t>(m)].taken) out.push_back(m);
  }
  return out;
}

void MeasurementPlan::secure_bus(BusId bus, const Grid& grid) {
  set_secured(injection(bus), true);
  for (LineId i : grid.lines_at(bus)) {
    const Line& line = grid.line(i);
    if (line.from == bus) set_secured(forward_flow(i), true);
    if (line.to == bus) set_secured(backward_flow(i), true);
  }
}

void MeasurementPlan::keep_fraction(double fraction, std::uint64_t seed) {
  if (fraction < 0.0 || fraction > 1.0) {
    throw GridError("keep_fraction: fraction out of [0,1]");
  }
  std::vector<MeasId> taken = taken_ids();
  const int target = static_cast<int>(fraction * num_potential());
  if (static_cast<int>(taken.size()) <= target) return;
  std::mt19937_64 rng(seed);
  std::shuffle(taken.begin(), taken.end(), rng);
  for (std::size_t k = static_cast<std::size_t>(target); k < taken.size();
       ++k) {
    set_taken(taken[k], false);
  }
}

namespace {
Telemetry telemetry_impl(const Grid& grid, const Vector& theta,
                         const MeasurementPlan& plan, double sigma,
                         std::mt19937_64* rng) {
  if (static_cast<int>(theta.size()) != grid.num_buses()) {
    throw GridError("telemetry: theta size mismatch");
  }
  Telemetry out;
  out.values = Vector(static_cast<std::size_t>(plan.num_potential()));
  std::normal_distribution<double> noise(0.0, sigma);
  auto maybe_noise = [&]() {
    return (rng != nullptr && sigma > 0.0) ? noise(*rng) : 0.0;
  };
  for (LineId i = 0; i < grid.num_lines(); ++i) {
    const Line& l = grid.line(i);
    double flow = l.in_service
                      ? l.admittance *
                            (theta[static_cast<std::size_t>(l.from)] -
                             theta[static_cast<std::size_t>(l.to)])
                      : 0.0;
    MeasId fwd = plan.forward_flow(i);
    MeasId bwd = plan.backward_flow(i);
    if (plan.taken(fwd)) {
      out.values[static_cast<std::size_t>(fwd)] = flow + maybe_noise();
    }
    if (plan.taken(bwd)) {
      out.values[static_cast<std::size_t>(bwd)] = -flow + maybe_noise();
    }
  }
  for (BusId j = 0; j < grid.num_buses(); ++j) {
    MeasId inj = plan.injection(j);
    if (!plan.taken(inj)) continue;
    // Injection = sum of incoming flows - outgoing flows (paper Eq. (4)):
    // with flow defined from->to, a line leaving j contributes -flow and a
    // line arriving at j contributes +flow.
    double sum = 0.0;
    for (LineId i : grid.lines_at(j)) {
      const Line& l = grid.line(i);
      if (!l.in_service) continue;
      double flow = l.admittance * (theta[static_cast<std::size_t>(l.from)] -
                                    theta[static_cast<std::size_t>(l.to)]);
      sum += l.to == j ? flow : -flow;
    }
    out.values[static_cast<std::size_t>(inj)] = sum + maybe_noise();
  }
  return out;
}
}  // namespace

Telemetry generate_telemetry(const Grid& grid, const Vector& theta,
                             const MeasurementPlan& plan, double sigma,
                             std::mt19937_64& rng) {
  return telemetry_impl(grid, theta, plan, sigma, &rng);
}

Telemetry exact_telemetry(const Grid& grid, const Vector& theta,
                          const MeasurementPlan& plan) {
  return telemetry_impl(grid, theta, plan, 0.0, nullptr);
}

}  // namespace psse::grid
