// ResultMemo: LRU memoisation of verification verdicts keyed by canonical
// scenario fingerprint (combine_fingerprints(family, delta)).
//
// Only *definitive* verdicts (Sat/Unsat) are stored — an Unknown produced
// by a budget cutoff says nothing about the scenario, and caching it would
// pin a transient timeout forever. Sat entries keep the witness's altered
// measurement set so replayed requests still answer "which meters". The
// fingerprint is a 64-bit non-cryptographic hash, so a collision is
// astronomically unlikely but not impossible; the memo is an
// accelerator for repeated identical queries (sweep re-runs, synthesis
// inner loops), not a proof archive.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "smt/solver.h"

namespace psse::service {

struct MemoEntry {
  smt::SolveResult verdict = smt::SolveResult::Unknown;
  /// Altered measurement ids (1-based, sorted) when verdict is Sat.
  std::vector<int> altered_measurements;
  /// What the original solve cost — reported alongside hits so clients can
  /// see what the memo saved them.
  double solve_seconds = 0;
};

class ResultMemo {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t insertions = 0;
    std::uint64_t evictions = 0;
    std::size_t size = 0;
  };

  explicit ResultMemo(std::size_t capacity = 4096) : capacity_(capacity) {}
  ResultMemo(const ResultMemo&) = delete;
  ResultMemo& operator=(const ResultMemo&) = delete;

  /// Looks up a scenario fingerprint, refreshing its LRU position on hit.
  [[nodiscard]] std::optional<MemoEntry> lookup(std::uint64_t key);

  /// Stores a definitive verdict; Unknown entries are ignored. Re-inserting
  /// an existing key refreshes it (last write wins).
  void insert(std::uint64_t key, const MemoEntry& entry);

  [[nodiscard]] Stats stats() const;

 private:
  struct Node {
    std::uint64_t key;
    MemoEntry entry;
  };

  std::size_t capacity_;
  mutable std::mutex mu_;
  std::list<Node> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<Node>::iterator> index_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t insertions_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace psse::service
