#include "service/result_memo.h"

namespace psse::service {

std::optional<MemoEntry> ResultMemo::lookup(std::uint64_t key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return it->second->entry;
}

void ResultMemo::insert(std::uint64_t key, const MemoEntry& entry) {
  if (entry.verdict == smt::SolveResult::Unknown) return;
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->entry = entry;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.push_front(Node{key, entry});
  index_.emplace(key, lru_.begin());
  ++insertions_;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
}

ResultMemo::Stats ResultMemo::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.insertions = insertions_;
  s.evictions = evictions_;
  s.size = lru_.size();
  return s;
}

}  // namespace psse::service
