#include "service/request.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace psse::service {

namespace {

/// Axis values that denote counts or 1-based ids must be integral; a sweep
/// over "T_CZ = 4.5" is a typo, not a scenario.
int integral_value(SweepAxis axis, double v, std::size_t index) {
  if (!(std::floor(v) == v) || v < -2147483648.0 || v > 2147483647.0) {
    throw core::ScenarioError(
        std::string("sweep axis ") + sweep_axis_name(axis) + " value #" +
        std::to_string(index) + " (" + std::to_string(v) +
        ") must be an integer");
  }
  return static_cast<int>(v);
}

int id_value(SweepAxis axis, double v, std::size_t index, int limit,
             const char* what) {
  const int id = integral_value(axis, v, index);
  if (id < 1 || id > limit) {
    throw core::ScenarioError(
        std::string("sweep axis ") + sweep_axis_name(axis) + " value #" +
        std::to_string(index) + ": " + what + " id " + std::to_string(id) +
        " out of range 1.." + std::to_string(limit));
  }
  return id;
}

}  // namespace

SweepAxis parse_sweep_axis(const std::string& name) {
  if (name == "max-measurements") return SweepAxis::kMaxMeasurements;
  if (name == "max-buses") return SweepAxis::kMaxBuses;
  if (name == "max-topology-changes") return SweepAxis::kMaxTopologyChanges;
  if (name == "secure-measurement") return SweepAxis::kSecureMeasurement;
  if (name == "secure-bus") return SweepAxis::kSecureBus;
  if (name == "target") return SweepAxis::kTarget;
  if (name == "min-target-shift") return SweepAxis::kMinTargetShift;
  throw std::invalid_argument("unknown sweep axis: " + name);
}

const char* sweep_axis_name(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kMaxMeasurements:
      return "max-measurements";
    case SweepAxis::kMaxBuses:
      return "max-buses";
    case SweepAxis::kMaxTopologyChanges:
      return "max-topology-changes";
    case SweepAxis::kSecureMeasurement:
      return "secure-measurement";
    case SweepAxis::kSecureBus:
      return "secure-bus";
    case SweepAxis::kTarget:
      return "target";
    case SweepAxis::kMinTargetShift:
      return "min-target-shift";
  }
  return "?";
}

std::vector<ServiceRequest> expand_sweep(const SweepRequest& sweep) {
  std::vector<ServiceRequest> out;
  out.reserve(sweep.values.size());
  for (std::size_t k = 0; k < sweep.values.size(); ++k) {
    const double v = sweep.values[k];
    ServiceRequest req;
    req.id = sweep.id + "[" + std::to_string(k) + "]";
    req.scenario = sweep.scenario;
    req.time_limit_seconds = sweep.time_limit_seconds;
    req.use_memo = sweep.use_memo;
    req.sweep_index = static_cast<int>(k);
    core::Scenario& sc = req.scenario;
    switch (sweep.axis) {
      case SweepAxis::kMaxMeasurements: {
        const int cap = integral_value(sweep.axis, v, k);
        if (cap < 0) {
          throw core::ScenarioError("sweep axis max-measurements value #" +
                                    std::to_string(k) + " is negative");
        }
        sc.spec.max_altered_measurements = cap;
        break;
      }
      case SweepAxis::kMaxBuses: {
        const int cap = integral_value(sweep.axis, v, k);
        if (cap < 0) {
          throw core::ScenarioError("sweep axis max-buses value #" +
                                    std::to_string(k) + " is negative");
        }
        sc.spec.max_compromised_buses = cap;
        break;
      }
      case SweepAxis::kMaxTopologyChanges: {
        const int cap = integral_value(sweep.axis, v, k);
        if (cap < 0) {
          throw core::ScenarioError(
              "sweep axis max-topology-changes value #" + std::to_string(k) +
              " is negative");
        }
        sc.spec.max_topology_changes = cap;
        break;
      }
      case SweepAxis::kSecureMeasurement: {
        const int id = id_value(sweep.axis, v, k, sc.plan.num_potential(),
                                "measurement");
        sc.plan.set_secured(id - 1, true);
        break;
      }
      case SweepAxis::kSecureBus: {
        const int id =
            id_value(sweep.axis, v, k, sc.grid.num_buses(), "bus");
        sc.plan.secure_bus(id - 1, sc.grid);
        break;
      }
      case SweepAxis::kTarget: {
        const int id =
            id_value(sweep.axis, v, k, sc.grid.num_buses(), "bus");
        sc.spec.target_states.assign(1, id - 1);
        break;
      }
      case SweepAxis::kMinTargetShift: {
        if (v < 0) {
          throw core::ScenarioError("sweep axis min-target-shift value #" +
                                    std::to_string(k) + " is negative");
        }
        sc.spec.min_target_shift = v;
        break;
      }
    }
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace psse::service
