#include "service/request.h"

#include <cmath>
#include <stdexcept>
#include <string>

namespace psse::service {

namespace {

/// Axis values that denote counts or 1-based ids must be integral; a sweep
/// over "T_CZ = 4.5" is a typo, not a scenario.
int integral_value(SweepAxis axis, double v, std::size_t index) {
  if (!(std::floor(v) == v) || v < -2147483648.0 || v > 2147483647.0) {
    throw core::ScenarioError(
        std::string("sweep axis ") + sweep_axis_name(axis) + " value #" +
        std::to_string(index) + " (" + std::to_string(v) +
        ") must be an integer");
  }
  return static_cast<int>(v);
}

int id_value(SweepAxis axis, double v, std::size_t index, int limit,
             const char* what) {
  const int id = integral_value(axis, v, index);
  if (id < 1 || id > limit) {
    throw core::ScenarioError(
        std::string("sweep axis ") + sweep_axis_name(axis) + " value #" +
        std::to_string(index) + ": " + what + " id " + std::to_string(id) +
        " out of range 1.." + std::to_string(limit));
  }
  return id;
}

}  // namespace

SweepAxis parse_sweep_axis(const std::string& name) {
  if (name == "max-measurements") return SweepAxis::kMaxMeasurements;
  if (name == "max-buses") return SweepAxis::kMaxBuses;
  if (name == "max-topology-changes") return SweepAxis::kMaxTopologyChanges;
  if (name == "secure-measurement") return SweepAxis::kSecureMeasurement;
  if (name == "secure-bus") return SweepAxis::kSecureBus;
  if (name == "target") return SweepAxis::kTarget;
  if (name == "min-target-shift") return SweepAxis::kMinTargetShift;
  throw std::invalid_argument("unknown sweep axis: " + name);
}

const char* sweep_axis_name(SweepAxis axis) {
  switch (axis) {
    case SweepAxis::kMaxMeasurements:
      return "max-measurements";
    case SweepAxis::kMaxBuses:
      return "max-buses";
    case SweepAxis::kMaxTopologyChanges:
      return "max-topology-changes";
    case SweepAxis::kSecureMeasurement:
      return "secure-measurement";
    case SweepAxis::kSecureBus:
      return "secure-bus";
    case SweepAxis::kTarget:
      return "target";
    case SweepAxis::kMinTargetShift:
      return "min-target-shift";
  }
  return "?";
}

namespace {

/// Materialises the range form into explicit axis values. Every degenerate
/// axis — non-finite endpoints or step, zero step, a step walking away from
/// `to` — is an in-band ScenarioError; before this check a reversed range
/// silently expanded to an empty sweep that answered nothing.
std::vector<double> range_values(const SweepRequest& sweep) {
  const double from = sweep.range_from;
  const double to = sweep.range_to;
  const double step = sweep.range_step;
  if (!std::isfinite(from) || !std::isfinite(to) || !std::isfinite(step)) {
    throw core::ScenarioError("sweep range from/to/step must be finite");
  }
  if (step == 0) {
    throw core::ScenarioError("sweep range step must be nonzero");
  }
  if ((to - from) * step < 0) {
    throw core::ScenarioError(
        "sweep range is reversed: step " + std::to_string(step) +
        " never reaches " + std::to_string(to) + " from " +
        std::to_string(from));
  }
  // Index-based generation avoids accumulation drift; the epsilon keeps
  // the endpoint inclusive when (to-from)/step is integral up to rounding.
  const double span = (to - from) / step;
  constexpr double kMaxPoints = 1u << 20;
  if (span > kMaxPoints) {
    throw core::ScenarioError("sweep range expands to more than " +
                              std::to_string(static_cast<int>(kMaxPoints)) +
                              " points");
  }
  const std::size_t n = static_cast<std::size_t>(span * (1 + 1e-12)) + 1;
  std::vector<double> vals;
  vals.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    vals.push_back(from + static_cast<double>(i) * step);
  }
  return vals;
}

}  // namespace

std::vector<ServiceRequest> expand_sweep(const SweepRequest& sweep) {
  if (sweep.has_range && !sweep.values.empty()) {
    throw core::ScenarioError(
        "sweep cannot combine explicit values with a from/to/step range");
  }
  const std::vector<double> values =
      sweep.has_range ? range_values(sweep) : sweep.values;
  if (values.empty()) {
    throw core::ScenarioError("sweep \"" + sweep.id +
                              "\" expands to no values");
  }
  std::vector<ServiceRequest> out;
  out.reserve(values.size());
  for (std::size_t k = 0; k < values.size(); ++k) {
    const double v = values[k];
    ServiceRequest req;
    req.id = sweep.id + "[" + std::to_string(k) + "]";
    req.scenario = sweep.scenario;
    req.time_limit_seconds = sweep.time_limit_seconds;
    req.use_memo = sweep.use_memo;
    req.use_screen = sweep.use_screen;
    req.sweep_index = static_cast<int>(k);
    core::Scenario& sc = req.scenario;
    switch (sweep.axis) {
      case SweepAxis::kMaxMeasurements: {
        const int cap = integral_value(sweep.axis, v, k);
        if (cap < 0) {
          throw core::ScenarioError("sweep axis max-measurements value #" +
                                    std::to_string(k) + " is negative");
        }
        sc.spec.max_altered_measurements = cap;
        break;
      }
      case SweepAxis::kMaxBuses: {
        const int cap = integral_value(sweep.axis, v, k);
        if (cap < 0) {
          throw core::ScenarioError("sweep axis max-buses value #" +
                                    std::to_string(k) + " is negative");
        }
        sc.spec.max_compromised_buses = cap;
        break;
      }
      case SweepAxis::kMaxTopologyChanges: {
        const int cap = integral_value(sweep.axis, v, k);
        if (cap < 0) {
          throw core::ScenarioError(
              "sweep axis max-topology-changes value #" + std::to_string(k) +
              " is negative");
        }
        sc.spec.max_topology_changes = cap;
        break;
      }
      case SweepAxis::kSecureMeasurement: {
        const int id = id_value(sweep.axis, v, k, sc.plan.num_potential(),
                                "measurement");
        sc.plan.set_secured(id - 1, true);
        break;
      }
      case SweepAxis::kSecureBus: {
        const int id =
            id_value(sweep.axis, v, k, sc.grid.num_buses(), "bus");
        sc.plan.secure_bus(id - 1, sc.grid);
        break;
      }
      case SweepAxis::kTarget: {
        const int id =
            id_value(sweep.axis, v, k, sc.grid.num_buses(), "bus");
        sc.spec.target_states.assign(1, id - 1);
        break;
      }
      case SweepAxis::kMinTargetShift: {
        if (!std::isfinite(v)) {
          throw core::ScenarioError("sweep axis min-target-shift value #" +
                                    std::to_string(k) + " is not finite");
        }
        if (v < 0) {
          throw core::ScenarioError("sweep axis min-target-shift value #" +
                                    std::to_string(k) + " is negative");
        }
        sc.spec.min_target_shift = v;
        break;
      }
    }
    out.push_back(std::move(req));
  }
  return out;
}

}  // namespace psse::service
