#include "service/session_cache.h"

#include <utility>

namespace psse::service {

// A family bundles the scenario its models reference (grid lifetime!) with
// the idle sessions of that family. `last_used` drives cross-family LRU
// eviction of idle sessions.
struct SolverSessionCache::Lease::Family {
  Family(std::uint64_t key, core::Scenario base)
      : key(key), base(std::move(base)) {}

  std::uint64_t key;
  core::Scenario base;
  struct Idle {
    std::unique_ptr<core::UfdiAttackModel> model;
    std::uint64_t last_used = 0;
  };
  std::vector<Idle> idle;
};

// The cache's shared state. Leases hold a weak_ptr, so check-in after the
// cache died locks to null and the session is simply dropped.
struct SolverSessionCache::Lease::State {
  Options options;
  mutable std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<Family>> families;
  std::uint64_t tick = 0;  // LRU clock for idle eviction
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::size_t idle_count = 0;

  void checkin(const std::shared_ptr<Family>& family,
               std::unique_ptr<core::UfdiAttackModel> model) {
    std::lock_guard<std::mutex> lock(mu);
    // A family evicted wholesale while this lease was out is no longer in
    // the map; re-inserting would resurrect a stale entry, so drop.
    auto it = families.find(family->key);
    if (it == families.end() || it->second != family) return;
    family->idle.push_back({std::move(model), ++tick});
    ++idle_count;
    while (idle_count > options.max_idle_sessions) {
      // Evict the globally least-recently-used idle session.
      Family* victim = nullptr;
      std::size_t victim_slot = 0;
      std::uint64_t oldest = UINT64_MAX;
      for (auto& [key, fam] : families) {
        for (std::size_t s = 0; s < fam->idle.size(); ++s) {
          if (fam->idle[s].last_used < oldest) {
            oldest = fam->idle[s].last_used;
            victim = fam.get();
            victim_slot = s;
          }
        }
      }
      if (victim == nullptr) break;
      victim->idle.erase(victim->idle.begin() +
                         static_cast<std::ptrdiff_t>(victim_slot));
      --idle_count;
      ++evictions;
    }
    // Families with no idle sessions stay in the map: each is one Scenario
    // and keeps the base alive for leases still in flight.
  }
};

SolverSessionCache::SolverSessionCache(const Options& options)
    : state_(std::make_shared<Lease::State>()) {
  state_->options = options;
}

SolverSessionCache::Lease SolverSessionCache::acquire(
    std::uint64_t familyKey, const core::Scenario& base) {
  std::shared_ptr<Lease::Family> family;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    auto it = state_->families.find(familyKey);
    if (it == state_->families.end()) {
      it = state_->families
               .emplace(familyKey,
                        std::make_shared<Lease::Family>(familyKey, base))
               .first;
    }
    family = it->second;
    if (!family->idle.empty()) {
      std::unique_ptr<core::UfdiAttackModel> model =
          std::move(family->idle.back().model);
      family->idle.pop_back();
      --state_->idle_count;
      ++state_->hits;
      return Lease(state_, std::move(family), std::move(model), true);
    }
    ++state_->misses;
  }
  // Encode outside the lock: fresh sessions of different families (or even
  // the same family under concurrent misses) build in parallel.
  auto model = std::make_unique<core::UfdiAttackModel>(
      family->base.grid, family->base.plan,
      core::strip_delta(family->base.spec), core::EncodeMode::kBase);
  return Lease(state_, std::move(family), std::move(model), false);
}

SolverSessionCache::Lease::~Lease() {
  if (model_ == nullptr) return;
  if (auto state = state_.lock()) {
    state->checkin(family_, std::move(model_));
  }
}

SolverSessionCache::Stats SolverSessionCache::stats() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  Stats s;
  s.hits = state_->hits;
  s.misses = state_->misses;
  s.evictions = state_->evictions;
  s.idle_sessions = state_->idle_count;
  s.families = state_->families.size();
  return s;
}

}  // namespace psse::service
