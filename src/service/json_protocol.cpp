#include "service/json_protocol.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <utility>
#include <vector>

#include "obs/json_writer.h"

namespace psse::service {

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON reader
// ---------------------------------------------------------------------------

struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw ProtocolError("JSON parse error at offset " +
                        std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_word(const char* w) {
    std::size_t n = 0;
    while (w[n] != '\0') ++n;
    if (s_.compare(pos_, n, w) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{':
        return object();
      case '[':
        return array();
      case '"': {
        JsonValue v;
        v.type = JsonValue::Type::kString;
        v.string = string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.type = JsonValue::Type::kBool;
        if (consume_word("true")) {
          v.boolean = true;
        } else if (consume_word("false")) {
          v.boolean = false;
        } else {
          fail("bad literal");
        }
        return v;
      }
      case 'n': {
        if (!consume_word("null")) fail("bad literal");
        return JsonValue{};
      }
      default:
        return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.type = JsonValue::Type::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object.emplace_back(std::move(key), value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.type = JsonValue::Type::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) fail("unterminated escape");
      char e = s_[pos_++];
      switch (e) {
        case '"':
          out += '"';
          break;
        case '\\':
          out += '\\';
          break;
        case '/':
          out += '/';
          break;
        case 'b':
          out += '\b';
          break;
        case 'f':
          out += '\f';
          break;
        case 'n':
          out += '\n';
          break;
        case 'r':
          out += '\r';
          break;
        case 't':
          out += '\t';
          break;
        case 'u':
          out += decode_unicode_escape();
          break;
        default:
          fail("bad escape");
      }
    }
  }

  std::string decode_unicode_escape() {
    unsigned cp = hex4();
    // Surrogate pair: a high surrogate must be followed by \uDC00..\uDFFF.
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      if (pos_ + 1 < s_.size() && s_[pos_] == '\\' && s_[pos_ + 1] == 'u') {
        pos_ += 2;
        unsigned lo = hex4();
        if (lo < 0xDC00 || lo > 0xDFFF) fail("bad low surrogate");
        cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
      } else {
        fail("lone high surrogate");
      }
    } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
      fail("lone low surrogate");
    }
    // UTF-8 encode.
    std::string out;
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
    return out;
  }

  unsigned hex4() {
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      if (pos_ >= s_.size()) fail("truncated \\u escape");
      char c = s_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("bad hex digit in \\u escape");
      }
    }
    return v;
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, pos_ - start);
    char* end = nullptr;
    const double d = std::strtod(tok.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number: " + tok);
    // strtod accepts overflowing literals ("1e999" -> +-HUGE_VAL) without
    // complaint; a non-finite value entering the request pipeline turns
    // into NaN-poisoned limits downstream, so reject it here, in band.
    if (!std::isfinite(d)) fail("number out of range: " + tok);
    JsonValue v;
    v.type = JsonValue::Type::kNumber;
    v.number = d;
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Request field extraction
// ---------------------------------------------------------------------------

const JsonValue& require(const JsonValue& obj, const std::string& key,
                         JsonValue::Type type, const char* what) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || v->type != type) {
    throw ProtocolError(std::string("request needs ") + what);
  }
  return *v;
}

std::string optional_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return "";
  if (v->type != JsonValue::Type::kString) {
    throw ProtocolError("field \"" + key + "\" must be a string");
  }
  return v->string;
}

double optional_number(const JsonValue& obj, const std::string& key,
                       double fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->type != JsonValue::Type::kNumber) {
    throw ProtocolError("field \"" + key + "\" must be a number");
  }
  return v->number;
}

bool optional_bool(const JsonValue& obj, const std::string& key,
                   bool fallback) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) return fallback;
  if (v->type != JsonValue::Type::kBool) {
    throw ProtocolError("field \"" + key + "\" must be a boolean");
  }
  return v->boolean;
}

/// Deadlines must be finite and non-negative; number() already rejects the
/// non-finite literals, this catches "-5".
double time_limit_field(const JsonValue& obj) {
  const double limit = optional_number(obj, "time_limit", 0);
  if (limit < 0) {
    throw ProtocolError("field \"time_limit\" must be non-negative");
  }
  return limit;
}

core::Scenario load_request_scenario(const JsonValue& obj) {
  const std::string text = optional_string(obj, "scenario");
  const std::string file = optional_string(obj, "scenario_file");
  if (text.empty() == file.empty()) {
    throw ProtocolError(
        "request needs exactly one of \"scenario\" (inline text) or "
        "\"scenario_file\" (path)");
  }
  if (!file.empty()) return core::Scenario::load(file);
  std::istringstream in(text);
  return core::Scenario::parse(in, "<request scenario>");
}

std::string fp_hex(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return buf;
}

}  // namespace

ParsedRequest parse_request(const std::string& line) {
  const JsonValue root = JsonParser(line).parse();
  if (root.type != JsonValue::Type::kObject) {
    throw ProtocolError("request must be a JSON object");
  }
  const std::string op =
      require(root, "op", JsonValue::Type::kString, "a string \"op\"")
          .string;

  ParsedRequest out;
  out.id = optional_string(root, "id");
  if (op == "stats") {
    out.op = ParsedRequest::Op::kStats;
    return out;
  }
  if (op == "verify") {
    out.op = ParsedRequest::Op::kVerify;
    out.verify.id = out.id;
    out.verify.scenario = load_request_scenario(root);
    out.verify.time_limit_seconds = time_limit_field(root);
    const double portfolio = optional_number(root, "portfolio", 0);
    // Range-check before the size_t cast: converting an out-of-range
    // double (say 1e300) to an integer is undefined behaviour, so the old
    // "cast and compare" integrality test was itself the bug for the very
    // inputs it should have rejected.
    constexpr double kMaxPortfolio = 4096;
    if (!(portfolio >= 0) || portfolio > kMaxPortfolio ||
        std::floor(portfolio) != portfolio) {
      throw ProtocolError(
          "field \"portfolio\" must be an integer in 0..4096");
    }
    out.verify.portfolio = static_cast<std::size_t>(portfolio);
    const std::string mode = optional_string(root, "portfolio_mode");
    if (mode == "cube") {
      out.verify.portfolio_cube = true;
    } else if (!mode.empty() && mode != "race") {
      throw ProtocolError(
          "field \"portfolio_mode\" must be \"race\" or \"cube\"");
    }
    out.verify.use_memo = optional_bool(root, "memo", true);
    out.verify.use_screen = optional_bool(root, "screen", true);
    return out;
  }
  if (op == "sweep") {
    out.op = ParsedRequest::Op::kSweep;
    out.sweep.id = out.id;
    out.sweep.scenario = load_request_scenario(root);
    out.sweep.axis = parse_sweep_axis(
        require(root, "axis", JsonValue::Type::kString, "a string \"axis\"")
            .string);
    const JsonValue* values = root.find("values");
    const bool has_range = root.find("from") != nullptr ||
                           root.find("to") != nullptr ||
                           root.find("step") != nullptr;
    if ((values != nullptr) == has_range) {
      throw ProtocolError(
          "sweep needs exactly one of \"values\" or \"from\"/\"to\"/"
          "\"step\"");
    }
    if (values != nullptr) {
      if (values->type != JsonValue::Type::kArray || values->array.empty()) {
        throw ProtocolError("field \"values\" must be a non-empty array");
      }
      for (const JsonValue& v : values->array) {
        if (v.type != JsonValue::Type::kNumber) {
          throw ProtocolError("field \"values\" must contain only numbers");
        }
        out.sweep.values.push_back(v.number);
      }
    } else {
      if (root.find("from") == nullptr || root.find("to") == nullptr ||
          root.find("step") == nullptr) {
        throw ProtocolError(
            "sweep range needs all of \"from\", \"to\", and \"step\"");
      }
      out.sweep.has_range = true;
      out.sweep.range_from = optional_number(root, "from", 0);
      out.sweep.range_to = optional_number(root, "to", 0);
      out.sweep.range_step = optional_number(root, "step", 0);
      // Degenerate ranges (zero step, step away from "to") are validated
      // by expand_sweep, whose errors come back in band per sweep.
    }
    out.sweep.time_limit_seconds = time_limit_field(root);
    out.sweep.use_memo = optional_bool(root, "memo", true);
    out.sweep.use_screen = optional_bool(root, "screen", true);
    return out;
  }
  throw ProtocolError("unknown op \"" + op +
                      "\" (expected verify, sweep, or stats)");
}

std::string encode_response(const ServiceResponse& response) {
  obs::JsonWriter w;
  w.field("id", response.id).field("ok", response.ok());
  if (!response.ok()) {
    w.field("error", response.error);
    if (response.sweep_index >= 0) {
      w.field("sweep_index", response.sweep_index);
    }
    return w.str();
  }
  w.field("verdict", smt::to_cstring(response.verdict));
  w.field_raw("altered", obs::json_int_array(response.altered_measurements));
  w.field("solve_s", response.solve_seconds)
      .field("queue_s", response.queue_seconds)
      .field("session_hit", response.session_hit)
      .field("memo_hit", response.memo_hit)
      .field("screened", response.screened)
      .field("screen_s", response.screen_seconds)
      .field("family", fp_hex(response.family))
      .field("fp", fp_hex(response.fingerprint));
  if (!response.winner.empty()) w.field("winner", response.winner);
  w.field("decisions", response.decisions)
      .field("conflicts", response.conflicts)
      .field("pivots", response.pivots);
  if (response.sweep_index >= 0) {
    w.field("sweep_index", response.sweep_index);
  }
  return w.str();
}

std::string encode_stats(const ServiceStats& stats) {
  obs::JsonWriter w;
  w.field("ok", true)
      .field("op", "stats")
      .field("requests", stats.requests)
      .field("errors", stats.errors)
      .field("sat", stats.sat)
      .field("unsat", stats.unsat)
      .field("unknown", stats.unknown)
      .field("screened", stats.screened)
      .field("session_hits", stats.sessions.hits)
      .field("session_misses", stats.sessions.misses)
      .field("session_evictions", stats.sessions.evictions)
      .field("idle_sessions",
             static_cast<std::uint64_t>(stats.sessions.idle_sessions))
      .field("families", static_cast<std::uint64_t>(stats.sessions.families))
      .field("memo_hits", stats.memo.hits)
      .field("memo_misses", stats.memo.misses)
      .field("memo_size", static_cast<std::uint64_t>(stats.memo.size))
      .field("queue_p50_us", stats.queue_p50_us)
      .field("queue_p95_us", stats.queue_p95_us)
      .field("queue_p99_us", stats.queue_p99_us)
      .field("solve_p50_us", stats.solve_p50_us)
      .field("solve_p95_us", stats.solve_p95_us)
      .field("solve_p99_us", stats.solve_p99_us)
      .field("total_p50_us", stats.total_p50_us)
      .field("total_p95_us", stats.total_p95_us)
      .field("total_p99_us", stats.total_p99_us);
  return w.str();
}

std::string encode_error(const std::string& id, const std::string& message) {
  obs::JsonWriter w;
  w.field("id", id).field("ok", false).field("error", message);
  return w.str();
}

}  // namespace psse::service
