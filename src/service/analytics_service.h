// AnalyticsService: the long-lived attack-analytics engine (DESIGN.md §6f).
//
// Callers submit ServiceRequests (full scenarios) or SweepRequests
// (scenario + axis + values) and get std::futures for ServiceResponses; a
// runtime::ThreadPool drains the queue. Per request the service
//
//   1. canonicalises: splits the scenario into its family base (grid, plan
//      with secured bits cleared, strip_delta(spec)) and a ScenarioDelta
//      (the sweep axes + the plan's secured set as assumptions), and
//      fingerprints both;
//   2. consults the ResultMemo under the combined fingerprint — an exact
//      repeat answers without touching a solver;
//   3. otherwise leases a warm kBase session from the SolverSessionCache
//      and runs verify_delta (push, assert delta, solve under secured
//      assumptions, pop — learnt clauses survive), or, for
//      portfolio requests, races fresh clones via verify_portfolio;
//   4. records queue-wait / solve / total latency into histograms and
//      emits a "service_request" trace event.
//
// stats() aggregates cache hit rates and p50/p95/p99 latencies;
// emit_stats() writes them as one "service_stats" trace event.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/histogram.h"
#include "obs/trace.h"
#include "runtime/cancellation.h"
#include "runtime/thread_pool.h"
#include "service/request.h"
#include "service/result_memo.h"
#include "service/session_cache.h"

namespace psse::service {

struct ServiceOptions {
  /// Worker threads draining the request queue.
  std::size_t threads = 4;
  /// Idle warm sessions kept across requests (see SolverSessionCache).
  std::size_t max_sessions = 32;
  /// Result-memo capacity in entries; 0 disables memoisation.
  std::size_t memo_capacity = 4096;
  /// Applied to requests whose own time_limit_seconds is 0; 0 = unlimited.
  double default_time_limit_seconds = 0;
  /// LP-relaxation screening (screen::LpScreen, DESIGN.md §6h): before a
  /// request reaches a solver, a warm per-family LP over the exact
  /// rational simplex decides whether *any* unobservable injection can
  /// reach the request's goal. Infeasible relaxation => Unsat, no SMT
  /// call; anything else falls through to the normal dispatch, so
  /// verdicts are bit-identical with screening on or off.
  bool screen = true;
  /// Warm per-family screens kept alive (each holds one simplex tableau
  /// sized like the DC model); 0 disables screening outright.
  std::size_t max_screens = 32;
  /// Structured tracing for request/stats events; also handed to portfolio
  /// runs. The sink must outlive the service.
  obs::Config trace;
};

struct ServiceStats {
  std::uint64_t requests = 0;
  std::uint64_t errors = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat = 0;
  std::uint64_t unknown = 0;
  /// Requests answered Unsat by the LP screen alone (no SMT dispatch).
  std::uint64_t screened = 0;
  SolverSessionCache::Stats sessions;
  ResultMemo::Stats memo;
  /// Microsecond latency percentiles (bucket upper bounds, see
  /// obs::LatencyHistogram).
  std::uint64_t queue_p50_us = 0, queue_p95_us = 0, queue_p99_us = 0;
  std::uint64_t solve_p50_us = 0, solve_p95_us = 0, solve_p99_us = 0;
  std::uint64_t total_p50_us = 0, total_p95_us = 0, total_p99_us = 0;
};

class AnalyticsService {
 public:
  explicit AnalyticsService(const ServiceOptions& options = {});
  AnalyticsService(const AnalyticsService&) = delete;
  AnalyticsService& operator=(const AnalyticsService&) = delete;
  /// Drains in-flight requests (pool shutdown), then tears down the caches.
  ~AnalyticsService();

  /// Enqueues one request. The future never throws for scenario/solve
  /// problems — failures come back as ServiceResponse::error — only for
  /// internal misuse (broken promise).
  [[nodiscard]] std::future<ServiceResponse> submit(ServiceRequest request);

  /// Expands the sweep (expand_sweep) and enqueues every point. Points of
  /// one sweep share a family, so after the first miss they all run as
  /// deltas on warm sessions. Throws what expand_sweep throws on malformed
  /// axis values; once enqueued, per-point failures come back in-band.
  [[nodiscard]] std::vector<std::future<ServiceResponse>> submit_sweep(
      const SweepRequest& sweep);

  /// Requests cancellation of every request submitted so far — in-flight
  /// solves return Unknown promptly, queued ones observe the flag when a
  /// worker picks them up (they still produce responses). Requests
  /// submitted afterwards run normally on a fresh flag.
  void cancel_all();

  [[nodiscard]] ServiceStats stats() const;
  /// Emits stats() as one "service_stats" trace event (no-op untraced).
  void emit_stats();

  [[nodiscard]] std::size_t threads() const { return pool_->size(); }

 private:
  /// One per family: a warm screen::LpScreen plus a per-delta verdict memo
  /// (defined in the .cpp; shared_ptr keeps evicted entries alive for
  /// in-flight users).
  struct ScreenEntry;

  [[nodiscard]] ServiceResponse process(const ServiceRequest& request,
                                        std::chrono::steady_clock::time_point
                                            enqueued,
                                        runtime::CancellationToken cancel);
  /// Looks up (or builds) the warm screen for `family`; returns nullptr
  /// when the screen could not be constructed (screening then simply
  /// doesn't apply — never an error).
  [[nodiscard]] std::shared_ptr<ScreenEntry> screen_for(
      std::uint64_t family, const core::Scenario& base);
  /// Snapshot of the current cancellation flag (taken at submit time, so
  /// cancel_all covers everything already enqueued).
  [[nodiscard]] runtime::CancellationToken cancel_token();

  ServiceOptions options_;
  SolverSessionCache sessions_;
  ResultMemo memo_;
  std::mutex screens_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<ScreenEntry>> screens_;
  std::mutex cancel_mu_;
  runtime::CancellationSource cancel_;
  obs::LatencyHistogram queue_hist_;
  obs::LatencyHistogram solve_hist_;
  obs::LatencyHistogram total_hist_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> sat_{0};
  std::atomic<std::uint64_t> unsat_{0};
  std::atomic<std::uint64_t> unknown_{0};
  std::atomic<std::uint64_t> screened_{0};
  /// Last member: workers must die before the state they touch.
  std::unique_ptr<runtime::ThreadPool> pool_;
};

}  // namespace psse::service
