// Request/response vocabulary of the attack-analytics service.
//
// A ServiceRequest carries one full scenario (the same object the scenario
// files parse into); the service splits it into a *family base* — grid,
// measurement layout with secured bits cleared, strip_delta(spec) — and a
// core::ScenarioDelta, so related requests share a warm solver session
// (see SolverSessionCache). A SweepRequest is the server-side form of a
// fig4/fig5 axis: one scenario plus an axis and its values, expanded into
// a delta family by expand_sweep() so the whole sweep runs on one session
// without the client chattering N scenarios across the wire.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/scenario.h"
#include "smt/solver.h"

namespace psse::service {

struct ServiceRequest {
  /// Client-chosen correlation id, echoed into the response and the
  /// "service_request" trace event.
  std::string id;
  core::Scenario scenario;
  /// Per-request deadline; 0 falls back to ServiceOptions::
  /// default_time_limit_seconds (0 there too = unlimited).
  double time_limit_seconds = 0;
  /// >0: race a diversified portfolio of this many members on fresh clones
  /// instead of reusing a warm session (trades delta reuse for race
  /// parallelism on hard single queries).
  std::size_t portfolio = 0;
  /// Portfolio strategy when portfolio > 0: false races full copies,
  /// true splits the instance with cube-and-conquer
  /// (runtime::PortfolioMode::kCubeAndConquer) — the right choice for
  /// hard all-UNSAT queries, where racing just repeats one proof N times.
  /// Protocol field "portfolio_mode": "race" | "cube".
  bool portfolio_cube = false;
  /// Consult/populate the result memo for this request.
  bool use_memo = true;
  /// Run the LP-relaxation screen (screen::LpScreen) before dispatching to
  /// a solver; a provably infeasible relaxation answers Unsat without an
  /// SMT call. Verdicts are identical either way — this is the per-request
  /// form of the service-wide ServiceOptions::screen switch.
  bool use_screen = true;
  /// Position within an expanded sweep; -1 for standalone requests.
  int sweep_index = -1;
};

/// The sweepable axes a SweepRequest can expand server-side. Mirrors the
/// fig4/fig5 experiment families: resource limits (fig4c/fig5c), secured
/// toggles (the synthesis inner loop), target stepping, and the magnitude
/// extension.
enum class SweepAxis {
  kMaxMeasurements,   // T_CZ values
  kMaxBuses,          // T_CB values
  kMaxTopologyChanges,
  kSecureMeasurement,  // 1-based measurement id secured on top of scenario
  kSecureBus,          // 1-based bus id secured on top of scenario
  kTarget,             // 1-based bus id replacing the target set
  kMinTargetShift,     // radians
};

/// Parses the protocol's axis name ("max-measurements", "max-buses",
/// "max-topology-changes", "secure-measurement", "secure-bus", "target",
/// "min-target-shift"); throws std::invalid_argument on anything else.
[[nodiscard]] SweepAxis parse_sweep_axis(const std::string& name);
[[nodiscard]] const char* sweep_axis_name(SweepAxis axis);

struct SweepRequest {
  std::string id;
  core::Scenario scenario;
  SweepAxis axis = SweepAxis::kMaxMeasurements;
  /// Axis values; for the id-valued axes these are 1-based ids (matching
  /// the scenario file format) and must be integral. Mutually exclusive
  /// with the range form below.
  std::vector<double> values;
  /// Range form: values from, from+step, ... up to and including `to`
  /// (inclusive whenever it lands exactly). expand_sweep validates the
  /// axis: a zero step, a step pointing away from `to`, or a non-finite
  /// endpoint is an error, never a silently empty sweep.
  bool has_range = false;
  double range_from = 0;
  double range_to = 0;
  double range_step = 0;
  double time_limit_seconds = 0;
  bool use_memo = true;
  bool use_screen = true;
};

/// Expands a sweep into per-value requests (ids "<id>[<k>]", sweep_index
/// k). Id-valued axes are range-checked here; a bad value, a degenerate
/// range, or an expansion with no points throws core::ScenarioError naming
/// the problem — callers see an in-band error instead of a sweep that
/// quietly answers nothing.
[[nodiscard]] std::vector<ServiceRequest> expand_sweep(
    const SweepRequest& sweep);

struct ServiceResponse {
  std::string id;
  /// Non-empty on failure; every other field except queue_seconds is then
  /// meaningless.
  std::string error;
  smt::SolveResult verdict = smt::SolveResult::Unknown;
  /// Altered measurement ids (1-based, sorted) of the witness when SAT.
  std::vector<int> altered_measurements;
  double solve_seconds = 0;
  double queue_seconds = 0;
  /// Warm-session reuse and memoisation attribution for this request.
  bool session_hit = false;
  bool memo_hit = false;
  /// True when the LP-relaxation screen proved the scenario Unsat and the
  /// SMT solve was skipped; screen_seconds is the screening cost either
  /// way (0 when screening was off or the memo answered first).
  bool screened = false;
  double screen_seconds = 0;
  /// Family (session-cache key) and full scenario fingerprint — the same
  /// values emitted into trace events, so service responses join against
  /// traces from any tool.
  std::uint64_t family = 0;
  std::uint64_t fingerprint = 0;
  /// Winning portfolio member label (portfolio requests only).
  std::string winner;
  /// Per-call solver effort (zero for memo hits).
  std::uint64_t decisions = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t pivots = 0;
  int sweep_index = -1;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

}  // namespace psse::service
