// Line-oriented JSON protocol of the analytics server: one request object
// per input line, one response object per output line (JSONL both ways).
//
// Requests ("op" selects the shape):
//
//   {"op":"verify","id":"q1","scenario":"case ieee14\n...","time_limit":5}
//   {"op":"verify","id":"q2","scenario_file":"data/ieee14_objective2.scn",
//    "portfolio":4,"memo":false}
//   {"op":"sweep","id":"s1","scenario_file":"...","axis":"max-measurements",
//    "values":[4,8,12,16],"time_limit":5}
//   {"op":"stats"}
//
// `scenario` embeds scenario-file text verbatim (newlines escaped per
// JSON); `scenario_file` loads from disk server-side. Responses are
// encode_response()/encode_stats() lines; a request that cannot be parsed
// at all yields encode_error() with whatever id could be salvaged.
//
// The parser is a self-contained recursive-descent JSON reader (RFC 8259
// subset: no duplicate-key policing, \uXXXX decoded to UTF-8, numbers as
// double) — deliberately minimal, matching the writer-side JsonWriter.
#pragma once

#include <stdexcept>
#include <string>

#include "service/analytics_service.h"
#include "service/request.h"

namespace psse::service {

class ProtocolError : public std::runtime_error {
 public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

struct ParsedRequest {
  enum class Op { kVerify, kSweep, kStats };
  Op op = Op::kVerify;
  std::string id;
  ServiceRequest verify;  // populated when op == kVerify
  SweepRequest sweep;     // populated when op == kSweep
};

/// Parses one request line. Throws ProtocolError on malformed JSON or a
/// missing/mistyped field, core::ScenarioError on bad scenario text, and
/// std::invalid_argument on an unknown sweep axis.
[[nodiscard]] ParsedRequest parse_request(const std::string& line);

/// One response line (no trailing newline). Fingerprints render as
/// fixed-width hex strings — double-based JSON consumers cannot hold a
/// 64-bit integer.
[[nodiscard]] std::string encode_response(const ServiceResponse& response);

/// The "stats" op's response line.
[[nodiscard]] std::string encode_stats(const ServiceStats& stats);

/// An in-band failure line for requests that never reached the service.
[[nodiscard]] std::string encode_error(const std::string& id,
                                       const std::string& message);

}  // namespace psse::service
