// SolverSessionCache: persistent warm UfdiAttackModel instances keyed by
// family fingerprint (grid + measurement layout + base spec).
//
// A *session* is a kBase-mode attack model: the structural constraint
// system encoded once, ready to answer any ScenarioDelta of its family via
// push/pop (keeping its learnt-clause database across queries). The cache
// maps family key -> a bag of idle sessions; acquire() checks one out (or
// builds one on miss), the returned RAII Lease checks it back in. Sessions
// are exclusive while leased — solver instances are not thread-safe — but
// any number of leases of the *same family* can be live at once: the cache
// simply grows another instance, so concurrent workers never serialise on
// a hot family.
//
// Ownership: each family entry owns a copy of its base Scenario (the grid
// the models reference), held by shared_ptr. A Lease keeps its family
// alive, so evicting a family with outstanding leases is safe — the models
// drain and die with the last lease instead of dangling. Leases reach the
// cache through a weak_ptr to its shared state, so a lease that outlives
// the cache itself just drops its session.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "core/attack_model.h"
#include "core/scenario.h"

namespace psse::service {

class SolverSessionCache {
 public:
  struct Options {
    /// Maximum *idle* sessions resident across all families; the
    /// least-recently-used idle session is dropped beyond this. Leased
    /// sessions are not counted (they are bounded by the worker count).
    std::size_t max_idle_sessions = 32;
  };

  struct Stats {
    std::uint64_t hits = 0;        // acquire served by a warm idle session
    std::uint64_t misses = 0;      // acquire had to encode a fresh session
    std::uint64_t evictions = 0;   // idle sessions dropped over capacity
    std::size_t idle_sessions = 0;
    std::size_t families = 0;
  };

  class Lease {
   public:
    Lease() = default;
    Lease(Lease&&) noexcept = default;
    Lease& operator=(Lease&&) noexcept = default;
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    /// Checks the session back in (or drops it if the cache is gone).
    ~Lease();

    [[nodiscard]] bool valid() const { return model_ != nullptr; }
    /// Warm reuse: the session answered a previous query of this family.
    [[nodiscard]] bool hit() const { return hit_; }
    [[nodiscard]] core::UfdiAttackModel& model() { return *model_; }

   private:
    friend class SolverSessionCache;
    struct Family;
    struct State;
    Lease(std::weak_ptr<State> state, std::shared_ptr<Family> family,
          std::unique_ptr<core::UfdiAttackModel> model, bool hit)
        : state_(std::move(state)),
          family_(std::move(family)),
          model_(std::move(model)),
          hit_(hit) {}

    std::weak_ptr<State> state_;
    std::shared_ptr<Family> family_;
    std::unique_ptr<core::UfdiAttackModel> model_;
    bool hit_ = false;
  };

  SolverSessionCache() : SolverSessionCache(Options{}) {}
  explicit SolverSessionCache(const Options& options);
  SolverSessionCache(const SolverSessionCache&) = delete;
  SolverSessionCache& operator=(const SolverSessionCache&) = delete;

  /// Checks out a warm session for `familyKey`, encoding a fresh one from
  /// `base` on miss (the base scenario is copied into the family on first
  /// sight; later calls with the same key ignore it). Model construction
  /// runs outside the cache lock, so concurrent misses encode in parallel.
  [[nodiscard]] Lease acquire(std::uint64_t familyKey,
                              const core::Scenario& base);

  [[nodiscard]] Stats stats() const;

 private:
  std::shared_ptr<Lease::State> state_;
};

}  // namespace psse::service
