#include "service/analytics_service.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <exception>
#include <utility>

#include "runtime/portfolio.h"
#include "screen/lp_screen.h"

namespace psse::service {

/// Warm LP screen for one family, plus a memo of screen verdicts keyed by
/// the *cap-free* delta fingerprint: the relaxation drops the resource
/// caps and magnitude thresholds entirely, so every point of a T_CZ/T_CB/
/// topology/magnitude sweep shares one screen verdict. The entry mutex
/// serialises the underlying simplex (LpScreen is not thread-safe).
struct AnalyticsService::ScreenEntry {
  explicit ScreenEntry(const core::Scenario& base)
      : screen(base.grid, base.plan, base.spec) {}
  std::mutex mu;
  screen::LpScreen screen;
  std::unordered_map<std::uint64_t, screen::ScreenResult> verdicts;
};

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

std::uint64_t us_between(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

/// Fingerprints travel as fixed-width hex strings: JSON numbers above 2^53
/// lose precision in double-based consumers, and hex matches how the fps
/// read in trace greps.
std::string fp_hex(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016" PRIx64, fp);
  return buf;
}

/// The part of a delta the LP screen can actually see: caps and magnitude
/// thresholds are dropped by the relaxation, so they are zeroed out of the
/// screen-memo key and sweep points along those axes hit one cached
/// verdict.
std::uint64_t screen_key(const core::ScenarioDelta& delta) {
  core::ScenarioDelta relaxed = delta;
  relaxed.max_altered_measurements = 0;
  relaxed.max_compromised_buses = 0;
  relaxed.max_topology_changes = 0;
  relaxed.min_target_shift = 0.0;
  relaxed.max_measurement_delta = 0.0;
  return core::delta_fingerprint(relaxed);
}

/// 1-based sorted measurement ids of a witness (the external id convention
/// of scenario files and batch_runner output).
std::vector<int> witness_measurements(const core::AttackVector& attack) {
  std::vector<int> ids;
  ids.reserve(attack.altered_measurements.size());
  for (grid::MeasId m : attack.altered_measurements) ids.push_back(m + 1);
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace

AnalyticsService::AnalyticsService(const ServiceOptions& options)
    : options_(options),
      sessions_(SolverSessionCache::Options{
          options.max_sessions == 0 ? 1 : options.max_sessions}),
      memo_(options.memo_capacity),
      pool_(std::make_unique<runtime::ThreadPool>(
          options.threads == 0 ? 1 : options.threads)) {}

AnalyticsService::~AnalyticsService() {
  // Drain workers before the caches they lease from go down.
  pool_.reset();
}

std::future<ServiceResponse> AnalyticsService::submit(
    ServiceRequest request) {
  const Clock::time_point enqueued = Clock::now();
  runtime::CancellationToken token = cancel_token();
  auto shared =
      std::make_shared<ServiceRequest>(std::move(request));
  return pool_->submit([this, shared, enqueued,
                        token]() -> ServiceResponse {
    return process(*shared, enqueued, token);
  });
}

std::vector<std::future<ServiceResponse>> AnalyticsService::submit_sweep(
    const SweepRequest& sweep) {
  std::vector<ServiceRequest> points = expand_sweep(sweep);
  std::vector<std::future<ServiceResponse>> futures;
  futures.reserve(points.size());
  for (ServiceRequest& point : points) {
    futures.push_back(submit(std::move(point)));
  }
  return futures;
}

void AnalyticsService::cancel_all() {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  cancel_.cancel();
  // Fresh flag for later submissions; in-flight tokens keep the cancelled
  // one alive.
  cancel_ = runtime::CancellationSource();
}

ServiceResponse AnalyticsService::process(
    const ServiceRequest& request, Clock::time_point enqueued,
    runtime::CancellationToken cancel) {
  const Clock::time_point started = Clock::now();
  ServiceResponse resp;
  resp.id = request.id;
  resp.sweep_index = request.sweep_index;
  resp.queue_seconds = seconds_between(enqueued, started);

  try {
    const core::Scenario& sc = request.scenario;

    // Canonical split: the family base is the scenario with every
    // ScenarioDelta axis removed — including the plan's secured bits, which
    // become assumption-applied delta.secured_measurements. Scenarios that
    // differ only in sweep axes thus share one warm session.
    core::ScenarioDelta delta = core::ScenarioDelta::of(sc.spec);
    core::Scenario base = sc;
    for (grid::MeasId m = 0; m < base.plan.num_potential(); ++m) {
      if (base.plan.secured(m)) {
        base.plan.set_secured(m, false);
        delta.secured_measurements.push_back(m);
      }
    }
    base.spec = core::strip_delta(sc.spec);

    resp.family = core::family_fingerprint(sc.grid, sc.plan, sc.spec);
    resp.fingerprint = core::combine_fingerprints(
        resp.family, core::delta_fingerprint(delta));

    if (request.use_memo && options_.memo_capacity > 0) {
      if (std::optional<MemoEntry> memo = memo_.lookup(resp.fingerprint)) {
        resp.memo_hit = true;
        resp.verdict = memo->verdict;
        resp.altered_measurements = memo->altered_measurements;
      }
    }

    if (!resp.memo_hit && options_.screen && options_.max_screens > 0 &&
        request.use_screen) {
      const Clock::time_point screen_start = Clock::now();
      if (std::shared_ptr<ScreenEntry> entry =
              screen_for(resp.family, base)) {
        const std::uint64_t key = screen_key(delta);
        std::lock_guard<std::mutex> lock(entry->mu);
        auto it = entry->verdicts.find(key);
        if (it == entry->verdicts.end()) {
          it = entry->verdicts.emplace(key, entry->screen.screen(delta))
                   .first;
        }
        if (it->second.verdict == screen::ScreenVerdict::kInfeasible) {
          // The relaxation has no nonzero unobservable injection reaching
          // the goal, so no SMT model exists either — answer Unsat
          // without dispatching. Sat can never be screened away, so the
          // verdict matches the unscreened run bit for bit.
          resp.screened = true;
          resp.verdict = smt::SolveResult::Unsat;
        }
      }
      resp.screen_seconds = seconds_between(screen_start, Clock::now());
    }

    if (!resp.memo_hit && !resp.screened) {
      smt::Budget budget;
      const double limit = request.time_limit_seconds > 0
                               ? request.time_limit_seconds
                               : options_.default_time_limit_seconds;
      if (limit > 0) {
        budget.max_time = std::chrono::milliseconds(
            static_cast<std::int64_t>(limit * 1000.0));
      }
      budget.stop = cancel.raw();

      if (request.portfolio > 0) {
        // Hard single queries trade warm reuse for a race on fresh clones.
        core::UfdiAttackModel model(sc.grid, sc.plan, sc.spec);
        runtime::PortfolioOptions popts;
        popts.num_threads = request.portfolio;
        popts.budget = budget;
        popts.trace = options_.trace;
        popts.mode = request.portfolio_cube
                         ? runtime::PortfolioMode::kCubeAndConquer
                         : runtime::PortfolioMode::kRace;
        runtime::PortfolioResult port =
            runtime::verify_portfolio(model, popts);
        resp.verdict = port.result();
        if (port.winner >= 0) {
          resp.winner =
              port.members[static_cast<std::size_t>(port.winner)].label;
        } else if (request.portfolio_cube &&
                   port.result() == smt::SolveResult::Unsat) {
          // Joint cube-tree refutation: no single member owns the proof.
          resp.winner = "cube-tree";
        }
        if (port.verification.attack) {
          resp.altered_measurements =
              witness_measurements(*port.verification.attack);
        }
        resp.decisions = port.verification.stats.sat.decisions;
        resp.conflicts = port.verification.stats.sat.conflicts;
        resp.pivots = port.verification.stats.pivots;
      } else {
        SolverSessionCache::Lease lease =
            sessions_.acquire(resp.family, base);
        resp.session_hit = lease.hit();
        core::VerificationResult result =
            lease.model().verify_delta(delta, budget);
        resp.verdict = result.result;
        if (result.attack) {
          resp.altered_measurements = witness_measurements(*result.attack);
        }
        resp.decisions = result.stats.sat.decisions;
        resp.conflicts = result.stats.sat.conflicts;
        resp.pivots = result.stats.pivots;
      }
    }

    // Screened verdicts are memoised too: an exact repeat then skips even
    // the (cheap) screen lookup.
    if (!resp.memo_hit && request.use_memo && options_.memo_capacity > 0) {
      MemoEntry entry;
      entry.verdict = resp.verdict;
      entry.altered_measurements = resp.altered_measurements;
      entry.solve_seconds = seconds_between(started, Clock::now());
      memo_.insert(resp.fingerprint, entry);
    }
  } catch (const std::exception& e) {
    resp.error = e.what();
  }

  const Clock::time_point finished = Clock::now();
  resp.solve_seconds = seconds_between(started, finished);

  queue_hist_.record(us_between(enqueued, started));
  solve_hist_.record(us_between(started, finished));
  total_hist_.record(us_between(enqueued, finished));
  ++requests_;
  if (resp.screened) ++screened_;
  if (!resp.ok()) {
    ++errors_;
  } else if (resp.verdict == smt::SolveResult::Sat) {
    ++sat_;
  } else if (resp.verdict == smt::SolveResult::Unsat) {
    ++unsat_;
  } else {
    ++unknown_;
  }

  if (options_.trace.enabled()) {
    obs::Event ev("service_request");
    ev.field("id", resp.id)
        .field("verdict", smt::to_cstring(resp.verdict))
        .field("queue_us", us_between(enqueued, started))
        .field("solve_us", us_between(started, finished))
        .field("session_hit", resp.session_hit)
        .field("memo_hit", resp.memo_hit)
        .field("screened", resp.screened)
        .field("screen_us",
               static_cast<std::uint64_t>(resp.screen_seconds * 1e6))
        .field("portfolio", static_cast<std::uint64_t>(request.portfolio))
        .field("portfolio_mode", request.portfolio_cube ? "cube" : "race")
        .field("family", fp_hex(resp.family))
        .field("fp", fp_hex(resp.fingerprint));
    if (resp.sweep_index >= 0) ev.field("sweep_index", resp.sweep_index);
    if (!resp.winner.empty()) ev.field("winner", resp.winner);
    if (!resp.ok()) ev.field("error", resp.error);
    ev.emit(options_.trace);
  }
  return resp;
}

std::shared_ptr<AnalyticsService::ScreenEntry> AnalyticsService::screen_for(
    std::uint64_t family, const core::Scenario& base) {
  {
    std::lock_guard<std::mutex> lock(screens_mu_);
    auto it = screens_.find(family);
    if (it != screens_.end()) return it->second;
  }
  // Build outside the map lock — construction walks the whole measurement
  // model. A lost race just drops the duplicate.
  std::shared_ptr<ScreenEntry> built;
  try {
    built = std::make_shared<ScreenEntry>(base);
  } catch (const std::exception&) {
    // A scenario the screen cannot model is not an error — the request
    // simply takes the unscreened path.
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(screens_mu_);
  auto [it, inserted] = screens_.emplace(family, std::move(built));
  if (inserted && screens_.size() > options_.max_screens) {
    // Evict an arbitrary other family; shared_ptr keeps any in-flight
    // users of the evicted entry alive.
    for (auto victim = screens_.begin(); victim != screens_.end();
         ++victim) {
      if (victim->first != family) {
        screens_.erase(victim);
        break;
      }
    }
  }
  return it->second;
}

runtime::CancellationToken AnalyticsService::cancel_token() {
  std::lock_guard<std::mutex> lock(cancel_mu_);
  return cancel_.token();
}

ServiceStats AnalyticsService::stats() const {
  ServiceStats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.sat = sat_.load(std::memory_order_relaxed);
  s.unsat = unsat_.load(std::memory_order_relaxed);
  s.unknown = unknown_.load(std::memory_order_relaxed);
  s.screened = screened_.load(std::memory_order_relaxed);
  s.sessions = sessions_.stats();
  s.memo = memo_.stats();
  s.queue_p50_us = queue_hist_.quantile_us(0.50);
  s.queue_p95_us = queue_hist_.quantile_us(0.95);
  s.queue_p99_us = queue_hist_.quantile_us(0.99);
  s.solve_p50_us = solve_hist_.quantile_us(0.50);
  s.solve_p95_us = solve_hist_.quantile_us(0.95);
  s.solve_p99_us = solve_hist_.quantile_us(0.99);
  s.total_p50_us = total_hist_.quantile_us(0.50);
  s.total_p95_us = total_hist_.quantile_us(0.95);
  s.total_p99_us = total_hist_.quantile_us(0.99);
  return s;
}

void AnalyticsService::emit_stats() {
  if (!options_.trace.enabled()) return;
  const ServiceStats s = stats();
  obs::Event ev("service_stats");
  ev.field("requests", s.requests)
      .field("errors", s.errors)
      .field("sat", s.sat)
      .field("unsat", s.unsat)
      .field("unknown", s.unknown)
      .field("screened", s.screened)
      .field("session_hits", s.sessions.hits)
      .field("session_misses", s.sessions.misses)
      .field("session_evictions", s.sessions.evictions)
      .field("families", static_cast<std::uint64_t>(s.sessions.families))
      .field("memo_hits", s.memo.hits)
      .field("memo_misses", s.memo.misses)
      .field("memo_size", static_cast<std::uint64_t>(s.memo.size))
      .field("queue_p50_us", s.queue_p50_us)
      .field("queue_p95_us", s.queue_p95_us)
      .field("queue_p99_us", s.queue_p99_us)
      .field("solve_p50_us", s.solve_p50_us)
      .field("solve_p95_us", s.solve_p95_us)
      .field("solve_p99_us", s.solve_p99_us)
      .field("total_p50_us", s.total_p50_us)
      .field("total_p95_us", s.total_p95_us)
      .field("total_p99_us", s.total_p99_us);
  ev.emit(options_.trace);
}

}  // namespace psse::service
