#include "smt/solver.h"

#include <algorithm>

#include "smt/bigint.h"
#include "smt/common.h"

namespace psse::smt {

namespace {

// Accounts an encode span to PhaseTimes::encode_us, but only for the
// outermost frame: encode() re-enters itself through Tseitin children and
// through assert_term's conjunct walk, and nested spans must not double
// count.
class EncodeSpan {
 public:
  EncodeSpan(bool enabled, int& depth, std::uint64_t& slot)
      : depth_(depth), slot_(slot), outermost_(enabled && depth == 0) {
    ++depth_;
    if (outermost_) start_ = obs::now_us();
  }
  EncodeSpan(const EncodeSpan&) = delete;
  EncodeSpan& operator=(const EncodeSpan&) = delete;
  ~EncodeSpan() {
    --depth_;
    if (outermost_) {
      slot_ += static_cast<std::uint64_t>(obs::now_us() - start_);
    }
  }

 private:
  int& depth_;
  std::uint64_t& slot_;
  bool outermost_;
  std::int64_t start_ = 0;
};

}  // namespace

Solver::Solver() { sat_.set_theory(this); }

void Solver::enable_phase_timing(bool on) {
  phase_timing_ = on;
  sat_.set_phase_times(on ? &phase_times_ : nullptr);
  simplex_.set_phase_times(on ? &phase_times_ : nullptr);
}

TVar Solver::simplex_var_for(const LinExpr& userExpr) {
  // Translate user-space real variables to simplex ids, creating on demand.
  auto ensure = [&](TVar user) {
    if (static_cast<std::size_t>(user) >= real_to_simplex_.size()) {
      real_to_simplex_.resize(static_cast<std::size_t>(user) + 1, kNoTVar);
    }
    TVar& sv = real_to_simplex_[static_cast<std::size_t>(user)];
    if (sv == kNoTVar) sv = simplex_.new_var(terms_.real_name(user));
    return sv;
  };
  if (userExpr.is_plain_var()) {
    return ensure(userExpr.terms()[0].first);
  }
  LinExpr translated;
  for (const auto& [v, c] : userExpr.terms()) {
    translated.add_term(ensure(v), c);
  }
  return simplex_.slack_for(translated);
}

Lit Solver::encode_node(std::int32_t index) {
  if (auto it = encoded_.find(index); it != encoded_.end()) return it->second;
  const TermNode& n = terms_.node(TermRef::node(index));
  Lit lit;
  switch (n.kind) {
    case TermKind::True: {
      Var v = sat_.new_var();
      sat_to_atom_.resize(static_cast<std::size_t>(sat_.num_vars()), -1);
      lit = Lit::pos(v);
      sat_.add_clause({lit});
      break;
    }
    case TermKind::BoolVar: {
      Var v = sat_.new_var();
      sat_to_atom_.resize(static_cast<std::size_t>(sat_.num_vars()), -1);
      lit = Lit::pos(v);
      break;
    }
    case TermKind::AtomLe:
    case TermKind::AtomLt: {
      Var v = sat_.new_var();
      sat_to_atom_.resize(static_cast<std::size_t>(sat_.num_vars()), -1);
      lit = Lit::pos(v);
      AtomInfo info;
      info.simplex_var = simplex_var_for(n.expr);
      info.is_lt = n.kind == TermKind::AtomLt;
      info.bound = n.bound;
      sat_to_atom_[static_cast<std::size_t>(v)] =
          static_cast<std::int32_t>(atoms_.size());
      TVar sv = info.simplex_var;
      if (static_cast<std::size_t>(sv) >= var_atoms_.size()) {
        var_atoms_.resize(static_cast<std::size_t>(sv) + 1);
      }
      var_atoms_[static_cast<std::size_t>(sv)].push_back(
          static_cast<std::int32_t>(atoms_.size()));
      simplex_.set_interesting(sv, true);
      atoms_.push_back(std::move(info));
      atom_sat_vars_.push_back(v);
      break;
    }
    case TermKind::And:
    case TermKind::Or: {
      // Tseitin with full equivalence (both polarities may occur).
      std::vector<Lit> childLits;
      childLits.reserve(n.children.size());
      for (TermRef c : n.children) childLits.push_back(encode(c));
      Var v = sat_.new_var();
      sat_to_atom_.resize(static_cast<std::size_t>(sat_.num_vars()), -1);
      lit = Lit::pos(v);
      if (n.kind == TermKind::And) {
        // v -> c_i ; (all c_i) -> v
        std::vector<Lit> big{lit};
        for (Lit c : childLits) {
          sat_.add_clause({~lit, c});
          big.push_back(~c);
        }
        sat_.add_clause(std::move(big));
      } else {
        // c_i -> v ; v -> (some c_i)
        std::vector<Lit> big{~lit};
        for (Lit c : childLits) {
          sat_.add_clause({~c, lit});
          big.push_back(c);
        }
        sat_.add_clause(std::move(big));
      }
      break;
    }
  }
  encoded_.emplace(index, lit);
  encoded_trail_.push_back(index);
  return lit;
}

Lit Solver::encode(TermRef t) {
  PSSE_CHECK(t.valid(), "encode: invalid term");
  EncodeSpan span(phase_timing_, encode_depth_, phase_times_.encode_us);
  Lit l = encode_node(t.index());
  return t.negated() ? ~l : l;
}

int Solver::probe_term(TermRef t) {
  PSSE_CHECK(t.valid(), "probe_term: invalid term");
  return sat_.probe_literal(encode(t));
}

double Solver::term_activity(TermRef t) {
  PSSE_CHECK(t.valid(), "term_activity: invalid term");
  return sat_.var_activity(encode(t).var());
}

void Solver::assert_term(TermRef t) {
  PSSE_CHECK(t.valid(), "assert_term: invalid term");
  if (t == terms_.mk_true()) return;
  if (t == terms_.mk_false()) {
    sat_.add_clause({});
    return;
  }
  const TermNode& n = terms_.node(t);
  if (!t.negated() && n.kind == TermKind::And) {
    // Top-level conjunctions are asserted child by child — keeps Tseitin
    // auxiliaries out of the common case of big constraint conjunctions.
    for (TermRef c : n.children) assert_term(c);
    return;
  }
  if (!t.negated() && n.kind == TermKind::Or) {
    // Top-level disjunction: one clause over child encodings.
    std::vector<Lit> clause;
    clause.reserve(n.children.size());
    for (TermRef c : n.children) clause.push_back(encode(c));
    sat_.add_clause(std::move(clause));
    return;
  }
  sat_.add_clause({encode(t)});
}

void Solver::add_at_most(const std::vector<TermRef>& bools, std::uint32_t k) {
  std::vector<Lit> lits;
  lits.reserve(bools.size());
  for (TermRef t : bools) lits.push_back(encode(t));
  sat_.add_at_most(std::move(lits), k);
}

void Solver::add_at_least(const std::vector<TermRef>& bools,
                          std::uint32_t k) {
  std::vector<Lit> lits;
  lits.reserve(bools.size());
  for (TermRef t : bools) lits.push_back(encode(t));
  sat_.add_at_least(std::move(lits), k);
}

void Solver::push() {
  sat_.push();
  save_points_.push_back({encoded_trail_.size(), atom_sat_vars_.size()});
}

void Solver::pop() {
  PSSE_CHECK(!save_points_.empty(), "Solver::pop without push");
  SavePoint sp = save_points_.back();
  save_points_.pop_back();
  sat_.pop();  // retracts all theory bounds via pop_to_assertion_count(0)
  // Drop encodings whose SAT variables no longer exist.
  while (encoded_trail_.size() > sp.encoded_trail) {
    encoded_.erase(encoded_trail_.back());
    encoded_trail_.pop_back();
  }
  while (atom_sat_vars_.size() > sp.atom_trail) {
    atom_sat_vars_.pop_back();
    TVar sv = atoms_.back().simplex_var;
    auto& va = var_atoms_[static_cast<std::size_t>(sv)];
    PSSE_ASSERT(!va.empty() && static_cast<std::size_t>(va.back()) ==
                                   atoms_.size() - 1);
    va.pop_back();
    if (va.empty()) simplex_.set_interesting(sv, false);
    atoms_.pop_back();
  }
  sat_to_atom_.resize(static_cast<std::size_t>(sat_.num_vars()), -1);
  // Simplex variables/rows created after the push stay allocated but are
  // unbounded and unreferenced — harmless, and slack sharing may revive
  // them after a re-push.
}

SolveResult Solver::solve(const std::vector<TermRef>& assumptions,
                          const Budget& budget) {
  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (TermRef t : assumptions) lits.push_back(encode(t));
  return sat_.solve(lits, budget);
}

bool Solver::bool_value(TermRef t) const {
  PSSE_CHECK(t.valid(), "bool_value: invalid term");
  auto it = encoded_.find(t.index());
  if (it != encoded_.end()) {
    bool v = sat_.model_value(it->second.var()) != it->second.negated();
    return t.negated() ? !v : v;
  }
  // Structural evaluation for terms that were never encoded.
  const TermNode& n = terms_.node(t);
  bool v = false;
  switch (n.kind) {
    case TermKind::True:
      v = true;
      break;
    case TermKind::BoolVar:
      // Unconstrained boolean: any value works; report false.
      v = false;
      break;
    case TermKind::And: {
      v = true;
      for (TermRef c : n.children) v = v && bool_value(c);
      break;
    }
    case TermKind::Or: {
      v = false;
      for (TermRef c : n.children) v = v || bool_value(c);
      break;
    }
    case TermKind::AtomLe:
    case TermKind::AtomLt: {
      Rational lhs;
      for (const auto& [var, coeff] : n.expr.terms()) {
        lhs += real_value(var) * coeff;
      }
      v = n.kind == TermKind::AtomLe ? lhs <= n.bound : lhs < n.bound;
      break;
    }
  }
  return t.negated() ? !v : v;
}

Rational Solver::real_value(TVar v) const {
  PSSE_CHECK(v >= 0 && v < terms_.num_reals(), "real_value: unknown variable");
  if (static_cast<std::size_t>(v) >= real_to_simplex_.size() ||
      real_to_simplex_[static_cast<std::size_t>(v)] == kNoTVar) {
    return Rational(0);  // variable never constrained
  }
  TVar sv = real_to_simplex_[static_cast<std::size_t>(v)];
  if (static_cast<std::size_t>(sv) < model_reals_.size()) {
    return model_reals_[static_cast<std::size_t>(sv)];
  }
  return Rational(0);
}

SolverStats Solver::stats() const {
  SolverStats st;
  st.sat = sat_.stats();
  st.pivots = simplex_.num_pivots();
  st.bound_flips = simplex_.num_bound_flips();
  st.bland_fallbacks = simplex_.num_bland_fallbacks();
  st.float_pivots = simplex_.num_float_pivots();
  st.exact_recomputes = simplex_.num_exact_recomputes();
  st.filter_disagreements = simplex_.num_filter_disagreements();
  st.filter_fallbacks = simplex_.num_filter_fallbacks();
  st.eta_updates = simplex_.num_eta_updates();
  st.refactorisations = simplex_.num_refactorisations();
  st.eta_file_len_max = simplex_.eta_file_len_max();
  st.bigint_promotions = bigint_promotions();
  st.num_terms = terms_.num_nodes();
  st.num_atoms = atoms_.size();
  st.num_bool_vars = static_cast<std::size_t>(sat_.num_vars());
  st.num_real_vars = static_cast<std::size_t>(simplex_.num_vars());
  st.footprint_bytes = sat_.footprint_bytes() + simplex_.footprint_bytes() +
                       terms_.footprint_bytes();
  st.arena_capacity_bytes = sat_.arena_capacity_bytes();
  st.arena_live_bytes = sat_.arena_live_bytes();
  return st;
}

// --- TheoryClient ---

bool Solver::is_theory_var(Var v) const {
  return static_cast<std::size_t>(v) < sat_to_atom_.size() &&
         sat_to_atom_[static_cast<std::size_t>(v)] >= 0;
}

bool Solver::on_assert(Lit lit) {
  const AtomInfo& atom =
      atoms_[static_cast<std::size_t>(
          sat_to_atom_[static_cast<std::size_t>(lit.var())])];
  assert_marks_.push_back(simplex_.trail_size());
  if (!lit.negated()) {
    // Atom holds: expr <= c (or < c).
    DeltaRational bound = atom.is_lt
                              ? DeltaRational::minus_delta(atom.bound)
                              : DeltaRational(atom.bound);
    return simplex_.assert_upper(atom.simplex_var, bound, lit);
  }
  // Atom fails: expr > c (or >= c).
  DeltaRational bound = atom.is_lt
                            ? DeltaRational(atom.bound)
                            : DeltaRational::plus_delta(atom.bound);
  return simplex_.assert_lower(atom.simplex_var, bound, lit);
}

bool Solver::check(bool /*final*/) { return simplex_.check(); }

std::vector<Lit> Solver::conflict_explanation() {
  return simplex_.conflict_clause();
}

void Solver::propagate(std::vector<TheoryPropagation>& out) {
  implied_.clear();
  simplex_.propagate_implied(implied_);
  for (const Simplex::ImpliedBound& ib : implied_) {
    // Translate the bound through every atom over the same simplex
    // variable. Atom truth means expr <= c (c - delta for strict atoms):
    // an implied upper bound B forces the atom true when B <= c, an
    // implied lower bound B forces it false when c < B.
    for (std::int32_t atomIdx : var_atoms_[static_cast<std::size_t>(ib.var)]) {
      const AtomInfo& atom = atoms_[static_cast<std::size_t>(atomIdx)];
      const Var sv = atom_sat_vars_[static_cast<std::size_t>(atomIdx)];
      const DeltaRational atomBound =
          atom.is_lt ? DeltaRational::minus_delta(atom.bound)
                     : DeltaRational(atom.bound);
      Lit forced;
      if (ib.is_upper) {
        if (!(ib.bound <= atomBound)) continue;
        forced = Lit::pos(sv);
      } else {
        if (!(atomBound < ib.bound)) continue;
        forced = Lit::neg(sv);
      }
      // Skip atoms the SAT core already assigned: the common case, and it
      // saves copying the premise set.
      if (sat_.value_of(forced) != LBool::Undef) continue;
      out.push_back({forced, ib.premises});
    }
  }
}

void Solver::pop_to_assertion_count(std::size_t n) {
  if (n >= assert_marks_.size()) return;
  simplex_.pop_to(assert_marks_[n]);
  assert_marks_.resize(n);
}

void Solver::on_model() {
  model_reals_.assign(static_cast<std::size_t>(simplex_.num_vars()),
                      Rational(0));
  for (TVar sv = 0; sv < simplex_.num_vars(); ++sv) {
    model_reals_[static_cast<std::size_t>(sv)] = simplex_.model_value(sv);
  }
}

}  // namespace psse::smt
