// Arbitrary-precision signed integers.
//
// The simplex theory solver pivots exact rational tableaus; coefficient
// growth during pivoting routinely overflows 64-bit (and even 128-bit)
// integers, so rationals are backed by this BigInt. The representation is
// sign + little-endian magnitude in 64-bit limbs, with the usual invariant
// that the magnitude has no trailing zero limbs and zero is non-negative.
//
// The implementation favours clarity over asymptotics: schoolbook
// multiplication and division are ample for the limb counts reached by the
// attack-model tableaus (admittances are small decimals; gcd-normalised
// rationals stay short).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace psse::smt {

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a native signed integer.
  BigInt(std::int64_t v);  // NOLINT(google-explicit-constructor): numeric literal interop is intended.

  /// Parses an optionally signed decimal string. Throws SmtError on
  /// malformed input (empty, non-digits).
  static BigInt from_string(std::string_view s);

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const { return limbs_.empty(); }
  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const { return negative_; }
  /// True iff the value is one.
  [[nodiscard]] bool is_one() const {
    return !negative_ && limbs_.size() == 1 && limbs_[0] == 1;
  }
  /// Sign as -1, 0, or +1.
  [[nodiscard]] int sign() const {
    return is_zero() ? 0 : (negative_ ? -1 : 1);
  }

  /// True iff the value fits in int64_t.
  [[nodiscard]] bool fits_int64() const;
  /// Value as int64_t; requires fits_int64().
  [[nodiscard]] std::int64_t to_int64() const;
  /// Closest double (may lose precision; infinities on overflow).
  [[nodiscard]] double to_double() const;
  /// Decimal string representation.
  [[nodiscard]] std::string to_string() const;

  /// Number of 64-bit limbs in the magnitude (0 for zero). Used by the
  /// memory accounting in bench/table4_memory.
  [[nodiscard]] std::size_t limb_count() const { return limbs_.size(); }

  [[nodiscard]] BigInt operator-() const;
  [[nodiscard]] BigInt abs() const;

  BigInt& operator+=(const BigInt& rhs);
  BigInt& operator-=(const BigInt& rhs);
  BigInt& operator*=(const BigInt& rhs);
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws SmtError on division by zero.
  BigInt& operator/=(const BigInt& rhs);
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs);

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b);

  /// Greatest common divisor; result is non-negative. gcd(0,0) == 0.
  static BigInt gcd(BigInt a, BigInt b);
  /// Quotient and remainder in one division (truncated semantics).
  static void div_mod(const BigInt& num, const BigInt& den, BigInt& quot,
                      BigInt& rem);
  /// 10^exp for small non-negative exponents (decimal scaling).
  static BigInt pow10(unsigned exp);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

 private:
  // Magnitude comparison helpers (ignore sign).
  static int cmp_mag(const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b);
  static void add_mag(std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b);
  // Requires |a| >= |b|.
  static void sub_mag(std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_mag(
      const std::vector<std::uint64_t>& a,
      const std::vector<std::uint64_t>& b);
  static void divmod_mag(const std::vector<std::uint64_t>& num,
                         const std::vector<std::uint64_t>& den,
                         std::vector<std::uint64_t>& quot,
                         std::vector<std::uint64_t>& rem);
  void trim();

  bool negative_ = false;
  std::vector<std::uint64_t> limbs_;  // little-endian, no trailing zeros
};

}  // namespace psse::smt
