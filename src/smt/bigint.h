// Arbitrary-precision signed integers with a tagged small-value fast path.
//
// The simplex theory solver pivots exact rational tableaus; coefficient
// growth during pivoting routinely overflows 64-bit (and even 128-bit)
// integers, so rationals are backed by this BigInt. Most values never get
// there, though: admittances are small decimals and gcd-normalised
// coefficients stay short, so the representation is *tagged*:
//
//   - inline:  a single std::int64_t stored in-object (`small_`). No heap.
//   - limbs:   sign + little-endian magnitude in 64-bit limbs, used only
//              when the value does not fit in int64_t.
//
// Canonical-form invariants (maintained by every operation, so equality is
// structural and representation is unique per value):
//   - a value is inline if and only if it fits in int64_t (INT64_MIN and
//     INT64_MAX inclusive); zero is always inline (small_ == 0);
//   - in limb form the magnitude has no trailing zero limbs and
//     `negative_` carries the sign (a limb-form value is never zero).
// Operations promote to limb form only on native overflow (detected with
// __builtin_*_overflow) and demote back on trim, so the hot small×small
// add/sub/mul/divmod/gcd paths are pure register arithmetic with zero
// allocations. The schoolbook limb routines remain the big-value backend
// and are exposed as reference_* entry points for differential testing.
#pragma once

#include <bit>
#include <compare>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <string>
#include <string_view>
#include <vector>

namespace psse::smt {

/// Lifetime count of inline -> limb promotions performed by this thread's
/// BigInt arithmetic. A promotion marks a genuine 64-bit overflow — the
/// moment a solve leaves the allocation-free fast path — so the trace layer
/// reports the per-solve delta as "big-path promotions". Thread-local
/// because parallel solver clones each run on their own thread; a solver's
/// counters must not see a sibling's arithmetic.
[[nodiscard]] std::uint64_t bigint_promotions() noexcept;

class BigInt {
 public:
  /// Zero.
  BigInt() = default;
  /// From a native signed integer (inline, no allocation).
  BigInt(std::int64_t v) : small_(v) {}  // NOLINT(google-explicit-constructor): numeric literal interop is intended.

  /// Parses an optionally signed decimal string. Throws SmtError on
  /// malformed input (empty, non-digits).
  static BigInt from_string(std::string_view s);

  /// True iff the value is stored inline (fits int64_t; canonical form
  /// guarantees the converse too).
  [[nodiscard]] bool is_inline() const { return inline_; }
  /// Unchecked inline value; requires is_inline().
  [[nodiscard]] std::int64_t inline_value() const { return small_; }

  /// True iff the value is zero.
  [[nodiscard]] bool is_zero() const { return inline_ && small_ == 0; }
  /// True iff the value is strictly negative.
  [[nodiscard]] bool is_negative() const {
    return inline_ ? small_ < 0 : negative_;
  }
  /// True iff the value is one.
  [[nodiscard]] bool is_one() const { return inline_ && small_ == 1; }
  /// Sign as -1, 0, or +1.
  [[nodiscard]] int sign() const {
    if (inline_) return small_ == 0 ? 0 : (small_ < 0 ? -1 : 1);
    return negative_ ? -1 : 1;
  }

  /// True iff the value fits in int64_t (equivalent to is_inline() in
  /// canonical form).
  [[nodiscard]] bool fits_int64() const { return inline_; }
  /// Value as int64_t; requires fits_int64().
  [[nodiscard]] std::int64_t to_int64() const;
  /// Closest double (may lose precision; infinities on overflow).
  [[nodiscard]] double to_double() const;
  /// Decimal string representation.
  [[nodiscard]] std::string to_string() const;

  /// Number of heap-allocated 64-bit limbs in use (0 when the value is
  /// stored inline). Used by the memory accounting in bench/table4_memory.
  [[nodiscard]] std::size_t limb_count() const {
    return inline_ ? 0 : limbs_.size();
  }
  /// Heap bytes owned by this value (limb buffer capacity; 0 unless the
  /// value has ever been promoted). The honest Table IV quantity.
  [[nodiscard]] std::size_t heap_bytes() const {
    return limbs_.capacity() * sizeof(std::uint64_t);
  }

  /// In-place negation (no allocation except at the INT64_MIN edge).
  void negate();
  [[nodiscard]] BigInt operator-() const {
    BigInt out = *this;
    out.negate();
    return out;
  }
  [[nodiscard]] BigInt abs() const {
    BigInt out = *this;
    if (out.is_negative()) out.negate();
    return out;
  }

  BigInt& operator+=(const BigInt& rhs) {
    if (inline_ && rhs.inline_) {
      std::int64_t r;
      if (!__builtin_add_overflow(small_, rhs.small_, &r)) {
        small_ = r;
        return *this;
      }
    }
    return add_slow(rhs);
  }
  BigInt& operator-=(const BigInt& rhs) {
    if (inline_ && rhs.inline_) {
      std::int64_t r;
      if (!__builtin_sub_overflow(small_, rhs.small_, &r)) {
        small_ = r;
        return *this;
      }
    }
    return sub_slow(rhs);
  }
  BigInt& operator*=(const BigInt& rhs) {
    if (inline_ && rhs.inline_) {
      std::int64_t r;
      if (!__builtin_mul_overflow(small_, rhs.small_, &r)) {
        small_ = r;
        return *this;
      }
    }
    return mul_slow(rhs);
  }
  /// Truncated division (C++ semantics: quotient rounds toward zero).
  /// Throws SmtError on division by zero.
  BigInt& operator/=(const BigInt& rhs) {
    if (inline_ && rhs.inline_ && rhs.small_ != 0 &&
        !(small_ == std::numeric_limits<std::int64_t>::min() &&
          rhs.small_ == -1)) {
      small_ /= rhs.small_;
      return *this;
    }
    return div_slow(rhs);
  }
  /// Remainder matching truncated division: (a/b)*b + a%b == a.
  BigInt& operator%=(const BigInt& rhs) {
    if (inline_ && rhs.inline_ && rhs.small_ != 0 &&
        !(small_ == std::numeric_limits<std::int64_t>::min() &&
          rhs.small_ == -1)) {
      small_ %= rhs.small_;
      return *this;
    }
    return mod_slow(rhs);
  }

  friend BigInt operator+(BigInt a, const BigInt& b) { return a += b; }
  friend BigInt operator-(BigInt a, const BigInt& b) { return a -= b; }
  friend BigInt operator*(BigInt a, const BigInt& b) { return a *= b; }
  friend BigInt operator/(BigInt a, const BigInt& b) { return a /= b; }
  friend BigInt operator%(BigInt a, const BigInt& b) { return a %= b; }

  friend bool operator==(const BigInt& a, const BigInt& b) {
    if (a.inline_ != b.inline_) return false;  // canonical form is unique
    if (a.inline_) return a.small_ == b.small_;
    return a.negative_ == b.negative_ && a.limbs_ == b.limbs_;
  }
  friend std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
    if (a.inline_ && b.inline_) return a.small_ <=> b.small_;
    return cmp_slow(a, b);
  }

  /// Greatest common divisor; result is non-negative. gcd(0,0) == 0.
  /// Binary (Stein) algorithm on both paths: shift/subtract beats the
  /// division-based Euclid chain even at u64 width, and gcd dominates
  /// Rational::normalize on the pivot hot path.
  static BigInt gcd(const BigInt& a, const BigInt& b) {
    if (a.inline_ && b.inline_) {
      std::uint64_t x = mag64(a.small_);
      std::uint64_t y = mag64(b.small_);
      if (x == 0) return from_u64_mag(y);
      if (y == 0) return from_u64_mag(x);
      const int shift = std::countr_zero(x | y);
      x >>= std::countr_zero(x);
      while (y != 0) {
        y >>= std::countr_zero(y);
        if (x > y) std::swap(x, y);
        y -= x;
      }
      return from_u64_mag(x << shift);
    }
    return gcd_slow(a, b);
  }
  /// Quotient and remainder in one division (truncated semantics).
  static void div_mod(const BigInt& num, const BigInt& den, BigInt& quot,
                      BigInt& rem);
  /// 10^exp for small non-negative exponents (decimal scaling).
  static BigInt pow10(unsigned exp);

  // Reference implementations that always run the limb-vector algorithms,
  // regardless of operand size. Differential tests check the tagged fast
  // paths against these; production code should use the operators.
  static BigInt reference_add(const BigInt& a, const BigInt& b);
  static BigInt reference_mul(const BigInt& a, const BigInt& b);
  static void reference_div_mod(const BigInt& num, const BigInt& den,
                                BigInt& quot, BigInt& rem);
  static BigInt reference_gcd(const BigInt& a, const BigInt& b);
  /// -1, 0, +1 as the limb comparator would order a and b.
  static int reference_cmp(const BigInt& a, const BigInt& b);

  friend std::ostream& operator<<(std::ostream& os, const BigInt& v);

 private:
  struct MagView;  // sign-magnitude view of either representation

  // Magnitude of a signed 64-bit value without UB at INT64_MIN.
  static std::uint64_t mag64(std::int64_t v) {
    return v < 0 ? ~static_cast<std::uint64_t>(v) + 1
                 : static_cast<std::uint64_t>(v);
  }
  // Non-negative value from a u64 magnitude (promotes above INT64_MAX).
  static BigInt from_u64_mag(std::uint64_t m);
  // Canonical value from a limb magnitude and sign.
  static BigInt from_mag(std::vector<std::uint64_t> mag, bool neg);

  // Out-of-line continuations of the operators' overflow/big cases.
  BigInt& add_slow(const BigInt& rhs);
  BigInt& sub_slow(const BigInt& rhs);
  BigInt& mul_slow(const BigInt& rhs);
  BigInt& div_slow(const BigInt& rhs);
  BigInt& mod_slow(const BigInt& rhs);
  static std::strong_ordering cmp_slow(const BigInt& a, const BigInt& b);
  static BigInt gcd_slow(const BigInt& a, const BigInt& b);

  // Magnitude helpers on limb vectors (ignore sign).
  static int cmp_mag(const std::vector<std::uint64_t>& a,
                     const std::vector<std::uint64_t>& b);
  static void add_mag(std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b);
  // Requires |a| >= |b|.
  static void sub_mag(std::vector<std::uint64_t>& a,
                      const std::vector<std::uint64_t>& b);
  static std::vector<std::uint64_t> mul_mag(
      const std::vector<std::uint64_t>& a,
      const std::vector<std::uint64_t>& b);
  static void divmod_mag(const std::vector<std::uint64_t>& num,
                         const std::vector<std::uint64_t>& den,
                         std::vector<std::uint64_t>& quot,
                         std::vector<std::uint64_t>& rem);

  // Converts an inline value to (transient, possibly non-canonical) limb
  // form so the magnitude routines can run on it.
  void promote();
  // Restores canonical form after limb-form surgery: strips trailing zero
  // limbs and demotes to inline when the value fits int64_t (the limb
  // buffer's capacity is kept to avoid churn; heap_bytes() reports it).
  void trim();

  std::int64_t small_ = 0;  // the value, when inline_
  bool inline_ = true;
  bool negative_ = false;                // sign, when !inline_
  std::vector<std::uint64_t> limbs_;     // little-endian magnitude, when !inline_
};

}  // namespace psse::smt
