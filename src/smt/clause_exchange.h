// Learned-clause sharing interface between CDCL solvers.
//
// A ClauseExchange is the solver-side view of a sharing channel: the CDCL
// core publishes short/low-LBD learnt clauses through export_clause() and
// pulls clauses learnt by sibling solvers through import_clauses() at
// restart boundaries and at the start of each solve. The concrete channel
// (a bounded thread-safe ring shared by portfolio members or parallel
// CEGIS workers) lives in src/runtime/clause_channel.h — this header keeps
// the smt layer free of any runtime dependency.
//
// Soundness contract: every solver attached to one exchange must operate
// on the *same* constraint database with the *same* variable numbering
// (clones of one model). Learnt clauses — including clauses learnt under
// assumptions, whose derivations never resolve on assumption decisions —
// are implied by that shared database alone, so importing them preserves
// the SAT/UNSAT verdict. Attaching solvers over different formulas, or
// exchanging clauses across a push/pop boundary that changed the shared
// database, voids this guarantee.
#pragma once

#include <cstdint>
#include <vector>

#include "smt/literal.h"

namespace psse::smt {

/// Solver-side endpoint of a learned-clause sharing channel. All calls are
/// made from the owning solver's thread; implementations must be safe
/// against concurrent calls from *other* endpoints of the same channel.
class ClauseExchange {
 public:
  virtual ~ClauseExchange() = default;

  /// Publishes a clause this solver just learnt. The literals are valid
  /// (implied) for the shared constraint database; `lbd` is the literal
  /// block distance at learning time (1 for units).
  virtual void export_clause(const std::vector<Lit>& lits,
                             std::uint32_t lbd) = 0;

  /// True when a sibling has published clauses this endpoint has not yet
  /// imported. Cheap; the solver polls it at restart boundaries to decide
  /// whether backtracking to level 0 for an import is worth it.
  [[nodiscard]] virtual bool has_pending() const = 0;

  /// Drains all not-yet-seen sibling clauses into `out` (cleared first).
  /// Clauses this endpoint exported itself are never returned.
  virtual void import_clauses(std::vector<std::vector<Lit>>& out) = 0;
};

/// Factory for the endpoints of one sharing channel. Lets layers that may
/// not depend on the concrete channel (the core CEGIS loop hands one
/// endpoint to each parallel worker) stay decoupled from src/runtime/,
/// where the channel lives.
class ClauseExchangeHub {
 public:
  virtual ~ClauseExchangeHub() = default;

  /// Creates a new endpoint attached to this hub. The hub retains
  /// ownership; the pointer stays valid for the hub's lifetime. Safe to
  /// call concurrently.
  [[nodiscard]] virtual ClauseExchange* make_endpoint() = 0;
};

}  // namespace psse::smt
