#include "smt/bigint.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>

#include "smt/common.h"

namespace psse::smt {

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// Division works in base 2^32 so that trial-quotient estimation fits in
// native 64-bit arithmetic (Knuth TAOCP vol. 2, algorithm D).
std::vector<u32> to32(const std::vector<u64>& limbs) {
  std::vector<u32> out;
  out.reserve(limbs.size() * 2);
  for (u64 limb : limbs) {
    out.push_back(static_cast<u32>(limb));
    out.push_back(static_cast<u32>(limb >> 32));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<u64> to64(const std::vector<u32>& limbs) {
  std::vector<u64> out;
  out.reserve((limbs.size() + 1) / 2);
  for (std::size_t i = 0; i < limbs.size(); i += 2) {
    u64 lo = limbs[i];
    u64 hi = (i + 1 < limbs.size()) ? limbs[i + 1] : 0;
    out.push_back(lo | (hi << 32));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

int cmp32(const std::vector<u32>& a, const std::vector<u32>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// Long division of 32-bit-limb magnitudes; quotient and remainder out.
void divmod32(std::vector<u32> num, std::vector<u32> den,
              std::vector<u32>& quot, std::vector<u32>& rem) {
  PSSE_ASSERT(!den.empty());
  quot.clear();
  rem.clear();
  if (cmp32(num, den) < 0) {
    rem = std::move(num);
    return;
  }
  if (den.size() == 1) {
    // Short division.
    u64 d = den[0];
    u64 r = 0;
    quot.assign(num.size(), 0);
    for (std::size_t i = num.size(); i-- > 0;) {
      u64 cur = (r << 32) | num[i];
      quot[i] = static_cast<u32>(cur / d);
      r = cur % d;
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (r != 0) rem.push_back(static_cast<u32>(r));
    return;
  }

  // Normalize so that den's top limb has its high bit set.
  int shift = 0;
  for (u32 top = den.back(); (top & 0x80000000u) == 0; top <<= 1) ++shift;
  auto shl = [&](std::vector<u32>& v) {
    if (shift == 0) return;
    u32 carry = 0;
    for (auto& limb : v) {
      u32 next = limb >> (32 - shift);
      limb = (limb << shift) | carry;
      carry = next;
    }
    if (carry != 0) v.push_back(carry);
  };
  shl(num);
  shl(den);

  const std::size_t n = den.size();
  const std::size_t m = num.size() >= n ? num.size() - n : 0;
  num.push_back(0);  // u[m+n] slot
  quot.assign(m + 1, 0);

  const u64 vtop = den[n - 1];
  const u64 vsec = den[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    u64 numerator = (static_cast<u64>(num[j + n]) << 32) | num[j + n - 1];
    u64 qhat = numerator / vtop;
    u64 rhat = numerator % vtop;
    if (qhat > 0xFFFFFFFFull) {
      qhat = 0xFFFFFFFFull;
      rhat = numerator - qhat * vtop;
    }
    while (rhat <= 0xFFFFFFFFull &&
           qhat * vsec > ((rhat << 32) | num[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    // Multiply-subtract qhat * den from num[j .. j+n].
    std::int64_t borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u64 product = qhat * den[i] + carry;
      carry = product >> 32;
      std::int64_t sub = static_cast<std::int64_t>(num[j + i]) -
                         static_cast<std::int64_t>(product & 0xFFFFFFFFull) +
                         borrow;
      num[j + i] = static_cast<u32>(sub & 0xFFFFFFFF);
      borrow = sub >> 32;  // arithmetic shift: 0 or -1
    }
    std::int64_t subTop = static_cast<std::int64_t>(num[j + n]) -
                          static_cast<std::int64_t>(carry) + borrow;
    num[j + n] = static_cast<u32>(subTop & 0xFFFFFFFF);
    if (subTop < 0) {
      // qhat was one too large: add den back once.
      --qhat;
      u64 addCarry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u64 sum = static_cast<u64>(num[j + i]) + den[i] + addCarry;
        num[j + i] = static_cast<u32>(sum);
        addCarry = sum >> 32;
      }
      num[j + n] = static_cast<u32>(num[j + n] + addCarry);
    }
    quot[j] = static_cast<u32>(qhat);
  }
  while (!quot.empty() && quot.back() == 0) quot.pop_back();

  // Remainder: low n limbs of num, denormalized.
  num.resize(n);
  if (shift != 0) {
    u32 carry = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      u32 next = num[i] << (32 - shift);
      num[i] = (num[i] >> shift) | carry;
      carry = next;
    }
  }
  while (!num.empty() && num.back() == 0) num.pop_back();
  rem = std::move(num);
}

}  // namespace

BigInt::BigInt(std::int64_t v) {
  if (v == 0) return;
  negative_ = v < 0;
  // Avoid UB negating INT64_MIN by going through unsigned arithmetic.
  u64 mag = negative_ ? ~static_cast<u64>(v) + 1 : static_cast<u64>(v);
  limbs_.push_back(mag);
}

BigInt BigInt::from_string(std::string_view s) {
  PSSE_CHECK(!s.empty(), "BigInt::from_string: empty input");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    i = 1;
  }
  PSSE_CHECK(i < s.size(), "BigInt::from_string: sign without digits");
  BigInt out;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    PSSE_CHECK(s[i] >= '0' && s[i] <= '9',
               "BigInt::from_string: non-digit character");
    out *= ten;
    out += BigInt(s[i] - '0');
  }
  if (neg && !out.is_zero()) out.negative_ = true;
  return out;
}

void BigInt::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) negative_ = false;
}

int BigInt::cmp_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::add_mag(std::vector<u64>& a, const std::vector<u64>& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  unsigned carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 bi = i < b.size() ? b[i] : 0;
    u64 sum = a[i] + bi;
    unsigned c1 = sum < a[i] ? 1u : 0u;
    sum += carry;
    unsigned c2 = sum < static_cast<u64>(carry) ? 1u : 0u;
    a[i] = sum;
    carry = c1 | c2;
    if (carry == 0 && i >= b.size()) break;
  }
  if (carry) a.push_back(1);
}

void BigInt::sub_mag(std::vector<u64>& a, const std::vector<u64>& b) {
  unsigned borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 bi = i < b.size() ? b[i] : 0;
    u64 diff = a[i] - bi;
    unsigned b1 = a[i] < bi ? 1u : 0u;
    u64 diff2 = diff - borrow;
    unsigned b2 = diff < static_cast<u64>(borrow) ? 1u : 0u;
    a[i] = diff2;
    borrow = b1 | b2;
    if (borrow == 0 && i >= b.size()) break;
  }
  PSSE_ASSERT(borrow == 0);
  while (!a.empty() && a.back() == 0) a.pop_back();
}

std::vector<u64> BigInt::mul_mag(const std::vector<u64>& a,
                                 const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<u64> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::divmod_mag(const std::vector<u64>& num,
                        const std::vector<u64>& den, std::vector<u64>& quot,
                        std::vector<u64>& rem) {
  std::vector<u32> q32, r32;
  divmod32(to32(num), to32(den), q32, r32);
  quot = to64(q32);
  rem = to64(r32);
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt& BigInt::operator+=(const BigInt& rhs) {
  if (negative_ == rhs.negative_) {
    add_mag(limbs_, rhs.limbs_);
  } else {
    int cmp = cmp_mag(limbs_, rhs.limbs_);
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      sub_mag(limbs_, rhs.limbs_);
    } else {
      std::vector<u64> tmp = rhs.limbs_;
      sub_mag(tmp, limbs_);
      limbs_ = std::move(tmp);
      negative_ = rhs.negative_;
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::operator-=(const BigInt& rhs) { return *this += -rhs; }

BigInt& BigInt::operator*=(const BigInt& rhs) {
  negative_ = negative_ != rhs.negative_;
  limbs_ = mul_mag(limbs_, rhs.limbs_);
  trim();
  return *this;
}

BigInt& BigInt::operator/=(const BigInt& rhs) {
  PSSE_CHECK(!rhs.is_zero(), "BigInt: division by zero");
  std::vector<u64> quot, rem;
  divmod_mag(limbs_, rhs.limbs_, quot, rem);
  negative_ = !quot.empty() && (negative_ != rhs.negative_);
  limbs_ = std::move(quot);
  trim();
  return *this;
}

BigInt& BigInt::operator%=(const BigInt& rhs) {
  PSSE_CHECK(!rhs.is_zero(), "BigInt: modulo by zero");
  std::vector<u64> quot, rem;
  divmod_mag(limbs_, rhs.limbs_, quot, rem);
  // Remainder takes the dividend's sign (truncated division).
  negative_ = !rem.empty() && negative_;
  limbs_ = std::move(rem);
  trim();
  return *this;
}

void BigInt::div_mod(const BigInt& num, const BigInt& den, BigInt& quot,
                     BigInt& rem) {
  PSSE_CHECK(!den.is_zero(), "BigInt: division by zero");
  std::vector<u64> q, r;
  divmod_mag(num.limbs_, den.limbs_, q, r);
  quot.limbs_ = std::move(q);
  quot.negative_ = !quot.limbs_.empty() && (num.negative_ != den.negative_);
  rem.limbs_ = std::move(r);
  rem.negative_ = !rem.limbs_.empty() && num.negative_;
}

std::strong_ordering operator<=>(const BigInt& a, const BigInt& b) {
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
  int cmp = BigInt::cmp_mag(a.limbs_, b.limbs_);
  if (a.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

BigInt BigInt::gcd(BigInt a, BigInt b) {
  a.negative_ = false;
  b.negative_ = false;
  while (!b.is_zero()) {
    BigInt r = a % b;
    a = std::move(b);
    b = std::move(r);
  }
  return a;
}

BigInt BigInt::pow10(unsigned exp) {
  BigInt out(1);
  const BigInt ten(10);
  for (unsigned i = 0; i < exp; ++i) out *= ten;
  return out;
}

bool BigInt::fits_int64() const {
  if (limbs_.size() > 1) return false;
  if (limbs_.empty()) return true;
  if (negative_) return limbs_[0] <= static_cast<u64>(1) << 63;
  return limbs_[0] <= static_cast<u64>(std::numeric_limits<std::int64_t>::max());
}

std::int64_t BigInt::to_int64() const {
  PSSE_CHECK(fits_int64(), "BigInt::to_int64: value out of range");
  if (limbs_.empty()) return 0;
  if (negative_) return static_cast<std::int64_t>(~limbs_[0] + 1);
  return static_cast<std::int64_t>(limbs_[0]);
}

double BigInt::to_double() const {
  double out = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

std::string BigInt::to_string() const {
  if (is_zero()) return "0";
  std::vector<u32> mag = to32(limbs_);
  std::string digits;
  // Repeatedly divide by 10^9 and emit 9 decimal digits at a time.
  while (!mag.empty()) {
    u64 rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      u64 cur = (rem << 32) | mag[i];
      mag[i] = static_cast<u32>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_string();
}

}  // namespace psse::smt
