#include "smt/bigint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <ostream>

#include "smt/common.h"

namespace psse::smt {

namespace {

thread_local std::uint64_t g_promotions = 0;

}  // namespace

std::uint64_t bigint_promotions() noexcept { return g_promotions; }

namespace {

using u32 = std::uint32_t;
using u64 = std::uint64_t;

// Division works in base 2^32 so that trial-quotient estimation fits in
// native 64-bit arithmetic (Knuth TAOCP vol. 2, algorithm D).
std::vector<u32> to32(const std::vector<u64>& limbs) {
  std::vector<u32> out;
  out.reserve(limbs.size() * 2);
  for (u64 limb : limbs) {
    out.push_back(static_cast<u32>(limb));
    out.push_back(static_cast<u32>(limb >> 32));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

std::vector<u64> to64(const std::vector<u32>& limbs) {
  std::vector<u64> out;
  out.reserve((limbs.size() + 1) / 2);
  for (std::size_t i = 0; i < limbs.size(); i += 2) {
    u64 lo = limbs[i];
    u64 hi = (i + 1 < limbs.size()) ? limbs[i + 1] : 0;
    out.push_back(lo | (hi << 32));
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

int cmp32(const std::vector<u32>& a, const std::vector<u32>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

// Long division of 32-bit-limb magnitudes; quotient and remainder out.
void divmod32(std::vector<u32> num, std::vector<u32> den,
              std::vector<u32>& quot, std::vector<u32>& rem) {
  PSSE_ASSERT(!den.empty());
  quot.clear();
  rem.clear();
  if (cmp32(num, den) < 0) {
    rem = std::move(num);
    return;
  }
  if (den.size() == 1) {
    // Short division.
    u64 d = den[0];
    u64 r = 0;
    quot.assign(num.size(), 0);
    for (std::size_t i = num.size(); i-- > 0;) {
      u64 cur = (r << 32) | num[i];
      quot[i] = static_cast<u32>(cur / d);
      r = cur % d;
    }
    while (!quot.empty() && quot.back() == 0) quot.pop_back();
    if (r != 0) rem.push_back(static_cast<u32>(r));
    return;
  }

  // Normalize so that den's top limb has its high bit set.
  int shift = 0;
  for (u32 top = den.back(); (top & 0x80000000u) == 0; top <<= 1) ++shift;
  auto shl = [&](std::vector<u32>& v) {
    if (shift == 0) return;
    u32 carry = 0;
    for (auto& limb : v) {
      u32 next = limb >> (32 - shift);
      limb = (limb << shift) | carry;
      carry = next;
    }
    if (carry != 0) v.push_back(carry);
  };
  shl(num);
  shl(den);

  const std::size_t n = den.size();
  const std::size_t m = num.size() >= n ? num.size() - n : 0;
  num.push_back(0);  // u[m+n] slot
  quot.assign(m + 1, 0);

  const u64 vtop = den[n - 1];
  const u64 vsec = den[n - 2];
  for (std::size_t j = m + 1; j-- > 0;) {
    u64 numerator = (static_cast<u64>(num[j + n]) << 32) | num[j + n - 1];
    u64 qhat = numerator / vtop;
    u64 rhat = numerator % vtop;
    if (qhat > 0xFFFFFFFFull) {
      qhat = 0xFFFFFFFFull;
      rhat = numerator - qhat * vtop;
    }
    while (rhat <= 0xFFFFFFFFull &&
           qhat * vsec > ((rhat << 32) | num[j + n - 2])) {
      --qhat;
      rhat += vtop;
    }
    // Multiply-subtract qhat * den from num[j .. j+n].
    std::int64_t borrow = 0;
    u64 carry = 0;
    for (std::size_t i = 0; i < n; ++i) {
      u64 product = qhat * den[i] + carry;
      carry = product >> 32;
      std::int64_t sub = static_cast<std::int64_t>(num[j + i]) -
                         static_cast<std::int64_t>(product & 0xFFFFFFFFull) +
                         borrow;
      num[j + i] = static_cast<u32>(sub & 0xFFFFFFFF);
      borrow = sub >> 32;  // arithmetic shift: 0 or -1
    }
    std::int64_t subTop = static_cast<std::int64_t>(num[j + n]) -
                          static_cast<std::int64_t>(carry) + borrow;
    num[j + n] = static_cast<u32>(subTop & 0xFFFFFFFF);
    if (subTop < 0) {
      // qhat was one too large: add den back once.
      --qhat;
      u64 addCarry = 0;
      for (std::size_t i = 0; i < n; ++i) {
        u64 sum = static_cast<u64>(num[j + i]) + den[i] + addCarry;
        num[j + i] = static_cast<u32>(sum);
        addCarry = sum >> 32;
      }
      num[j + n] = static_cast<u32>(num[j + n] + addCarry);
    }
    quot[j] = static_cast<u32>(qhat);
  }
  while (!quot.empty() && quot.back() == 0) quot.pop_back();

  // Remainder: low n limbs of num, denormalized.
  num.resize(n);
  if (shift != 0) {
    u32 carry = 0;
    for (std::size_t i = num.size(); i-- > 0;) {
      u32 next = num[i] << (32 - shift);
      num[i] = (num[i] >> shift) | carry;
      carry = next;
    }
  }
  while (!num.empty() && num.back() == 0) num.pop_back();
  rem = std::move(num);
}

}  // namespace

// Sign-magnitude view over either representation. For an inline value the
// magnitude is materialised into `own_` (at most one limb); for limb form
// it aliases the operand's buffer, so the viewed BigInt must stay alive
// and unmodified for the view's lifetime.
struct BigInt::MagView {
  explicit MagView(const BigInt& v) {
    if (v.inline_) {
      if (v.small_ != 0) own_.push_back(mag64(v.small_));
      p_ = &own_;
      neg_ = v.small_ < 0;
    } else {
      p_ = &v.limbs_;
      neg_ = v.negative_;
    }
  }
  MagView(const MagView&) = delete;
  MagView& operator=(const MagView&) = delete;

  [[nodiscard]] const std::vector<u64>& mag() const { return *p_; }
  [[nodiscard]] bool neg() const { return neg_; }

 private:
  const std::vector<u64>* p_;
  std::vector<u64> own_;
  bool neg_;
};

BigInt BigInt::from_string(std::string_view s) {
  PSSE_CHECK(!s.empty(), "BigInt::from_string: empty input");
  bool neg = false;
  std::size_t i = 0;
  if (s[0] == '+' || s[0] == '-') {
    neg = s[0] == '-';
    i = 1;
  }
  PSSE_CHECK(i < s.size(), "BigInt::from_string: sign without digits");
  BigInt out;
  const BigInt ten(10);
  for (; i < s.size(); ++i) {
    PSSE_CHECK(s[i] >= '0' && s[i] <= '9',
               "BigInt::from_string: non-digit character");
    out *= ten;
    out += BigInt(s[i] - '0');
  }
  if (neg) out.negate();
  return out;
}

void BigInt::promote() {
  PSSE_ASSERT(inline_);
  ++g_promotions;
  negative_ = small_ < 0;
  limbs_.clear();
  if (small_ != 0) limbs_.push_back(mag64(small_));
  small_ = 0;
  inline_ = false;
}

void BigInt::trim() {
  PSSE_ASSERT(!inline_);
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
  if (limbs_.empty()) {
    inline_ = true;
    small_ = 0;
    negative_ = false;
    return;
  }
  if (limbs_.size() != 1) return;
  const u64 m = limbs_[0];
  if (!negative_ &&
      m <= static_cast<u64>(std::numeric_limits<std::int64_t>::max())) {
    small_ = static_cast<std::int64_t>(m);
  } else if (negative_ && m <= (static_cast<u64>(1) << 63)) {
    // Two's complement conversion is well-defined in C++20; m == 2^63
    // maps to INT64_MIN.
    small_ = static_cast<std::int64_t>(~m + 1);
  } else {
    return;  // genuinely needs limb form
  }
  inline_ = true;
  limbs_.clear();  // capacity retained; heap_bytes() accounts for it
  negative_ = false;
}

BigInt BigInt::from_u64_mag(u64 m) {
  if (m <= static_cast<u64>(std::numeric_limits<std::int64_t>::max())) {
    return BigInt(static_cast<std::int64_t>(m));
  }
  BigInt out;
  out.inline_ = false;
  out.negative_ = false;
  out.limbs_.push_back(m);
  return out;
}

BigInt BigInt::from_mag(std::vector<u64> mag, bool neg) {
  BigInt out;
  out.inline_ = false;
  out.negative_ = neg;
  out.limbs_ = std::move(mag);
  out.trim();
  return out;
}

void BigInt::negate() {
  if (inline_) {
    if (small_ != std::numeric_limits<std::int64_t>::min()) {
      small_ = -small_;
      return;
    }
    // |INT64_MIN| does not fit inline: promote to a one-limb magnitude.
    ++g_promotions;
    inline_ = false;
    small_ = 0;
    negative_ = false;
    limbs_.assign(1, static_cast<u64>(1) << 63);
    return;
  }
  negative_ = !negative_;  // limb form is never zero
  if (limbs_.size() == 1) trim();  // -2^63 demotes back to inline
}

int BigInt::cmp_mag(const std::vector<u64>& a, const std::vector<u64>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (std::size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigInt::add_mag(std::vector<u64>& a, const std::vector<u64>& b) {
  if (b.size() > a.size()) a.resize(b.size(), 0);
  unsigned carry = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 bi = i < b.size() ? b[i] : 0;
    u64 sum = a[i] + bi;
    unsigned c1 = sum < a[i] ? 1u : 0u;
    sum += carry;
    unsigned c2 = sum < static_cast<u64>(carry) ? 1u : 0u;
    a[i] = sum;
    carry = c1 | c2;
    if (carry == 0 && i >= b.size()) break;
  }
  if (carry) a.push_back(1);
}

void BigInt::sub_mag(std::vector<u64>& a, const std::vector<u64>& b) {
  unsigned borrow = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 bi = i < b.size() ? b[i] : 0;
    u64 diff = a[i] - bi;
    unsigned b1 = a[i] < bi ? 1u : 0u;
    u64 diff2 = diff - borrow;
    unsigned b2 = diff < static_cast<u64>(borrow) ? 1u : 0u;
    a[i] = diff2;
    borrow = b1 | b2;
    if (borrow == 0 && i >= b.size()) break;
  }
  PSSE_ASSERT(borrow == 0);
  while (!a.empty() && a.back() == 0) a.pop_back();
}

std::vector<u64> BigInt::mul_mag(const std::vector<u64>& a,
                                 const std::vector<u64>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<u64> out(a.size() + b.size(), 0);
  for (std::size_t i = 0; i < a.size(); ++i) {
    u64 carry = 0;
    for (std::size_t j = 0; j < b.size(); ++j) {
      unsigned __int128 cur =
          static_cast<unsigned __int128>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<u64>(cur);
      carry = static_cast<u64>(cur >> 64);
    }
    out[i + b.size()] += carry;
  }
  while (!out.empty() && out.back() == 0) out.pop_back();
  return out;
}

void BigInt::divmod_mag(const std::vector<u64>& num,
                        const std::vector<u64>& den, std::vector<u64>& quot,
                        std::vector<u64>& rem) {
  std::vector<u32> q32, r32;
  divmod32(to32(num), to32(den), q32, r32);
  quot = to64(q32);
  rem = to64(r32);
}

BigInt& BigInt::add_slow(const BigInt& rhs) {
  // Aliasing note: when &rhs == this the view below must not point into a
  // buffer we are about to overwrite; a self-add is inline-safe only, so
  // materialise a copy for the limb case.
  if (&rhs == this) {
    BigInt copy = rhs;
    return add_slow(copy);
  }
  if (inline_) promote();
  const MagView rb(rhs);
  if (negative_ == rb.neg()) {
    add_mag(limbs_, rb.mag());
  } else {
    int cmp = cmp_mag(limbs_, rb.mag());
    if (cmp == 0) {
      limbs_.clear();
      negative_ = false;
    } else if (cmp > 0) {
      sub_mag(limbs_, rb.mag());
    } else {
      std::vector<u64> tmp = rb.mag();
      sub_mag(tmp, limbs_);
      limbs_ = std::move(tmp);
      negative_ = rb.neg();
    }
  }
  trim();
  return *this;
}

BigInt& BigInt::sub_slow(const BigInt& rhs) { return add_slow(-rhs); }

BigInt& BigInt::mul_slow(const BigInt& rhs) {
  const bool rhsNeg = rhs.is_negative();
  if (&rhs == this) {
    BigInt copy = rhs;
    return mul_slow(copy);
  }
  if (inline_) promote();
  const MagView rb(rhs);
  negative_ = negative_ != rhsNeg;
  limbs_ = mul_mag(limbs_, rb.mag());
  trim();
  return *this;
}

BigInt& BigInt::div_slow(const BigInt& rhs) {
  PSSE_CHECK(!rhs.is_zero(), "BigInt: division by zero");
  if (inline_) promote();
  const MagView rb(rhs);
  std::vector<u64> quot, rem;
  divmod_mag(limbs_, rb.mag(), quot, rem);
  negative_ = !quot.empty() && (negative_ != rb.neg());
  limbs_ = std::move(quot);
  trim();
  return *this;
}

BigInt& BigInt::mod_slow(const BigInt& rhs) {
  PSSE_CHECK(!rhs.is_zero(), "BigInt: modulo by zero");
  if (inline_) promote();
  const MagView rb(rhs);
  std::vector<u64> quot, rem;
  divmod_mag(limbs_, rb.mag(), quot, rem);
  // Remainder takes the dividend's sign (truncated division).
  negative_ = !rem.empty() && negative_;
  limbs_ = std::move(rem);
  trim();
  return *this;
}

void BigInt::div_mod(const BigInt& num, const BigInt& den, BigInt& quot,
                     BigInt& rem) {
  PSSE_CHECK(!den.is_zero(), "BigInt: division by zero");
  if (num.inline_ && den.inline_) {
    const std::int64_t n = num.small_;
    const std::int64_t d = den.small_;
    if (!(n == std::numeric_limits<std::int64_t>::min() && d == -1)) {
      quot = BigInt(n / d);
      rem = BigInt(n % d);
      return;
    }
    // INT64_MIN / -1: quotient 2^63 overflows inline form.
    quot = from_u64_mag(static_cast<u64>(1) << 63);
    rem = BigInt(0);
    return;
  }
  std::vector<u64> q, r;
  bool qneg, rneg;
  {
    const MagView mn(num), md(den);
    divmod_mag(mn.mag(), md.mag(), q, r);
    qneg = !q.empty() && (mn.neg() != md.neg());
    rneg = !r.empty() && mn.neg();
  }  // views die before quot/rem (possibly aliasing num/den) are written
  quot = from_mag(std::move(q), qneg);
  rem = from_mag(std::move(r), rneg);
}

std::strong_ordering BigInt::cmp_slow(const BigInt& a, const BigInt& b) {
  // At least one operand is in limb form; canonical form guarantees its
  // magnitude exceeds every inline value, so mixed compares are decided by
  // the limb operand's sign.
  if (a.inline_ != b.inline_) {
    if (!a.inline_) {
      return a.negative_ ? std::strong_ordering::less
                         : std::strong_ordering::greater;
    }
    return b.negative_ ? std::strong_ordering::greater
                       : std::strong_ordering::less;
  }
  if (a.negative_ != b.negative_) {
    return a.negative_ ? std::strong_ordering::less
                       : std::strong_ordering::greater;
  }
  int cmp = cmp_mag(a.limbs_, b.limbs_);
  if (a.negative_) cmp = -cmp;
  if (cmp < 0) return std::strong_ordering::less;
  if (cmp > 0) return std::strong_ordering::greater;
  return std::strong_ordering::equal;
}

namespace {

// Bit position of the lowest set bit of a non-zero magnitude.
std::size_t trailing_zero_bits(const std::vector<u64>& v) {
  std::size_t i = 0;
  while (v[i] == 0) ++i;  // non-zero magnitude: terminates
  return i * 64 + static_cast<std::size_t>(std::countr_zero(v[i]));
}

// In-place logical right shift of a magnitude by `bits`.
void shr_bits(std::vector<u64>& v, std::size_t bits) {
  const std::size_t limbShift = bits / 64;
  const unsigned bitShift = static_cast<unsigned>(bits % 64);
  if (limbShift >= v.size()) {
    v.clear();
    return;
  }
  if (limbShift != 0) {
    v.erase(v.begin(),
            v.begin() + static_cast<std::ptrdiff_t>(limbShift));
  }
  if (bitShift != 0) {
    for (std::size_t i = 0; i + 1 < v.size(); ++i) {
      v[i] = (v[i] >> bitShift) | (v[i + 1] << (64 - bitShift));
    }
    v.back() >>= bitShift;
  }
  while (!v.empty() && v.back() == 0) v.pop_back();
}

// In-place left shift of a magnitude by `bits`.
void shl_bits(std::vector<u64>& v, std::size_t bits) {
  if (v.empty() || bits == 0) return;
  const std::size_t limbShift = bits / 64;
  const unsigned bitShift = static_cast<unsigned>(bits % 64);
  if (bitShift != 0) {
    u64 carry = 0;
    for (u64& limb : v) {
      const u64 next = limb >> (64 - bitShift);
      limb = (limb << bitShift) | carry;
      carry = next;
    }
    if (carry != 0) v.push_back(carry);
  }
  if (limbShift != 0) {
    v.insert(v.begin(), limbShift, 0);
  }
}

// Binary GCD of two odd 64-bit values.
u64 gcd_odd_u64(u64 x, u64 y) {
  while (x != y) {
    if (x > y) std::swap(x, y);
    y -= x;  // even and non-zero
    y >>= std::countr_zero(y);
  }
  return x;
}

}  // namespace

BigInt BigInt::gcd_slow(const BigInt& a, const BigInt& b) {
  // Binary (Stein) GCD on the limb magnitudes: shift/subtract only. The
  // Euclid chain this replaces spent most of its time in divmod_mag —
  // including the u64<->u32 limb conversions long division needs — which
  // profiles as the single hottest block under Rational::normalize.
  std::vector<u64> x, y;
  {
    const MagView ma(a), mb(b);
    x = ma.mag();
    y = mb.mag();
  }
  if (x.empty()) return from_mag(std::move(y), false);
  if (y.empty()) return from_mag(std::move(x), false);
  const std::size_t zx = trailing_zero_bits(x);
  const std::size_t zy = trailing_zero_bits(y);
  shr_bits(x, zx);
  shr_bits(y, zy);
  // Both odd from here on; the loop keeps them that way.
  while (true) {
    if (x.size() == 1 && y.size() == 1) {
      x[0] = gcd_odd_u64(x[0], y[0]);
      break;
    }
    const int cmp = cmp_mag(x, y);
    if (cmp == 0) break;
    if (cmp < 0) x.swap(y);
    sub_mag(x, y);  // even, non-zero
    shr_bits(x, trailing_zero_bits(x));
  }
  shl_bits(x, std::min(zx, zy));  // restore the shared power of two
  return from_mag(std::move(x), false);
}

BigInt BigInt::pow10(unsigned exp) {
  BigInt out(1);
  const BigInt ten(10);
  for (unsigned i = 0; i < exp; ++i) out *= ten;
  return out;
}

BigInt BigInt::reference_add(const BigInt& a, const BigInt& b) {
  const MagView ma(a), mb(b);
  std::vector<u64> mag;
  bool neg;
  if (ma.neg() == mb.neg()) {
    mag = ma.mag();
    add_mag(mag, mb.mag());
    neg = ma.neg();
  } else {
    int cmp = cmp_mag(ma.mag(), mb.mag());
    if (cmp == 0) return BigInt(0);
    if (cmp > 0) {
      mag = ma.mag();
      sub_mag(mag, mb.mag());
      neg = ma.neg();
    } else {
      mag = mb.mag();
      sub_mag(mag, ma.mag());
      neg = mb.neg();
    }
  }
  return from_mag(std::move(mag), neg);
}

BigInt BigInt::reference_mul(const BigInt& a, const BigInt& b) {
  const MagView ma(a), mb(b);
  return from_mag(mul_mag(ma.mag(), mb.mag()), ma.neg() != mb.neg());
}

void BigInt::reference_div_mod(const BigInt& num, const BigInt& den,
                               BigInt& quot, BigInt& rem) {
  PSSE_CHECK(!den.is_zero(), "BigInt: division by zero");
  std::vector<u64> q, r;
  bool qneg, rneg;
  {
    const MagView mn(num), md(den);
    divmod_mag(mn.mag(), md.mag(), q, r);
    qneg = !q.empty() && (mn.neg() != md.neg());
    rneg = !r.empty() && mn.neg();
  }
  quot = from_mag(std::move(q), qneg);
  rem = from_mag(std::move(r), rneg);
}

BigInt BigInt::reference_gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.abs();
  BigInt y = b.abs();
  while (!y.is_zero()) {
    BigInt q, r;
    reference_div_mod(x, y, q, r);
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

int BigInt::reference_cmp(const BigInt& a, const BigInt& b) {
  const MagView ma(a), mb(b);
  const bool aZero = ma.mag().empty();
  const bool bZero = mb.mag().empty();
  const int asign = aZero ? 0 : (ma.neg() ? -1 : 1);
  const int bsign = bZero ? 0 : (mb.neg() ? -1 : 1);
  if (asign != bsign) return asign < bsign ? -1 : 1;
  int cmp = cmp_mag(ma.mag(), mb.mag());
  return asign < 0 ? -cmp : cmp;
}

std::int64_t BigInt::to_int64() const {
  PSSE_CHECK(inline_, "BigInt::to_int64: value out of range");
  return small_;
}

double BigInt::to_double() const {
  if (inline_) return static_cast<double>(small_);
  double out = 0.0;
  for (std::size_t i = limbs_.size(); i-- > 0;) {
    out = out * 18446744073709551616.0 + static_cast<double>(limbs_[i]);
  }
  return negative_ ? -out : out;
}

std::string BigInt::to_string() const {
  if (inline_) return std::to_string(small_);
  std::vector<u32> mag = to32(limbs_);
  std::string digits;
  // Repeatedly divide by 10^9 and emit 9 decimal digits at a time.
  while (!mag.empty()) {
    u64 rem = 0;
    for (std::size_t i = mag.size(); i-- > 0;) {
      u64 cur = (rem << 32) | mag[i];
      mag[i] = static_cast<u32>(cur / 1000000000u);
      rem = cur % 1000000000u;
    }
    while (!mag.empty() && mag.back() == 0) mag.pop_back();
    for (int d = 0; d < 9; ++d) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.to_string();
}

}  // namespace psse::smt
