// Common utilities shared by the psse SMT substrate.
//
// The solver is exception-safe at API boundaries: user errors (malformed
// input, out-of-range variable ids) throw psse::smt::SmtError; internal
// invariant violations abort via PSSE_ASSERT in all build types, because a
// wrong SAT/UNSAT answer is strictly worse than a crash.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <string>

namespace psse::smt {

/// Error thrown on invalid API usage (bad arguments, wrong solver state).
class SmtError : public std::runtime_error {
 public:
  explicit SmtError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "psse internal assertion failed: %s at %s:%d\n", expr,
               file, line);
  std::abort();
}

}  // namespace psse::smt

// Internal invariant check, enabled in every build type.
#define PSSE_ASSERT(expr) \
  ((expr) ? (void)0 : ::psse::smt::assert_fail(#expr, __FILE__, __LINE__))

// Precondition check on public APIs: throws SmtError with a message.
#define PSSE_CHECK(expr, msg)                 \
  do {                                        \
    if (!(expr)) throw ::psse::smt::SmtError(msg); \
  } while (0)
