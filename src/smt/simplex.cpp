#include "smt/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "smt/common.h"

namespace psse::smt {

namespace {

// Sorted-vector column index: set semantics via binary search.
void col_insert(std::vector<std::int32_t>& col, std::int32_t r) {
  auto it = std::lower_bound(col.begin(), col.end(), r);
  if (it == col.end() || *it != r) col.insert(it, r);
}

void col_erase(std::vector<std::int32_t>& col, std::int32_t r) {
  auto it = std::lower_bound(col.begin(), col.end(), r);
  if (it != col.end() && *it == r) col.erase(it);
}

// Sign of the exact coefficient a composed mirror entry shadows, when the
// error interval can prove it: +1 / -1 when the interval clears zero, 0 when
// the entry is exactly zero (a provably dead union-pattern entry), and 2
// when the interval straddles zero (NaN/inf poison to 2 as well).
int shadow_sign(const DoubleApprox& a) {
  if (a.value > a.error) return 1;
  if (-a.value > a.error) return -1;
  if (a.value == 0.0 && a.error == 0.0) return 0;
  return 2;
}

}  // namespace

TVar Simplex::new_var(std::string name) {
  TVar v = static_cast<TVar>(vars_.size());
  VarState st;
  st.name = name.empty() ? "r" + std::to_string(v) : std::move(name);
  vars_.push_back(std::move(st));
  cols_.emplace_back();
  violated_flag_.push_back(false);
  interesting_.push_back(false);
  return v;
}

void Simplex::set_interesting(TVar v, bool on) {
  interesting_[static_cast<std::size_t>(v)] = on;
}

void Simplex::set_options(const SimplexOptions& options) {
  // Turning the filter off (or any reconfiguration) re-establishes the
  // fully exact invariant first, so the next check starts from clean state
  // whichever mode it runs in.
  restore_all_betas();
  if (options_.eta_tableau && !options.eta_tableau) {
    // Leaving eta mode: the eager path assumes every exact row is current.
    make_all_fresh();
    etas_.clear();
    for (Row& row : rows_) row.epoch = 0;  // pending emptied by the refresh
  }
  check_exact_fallback_ = false;
  options_ = options;
}

void Simplex::touch(TVar v) {
  if (violated_flag_[static_cast<std::size_t>(v)]) return;
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  if (st.row < 0) return;
  if (st.stale) {
    // Float margin: skip only when provably inside both bounds; equality
    // or an undersized margin enqueues conservatively (check() certifies).
    const bool lowOk =
        !st.lower.active || st.beta_f.definitely_greater(st.lower.approx);
    const bool upOk =
        !st.upper.active || st.beta_f.definitely_less(st.upper.approx);
    if (lowOk && upOk) return;
  } else if (in_bounds(v)) {
    return;
  }
  violated_flag_[static_cast<std::size_t>(v)] = true;
  violated_.push_back(v);
}

void Simplex::mark_row_dirty(std::int32_t rowIdx, bool upper) {
  if (!options_.derive_bounds) return;
  std::uint8_t& mask = row_dirty_[static_cast<std::size_t>(rowIdx)];
  const std::uint8_t bit = upper ? 2 : 1;
  if ((mask & bit) != 0) return;
  if (mask == 0) dirty_rows_.push_back(rowIdx);
  mask |= bit;
}

void Simplex::refresh_mirror(Row& row) {
  mirror_nnz_ -= row.mirror.size();
  row.mirror.clear();
  row.mirror.reserve(row.expr.terms().size());
  for (const auto& [v, c] : row.expr.terms()) {
    row.mirror.emplace_back(v, c.approx());
  }
  mirror_nnz_ += row.mirror.size();
  // The terms changed, so the cached derivations no longer describe this
  // row (their vals/revs are aligned term-for-term with the old expr).
  row.derive[0].valid = false;
  row.derive[1].valid = false;
}

TVar Simplex::slack_for(const LinExpr& expr) {
  PSSE_CHECK(!expr.is_constant(), "slack_for: constant expression");
  PSSE_CHECK(expr.constant().is_zero(),
             "slack_for: expression must have zero constant part");
  if (auto it = slack_cache_.find(expr); it != slack_cache_.end()) {
    return it->second;
  }
  TVar s = new_var("s" + std::to_string(rows_.size()));
  // Row: s = sum(expr), substituting any basic variables by their rows so
  // the tableau stays in solved form. Those rows may be lagging the eta
  // file, so realise them first.
  for (const auto& [v, c] : expr.terms()) {
    const std::int32_t r = vars_[static_cast<std::size_t>(v)].row;
    if (r >= 0) ensure_fresh(r);
  }
  Row row;
  row.owner = s;
  LinExpr substituted;
  for (const auto& [v, c] : expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    if (st.row >= 0) {
      substituted.add_scaled(rows_[static_cast<std::size_t>(st.row)].expr, c);
    } else {
      substituted.add_term(v, c);
    }
  }
  row.expr = std::move(substituted);
  // The creation-time identity s = expr-in-solved-form holds in every later
  // tableau (pivots only re-present the same system); it is the immutable
  // ground truth refactorisation rebuilds from.
  row.orig_owner = s;
  row.orig = row.expr;
  row.epoch = static_cast<std::uint32_t>(etas_.size());
  refresh_mirror(row);
  base_nnz_ += row.mirror.size();
  std::int32_t rowIdx = static_cast<std::int32_t>(rows_.size());
  // beta(s) := value of the expression under the current assignment. Column
  // variables are non-basic (solved form), so their betas are exact.
  DeltaRational val;
  for (const auto& [v, c] : row.expr.terms()) {
    PSSE_ASSERT(!vars_[static_cast<std::size_t>(v)].stale);
    val.add_mul(vars_[static_cast<std::size_t>(v)].beta, c);
    col_insert(cols_[static_cast<std::size_t>(v)], rowIdx);
  }
  VarState& sst = vars_[static_cast<std::size_t>(s)];
  sst.beta = std::move(val);
  sst.beta_f = sst.beta.real().approx();
  sst.row = rowIdx;
  rows_.push_back(std::move(row));
  row_dirty_.push_back(0);
  mark_row_dirty(rowIdx, false);
  mark_row_dirty(rowIdx, true);
  slack_cache_.emplace(expr, s);
  return s;
}

const Rational* Simplex::row_coeff(const Row& row, TVar v) const {
  const std::ptrdiff_t i = row_term_index(row, v);
  return i < 0 ? nullptr : &row.expr.terms()[static_cast<std::size_t>(i)].second;
}

const DoubleApprox* Simplex::mirror_coeff(const Row& row, TVar v) const {
  auto it = std::lower_bound(
      row.mirror.begin(), row.mirror.end(), v,
      [](const auto& e, TVar key) { return e.first < key; });
  if (it != row.mirror.end() && it->first == v) return &it->second;
  return nullptr;
}

std::ptrdiff_t Simplex::row_term_index(const Row& row, TVar v) const {
  const auto& terms = row.expr.terms();
  auto it = std::lower_bound(
      terms.begin(), terms.end(), v,
      [](const auto& term, TVar key) { return term.first < key; });
  if (it != terms.end() && it->first == v) return it - terms.begin();
  return -1;
}

bool Simplex::in_bounds(TVar v) const {
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(!st.stale);
  if (st.lower.active && st.beta < st.lower.value) return false;
  if (st.upper.active && st.beta > st.upper.value) return false;
  return true;
}

void Simplex::restore_beta(TVar v) {
  VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(st.row >= 0 && st.stale);
  // Certification reads the exact terms — realise any pending etas first.
  ensure_fresh(st.row);
  const Row& row = rows_[static_cast<std::size_t>(st.row)];
  DeltaRational acc;
  for (const auto& [x, c] : row.expr.terms()) {
    const VarState& xs = vars_[static_cast<std::size_t>(x)];
    PSSE_ASSERT(!xs.stale);  // solved form: column variables are non-basic
    acc.add_mul(xs.beta, c);
  }
  st.beta = std::move(acc);
  st.beta_f = st.beta.real().approx();
  st.stale = false;
  --stale_count_;
  ++exact_recomputes_;
}

void Simplex::restore_all_betas() {
  if (stale_count_ == 0) return;
  for (TVar v = 0; v < static_cast<TVar>(vars_.size()); ++v) {
    if (vars_[static_cast<std::size_t>(v)].stale) restore_beta(v);
    if (stale_count_ == 0) break;
  }
  PSSE_ASSERT(stale_count_ == 0);
}

bool Simplex::set_bound(TVar v, const DeltaRational& bound, Lit reason,
                        bool is_upper) {
  concrete_delta_.reset();
  VarState& st = vars_[static_cast<std::size_t>(v)];
  Bound& mine = is_upper ? st.upper : st.lower;
  const Bound& other = is_upper ? st.lower : st.upper;

  // Redundant (not tighter) assertions need no trail entry.
  if (mine.active &&
      (is_upper ? bound >= mine.value : bound <= mine.value)) {
    return true;
  }
  // Immediate conflict with the opposite bound.
  if (other.active && (is_upper ? bound < other.value : bound > other.value)) {
    conflict_.clear();
    conflict_.push_back(~reason);
    if (other.reason.valid()) conflict_.push_back(~other.reason);
    return false;
  }
  trail_.push_back({v, is_upper, mine});
  mine.value = bound;
  mine.approx = bound.real().approx();
  mine.revision = ++bound_revision_;
  mine.reason = reason;
  mine.active = true;
  if (options_.derive_bounds) {
    fresh_bounds_.emplace_back(v, is_upper);
    // A bound on one side of v only perturbs the row side that consumes it:
    // an upper bound feeds the side that wants positive columns at their
    // upper bound (mirrored through the coefficient sign). The sign is read
    // off the float mirror so exact rows stay untouched: a provably dead
    // union-pattern entry marks nothing, an uncertain sign marks both sides
    // (conservative, and identical whichever eta mode runs).
    for (std::int32_t r : cols_[static_cast<std::size_t>(v)]) {
      const DoubleApprox* m =
          mirror_coeff(rows_[static_cast<std::size_t>(r)], v);
      PSSE_ASSERT(m != nullptr);  // cols_ tracks the mirror pattern
      switch (shadow_sign(*m)) {
        case 0:
          break;
        case 1:
          mark_row_dirty(r, is_upper);
          break;
        case -1:
          mark_row_dirty(r, !is_upper);
          break;
        default:
          mark_row_dirty(r, false);
          mark_row_dirty(r, true);
          break;
      }
    }
  }

  if (st.row < 0) {
    // Non-basic: keep it inside its bounds eagerly. Dependent basic
    // variables may drift out of bounds, so feasibility must be rechecked.
    PSSE_ASSERT(!st.stale);
    if (is_upper ? st.beta > bound : st.beta < bound) {
      ++bound_flips_;
      update(v, bound, mine.approx);
      maybe_infeasible_ = true;
    }
  } else if (st.stale) {
    // Float-shadowed basic variable: recheck unless provably on the right
    // side of the new bound (equality counts as a recheck — cheap and rare).
    const bool safe = is_upper ? mine.approx.definitely_greater(st.beta_f)
                               : st.beta_f.definitely_greater(mine.approx);
    if (!safe) {
      maybe_infeasible_ = true;
      touch(v);
    }
  } else if (is_upper ? st.beta > bound : st.beta < bound) {
    maybe_infeasible_ = true;
    touch(v);
  }
  return true;
}

bool Simplex::assert_upper(TVar v, const DeltaRational& bound, Lit reason) {
  return set_bound(v, bound, reason, true);
}

bool Simplex::assert_lower(TVar v, const DeltaRational& bound, Lit reason) {
  return set_bound(v, bound, reason, false);
}

void Simplex::pop_to(std::size_t mark) {
  PSSE_ASSERT(mark <= trail_.size());
  concrete_delta_.reset();
  while (trail_.size() > mark) {
    TrailEntry e = std::move(trail_.back());
    trail_.pop_back();
    VarState& st = vars_[static_cast<std::size_t>(e.var)];
    (e.is_upper ? st.upper : st.lower) = e.previous;
  }
}

void Simplex::update(TVar v, const DeltaRational& newVal,
                     const DoubleApprox& newApprox) {
  VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(st.row < 0 && !st.stale);
  DeltaRational diff = newVal - st.beta;
  if (diff.is_zero()) {
    st.beta_f = newApprox;  // fresh conversion is at least as tight
    return;
  }
  const DoubleApprox diffF = newApprox - st.beta_f;
  const bool fm = float_mode();
  for (std::int32_t r : cols_[static_cast<std::size_t>(v)]) {
    const Row& row = rows_[static_cast<std::size_t>(r)];
    const DoubleApprox* m = mirror_coeff(row, v);
    PSSE_ASSERT(m != nullptr);
    VarState& ost = vars_[static_cast<std::size_t>(row.owner)];
    ost.beta_f.add_mul(diffF, *m);
    if (fm) {
      if (!ost.stale) {
        ost.stale = true;
        ++stale_count_;
      }
    } else {
      PSSE_ASSERT(!ost.stale);
      // Exact path: the row's current terms are authoritative; a dead
      // union-pattern entry means the exact coefficient is zero and the
      // assignment doesn't move.
      ensure_fresh(r);
      if (const Rational* c = row_coeff(row, v)) ost.beta.add_mul(diff, *c);
    }
    touch(row.owner);
  }
  st.beta = newVal;
  st.beta_f = newApprox;
}

void Simplex::pivot(std::int32_t rowIdx, TVar entering) {
  ++pivots_;
  ++pivots_since_refactor_;
  mark_row_dirty(rowIdx, false);
  mark_row_dirty(rowIdx, true);
  ensure_fresh(rowIdx);
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  TVar leaving = row.owner;
  const Rational* aPtr = row_coeff(row, entering);
  PSSE_ASSERT(aPtr != nullptr && !aPtr->is_zero());
  Rational inv = aPtr->inverse();

  // Solve the row for `entering`:
  //   leaving = a*entering + rest  =>  entering = inv*leaving - inv*rest.
  std::vector<std::pair<TVar, Rational>> newTerms;
  newTerms.reserve(row.expr.terms().size());
  for (const auto& [v, c] : row.expr.terms()) {
    if (v == entering) continue;
    Rational nc = c;
    nc *= inv;
    nc.negate();
    newTerms.emplace_back(v, std::move(nc));
  }
  {
    // Insert the leaving variable keeping terms sorted.
    auto it = std::lower_bound(
        newTerms.begin(), newTerms.end(), leaving,
        [](const auto& term, TVar key) { return term.first < key; });
    newTerms.insert(it, {leaving, std::move(inv)});
  }
  row.owner = entering;
  row.expr = LinExpr::from_sorted_terms(std::move(newTerms));
  // Snapshot the old mirror pattern, rebuild the pivot row's mirror tight
  // (a shared resynchronisation point of both eta modes), and patch the
  // column index by old/new pattern set difference — with composed mirrors
  // the patterns may differ by more than -entering/+leaving.
  col_vars_scratch_.clear();
  col_vars_scratch_.reserve(row.mirror.size());
  for (const auto& [v, m] : row.mirror) col_vars_scratch_.push_back(v);
  refresh_mirror(row);
  {
    const auto& nm = row.mirror;
    std::size_t i = 0, j = 0;
    while (i < col_vars_scratch_.size() || j < nm.size()) {
      if (j == nm.size() || (i < col_vars_scratch_.size() &&
                             col_vars_scratch_[i] < nm[j].first)) {
        col_erase(cols_[static_cast<std::size_t>(col_vars_scratch_[i])],
                  rowIdx);
        ++i;
      } else if (i == col_vars_scratch_.size() ||
                 nm[j].first < col_vars_scratch_[i]) {
        col_insert(cols_[static_cast<std::size_t>(nm[j].first)], rowIdx);
        ++j;
      } else {
        ++i;
        ++j;
      }
    }
  }
  vars_[static_cast<std::size_t>(leaving)].row = -1;
  vars_[static_cast<std::size_t>(entering)].row = rowIdx;

  const bool eta = options_.eta_tableau;
  const bool fm = float_mode();
  if (eta) {
    // Record the update; dependent exact rows will fold it in lazily. The
    // pivot row itself is already past its own eta (its solved form has no
    // entering term, so the replay would be a no-op anyway).
    etas_.push_back({entering, row.expr});
    ++eta_updates_;
    eta_file_len_max_ =
        std::max<std::uint64_t>(eta_file_len_max_, etas_.size());
    row.epoch = static_cast<std::uint32_t>(etas_.size());
  }

  // Substitute `entering` in every dependent row's float mirror (identical
  // in both modes); the exact terms follow eagerly (eager mode, or the
  // exact fallback realising the fresh eta immediately) or lazily (eta
  // mode). Copy the column set: it is mutated during substitution.
  std::vector<std::int32_t> dependents(
      cols_[static_cast<std::size_t>(entering)].begin(),
      cols_[static_cast<std::size_t>(entering)].end());
  for (std::int32_t r : dependents) {
    if (r == rowIdx) continue;
    mark_row_dirty(r, false);
    mark_row_dirty(r, true);
    float_substitute(r, entering, row);
    if (eta) {
      rows_[static_cast<std::size_t>(r)].pending.push_back(
          static_cast<std::uint32_t>(etas_.size() - 1));
      ++pending_total_;
    }
    if (!eta) {
      Row& other = rows_[static_cast<std::size_t>(r)];
      if (const Rational* bPtr = row_coeff(other, entering)) {
        // other = b*entering + rest'  =>  substitute entering by its new
        // row: drop the entering term, then fuse-in b * row (one merge,
        // add_mul per coincident coefficient, no intermediate expression).
        Rational b = *bPtr;
        Rational negB = b;
        negB.negate();
        other.expr.add_term(entering, negB);  // cancels exactly
        other.expr.add_scaled(row.expr, b, merge_scratch_);
        other.derive[0].valid = false;
        other.derive[1].valid = false;
      }
    } else if (!fm) {
      ensure_fresh(r);
    }
  }
}

void Simplex::float_substitute(std::int32_t r, TVar entering,
                               const Row& pivotRow) {
  Row& other = rows_[static_cast<std::size_t>(r)];
  const DoubleApprox* bPtr = mirror_coeff(other, entering);
  PSSE_ASSERT(bPtr != nullptr);
  const DoubleApprox b = *bPtr;
  const auto& pm = pivotRow.mirror;
  // Merge other.mirror (minus the entering entry, which cancels
  // structurally) with b * pivot mirror. Entries are never dropped on ~0
  // values — the union pattern is what keeps cols_ and the exact pattern's
  // superset invariant mode-independent; refactorize() purges the dead
  // weight. The accumulated error bounds feed the refactorisation trigger.
  mirror_scratch_.clear();
  mirror_scratch_.reserve(other.mirror.size() + pm.size());
  std::size_t i = 0, j = 0;
  while (i < other.mirror.size() || j < pm.size()) {
    if (j == pm.size() ||
        (i < other.mirror.size() && other.mirror[i].first < pm[j].first)) {
      if (other.mirror[i].first != entering) {
        mirror_scratch_.push_back(other.mirror[i]);
      }
      ++i;
    } else if (i == other.mirror.size() ||
               pm[j].first < other.mirror[i].first) {
      const DoubleApprox nv = pm[j].second * b;
      if (nv.error > max_mirror_err_) max_mirror_err_ = nv.error;
      mirror_scratch_.emplace_back(pm[j].first, nv);
      col_insert(cols_[static_cast<std::size_t>(pm[j].first)], r);
      ++j;
    } else {
      DoubleApprox nv = other.mirror[i].second;
      nv.add_mul(pm[j].second, b);
      if (nv.error > max_mirror_err_) max_mirror_err_ = nv.error;
      mirror_scratch_.emplace_back(pm[j].first, nv);
      ++i;
      ++j;
    }
  }
  mirror_nnz_ -= other.mirror.size();
  mirror_nnz_ += mirror_scratch_.size();
  other.mirror.swap(mirror_scratch_);
  col_erase(cols_[static_cast<std::size_t>(entering)], r);
}

void Simplex::ensure_fresh(std::int32_t rowIdx) {
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  const std::uint32_t len = static_cast<std::uint32_t>(etas_.size());
  if (row.pending.empty()) {
    row.epoch = len;
    return;
  }
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->ftran_us);
  // Replay the pending eta entries in order; each one is exactly the
  // substitution the eager path performed at that pivot, so the result is
  // bit-identical to the eagerly maintained row. The pending list was
  // recorded off the pivot-time mirror pattern — a superset of the exact
  // pattern at that moment — so an entry can still miss the exact terms
  // (structurally dead ~0 mirror entry), but no hitting eta is ever
  // outside the list, and the list order is pivot order, which keeps the
  // replay chronological.
  bool changed = false;
  for (std::uint32_t k : row.pending) {
    const Eta& e = etas_[k];
    const Rational* bPtr = row_coeff(row, e.entered);
    if (bPtr == nullptr) continue;
    Rational b = *bPtr;
    Rational negB = b;
    negB.negate();
    row.expr.add_term(e.entered, negB);  // cancels exactly
    row.expr.add_scaled(e.def, b, merge_scratch_);
    changed = true;
  }
  pending_total_ -= row.pending.size();
  row.pending.clear();
  row.epoch = len;
  if (changed) {
    row.derive[0].valid = false;
    row.derive[1].valid = false;
  }
}

void Simplex::make_all_fresh() {
  for (std::int32_t r = 0; r < static_cast<std::int32_t>(rows_.size()); ++r) {
    ensure_fresh(r);
  }
}

bool Simplex::should_refactor() const {
  if (pivots_since_refactor_ == 0) return false;
  if (pivots_since_refactor_ >= options_.eta_refactor_len) return true;
  if (static_cast<double>(mirror_nnz_) >
      options_.eta_refactor_fill * static_cast<double>(base_nnz_)) {
    return true;
  }
  return max_mirror_err_ > options_.eta_error_budget;
}

void Simplex::refactorize() {
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->btran_us);
  ++refactorisations_;
  if (options_.eta_tableau) {
    // Two equivalent ways to make every exact row current (the dictionary
    // per basis is unique, so both land on bit-identical rows): drain the
    // deferred backlog row by row, or re-derive the whole dictionary from
    // the creation identities. Draining costs exactly the substitutions
    // the eager path would have performed; the Markowitz rebuild costs a
    // full sparse elimination regardless of backlog length, which only
    // wins once laziness has banked several times the tableau's worth of
    // skipped work (long eta files on large, lightly-queried tableaus).
    if (pending_total_ > 8 * rows_.size()) {
      rebuild_rows_from_origs();
      for (Row& row : rows_) row.pending.clear();
      pending_total_ = 0;
    } else {
      make_all_fresh();
    }
    PSSE_ASSERT(pending_total_ == 0);
  }
  etas_.clear();
  pivots_since_refactor_ = 0;
  max_mirror_err_ = 0.0;
  // Both modes resynchronise the float state here: tight mirrors rebuilt
  // from the (now current) exact rows, column index rebuilt to the tight
  // patterns. Betas and bounds are untouched — the dictionary a row set
  // presents is unique per basis, so nothing visible moves.
  for (Row& row : rows_) {
    row.epoch = 0;
    row.pending.clear();
    refresh_mirror(row);
  }
  for (auto& col : cols_) col.clear();
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    for (const auto& [v, m] : rows_[r].mirror) {
      cols_[static_cast<std::size_t>(v)].push_back(static_cast<std::int32_t>(r));
    }
  }
  base_nnz_ = mirror_nnz_;
}

void Simplex::rebuild_rows_from_origs() {
  // From-scratch solve of the immutable creation identities
  // {orig_owner_i = orig_i} for the *current* basis: Markowitz-ordered
  // sparse Gaussian elimination (pick the (equation, basic var) pivot with
  // the emptiest column, then the shortest equation) followed by reverse
  // back-substitution. The dictionary for a basis is unique and rationals
  // are canonical, so the rebuilt rows equal the eagerly maintained ones
  // bit for bit — the cost is independent of how many etas were pending.
  const std::size_t m = rows_.size();
  const std::size_t nv = vars_.size();
  std::vector<LinExpr> eqs(m);
  std::vector<std::int32_t> basicRow(nv, -1);
  for (std::size_t r = 0; r < m; ++r) {
    basicRow[static_cast<std::size_t>(rows_[r].owner)] =
        static_cast<std::int32_t>(r);
    LinExpr eq = rows_[r].orig;
    eq *= Rational(-1);
    eq.add_term(rows_[r].orig_owner, Rational(1));
    eqs[r] = std::move(eq);
  }
  // Column index of *unsolved basis* variables over the remaining
  // equations, plus the solved forms as they appear.
  std::vector<std::vector<std::int32_t>> bcols(nv);
  for (std::size_t e = 0; e < m; ++e) {
    for (const auto& [v, c] : eqs[e].terms()) {
      if (basicRow[static_cast<std::size_t>(v)] >= 0) {
        bcols[static_cast<std::size_t>(v)].push_back(
            static_cast<std::int32_t>(e));
      }
    }
  }
  std::vector<char> eqDone(m, 0);
  std::vector<char> varSolved(nv, 0);
  std::vector<LinExpr> solvedExpr(nv);
  std::vector<TVar> order;
  order.reserve(m);
  std::vector<TVar> basisVars;
  basisVars.reserve(m);
  for (std::size_t r = 0; r < m; ++r) basisVars.push_back(rows_[r].owner);
  auto coeff_of = [](const LinExpr& ex, TVar v) -> const Rational* {
    const auto& ts = ex.terms();
    auto it = std::lower_bound(
        ts.begin(), ts.end(), v,
        [](const auto& term, TVar key) { return term.first < key; });
    if (it != ts.end() && it->first == v) return &it->second;
    return nullptr;
  };
  // Collects an equation's unsolved-basis footprint (sorted, since terms
  // are) for the column-index patch around a substitution.
  std::vector<TVar> beforeVars;
  std::vector<TVar> afterVars;
  auto basis_footprint = [&](const LinExpr& ex, std::vector<TVar>& into) {
    into.clear();
    for (const auto& [v, c] : ex.terms()) {
      if (basicRow[static_cast<std::size_t>(v)] >= 0 &&
          varSolved[static_cast<std::size_t>(v)] == 0) {
        into.push_back(v);
      }
    }
  };

  for (std::size_t step = 0; step < m; ++step) {
    // Markowitz-flavoured pivot selection: emptiest unsolved column first
    // (a column of one eliminates with zero fill), shortest equation within
    // it. Invertibility of the basis submatrix guarantees a candidate.
    TVar bestV = kNoTVar;
    std::size_t bestC = std::numeric_limits<std::size_t>::max();
    for (TVar v : basisVars) {
      if (varSolved[static_cast<std::size_t>(v)] != 0) continue;
      const std::size_t c = bcols[static_cast<std::size_t>(v)].size();
      if (c < bestC || (c == bestC && v < bestV)) {
        bestC = c;
        bestV = v;
        if (c == 1) break;
      }
    }
    PSSE_ASSERT(bestV != kNoTVar && bestC >= 1);
    std::int32_t bestE = -1;
    std::size_t bestLen = std::numeric_limits<std::size_t>::max();
    for (std::int32_t e : bcols[static_cast<std::size_t>(bestV)]) {
      const std::size_t len = eqs[static_cast<std::size_t>(e)].terms().size();
      if (len < bestLen) {
        bestLen = len;
        bestE = e;
      }
    }
    PSSE_ASSERT(bestE >= 0);
    LinExpr& eq = eqs[static_cast<std::size_t>(bestE)];
    const Rational* aPtr = coeff_of(eq, bestV);
    PSSE_ASSERT(aPtr != nullptr && !aPtr->is_zero());
    // Solve eq (== 0) for bestV: S = -(1/a) * (eq - a*bestV).
    Rational a = *aPtr;
    LinExpr solved = eq;
    Rational negA = a;
    negA.negate();
    solved.add_term(bestV, negA);
    Rational scale = a.inverse();
    scale.negate();
    solved *= scale;
    varSolved[static_cast<std::size_t>(bestV)] = 1;
    order.push_back(bestV);
    eqDone[static_cast<std::size_t>(bestE)] = 1;
    // The retired equation leaves every unsolved-basis column it occupied.
    for (const auto& [v, c] : eq.terms()) {
      if (basicRow[static_cast<std::size_t>(v)] >= 0 &&
          varSolved[static_cast<std::size_t>(v)] == 0) {
        col_erase(bcols[static_cast<std::size_t>(v)], bestE);
      }
    }
    solvedExpr[static_cast<std::size_t>(bestV)] = std::move(solved);
    const LinExpr& S = solvedExpr[static_cast<std::size_t>(bestV)];
    // Eliminate bestV from every remaining equation that mentions it.
    std::vector<std::int32_t> users = bcols[static_cast<std::size_t>(bestV)];
    for (std::int32_t f : users) {
      if (eqDone[static_cast<std::size_t>(f)] != 0) continue;
      LinExpr& eqf = eqs[static_cast<std::size_t>(f)];
      const Rational* bPtr = coeff_of(eqf, bestV);
      PSSE_ASSERT(bPtr != nullptr);
      Rational b = *bPtr;
      basis_footprint(eqf, beforeVars);
      Rational negB = b;
      negB.negate();
      eqf.add_term(bestV, negB);
      eqf.add_scaled(S, b, merge_scratch_);
      basis_footprint(eqf, afterVars);
      std::size_t i = 0, j = 0;
      while (i < beforeVars.size() || j < afterVars.size()) {
        if (j == afterVars.size() ||
            (i < beforeVars.size() && beforeVars[i] < afterVars[j])) {
          col_erase(bcols[static_cast<std::size_t>(beforeVars[i])], f);
          ++i;
        } else if (i == beforeVars.size() || afterVars[j] < beforeVars[i]) {
          col_insert(bcols[static_cast<std::size_t>(afterVars[j])], f);
          ++j;
        } else {
          ++i;
          ++j;
        }
      }
    }
    bcols[static_cast<std::size_t>(bestV)].clear();
  }
  // Back-substitution in reverse pivot order: a solved form may still
  // reference basis variables pivoted *later*; those are already final when
  // visited here, so one pass over each solved form suffices.
  std::vector<TVar> pending;
  for (std::size_t k = order.size(); k-- > 0;) {
    LinExpr& S = solvedExpr[static_cast<std::size_t>(order[k])];
    pending.clear();
    for (const auto& [v, c] : S.terms()) {
      if (basicRow[static_cast<std::size_t>(v)] >= 0) pending.push_back(v);
    }
    for (TVar w : pending) {
      const Rational* bPtr = coeff_of(S, w);
      if (bPtr == nullptr) continue;  // cancelled by an earlier substitution
      Rational b = *bPtr;
      Rational negB = b;
      negB.negate();
      S.add_term(w, negB);
      S.add_scaled(solvedExpr[static_cast<std::size_t>(w)], b,
                   merge_scratch_);
    }
  }
  for (std::size_t r = 0; r < m; ++r) {
    rows_[r].expr =
        std::move(solvedExpr[static_cast<std::size_t>(rows_[r].owner)]);
  }
}

void Simplex::pivot_and_update(std::int32_t rowIdx, TVar entering,
                               const DeltaRational& target,
                               const DoubleApprox& targetApprox) {
  // check() selected off a fresh row, but keep the invariant local: the
  // pivot element below is read from the exact terms.
  ensure_fresh(rowIdx);
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  TVar leaving = row.owner;
  const std::ptrdiff_t ai = row_term_index(row, entering);
  PSSE_ASSERT(ai >= 0);
  VarState& leaveSt = vars_[static_cast<std::size_t>(leaving)];
  VarState& enterSt = vars_[static_cast<std::size_t>(entering)];
  PSSE_ASSERT(!enterSt.stale);  // entering is non-basic
  const bool fm = float_mode();
  if (fm) ++float_pivots_;
  const Rational inv =
      row.expr.terms()[static_cast<std::size_t>(ai)].second.inverse();
  // theta: how far the entering variable must move. In float mode the
  // leaving variable's exact assignment may be stale, but its shadow (with
  // its accumulated error) is enough: the leaving variable lands exactly on
  // `target` either way, and every dependent shift is shadow-tracked.
  const DoubleApprox thetaF = (targetApprox - leaveSt.beta_f) * inv.approx();
  DeltaRational theta;
  if (!fm) {
    PSSE_ASSERT(!leaveSt.stale);
    theta = (target - leaveSt.beta) * inv;
  }
  leaveSt.beta = target;
  leaveSt.beta_f = targetApprox;
  if (leaveSt.stale) {
    leaveSt.stale = false;
    --stale_count_;
  }
  enterSt.beta_f = enterSt.beta_f + thetaF;
  if (fm) {
    enterSt.stale = true;
    ++stale_count_;
  } else {
    enterSt.beta += theta;
  }
  // Other basic variables depending on `entering` shift too. cols_ tracks
  // the mirror pattern, so the shadow update always has its entry; the
  // exact coefficient can be structurally dead (union-pattern ~0 entry) or
  // lagging the eta file — realise the row first, then a missing exact term
  // means the assignment truly doesn't move.
  for (std::int32_t r : cols_[static_cast<std::size_t>(entering)]) {
    if (r == rowIdx) continue;
    const Row& other = rows_[static_cast<std::size_t>(r)];
    const DoubleApprox* m = mirror_coeff(other, entering);
    PSSE_ASSERT(m != nullptr);
    VarState& ost = vars_[static_cast<std::size_t>(other.owner)];
    ost.beta_f.add_mul(thetaF, *m);
    if (fm) {
      if (!ost.stale) {
        ost.stale = true;
        ++stale_count_;
      }
    } else {
      PSSE_ASSERT(!ost.stale);
      ensure_fresh(r);
      if (const Rational* c = row_coeff(other, entering)) {
        ost.beta.add_mul(theta, *c);
      }
    }
    touch(other.owner);
  }
  pivot(rowIdx, entering);
  // The entering variable is basic now and may have been pushed past one of
  // its own bounds by theta.
  touch(entering);
}

void Simplex::build_conflict_from_row(const Row& row, bool lowerViolated) {
  conflict_.clear();
  const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
  // lowerViolated: beta(owner) < lower(owner) and no entering var can raise
  // it; the explanation is owner's lower bound plus, for each positive
  // coefficient the column's upper bound, for each negative its lower.
  const Bound& ownBound = lowerViolated ? owner.lower : owner.upper;
  PSSE_ASSERT(ownBound.active);
  if (ownBound.reason.valid()) conflict_.push_back(~ownBound.reason);
  for (const auto& [v, c] : row.expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    bool needUpper = lowerViolated ? !c.is_negative() : c.is_negative();
    const Bound& b = needUpper ? st.upper : st.lower;
    PSSE_ASSERT(b.active);
    if (b.reason.valid()) conflict_.push_back(~b.reason);
  }
}

bool Simplex::check() {
  if (!maybe_infeasible_) return true;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->simplex_us);
  concrete_delta_.reset();
  // With the filter off every assignment must already be exact
  // (set_options restores on reconfiguration).
  PSSE_ASSERT(options_.float_filter || stale_count_ == 0);
  check_exact_fallback_ = false;
  // Heuristic pivot selection has no termination guarantee (it can cycle on
  // degenerate tableaus); after the per-check budget it hands over to strict
  // Bland's rule, which cannot cycle.
  bool bland = !options_.heuristic_pivoting;
  std::uint64_t pivotsThisCheck = 0;
  std::uint32_t disagreements = 0;

  // A certification whose exact outcome contradicts a *margin-proven*
  // float verdict — float drift beyond the tracked error envelope, which
  // the interval arithmetic is built to rule out, so any occurrence means
  // the envelope is too tight for this instance. Past the per-check budget
  // the filter has lost the plot and the rest of the check runs on the
  // exact path. (Uncertain classifications that get resolved exactly are
  // *not* disagreements — that is the filter working as designed.)
  auto note_disagreement = [&] {
    ++filter_disagreements_;
    if (++disagreements > options_.filter_disagreement_budget &&
        !check_exact_fallback_) {
      check_exact_fallback_ = true;
      ++filter_fallbacks_;
      restore_all_betas();
    }
  };

  // A non-finite pivot score — an overflowed mirror coefficient, or an
  // inf-inf NaN in a violation amount — is float state the error envelope
  // cannot even describe, so the float path is abandoned for the rest of
  // the check on first sight (no budget: one inf means every later score
  // is suspect). The candidate keeps a zero score rather than being
  // skipped: dropping it could turn a poisoned mirror into a fabricated
  // "no entering variable" conflict, and conflicts must only ever come
  // from the exact tableau.
  auto finite_or_zero = [&](double score) -> double {
    if (std::isfinite(score)) return score;
    ++filter_disagreements_;
    if (!check_exact_fallback_) {
      check_exact_fallback_ = true;
      ++filter_fallbacks_;
      restore_all_betas();
    }
    return 0.0;
  };

  // Classifies a basic candidate's bound violation. Float margins decide
  // when they provably clear the error envelope (lexicographic
  // delta-rational order: a strict real-part margin decides regardless of
  // the delta parts); otherwise the exact assignment is restored and the
  // comparison is exact — a certification point.
  auto classify = [&](TVar cand) -> std::pair<bool, bool> {
    VarState& cst = vars_[static_cast<std::size_t>(cand)];
    if (cst.stale) {
      bool uncertain = false;
      bool lowViol = false;
      if (cst.lower.active) {
        if (cst.lower.approx.definitely_greater(cst.beta_f)) {
          lowViol = true;
        } else if (!cst.beta_f.definitely_greater(cst.lower.approx)) {
          uncertain = true;
        }
      }
      bool upViol = false;
      if (!lowViol && cst.upper.active) {
        if (cst.beta_f.definitely_greater(cst.upper.approx)) {
          upViol = true;
        } else if (!cst.upper.approx.definitely_greater(cst.beta_f)) {
          uncertain = true;
        }
      }
      if (!uncertain) return {lowViol, upViol};
      // Resolve exactly, and score the float point estimate's prediction:
      // a mispredicting float state is drifting through territory the error
      // envelope cannot separate, so past the budget the check stops paying
      // for restores and runs exact.
      const bool guessLow =
          cst.lower.active && cst.beta_f.value < cst.lower.approx.value;
      const bool guessUp = !guessLow && cst.upper.active &&
                           cst.beta_f.value > cst.upper.approx.value;
      restore_beta(cand);
      const bool exLow = cst.lower.active && cst.beta < cst.lower.value;
      const bool exUp =
          !exLow && cst.upper.active && cst.beta > cst.upper.value;
      if (exLow != guessLow || exUp != guessUp) note_disagreement();
      return {exLow, exUp};
    }
    const bool exLow = cst.lower.active && cst.beta < cst.lower.value;
    const bool exUp = !exLow && cst.upper.active && cst.beta > cst.upper.value;
    return {exLow, exUp};
  };

  for (std::uint64_t iter = 0;; ++iter) {
    // Budgets used to be enforced only between SAT decisions, so one long
    // pivot sequence could blow far past the wall-clock limit; poll here.
    // maybe_infeasible_ stays set, so an aborted check redoes no bookkeeping
    // it shouldn't.
    if ((iter & 15) == 0 && interrupt_ != nullptr && interrupt_->triggered()) {
      interrupted_dirty_ = true;
      return true;
    }
    if (!bland && pivotsThisCheck >= options_.bland_fallback_after) {
      bland = true;
      ++bland_fallbacks_;
    }
    // Leaving variable from the candidate worklist, compacting away entries
    // that are back in bounds (or were pivoted non-basic): Bland takes the
    // smallest index, the heuristic the largest violation. The heuristic
    // scores in floating point — any pivot choice is sound, and exact
    // delta-rational differences here would dominate the whole check on
    // instances with hairy denominators.
    TVar violated = kNoTVar;
    bool lowerViolated = false;
    double bestViolation = -1.0;
    std::size_t w = 0;
    for (std::size_t i = 0; i < violated_.size(); ++i) {
      TVar cand = violated_[i];
      const VarState& cst = vars_[static_cast<std::size_t>(cand)];
      if (cst.row < 0) {
        violated_flag_[static_cast<std::size_t>(cand)] = false;
        continue;
      }
      const auto [lowViol, upViol] = classify(cand);
      if (!lowViol && !upViol) {
        violated_flag_[static_cast<std::size_t>(cand)] = false;
        continue;
      }
      violated_[w++] = cand;
      if (bland) {
        if (violated == kNoTVar || cand < violated) {
          violated = cand;
          lowerViolated = lowViol;
        }
        continue;
      }
      const double bound =
          lowViol ? cst.lower.approx.value : cst.upper.approx.value;
      const double beta = cst.beta_f.value;
      const double amount =
          finite_or_zero(lowViol ? bound - beta : beta - bound);
      if (violated == kNoTVar || amount > bestViolation ||
          (amount == bestViolation && cand < violated)) {
        violated = cand;
        lowerViolated = lowViol;
        bestViolation = amount;
      }
    }
    violated_.resize(w);
    if (violated == kNoTVar) {
      // Feasible. Stale assignments may remain — they are restored lazily
      // (model extraction restores everything via compute_delta).
      maybe_infeasible_ = false;
      interrupted_dirty_ = false;
      return true;
    }

    const VarState& st = vars_[static_cast<std::size_t>(violated)];
    std::int32_t rowIdx = st.row;
    // Selection reads the exact terms (suitability must be authoritative),
    // so the violated row is the one place per pivot the eta backlog is
    // always realised.
    ensure_fresh(rowIdx);
    const Row& row = rows_[static_cast<std::size_t>(rowIdx)];
    // Entering variable among the suitable columns: Bland takes the
    // smallest index, the heuristic the largest coefficient magnitude
    // (bigger steps toward the violated bound per pivot; small pivot
    // elements also blow up the rationals of every rebuilt row). Column
    // variables are non-basic, so their betas are exact and suitability is
    // too; the magnitude score reads the row mirror — a merge-walk, since
    // the mirror pattern is a superset of the exact pattern.
    TVar entering = kNoTVar;
    double bestMagnitude = -1.0;
    const auto& terms = row.expr.terms();
    std::size_t mi = 0;
    for (std::size_t ti = 0; ti < terms.size(); ++ti) {
      const TVar v = terms[ti].first;
      const Rational& c = terms[ti].second;
      while (mi < row.mirror.size() && row.mirror[mi].first < v) ++mi;
      PSSE_ASSERT(mi < row.mirror.size() && row.mirror[mi].first == v);
      const VarState& cv = vars_[static_cast<std::size_t>(v)];
      PSSE_ASSERT(!cv.stale);
      bool suitable;
      if (lowerViolated) {
        // Need to increase the owner.
        suitable = !c.is_negative()
                       ? (!cv.upper.active || cv.beta < cv.upper.value)
                       : (!cv.lower.active || cv.beta > cv.lower.value);
      } else {
        // Need to decrease the owner.
        suitable = !c.is_negative()
                       ? (!cv.lower.active || cv.beta > cv.lower.value)
                       : (!cv.upper.active || cv.beta < cv.upper.value);
      }
      if (!suitable) continue;
      if (bland) {
        if (entering == kNoTVar || v < entering) entering = v;
        continue;
      }
      const double magnitude =
          finite_or_zero(std::fabs(row.mirror[mi].second.value));
      if (entering == kNoTVar || magnitude > bestMagnitude ||
          (magnitude == bestMagnitude && v < entering)) {
        entering = v;
        bestMagnitude = magnitude;
      }
    }
    if (entering == kNoTVar) {
      // Certification point: never emit a conflict off a float-only
      // assignment. Margin-proven violations are already exact facts, but
      // the conflict is the one artifact the CDCL core consumes, so the
      // violation is always re-established from the exact tableau first.
      VarState& vst = vars_[static_cast<std::size_t>(violated)];
      if (vst.stale) {
        restore_beta(violated);
        const bool still =
            lowerViolated ? (vst.lower.active && vst.beta < vst.lower.value)
                          : (vst.upper.active && vst.beta > vst.upper.value);
        if (!still) {
          note_disagreement();
          continue;  // re-scan; the candidate is now exact
        }
      }
      build_conflict_from_row(row, lowerViolated);
      interrupted_dirty_ = false;
      return false;
    }
    pivot_and_update(rowIdx, entering,
                     lowerViolated ? st.lower.value : st.upper.value,
                     lowerViolated ? st.lower.approx : st.upper.approx);
    ++pivotsThisCheck;
    // The trigger reads only mode-identical state (pivot count, mirror
    // fill, mirror error), so both eta modes refactorise — and re-tighten
    // their float mirrors — at exactly the same pivots.
    if (should_refactor()) refactorize();
  }
}

void Simplex::propagate_implied(std::vector<ImpliedBound>& out) {
  // Only a feasibility-checked bound set may propagate: while
  // maybe_infeasible_ is set (pending, conflicting, or interrupted check)
  // the pending work simply stays queued for the next drain.
  if (!options_.derive_bounds || maybe_infeasible_) return;
  if (fresh_bounds_.empty() && dirty_rows_.empty()) return;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->tprop_us);
  for (const auto& [v, isUpper] : fresh_bounds_) {
    if (!interesting_[static_cast<std::size_t>(v)]) continue;
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    // Republish the variable's current bound on that side (the recorded
    // assertion may have been retracted or superseded since).
    const Bound& b = isUpper ? st.upper : st.lower;
    if (!b.active || !b.reason.valid()) continue;
    out.push_back({v, isUpper, b.value, {b.reason}});
  }
  fresh_bounds_.clear();
  for (std::int32_t r : dirty_rows_) {
    const std::uint8_t mask = row_dirty_[static_cast<std::size_t>(r)];
    row_dirty_[static_cast<std::size_t>(r)] = 0;
    if (!interesting_[static_cast<std::size_t>(
            rows_[static_cast<std::size_t>(r)].owner)]) {
      continue;
    }
    if ((mask & 2) != 0) derive_row_bound(r, true, out);
    if ((mask & 1) != 0) derive_row_bound(r, false, out);
  }
  dirty_rows_.clear();
}

void Simplex::derive_row_bound(std::int32_t rowIdx, bool upper,
                               std::vector<ImpliedBound>& out) {
  {
    const Row& row = rows_[static_cast<std::size_t>(rowIdx)];
    const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
    const Bound& own = upper ? owner.upper : owner.lower;
    // Mirror prepass — the row's exact terms may be lagging the eta file,
    // but the composed mirror is always current and its error intervals
    // classify each entry: a sign-certain entry proves the exact
    // coefficient nonzero, so an inactive bound on its consuming side kills
    // the derivation — measured as 84% of all attempts, killed here with no
    // exact work (and no eta replay) at all. A provably dead ~0 entry is an
    // exact cancellation the exact row doesn't (or won't) contain; an
    // uncertain entry can neither kill nor be summed, so it only disables
    // the screen. When every entry is sign-certain the mirror pattern IS
    // the exact pattern and the float sum rigorously encloses the implied
    // value — the margin screen below then skips rows that provably cannot
    // tighten the owner's bound, identical on both eta modes since the
    // mirrors are. (Dropping uncertain derivations outright would also be
    // sound — hints don't affect completeness — but it destabilizes the
    // search: measured 6x slower on ieee300.)
    bool screenable = options_.float_filter && own.active;
    DoubleApprox sum;
    for (const auto& [v, m] : row.mirror) {
      const int sg = shadow_sign(m);
      if (sg == 0) continue;
      if (sg == 2) {
        screenable = false;
        continue;
      }
      const VarState& st = vars_[static_cast<std::size_t>(v)];
      const Bound& b = (upper != (sg < 0)) ? st.upper : st.lower;
      if (!b.active) return;  // one unbounded column kills the derivation
      if (screenable) sum.add_mul(b.approx, m);
    }
    if (screenable) {
      const bool skip = upper ? sum.definitely_greater(own.approx)
                              : own.approx.definitely_greater(sum);
      if (skip) return;
    }
  }

  // Anything past the screen reads the exact terms; realise the row (this
  // is where the eta mode pays, and only for rows that actually emit or
  // come within a float margin of emitting).
  ensure_fresh(rowIdx);
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
  const Bound& own = upper ? owner.upper : owner.lower;
  const auto& terms = row.expr.terms();

  auto emit = [&](const DeltaRational& implied) {
    ImpliedBound ib;
    ib.var = row.owner;
    ib.is_upper = upper;
    ib.bound = implied;
    ib.premises.reserve(terms.size());
    for (const auto& [v, c] : terms) {
      const VarState& st = vars_[static_cast<std::size_t>(v)];
      const Bound& b = (upper != c.is_negative()) ? st.upper : st.lower;
      if (b.reason.valid()) ib.premises.push_back(b.reason);
    }
    out.push_back(std::move(ib));
  };

  // One scan over the exact inputs: (a) an unbounded column whose mirror
  // entry was uncertain still kills here, authoritatively; (b) against a
  // cache aligned with the current terms, the scan notes whether any input
  // bound value moved.
  DeriveCache& dc = row.derive[upper ? 1 : 0];
  const bool aligned = dc.valid && dc.vals.size() == terms.size();
  bool changed = !aligned;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const VarState& st = vars_[static_cast<std::size_t>(terms[i].first)];
    const Bound& b =
        (upper != terms[i].second.is_negative()) ? st.upper : st.lower;
    if (!b.active) return;  // one unbounded column kills the derivation
    if (aligned && b.revision != dc.revs[i]) {
      if (b.value != dc.vals[i]) {
        changed = true;
      } else {
        dc.revs[i] = b.revision;  // re-assertion of the cached value
      }
    }
  }

  // Revision-cache replay: nothing moved since the last exact pass, so the
  // cached implied value is current — repeat the emission decision with no
  // exact arithmetic (see DeriveCache). In particular every exact tie
  // (owner bound == implied bound, undecidable by any float margin) is
  // disposed of here. The cache is NOT invalidated by a screen skip above:
  // its (rev, contribution) pairs stay consistent with `implied`, so a
  // later derivation patches incrementally.
  if (!changed) {
    if (own.active &&
        (upper ? own.value <= dc.implied : own.value >= dc.implied)) {
      return;
    }
    emit(dc.implied);
    return;
  }

  if (options_.float_filter) ++exact_recomputes_;
  if (aligned) {
    // Incremental exact pass: patch only the terms whose input bound value
    // moved — usually exactly one, and by a small difference — so
    // O(changed) exact work instead of an O(row length) recomputation.
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const VarState& st = vars_[static_cast<std::size_t>(terms[i].first)];
      const Bound& b =
          (upper != terms[i].second.is_negative()) ? st.upper : st.lower;
      if (b.revision == dc.revs[i]) continue;
      dc.revs[i] = b.revision;
      if (b.value == dc.vals[i]) continue;
      dc.implied.add_mul(b.value - dc.vals[i], terms[i].second);
      dc.vals[i] = b.value;
    }
  } else {
    // Full exact pass, (re)priming the cache.
    DeltaRational implied;
    dc.valid = false;
    dc.vals.clear();
    dc.vals.reserve(terms.size());
    dc.revs.clear();
    dc.revs.reserve(terms.size());
    for (const auto& [v, c] : terms) {
      const VarState& st = vars_[static_cast<std::size_t>(v)];
      // An upper bound on the owner needs each positive column at its
      // upper bound and each negative column at its lower (mirrored for a
      // lower bound on the owner).
      const Bound& b = (upper != c.is_negative()) ? st.upper : st.lower;
      PSSE_ASSERT(b.active);  // the scan above returned on dead inputs
      implied.add_mul(b.value, c);
      dc.vals.push_back(b.value);
      dc.revs.push_back(b.revision);
    }
    dc.implied = std::move(implied);
    dc.valid = true;
  }
  // An asserted bound at least as tight already implies everything this
  // derivation could.
  if (own.active &&
      (upper ? own.value <= dc.implied : own.value >= dc.implied)) {
    return;
  }
  emit(dc.implied);
}

void Simplex::compute_delta() {
  // Model extraction reads every assignment, so this is a certification
  // point: restore all float-shadowed assignments first.
  restore_all_betas();
  // Choose a concrete positive delta small enough that replacing the
  // symbolic delta keeps every bound satisfied: for each pair
  // (bound, beta) with bound.real < beta.real but bound.delta > beta.delta
  // (or the symmetric case), delta < (beta.real - bound.real) /
  // (bound.delta - beta.delta).
  Rational delta(1);
  auto tighten = [&](const DeltaRational& lo, const DeltaRational& hi) {
    // Constraint lo <= hi must survive delta instantiation.
    if (lo.real() < hi.real() && lo.delta() > hi.delta()) {
      Rational cand = (hi.real() - lo.real()) / (lo.delta() - hi.delta());
      if (cand < delta) delta = cand;
    }
  };
  for (const VarState& st : vars_) {
    if (st.lower.active) tighten(st.lower.value, st.beta);
    if (st.upper.active) tighten(st.beta, st.upper.value);
  }
  // Halve once so strict constraints hold strictly even at equality of the
  // limiting ratio.
  concrete_delta_ = delta * Rational(1, 2);
}

Rational Simplex::model_value(TVar v) {
  // An interrupted check() left the betas mid-repair; consuming them as a
  // model would silently return junk. Callers must re-run check() to
  // completion first (a wrong answer is worse than a crash).
  PSSE_ASSERT(!interrupted_dirty_);
  if (!concrete_delta_.has_value()) compute_delta();
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(!st.stale);
  return st.beta.real() + st.beta.delta() * *concrete_delta_;
}

std::size_t Simplex::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const VarState& st : vars_) {
    bytes += sizeof(VarState);
    bytes += st.beta.real().footprint_bytes() +
             st.beta.delta().footprint_bytes();
    bytes += st.lower.value.real().footprint_bytes() +
             st.upper.value.real().footprint_bytes();
  }
  for (const Row& row : rows_) {
    bytes += sizeof(Row);
    for (const auto& [v, c] : row.expr.terms()) {
      bytes += sizeof(std::pair<TVar, Rational>) + c.footprint_bytes();
    }
    for (const auto& [v, c] : row.orig.terms()) {
      bytes += sizeof(std::pair<TVar, Rational>) + c.footprint_bytes();
    }
    bytes += row.mirror.capacity() * sizeof(std::pair<TVar, DoubleApprox>);
    bytes += row.pending.capacity() * sizeof(std::uint32_t);
    for (const DeriveCache& dc : row.derive) {
      bytes += dc.revs.capacity() * sizeof(std::uint64_t);
      bytes += dc.implied.real().footprint_bytes() +
               dc.implied.delta().footprint_bytes();
      for (const DeltaRational& t : dc.vals) {
        bytes += sizeof(DeltaRational) + t.real().footprint_bytes() +
                 t.delta().footprint_bytes();
      }
    }
  }
  for (const auto& col : cols_) {
    bytes += col.capacity() * sizeof(std::int32_t);  // sorted vector, no hash overhead
  }
  bytes += trail_.capacity() * sizeof(TrailEntry);
  bytes += violated_.capacity() * sizeof(TVar);
  bytes += fresh_bounds_.capacity() * sizeof(std::pair<TVar, bool>);
  bytes += dirty_rows_.capacity() * sizeof(std::int32_t);
  bytes += merge_scratch_.capacity() * sizeof(std::pair<TVar, Rational>);
  bytes += mirror_scratch_.capacity() * sizeof(std::pair<TVar, DoubleApprox>);
  for (const Eta& e : etas_) {
    bytes += sizeof(Eta);
    for (const auto& [v, c] : e.def.terms()) {
      bytes += sizeof(std::pair<TVar, Rational>) + c.footprint_bytes();
    }
  }
  return bytes;
}

}  // namespace psse::smt
