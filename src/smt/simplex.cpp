#include "smt/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "smt/common.h"

namespace psse::smt {

namespace {

// Sorted-vector column index: set semantics via binary search.
void col_insert(std::vector<std::int32_t>& col, std::int32_t r) {
  auto it = std::lower_bound(col.begin(), col.end(), r);
  if (it == col.end() || *it != r) col.insert(it, r);
}

void col_erase(std::vector<std::int32_t>& col, std::int32_t r) {
  auto it = std::lower_bound(col.begin(), col.end(), r);
  if (it != col.end() && *it == r) col.erase(it);
}

}  // namespace

TVar Simplex::new_var(std::string name) {
  TVar v = static_cast<TVar>(vars_.size());
  VarState st;
  st.name = name.empty() ? "r" + std::to_string(v) : std::move(name);
  vars_.push_back(std::move(st));
  cols_.emplace_back();
  violated_flag_.push_back(false);
  interesting_.push_back(false);
  return v;
}

void Simplex::set_interesting(TVar v, bool on) {
  interesting_[static_cast<std::size_t>(v)] = on;
}

void Simplex::set_options(const SimplexOptions& options) {
  // Turning the filter off (or any reconfiguration) re-establishes the
  // fully exact invariant first, so the next check starts from clean state
  // whichever mode it runs in.
  restore_all_betas();
  check_exact_fallback_ = false;
  options_ = options;
}

void Simplex::touch(TVar v) {
  if (violated_flag_[static_cast<std::size_t>(v)]) return;
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  if (st.row < 0) return;
  if (st.stale) {
    // Float margin: skip only when provably inside both bounds; equality
    // or an undersized margin enqueues conservatively (check() certifies).
    const bool lowOk =
        !st.lower.active || st.beta_f.definitely_greater(st.lower.approx);
    const bool upOk =
        !st.upper.active || st.beta_f.definitely_less(st.upper.approx);
    if (lowOk && upOk) return;
  } else if (in_bounds(v)) {
    return;
  }
  violated_flag_[static_cast<std::size_t>(v)] = true;
  violated_.push_back(v);
}

void Simplex::mark_row_dirty(std::int32_t rowIdx, bool upper) {
  if (!options_.derive_bounds) return;
  std::uint8_t& mask = row_dirty_[static_cast<std::size_t>(rowIdx)];
  const std::uint8_t bit = upper ? 2 : 1;
  if ((mask & bit) != 0) return;
  if (mask == 0) dirty_rows_.push_back(rowIdx);
  mask |= bit;
}

void Simplex::refresh_mirror(Row& row) {
  row.mirror.clear();
  row.mirror.reserve(row.expr.terms().size());
  for (const auto& [v, c] : row.expr.terms()) {
    row.mirror.push_back(c.approx());
  }
  // The terms changed, so the cached derivations no longer describe this
  // row (their revs are aligned term-for-term with the old expr).
  row.derive[0].valid = false;
  row.derive[1].valid = false;
}

TVar Simplex::slack_for(const LinExpr& expr) {
  PSSE_CHECK(!expr.is_constant(), "slack_for: constant expression");
  PSSE_CHECK(expr.constant().is_zero(),
             "slack_for: expression must have zero constant part");
  if (auto it = slack_cache_.find(expr); it != slack_cache_.end()) {
    return it->second;
  }
  TVar s = new_var("s" + std::to_string(rows_.size()));
  // Row: s = sum(expr), substituting any basic variables by their rows so
  // the tableau stays in solved form.
  Row row;
  row.owner = s;
  LinExpr substituted;
  for (const auto& [v, c] : expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    if (st.row >= 0) {
      substituted.add_scaled(rows_[static_cast<std::size_t>(st.row)].expr, c);
    } else {
      substituted.add_term(v, c);
    }
  }
  row.expr = std::move(substituted);
  refresh_mirror(row);
  std::int32_t rowIdx = static_cast<std::int32_t>(rows_.size());
  // beta(s) := value of the expression under the current assignment. Column
  // variables are non-basic (solved form), so their betas are exact.
  DeltaRational val;
  for (const auto& [v, c] : row.expr.terms()) {
    PSSE_ASSERT(!vars_[static_cast<std::size_t>(v)].stale);
    val.add_mul(vars_[static_cast<std::size_t>(v)].beta, c);
    col_insert(cols_[static_cast<std::size_t>(v)], rowIdx);
  }
  VarState& sst = vars_[static_cast<std::size_t>(s)];
  sst.beta = std::move(val);
  sst.beta_f = sst.beta.real().approx();
  sst.row = rowIdx;
  rows_.push_back(std::move(row));
  row_dirty_.push_back(0);
  mark_row_dirty(rowIdx, false);
  mark_row_dirty(rowIdx, true);
  slack_cache_.emplace(expr, s);
  return s;
}

const Rational* Simplex::row_coeff(const Row& row, TVar v) const {
  const std::ptrdiff_t i = row_term_index(row, v);
  return i < 0 ? nullptr : &row.expr.terms()[static_cast<std::size_t>(i)].second;
}

std::ptrdiff_t Simplex::row_term_index(const Row& row, TVar v) const {
  const auto& terms = row.expr.terms();
  auto it = std::lower_bound(
      terms.begin(), terms.end(), v,
      [](const auto& term, TVar key) { return term.first < key; });
  if (it != terms.end() && it->first == v) return it - terms.begin();
  return -1;
}

bool Simplex::in_bounds(TVar v) const {
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(!st.stale);
  if (st.lower.active && st.beta < st.lower.value) return false;
  if (st.upper.active && st.beta > st.upper.value) return false;
  return true;
}

void Simplex::restore_beta(TVar v) {
  VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(st.row >= 0 && st.stale);
  const Row& row = rows_[static_cast<std::size_t>(st.row)];
  DeltaRational acc;
  for (const auto& [x, c] : row.expr.terms()) {
    const VarState& xs = vars_[static_cast<std::size_t>(x)];
    PSSE_ASSERT(!xs.stale);  // solved form: column variables are non-basic
    acc.add_mul(xs.beta, c);
  }
  st.beta = std::move(acc);
  st.beta_f = st.beta.real().approx();
  st.stale = false;
  --stale_count_;
  ++exact_recomputes_;
}

void Simplex::restore_all_betas() {
  if (stale_count_ == 0) return;
  for (TVar v = 0; v < static_cast<TVar>(vars_.size()); ++v) {
    if (vars_[static_cast<std::size_t>(v)].stale) restore_beta(v);
    if (stale_count_ == 0) break;
  }
  PSSE_ASSERT(stale_count_ == 0);
}

bool Simplex::set_bound(TVar v, const DeltaRational& bound, Lit reason,
                        bool is_upper) {
  concrete_delta_.reset();
  VarState& st = vars_[static_cast<std::size_t>(v)];
  Bound& mine = is_upper ? st.upper : st.lower;
  const Bound& other = is_upper ? st.lower : st.upper;

  // Redundant (not tighter) assertions need no trail entry.
  if (mine.active &&
      (is_upper ? bound >= mine.value : bound <= mine.value)) {
    return true;
  }
  // Immediate conflict with the opposite bound.
  if (other.active && (is_upper ? bound < other.value : bound > other.value)) {
    conflict_.clear();
    conflict_.push_back(~reason);
    if (other.reason.valid()) conflict_.push_back(~other.reason);
    return false;
  }
  trail_.push_back({v, is_upper, mine});
  mine.value = bound;
  mine.approx = bound.real().approx();
  mine.revision = ++bound_revision_;
  mine.reason = reason;
  mine.active = true;
  if (options_.derive_bounds) {
    fresh_bounds_.emplace_back(v, is_upper);
    // A bound on one side of v only perturbs the row side that consumes it:
    // an upper bound feeds the side that wants positive columns at their
    // upper bound (mirrored through the coefficient sign).
    for (std::int32_t r : cols_[static_cast<std::size_t>(v)]) {
      const Row& row = rows_[static_cast<std::size_t>(r)];
      const std::ptrdiff_t ti = row_term_index(row, v);
      PSSE_ASSERT(ti >= 0);
      const bool neg =
          row.expr.terms()[static_cast<std::size_t>(ti)].second.is_negative();
      mark_row_dirty(r, is_upper != neg);
    }
  }

  if (st.row < 0) {
    // Non-basic: keep it inside its bounds eagerly. Dependent basic
    // variables may drift out of bounds, so feasibility must be rechecked.
    PSSE_ASSERT(!st.stale);
    if (is_upper ? st.beta > bound : st.beta < bound) {
      ++bound_flips_;
      update(v, bound, mine.approx);
      maybe_infeasible_ = true;
    }
  } else if (st.stale) {
    // Float-shadowed basic variable: recheck unless provably on the right
    // side of the new bound (equality counts as a recheck — cheap and rare).
    const bool safe = is_upper ? mine.approx.definitely_greater(st.beta_f)
                               : st.beta_f.definitely_greater(mine.approx);
    if (!safe) {
      maybe_infeasible_ = true;
      touch(v);
    }
  } else if (is_upper ? st.beta > bound : st.beta < bound) {
    maybe_infeasible_ = true;
    touch(v);
  }
  return true;
}

bool Simplex::assert_upper(TVar v, const DeltaRational& bound, Lit reason) {
  return set_bound(v, bound, reason, true);
}

bool Simplex::assert_lower(TVar v, const DeltaRational& bound, Lit reason) {
  return set_bound(v, bound, reason, false);
}

void Simplex::pop_to(std::size_t mark) {
  PSSE_ASSERT(mark <= trail_.size());
  concrete_delta_.reset();
  while (trail_.size() > mark) {
    TrailEntry e = std::move(trail_.back());
    trail_.pop_back();
    VarState& st = vars_[static_cast<std::size_t>(e.var)];
    (e.is_upper ? st.upper : st.lower) = e.previous;
  }
}

void Simplex::update(TVar v, const DeltaRational& newVal,
                     const DoubleApprox& newApprox) {
  VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(st.row < 0 && !st.stale);
  DeltaRational diff = newVal - st.beta;
  if (diff.is_zero()) {
    st.beta_f = newApprox;  // fresh conversion is at least as tight
    return;
  }
  const DoubleApprox diffF = newApprox - st.beta_f;
  const bool fm = float_mode();
  for (std::int32_t r : cols_[static_cast<std::size_t>(v)]) {
    const Row& row = rows_[static_cast<std::size_t>(r)];
    const std::ptrdiff_t ti = row_term_index(row, v);
    PSSE_ASSERT(ti >= 0);
    VarState& ost = vars_[static_cast<std::size_t>(row.owner)];
    ost.beta_f.add_mul(diffF, row.mirror[static_cast<std::size_t>(ti)]);
    if (fm) {
      if (!ost.stale) {
        ost.stale = true;
        ++stale_count_;
      }
    } else {
      PSSE_ASSERT(!ost.stale);
      ost.beta.add_mul(diff, row.expr.terms()[static_cast<std::size_t>(ti)].second);
    }
    touch(row.owner);
  }
  st.beta = newVal;
  st.beta_f = newApprox;
}

void Simplex::pivot(std::int32_t rowIdx, TVar entering) {
  ++pivots_;
  mark_row_dirty(rowIdx, false);
  mark_row_dirty(rowIdx, true);
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  TVar leaving = row.owner;
  const Rational* aPtr = row_coeff(row, entering);
  PSSE_ASSERT(aPtr != nullptr && !aPtr->is_zero());
  Rational inv = aPtr->inverse();

  // Solve the row for `entering`:
  //   leaving = a*entering + rest  =>  entering = inv*leaving - inv*rest.
  std::vector<std::pair<TVar, Rational>> newTerms;
  newTerms.reserve(row.expr.terms().size());
  for (const auto& [v, c] : row.expr.terms()) {
    if (v == entering) continue;
    Rational nc = c;
    nc *= inv;
    nc.negate();
    newTerms.emplace_back(v, std::move(nc));
  }
  {
    // Insert the leaving variable keeping terms sorted.
    auto it = std::lower_bound(
        newTerms.begin(), newTerms.end(), leaving,
        [](const auto& term, TVar key) { return term.first < key; });
    newTerms.insert(it, {leaving, std::move(inv)});
  }
  row.owner = entering;
  row.expr = LinExpr::from_sorted_terms(std::move(newTerms));
  refresh_mirror(row);
  // Column membership of this row changes only by -entering/+leaving; every
  // other term keeps its entry, so the index is patched, not rebuilt.
  col_erase(cols_[static_cast<std::size_t>(entering)], rowIdx);
  col_insert(cols_[static_cast<std::size_t>(leaving)], rowIdx);
  vars_[static_cast<std::size_t>(leaving)].row = -1;
  vars_[static_cast<std::size_t>(entering)].row = rowIdx;

  // Substitute `entering` in every other row that mentions it.
  // Copy the column set: it is mutated during substitution.
  std::vector<std::int32_t> dependents(
      cols_[static_cast<std::size_t>(entering)].begin(),
      cols_[static_cast<std::size_t>(entering)].end());
  for (std::int32_t r : dependents) {
    if (r == rowIdx) continue;
    mark_row_dirty(r, false);
    mark_row_dirty(r, true);
    Row& other = rows_[static_cast<std::size_t>(r)];
    const Rational* bPtr = row_coeff(other, entering);
    PSSE_ASSERT(bPtr != nullptr);
    Rational b = *bPtr;
    // other = b*entering + rest'  =>  substitute entering by its new row:
    // drop the entering term, then fuse-in b * row (one merge, add_mul per
    // coincident coefficient, no intermediate expression).
    col_vars_scratch_.clear();
    for (const auto& [v, c] : other.expr.terms()) {
      col_vars_scratch_.push_back(v);
    }
    Rational negB = b;
    negB.negate();
    other.expr.add_term(entering, negB);  // cancels exactly
    other.expr.add_scaled(row.expr, b, merge_scratch_);
    refresh_mirror(other);
    // Patch the column index with the membership *difference* between the
    // old and new term sets (both var-sorted): a sparse merge leaves most
    // terms in place, so this touches O(row length of the pivot row)
    // columns instead of every term of `other`.
    {
      const auto& terms = other.expr.terms();
      std::size_t i = 0, j = 0;
      while (i < col_vars_scratch_.size() || j < terms.size()) {
        if (j == terms.size() ||
            (i < col_vars_scratch_.size() &&
             col_vars_scratch_[i] < terms[j].first)) {
          col_erase(cols_[static_cast<std::size_t>(col_vars_scratch_[i])], r);
          ++i;
        } else if (i == col_vars_scratch_.size() ||
                   terms[j].first < col_vars_scratch_[i]) {
          col_insert(cols_[static_cast<std::size_t>(terms[j].first)], r);
          ++j;
        } else {
          ++i;
          ++j;
        }
      }
    }
  }
}

void Simplex::pivot_and_update(std::int32_t rowIdx, TVar entering,
                               const DeltaRational& target,
                               const DoubleApprox& targetApprox) {
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  TVar leaving = row.owner;
  const std::ptrdiff_t ai = row_term_index(row, entering);
  PSSE_ASSERT(ai >= 0);
  VarState& leaveSt = vars_[static_cast<std::size_t>(leaving)];
  VarState& enterSt = vars_[static_cast<std::size_t>(entering)];
  PSSE_ASSERT(!enterSt.stale);  // entering is non-basic
  const bool fm = float_mode();
  if (fm) ++float_pivots_;
  const Rational inv =
      row.expr.terms()[static_cast<std::size_t>(ai)].second.inverse();
  // theta: how far the entering variable must move. In float mode the
  // leaving variable's exact assignment may be stale, but its shadow (with
  // its accumulated error) is enough: the leaving variable lands exactly on
  // `target` either way, and every dependent shift is shadow-tracked.
  const DoubleApprox thetaF = (targetApprox - leaveSt.beta_f) * inv.approx();
  DeltaRational theta;
  if (!fm) {
    PSSE_ASSERT(!leaveSt.stale);
    theta = (target - leaveSt.beta) * inv;
  }
  leaveSt.beta = target;
  leaveSt.beta_f = targetApprox;
  if (leaveSt.stale) {
    leaveSt.stale = false;
    --stale_count_;
  }
  enterSt.beta_f = enterSt.beta_f + thetaF;
  if (fm) {
    enterSt.stale = true;
    ++stale_count_;
  } else {
    enterSt.beta += theta;
  }
  // Other basic variables depending on `entering` shift too.
  for (std::int32_t r : cols_[static_cast<std::size_t>(entering)]) {
    if (r == rowIdx) continue;
    const Row& other = rows_[static_cast<std::size_t>(r)];
    const std::ptrdiff_t ci = row_term_index(other, entering);
    PSSE_ASSERT(ci >= 0);
    VarState& ost = vars_[static_cast<std::size_t>(other.owner)];
    ost.beta_f.add_mul(thetaF, other.mirror[static_cast<std::size_t>(ci)]);
    if (fm) {
      if (!ost.stale) {
        ost.stale = true;
        ++stale_count_;
      }
    } else {
      PSSE_ASSERT(!ost.stale);
      ost.beta.add_mul(theta,
                       other.expr.terms()[static_cast<std::size_t>(ci)].second);
    }
    touch(other.owner);
  }
  pivot(rowIdx, entering);
  // The entering variable is basic now and may have been pushed past one of
  // its own bounds by theta.
  touch(entering);
}

void Simplex::build_conflict_from_row(const Row& row, bool lowerViolated) {
  conflict_.clear();
  const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
  // lowerViolated: beta(owner) < lower(owner) and no entering var can raise
  // it; the explanation is owner's lower bound plus, for each positive
  // coefficient the column's upper bound, for each negative its lower.
  const Bound& ownBound = lowerViolated ? owner.lower : owner.upper;
  PSSE_ASSERT(ownBound.active);
  if (ownBound.reason.valid()) conflict_.push_back(~ownBound.reason);
  for (const auto& [v, c] : row.expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    bool needUpper = lowerViolated ? !c.is_negative() : c.is_negative();
    const Bound& b = needUpper ? st.upper : st.lower;
    PSSE_ASSERT(b.active);
    if (b.reason.valid()) conflict_.push_back(~b.reason);
  }
}

bool Simplex::check() {
  if (!maybe_infeasible_) return true;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->simplex_us);
  concrete_delta_.reset();
  // With the filter off every assignment must already be exact
  // (set_options restores on reconfiguration).
  PSSE_ASSERT(options_.float_filter || stale_count_ == 0);
  check_exact_fallback_ = false;
  // Heuristic pivot selection has no termination guarantee (it can cycle on
  // degenerate tableaus); after the per-check budget it hands over to strict
  // Bland's rule, which cannot cycle.
  bool bland = !options_.heuristic_pivoting;
  std::uint64_t pivotsThisCheck = 0;
  std::uint32_t disagreements = 0;

  // A certification whose exact outcome contradicts a *margin-proven*
  // float verdict — float drift beyond the tracked error envelope, which
  // the interval arithmetic is built to rule out, so any occurrence means
  // the envelope is too tight for this instance. Past the per-check budget
  // the filter has lost the plot and the rest of the check runs on the
  // exact path. (Uncertain classifications that get resolved exactly are
  // *not* disagreements — that is the filter working as designed.)
  auto note_disagreement = [&] {
    ++filter_disagreements_;
    if (++disagreements > options_.filter_disagreement_budget &&
        !check_exact_fallback_) {
      check_exact_fallback_ = true;
      ++filter_fallbacks_;
      restore_all_betas();
    }
  };

  // A non-finite pivot score — an overflowed mirror coefficient, or an
  // inf-inf NaN in a violation amount — is float state the error envelope
  // cannot even describe, so the float path is abandoned for the rest of
  // the check on first sight (no budget: one inf means every later score
  // is suspect). The candidate keeps a zero score rather than being
  // skipped: dropping it could turn a poisoned mirror into a fabricated
  // "no entering variable" conflict, and conflicts must only ever come
  // from the exact tableau.
  auto finite_or_zero = [&](double score) -> double {
    if (std::isfinite(score)) return score;
    ++filter_disagreements_;
    if (!check_exact_fallback_) {
      check_exact_fallback_ = true;
      ++filter_fallbacks_;
      restore_all_betas();
    }
    return 0.0;
  };

  // Classifies a basic candidate's bound violation. Float margins decide
  // when they provably clear the error envelope (lexicographic
  // delta-rational order: a strict real-part margin decides regardless of
  // the delta parts); otherwise the exact assignment is restored and the
  // comparison is exact — a certification point.
  auto classify = [&](TVar cand) -> std::pair<bool, bool> {
    VarState& cst = vars_[static_cast<std::size_t>(cand)];
    if (cst.stale) {
      bool uncertain = false;
      bool lowViol = false;
      if (cst.lower.active) {
        if (cst.lower.approx.definitely_greater(cst.beta_f)) {
          lowViol = true;
        } else if (!cst.beta_f.definitely_greater(cst.lower.approx)) {
          uncertain = true;
        }
      }
      bool upViol = false;
      if (!lowViol && cst.upper.active) {
        if (cst.beta_f.definitely_greater(cst.upper.approx)) {
          upViol = true;
        } else if (!cst.upper.approx.definitely_greater(cst.beta_f)) {
          uncertain = true;
        }
      }
      if (!uncertain) return {lowViol, upViol};
      // Resolve exactly, and score the float point estimate's prediction:
      // a mispredicting float state is drifting through territory the error
      // envelope cannot separate, so past the budget the check stops paying
      // for restores and runs exact.
      const bool guessLow =
          cst.lower.active && cst.beta_f.value < cst.lower.approx.value;
      const bool guessUp = !guessLow && cst.upper.active &&
                           cst.beta_f.value > cst.upper.approx.value;
      restore_beta(cand);
      const bool exLow = cst.lower.active && cst.beta < cst.lower.value;
      const bool exUp =
          !exLow && cst.upper.active && cst.beta > cst.upper.value;
      if (exLow != guessLow || exUp != guessUp) note_disagreement();
      return {exLow, exUp};
    }
    const bool exLow = cst.lower.active && cst.beta < cst.lower.value;
    const bool exUp = !exLow && cst.upper.active && cst.beta > cst.upper.value;
    return {exLow, exUp};
  };

  for (std::uint64_t iter = 0;; ++iter) {
    // Budgets used to be enforced only between SAT decisions, so one long
    // pivot sequence could blow far past the wall-clock limit; poll here.
    // maybe_infeasible_ stays set, so an aborted check redoes no bookkeeping
    // it shouldn't.
    if ((iter & 15) == 0 && interrupt_ != nullptr && interrupt_->triggered()) {
      interrupted_dirty_ = true;
      return true;
    }
    if (!bland && pivotsThisCheck >= options_.bland_fallback_after) {
      bland = true;
      ++bland_fallbacks_;
    }
    // Leaving variable from the candidate worklist, compacting away entries
    // that are back in bounds (or were pivoted non-basic): Bland takes the
    // smallest index, the heuristic the largest violation. The heuristic
    // scores in floating point — any pivot choice is sound, and exact
    // delta-rational differences here would dominate the whole check on
    // instances with hairy denominators.
    TVar violated = kNoTVar;
    bool lowerViolated = false;
    double bestViolation = -1.0;
    std::size_t w = 0;
    for (std::size_t i = 0; i < violated_.size(); ++i) {
      TVar cand = violated_[i];
      const VarState& cst = vars_[static_cast<std::size_t>(cand)];
      if (cst.row < 0) {
        violated_flag_[static_cast<std::size_t>(cand)] = false;
        continue;
      }
      const auto [lowViol, upViol] = classify(cand);
      if (!lowViol && !upViol) {
        violated_flag_[static_cast<std::size_t>(cand)] = false;
        continue;
      }
      violated_[w++] = cand;
      if (bland) {
        if (violated == kNoTVar || cand < violated) {
          violated = cand;
          lowerViolated = lowViol;
        }
        continue;
      }
      const double bound =
          lowViol ? cst.lower.approx.value : cst.upper.approx.value;
      const double beta = cst.beta_f.value;
      const double amount =
          finite_or_zero(lowViol ? bound - beta : beta - bound);
      if (violated == kNoTVar || amount > bestViolation ||
          (amount == bestViolation && cand < violated)) {
        violated = cand;
        lowerViolated = lowViol;
        bestViolation = amount;
      }
    }
    violated_.resize(w);
    if (violated == kNoTVar) {
      // Feasible. Stale assignments may remain — they are restored lazily
      // (model extraction restores everything via compute_delta).
      maybe_infeasible_ = false;
      interrupted_dirty_ = false;
      return true;
    }

    const VarState& st = vars_[static_cast<std::size_t>(violated)];
    std::int32_t rowIdx = st.row;
    const Row& row = rows_[static_cast<std::size_t>(rowIdx)];
    // Entering variable among the suitable columns: Bland takes the
    // smallest index, the heuristic the largest coefficient magnitude
    // (bigger steps toward the violated bound per pivot; small pivot
    // elements also blow up the rationals of every rebuilt row). Column
    // variables are non-basic, so their betas are exact and suitability is
    // too; the magnitude score reads the row mirror.
    TVar entering = kNoTVar;
    double bestMagnitude = -1.0;
    const auto& terms = row.expr.terms();
    for (std::size_t ti = 0; ti < terms.size(); ++ti) {
      const TVar v = terms[ti].first;
      const Rational& c = terms[ti].second;
      const VarState& cv = vars_[static_cast<std::size_t>(v)];
      PSSE_ASSERT(!cv.stale);
      bool suitable;
      if (lowerViolated) {
        // Need to increase the owner.
        suitable = !c.is_negative()
                       ? (!cv.upper.active || cv.beta < cv.upper.value)
                       : (!cv.lower.active || cv.beta > cv.lower.value);
      } else {
        // Need to decrease the owner.
        suitable = !c.is_negative()
                       ? (!cv.lower.active || cv.beta > cv.lower.value)
                       : (!cv.upper.active || cv.beta < cv.upper.value);
      }
      if (!suitable) continue;
      if (bland) {
        if (entering == kNoTVar || v < entering) entering = v;
        continue;
      }
      const double magnitude = finite_or_zero(std::fabs(row.mirror[ti].value));
      if (entering == kNoTVar || magnitude > bestMagnitude ||
          (magnitude == bestMagnitude && v < entering)) {
        entering = v;
        bestMagnitude = magnitude;
      }
    }
    if (entering == kNoTVar) {
      // Certification point: never emit a conflict off a float-only
      // assignment. Margin-proven violations are already exact facts, but
      // the conflict is the one artifact the CDCL core consumes, so the
      // violation is always re-established from the exact tableau first.
      VarState& vst = vars_[static_cast<std::size_t>(violated)];
      if (vst.stale) {
        restore_beta(violated);
        const bool still =
            lowerViolated ? (vst.lower.active && vst.beta < vst.lower.value)
                          : (vst.upper.active && vst.beta > vst.upper.value);
        if (!still) {
          note_disagreement();
          continue;  // re-scan; the candidate is now exact
        }
      }
      build_conflict_from_row(row, lowerViolated);
      interrupted_dirty_ = false;
      return false;
    }
    pivot_and_update(rowIdx, entering,
                     lowerViolated ? st.lower.value : st.upper.value,
                     lowerViolated ? st.lower.approx : st.upper.approx);
    ++pivotsThisCheck;
  }
}

void Simplex::propagate_implied(std::vector<ImpliedBound>& out) {
  // Only a feasibility-checked bound set may propagate: while
  // maybe_infeasible_ is set (pending, conflicting, or interrupted check)
  // the pending work simply stays queued for the next drain.
  if (!options_.derive_bounds || maybe_infeasible_) return;
  if (fresh_bounds_.empty() && dirty_rows_.empty()) return;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->tprop_us);
  for (const auto& [v, isUpper] : fresh_bounds_) {
    if (!interesting_[static_cast<std::size_t>(v)]) continue;
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    // Republish the variable's current bound on that side (the recorded
    // assertion may have been retracted or superseded since).
    const Bound& b = isUpper ? st.upper : st.lower;
    if (!b.active || !b.reason.valid()) continue;
    out.push_back({v, isUpper, b.value, {b.reason}});
  }
  fresh_bounds_.clear();
  for (std::int32_t r : dirty_rows_) {
    const std::uint8_t mask = row_dirty_[static_cast<std::size_t>(r)];
    row_dirty_[static_cast<std::size_t>(r)] = 0;
    if (!interesting_[static_cast<std::size_t>(
            rows_[static_cast<std::size_t>(r)].owner)]) {
      continue;
    }
    if ((mask & 2) != 0) derive_row_bound(r, true, out);
    if ((mask & 1) != 0) derive_row_bound(r, false, out);
  }
  dirty_rows_.clear();
}

void Simplex::derive_row_bound(std::int32_t rowIdx, bool upper,
                               std::vector<ImpliedBound>& out) {
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
  const Bound& own = upper ? owner.upper : owner.lower;
  const auto& terms = row.expr.terms();

  auto emit = [&](const DeltaRational& implied) {
    ImpliedBound ib;
    ib.var = row.owner;
    ib.is_upper = upper;
    ib.bound = implied;
    ib.premises.reserve(terms.size());
    for (const auto& [v, c] : terms) {
      const VarState& st = vars_[static_cast<std::size_t>(v)];
      const Bound& b = (upper != c.is_negative()) ? st.upper : st.lower;
      if (b.reason.valid()) ib.premises.push_back(b.reason);
    }
    out.push_back(std::move(ib));
  };

  // One scan over the inputs decides everything cheap: (a) an unbounded
  // column kills the derivation — measured as 84% of all derivation
  // attempts, which the exact path would only discover after accumulating
  // big-rational products up to that column; (b) against a cache aligned
  // with the current terms, the scan notes whether any input bound value
  // moved; (c) the float sum feeds the margin screen below.
  DeriveCache& dc = row.derive[upper ? 1 : 0];
  const bool aligned = dc.valid && dc.vals.size() == terms.size();
  bool changed = !aligned;
  DoubleApprox sum;
  for (std::size_t i = 0; i < terms.size(); ++i) {
    const VarState& st = vars_[static_cast<std::size_t>(terms[i].first)];
    const Bound& b =
        (upper != terms[i].second.is_negative()) ? st.upper : st.lower;
    if (!b.active) return;  // one unbounded column kills the derivation
    if (aligned && b.revision != dc.revs[i]) {
      if (b.value != dc.vals[i]) {
        changed = true;
      } else {
        dc.revs[i] = b.revision;  // re-assertion of the cached value
      }
    }
    sum.add_mul(b.approx, row.mirror[i]);
  }

  // Revision-cache replay: nothing moved since the last exact pass, so the
  // cached implied value is current — repeat the emission decision with no
  // exact arithmetic (see DeriveCache). In particular every exact tie
  // (owner bound == implied bound, undecidable by any float margin) is
  // disposed of here.
  if (!changed) {
    if (own.active &&
        (upper ? own.value <= dc.implied : own.value >= dc.implied)) {
      return;
    }
    emit(dc.implied);
    return;
  }

  // Float margin screen: when the owner has an asserted bound, a strict
  // real-part margin proves the implied bound cannot tighten it
  // (lexicographic order: delta parts only matter at real-part equality,
  // which never clears the margin). Anything closer falls through to the
  // exact derivation below, so the set of emitted bounds is identical to
  // the exact-only configuration. (Dropping uncertain derivations outright
  // would also be sound — hints don't affect completeness — but it
  // destabilizes the search: measured 6x slower on ieee300.) The cache is
  // NOT invalidated by a skip: its (rev, contribution) pairs stay
  // consistent with `implied`, so a later derivation patches incrementally.
  if (options_.float_filter && own.active) {
    const bool skip = upper ? sum.definitely_greater(own.approx)
                            : own.approx.definitely_greater(sum);
    if (skip) return;
  }

  if (options_.float_filter) ++exact_recomputes_;
  if (aligned) {
    // Incremental exact pass: patch only the terms whose input bound value
    // moved — usually exactly one, and by a small difference — so
    // O(changed) exact work instead of an O(row length) recomputation.
    for (std::size_t i = 0; i < terms.size(); ++i) {
      const VarState& st = vars_[static_cast<std::size_t>(terms[i].first)];
      const Bound& b =
          (upper != terms[i].second.is_negative()) ? st.upper : st.lower;
      if (b.revision == dc.revs[i]) continue;
      dc.revs[i] = b.revision;
      if (b.value == dc.vals[i]) continue;
      dc.implied.add_mul(b.value - dc.vals[i], terms[i].second);
      dc.vals[i] = b.value;
    }
  } else {
    // Full exact pass, (re)priming the cache.
    DeltaRational implied;
    dc.valid = false;
    dc.vals.clear();
    dc.vals.reserve(terms.size());
    dc.revs.clear();
    dc.revs.reserve(terms.size());
    for (const auto& [v, c] : terms) {
      const VarState& st = vars_[static_cast<std::size_t>(v)];
      // An upper bound on the owner needs each positive column at its
      // upper bound and each negative column at its lower (mirrored for a
      // lower bound on the owner).
      const Bound& b = (upper != c.is_negative()) ? st.upper : st.lower;
      PSSE_ASSERT(b.active);  // the scan above returned on dead inputs
      implied.add_mul(b.value, c);
      dc.vals.push_back(b.value);
      dc.revs.push_back(b.revision);
    }
    dc.implied = std::move(implied);
    dc.valid = true;
  }
  // An asserted bound at least as tight already implies everything this
  // derivation could.
  if (own.active &&
      (upper ? own.value <= dc.implied : own.value >= dc.implied)) {
    return;
  }
  emit(dc.implied);
}

void Simplex::compute_delta() {
  // Model extraction reads every assignment, so this is a certification
  // point: restore all float-shadowed assignments first.
  restore_all_betas();
  // Choose a concrete positive delta small enough that replacing the
  // symbolic delta keeps every bound satisfied: for each pair
  // (bound, beta) with bound.real < beta.real but bound.delta > beta.delta
  // (or the symmetric case), delta < (beta.real - bound.real) /
  // (bound.delta - beta.delta).
  Rational delta(1);
  auto tighten = [&](const DeltaRational& lo, const DeltaRational& hi) {
    // Constraint lo <= hi must survive delta instantiation.
    if (lo.real() < hi.real() && lo.delta() > hi.delta()) {
      Rational cand = (hi.real() - lo.real()) / (lo.delta() - hi.delta());
      if (cand < delta) delta = cand;
    }
  };
  for (const VarState& st : vars_) {
    if (st.lower.active) tighten(st.lower.value, st.beta);
    if (st.upper.active) tighten(st.beta, st.upper.value);
  }
  // Halve once so strict constraints hold strictly even at equality of the
  // limiting ratio.
  concrete_delta_ = delta * Rational(1, 2);
}

Rational Simplex::model_value(TVar v) {
  // An interrupted check() left the betas mid-repair; consuming them as a
  // model would silently return junk. Callers must re-run check() to
  // completion first (a wrong answer is worse than a crash).
  PSSE_ASSERT(!interrupted_dirty_);
  if (!concrete_delta_.has_value()) compute_delta();
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(!st.stale);
  return st.beta.real() + st.beta.delta() * *concrete_delta_;
}

std::size_t Simplex::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const VarState& st : vars_) {
    bytes += sizeof(VarState);
    bytes += st.beta.real().footprint_bytes() +
             st.beta.delta().footprint_bytes();
    bytes += st.lower.value.real().footprint_bytes() +
             st.upper.value.real().footprint_bytes();
  }
  for (const Row& row : rows_) {
    bytes += sizeof(Row);
    for (const auto& [v, c] : row.expr.terms()) {
      bytes += sizeof(std::pair<TVar, Rational>) + c.footprint_bytes();
    }
    bytes += row.mirror.capacity() * sizeof(DoubleApprox);
    for (const DeriveCache& dc : row.derive) {
      bytes += dc.revs.capacity() * sizeof(std::uint64_t);
      bytes += dc.implied.real().footprint_bytes() +
               dc.implied.delta().footprint_bytes();
      for (const DeltaRational& t : dc.vals) {
        bytes += sizeof(DeltaRational) + t.real().footprint_bytes() +
                 t.delta().footprint_bytes();
      }
    }
  }
  for (const auto& col : cols_) {
    bytes += col.capacity() * sizeof(std::int32_t);  // sorted vector, no hash overhead
  }
  bytes += trail_.capacity() * sizeof(TrailEntry);
  bytes += violated_.capacity() * sizeof(TVar);
  bytes += fresh_bounds_.capacity() * sizeof(std::pair<TVar, bool>);
  bytes += dirty_rows_.capacity() * sizeof(std::int32_t);
  bytes += merge_scratch_.capacity() * sizeof(std::pair<TVar, Rational>);
  return bytes;
}

}  // namespace psse::smt
