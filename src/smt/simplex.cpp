#include "smt/simplex.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "smt/common.h"

namespace psse::smt {

namespace {

// Sorted-vector column index: set semantics via binary search.
void col_insert(std::vector<std::int32_t>& col, std::int32_t r) {
  auto it = std::lower_bound(col.begin(), col.end(), r);
  if (it == col.end() || *it != r) col.insert(it, r);
}

void col_erase(std::vector<std::int32_t>& col, std::int32_t r) {
  auto it = std::lower_bound(col.begin(), col.end(), r);
  if (it != col.end() && *it == r) col.erase(it);
}

}  // namespace

TVar Simplex::new_var(std::string name) {
  TVar v = static_cast<TVar>(vars_.size());
  VarState st;
  st.name = name.empty() ? "r" + std::to_string(v) : std::move(name);
  vars_.push_back(std::move(st));
  cols_.emplace_back();
  violated_flag_.push_back(false);
  interesting_.push_back(false);
  return v;
}

void Simplex::set_interesting(TVar v, bool on) {
  interesting_[static_cast<std::size_t>(v)] = on;
}

void Simplex::touch(TVar v) {
  if (violated_flag_[static_cast<std::size_t>(v)]) return;
  if (vars_[static_cast<std::size_t>(v)].row < 0 || in_bounds(v)) return;
  violated_flag_[static_cast<std::size_t>(v)] = true;
  violated_.push_back(v);
}

void Simplex::mark_row_dirty(std::int32_t rowIdx) {
  if (!options_.derive_bounds) return;
  if (row_dirty_[static_cast<std::size_t>(rowIdx)]) return;
  row_dirty_[static_cast<std::size_t>(rowIdx)] = true;
  dirty_rows_.push_back(rowIdx);
}

TVar Simplex::slack_for(const LinExpr& expr) {
  PSSE_CHECK(!expr.is_constant(), "slack_for: constant expression");
  PSSE_CHECK(expr.constant().is_zero(),
             "slack_for: expression must have zero constant part");
  if (auto it = slack_cache_.find(expr); it != slack_cache_.end()) {
    return it->second;
  }
  TVar s = new_var("s" + std::to_string(rows_.size()));
  // Row: s = sum(expr), substituting any basic variables by their rows so
  // the tableau stays in solved form.
  Row row;
  row.owner = s;
  LinExpr substituted;
  for (const auto& [v, c] : expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    if (st.row >= 0) {
      substituted.add_scaled(rows_[static_cast<std::size_t>(st.row)].expr, c);
    } else {
      substituted.add_term(v, c);
    }
  }
  row.expr = std::move(substituted);
  std::int32_t rowIdx = static_cast<std::int32_t>(rows_.size());
  // beta(s) := value of the expression under the current assignment.
  DeltaRational val;
  for (const auto& [v, c] : row.expr.terms()) {
    val.add_mul(vars_[static_cast<std::size_t>(v)].beta, c);
    col_insert(cols_[static_cast<std::size_t>(v)], rowIdx);
  }
  vars_[static_cast<std::size_t>(s)].beta = val;
  vars_[static_cast<std::size_t>(s)].row = rowIdx;
  rows_.push_back(std::move(row));
  row_dirty_.push_back(false);
  mark_row_dirty(rowIdx);
  slack_cache_.emplace(expr, s);
  return s;
}

const Rational* Simplex::row_coeff(const Row& row, TVar v) const {
  const auto& terms = row.expr.terms();
  auto it = std::lower_bound(
      terms.begin(), terms.end(), v,
      [](const auto& term, TVar key) { return term.first < key; });
  if (it != terms.end() && it->first == v) return &it->second;
  return nullptr;
}

bool Simplex::in_bounds(TVar v) const {
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  if (st.lower.active && st.beta < st.lower.value) return false;
  if (st.upper.active && st.beta > st.upper.value) return false;
  return true;
}

bool Simplex::set_bound(TVar v, const DeltaRational& bound, Lit reason,
                        bool is_upper) {
  concrete_delta_.reset();
  VarState& st = vars_[static_cast<std::size_t>(v)];
  Bound& mine = is_upper ? st.upper : st.lower;
  const Bound& other = is_upper ? st.lower : st.upper;

  // Redundant (not tighter) assertions need no trail entry.
  if (mine.active &&
      (is_upper ? bound >= mine.value : bound <= mine.value)) {
    return true;
  }
  // Immediate conflict with the opposite bound.
  if (other.active && (is_upper ? bound < other.value : bound > other.value)) {
    conflict_.clear();
    conflict_.push_back(~reason);
    if (other.reason.valid()) conflict_.push_back(~other.reason);
    return false;
  }
  trail_.push_back({v, is_upper, mine});
  mine.value = bound;
  mine.reason = reason;
  mine.active = true;
  if (options_.derive_bounds) {
    fresh_bounds_.emplace_back(v, is_upper);
    for (std::int32_t r : cols_[static_cast<std::size_t>(v)]) {
      mark_row_dirty(r);
    }
  }

  if (st.row < 0) {
    // Non-basic: keep it inside its bounds eagerly. Dependent basic
    // variables may drift out of bounds, so feasibility must be rechecked.
    if (is_upper ? st.beta > bound : st.beta < bound) {
      ++bound_flips_;
      update(v, bound);
      maybe_infeasible_ = true;
    }
  } else if (is_upper ? st.beta > bound : st.beta < bound) {
    maybe_infeasible_ = true;
    touch(v);
  }
  return true;
}

bool Simplex::assert_upper(TVar v, const DeltaRational& bound, Lit reason) {
  return set_bound(v, bound, reason, true);
}

bool Simplex::assert_lower(TVar v, const DeltaRational& bound, Lit reason) {
  return set_bound(v, bound, reason, false);
}

void Simplex::pop_to(std::size_t mark) {
  PSSE_ASSERT(mark <= trail_.size());
  concrete_delta_.reset();
  while (trail_.size() > mark) {
    TrailEntry e = std::move(trail_.back());
    trail_.pop_back();
    VarState& st = vars_[static_cast<std::size_t>(e.var)];
    (e.is_upper ? st.upper : st.lower) = e.previous;
  }
}

void Simplex::update(TVar v, const DeltaRational& newVal) {
  VarState& st = vars_[static_cast<std::size_t>(v)];
  PSSE_ASSERT(st.row < 0);
  DeltaRational diff = newVal - st.beta;
  if (diff.is_zero()) return;
  for (std::int32_t r : cols_[static_cast<std::size_t>(v)]) {
    const Row& row = rows_[static_cast<std::size_t>(r)];
    const Rational* c = row_coeff(row, v);
    PSSE_ASSERT(c != nullptr);
    vars_[static_cast<std::size_t>(row.owner)].beta.add_mul(diff, *c);
    touch(row.owner);
  }
  st.beta = newVal;
}

void Simplex::pivot(std::int32_t rowIdx, TVar entering) {
  ++pivots_;
  mark_row_dirty(rowIdx);
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  TVar leaving = row.owner;
  const Rational* aPtr = row_coeff(row, entering);
  PSSE_ASSERT(aPtr != nullptr && !aPtr->is_zero());
  Rational inv = aPtr->inverse();

  // Solve the row for `entering`:
  //   leaving = a*entering + rest  =>  entering = inv*leaving - inv*rest.
  std::vector<std::pair<TVar, Rational>> newTerms;
  newTerms.reserve(row.expr.terms().size());
  for (const auto& [v, c] : row.expr.terms()) {
    if (v == entering) continue;
    Rational nc = c;
    nc *= inv;
    nc.negate();
    newTerms.emplace_back(v, std::move(nc));
    col_erase(cols_[static_cast<std::size_t>(v)], rowIdx);
  }
  col_erase(cols_[static_cast<std::size_t>(entering)], rowIdx);
  {
    // Insert the leaving variable keeping terms sorted.
    auto it = std::lower_bound(
        newTerms.begin(), newTerms.end(), leaving,
        [](const auto& term, TVar key) { return term.first < key; });
    newTerms.insert(it, {leaving, std::move(inv)});
  }
  row.owner = entering;
  row.expr = LinExpr::from_sorted_terms(std::move(newTerms));
  for (const auto& [v, c] : row.expr.terms()) {
    col_insert(cols_[static_cast<std::size_t>(v)], rowIdx);
  }
  vars_[static_cast<std::size_t>(leaving)].row = -1;
  vars_[static_cast<std::size_t>(entering)].row = rowIdx;

  // Substitute `entering` in every other row that mentions it.
  // Copy the column set: it is mutated during substitution.
  std::vector<std::int32_t> dependents(
      cols_[static_cast<std::size_t>(entering)].begin(),
      cols_[static_cast<std::size_t>(entering)].end());
  for (std::int32_t r : dependents) {
    if (r == rowIdx) continue;
    mark_row_dirty(r);
    Row& other = rows_[static_cast<std::size_t>(r)];
    const Rational* bPtr = row_coeff(other, entering);
    PSSE_ASSERT(bPtr != nullptr);
    Rational b = *bPtr;
    // other = b*entering + rest'  =>  substitute entering by its new row:
    // drop the entering term, then fuse-in b * row (one merge, add_mul per
    // coincident coefficient, no intermediate expression).
    for (const auto& [v, c] : other.expr.terms()) {
      col_erase(cols_[static_cast<std::size_t>(v)], r);
    }
    Rational negB = b;
    negB.negate();
    other.expr.add_term(entering, negB);  // cancels exactly
    other.expr.add_scaled(row.expr, b);
    for (const auto& [v, c] : other.expr.terms()) {
      col_insert(cols_[static_cast<std::size_t>(v)], r);
    }
  }
}

void Simplex::pivot_and_update(std::int32_t rowIdx, TVar entering,
                               const DeltaRational& target) {
  Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  TVar leaving = row.owner;
  const Rational* aPtr = row_coeff(row, entering);
  PSSE_ASSERT(aPtr != nullptr);
  VarState& leaveSt = vars_[static_cast<std::size_t>(leaving)];
  VarState& enterSt = vars_[static_cast<std::size_t>(entering)];
  // theta: how far the entering variable must move.
  DeltaRational theta = (target - leaveSt.beta) * aPtr->inverse();
  leaveSt.beta = target;
  enterSt.beta += theta;
  // Other basic variables depending on `entering` shift too.
  for (std::int32_t r : cols_[static_cast<std::size_t>(entering)]) {
    if (r == rowIdx) continue;
    const Row& other = rows_[static_cast<std::size_t>(r)];
    const Rational* c = row_coeff(other, entering);
    PSSE_ASSERT(c != nullptr);
    vars_[static_cast<std::size_t>(other.owner)].beta.add_mul(theta, *c);
    touch(other.owner);
  }
  pivot(rowIdx, entering);
  // The entering variable is basic now and may have been pushed past one of
  // its own bounds by theta.
  touch(entering);
}

void Simplex::build_conflict_from_row(const Row& row, bool lowerViolated) {
  conflict_.clear();
  const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
  // lowerViolated: beta(owner) < lower(owner) and no entering var can raise
  // it; the explanation is owner's lower bound plus, for each positive
  // coefficient the column's upper bound, for each negative its lower.
  const Bound& ownBound = lowerViolated ? owner.lower : owner.upper;
  PSSE_ASSERT(ownBound.active);
  if (ownBound.reason.valid()) conflict_.push_back(~ownBound.reason);
  for (const auto& [v, c] : row.expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    bool needUpper = lowerViolated ? !c.is_negative() : c.is_negative();
    const Bound& b = needUpper ? st.upper : st.lower;
    PSSE_ASSERT(b.active);
    if (b.reason.valid()) conflict_.push_back(~b.reason);
  }
}

bool Simplex::check() {
  if (!maybe_infeasible_) return true;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->simplex_us);
  concrete_delta_.reset();
  // Heuristic pivot selection has no termination guarantee (it can cycle on
  // degenerate tableaus); after the per-check budget it hands over to strict
  // Bland's rule, which cannot cycle.
  bool bland = !options_.heuristic_pivoting;
  std::uint64_t pivotsThisCheck = 0;
  for (std::uint64_t iter = 0;; ++iter) {
    // Budgets used to be enforced only between SAT decisions, so one long
    // pivot sequence could blow far past the wall-clock limit; poll here.
    // maybe_infeasible_ stays set, so an aborted check redoes no bookkeeping
    // it shouldn't.
    if ((iter & 15) == 0 && interrupt_ != nullptr && interrupt_->triggered()) {
      interrupted_dirty_ = true;
      return true;
    }
    if (!bland && pivotsThisCheck >= options_.bland_fallback_after) {
      bland = true;
      ++bland_fallbacks_;
    }
    // Leaving variable from the candidate worklist, compacting away entries
    // that are back in bounds (or were pivoted non-basic): Bland takes the
    // smallest index, the heuristic the largest violation. The heuristic
    // scores in floating point — any pivot choice is sound, and exact
    // delta-rational differences here would dominate the whole check on
    // instances with hairy denominators.
    TVar violated = kNoTVar;
    bool lowerViolated = false;
    double bestViolation = -1.0;
    std::size_t w = 0;
    for (std::size_t i = 0; i < violated_.size(); ++i) {
      TVar cand = violated_[i];
      const VarState& cst = vars_[static_cast<std::size_t>(cand)];
      const bool lowViol = cst.lower.active && cst.beta < cst.lower.value;
      const bool upViol =
          !lowViol && cst.upper.active && cst.beta > cst.upper.value;
      if (cst.row < 0 || (!lowViol && !upViol)) {
        violated_flag_[static_cast<std::size_t>(cand)] = false;
        continue;
      }
      violated_[w++] = cand;
      if (bland) {
        if (violated == kNoTVar || cand < violated) {
          violated = cand;
          lowerViolated = lowViol;
        }
        continue;
      }
      const double bound = lowViol ? cst.lower.value.real().to_double()
                                   : cst.upper.value.real().to_double();
      const double beta = cst.beta.real().to_double();
      const double amount = lowViol ? bound - beta : beta - bound;
      if (violated == kNoTVar || amount > bestViolation ||
          (amount == bestViolation && cand < violated)) {
        violated = cand;
        lowerViolated = lowViol;
        bestViolation = amount;
      }
    }
    violated_.resize(w);
    if (violated == kNoTVar) {
      maybe_infeasible_ = false;
      interrupted_dirty_ = false;
      return true;
    }

    const VarState& st = vars_[static_cast<std::size_t>(violated)];
    std::int32_t rowIdx = st.row;
    const Row& row = rows_[static_cast<std::size_t>(rowIdx)];
    // Entering variable among the suitable columns: Bland takes the
    // smallest index, the heuristic the largest coefficient magnitude
    // (bigger steps toward the violated bound per pivot), scored in
    // floating point for the same reason as above.
    TVar entering = kNoTVar;
    double bestMagnitude = -1.0;
    for (const auto& [v, c] : row.expr.terms()) {
      const VarState& cv = vars_[static_cast<std::size_t>(v)];
      bool suitable;
      if (lowerViolated) {
        // Need to increase the owner.
        suitable = !c.is_negative()
                       ? (!cv.upper.active || cv.beta < cv.upper.value)
                       : (!cv.lower.active || cv.beta > cv.lower.value);
      } else {
        // Need to decrease the owner.
        suitable = !c.is_negative()
                       ? (!cv.lower.active || cv.beta > cv.lower.value)
                       : (!cv.upper.active || cv.beta < cv.upper.value);
      }
      if (!suitable) continue;
      if (bland) {
        if (entering == kNoTVar || v < entering) entering = v;
        continue;
      }
      const double magnitude = std::fabs(c.to_double());
      if (entering == kNoTVar || magnitude > bestMagnitude ||
          (magnitude == bestMagnitude && v < entering)) {
        entering = v;
        bestMagnitude = magnitude;
      }
    }
    if (entering == kNoTVar) {
      build_conflict_from_row(row, lowerViolated);
      interrupted_dirty_ = false;
      return false;
    }
    pivot_and_update(rowIdx, entering,
                     lowerViolated ? st.lower.value : st.upper.value);
    ++pivotsThisCheck;
  }
}

void Simplex::propagate_implied(std::vector<ImpliedBound>& out) {
  // Only a feasibility-checked bound set may propagate: while
  // maybe_infeasible_ is set (pending, conflicting, or interrupted check)
  // the pending work simply stays queued for the next drain.
  if (!options_.derive_bounds || maybe_infeasible_) return;
  if (fresh_bounds_.empty() && dirty_rows_.empty()) return;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->tprop_us);
  for (const auto& [v, isUpper] : fresh_bounds_) {
    if (!interesting_[static_cast<std::size_t>(v)]) continue;
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    // Republish the variable's current bound on that side (the recorded
    // assertion may have been retracted or superseded since).
    const Bound& b = isUpper ? st.upper : st.lower;
    if (!b.active || !b.reason.valid()) continue;
    out.push_back({v, isUpper, b.value, {b.reason}});
  }
  fresh_bounds_.clear();
  for (std::int32_t r : dirty_rows_) {
    row_dirty_[static_cast<std::size_t>(r)] = false;
    if (!interesting_[static_cast<std::size_t>(
            rows_[static_cast<std::size_t>(r)].owner)]) {
      continue;
    }
    derive_row_bound(r, true, out);
    derive_row_bound(r, false, out);
  }
  dirty_rows_.clear();
}

void Simplex::derive_row_bound(std::int32_t rowIdx, bool upper,
                               std::vector<ImpliedBound>& out) {
  const Row& row = rows_[static_cast<std::size_t>(rowIdx)];
  DeltaRational implied;
  for (const auto& [v, c] : row.expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    // An upper bound on the owner needs each positive column at its upper
    // bound and each negative column at its lower (mirrored for a lower
    // bound on the owner); one unbounded column kills the derivation.
    const Bound& b = (upper != c.is_negative()) ? st.upper : st.lower;
    if (!b.active) return;
    implied.add_mul(b.value, c);
  }
  const VarState& owner = vars_[static_cast<std::size_t>(row.owner)];
  const Bound& own = upper ? owner.upper : owner.lower;
  // An asserted bound at least as tight already implies everything this
  // derivation could.
  if (own.active && (upper ? own.value <= implied : own.value >= implied)) {
    return;
  }
  ImpliedBound ib;
  ib.var = row.owner;
  ib.is_upper = upper;
  ib.bound = std::move(implied);
  ib.premises.reserve(row.expr.terms().size());
  for (const auto& [v, c] : row.expr.terms()) {
    const VarState& st = vars_[static_cast<std::size_t>(v)];
    const Bound& b = (upper != c.is_negative()) ? st.upper : st.lower;
    if (b.reason.valid()) ib.premises.push_back(b.reason);
  }
  out.push_back(std::move(ib));
}

void Simplex::compute_delta() {
  // Choose a concrete positive delta small enough that replacing the
  // symbolic delta keeps every bound satisfied: for each pair
  // (bound, beta) with bound.real < beta.real but bound.delta > beta.delta
  // (or the symmetric case), delta < (beta.real - bound.real) /
  // (bound.delta - beta.delta).
  Rational delta(1);
  auto tighten = [&](const DeltaRational& lo, const DeltaRational& hi) {
    // Constraint lo <= hi must survive delta instantiation.
    if (lo.real() < hi.real() && lo.delta() > hi.delta()) {
      Rational cand = (hi.real() - lo.real()) / (lo.delta() - hi.delta());
      if (cand < delta) delta = cand;
    }
  };
  for (const VarState& st : vars_) {
    if (st.lower.active) tighten(st.lower.value, st.beta);
    if (st.upper.active) tighten(st.beta, st.upper.value);
  }
  // Halve once so strict constraints hold strictly even at equality of the
  // limiting ratio.
  concrete_delta_ = delta * Rational(1, 2);
}

Rational Simplex::model_value(TVar v) {
  // An interrupted check() left the betas mid-repair; consuming them as a
  // model would silently return junk. Callers must re-run check() to
  // completion first (a wrong answer is worse than a crash).
  PSSE_ASSERT(!interrupted_dirty_);
  if (!concrete_delta_.has_value()) compute_delta();
  const VarState& st = vars_[static_cast<std::size_t>(v)];
  return st.beta.real() + st.beta.delta() * *concrete_delta_;
}

std::size_t Simplex::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const VarState& st : vars_) {
    bytes += sizeof(VarState);
    bytes += st.beta.real().footprint_bytes() +
             st.beta.delta().footprint_bytes();
    bytes += st.lower.value.real().footprint_bytes() +
             st.upper.value.real().footprint_bytes();
  }
  for (const Row& row : rows_) {
    bytes += sizeof(Row);
    for (const auto& [v, c] : row.expr.terms()) {
      bytes += sizeof(std::pair<TVar, Rational>) + c.footprint_bytes();
    }
  }
  for (const auto& col : cols_) {
    bytes += col.capacity() * sizeof(std::int32_t);  // sorted vector, no hash overhead
  }
  bytes += trail_.capacity() * sizeof(TrailEntry);
  bytes += violated_.capacity() * sizeof(TVar);
  bytes += fresh_bounds_.capacity() * sizeof(std::pair<TVar, bool>);
  bytes += dirty_rows_.capacity() * sizeof(std::int32_t);
  return bytes;
}

}  // namespace psse::smt
