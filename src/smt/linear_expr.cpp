#include "smt/linear_expr.h"

#include <algorithm>

#include "smt/common.h"

namespace psse::smt {

LinExpr LinExpr::from_sorted_terms(
    std::vector<std::pair<TVar, Rational>> terms) {
  LinExpr out;
  out.terms_ = std::move(terms);
  for (std::size_t i = 0; i < out.terms_.size(); ++i) {
    PSSE_ASSERT(!out.terms_[i].second.is_zero());
    PSSE_ASSERT(i == 0 || out.terms_[i - 1].first < out.terms_[i].first);
  }
  return out;
}

void LinExpr::add_term(TVar v, const Rational& coeff) {
  if (coeff.is_zero()) return;
  auto it = std::lower_bound(
      terms_.begin(), terms_.end(), v,
      [](const auto& term, TVar key) { return term.first < key; });
  if (it != terms_.end() && it->first == v) {
    it->second += coeff;
    if (it->second.is_zero()) terms_.erase(it);
  } else {
    terms_.insert(it, {v, coeff});
  }
}

LinExpr& LinExpr::operator+=(const LinExpr& rhs) {
  // Merge two sorted term lists.
  std::vector<std::pair<TVar, Rational>> merged;
  merged.reserve(terms_.size() + rhs.terms_.size());
  std::size_t i = 0, j = 0;
  while (i < terms_.size() || j < rhs.terms_.size()) {
    if (j == rhs.terms_.size() ||
        (i < terms_.size() && terms_[i].first < rhs.terms_[j].first)) {
      merged.push_back(terms_[i++]);
    } else if (i == terms_.size() || rhs.terms_[j].first < terms_[i].first) {
      merged.push_back(rhs.terms_[j++]);
    } else {
      Rational sum = terms_[i].second + rhs.terms_[j].second;
      if (!sum.is_zero()) merged.emplace_back(terms_[i].first, std::move(sum));
      ++i;
      ++j;
    }
  }
  terms_ = std::move(merged);
  constant_ += rhs.constant_;
  return *this;
}

void LinExpr::add_scaled(const LinExpr& rhs, const Rational& k) {
  if (k.is_zero()) return;
  if (&rhs == this) {  // this += k*this
    *this *= k + Rational(1);
    return;
  }
  std::vector<std::pair<TVar, Rational>> merged;
  merged.reserve(terms_.size() + rhs.terms_.size());
  std::size_t i = 0, j = 0;
  while (i < terms_.size() || j < rhs.terms_.size()) {
    if (j == rhs.terms_.size() ||
        (i < terms_.size() && terms_[i].first < rhs.terms_[j].first)) {
      merged.push_back(std::move(terms_[i++]));
    } else if (i == terms_.size() || rhs.terms_[j].first < terms_[i].first) {
      // k and the coefficient are both nonzero, so the product is nonzero.
      merged.emplace_back(rhs.terms_[j].first, rhs.terms_[j].second * k);
      ++j;
    } else {
      Rational sum = std::move(terms_[i].second);
      sum.add_mul(rhs.terms_[j].second, k);
      if (!sum.is_zero()) merged.emplace_back(terms_[i].first, std::move(sum));
      ++i;
      ++j;
    }
  }
  terms_ = std::move(merged);
  constant_.add_mul(rhs.constant_, k);
}

void LinExpr::add_scaled(const LinExpr& rhs, const Rational& k,
                         std::vector<std::pair<TVar, Rational>>& scratch) {
  if (k.is_zero()) return;
  PSSE_ASSERT(&rhs != this);
  scratch.clear();
  scratch.reserve(terms_.size() + rhs.terms_.size());
  std::size_t i = 0, j = 0;
  while (i < terms_.size() || j < rhs.terms_.size()) {
    if (j == rhs.terms_.size() ||
        (i < terms_.size() && terms_[i].first < rhs.terms_[j].first)) {
      scratch.push_back(std::move(terms_[i++]));
    } else if (i == terms_.size() || rhs.terms_[j].first < terms_[i].first) {
      // k and the coefficient are both nonzero, so the product is nonzero.
      scratch.emplace_back(rhs.terms_[j].first, rhs.terms_[j].second * k);
      ++j;
    } else {
      Rational sum = std::move(terms_[i].second);
      sum.add_mul(rhs.terms_[j].second, k);
      if (!sum.is_zero()) scratch.emplace_back(terms_[i].first, std::move(sum));
      ++i;
      ++j;
    }
  }
  terms_.swap(scratch);  // old vector's capacity becomes next call's scratch
  constant_.add_mul(rhs.constant_, k);
}

LinExpr& LinExpr::operator-=(const LinExpr& rhs) {
  LinExpr neg = rhs;
  neg *= Rational(-1);
  return *this += neg;
}

LinExpr& LinExpr::operator*=(const Rational& k) {
  if (k.is_zero()) {
    terms_.clear();
    constant_ = Rational(0);
    return *this;
  }
  for (auto& [v, c] : terms_) c *= k;
  constant_ *= k;
  return *this;
}

LinExprNormalized LinExpr::normalized() const {
  PSSE_CHECK(!terms_.empty(), "LinExpr::normalized: constant expression");
  LinExprNormalized out;
  out.scale = terms_[0].second;
  out.offset = constant_;
  out.expr = *this;
  out.expr.constant_ = Rational(0);
  Rational inv = out.scale.inverse();
  for (auto& [v, c] : out.expr.terms_) c *= inv;
  return out;
}

std::string LinExpr::to_string() const {
  std::string out;
  for (const auto& [v, c] : terms_) {
    if (!out.empty()) out += " + ";
    out += c.to_string() + "*r" + std::to_string(v);
  }
  if (!constant_.is_zero() || out.empty()) {
    if (!out.empty()) out += " + ";
    out += constant_.to_string();
  }
  return out;
}

std::size_t LinExpr::hash() const {
  std::size_t h = std::hash<std::string>()(constant_.to_string());
  for (const auto& [v, c] : terms_) {
    h = h * 1000003u + static_cast<std::size_t>(v);
    h = h * 1000003u + std::hash<std::string>()(c.to_string());
  }
  return h;
}

}  // namespace psse::smt
