// The public SMT solver facade: DPLL(T) over the CDCL core and the simplex
// LRA theory.
//
// Usage:
//   Solver s;
//   TermRef p = s.mk_bool("p");
//   TVar x = s.mk_real("x");
//   LinExpr e = LinExpr::var(x);
//   s.assert_term(s.terms().mk_implies(p, s.terms().mk_ge(e, 3)));
//   ...
//   if (s.solve() == SolveResult::Sat) { s.bool_value(p); s.real_value(x); }
//
// Cardinality constraints (sum of booleans <= k) go through add_at_most /
// add_at_least, which reach the CDCL core's native counting propagator.
//
// push()/pop() checkpoint the assertion database; solve() also accepts
// assumption literals, which is how the countermeasure-synthesis loop
// evaluates candidate architectures without re-encoding the attack model.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/phase.h"
#include "smt/sat_solver.h"
#include "smt/simplex.h"
#include "smt/term.h"

namespace psse::smt {

/// Aggregate statistics across the boolean and theory parts. The first
/// block (sat, pivots, bound_flips, bigint_promotions) are monotone
/// lifetime counters; the rest are gauges describing the current problem
/// size. since() subtracts the counters and keeps the gauges.
struct SolverStats {
  SatStats sat;
  std::uint64_t pivots = 0;
  std::uint64_t bound_flips = 0;
  /// check() calls that exhausted the heuristic pivot budget and fell back
  /// to Bland's rule (see SimplexOptions::bland_fallback_after).
  std::uint64_t bland_fallbacks = 0;
  /// Inline->limb BigInt promotions on this solver's thread (genuine
  /// 64-bit overflows: departures from the allocation-free fast path).
  std::uint64_t bigint_promotions = 0;
  /// Float-filter accounting (see Simplex): pivots whose assignment updates
  /// ran in doubles only, exact recomputations forced by a verdict-bearing
  /// comparison, certifications where float and exact disagreed, and checks
  /// that exceeded the disagreement budget and finished on the exact path.
  std::uint64_t float_pivots = 0;
  std::uint64_t exact_recomputes = 0;
  std::uint64_t filter_disagreements = 0;
  std::uint64_t filter_fallbacks = 0;
  /// Eta-tableau accounting (see Simplex): pivots recorded as eta-file
  /// entries instead of eager row substitution, refactorisation-trigger
  /// firings, and the eta file's high-water length. eta_file_len_max is a
  /// monotone high-water mark, not a delta — since() keeps the current
  /// value, like a gauge.
  std::uint64_t eta_updates = 0;
  std::uint64_t refactorisations = 0;
  std::uint64_t eta_file_len_max = 0;
  std::size_t num_terms = 0;
  std::size_t num_atoms = 0;
  std::size_t num_bool_vars = 0;
  std::size_t num_real_vars = 0;
  std::size_t footprint_bytes = 0;
  /// Clause-arena accounting (gauges): bytes the arena has reserved vs
  /// bytes occupied by live clauses. The gap is fragmentation the next
  /// compacting GC reclaims (see SatStats::arena_gcs).
  std::size_t arena_capacity_bytes = 0;
  std::size_t arena_live_bytes = 0;

  /// Per-call effort against an earlier stats() snapshot of the same
  /// solver: counters become deltas, gauges keep their current values.
  [[nodiscard]] SolverStats since(const SolverStats& earlier) const {
    SolverStats d = *this;
    d.sat = sat.since(earlier.sat);
    d.pivots = pivots - earlier.pivots;
    d.bound_flips = bound_flips - earlier.bound_flips;
    d.bland_fallbacks = bland_fallbacks - earlier.bland_fallbacks;
    d.bigint_promotions = bigint_promotions - earlier.bigint_promotions;
    d.float_pivots = float_pivots - earlier.float_pivots;
    d.exact_recomputes = exact_recomputes - earlier.exact_recomputes;
    d.filter_disagreements =
        filter_disagreements - earlier.filter_disagreements;
    d.filter_fallbacks = filter_fallbacks - earlier.filter_fallbacks;
    d.eta_updates = eta_updates - earlier.eta_updates;
    d.refactorisations = refactorisations - earlier.refactorisations;
    return d;
  }
};

class Solver final : private TheoryClient {
 public:
  Solver();
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Term builder (owned by the solver).
  [[nodiscard]] TermManager& terms() { return terms_; }

  /// Reconfigures the CDCL search heuristics (portfolio diversification).
  void set_sat_options(const SatOptions& options) {
    sat_.set_options(options);
  }
  [[nodiscard]] const SatOptions& sat_options() const {
    return sat_.options();
  }

  /// Reconfigures the theory solver's pivot rule / propagation tracking.
  void set_simplex_options(const SimplexOptions& options) {
    simplex_.set_options(options);
  }
  [[nodiscard]] const SimplexOptions& simplex_options() const {
    return simplex_.options();
  }

  /// Fresh boolean variable as a term.
  TermRef mk_bool(std::string name = {}) {
    return terms_.mk_bool(std::move(name));
  }
  /// Fresh real variable.
  TVar mk_real(std::string name = {}) { return terms_.mk_real(std::move(name)); }

  /// Asserts a term (must hold in every model).
  void assert_term(TermRef t);
  /// Asserts sum(b in bools true) <= k. Terms must be boolean-sorted.
  void add_at_most(const std::vector<TermRef>& bools, std::uint32_t k);
  /// Asserts sum(b in bools true) >= k.
  void add_at_least(const std::vector<TermRef>& bools, std::uint32_t k);

  /// Checkpoints the assertion database.
  void push();
  /// Restores the last checkpoint.
  void pop();

  /// Decides satisfiability of the asserted formulas, optionally under
  /// assumptions (terms that must hold for this call only).
  SolveResult solve(const std::vector<TermRef>& assumptions = {},
                    const Budget& budget = {});

  /// Bounded BCP-only lookahead on a boolean term, for cube splitting:
  /// returns the number of literals boolean propagation forces when `t` is
  /// asserted on top of the level-0 state, or -1 when it conflicts (then
  /// ~t is implied at level 0 by the clause database alone). The theory is
  /// never consulted. See SatSolver::probe_literal for the caveats —
  /// probing perturbs saved phases, so probe on a dedicated clone.
  [[nodiscard]] int probe_term(TermRef t);

  /// Branching activity of the SAT literal a boolean term encodes to (see
  /// SatSolver::var_activity): after a bounded burn-in solve, the ranking
  /// over candidate terms identifies where the search effort concentrates.
  [[nodiscard]] double term_activity(TermRef t);

  /// Model access after solve() returned Sat.
  [[nodiscard]] bool bool_value(TermRef t) const;
  [[nodiscard]] Rational real_value(TVar v) const;

  [[nodiscard]] SolverStats stats() const;

  /// Per-call effort since an earlier stats() snapshot (see
  /// SolverStats::since). What a per-solve report should print for a
  /// reused or incremental solver.
  [[nodiscard]] SolverStats stats_since(const SolverStats& snapshot) const {
    return stats().since(snapshot);
  }

  /// Enables (or disables) per-phase wall-time accounting across the whole
  /// DPLL(T) stack: encode/propagate/simplex/theory (obs::PhaseTimes).
  /// Off by default; when off, the hot loops pay one pointer test per
  /// phase boundary and take no clock reads.
  void enable_phase_timing(bool on);
  [[nodiscard]] const obs::PhaseTimes& phase_times() const {
    return phase_times_;
  }
  void reset_phase_times() { phase_times_.reset(); }

 private:
  struct AtomInfo {
    TVar simplex_var = kNoTVar;
    bool is_lt = false;   // AtomLt vs AtomLe
    Rational bound;
  };

  struct SavePoint {
    std::size_t encoded_trail;
    std::size_t atom_trail;
  };

  // --- TheoryClient ---
  bool on_assert(Lit lit) override;
  bool check(bool final) override;
  std::vector<Lit> conflict_explanation() override;
  void propagate(std::vector<TheoryPropagation>& out) override;
  void pop_to_assertion_count(std::size_t n) override;
  bool is_theory_var(Var v) const override;
  void on_model() override;
  void set_interrupt(const Interrupt* interrupt) override {
    simplex_.set_interrupt(interrupt);
  }

  /// CNF encoding with structural caching: SAT literal equisatisfiable
  /// with term t.
  Lit encode(TermRef t);
  Lit encode_node(std::int32_t index);
  TVar simplex_var_for(const LinExpr& userExpr);

  TermManager terms_;
  SatSolver sat_;
  Simplex simplex_;

  // Term node index -> SAT literal for the positive node.
  std::unordered_map<std::int32_t, Lit> encoded_;
  std::vector<std::int32_t> encoded_trail_;  // insertion order, for pop()

  // SAT var -> atom mapping.
  std::vector<std::int32_t> sat_to_atom_;  // -1 when not a theory literal
  std::vector<AtomInfo> atoms_;
  std::vector<Var> atom_sat_vars_;  // insertion order, for pop()

  // Reverse mapping: simplex var -> atoms over it, so implied simplex
  // bounds translate back into SAT literals (theory propagation). Entries
  // are appended in atom order; pop() peels them with atoms_.
  std::vector<std::vector<std::int32_t>> var_atoms_;
  std::vector<Simplex::ImpliedBound> implied_;  // scratch for propagate()

  // User real var -> simplex var.
  std::vector<TVar> real_to_simplex_;

  // Simplex trail mark before each theory assertion (for retraction).
  std::vector<std::size_t> assert_marks_;

  std::vector<Rational> model_reals_;  // snapshot by simplex var id
  std::vector<SavePoint> save_points_;

  // Phase-time accounting (see enable_phase_timing). encode_depth_ guards
  // the encode timer against recursive re-entry (encode_node recurses
  // through children; only the outermost frame may account the span).
  obs::PhaseTimes phase_times_;
  bool phase_timing_ = false;
  int encode_depth_ = 0;
};

}  // namespace psse::smt
