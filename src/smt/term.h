// Hash-consed boolean/arithmetic term DAG — the SMT solver's input language.
//
// TermRef packs (node index, negation bit) like a literal, so negation is
// free and double negation cancels structurally. Node kinds are minimal:
// constants, boolean variables, And, Or, and arithmetic atoms of the two
// canonical shapes `expr <= c` and `expr < c`; all other connectives and
// comparisons are rewritten at construction:
//
//   implies(a,b) = or(~a, b)          iff(a,b) = and(or(~a,b), or(~b,a))
//   e >= c  =  ~(e < c)               e > c  =  ~(e <= c)
//   e == c  =  (e <= c) & (e >= c)    e != c =  (e < c) | (e > c)
//
// Atoms are normalised (leading coefficient 1) so proportional constraints
// share one simplex slack variable.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "smt/linear_expr.h"
#include "smt/rational.h"

namespace psse::smt {

class TermRef {
 public:
  TermRef() = default;
  [[nodiscard]] bool valid() const { return code_ >= 0; }
  [[nodiscard]] std::int32_t index() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] std::int32_t code() const { return code_; }
  [[nodiscard]] TermRef operator~() const { return from_code(code_ ^ 1); }
  static TermRef from_code(std::int32_t code) {
    TermRef t;
    t.code_ = code;
    return t;
  }
  static TermRef node(std::int32_t index, bool negated = false) {
    return from_code(2 * index + (negated ? 1 : 0));
  }
  friend bool operator==(TermRef a, TermRef b) { return a.code_ == b.code_; }
  friend bool operator<(TermRef a, TermRef b) { return a.code_ < b.code_; }

 private:
  std::int32_t code_ = -1;
};

enum class TermKind : std::uint8_t { True, BoolVar, And, Or, AtomLe, AtomLt };

struct TermNode {
  TermKind kind;
  std::vector<TermRef> children;  // And/Or
  std::string name;               // BoolVar
  LinExpr expr;                   // atoms: normalised variable part
  Rational bound;                 // atoms: right-hand side
};

class TermManager {
 public:
  TermManager();
  TermManager(const TermManager&) = delete;
  TermManager& operator=(const TermManager&) = delete;

  /// The constant true/false terms.
  [[nodiscard]] TermRef mk_true() const { return TermRef::node(0); }
  [[nodiscard]] TermRef mk_false() const { return ~mk_true(); }

  /// A fresh named boolean variable (names are for diagnostics only and
  /// need not be unique).
  TermRef mk_bool(std::string name);
  /// A fresh real (theory) variable.
  TVar mk_real(std::string name);
  [[nodiscard]] int num_reals() const { return next_real_; }
  [[nodiscard]] const std::string& real_name(TVar v) const {
    return real_names_[static_cast<std::size_t>(v)];
  }

  TermRef mk_not(TermRef t) { return ~t; }
  /// N-ary conjunction; flattens constants, returns mk_true() when empty.
  TermRef mk_and(std::vector<TermRef> children);
  /// N-ary disjunction; flattens constants, returns mk_false() when empty.
  TermRef mk_or(std::vector<TermRef> children);
  TermRef mk_implies(TermRef a, TermRef b) { return mk_or({~a, b}); }
  TermRef mk_iff(TermRef a, TermRef b) {
    return mk_and({mk_or({~a, b}), mk_or({~b, a})});
  }
  TermRef mk_ite(TermRef c, TermRef t, TermRef e) {
    return mk_and({mk_or({~c, t}), mk_or({c, e})});
  }

  /// Comparisons of a linear expression against zero-folded constants.
  /// A constant expression folds to mk_true()/mk_false().
  TermRef mk_le(const LinExpr& e, const Rational& c);
  TermRef mk_lt(const LinExpr& e, const Rational& c);
  TermRef mk_ge(const LinExpr& e, const Rational& c) { return ~mk_lt(e, c); }
  TermRef mk_gt(const LinExpr& e, const Rational& c) { return ~mk_le(e, c); }
  TermRef mk_eq(const LinExpr& e, const Rational& c) {
    return mk_and({mk_le(e, c), mk_ge(e, c)});
  }
  TermRef mk_ne(const LinExpr& e, const Rational& c) {
    return mk_or({mk_lt(e, c), mk_gt(e, c)});
  }

  [[nodiscard]] const TermNode& node(TermRef t) const {
    return nodes_[static_cast<std::size_t>(t.index())];
  }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Pretty-printer for diagnostics.
  [[nodiscard]] std::string to_string(TermRef t) const;

 private:
  TermRef intern(TermNode node, std::size_t hash);
  TermRef mk_nary(TermKind kind, std::vector<TermRef> children);
  TermRef mk_atom(TermKind kind, const LinExpr& e, const Rational& c);

  std::vector<TermNode> nodes_;
  std::unordered_map<std::size_t, std::vector<std::int32_t>> buckets_;
  std::vector<std::string> real_names_;
  TVar next_real_ = 0;
};

}  // namespace psse::smt
