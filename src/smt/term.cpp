#include "smt/term.h"

#include <algorithm>

#include "smt/common.h"

namespace psse::smt {

namespace {
std::size_t hash_combine(std::size_t a, std::size_t b) {
  return a * 1000003u + b + 0x9e3779b9u;
}

std::size_t node_hash(const TermNode& n) {
  std::size_t h = static_cast<std::size_t>(n.kind);
  for (TermRef c : n.children) {
    h = hash_combine(h, static_cast<std::size_t>(c.code()));
  }
  if (n.kind == TermKind::BoolVar) {
    // Boolean variables are never shared: each mk_bool call is fresh, so
    // hash by identity later (handled by the caller not interning them).
    h = hash_combine(h, 0xb001);
  }
  if (n.kind == TermKind::AtomLe || n.kind == TermKind::AtomLt) {
    h = hash_combine(h, n.expr.hash());
    h = hash_combine(h, std::hash<std::string>()(n.bound.to_string()));
  }
  return h;
}

bool node_equal(const TermNode& a, const TermNode& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case TermKind::True:
      return true;
    case TermKind::BoolVar:
      return false;  // fresh by construction
    case TermKind::And:
    case TermKind::Or:
      return a.children == b.children;
    case TermKind::AtomLe:
    case TermKind::AtomLt:
      return a.expr == b.expr && a.bound == b.bound;
  }
  return false;
}
}  // namespace

TermManager::TermManager() {
  // Node 0 is the constant `true`.
  nodes_.push_back(TermNode{TermKind::True, {}, {}, {}, {}});
}

TermRef TermManager::intern(TermNode node, std::size_t hash) {
  auto& bucket = buckets_[hash];
  for (std::int32_t idx : bucket) {
    if (node_equal(nodes_[static_cast<std::size_t>(idx)], node)) {
      return TermRef::node(idx);
    }
  }
  std::int32_t idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(std::move(node));
  bucket.push_back(idx);
  return TermRef::node(idx);
}

TermRef TermManager::mk_bool(std::string name) {
  std::int32_t idx = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(TermNode{TermKind::BoolVar, {}, std::move(name), {}, {}});
  return TermRef::node(idx);
}

TVar TermManager::mk_real(std::string name) {
  TVar v = next_real_++;
  real_names_.push_back(name.empty() ? "x" + std::to_string(v)
                                     : std::move(name));
  return v;
}

TermRef TermManager::mk_nary(TermKind kind, std::vector<TermRef> children) {
  const bool isAnd = kind == TermKind::And;
  const TermRef neutral = isAnd ? mk_true() : mk_false();
  const TermRef absorbing = ~neutral;
  // Flatten nested connectives of the same kind, drop neutral elements.
  std::vector<TermRef> flat;
  for (TermRef c : children) {
    PSSE_CHECK(c.valid(), "mk_and/mk_or: invalid term");
    if (c == neutral) continue;
    if (c == absorbing) return absorbing;
    const TermNode& n = node(c);
    if (!c.negated() && n.kind == kind) {
      flat.insert(flat.end(), n.children.begin(), n.children.end());
    } else {
      flat.push_back(c);
    }
  }
  std::sort(flat.begin(), flat.end());
  flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
  // x and ~x together absorb.
  for (std::size_t i = 0; i + 1 < flat.size(); ++i) {
    if (flat[i + 1] == ~flat[i]) return absorbing;
  }
  if (flat.empty()) return neutral;
  if (flat.size() == 1) return flat[0];
  TermNode n{kind, std::move(flat), {}, {}, {}};
  std::size_t h = node_hash(n);
  return intern(std::move(n), h);
}

TermRef TermManager::mk_and(std::vector<TermRef> children) {
  return mk_nary(TermKind::And, std::move(children));
}

TermRef TermManager::mk_or(std::vector<TermRef> children) {
  // or(args) = ~and(~args) would also work, but a first-class Or keeps
  // Tseitin clauses small and the printer readable.
  return mk_nary(TermKind::Or, std::move(children));
}

TermRef TermManager::mk_atom(TermKind kind, const LinExpr& e,
                             const Rational& c) {
  Rational rhs = c - e.constant();
  if (e.is_constant()) {
    bool truth = kind == TermKind::AtomLe ? Rational(0) <= rhs
                                          : Rational(0) < rhs;
    return truth ? mk_true() : mk_false();
  }
  LinExprNormalized norm = e.normalized();
  rhs /= norm.scale;
  if (norm.scale.is_negative()) {
    // Dividing by a negative flips the comparison:
    //   e <= c  ==  n >= rhs  ==  ~(n < rhs)
    //   e <  c  ==  n >  rhs  ==  ~(n <= rhs)
    TermKind flipped =
        kind == TermKind::AtomLe ? TermKind::AtomLt : TermKind::AtomLe;
    TermNode n{flipped, {}, {}, norm.expr, rhs};
    std::size_t h = node_hash(n);
    return ~intern(std::move(n), h);
  }
  TermNode n{kind, {}, {}, norm.expr, rhs};
  std::size_t h = node_hash(n);
  return intern(std::move(n), h);
}

TermRef TermManager::mk_le(const LinExpr& e, const Rational& c) {
  return mk_atom(TermKind::AtomLe, e, c);
}

TermRef TermManager::mk_lt(const LinExpr& e, const Rational& c) {
  return mk_atom(TermKind::AtomLt, e, c);
}

std::size_t TermManager::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const TermNode& n : nodes_) {
    bytes += sizeof(TermNode);
    bytes += n.children.capacity() * sizeof(TermRef);
    bytes += n.name.capacity();
    for (const auto& [v, coeff] : n.expr.terms()) {
      bytes += sizeof(std::pair<TVar, Rational>) + coeff.footprint_bytes();
    }
  }
  for (const auto& [h, bucket] : buckets_) {
    bytes += sizeof(std::size_t) + bucket.capacity() * sizeof(std::int32_t);
  }
  return bytes;
}

std::string TermManager::to_string(TermRef t) const {
  if (!t.valid()) return "<invalid>";
  std::string body;
  const TermNode& n = node(t);
  switch (n.kind) {
    case TermKind::True:
      body = "true";
      break;
    case TermKind::BoolVar:
      body = n.name.empty() ? "b" + std::to_string(t.index()) : n.name;
      break;
    case TermKind::And:
    case TermKind::Or: {
      body = n.kind == TermKind::And ? "(and" : "(or";
      for (TermRef c : n.children) body += " " + to_string(c);
      body += ")";
      break;
    }
    case TermKind::AtomLe:
    case TermKind::AtomLt: {
      std::string op = n.kind == TermKind::AtomLe ? " <= " : " < ";
      std::string lhs;
      for (const auto& [v, coeff] : n.expr.terms()) {
        if (!lhs.empty()) lhs += " + ";
        std::string nm = v < static_cast<TVar>(real_names_.size())
                             ? real_names_[static_cast<std::size_t>(v)]
                             : "x" + std::to_string(v);
        lhs += coeff.is_zero() || coeff == Rational(1)
                   ? nm
                   : coeff.to_string() + "*" + nm;
      }
      body = "(" + lhs + op + n.bound.to_string() + ")";
      break;
    }
  }
  return t.negated() ? "(not " + body + ")" : body;
}

}  // namespace psse::smt
