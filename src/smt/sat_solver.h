// CDCL SAT solver with native cardinality constraints and a DPLL(T) theory
// hook.
//
// Features: two-watched-literal propagation, first-UIP conflict analysis
// with clause minimisation, exponential VSIDS activities, phase saving,
// Luby restarts, LBD-based learned-clause reduction, solving under
// assumptions, push/pop of the constraint database, and counter-based
// AtMost-K constraints with lazily reconstructed reasons (no exponential
// CNF encodings).
//
// The theory client (the simplex LRA solver) is attached via TheoryClient;
// the SAT core notifies it of assignments to theory-mapped literals and asks
// it for consistency at every propagation fixpoint and at full assignments.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "obs/phase.h"
#include "smt/budget.h"
#include "smt/literal.h"

namespace psse::smt {

/// Result of a solve call.
enum class SolveResult { Sat, Unsat, Unknown };

/// Lower-case verdict name for machine-readable reports and traces.
[[nodiscard]] constexpr const char* to_cstring(SolveResult r) {
  switch (r) {
    case SolveResult::Sat:
      return "sat";
    case SolveResult::Unsat:
      return "unsat";
    default:
      return "unknown";
  }
}

/// A literal the theory found implied by the current assignment: `lit`
/// holds whenever every literal in `premises` holds (all premises must be
/// currently true and assigned earlier than `lit` will be). The core
/// enqueues `lit` with a lazily reconstructed reason clause
/// (lit \/ ~premise_1 \/ ... \/ ~premise_n).
struct TheoryPropagation {
  Lit lit;
  std::vector<Lit> premises;
};

/// Interface the SAT core uses to drive an attached theory solver.
class TheoryClient {
 public:
  virtual ~TheoryClient() = default;

  /// A theory-mapped literal became true. Must not throw. Returns false if
  /// the theory detects an immediate bound conflict; the core will then call
  /// conflict_explanation().
  virtual bool on_assert(Lit lit) = 0;

  /// Called at each propagation fixpoint (and at a full assignment, with
  /// final==true). Returns true if the current set of asserted bounds is
  /// consistent.
  virtual bool check(bool final) = 0;

  /// After on_assert or check returned false: a conflict clause (the
  /// negations of the inconsistent bound literals). Every literal in the
  /// returned clause must currently be false.
  virtual std::vector<Lit> conflict_explanation() = 0;

  /// After a consistent non-final check(): literals the theory's current
  /// bound set forces, each with its premise literals. The default theory
  /// propagates nothing. Implied literals already true are skipped by the
  /// core; already-false ones become theory conflicts.
  virtual void propagate(std::vector<TheoryPropagation>& /*out*/) {}

  /// The boolean assignment is complete and the theory is consistent; the
  /// client may snapshot theory model values before the core backtracks.
  virtual void on_model() {}

  /// The trail shrank: retract every bound asserted after `n` theory
  /// assertions (the count of on_assert calls that are still valid).
  virtual void pop_to_assertion_count(std::size_t n) = 0;

  /// True if this boolean variable is mapped to a theory atom.
  virtual bool is_theory_var(Var v) const = 0;

  /// Shares the solve call's abort state with the theory, so deadline and
  /// stop-token polling reach long-running theory procedures (the simplex
  /// pivot loop). Called with a valid pointer at the start of each solve
  /// and with nullptr when the solve returns; the pointee lives exactly
  /// that long.
  virtual void set_interrupt(const Interrupt* /*interrupt*/) {}
};

/// Aggregate statistics, exposed for the evaluation harness. Every field
/// is a monotone lifetime counter; per-solve numbers come from snapshot/
/// delta via since() — see SatSolver::stats_since.
struct SatStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t theory_checks = 0;
  std::uint64_t theory_conflicts = 0;
  std::uint64_t theory_propagations = 0;

  /// Field-wise difference against an earlier snapshot of the same solver:
  /// the cost of exactly the work done between the two reads.
  [[nodiscard]] SatStats since(const SatStats& earlier) const {
    SatStats d;
    d.decisions = decisions - earlier.decisions;
    d.propagations = propagations - earlier.propagations;
    d.conflicts = conflicts - earlier.conflicts;
    d.restarts = restarts - earlier.restarts;
    d.learned_clauses = learned_clauses - earlier.learned_clauses;
    d.deleted_clauses = deleted_clauses - earlier.deleted_clauses;
    d.theory_checks = theory_checks - earlier.theory_checks;
    d.theory_conflicts = theory_conflicts - earlier.theory_conflicts;
    d.theory_propagations = theory_propagations - earlier.theory_propagations;
    return d;
  }
};

/// Search-heuristic configuration. The defaults reproduce the solver's
/// historical behaviour; portfolio solving diversifies these knobs so that
/// racing members explore the search space differently while every
/// configuration stays sound and complete (same SAT/UNSAT answer, possibly
/// different models and runtimes).
struct SatOptions {
  /// Initial saved phase for branching (false = branch negative first).
  bool default_phase = false;
  /// Luby restart unit: restart after base * luby(k) conflicts.
  std::uint32_t restart_base = 100;
  /// VSIDS activity decay factor in (0, 1).
  double var_decay = 0.95;
  /// Probability (in 1/1024 units) of branching on a random unassigned
  /// variable instead of the VSIDS top. 0 disables random branching.
  std::uint32_t random_branch_permil = 0;
  /// Seed for the deterministic branching RNG.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Consult the theory at every k-th propagation fixpoint only (1 =
  /// eager, the default). Larger values trade earlier theory conflicts for
  /// less simplex work; soundness is unaffected because the full check at
  /// complete assignments always runs.
  std::uint32_t theory_check_period = 1;
  /// Ask the theory for implied literals after each consistent non-final
  /// check and enqueue them with theory reasons (turns would-be decisions
  /// into propagations). Off = the pre-propagation search behaviour, for
  /// differential testing and ablation.
  bool theory_propagation = true;
};

class SatSolver {
 public:
  SatSolver() = default;
  SatSolver(const SatSolver&) = delete;
  SatSolver& operator=(const SatSolver&) = delete;

  /// Creates a fresh boolean variable and returns its index.
  Var new_var();
  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (disjunction). An empty clause makes the instance
  /// trivially UNSAT. Must be called at decision level 0.
  void add_clause(std::vector<Lit> lits);

  /// Adds sum(lits true) <= bound. bound >= lits.size() is a no-op;
  /// bound == 0 forces all literals false.
  void add_at_most(std::vector<Lit> lits, std::uint32_t bound);
  /// Adds sum(lits true) >= bound (encoded as at-most on negations).
  void add_at_least(std::vector<Lit> lits, std::uint32_t bound);

  /// Attaches the theory client. Must be done before solving; the pointer
  /// is unowned and must outlive the solver's use.
  void set_theory(TheoryClient* theory) { theory_ = theory; }

  /// Reconfigures the search heuristics (portfolio diversification). May be
  /// called between solves; resets every unassigned variable's saved phase
  /// to the new default so the next descent starts from the configured
  /// polarity.
  void set_options(const SatOptions& options);
  [[nodiscard]] const SatOptions& options() const { return options_; }

  /// Saves the sizes of the constraint database.
  void push();
  /// Restores the previous save point: constraints and variables created
  /// since the matching push are discarded, as are all learned clauses.
  void pop();

  /// Decides satisfiability under the given assumption literals.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    const Budget& budget = {});

  /// Model value of a variable after solve() returned Sat.
  [[nodiscard]] bool model_value(Var v) const;

  /// Current (possibly partial) assignment of a literal mid-solve. Theory
  /// clients use this to skip propagating literals that are already
  /// assigned.
  [[nodiscard]] LBool value_of(Lit l) const { return value(l); }

  [[nodiscard]] const SatStats& stats() const { return stats_; }

  /// Per-call effort: what this solver spent since `snapshot` (a prior
  /// stats() copy). Reused and incremental solvers accumulate counters for
  /// their lifetime, so reporting stats() per solve inflates every call
  /// after the first — report stats_since(snapshot) instead.
  [[nodiscard]] SatStats stats_since(const SatStats& snapshot) const {
    return stats_.since(snapshot);
  }

  /// Attaches (or detaches, with nullptr) per-phase wall-time accounting
  /// for the propagate and theory-check phases. Off by default; when off
  /// the cost is one pointer test per phase boundary. The pointee must
  /// outlive its attachment.
  void set_phase_times(obs::PhaseTimes* phases) { phases_ = phases; }

  /// Approximate heap footprint of the clause/watch/card databases in
  /// bytes (Table IV accounting).
  [[nodiscard]] std::size_t footprint_bytes() const;

 private:
  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    std::uint32_t lbd = 0;
    bool learned = false;
    bool deleted = false;
  };

  struct Card {
    std::vector<Lit> lits;  // at most `bound` of these may be true
    std::uint32_t bound = 0;
    std::uint32_t num_true = 0;
    bool deleted = false;
  };

  // Why a variable was assigned. Theory reasons index the theory_reasons_
  // premise log; the clause is reconstructed lazily in reason_clause, like
  // cardinality reasons.
  struct Reason {
    enum class Kind : std::uint8_t { None, Clause, Card, Theory } kind =
        Kind::None;
    std::int32_t index = -1;
    static Reason none() { return {}; }
    static Reason clause(std::int32_t id) {
      return {Kind::Clause, id};
    }
    static Reason card(std::int32_t id) { return {Kind::Card, id}; }
    static Reason theory(std::int32_t id) { return {Kind::Theory, id}; }
  };

  struct VarInfo {
    Reason reason;
    std::int32_t level = 0;
    std::int32_t trail_pos = -1;
  };

  struct Watcher {
    std::int32_t clause_id;
    Lit blocker;
  };

  struct SavePoint {
    int num_vars;
    std::size_t num_pristine_clauses;
    std::size_t num_pristine_cards;
  };

  struct PristineCard {
    std::vector<Lit> lits;
    std::uint32_t bound;
  };

  [[nodiscard]] LBool value(Lit l) const {
    LBool v = assigns_[l.var()];
    return l.negated() ? negate(v) : v;
  }
  [[nodiscard]] LBool value(Var v) const { return assigns_[v]; }
  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim_.size());
  }

  void attach_clause(std::int32_t id);
  void attach_card(std::int32_t id);
  bool enqueue(Lit l, Reason reason);
  // Returns conflicting clause id, or -1 and fills card/theory conflict
  // state. kNoConflict when propagation reached a fixpoint.
  std::int32_t propagate();
  void cancel_until(int level);
  void analyze(std::int32_t confl_clause,
               const std::vector<Lit>& confl_lits_in,
               std::vector<Lit>& out_learnt, int& out_btlevel);
  // The clause (implied lit first) justifying an assignment.
  std::vector<Lit> reason_clause(Var v);
  void var_bump(Var v);
  void var_decay();
  void clause_bump(Clause& c);
  Lit pick_branch();
  std::uint64_t next_rand();
  void reduce_db();
  void rebuild_order_heap();
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  bool theory_check(bool final, std::vector<Lit>& confl);
  void remove_learned_clauses();

  // Heap-backed VSIDS order (simple binary heap keyed by activity).
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }

  TheoryClient* theory_ = nullptr;

  std::deque<Clause> clauses_;
  std::deque<Card> cards_;
  std::vector<std::vector<Watcher>> watches_;     // indexed by lit code
  std::vector<std::vector<std::int32_t>> card_occs_;  // lit code -> card ids

  std::vector<LBool> assigns_;
  std::vector<VarInfo> var_info_;
  std::vector<bool> phase_;       // saved phases
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::size_t theory_qhead_ = 0;       // trail prefix already sent to theory
  std::size_t theory_assert_count_ = 0;

  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_index_;

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  SatOptions options_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  // Abort state of the in-flight solve; null outside solve().
  const Interrupt* interrupt_ = nullptr;
  // Phase-time accumulator; null = accounting off (see set_phase_times).
  obs::PhaseTimes* phases_ = nullptr;

  bool ok_ = true;  // false once UNSAT at level 0
  std::vector<bool> model_;
  std::vector<std::int32_t> learned_ids_;
  std::vector<SavePoint> save_points_;

  // Constraints exactly as the user gave them, so pop() can rebuild the
  // database without trusting level-0 simplifications that may have used
  // popped facts.
  std::vector<std::vector<Lit>> pristine_clauses_;
  std::vector<PristineCard> pristine_cards_;
  bool replaying_ = false;

  // Conflict state populated by propagate() for non-clause conflicts.
  std::vector<Lit> pending_conflict_;

  // Premise sets of theory-propagated literals, indexed by
  // Reason::Kind::Theory reasons. Entries are appended in enqueue (= trail)
  // order, so cancel_until can truncate at the lowest retracted index;
  // pop() clears the log with the trail.
  std::vector<std::vector<Lit>> theory_reasons_;
  std::vector<TheoryPropagation> theory_props_;  // scratch for theory_check

  // Temporaries for analyze().
  std::vector<bool> seen_;

  SatStats stats_;
};

}  // namespace psse::smt
