// CDCL SAT solver with native cardinality constraints and a DPLL(T) theory
// hook.
//
// Features: two-watched-literal propagation over an arena-packed clause
// database, first-UIP conflict analysis with clause minimisation,
// exponential VSIDS activities, phase saving, Luby restarts, LBD-based
// learned-clause reduction with compacting garbage collection, solving
// under assumptions, push/pop of the constraint database with learnt-clause
// retention, learned-clause sharing across sibling solvers, and
// counter-based AtMost-K constraints with lazily reconstructed reasons (no
// exponential CNF encodings).
//
// Clause storage (MiniSat/CaDiCaL-style arena): all clauses live in one
// contiguous uint32 buffer. A clause is identified by a 32-bit word offset
// (ClauseRef) and laid out as three header words — flags+size, LBD+push-
// depth, activity — followed by its literals inline, so propagation walks
// a flat array instead of chasing per-clause heap nodes. Watchers carry a
// blocker literal, so most watch-list visits never touch the clause at
// all. reduce_db() marks victims and, once a quarter of the arena is dead,
// compacts it in watch-list order, rewriting watcher and reason references
// through forwarding headers.
//
// The theory client (the simplex LRA solver) is attached via TheoryClient;
// the SAT core notifies it of assignments to theory-mapped literals and asks
// it for consistency at every propagation fixpoint and at full assignments.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "obs/phase.h"
#include "smt/budget.h"
#include "smt/clause_exchange.h"
#include "smt/literal.h"

namespace psse::smt {

/// Result of a solve call.
enum class SolveResult { Sat, Unsat, Unknown };

/// Lower-case verdict name for machine-readable reports and traces.
[[nodiscard]] constexpr const char* to_cstring(SolveResult r) {
  switch (r) {
    case SolveResult::Sat:
      return "sat";
    case SolveResult::Unsat:
      return "unsat";
    default:
      return "unknown";
  }
}

/// Word offset of a clause in the arena (see file comment).
using ClauseRef = std::uint32_t;
inline constexpr ClauseRef kClauseRefUndef = 0xFFFFFFFFu;

/// A literal the theory found implied by the current assignment: `lit`
/// holds whenever every literal in `premises` holds (all premises must be
/// currently true and assigned earlier than `lit` will be). The core
/// enqueues `lit` with a lazily reconstructed reason clause
/// (lit \/ ~premise_1 \/ ... \/ ~premise_n).
struct TheoryPropagation {
  Lit lit;
  std::vector<Lit> premises;
};

/// Interface the SAT core uses to drive an attached theory solver.
class TheoryClient {
 public:
  virtual ~TheoryClient() = default;

  /// A theory-mapped literal became true. Must not throw. Returns false if
  /// the theory detects an immediate bound conflict; the core will then call
  /// conflict_explanation().
  virtual bool on_assert(Lit lit) = 0;

  /// Called at each propagation fixpoint (and at a full assignment, with
  /// final==true). Returns true if the current set of asserted bounds is
  /// consistent.
  virtual bool check(bool final) = 0;

  /// After on_assert or check returned false: a conflict clause (the
  /// negations of the inconsistent bound literals). Every literal in the
  /// returned clause must currently be false.
  virtual std::vector<Lit> conflict_explanation() = 0;

  /// After a consistent non-final check(): literals the theory's current
  /// bound set forces, each with its premise literals. The default theory
  /// propagates nothing. Implied literals already true are skipped by the
  /// core; already-false ones become theory conflicts.
  virtual void propagate(std::vector<TheoryPropagation>& /*out*/) {}

  /// The boolean assignment is complete and the theory is consistent; the
  /// client may snapshot theory model values before the core backtracks.
  virtual void on_model() {}

  /// The trail shrank: retract every bound asserted after `n` theory
  /// assertions (the count of on_assert calls that are still valid).
  virtual void pop_to_assertion_count(std::size_t n) = 0;

  /// True if this boolean variable is mapped to a theory atom.
  virtual bool is_theory_var(Var v) const = 0;

  /// Shares the solve call's abort state with the theory, so deadline and
  /// stop-token polling reach long-running theory procedures (the simplex
  /// pivot loop). Called with a valid pointer at the start of each solve
  /// and with nullptr when the solve returns; the pointee lives exactly
  /// that long.
  virtual void set_interrupt(const Interrupt* /*interrupt*/) {}
};

/// Aggregate statistics, exposed for the evaluation harness. Every field
/// is a monotone lifetime counter; per-solve numbers come from snapshot/
/// delta via since() — see SatSolver::stats_since.
struct SatStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t theory_checks = 0;
  std::uint64_t theory_conflicts = 0;
  std::uint64_t theory_propagations = 0;
  /// Compacting arena collections (see reduce_db).
  std::uint64_t arena_gcs = 0;
  /// Learnt clauses published to the attached ClauseExchange.
  std::uint64_t clauses_exported = 0;
  /// Sibling clauses received from the exchange (before simplification).
  std::uint64_t clauses_imported = 0;
  /// Imported clauses actually installed (attached or enqueued as level-0
  /// facts) after level-0 simplification; the rest were already satisfied
  /// or vacuous.
  std::uint64_t clauses_accepted = 0;
  /// Conflicts where the engine took a bounded one-level chronological
  /// backtrack instead of the full backjump (EngineConfig::cb_limit).
  std::uint64_t chrono_backtracks = 0;
  /// Decisions picked by the LRB heuristic (EngineConfig::branching ==
  /// kLrb); always 0 under the default EVSIDS branching.
  std::uint64_t lrb_selections = 0;

  /// Field-wise difference against an earlier snapshot of the same solver:
  /// the cost of exactly the work done between the two reads.
  [[nodiscard]] SatStats since(const SatStats& earlier) const {
    SatStats d;
    d.decisions = decisions - earlier.decisions;
    d.propagations = propagations - earlier.propagations;
    d.conflicts = conflicts - earlier.conflicts;
    d.restarts = restarts - earlier.restarts;
    d.learned_clauses = learned_clauses - earlier.learned_clauses;
    d.deleted_clauses = deleted_clauses - earlier.deleted_clauses;
    d.theory_checks = theory_checks - earlier.theory_checks;
    d.theory_conflicts = theory_conflicts - earlier.theory_conflicts;
    d.theory_propagations = theory_propagations - earlier.theory_propagations;
    d.arena_gcs = arena_gcs - earlier.arena_gcs;
    d.clauses_exported = clauses_exported - earlier.clauses_exported;
    d.clauses_imported = clauses_imported - earlier.clauses_imported;
    d.clauses_accepted = clauses_accepted - earlier.clauses_accepted;
    d.chrono_backtracks = chrono_backtracks - earlier.chrono_backtracks;
    d.lrb_selections = lrb_selections - earlier.lrb_selections;
    return d;
  }
};

/// Decision-variable selection policy (see EngineConfig).
enum class BranchingHeuristic : std::uint8_t {
  /// Exponential VSIDS over a binary activity heap — the historical
  /// default; every existing configuration reproduces it exactly.
  kEvsids,
  /// Learning-rate branching (MapleSAT): a variable's score is an EMA of
  /// its conflict-participation rate over its assignment intervals.
  /// Reuses the same activity array and heap; scores are updated when the
  /// variable is unassigned.
  kLrb,
};

/// Restart scheduling policy (see EngineConfig).
enum class RestartSchedule : std::uint8_t {
  /// restart_base * luby(k) conflicts between restarts (the default).
  kLuby,
  /// Geometric: the interval starts at restart_base and grows by
  /// geometric_factor at each restart.
  kGeometric,
  /// Glucose-style: restart when the fast LBD EMA exceeds ema_margin
  /// times the slow one (the recent learnt clauses are getting worse),
  /// with restart_base conflicts as the minimum gap.
  kGlucoseEma,
};

/// The search-policy axes of the CDCL engine, factored out so portfolio
/// members can differ *structurally* (branching heuristic, backtracking
/// style, restart schedule) rather than only by seed and phase. The
/// default EngineConfig is bit-identical to the historical search — the
/// differential fuzz suite enforces count-for-count agreement with the
/// reference solver — and every non-default axis stays sound and complete
/// (same verdicts, different trajectories).
struct EngineConfig {
  BranchingHeuristic branching = BranchingHeuristic::kEvsids;
  RestartSchedule restart = RestartSchedule::kLuby;
  /// Chronological backtracking (Nadel & Ryvchin style, weak variant):
  /// when a conflict's backjump would discard more than cb_limit decision
  /// levels, backtrack a single level instead — the learnt clause is still
  /// asserting there because every non-asserting literal sits at or below
  /// the computed backjump level. 0 (the default) always backjumps fully.
  std::uint32_t cb_limit = 0;
  /// kGeometric: per-restart interval growth factor (> 1).
  double geometric_factor = 1.1;
  /// kGlucoseEma: restart when fast EMA > ema_margin * slow EMA (> 1).
  double ema_margin = 1.15;
  /// kLrb: per-conflict step by which the EMA weight alpha decays from
  /// 0.4 towards its 0.06 floor.
  double lrb_alpha_decay = 1e-5;
};

/// Search-heuristic configuration. The defaults reproduce the solver's
/// historical behaviour; portfolio solving diversifies these knobs so that
/// racing members explore the search space differently while every
/// configuration stays sound and complete (same SAT/UNSAT answer, possibly
/// different models and runtimes).
struct SatOptions {
  /// Initial saved phase for branching (false = branch negative first).
  bool default_phase = false;
  /// Luby restart unit: restart after base * luby(k) conflicts.
  std::uint32_t restart_base = 100;
  /// VSIDS activity decay factor in (0, 1).
  double var_decay = 0.95;
  /// Probability (in 1/1024 units) of branching on a random unassigned
  /// variable instead of the VSIDS top. 0 disables random branching.
  std::uint32_t random_branch_permil = 0;
  /// Seed for the deterministic branching RNG.
  std::uint64_t seed = 0x9e3779b97f4a7c15ull;
  /// Consult the theory at every k-th propagation fixpoint only (1 =
  /// eager, the default). Larger values trade earlier theory conflicts for
  /// less simplex work; soundness is unaffected because the full check at
  /// complete assignments always runs.
  std::uint32_t theory_check_period = 1;
  /// Ask the theory for implied literals after each consistent non-final
  /// check and enqueue them with theory reasons (turns would-be decisions
  /// into propagations). Off = the pre-propagation search behaviour, for
  /// differential testing and ablation.
  bool theory_propagation = true;
  /// Learned-DB reduction trigger: reduce once the live learnt count
  /// exceeds base + 2/3 of the live problem-clause count. Small values
  /// force frequent reduction + arena GC (stress testing); the default
  /// reproduces the historical threshold.
  std::uint32_t reduce_db_base = 8000;
  /// Learned-clause sharing endpoint; nullptr (the default) disables
  /// sharing entirely and keeps the serial search bit-identical. The
  /// pointee must outlive every solve call made with it attached. See
  /// smt/clause_exchange.h for the soundness contract.
  ClauseExchange* exchange = nullptr;
  /// Export filters: only learnt clauses at most this long and with LBD at
  /// most this are published to the exchange.
  std::uint32_t share_max_size = 30;
  std::uint32_t share_max_lbd = 4;
  /// Structural search-policy selection (branching / backtracking /
  /// restarts). The default EngineConfig keeps the search bit-identical to
  /// the historical solver.
  EngineConfig engine;
};

class SatSolver {
 public:
  SatSolver() = default;
  SatSolver(const SatSolver&) = delete;
  SatSolver& operator=(const SatSolver&) = delete;

  /// Creates a fresh boolean variable and returns its index.
  Var new_var();
  [[nodiscard]] int num_vars() const { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (disjunction). An empty clause makes the instance
  /// trivially UNSAT. Must be called at decision level 0.
  void add_clause(std::vector<Lit> lits);

  /// Adds sum(lits true) <= bound. bound >= lits.size() is a no-op;
  /// bound == 0 forces all literals false.
  void add_at_most(std::vector<Lit> lits, std::uint32_t bound);
  /// Adds sum(lits true) >= bound (encoded as at-most on negations).
  void add_at_least(std::vector<Lit> lits, std::uint32_t bound);

  /// Attaches the theory client. Must be done before solving; the pointer
  /// is unowned and must outlive the solver's use.
  void set_theory(TheoryClient* theory) { theory_ = theory; }

  /// Reconfigures the search heuristics (portfolio diversification). May be
  /// called between solves; resets every unassigned variable's saved phase
  /// to the new default so the next descent starts from the configured
  /// polarity.
  void set_options(const SatOptions& options);
  [[nodiscard]] const SatOptions& options() const { return options_; }

  /// Saves the sizes of the constraint database.
  void push();
  /// Restores the previous save point: constraints and variables created
  /// since the matching push are discarded. Learnt clauses derived at
  /// surviving depths — whose derivations used only constraints that
  /// survive the pop — are retained, so incremental callers do not
  /// re-learn after every checkpoint.
  void pop();

  /// Decides satisfiability under the given assumption literals.
  SolveResult solve(const std::vector<Lit>& assumptions = {},
                    const Budget& budget = {});

  /// Bounded lookahead probe for cube splitting: asserts `l` at a fresh
  /// decision level on top of the level-0 state, runs boolean propagation
  /// only (no theory consultation), and backtracks. Returns the number of
  /// *additional* literals BCP forced (0 when `l` was already true), or -1
  /// when the probe conflicts — then ~l is implied by the clause database
  /// at level 0 and the caller may assert it. Must be called at decision
  /// level 0. Probing perturbs saved phases, so probe on a dedicated clone
  /// when the original solver's search trajectory must stay reproducible.
  [[nodiscard]] int probe_literal(Lit l);

  /// Current branching activity of a variable (EVSIDS score, or the LRB
  /// learning rate under BranchingHeuristic::kLrb). Comparable only within
  /// one solver instance — rescaling makes absolute magnitudes meaningless
  /// — but the *ranking* identifies the variables the search is actually
  /// fighting over, which is what cube splitting needs.
  [[nodiscard]] double var_activity(Var v) const {
    return activity_[static_cast<std::size_t>(v)];
  }

  /// Model value of a variable after solve() returned Sat.
  [[nodiscard]] bool model_value(Var v) const;

  /// Current (possibly partial) assignment of a literal mid-solve. Theory
  /// clients use this to skip propagating literals that are already
  /// assigned.
  [[nodiscard]] LBool value_of(Lit l) const { return value(l); }

  [[nodiscard]] const SatStats& stats() const { return stats_; }

  /// Per-call effort: what this solver spent since `snapshot` (a prior
  /// stats() copy). Reused and incremental solvers accumulate counters for
  /// their lifetime, so reporting stats() per solve inflates every call
  /// after the first — report stats_since(snapshot) instead.
  [[nodiscard]] SatStats stats_since(const SatStats& snapshot) const {
    return stats_.since(snapshot);
  }

  /// Attaches (or detaches, with nullptr) per-phase wall-time accounting
  /// for the propagate and theory-check phases. Off by default; when off
  /// the cost is one pointer test per phase boundary. The pointee must
  /// outlive its attachment.
  void set_phase_times(obs::PhaseTimes* phases) { phases_ = phases; }

  /// Approximate heap footprint of the clause/watch/card databases in
  /// bytes (Table IV accounting). Counts the arena's *capacity*.
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Arena accounting (Table IV / obs): bytes reserved by the clause arena
  /// vs bytes occupied by live (non-deleted) clauses. capacity >= used >=
  /// live; used - live is what the next GC reclaims.
  [[nodiscard]] std::size_t arena_capacity_bytes() const {
    return arena_.capacity() * sizeof(std::uint32_t);
  }
  [[nodiscard]] std::size_t arena_live_bytes() const {
    return (arena_.size() - wasted_words_) * sizeof(std::uint32_t);
  }

  /// Live learnt clauses currently attached (multi-literal ones; learnt
  /// level-0 units are not counted).
  [[nodiscard]] std::size_t num_learned_clauses() const {
    return learned_refs_.size();
  }

 private:
  // --- Arena clause layout -------------------------------------------------
  // word 0: flags (bit0 learned, bit1 deleted, bit2 relocated) | size << 3
  // word 1: lbd (low 16 bits) | push-depth at learning time (high 16 bits);
  //         holds the forwarding ClauseRef while bit2 of word 0 is set
  //         (only during garbage_collect()).
  // word 2: activity (IEEE-754 float bits)
  // word 3..3+size: literal codes
  static constexpr std::uint32_t kLearnedBit = 1u;
  static constexpr std::uint32_t kDeletedBit = 2u;
  static constexpr std::uint32_t kRelocBit = 4u;
  static constexpr std::uint32_t kSizeShift = 3u;
  static constexpr std::uint32_t kHeaderWords = 3u;

  struct Card {
    std::vector<Lit> lits;  // at most `bound` of these may be true
    std::uint32_t bound = 0;
    std::uint32_t num_true = 0;
    bool deleted = false;
  };

  // Why a variable was assigned. Clause reasons hold an arena ClauseRef
  // (rewritten by garbage_collect when the clause moves); card reasons
  // index cards_; theory reasons index the theory_reasons_ premise log.
  // Card and theory reason clauses are reconstructed lazily in
  // reason_clause.
  struct Reason {
    enum class Kind : std::uint8_t { None, Clause, Card, Theory } kind =
        Kind::None;
    std::uint32_t index = kClauseRefUndef;
    static Reason none() { return {}; }
    static Reason clause(ClauseRef ref) { return {Kind::Clause, ref}; }
    static Reason card(std::uint32_t id) { return {Kind::Card, id}; }
    static Reason theory(std::uint32_t id) { return {Kind::Theory, id}; }
  };

  struct VarInfo {
    Reason reason;
    std::int32_t level = 0;
    std::int32_t trail_pos = -1;
  };

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  struct SavePoint {
    int num_vars;
    std::size_t num_pristine_clauses;
    std::size_t num_pristine_cards;
  };

  struct PristineCard {
    std::vector<Lit> lits;
    std::uint32_t bound;
  };

  [[nodiscard]] LBool value(Lit l) const {
    LBool v = assigns_[l.var()];
    return l.negated() ? negate(v) : v;
  }
  [[nodiscard]] LBool value(Var v) const { return assigns_[v]; }
  [[nodiscard]] int decision_level() const {
    return static_cast<int>(trail_lim_.size());
  }
  [[nodiscard]] std::uint32_t push_depth() const {
    return static_cast<std::uint32_t>(save_points_.size());
  }

  // Arena accessors. Refs stay valid across allocations (offsets into a
  // growing buffer); raw pointers into the arena do not survive alloc_.
  ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learned,
                         std::uint32_t lbd, std::uint32_t depth);
  [[nodiscard]] std::uint32_t clause_size(ClauseRef r) const {
    return arena_[r] >> kSizeShift;
  }
  [[nodiscard]] bool clause_learned(ClauseRef r) const {
    return (arena_[r] & kLearnedBit) != 0;
  }
  [[nodiscard]] bool clause_deleted(ClauseRef r) const {
    return (arena_[r] & kDeletedBit) != 0;
  }
  [[nodiscard]] std::uint32_t clause_lbd(ClauseRef r) const {
    return arena_[r + 1] & 0xFFFFu;
  }
  [[nodiscard]] std::uint32_t clause_depth(ClauseRef r) const {
    return arena_[r + 1] >> 16;
  }
  [[nodiscard]] Lit clause_lit(ClauseRef r, std::uint32_t i) const {
    return Lit::from_code(
        static_cast<std::int32_t>(arena_[r + kHeaderWords + i]));
  }
  [[nodiscard]] float clause_activity(ClauseRef r) const;
  void set_clause_activity(ClauseRef r, float a);
  void delete_clause(ClauseRef r);

  void attach_clause(ClauseRef r);
  void attach_card(std::uint32_t id);
  bool enqueue(Lit l, Reason reason);
  // Returns conflicting clause ref, kExplicitConflictRef with
  // pending_conflict_ filled for card/theory conflicts, or kNoConflictRef
  // when propagation reached a fixpoint.
  ClauseRef propagate();
  void cancel_until(int level);
  void analyze(ClauseRef confl_clause, const std::vector<Lit>& confl_lits_in,
               std::vector<Lit>& out_learnt, int& out_btlevel);
  // The clause (implied lit first) justifying an assignment.
  std::vector<Lit> reason_clause(Var v);
  void var_bump(Var v);
  void var_decay();
  void clause_bump(ClauseRef r);
  Lit pick_branch();
  std::uint64_t next_rand();
  void reduce_db();
  ClauseRef relocate(ClauseRef r, std::vector<std::uint32_t>& to);
  void garbage_collect();
  void rebuild_order_heap();
  std::uint32_t compute_lbd(const std::vector<Lit>& lits);
  bool theory_check(bool final, std::vector<Lit>& confl);
  // Publishes a just-learnt clause to the exchange when the export filters
  // (share_max_size / share_max_lbd) pass. No-op without an exchange.
  void record_learnt(const std::vector<Lit>& lits, std::uint32_t lbd);
  // Installs a clause implied by the current constraint database at
  // decision level 0, simplifying against the level-0 assignment. Used by
  // the sharing import path and by pop()'s learnt retention. Updates
  // clause/unit bookkeeping but no stats counters; returns true if the
  // clause was installed (attached or enqueued) rather than discarded as
  // satisfied/vacuous.
  bool install_implied_clause(const std::vector<Lit>& lits,
                              std::uint32_t lbd, std::uint32_t depth);
  void import_shared_clauses();

  // Heap-backed VSIDS order (simple binary heap keyed by activity).
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  [[nodiscard]] bool heap_empty() const { return heap_.empty(); }

  TheoryClient* theory_ = nullptr;

  // Clause arena (see layout above) and the words dead clauses occupy;
  // garbage_collect() compacts once a quarter of the arena is dead.
  std::vector<std::uint32_t> arena_;
  std::size_t wasted_words_ = 0;
  std::size_t num_problem_clauses_ = 0;  // live non-learnt clauses

  std::deque<Card> cards_;
  std::vector<std::vector<Watcher>> watches_;     // indexed by lit code
  std::vector<std::vector<std::uint32_t>> card_occs_;  // lit code -> card ids

  std::vector<LBool> assigns_;
  std::vector<VarInfo> var_info_;
  std::vector<bool> phase_;       // saved phases
  std::vector<double> activity_;
  std::vector<Lit> trail_;
  std::vector<std::int32_t> trail_lim_;
  std::size_t qhead_ = 0;
  std::size_t theory_qhead_ = 0;       // trail prefix already sent to theory
  std::size_t theory_assert_count_ = 0;

  std::vector<Var> heap_;
  std::vector<std::int32_t> heap_index_;

  // LRB state (engine.branching == kLrb only; the arrays stay empty-valued
  // under EVSIDS): the global conflict count when each variable was
  // assigned, its conflict-participation count since, and the EMA step.
  // The learning rate participated/interval is folded into activity_ when
  // the variable is unassigned, so the existing heap orders LRB scores.
  std::vector<std::uint64_t> lrb_assigned_;
  std::vector<std::uint32_t> lrb_participated_;
  double lrb_alpha_ = 0.4;

  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  SatOptions options_;
  std::uint64_t rng_state_ = 0x9e3779b97f4a7c15ull;
  // Abort state of the in-flight solve; null outside solve().
  const Interrupt* interrupt_ = nullptr;
  // Phase-time accumulator; null = accounting off (see set_phase_times).
  obs::PhaseTimes* phases_ = nullptr;

  bool ok_ = true;  // false once UNSAT at level 0
  std::vector<bool> model_;
  // Live learnt clauses (multi-literal), in learning/import order; purged
  // of deleted entries at the end of each reduce_db.
  std::vector<ClauseRef> learned_refs_;
  // Learnt level-0 unit facts with the push-depth they were derived at, so
  // pop() can replay the ones whose derivations survive.
  std::vector<std::pair<Lit, std::uint32_t>> learnt_units_;
  std::vector<SavePoint> save_points_;

  // Constraints exactly as the user gave them, so pop() can rebuild the
  // database without trusting level-0 simplifications that may have used
  // popped facts.
  std::vector<std::vector<Lit>> pristine_clauses_;
  std::vector<PristineCard> pristine_cards_;
  bool replaying_ = false;

  // Conflict state populated by propagate() for non-clause conflicts.
  std::vector<Lit> pending_conflict_;

  // Premise sets of theory-propagated literals, indexed by
  // Reason::Kind::Theory reasons. Entries are appended in enqueue (= trail)
  // order, so cancel_until can truncate at the lowest retracted index;
  // pop() clears the log with the trail.
  std::vector<std::vector<Lit>> theory_reasons_;
  std::vector<TheoryPropagation> theory_props_;  // scratch for theory_check
  std::vector<std::vector<Lit>> import_buf_;     // scratch for imports

  // Temporaries for analyze().
  std::vector<bool> seen_;

  SatStats stats_;
};

}  // namespace psse::smt
