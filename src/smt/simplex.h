// Linear real arithmetic theory solver: the "general simplex" of
// Dutertre & de Moura (CAV 2006), over exact delta-rationals — run
// float-first with exact certification (DESIGN.md §6g).
//
// Variables carry optional lower/upper bounds, each tagged with the SAT
// literal that asserted it; linear constraints are rows of a tableau whose
// basic variable is a slack. check() restores bound feasibility by pivoting
// and, on infeasibility, produces a conflict clause over the tagging
// literals. Pivot selection is heuristic by default (largest violation /
// largest coefficient magnitude) with a per-check fallback to strict
// Bland's rule, so termination stays guaranteed (see SimplexOptions).
// Violated basic variables are tracked incrementally in a candidate
// worklist, so a check() costs O(violated + pivots) rather than a scan of
// every row per pivot.
//
// Float filter: every bound, row coefficient, and assignment carries a
// double shadow (DoubleApprox: value + rigorous error bound). Basic-variable
// assignments are updated only in doubles during pivoting; the exact
// delta-rational assignment is recomputed from the (always exact) tableau
// row on demand — when a comparison lands inside the error budget, or
// before a conflict is emitted. Non-basic assignments and the tableau rows
// themselves stay exact at all times, so every certification is one sparse
// exact dot product. Verdicts are decided either by an exact comparison or
// by a float comparison whose error interval clears the other side, so they
// are identical to the exact-only configuration by construction; a
// per-check budget of float/exact disagreements drops the check back to the
// fully exact path (which itself still falls back to Bland's rule).
//
// Eta-factorised rows (SimplexOptions::eta_tableau, DESIGN.md §6i): a
// pivot appends the solved pivot row to an eta file instead of eagerly
// rewriting every dependent exact row; rows are brought up to date lazily
// where a verdict reads them, and a Markowitz-ordered refactorisation from
// the immutable creation identities replaces long backlogs wholesale. The
// float mirrors are composed (not rebuilt) during pivots in both modes, so
// every float-steered decision — and therefore every verdict, conflict and
// implied bound — is bit-identical with the factorisation on or off.
//
// Bound assertions are trailed; pop_to() retracts to an earlier trail mark
// in O(retracted). The tableau itself is never rolled back — any pivoted
// tableau is an equivalent presentation of the same linear system — and
// the eta file survives pops for the same reason.
//
// After a feasible check(), propagate_implied() derives bounds that the
// current bound set forces on row owners (and republishes freshly asserted
// bounds), each with the premise literals that imply it — the raw material
// for DPLL(T) theory propagation (see DESIGN.md §6d). Derivations are
// float-screened: a row whose implied bound provably cannot beat the
// owner's asserted bound is skipped without exact arithmetic.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/phase.h"
#include "smt/budget.h"
#include "smt/linear_expr.h"
#include "smt/literal.h"
#include "smt/rational.h"

namespace psse::smt {

/// Pivot-selection and propagation configuration.
struct SimplexOptions {
  /// Heuristic pivot selection: leaving variable with the largest bound
  /// violation, entering variable with the largest coefficient magnitude
  /// among the suitable columns — both scored in floating point, because
  /// pivot choice never affects soundness and exact delta-rational
  /// comparisons would dominate the check on hairy-denominator instances.
  /// false = strict Bland's rule from the first pivot (the reference
  /// configuration the fuzz tests compare against).
  bool heuristic_pivoting = true;
  /// Pivot budget per check() for the heuristic rule; once spent, the
  /// check falls back to strict Bland's rule (smallest variable index),
  /// which cannot cycle — the heuristic alone has no termination
  /// guarantee. Counted by num_bland_fallbacks().
  std::uint64_t bland_fallback_after = 512;
  /// Record freshly asserted bounds and bound-relevant row updates so
  /// propagate_implied() can derive implied bounds. Off = no tracking
  /// cost for standalone simplex use.
  bool derive_bounds = true;
  /// Float-first mode: basic-variable assignments are maintained in
  /// doubles during pivoting and recomputed exactly only where a verdict
  /// depends on them; implied-bound derivations are float-screened.
  /// false = the fully exact path of PR 4 (the reference configuration the
  /// float-filter fuzz tests and ci.sh cross-check compare against).
  /// Toggling it between checks is safe: turning it off restores every
  /// shadowed assignment exactly first.
  bool float_filter = true;
  /// Per-check budget of float/exact disagreements (a certification whose
  /// exact outcome contradicts the float point estimate). Exceeding it
  /// abandons the filter for the remainder of the check: every shadowed
  /// assignment is restored exactly and the check continues on the exact
  /// path. Counted by num_filter_fallbacks().
  std::uint32_t filter_disagreement_budget = 16;
  /// Eta-factorised tableau (DESIGN.md §6i): a pivot appends the solved
  /// pivot row to an eta file instead of eagerly substituting the entering
  /// variable into every dependent row; exact rows are brought up to date
  /// lazily (ensure_fresh) only where a verdict or an emitted bound reads
  /// them, and a Markowitz-ordered from-scratch refactorisation replaces
  /// the whole backlog when the file grows long. false = the PR 7 eager
  /// substitution path, kept alive as the differential oracle — verdicts,
  /// conflicts and implied bounds are bit-identical on/off by construction
  /// (the float mirrors are composed identically in both modes).
  bool eta_tableau = true;
  /// Refactorisation triggers, evaluated after every pivot from state that
  /// is identical whether eta_tableau is on or off (pivot count since the
  /// last refactorisation, mirror fill, accumulated mirror error), so both
  /// modes resynchronise their float state at the same points.
  std::uint32_t eta_refactor_len = 64;
  /// Refactorise when the mirror nonzero count exceeds this multiple of the
  /// tight (post-refactorisation) count: composed mirrors keep structurally
  /// dead ~0 entries, and fill degrades column index and screen quality.
  double eta_refactor_fill = 4.0;
  /// Refactorise when any composed mirror entry's rigorous error bound
  /// exceeds this: wide shadows stop deciding comparisons and every verdict
  /// falls back to exact certification.
  double eta_error_budget = 1e-6;
};

class Simplex {
 public:
  /// A bound forced by the current bound assertions: `var <= bound` (or
  /// `>=` when !is_upper) holds in every solution where the `premises`
  /// literals hold. Produced by propagate_implied().
  struct ImpliedBound {
    TVar var = kNoTVar;
    bool is_upper = false;
    DeltaRational bound;
    std::vector<Lit> premises;
  };

  Simplex() = default;
  Simplex(const Simplex&) = delete;
  Simplex& operator=(const Simplex&) = delete;

  /// Creates a theory variable (initially unbounded, value 0).
  TVar new_var(std::string name = {});
  [[nodiscard]] int num_vars() const { return static_cast<int>(vars_.size()); }

  /// Creates (or reuses) a slack variable constrained to equal `expr`,
  /// which must be non-constant with zero constant part.
  TVar slack_for(const LinExpr& expr);

  /// Asserts v <= bound (or v >= bound), tagged with the asserting literal.
  /// Returns false on an immediate bound conflict (then conflict_clause()
  /// is the explanation).
  bool assert_upper(TVar v, const DeltaRational& bound, Lit reason);
  bool assert_lower(TVar v, const DeltaRational& bound, Lit reason);

  /// Number of trailed bound assertions so far (monotone within a level).
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  /// Retracts bound assertions down to an earlier trail_size().
  void pop_to(std::size_t mark);

  /// Restores feasibility. Returns false on theory conflict. When the
  /// attached interrupt triggers mid-pivot, returns true *without* having
  /// restored feasibility (and without clearing the internal dirty flag);
  /// the caller must treat the result as unusable and abort the solve —
  /// the SAT core does so by re-polling the same interrupt before acting.
  bool check();

  /// Attaches (or detaches, with nullptr) the abort state polled in the
  /// pivot loop. The pointee must outlive its attachment; the DPLL(T)
  /// facade wires the SAT core's per-solve Interrupt here so wall-clock
  /// budgets and stop tokens cut long pivot sequences short.
  void set_interrupt(const Interrupt* interrupt) { interrupt_ = interrupt; }

  /// After a failed assert/check: a clause (negated bound literals), all of
  /// which are currently false in the SAT core.
  [[nodiscard]] const std::vector<Lit>& conflict_clause() const {
    return conflict_;
  }

  /// After a successful check(): concrete rational value of a variable,
  /// with delta instantiated small enough to respect every strict bound.
  /// Asserts that the last check() was not cut short by an interrupt — an
  /// interrupted tableau has no feasible assignment to read.
  [[nodiscard]] Rational model_value(TVar v);

  /// Reconfigures pivot selection / propagation. Takes effect at the next
  /// check(); may be called at any point between checks. Turning the float
  /// filter off restores every float-shadowed assignment exactly, so the
  /// instance continues as a purely exact solver.
  void set_options(const SimplexOptions& options);
  [[nodiscard]] const SimplexOptions& options() const { return options_; }

  /// Marks a variable as worth deriving implied bounds for (the DPLL(T)
  /// facade flags variables that carry atoms); rows owned by uninteresting
  /// variables are skipped by propagate_implied().
  void set_interesting(TVar v, bool on);

  /// Appends the bounds implied by the bound assertions made since the
  /// previous call: freshly asserted bounds themselves (premise = their own
  /// tag literal) and bounds derived from rows all of whose column
  /// variables are bounded on the relevant side (premises = those bounds'
  /// tags). Only sound on a feasibility-checked state — a no-op while
  /// feasibility is unknown (pending or interrupted check) or when
  /// SimplexOptions::derive_bounds is off. Emitted bounds are always exact
  /// delta-rationals; the float screen only skips derivations that provably
  /// cannot tighten anything.
  void propagate_implied(std::vector<ImpliedBound>& out);

  /// Diagnostics / Table IV accounting. Lifetime counters: pivots performed
  /// by check(), bound flips (a bound assertion moving a non-basic
  /// variable onto its new bound, the cheap feasibility repair that avoids
  /// a pivot), and checks that exhausted the heuristic pivot budget and
  /// fell back to Bland's rule.
  [[nodiscard]] std::uint64_t num_pivots() const { return pivots_; }
  [[nodiscard]] std::uint64_t num_bound_flips() const { return bound_flips_; }
  [[nodiscard]] std::uint64_t num_bland_fallbacks() const {
    return bland_fallbacks_;
  }
  /// Float-filter accounting. float_pivots: pivots whose assignment
  /// updates ran in doubles only (<= num_pivots; the remainder ran on the
  /// exact path). exact_recomputes: assignments or implied-bound rows
  /// recomputed exactly because a verdict depended on them (certification
  /// points). filter_disagreements: certifications whose exact outcome
  /// contradicted the float point estimate. filter_fallbacks: checks that
  /// exceeded the per-check disagreement budget and finished on the exact
  /// path.
  [[nodiscard]] std::uint64_t num_float_pivots() const { return float_pivots_; }
  [[nodiscard]] std::uint64_t num_exact_recomputes() const {
    return exact_recomputes_;
  }
  [[nodiscard]] std::uint64_t num_filter_disagreements() const {
    return filter_disagreements_;
  }
  [[nodiscard]] std::uint64_t num_filter_fallbacks() const {
    return filter_fallbacks_;
  }
  /// Eta-tableau accounting. eta_updates: pivots recorded as eta-file
  /// entries instead of eager substitution (0 with eta_tableau off).
  /// refactorisations: trigger firings (both modes — the eager mode
  /// re-tightens its float mirrors at the same points). eta_file_len_max:
  /// high-water mark of the eta file between refactorisations.
  [[nodiscard]] std::uint64_t num_eta_updates() const { return eta_updates_; }
  [[nodiscard]] std::uint64_t num_refactorisations() const {
    return refactorisations_;
  }
  [[nodiscard]] std::uint64_t eta_file_len_max() const {
    return eta_file_len_max_;
  }
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Attaches (or detaches, with nullptr) wall-time accounting for the
  /// pivot loop (PhaseTimes::simplex_us). Off = one pointer test per
  /// check(); the pointee must outlive its attachment.
  void set_phase_times(obs::PhaseTimes* phases) { phases_ = phases; }
  [[nodiscard]] const std::string& name_of(TVar v) const {
    return vars_[static_cast<std::size_t>(v)].name;
  }

 private:
  struct Bound {
    DeltaRational value;
    /// Shadow of value.real() (the delta part is symbolic: lexicographic
    /// order means a float comparison can only decide when the real parts
    /// are strictly apart, and then the delta parts are irrelevant).
    DoubleApprox approx;
    /// Unique id of this assignment (global monotone counter; pop restores
    /// the old id with the old value, so equal revisions imply equal
    /// values). Fast path for the derivation caches' change detection.
    std::uint64_t revision = 0;
    Lit reason;
    bool active = false;
  };

  struct VarState {
    std::string name;
    Bound lower;
    Bound upper;
    DeltaRational beta;  // exact assignment; lags the shadow when stale
    DoubleApprox beta_f;  // shadow of beta.real()
    std::int32_t row = -1;  // row index if basic, -1 if non-basic
    /// True while beta (exact) lags behind beta_f: the variable is basic
    /// and its assignment has only been updated in doubles since the last
    /// exact recompute. Non-basic variables are never stale — they are
    /// only ever assigned exactly representable values (their bounds).
    bool stale = false;
  };

  struct TrailEntry {
    TVar var;
    bool is_upper;
    Bound previous;
  };

  // Memoized implied-bound derivation for one side of a row: the exact
  // implied value last computed plus, aligned term-for-term with the row's
  // expr, the input bound value each term contributed (invariant:
  // implied == sum(vals[i] * coeff[i])). A re-derivation patches only the
  // terms whose input bound *value* differs — one add_mul on the (usually
  // tiny) difference — and replays with no exact arithmetic when nothing
  // differs, the dominant case: rows are re-dirtied on any column bound
  // event, and both backtracking and re-assertion overwhelmingly restore
  // the exact value already cached (which is why change detection is by
  // value, not by assertion identity). The revision stamps make the
  // comparison cheap: equal stamps short-circuit as equal values, and a
  // stamp mismatch with an equal value (re-assertion) just refreshes the
  // stamp. Every exact tie (owner bound == implied bound, undecidable by
  // any float margin) is disposed of here after its first exact pass.
  // Invalidated whenever the terms change (pivot).
  struct DeriveCache {
    DeltaRational implied;
    std::vector<DeltaRational> vals;
    std::vector<std::uint64_t> revs;
    bool valid = false;
  };

  // Row: owner = expr (a zero-constant LinExpr; terms sorted by var id).
  //
  // `mirror` is the sparse float shadow, its own var-sorted vector rather
  // than an array aligned with expr: during pivots it is *composed* in
  // floating point (dependent mirror += b_f * pivot mirror) instead of
  // being rebuilt from the exact terms, so its pattern is the structural
  // union of every substitution since the last refactorisation — a superset
  // of the exact pattern (exact cancellations leave ~0 entries carrying
  // their rigorous error). Composition is identical whether eta_tableau is
  // on or off, which is what makes the lazy exact rows invisible to every
  // float-steered decision. cols_ tracks the mirror pattern.
  //
  // `epoch` counts the eta-file entries already folded into expr; the row
  // is current iff `pending` is empty (eager mode keeps every row at the
  // file head). `pending` lists the eta-file indices whose substitution
  // still has to be folded into expr — recorded at pivot time off the
  // dependents walk (the rows whose mirror then carried the entering
  // variable, a superset of the rows whose exact terms did), so a replay
  // touches only the etas that can actually hit this row instead of
  // scanning the whole file. `orig` is the immutable creation-time
  // identity (orig_owner = orig), the ground truth the Markowitz
  // refactorisation re-derives the whole dictionary from.
  struct Row {
    TVar owner;
    LinExpr expr;
    std::vector<std::pair<TVar, DoubleApprox>> mirror;
    std::uint32_t epoch = 0;
    std::vector<std::uint32_t> pending;
    DeriveCache derive[2];  // [0] = lower, [1] = upper
    TVar orig_owner = kNoTVar;
    LinExpr orig;
  };

  // One eta-file entry: at pivot time the solved pivot row (entered =
  // def, over the variables non-basic at that moment) is snapshotted.
  // Replaying entries k..end in order onto a row at epoch k reproduces,
  // bit for bit, the eager substitutions the PR 7 path would have done.
  struct Eta {
    TVar entered;
    LinExpr def;
  };

  bool set_bound(TVar v, const DeltaRational& bound, Lit reason,
                 bool is_upper);
  // Enqueues a basic variable into the violated-candidate worklist unless
  // it is provably within bounds (exactly for fresh variables, by float
  // margin for stale ones) or already queued.
  void touch(TVar v);
  // Marks one side of a row for implied-bound (re)derivation.
  void mark_row_dirty(std::int32_t rowIdx, bool upper);
  // Derives the upper (or lower) bound a row forces on its owner, if every
  // column variable is bounded on the relevant side. Float-screened: rows
  // that provably cannot tighten the owner's bound are skipped.
  void derive_row_bound(std::int32_t rowIdx, bool upper,
                        std::vector<ImpliedBound>& out);
  // Moves a non-basic variable and propagates into dependent basics (in
  // doubles when the filter is live, exactly otherwise).
  void update(TVar v, const DeltaRational& newVal,
              const DoubleApprox& newApprox);
  // Pivots basic leaving var (by row) with entering non-basic var, setting
  // the leaving var's value to `target` (whose shadow is `targetApprox`).
  void pivot_and_update(std::int32_t rowIdx, TVar entering,
                        const DeltaRational& target,
                        const DoubleApprox& targetApprox);
  void pivot(std::int32_t rowIdx, TVar entering);
  // Rebuilds a row's double mirror tight from its exact terms (creation,
  // pivot row, refactorisation — the resynchronisation points shared by
  // both eta modes).
  void refresh_mirror(Row& row);
  // Folds the pending eta-file entries into a row's exact terms (FTRAN
  // analogue). No-op when the row is current — in particular always in
  // eager mode.
  void ensure_fresh(std::int32_t rowIdx);
  void make_all_fresh();
  // Composes the pivot row into a dependent row's float mirror (identical
  // in both eta modes) and patches the column index to the new pattern.
  void float_substitute(std::int32_t r, TVar entering, const Row& pivotRow);
  // Refactorisation trigger (see SimplexOptions::eta_refactor_*), decided
  // from mode-identical state after every pivot.
  [[nodiscard]] bool should_refactor() const;
  // Discards the eta backlog: in eta mode re-derives every row from the
  // immutable creation identities by Markowitz-ordered elimination (BTRAN
  // analogue; cost independent of the backlog length), then — in both
  // modes — rebuilds tight mirrors and the column index and truncates the
  // eta file.
  void refactorize();
  void rebuild_rows_from_origs();
  [[nodiscard]] const Rational* row_coeff(const Row& row, TVar v) const;
  [[nodiscard]] const DoubleApprox* mirror_coeff(const Row& row,
                                                 TVar v) const;
  // Index of v's term in row.expr, or -1.
  [[nodiscard]] std::ptrdiff_t row_term_index(const Row& row, TVar v) const;
  void build_conflict_from_row(const Row& row, bool lowerViolated);
  [[nodiscard]] bool in_bounds(TVar v) const;
  // Certification point: recomputes a stale basic variable's exact
  // assignment from its row (one sparse exact dot product over the
  // always-exact non-basic assignments).
  void restore_beta(TVar v);
  // Restores every stale assignment; the instance is fully exact after.
  void restore_all_betas();
  // Whether assignment updates may run in doubles right now.
  [[nodiscard]] bool float_mode() const {
    return options_.float_filter && !check_exact_fallback_;
  }
  void compute_delta();

  std::vector<VarState> vars_;
  std::vector<Row> rows_;
  // var -> rows whose terms mention it (column index), kept as sorted
  // vectors: columns are small, so binary-search insert/erase beats the
  // hash set on both the pivot loop and memory.
  std::vector<std::vector<std::int32_t>> cols_;
  std::unordered_map<LinExpr, TVar> slack_cache_;
  std::vector<TrailEntry> trail_;
  std::vector<Lit> conflict_;
  std::optional<Rational> concrete_delta_;
  std::uint64_t pivots_ = 0;
  std::uint64_t bound_flips_ = 0;
  std::uint64_t bland_fallbacks_ = 0;
  std::uint64_t float_pivots_ = 0;
  std::uint64_t exact_recomputes_ = 0;
  std::uint64_t filter_disagreements_ = 0;
  std::uint64_t filter_fallbacks_ = 0;
  std::uint64_t eta_updates_ = 0;
  std::uint64_t refactorisations_ = 0;
  std::uint64_t eta_file_len_max_ = 0;
  const Interrupt* interrupt_ = nullptr;
  obs::PhaseTimes* phases_ = nullptr;
  SimplexOptions options_;
  // Violated-candidate worklist: a superset of the out-of-bounds basic
  // variables (entries may have been repaired or pivoted non-basic since
  // enqueue; check() filters). violated_flag_ dedupes, indexed by var.
  std::vector<TVar> violated_;
  std::vector<bool> violated_flag_;
  // Implied-bound tracking (derive_bounds): bounds asserted and rows
  // touched since the last propagate_implied() drain. row_dirty_ dedupes.
  std::vector<std::pair<TVar, bool>> fresh_bounds_;  // (var, is_upper)
  std::vector<std::int32_t> dirty_rows_;
  // Per-row bitmask of sides needing re-derivation: bit 0 = lower, bit 1 =
  // upper (a column bound event only perturbs the side that consumes it).
  std::vector<std::uint8_t> row_dirty_;
  std::vector<bool> interesting_;  // vars whose implied bounds have takers
  // Scratch for pivot's row elimination (recycles merge capacity).
  std::vector<std::pair<TVar, Rational>> merge_scratch_;
  // Scratch holding a row's pre-substitution var set so pivot can patch the
  // column index by set difference instead of erase-all/insert-all.
  std::vector<TVar> col_vars_scratch_;
  // Scratch for float_substitute's mirror merge (recycles capacity).
  std::vector<std::pair<TVar, DoubleApprox>> mirror_scratch_;
  // Eta file: pending pivot updates newer than some rows' epochs. Survives
  // pop_to (the tableau never rolls back; bounds live on the trail) and is
  // truncated only by refactorize().
  std::vector<Eta> etas_;
  // Shared refactorisation-trigger state, identical across eta modes:
  // pivots since the last refactorisation (== etas_.size() in eta mode),
  // total mirror nonzeros vs the tight count at the last resync, and the
  // high-water error bound of composed mirror entries.
  std::uint64_t pivots_since_refactor_ = 0;
  std::size_t mirror_nnz_ = 0;
  std::size_t base_nnz_ = 0;
  double max_mirror_err_ = 0.0;
  // Total deferred substitutions across all rows' pending lists (eta mode
  // only). refactorize() compares it against the tableau size to choose
  // between draining the backlog (cheap when short) and the from-scratch
  // Markowitz rebuild (cost independent of backlog length).
  std::size_t pending_total_ = 0;
  // Number of stale assignments (restore_all_betas short-circuit).
  std::size_t stale_count_ = 0;
  // Bound-assignment revision counter (see Bound::revision).
  std::uint64_t bound_revision_ = 0;
  // Set when a check exceeds the disagreement budget: the rest of that
  // check (and any assert-time updates until the next check) runs exactly.
  bool check_exact_fallback_ = false;
  // False only when every variable is known to satisfy its bounds; lets
  // check() short-circuit at propagation fixpoints where no bound moved.
  bool maybe_infeasible_ = false;
  // True while the last check() was cut short by an interrupt: betas are
  // mid-repair and must not be consumed as a model.
  bool interrupted_dirty_ = false;
};

}  // namespace psse::smt
