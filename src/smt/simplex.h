// Linear real arithmetic theory solver: the "general simplex" of
// Dutertre & de Moura (CAV 2006), over exact delta-rationals.
//
// Variables carry optional lower/upper bounds, each tagged with the SAT
// literal that asserted it; linear constraints are rows of a tableau whose
// basic variable is a slack. check() restores bound feasibility by pivoting
// (Bland's rule, so termination is guaranteed) and, on infeasibility,
// produces a conflict clause over the tagging literals.
//
// Bound assertions are trailed; pop_to() retracts to an earlier trail mark
// in O(retracted). The tableau itself is never rolled back — any pivoted
// tableau is an equivalent presentation of the same linear system.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/phase.h"
#include "smt/budget.h"
#include "smt/linear_expr.h"
#include "smt/literal.h"
#include "smt/rational.h"

namespace psse::smt {

class Simplex {
 public:
  Simplex() = default;
  Simplex(const Simplex&) = delete;
  Simplex& operator=(const Simplex&) = delete;

  /// Creates a theory variable (initially unbounded, value 0).
  TVar new_var(std::string name = {});
  [[nodiscard]] int num_vars() const { return static_cast<int>(vars_.size()); }

  /// Creates (or reuses) a slack variable constrained to equal `expr`,
  /// which must be non-constant with zero constant part.
  TVar slack_for(const LinExpr& expr);

  /// Asserts v <= bound (or v >= bound), tagged with the asserting literal.
  /// Returns false on an immediate bound conflict (then conflict_clause()
  /// is the explanation).
  bool assert_upper(TVar v, const DeltaRational& bound, Lit reason);
  bool assert_lower(TVar v, const DeltaRational& bound, Lit reason);

  /// Number of trailed bound assertions so far (monotone within a level).
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  /// Retracts bound assertions down to an earlier trail_size().
  void pop_to(std::size_t mark);

  /// Restores feasibility. Returns false on theory conflict. When the
  /// attached interrupt triggers mid-pivot, returns true *without* having
  /// restored feasibility (and without clearing the internal dirty flag);
  /// the caller must treat the result as unusable and abort the solve —
  /// the SAT core does so by re-polling the same interrupt before acting.
  bool check();

  /// Attaches (or detaches, with nullptr) the abort state polled in the
  /// pivot loop. The pointee must outlive its attachment; the DPLL(T)
  /// facade wires the SAT core's per-solve Interrupt here so wall-clock
  /// budgets and stop tokens cut long pivot sequences short.
  void set_interrupt(const Interrupt* interrupt) { interrupt_ = interrupt; }

  /// After a failed assert/check: a clause (negated bound literals), all of
  /// which are currently false in the SAT core.
  [[nodiscard]] const std::vector<Lit>& conflict_clause() const {
    return conflict_;
  }

  /// After a successful check(): concrete rational value of a variable,
  /// with delta instantiated small enough to respect every strict bound.
  [[nodiscard]] Rational model_value(TVar v);

  /// Diagnostics / Table IV accounting. Lifetime counters: pivots performed
  /// by check(), and bound flips (a bound assertion moving a non-basic
  /// variable onto its new bound, the cheap feasibility repair that avoids
  /// a pivot).
  [[nodiscard]] std::uint64_t num_pivots() const { return pivots_; }
  [[nodiscard]] std::uint64_t num_bound_flips() const { return bound_flips_; }
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Attaches (or detaches, with nullptr) wall-time accounting for the
  /// pivot loop (PhaseTimes::simplex_us). Off = one pointer test per
  /// check(); the pointee must outlive its attachment.
  void set_phase_times(obs::PhaseTimes* phases) { phases_ = phases; }
  [[nodiscard]] const std::string& name_of(TVar v) const {
    return vars_[static_cast<std::size_t>(v)].name;
  }

 private:
  struct Bound {
    DeltaRational value;
    Lit reason;
    bool active = false;
  };

  struct VarState {
    std::string name;
    Bound lower;
    Bound upper;
    DeltaRational beta;        // current assignment
    std::int32_t row = -1;     // row index if basic, -1 if non-basic
  };

  struct TrailEntry {
    TVar var;
    bool is_upper;
    Bound previous;
  };

  // Row: owner = expr (a zero-constant LinExpr; terms sorted by var id).
  struct Row {
    TVar owner;
    LinExpr expr;
  };

  bool set_bound(TVar v, const DeltaRational& bound, Lit reason,
                 bool is_upper);
  // Moves a non-basic variable and propagates into dependent basics.
  void update(TVar v, const DeltaRational& newVal);
  // Pivots basic leaving var (by row) with entering non-basic var, setting
  // the leaving var's value to `target`.
  void pivot_and_update(std::int32_t rowIdx, TVar entering,
                        const DeltaRational& target);
  void pivot(std::int32_t rowIdx, TVar entering);
  [[nodiscard]] const Rational* row_coeff(const Row& row, TVar v) const;
  void build_conflict_from_row(const Row& row, bool lowerViolated);
  [[nodiscard]] bool in_bounds(TVar v) const;
  void compute_delta();

  std::vector<VarState> vars_;
  std::vector<Row> rows_;
  // var -> rows whose terms mention it (column index), kept as sorted
  // vectors: columns are small, so binary-search insert/erase beats the
  // hash set on both the pivot loop and memory.
  std::vector<std::vector<std::int32_t>> cols_;
  std::unordered_map<LinExpr, TVar> slack_cache_;
  std::vector<TrailEntry> trail_;
  std::vector<Lit> conflict_;
  std::optional<Rational> concrete_delta_;
  std::uint64_t pivots_ = 0;
  std::uint64_t bound_flips_ = 0;
  const Interrupt* interrupt_ = nullptr;
  obs::PhaseTimes* phases_ = nullptr;
  // False only when every variable is known to satisfy its bounds; lets
  // check() short-circuit at propagation fixpoints where no bound moved.
  bool maybe_infeasible_ = false;
};

}  // namespace psse::smt
