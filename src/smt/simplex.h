// Linear real arithmetic theory solver: the "general simplex" of
// Dutertre & de Moura (CAV 2006), over exact delta-rationals.
//
// Variables carry optional lower/upper bounds, each tagged with the SAT
// literal that asserted it; linear constraints are rows of a tableau whose
// basic variable is a slack. check() restores bound feasibility by pivoting
// and, on infeasibility, produces a conflict clause over the tagging
// literals. Pivot selection is heuristic by default (largest violation /
// largest coefficient magnitude) with a per-check fallback to strict
// Bland's rule, so termination stays guaranteed (see SimplexOptions).
// Violated basic variables are tracked incrementally in a candidate
// worklist, so a check() costs O(violated + pivots) rather than a scan of
// every row per pivot.
//
// Bound assertions are trailed; pop_to() retracts to an earlier trail mark
// in O(retracted). The tableau itself is never rolled back — any pivoted
// tableau is an equivalent presentation of the same linear system.
//
// After a feasible check(), propagate_implied() derives bounds that the
// current bound set forces on row owners (and republishes freshly asserted
// bounds), each with the premise literals that imply it — the raw material
// for DPLL(T) theory propagation (see DESIGN.md §6d).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/phase.h"
#include "smt/budget.h"
#include "smt/linear_expr.h"
#include "smt/literal.h"
#include "smt/rational.h"

namespace psse::smt {

/// Pivot-selection and propagation configuration.
struct SimplexOptions {
  /// Heuristic pivot selection: leaving variable with the largest bound
  /// violation, entering variable with the largest coefficient magnitude
  /// among the suitable columns — both scored in floating point, because
  /// pivot choice never affects soundness and exact delta-rational
  /// comparisons would dominate the check on hairy-denominator instances.
  /// false = strict Bland's rule from the first pivot (the reference
  /// configuration the fuzz tests compare against).
  bool heuristic_pivoting = true;
  /// Pivot budget per check() for the heuristic rule; once spent, the
  /// check falls back to strict Bland's rule (smallest variable index),
  /// which cannot cycle — the heuristic alone has no termination
  /// guarantee. Counted by num_bland_fallbacks().
  std::uint64_t bland_fallback_after = 512;
  /// Record freshly asserted bounds and bound-relevant row updates so
  /// propagate_implied() can derive implied bounds. Off = no tracking
  /// cost for standalone simplex use.
  bool derive_bounds = true;
};

class Simplex {
 public:
  /// A bound forced by the current bound assertions: `var <= bound` (or
  /// `>=` when !is_upper) holds in every solution where the `premises`
  /// literals hold. Produced by propagate_implied().
  struct ImpliedBound {
    TVar var = kNoTVar;
    bool is_upper = false;
    DeltaRational bound;
    std::vector<Lit> premises;
  };

  Simplex() = default;
  Simplex(const Simplex&) = delete;
  Simplex& operator=(const Simplex&) = delete;

  /// Creates a theory variable (initially unbounded, value 0).
  TVar new_var(std::string name = {});
  [[nodiscard]] int num_vars() const { return static_cast<int>(vars_.size()); }

  /// Creates (or reuses) a slack variable constrained to equal `expr`,
  /// which must be non-constant with zero constant part.
  TVar slack_for(const LinExpr& expr);

  /// Asserts v <= bound (or v >= bound), tagged with the asserting literal.
  /// Returns false on an immediate bound conflict (then conflict_clause()
  /// is the explanation).
  bool assert_upper(TVar v, const DeltaRational& bound, Lit reason);
  bool assert_lower(TVar v, const DeltaRational& bound, Lit reason);

  /// Number of trailed bound assertions so far (monotone within a level).
  [[nodiscard]] std::size_t trail_size() const { return trail_.size(); }
  /// Retracts bound assertions down to an earlier trail_size().
  void pop_to(std::size_t mark);

  /// Restores feasibility. Returns false on theory conflict. When the
  /// attached interrupt triggers mid-pivot, returns true *without* having
  /// restored feasibility (and without clearing the internal dirty flag);
  /// the caller must treat the result as unusable and abort the solve —
  /// the SAT core does so by re-polling the same interrupt before acting.
  bool check();

  /// Attaches (or detaches, with nullptr) the abort state polled in the
  /// pivot loop. The pointee must outlive its attachment; the DPLL(T)
  /// facade wires the SAT core's per-solve Interrupt here so wall-clock
  /// budgets and stop tokens cut long pivot sequences short.
  void set_interrupt(const Interrupt* interrupt) { interrupt_ = interrupt; }

  /// After a failed assert/check: a clause (negated bound literals), all of
  /// which are currently false in the SAT core.
  [[nodiscard]] const std::vector<Lit>& conflict_clause() const {
    return conflict_;
  }

  /// After a successful check(): concrete rational value of a variable,
  /// with delta instantiated small enough to respect every strict bound.
  /// Asserts that the last check() was not cut short by an interrupt — an
  /// interrupted tableau has no feasible assignment to read.
  [[nodiscard]] Rational model_value(TVar v);

  /// Reconfigures pivot selection / propagation. Takes effect at the next
  /// check(); may be called at any point between checks.
  void set_options(const SimplexOptions& options) { options_ = options; }
  [[nodiscard]] const SimplexOptions& options() const { return options_; }

  /// Marks a variable as worth deriving implied bounds for (the DPLL(T)
  /// facade flags variables that carry atoms); rows owned by uninteresting
  /// variables are skipped by propagate_implied().
  void set_interesting(TVar v, bool on);

  /// Appends the bounds implied by the bound assertions made since the
  /// previous call: freshly asserted bounds themselves (premise = their own
  /// tag literal) and bounds derived from rows all of whose column
  /// variables are bounded on the relevant side (premises = those bounds'
  /// tags). Only sound on a feasibility-checked state — a no-op while
  /// feasibility is unknown (pending or interrupted check) or when
  /// SimplexOptions::derive_bounds is off.
  void propagate_implied(std::vector<ImpliedBound>& out);

  /// Diagnostics / Table IV accounting. Lifetime counters: pivots performed
  /// by check(), bound flips (a bound assertion moving a non-basic
  /// variable onto its new bound, the cheap feasibility repair that avoids
  /// a pivot), and checks that exhausted the heuristic pivot budget and
  /// fell back to Bland's rule.
  [[nodiscard]] std::uint64_t num_pivots() const { return pivots_; }
  [[nodiscard]] std::uint64_t num_bound_flips() const { return bound_flips_; }
  [[nodiscard]] std::uint64_t num_bland_fallbacks() const {
    return bland_fallbacks_;
  }
  [[nodiscard]] std::size_t footprint_bytes() const;

  /// Attaches (or detaches, with nullptr) wall-time accounting for the
  /// pivot loop (PhaseTimes::simplex_us). Off = one pointer test per
  /// check(); the pointee must outlive its attachment.
  void set_phase_times(obs::PhaseTimes* phases) { phases_ = phases; }
  [[nodiscard]] const std::string& name_of(TVar v) const {
    return vars_[static_cast<std::size_t>(v)].name;
  }

 private:
  struct Bound {
    DeltaRational value;
    Lit reason;
    bool active = false;
  };

  struct VarState {
    std::string name;
    Bound lower;
    Bound upper;
    DeltaRational beta;        // current assignment
    std::int32_t row = -1;     // row index if basic, -1 if non-basic
  };

  struct TrailEntry {
    TVar var;
    bool is_upper;
    Bound previous;
  };

  // Row: owner = expr (a zero-constant LinExpr; terms sorted by var id).
  struct Row {
    TVar owner;
    LinExpr expr;
  };

  bool set_bound(TVar v, const DeltaRational& bound, Lit reason,
                 bool is_upper);
  // Enqueues a basic variable into the violated-candidate worklist if it
  // is out of bounds and not already queued.
  void touch(TVar v);
  // Marks a row for implied-bound (re)derivation.
  void mark_row_dirty(std::int32_t rowIdx);
  // Derives the upper (or lower) bound a row forces on its owner, if every
  // column variable is bounded on the relevant side.
  void derive_row_bound(std::int32_t rowIdx, bool upper,
                        std::vector<ImpliedBound>& out);
  // Moves a non-basic variable and propagates into dependent basics.
  void update(TVar v, const DeltaRational& newVal);
  // Pivots basic leaving var (by row) with entering non-basic var, setting
  // the leaving var's value to `target`.
  void pivot_and_update(std::int32_t rowIdx, TVar entering,
                        const DeltaRational& target);
  void pivot(std::int32_t rowIdx, TVar entering);
  [[nodiscard]] const Rational* row_coeff(const Row& row, TVar v) const;
  void build_conflict_from_row(const Row& row, bool lowerViolated);
  [[nodiscard]] bool in_bounds(TVar v) const;
  void compute_delta();

  std::vector<VarState> vars_;
  std::vector<Row> rows_;
  // var -> rows whose terms mention it (column index), kept as sorted
  // vectors: columns are small, so binary-search insert/erase beats the
  // hash set on both the pivot loop and memory.
  std::vector<std::vector<std::int32_t>> cols_;
  std::unordered_map<LinExpr, TVar> slack_cache_;
  std::vector<TrailEntry> trail_;
  std::vector<Lit> conflict_;
  std::optional<Rational> concrete_delta_;
  std::uint64_t pivots_ = 0;
  std::uint64_t bound_flips_ = 0;
  std::uint64_t bland_fallbacks_ = 0;
  const Interrupt* interrupt_ = nullptr;
  obs::PhaseTimes* phases_ = nullptr;
  SimplexOptions options_;
  // Violated-candidate worklist: a superset of the out-of-bounds basic
  // variables (entries may have been repaired or pivoted non-basic since
  // enqueue; check() filters). violated_flag_ dedupes, indexed by var.
  std::vector<TVar> violated_;
  std::vector<bool> violated_flag_;
  // Implied-bound tracking (derive_bounds): bounds asserted and rows
  // touched since the last propagate_implied() drain. row_dirty_ dedupes.
  std::vector<std::pair<TVar, bool>> fresh_bounds_;  // (var, is_upper)
  std::vector<std::int32_t> dirty_rows_;
  std::vector<bool> row_dirty_;
  std::vector<bool> interesting_;  // vars whose implied bounds have takers
  // False only when every variable is known to satisfy its bounds; lets
  // check() short-circuit at propagation fixpoints where no bound moved.
  bool maybe_infeasible_ = false;
  // True while the last check() was cut short by an interrupt: betas are
  // mid-repair and must not be consumed as a model.
  bool interrupted_dirty_ = false;
};

}  // namespace psse::smt
