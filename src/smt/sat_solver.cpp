#include "smt/sat_solver.h"

#include <algorithm>
#include <cmath>

#include "smt/common.h"

namespace psse::smt {

namespace {
constexpr std::int32_t kNoConflict = -2;
constexpr std::int32_t kExplicitConflict = -1;  // pending_conflict_ holds lits

// Luby restart sequence: 1,1,2,1,1,2,4,...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ull << k) <= i + 1) ++k;
  --k;
  while ((1ull << k) - 1 != i) {
    i -= (1ull << k) - 1;
    k = 1;
    while ((1ull << k) <= i + 1) ++k;
    --k;
  }
  return 1ull << k;
}
}  // namespace

void SatSolver::set_options(const SatOptions& options) {
  PSSE_CHECK(options.var_decay > 0.0 && options.var_decay < 1.0,
             "set_options: var_decay outside (0, 1)");
  PSSE_CHECK(options.restart_base > 0, "set_options: restart_base == 0");
  PSSE_CHECK(options.theory_check_period > 0,
             "set_options: theory_check_period == 0");
  options_ = options;
  rng_state_ = options.seed == 0 ? 0x9e3779b97f4a7c15ull : options.seed;
  // Saved phases are a pure heuristic; re-seeding them with the configured
  // polarity only affects variables not yet (re)assigned.
  for (std::size_t v = 0; v < phase_.size(); ++v) {
    if (assigns_[v] == LBool::Undef) phase_[v] = options_.default_phase;
  }
}

std::uint64_t SatSolver::next_rand() {
  // xorshift64*: deterministic per seed, no global state.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dull;
}

Var SatSolver::new_var() {
  Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  var_info_.push_back({});
  phase_.push_back(options_.default_phase);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  card_occs_.emplace_back();
  card_occs_.emplace_back();
  heap_index_.push_back(-1);
  heap_insert(v);
  return v;
}

void SatSolver::attach_clause(std::int32_t id) {
  Clause& c = clauses_[static_cast<std::size_t>(id)];
  PSSE_ASSERT(c.lits.size() >= 2);
  watches_[static_cast<std::size_t>(c.lits[0].code())].push_back(
      {id, c.lits[1]});
  watches_[static_cast<std::size_t>(c.lits[1].code())].push_back(
      {id, c.lits[0]});
}

void SatSolver::attach_card(std::int32_t id) {
  Card& c = cards_[static_cast<std::size_t>(id)];
  for (Lit l : c.lits) {
    card_occs_[static_cast<std::size_t>(l.code())].push_back(id);
  }
}

void SatSolver::add_clause(std::vector<Lit> lits) {
  PSSE_CHECK(decision_level() == 0, "add_clause outside decision level 0");
  if (!replaying_) pristine_clauses_.push_back(lits);
  if (!ok_) return;
  // Normalise: sort, dedupe, drop false literals, detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    Lit l = lits[i];
    PSSE_CHECK(l.var() >= 0 && l.var() < num_vars(),
               "add_clause: unknown variable");
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return;  // tautology
    LBool v = value(l);
    if (v == LBool::True) return;  // already satisfied at level 0
    if (v == LBool::False) continue;
    kept.push_back(l);
  }
  if (kept.empty()) {
    ok_ = false;
    return;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], Reason::none())) ok_ = false;
    return;
  }
  std::int32_t id = static_cast<std::int32_t>(clauses_.size());
  clauses_.push_back(Clause{std::move(kept), 0.0, 0, false, false});
  attach_clause(id);
}

void SatSolver::add_at_most(std::vector<Lit> lits, std::uint32_t bound) {
  PSSE_CHECK(decision_level() == 0, "add_at_most outside decision level 0");
  if (!replaying_) pristine_cards_.push_back({lits, bound});
  if (!ok_) return;
  // Account for literals already fixed at level 0.
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (Lit l : lits) {
    PSSE_CHECK(l.var() >= 0 && l.var() < num_vars(),
               "add_at_most: unknown variable");
    LBool v = value(l);
    if (v == LBool::True) {
      if (bound == 0) {
        ok_ = false;
        return;
      }
      --bound;
    } else if (v == LBool::Undef) {
      kept.push_back(l);
    }
  }
  if (bound >= kept.size()) return;  // vacuous
  if (bound == 0) {
    for (Lit l : kept) {
      if (!enqueue(~l, Reason::none())) {
        ok_ = false;
        return;
      }
    }
    return;
  }
  std::int32_t id = static_cast<std::int32_t>(cards_.size());
  cards_.push_back(Card{std::move(kept), bound, 0, false});
  attach_card(id);
}

void SatSolver::add_at_least(std::vector<Lit> lits, std::uint32_t bound) {
  if (bound == 0) return;
  if (bound > lits.size()) {
    // More true literals demanded than exist: trivially UNSAT.
    add_clause({});
    return;
  }
  std::uint32_t complement = static_cast<std::uint32_t>(lits.size()) - bound;
  for (Lit& l : lits) l = ~l;
  add_at_most(std::move(lits), complement);
}

bool SatSolver::enqueue(Lit l, Reason reason) {
  LBool v = value(l);
  if (v == LBool::False) return false;
  if (v == LBool::True) return true;
  Var x = l.var();
  assigns_[static_cast<std::size_t>(x)] =
      l.negated() ? LBool::False : LBool::True;
  var_info_[static_cast<std::size_t>(x)] = {
      reason, decision_level(), static_cast<std::int32_t>(trail_.size())};
  phase_[static_cast<std::size_t>(x)] = !l.negated();
  trail_.push_back(l);
  return true;
}

std::int32_t SatSolver::propagate() {
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->propagate_us);
  while (qhead_ < trail_.size()) {
    // Cooperative abort: bail out of long propagation chains promptly. The
    // poll must precede the dequeue so an aborted call leaves qhead_ at the
    // first unprocessed literal — cancel_until's counter bookkeeping assumes
    // every dequeued literal was fully propagated. The early return is
    // indistinguishable from a fixpoint to the caller; the solve loop
    // re-polls the same (monotone) interrupt before extending the
    // assignment, so it can never conclude Sat from a partial propagation.
    if ((stats_.propagations & 4095) == 0 && interrupt_ != nullptr &&
        interrupt_->triggered()) {
      return kNoConflict;
    }
    Lit p = trail_[qhead_++];
    ++stats_.propagations;

    // Cardinality bookkeeping: p just became true.
    for (std::int32_t cid : card_occs_[static_cast<std::size_t>(p.code())]) {
      Card& card = cards_[static_cast<std::size_t>(cid)];
      if (card.deleted) continue;
      if (++card.num_true > card.bound) {
        // Conflict: bound+1 literals of the card are true.
        pending_conflict_.clear();
        for (Lit l : card.lits) {
          if (value(l) == LBool::True &&
              var_info_[static_cast<std::size_t>(l.var())].trail_pos <
                  static_cast<std::int32_t>(qhead_)) {
            pending_conflict_.push_back(~l);
            if (pending_conflict_.size() == card.bound + 1) break;
          }
        }
        PSSE_ASSERT(pending_conflict_.size() == card.bound + 1);
        return kExplicitConflict;
      }
      if (card.num_true == card.bound) {
        // All other literals become false.
        for (Lit l : card.lits) {
          if (value(l) == LBool::Undef) {
            bool okEnq = enqueue(~l, Reason::card(cid));
            PSSE_ASSERT(okEnq);
          }
        }
      }
    }

    // Watched-literal propagation over clauses watching ~p.
    std::vector<Watcher>& ws = watches_[static_cast<std::size_t>((~p).code())];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      Clause& c = clauses_[static_cast<std::size_t>(w.clause_id)];
      if (c.deleted) {
        ++i;
        continue;
      }
      Lit falseLit = ~p;
      if (c.lits[0] == falseLit) std::swap(c.lits[0], c.lits[1]);
      PSSE_ASSERT(c.lits[1] == falseLit);
      Lit first = c.lits[0];
      if (value(first) == LBool::True) {
        ws[j++] = {w.clause_id, first};
        ++i;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (value(c.lits[k]) != LBool::False) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<std::size_t>(c.lits[1].code())].push_back(
              {w.clause_id, first});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;
        continue;
      }
      // Clause is unit or conflicting.
      ws[j++] = {w.clause_id, first};
      ++i;
      if (value(first) == LBool::False) {
        // Conflict: copy the remaining watchers and bail out. qhead_ is
        // deliberately left mid-trail — cardinality counters only cover the
        // dequeued prefix, and cancel_until relies on that.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        return w.clause_id;
      }
      bool okEnq = enqueue(first, Reason::clause(w.clause_id));
      PSSE_ASSERT(okEnq);
    }
    ws.resize(j);
  }
  return kNoConflict;
}

bool SatSolver::theory_check(bool final, std::vector<Lit>& confl) {
  if (theory_ == nullptr) return true;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->theory_us);
  // Feed newly assigned theory literals in trail order.
  while (theory_qhead_ < trail_.size()) {
    Lit p = trail_[theory_qhead_++];
    if (!theory_->is_theory_var(p.var())) continue;
    ++theory_assert_count_;
    if (!theory_->on_assert(p)) {
      ++stats_.theory_conflicts;
      confl = theory_->conflict_explanation();
      return false;
    }
  }
  ++stats_.theory_checks;
  if (!theory_->check(final)) {
    ++stats_.theory_conflicts;
    confl = theory_->conflict_explanation();
    return false;
  }
  if (!final && options_.theory_propagation) {
    // The bound set is consistent: pull implied literals and enqueue them
    // with theory reasons, reconstructed lazily in reason_clause (the final
    // check skips this — everything is assigned there).
    theory_props_.clear();
    theory_->propagate(theory_props_);
    for (TheoryPropagation& tp : theory_props_) {
      const LBool v = value(tp.lit);
      if (v == LBool::True) continue;
      if (v == LBool::False) {
        // The premises imply tp.lit, yet it is assigned false: a theory
        // conflict (every literal of the clause is currently false).
        ++stats_.theory_conflicts;
        confl.clear();
        confl.push_back(tp.lit);
        for (Lit pr : tp.premises) confl.push_back(~pr);
        return false;
      }
      std::int32_t id = static_cast<std::int32_t>(theory_reasons_.size());
      theory_reasons_.push_back(std::move(tp.premises));
      bool okEnq = enqueue(tp.lit, Reason::theory(id));
      PSSE_ASSERT(okEnq);
      ++stats_.theory_propagations;
    }
  }
  return true;
}

void SatSolver::cancel_until(int level) {
  if (decision_level() <= level) return;
  std::int32_t bound = trail_lim_[static_cast<std::size_t>(level)];
  std::int32_t minTheoryReason = -1;
  for (std::int32_t c = static_cast<std::int32_t>(trail_.size()) - 1;
       c >= bound; --c) {
    Lit p = trail_[static_cast<std::size_t>(c)];
    Var x = p.var();
    // Theory-reason ids are trail-ordered, so the lowest retracted id
    // truncates exactly the premise sets of the unassigned suffix.
    const Reason& r = var_info_[static_cast<std::size_t>(x)].reason;
    if (r.kind == Reason::Kind::Theory &&
        (minTheoryReason < 0 || r.index < minTheoryReason)) {
      minTheoryReason = r.index;
    }
    // Undo cardinality counters for literals the theory of whose true form
    // was counted. The literal stored on the trail is the true one.
    if (static_cast<std::size_t>(c) < qhead_) {
      for (std::int32_t cid :
           card_occs_[static_cast<std::size_t>(p.code())]) {
        Card& card = cards_[static_cast<std::size_t>(cid)];
        if (!card.deleted) --card.num_true;
      }
    }
    assigns_[static_cast<std::size_t>(x)] = LBool::Undef;
    phase_[static_cast<std::size_t>(x)] = !p.negated();
    if (heap_index_[static_cast<std::size_t>(x)] < 0) heap_insert(x);
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
  if (minTheoryReason >= 0) {
    theory_reasons_.resize(static_cast<std::size_t>(minTheoryReason));
  }
  if (theory_qhead_ > trail_.size()) {
    // Retract theory bounds asserted beyond the new trail.
    std::size_t remaining = 0;
    for (std::size_t i = 0; i < trail_.size(); ++i) {
      if (theory_ != nullptr && theory_->is_theory_var(trail_[i].var())) {
        ++remaining;
      }
    }
    theory_qhead_ = trail_.size();
    theory_assert_count_ = remaining;
    if (theory_ != nullptr) theory_->pop_to_assertion_count(remaining);
  }
}

std::vector<Lit> SatSolver::reason_clause(Var v) {
  const VarInfo& info = var_info_[static_cast<std::size_t>(v)];
  std::vector<Lit> out;
  switch (info.reason.kind) {
    case Reason::Kind::None:
      break;
    case Reason::Kind::Clause: {
      const Clause& c = clauses_[static_cast<std::size_t>(info.reason.index)];
      out = c.lits;
      // Put the implied literal first.
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].var() == v) {
          std::swap(out[0], out[i]);
          break;
        }
      }
      break;
    }
    case Reason::Kind::Card: {
      const Card& card = cards_[static_cast<std::size_t>(info.reason.index)];
      // v was forced false because `bound` literals assigned earlier are
      // true: clause = ~v_lit \/ ~t_1 \/ ... \/ ~t_bound.
      Lit implied = value(v) == LBool::True ? Lit::pos(v) : Lit::neg(v);
      out.push_back(implied);
      std::int32_t myPos = info.trail_pos;
      std::uint32_t found = 0;
      for (Lit l : card.lits) {
        if (value(l) == LBool::True &&
            var_info_[static_cast<std::size_t>(l.var())].trail_pos < myPos) {
          out.push_back(~l);
          if (++found == card.bound) break;
        }
      }
      PSSE_ASSERT(found == card.bound);
      break;
    }
    case Reason::Kind::Theory: {
      // v was theory-propagated from its recorded premises: clause =
      // implied_lit \/ ~premise_1 \/ ... \/ ~premise_n.
      const std::vector<Lit>& premises =
          theory_reasons_[static_cast<std::size_t>(info.reason.index)];
      Lit implied = value(v) == LBool::True ? Lit::pos(v) : Lit::neg(v);
      out.reserve(premises.size() + 1);
      out.push_back(implied);
      for (Lit pr : premises) out.push_back(~pr);
      break;
    }
  }
  return out;
}

std::uint32_t SatSolver::compute_lbd(const std::vector<Lit>& lits) {
  std::vector<std::int32_t> levels;
  levels.reserve(lits.size());
  for (Lit l : lits) {
    levels.push_back(var_info_[static_cast<std::size_t>(l.var())].level);
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return static_cast<std::uint32_t>(levels.size());
}

void SatSolver::analyze(std::int32_t confl_clause,
                        const std::vector<Lit>& confl_lits_in,
                        std::vector<Lit>& out_learnt, int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(Lit());  // placeholder for the asserting literal
  std::vector<Lit> conflLits;
  if (confl_clause >= 0) {
    Clause& c = clauses_[static_cast<std::size_t>(confl_clause)];
    if (c.learned) clause_bump(c);
    conflLits = c.lits;
  } else {
    conflLits = confl_lits_in;
  }

  int pathC = 0;
  Lit p;  // undefined
  std::size_t index = trail_.size();
  std::vector<Lit> toClear;
  bool first = true;

  for (;;) {
    for (std::size_t i = first && !p.valid() ? 0 : 1; i < conflLits.size();
         ++i) {
      Lit q = conflLits[i];
      Var vq = q.var();
      const VarInfo& info = var_info_[static_cast<std::size_t>(vq)];
      if (!seen_[static_cast<std::size_t>(vq)] && info.level > 0) {
        seen_[static_cast<std::size_t>(vq)] = true;
        toClear.push_back(q);
        var_bump(vq);
        if (info.level >= decision_level()) {
          ++pathC;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    first = false;
    // Select the next literal on the trail to resolve.
    while (index > 0 && !seen_[static_cast<std::size_t>(
                            trail_[index - 1].var())]) {
      --index;
    }
    PSSE_ASSERT(index > 0);
    p = trail_[--index];
    seen_[static_cast<std::size_t>(p.var())] = false;
    --pathC;
    if (pathC <= 0) break;
    conflLits = reason_clause(p.var());
    PSSE_ASSERT(!conflLits.empty());
    // conflLits[0] is the implied literal p; resolve over the rest.
  }
  out_learnt[0] = ~p;

  // Clause minimisation: drop literals whose reason is fully subsumed by the
  // rest of the learnt clause.
  std::size_t w = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    Var v = out_learnt[i].var();
    const VarInfo& info = var_info_[static_cast<std::size_t>(v)];
    bool redundant = false;
    if (info.reason.kind != Reason::Kind::None) {
      std::vector<Lit> r = reason_clause(v);
      redundant = true;
      for (std::size_t k = 1; k < r.size(); ++k) {
        Var rv = r[k].var();
        const VarInfo& ri = var_info_[static_cast<std::size_t>(rv)];
        if (ri.level > 0 && !seen_[static_cast<std::size_t>(rv)]) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) out_learnt[w++] = out_learnt[i];
  }
  out_learnt.resize(w);

  for (Lit l : toClear) seen_[static_cast<std::size_t>(l.var())] = false;

  // Backjump level: second-highest level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (var_info_[static_cast<std::size_t>(out_learnt[i].var())].level >
          var_info_[static_cast<std::size_t>(out_learnt[maxI].var())].level) {
        maxI = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[maxI]);
    out_btlevel =
        var_info_[static_cast<std::size_t>(out_learnt[1].var())].level;
  }
}

void SatSolver::var_bump(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  int idx = heap_index_[static_cast<std::size_t>(v)];
  if (idx >= 0) heap_up(idx);
}

void SatSolver::var_decay() { var_inc_ /= options_.var_decay; }

void SatSolver::clause_bump(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > 1e20) {
    for (std::int32_t id : learned_ids_) {
      clauses_[static_cast<std::size_t>(id)].activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

Lit SatSolver::pick_branch() {
  if (options_.random_branch_permil > 0 && num_vars() > 0 &&
      (next_rand() & 1023) < options_.random_branch_permil) {
    // Diversification: occasionally branch on a random unassigned variable
    // (it stays in the heap; the VSIDS path skips assigned entries anyway).
    for (int tries = 0; tries < 8; ++tries) {
      Var v = static_cast<Var>(next_rand() %
                               static_cast<std::uint64_t>(num_vars()));
      if (value(v) == LBool::Undef) {
        return Lit(v, !phase_[static_cast<std::size_t>(v)]);
      }
    }
  }
  while (!heap_empty()) {
    Var v = heap_pop();
    if (value(v) == LBool::Undef) {
      return Lit(v, !phase_[static_cast<std::size_t>(v)]);
    }
  }
  return Lit();  // invalid: everything assigned
}

void SatSolver::reduce_db() {
  // Keep glue clauses (lbd <= 2) and clauses locked as reasons; drop the
  // least active half of the rest.
  std::vector<std::int32_t> candidates;
  std::vector<bool> locked(clauses_.size(), false);
  for (Lit l : trail_) {
    const VarInfo& info = var_info_[static_cast<std::size_t>(l.var())];
    if (info.reason.kind == Reason::Kind::Clause) {
      locked[static_cast<std::size_t>(info.reason.index)] = true;
    }
  }
  for (std::int32_t id : learned_ids_) {
    Clause& c = clauses_[static_cast<std::size_t>(id)];
    if (!c.deleted && c.lbd > 2 && !locked[static_cast<std::size_t>(id)]) {
      candidates.push_back(id);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](std::int32_t a, std::int32_t b) {
              return clauses_[static_cast<std::size_t>(a)].activity <
                     clauses_[static_cast<std::size_t>(b)].activity;
            });
  std::size_t toDelete = candidates.size() / 2;
  for (std::size_t i = 0; i < toDelete; ++i) {
    clauses_[static_cast<std::size_t>(candidates[i])].deleted = true;
    clauses_[static_cast<std::size_t>(candidates[i])].lits.clear();
    clauses_[static_cast<std::size_t>(candidates[i])].lits.shrink_to_fit();
    ++stats_.deleted_clauses;
  }
}

void SatSolver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_index_.begin(), heap_index_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v) {
    if (value(v) == LBool::Undef) heap_insert(v);
  }
}

SolveResult SatSolver::solve(const std::vector<Lit>& assumptions,
                             const Budget& budget) {
  if (!ok_) return SolveResult::Unsat;
  PSSE_CHECK(decision_level() == 0, "solve: not at decision level 0");
  for (Lit a : assumptions) {
    PSSE_CHECK(a.var() >= 0 && a.var() < num_vars(),
               "solve: unknown assumption variable");
  }
  const std::uint64_t conflictLimit =
      budget.max_conflicts == 0 ? UINT64_MAX
                                : stats_.conflicts + budget.max_conflicts;
  // One Interrupt object serves this whole solve: the propagate loop, the
  // decision loop, and (via the theory client) the simplex pivot loop all
  // poll the same deadline and stop token, so no layer can observe an abort
  // the others would miss.
  Interrupt interrupt = Interrupt::from(budget);
  struct InterruptScope {
    SatSolver* solver;
    explicit InterruptScope(SatSolver* s, const Interrupt* it) : solver(s) {
      solver->interrupt_ = it;
      if (solver->theory_ != nullptr) solver->theory_->set_interrupt(it);
    }
    ~InterruptScope() {
      solver->interrupt_ = nullptr;
      if (solver->theory_ != nullptr) solver->theory_->set_interrupt(nullptr);
    }
  } interruptScope{this, &interrupt};
  auto interrupted = [&]() { return interrupt.triggered(); };

  rebuild_order_heap();
  std::uint64_t restartCount = 0;
  std::uint64_t conflictsUntilRestart =
      options_.restart_base * luby(restartCount);
  std::uint64_t conflictsSinceRestart = 0;
  std::uint32_t fixpointsSinceTheory = 0;
  std::vector<Lit> learnt;
  std::vector<Lit> theoryConfl;

  for (;;) {
    std::int32_t confl = propagate();
    std::vector<Lit> conflLits;
    if (confl == kNoConflict) {
      // Propagation fixpoint: consult the theory (lazier configurations
      // skip some fixpoints; the final check below never is).
      if (++fixpointsSinceTheory >= options_.theory_check_period) {
        fixpointsSinceTheory = 0;
        if (!theory_check(false, theoryConfl)) {
          confl = kExplicitConflict;
          conflLits = theoryConfl;
        }
      }
    } else if (confl == kExplicitConflict) {
      conflLits = pending_conflict_;
    }

    if (confl != kNoConflict) {
      ++stats_.conflicts;
      ++conflictsSinceRestart;
      const std::vector<Lit>& cl =
          confl >= 0 ? clauses_[static_cast<std::size_t>(confl)].lits
                     : conflLits;
      int conflLevel = 0;
      for (Lit l : cl) {
        const int lv = var_info_[static_cast<std::size_t>(l.var())].level;
        if (lv > conflLevel) conflLevel = lv;
      }
      // A conflict entirely at level 0 closes the instance.
      if (decision_level() == 0 || conflLevel == 0) {
        ok_ = false;
        cancel_until(0);
        return SolveResult::Unsat;
      }
      // A lazy theory check can surface a conflict that lags the search:
      // every literal in it below the current decision level. analyze()
      // needs a current-level literal, so first backjump to the conflict's
      // own level (all its literals stay falsified there).
      if (confl == kExplicitConflict && conflLevel < decision_level()) {
        cancel_until(conflLevel);
      }
      int btlevel = 0;
      analyze(confl, conflLits, learnt, btlevel);
      cancel_until(btlevel);
      if (learnt.size() == 1) {
        bool okEnq = enqueue(learnt[0], Reason::none());
        PSSE_ASSERT(okEnq);
      } else {
        std::int32_t id = static_cast<std::int32_t>(clauses_.size());
        Clause c;
        c.lits = learnt;
        c.learned = true;
        c.lbd = compute_lbd(learnt);
        clauses_.push_back(std::move(c));
        attach_clause(id);
        learned_ids_.push_back(id);
        ++stats_.learned_clauses;
        bool okEnq = enqueue(learnt[0], Reason::clause(id));
        PSSE_ASSERT(okEnq);
      }
      var_decay();
      clause_inc_ /= 0.999;

      if (stats_.conflicts >= conflictLimit || interrupted()) {
        cancel_until(0);
        return SolveResult::Unknown;
      }
      if (learned_ids_.size() > 8000 + 2 * clauses_.size() / 3) {
        reduce_db();
      }
      if (conflictsSinceRestart >= conflictsUntilRestart) {
        ++stats_.restarts;
        ++restartCount;
        conflictsSinceRestart = 0;
        conflictsUntilRestart = options_.restart_base * luby(restartCount);
        cancel_until(static_cast<int>(assumptions.size()) <= decision_level()
                         ? static_cast<int>(assumptions.size())
                         : 0);
      }
      continue;
    }

    // No conflict: extend the assignment. The interrupt check also covers
    // early returns from propagate() and from a bailed-out theory check —
    // the interrupt is monotone, so if a lower layer saw it, so do we.
    if (interrupted()) {
      cancel_until(0);
      return SolveResult::Unknown;
    }
    // Theory propagation enqueued literals past the BCP fixpoint: run
    // boolean propagation over them before deciding (they may force clause
    // or cardinality propagations, or a conflict). The interrupt check
    // above keeps this from looping on a bailed-out propagate().
    if (qhead_ < trail_.size()) continue;
    Lit next;
    // Assumption decisions come first, one per level.
    while (decision_level() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::True) {
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      } else if (value(a) == LBool::False) {
        cancel_until(0);
        return SolveResult::Unsat;  // assumptions inconsistent
      } else {
        next = a;
        break;
      }
    }
    if (!next.valid()) {
      next = pick_branch();
      if (next.valid()) ++stats_.decisions;
    } else {
      ++stats_.decisions;
    }
    if (!next.valid()) {
      // Full assignment: ask the theory for a final verdict.
      if (!theory_check(true, theoryConfl)) {
        int conflLevel = 0;
        for (Lit l : theoryConfl) {
          const int lv = var_info_[static_cast<std::size_t>(l.var())].level;
          if (lv > conflLevel) conflLevel = lv;
        }
        if (decision_level() == 0 || conflLevel == 0 ||
            theoryConfl.empty()) {
          ok_ = false;
          cancel_until(0);
          return SolveResult::Unsat;
        }
        // Same lagging-conflict backjump as in the main loop: with lazy
        // theory checks the conflict may live entirely below the current
        // decision level.
        if (conflLevel < decision_level()) cancel_until(conflLevel);
        ++stats_.conflicts;
        int btlevel = 0;
        analyze(kExplicitConflict, theoryConfl, learnt, btlevel);
        cancel_until(btlevel);
        if (learnt.size() == 1) {
          bool okEnq = enqueue(learnt[0], Reason::none());
          PSSE_ASSERT(okEnq);
        } else {
          std::int32_t id = static_cast<std::int32_t>(clauses_.size());
          Clause c;
          c.lits = learnt;
          c.learned = true;
          c.lbd = compute_lbd(learnt);
          clauses_.push_back(std::move(c));
          attach_clause(id);
          learned_ids_.push_back(id);
          ++stats_.learned_clauses;
          bool okEnq = enqueue(learnt[0], Reason::clause(id));
          PSSE_ASSERT(okEnq);
        }
        continue;
      }
      // An interrupted theory check may report "consistent" without having
      // restored bound feasibility; never conclude Sat in that case.
      if (interrupted()) {
        cancel_until(0);
        return SolveResult::Unknown;
      }
      // Satisfiable: snapshot the model.
      if (theory_ != nullptr) theory_->on_model();
      model_.assign(static_cast<std::size_t>(num_vars()), false);
      for (Var v = 0; v < num_vars(); ++v) {
        model_[static_cast<std::size_t>(v)] = value(v) == LBool::True;
      }
      cancel_until(0);
      return SolveResult::Sat;
    }
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
    bool okEnq = enqueue(next, Reason::none());
    PSSE_ASSERT(okEnq);
  }
}

bool SatSolver::model_value(Var v) const {
  PSSE_CHECK(v >= 0 && static_cast<std::size_t>(v) < model_.size(),
             "model_value: no model for variable");
  return model_[static_cast<std::size_t>(v)];
}

void SatSolver::push() {
  PSSE_CHECK(decision_level() == 0, "push: not at decision level 0");
  save_points_.push_back(
      {num_vars(), pristine_clauses_.size(), pristine_cards_.size()});
}

void SatSolver::pop() {
  PSSE_CHECK(!save_points_.empty(), "pop without matching push");
  PSSE_CHECK(decision_level() == 0, "pop: not at decision level 0");
  SavePoint sp = save_points_.back();
  save_points_.pop_back();

  pristine_clauses_.resize(sp.num_pristine_clauses);
  pristine_cards_.resize(sp.num_pristine_cards);

  // Rebuild the entire database from the pristine constraints: learned
  // clauses and level-0 facts derived after the push may depend on popped
  // constraints, so discarding everything and replaying is the only simple
  // sound option.
  stats_.deleted_clauses += learned_ids_.size();
  learned_ids_.clear();
  clauses_.clear();
  cards_.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  theory_qhead_ = 0;
  theory_assert_count_ = 0;
  theory_reasons_.clear();  // no assigned variables reference the log now
  if (theory_ != nullptr) theory_->pop_to_assertion_count(0);

  assigns_.assign(static_cast<std::size_t>(sp.num_vars), LBool::Undef);
  var_info_.assign(static_cast<std::size_t>(sp.num_vars), {});
  phase_.resize(static_cast<std::size_t>(sp.num_vars));
  activity_.resize(static_cast<std::size_t>(sp.num_vars));
  seen_.assign(static_cast<std::size_t>(sp.num_vars), false);
  watches_.assign(static_cast<std::size_t>(2 * sp.num_vars), {});
  card_occs_.assign(static_cast<std::size_t>(2 * sp.num_vars), {});
  heap_index_.assign(static_cast<std::size_t>(sp.num_vars), -1);
  heap_.clear();

  ok_ = true;
  replaying_ = true;
  for (const auto& lits : pristine_clauses_) add_clause(lits);
  for (const auto& card : pristine_cards_) add_at_most(card.lits, card.bound);
  replaying_ = false;
  rebuild_order_heap();
}

std::size_t SatSolver::footprint_bytes() const {
  std::size_t bytes = 0;
  for (const Clause& c : clauses_) {
    bytes += sizeof(Clause) + c.lits.capacity() * sizeof(Lit);
  }
  for (const Card& c : cards_) {
    bytes += sizeof(Card) + c.lits.capacity() * sizeof(Lit);
  }
  for (const auto& w : watches_) bytes += w.capacity() * sizeof(Watcher);
  for (const auto& o : card_occs_) {
    bytes += o.capacity() * sizeof(std::int32_t);
  }
  bytes += assigns_.capacity() * sizeof(LBool);
  bytes += var_info_.capacity() * sizeof(VarInfo);
  bytes += activity_.capacity() * sizeof(double);
  bytes += trail_.capacity() * sizeof(Lit);
  for (const auto& r : theory_reasons_) bytes += r.capacity() * sizeof(Lit);
  bytes += heap_.capacity() * sizeof(Var);
  bytes += heap_index_.capacity() * sizeof(std::int32_t);
  return bytes;
}

void SatSolver::heap_insert(Var v) {
  heap_index_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_up(static_cast<int>(heap_.size()) - 1);
}

Var SatSolver::heap_pop() {
  PSSE_ASSERT(!heap_.empty());
  Var top = heap_[0];
  heap_index_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_down(0);
  }
  return top;
}

void SatSolver::heap_up(int i) {
  Var v = heap_[static_cast<std::size_t>(i)];
  double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    int parent = (i - 1) / 2;
    Var pv = heap_[static_cast<std::size_t>(parent)];
    if (activity_[static_cast<std::size_t>(pv)] >= act) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_index_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_index_[static_cast<std::size_t>(v)] = i;
}

void SatSolver::heap_down(int i) {
  Var v = heap_[static_cast<std::size_t>(i)];
  double act = activity_[static_cast<std::size_t>(v)];
  int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(
            child + 1)])] >
            activity_[static_cast<std::size_t>(
                heap_[static_cast<std::size_t>(child)])]) {
      ++child;
    }
    Var cv = heap_[static_cast<std::size_t>(child)];
    if (act >= activity_[static_cast<std::size_t>(cv)]) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_index_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_index_[static_cast<std::size_t>(v)] = i;
}

}  // namespace psse::smt
