#include "smt/sat_solver.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "smt/common.h"

namespace psse::smt {

namespace {
// propagate() sentinels: no conflict found, and "conflict is not a clause"
// (cardinality or theory — the literals are in pending_conflict_ / the
// caller's buffer). Real refs stay below both: alloc_clause caps the arena.
constexpr ClauseRef kNoConflictRef = kClauseRefUndef;     // 0xFFFFFFFF
constexpr ClauseRef kExplicitConflictRef = 0xFFFFFFFEu;

// Luby restart sequence: 1,1,2,1,1,2,4,...
std::uint64_t luby(std::uint64_t i) {
  std::uint64_t k = 1;
  while ((1ull << k) <= i + 1) ++k;
  --k;
  while ((1ull << k) - 1 != i) {
    i -= (1ull << k) - 1;
    k = 1;
    while ((1ull << k) <= i + 1) ++k;
    --k;
  }
  return 1ull << k;
}
}  // namespace

void SatSolver::set_options(const SatOptions& options) {
  PSSE_CHECK(options.var_decay > 0.0 && options.var_decay < 1.0,
             "set_options: var_decay outside (0, 1)");
  PSSE_CHECK(options.restart_base > 0, "set_options: restart_base == 0");
  PSSE_CHECK(options.theory_check_period > 0,
             "set_options: theory_check_period == 0");
  PSSE_CHECK(options.reduce_db_base > 0, "set_options: reduce_db_base == 0");
  PSSE_CHECK(options.engine.geometric_factor > 1.0,
             "set_options: geometric_factor <= 1");
  PSSE_CHECK(options.engine.ema_margin > 1.0, "set_options: ema_margin <= 1");
  PSSE_CHECK(options.engine.lrb_alpha_decay >= 0.0,
             "set_options: lrb_alpha_decay < 0");
  options_ = options;
  lrb_alpha_ = 0.4;
  rng_state_ = options.seed == 0 ? 0x9e3779b97f4a7c15ull : options.seed;
  // Saved phases are a pure heuristic; re-seeding them with the configured
  // polarity only affects variables not yet (re)assigned.
  for (std::size_t v = 0; v < phase_.size(); ++v) {
    if (assigns_[v] == LBool::Undef) phase_[v] = options_.default_phase;
  }
}

std::uint64_t SatSolver::next_rand() {
  // xorshift64*: deterministic per seed, no global state.
  rng_state_ ^= rng_state_ >> 12;
  rng_state_ ^= rng_state_ << 25;
  rng_state_ ^= rng_state_ >> 27;
  return rng_state_ * 0x2545f4914f6cdd1dull;
}

Var SatSolver::new_var() {
  Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  var_info_.push_back({});
  phase_.push_back(options_.default_phase);
  activity_.push_back(0.0);
  seen_.push_back(false);
  watches_.emplace_back();
  watches_.emplace_back();
  card_occs_.emplace_back();
  card_occs_.emplace_back();
  lrb_assigned_.push_back(0);
  lrb_participated_.push_back(0);
  heap_index_.push_back(-1);
  heap_insert(v);
  return v;
}

ClauseRef SatSolver::alloc_clause(const std::vector<Lit>& lits, bool learned,
                                  std::uint32_t lbd, std::uint32_t depth) {
  PSSE_ASSERT(lits.size() >= 2);
  PSSE_ASSERT(depth <= 0xFFFFu);
  // Keep every valid ref below the propagate() sentinels.
  PSSE_CHECK(arena_.size() + kHeaderWords + lits.size() < kExplicitConflictRef,
             "alloc_clause: clause arena full");
  ClauseRef r = static_cast<ClauseRef>(arena_.size());
  arena_.push_back((static_cast<std::uint32_t>(lits.size()) << kSizeShift) |
                   (learned ? kLearnedBit : 0u));
  arena_.push_back(std::min<std::uint32_t>(lbd, 0xFFFFu) | (depth << 16));
  arena_.push_back(std::bit_cast<std::uint32_t>(0.0f));
  for (Lit l : lits) {
    arena_.push_back(static_cast<std::uint32_t>(l.code()));
  }
  return r;
}

float SatSolver::clause_activity(ClauseRef r) const {
  return std::bit_cast<float>(arena_[r + 2]);
}

void SatSolver::set_clause_activity(ClauseRef r, float a) {
  arena_[r + 2] = std::bit_cast<std::uint32_t>(a);
}

void SatSolver::delete_clause(ClauseRef r) {
  PSSE_ASSERT(!clause_deleted(r));
  arena_[r] |= kDeletedBit;
  // The words stay in place (watchers may still reference them lazily) but
  // count as reclaimable; garbage_collect() drops them.
  wasted_words_ += kHeaderWords + clause_size(r);
}

void SatSolver::attach_clause(ClauseRef r) {
  PSSE_ASSERT(clause_size(r) >= 2);
  Lit l0 = clause_lit(r, 0);
  Lit l1 = clause_lit(r, 1);
  watches_[static_cast<std::size_t>(l0.code())].push_back({r, l1});
  watches_[static_cast<std::size_t>(l1.code())].push_back({r, l0});
}

void SatSolver::attach_card(std::uint32_t id) {
  Card& c = cards_[static_cast<std::size_t>(id)];
  for (Lit l : c.lits) {
    card_occs_[static_cast<std::size_t>(l.code())].push_back(id);
  }
}

void SatSolver::add_clause(std::vector<Lit> lits) {
  PSSE_CHECK(decision_level() == 0, "add_clause outside decision level 0");
  if (!replaying_) pristine_clauses_.push_back(lits);
  if (!ok_) return;
  // Normalise: sort, dedupe, drop false literals, detect tautology/satisfied.
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    Lit l = lits[i];
    PSSE_CHECK(l.var() >= 0 && l.var() < num_vars(),
               "add_clause: unknown variable");
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return;  // tautology
    LBool v = value(l);
    if (v == LBool::True) return;  // already satisfied at level 0
    if (v == LBool::False) continue;
    kept.push_back(l);
  }
  if (kept.empty()) {
    ok_ = false;
    return;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], Reason::none())) ok_ = false;
    return;
  }
  ClauseRef r = alloc_clause(kept, /*learned=*/false, 0, push_depth());
  attach_clause(r);
  ++num_problem_clauses_;
}

void SatSolver::add_at_most(std::vector<Lit> lits, std::uint32_t bound) {
  PSSE_CHECK(decision_level() == 0, "add_at_most outside decision level 0");
  if (!replaying_) pristine_cards_.push_back({lits, bound});
  if (!ok_) return;
  // Account for literals already fixed at level 0.
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (Lit l : lits) {
    PSSE_CHECK(l.var() >= 0 && l.var() < num_vars(),
               "add_at_most: unknown variable");
    LBool v = value(l);
    if (v == LBool::True) {
      if (bound == 0) {
        ok_ = false;
        return;
      }
      --bound;
    } else if (v == LBool::Undef) {
      kept.push_back(l);
    }
  }
  if (bound >= kept.size()) return;  // vacuous
  if (bound == 0) {
    for (Lit l : kept) {
      if (!enqueue(~l, Reason::none())) {
        ok_ = false;
        return;
      }
    }
    return;
  }
  std::uint32_t id = static_cast<std::uint32_t>(cards_.size());
  cards_.push_back(Card{std::move(kept), bound, 0, false});
  attach_card(id);
}

void SatSolver::add_at_least(std::vector<Lit> lits, std::uint32_t bound) {
  if (bound == 0) return;
  if (bound > lits.size()) {
    // More true literals demanded than exist: trivially UNSAT.
    add_clause({});
    return;
  }
  std::uint32_t complement = static_cast<std::uint32_t>(lits.size()) - bound;
  for (Lit& l : lits) l = ~l;
  add_at_most(std::move(lits), complement);
}

bool SatSolver::enqueue(Lit l, Reason reason) {
  LBool v = value(l);
  if (v == LBool::False) return false;
  if (v == LBool::True) return true;
  Var x = l.var();
  assigns_[static_cast<std::size_t>(x)] =
      l.negated() ? LBool::False : LBool::True;
  var_info_[static_cast<std::size_t>(x)] = {
      reason, decision_level(), static_cast<std::int32_t>(trail_.size())};
  phase_[static_cast<std::size_t>(x)] = !l.negated();
  if (options_.engine.branching == BranchingHeuristic::kLrb) {
    // Open this variable's LRB assignment interval.
    lrb_assigned_[static_cast<std::size_t>(x)] = stats_.conflicts;
    lrb_participated_[static_cast<std::size_t>(x)] = 0;
  }
  trail_.push_back(l);
  return true;
}

ClauseRef SatSolver::propagate() {
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->propagate_us);
  while (qhead_ < trail_.size()) {
    // Cooperative abort: bail out of long propagation chains promptly. The
    // poll must precede the dequeue so an aborted call leaves qhead_ at the
    // first unprocessed literal — cancel_until's counter bookkeeping assumes
    // every dequeued literal was fully propagated. The early return is
    // indistinguishable from a fixpoint to the caller; the solve loop
    // re-polls the same (monotone) interrupt before extending the
    // assignment, so it can never conclude Sat from a partial propagation.
    if ((stats_.propagations & 4095) == 0 && interrupt_ != nullptr &&
        interrupt_->triggered()) {
      return kNoConflictRef;
    }
    Lit p = trail_[qhead_++];
    ++stats_.propagations;

    // Cardinality bookkeeping: p just became true.
    for (std::uint32_t cid : card_occs_[static_cast<std::size_t>(p.code())]) {
      Card& card = cards_[static_cast<std::size_t>(cid)];
      if (card.deleted) continue;
      if (++card.num_true > card.bound) {
        // Conflict: bound+1 literals of the card are true.
        pending_conflict_.clear();
        for (Lit l : card.lits) {
          if (value(l) == LBool::True &&
              var_info_[static_cast<std::size_t>(l.var())].trail_pos <
                  static_cast<std::int32_t>(qhead_)) {
            pending_conflict_.push_back(~l);
            if (pending_conflict_.size() == card.bound + 1) break;
          }
        }
        PSSE_ASSERT(pending_conflict_.size() == card.bound + 1);
        return kExplicitConflictRef;
      }
      if (card.num_true == card.bound) {
        // All other literals become false.
        for (Lit l : card.lits) {
          if (value(l) == LBool::Undef) {
            bool okEnq = enqueue(~l, Reason::card(cid));
            PSSE_ASSERT(okEnq);
          }
        }
      }
    }

    // Watched-literal propagation over clauses watching ~p. No arena
    // allocation happens inside this loop, so raw pointers into arena_
    // stay valid across iterations.
    const Lit falseLit = ~p;
    const std::uint32_t falseCode = static_cast<std::uint32_t>(falseLit.code());
    std::vector<Watcher>& ws =
        watches_[static_cast<std::size_t>(falseLit.code())];
    std::size_t i = 0, j = 0;
    while (i < ws.size()) {
      Watcher w = ws[i];
      if (value(w.blocker) == LBool::True) {
        ws[j++] = ws[i++];
        continue;
      }
      std::uint32_t* const base = arena_.data() + w.cref;
      if ((base[0] & kDeletedBit) != 0) {
        // Lazily drop watchers of clauses reduce_db deleted.
        ++i;
        continue;
      }
      const std::uint32_t size = base[0] >> kSizeShift;
      std::uint32_t* const lits = base + kHeaderWords;
      if (lits[0] == falseCode) std::swap(lits[0], lits[1]);
      PSSE_ASSERT(lits[1] == falseCode);
      const Lit first = Lit::from_code(static_cast<std::int32_t>(lits[0]));
      if (value(first) == LBool::True) {
        ws[j++] = {w.cref, first};
        ++i;
        continue;
      }
      // Look for a new literal to watch.
      bool moved = false;
      for (std::uint32_t k = 2; k < size; ++k) {
        const Lit lk = Lit::from_code(static_cast<std::int32_t>(lits[k]));
        if (value(lk) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[static_cast<std::size_t>(lk.code())].push_back(
              {w.cref, first});
          moved = true;
          break;
        }
      }
      if (moved) {
        ++i;
        continue;
      }
      // Clause is unit or conflicting.
      ws[j++] = {w.cref, first};
      ++i;
      if (value(first) == LBool::False) {
        // Conflict: copy the remaining watchers and bail out. qhead_ is
        // deliberately left mid-trail — cardinality counters only cover the
        // dequeued prefix, and cancel_until relies on that.
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        return w.cref;
      }
      bool okEnq = enqueue(first, Reason::clause(w.cref));
      PSSE_ASSERT(okEnq);
    }
    ws.resize(j);
  }
  return kNoConflictRef;
}

bool SatSolver::theory_check(bool final, std::vector<Lit>& confl) {
  if (theory_ == nullptr) return true;
  obs::ScopedPhaseTimer timer(phases_ == nullptr ? nullptr
                                                 : &phases_->theory_us);
  // Feed newly assigned theory literals in trail order.
  while (theory_qhead_ < trail_.size()) {
    Lit p = trail_[theory_qhead_++];
    if (!theory_->is_theory_var(p.var())) continue;
    ++theory_assert_count_;
    if (!theory_->on_assert(p)) {
      ++stats_.theory_conflicts;
      confl = theory_->conflict_explanation();
      return false;
    }
  }
  ++stats_.theory_checks;
  if (!theory_->check(final)) {
    ++stats_.theory_conflicts;
    confl = theory_->conflict_explanation();
    return false;
  }
  if (!final && options_.theory_propagation) {
    // The bound set is consistent: pull implied literals and enqueue them
    // with theory reasons, reconstructed lazily in reason_clause (the final
    // check skips this — everything is assigned there).
    theory_props_.clear();
    theory_->propagate(theory_props_);
    for (TheoryPropagation& tp : theory_props_) {
      const LBool v = value(tp.lit);
      if (v == LBool::True) continue;
      if (v == LBool::False) {
        // The premises imply tp.lit, yet it is assigned false: a theory
        // conflict (every literal of the clause is currently false).
        ++stats_.theory_conflicts;
        confl.clear();
        confl.push_back(tp.lit);
        for (Lit pr : tp.premises) confl.push_back(~pr);
        return false;
      }
      std::uint32_t id = static_cast<std::uint32_t>(theory_reasons_.size());
      theory_reasons_.push_back(std::move(tp.premises));
      bool okEnq = enqueue(tp.lit, Reason::theory(id));
      PSSE_ASSERT(okEnq);
      ++stats_.theory_propagations;
    }
  }
  return true;
}

void SatSolver::cancel_until(int level) {
  if (decision_level() <= level) return;
  const bool lrbOn =
      options_.engine.branching == BranchingHeuristic::kLrb;
  std::int32_t bound = trail_lim_[static_cast<std::size_t>(level)];
  std::int32_t minTheoryReason = -1;
  for (std::int32_t c = static_cast<std::int32_t>(trail_.size()) - 1;
       c >= bound; --c) {
    Lit p = trail_[static_cast<std::size_t>(c)];
    Var x = p.var();
    // Theory-reason ids are trail-ordered, so the lowest retracted id
    // truncates exactly the premise sets of the unassigned suffix.
    const Reason& r = var_info_[static_cast<std::size_t>(x)].reason;
    if (r.kind == Reason::Kind::Theory &&
        (minTheoryReason < 0 ||
         static_cast<std::int32_t>(r.index) < minTheoryReason)) {
      minTheoryReason = static_cast<std::int32_t>(r.index);
    }
    // Undo cardinality counters for literals the theory of whose true form
    // was counted. The literal stored on the trail is the true one.
    if (static_cast<std::size_t>(c) < qhead_) {
      for (std::uint32_t cid :
           card_occs_[static_cast<std::size_t>(p.code())]) {
        Card& card = cards_[static_cast<std::size_t>(cid)];
        if (!card.deleted) --card.num_true;
      }
    }
    assigns_[static_cast<std::size_t>(x)] = LBool::Undef;
    phase_[static_cast<std::size_t>(x)] = !p.negated();
    if (lrbOn) {
      // LRB scoring point: fold the learning rate (conflicts this variable
      // helped analyze per conflict it sat assigned through) into its
      // activity as an EMA, then restore heap order for the moved key.
      const std::uint64_t interval =
          stats_.conflicts - lrb_assigned_[static_cast<std::size_t>(x)];
      if (interval > 0) {
        const double rate =
            static_cast<double>(lrb_participated_[static_cast<std::size_t>(x)]) /
            static_cast<double>(interval);
        double& act = activity_[static_cast<std::size_t>(x)];
        act = (1.0 - lrb_alpha_) * act + lrb_alpha_ * rate;
      }
      const std::int32_t idx = heap_index_[static_cast<std::size_t>(x)];
      if (idx >= 0) {
        heap_up(static_cast<int>(idx));
        heap_down(heap_index_[static_cast<std::size_t>(x)]);
      } else {
        heap_insert(x);
      }
    } else if (heap_index_[static_cast<std::size_t>(x)] < 0) {
      heap_insert(x);
    }
  }
  trail_.resize(static_cast<std::size_t>(bound));
  trail_lim_.resize(static_cast<std::size_t>(level));
  qhead_ = trail_.size();
  if (minTheoryReason >= 0) {
    theory_reasons_.resize(static_cast<std::size_t>(minTheoryReason));
  }
  if (theory_qhead_ > trail_.size()) {
    // Retract theory bounds asserted beyond the new trail.
    std::size_t remaining = 0;
    for (std::size_t i = 0; i < trail_.size(); ++i) {
      if (theory_ != nullptr && theory_->is_theory_var(trail_[i].var())) {
        ++remaining;
      }
    }
    theory_qhead_ = trail_.size();
    theory_assert_count_ = remaining;
    if (theory_ != nullptr) theory_->pop_to_assertion_count(remaining);
  }
}

std::vector<Lit> SatSolver::reason_clause(Var v) {
  const VarInfo& info = var_info_[static_cast<std::size_t>(v)];
  std::vector<Lit> out;
  switch (info.reason.kind) {
    case Reason::Kind::None:
      break;
    case Reason::Kind::Clause: {
      const ClauseRef r = info.reason.index;
      const std::uint32_t n = clause_size(r);
      out.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) out.push_back(clause_lit(r, i));
      // Put the implied literal first.
      for (std::size_t i = 0; i < out.size(); ++i) {
        if (out[i].var() == v) {
          std::swap(out[0], out[i]);
          break;
        }
      }
      break;
    }
    case Reason::Kind::Card: {
      const Card& card = cards_[static_cast<std::size_t>(info.reason.index)];
      // v was forced false because `bound` literals assigned earlier are
      // true: clause = ~v_lit \/ ~t_1 \/ ... \/ ~t_bound.
      Lit implied = value(v) == LBool::True ? Lit::pos(v) : Lit::neg(v);
      out.push_back(implied);
      std::int32_t myPos = info.trail_pos;
      std::uint32_t found = 0;
      for (Lit l : card.lits) {
        if (value(l) == LBool::True &&
            var_info_[static_cast<std::size_t>(l.var())].trail_pos < myPos) {
          out.push_back(~l);
          if (++found == card.bound) break;
        }
      }
      PSSE_ASSERT(found == card.bound);
      break;
    }
    case Reason::Kind::Theory: {
      // v was theory-propagated from its recorded premises: clause =
      // implied_lit \/ ~premise_1 \/ ... \/ ~premise_n.
      const std::vector<Lit>& premises =
          theory_reasons_[static_cast<std::size_t>(info.reason.index)];
      Lit implied = value(v) == LBool::True ? Lit::pos(v) : Lit::neg(v);
      out.reserve(premises.size() + 1);
      out.push_back(implied);
      for (Lit pr : premises) out.push_back(~pr);
      break;
    }
  }
  return out;
}

std::uint32_t SatSolver::compute_lbd(const std::vector<Lit>& lits) {
  std::vector<std::int32_t> levels;
  levels.reserve(lits.size());
  for (Lit l : lits) {
    levels.push_back(var_info_[static_cast<std::size_t>(l.var())].level);
  }
  std::sort(levels.begin(), levels.end());
  levels.erase(std::unique(levels.begin(), levels.end()), levels.end());
  return static_cast<std::uint32_t>(levels.size());
}

void SatSolver::analyze(ClauseRef confl_clause,
                        const std::vector<Lit>& confl_lits_in,
                        std::vector<Lit>& out_learnt, int& out_btlevel) {
  out_learnt.clear();
  out_learnt.push_back(Lit());  // placeholder for the asserting literal
  std::vector<Lit> conflLits;
  if (confl_clause < kExplicitConflictRef) {
    if (clause_learned(confl_clause)) clause_bump(confl_clause);
    const std::uint32_t n = clause_size(confl_clause);
    conflLits.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      conflLits.push_back(clause_lit(confl_clause, i));
    }
  } else {
    conflLits = confl_lits_in;
  }

  int pathC = 0;
  Lit p;  // undefined
  std::size_t index = trail_.size();
  std::vector<Lit> toClear;
  bool first = true;

  for (;;) {
    for (std::size_t i = first && !p.valid() ? 0 : 1; i < conflLits.size();
         ++i) {
      Lit q = conflLits[i];
      Var vq = q.var();
      const VarInfo& info = var_info_[static_cast<std::size_t>(vq)];
      if (!seen_[static_cast<std::size_t>(vq)] && info.level > 0) {
        seen_[static_cast<std::size_t>(vq)] = true;
        toClear.push_back(q);
        var_bump(vq);
        if (info.level >= decision_level()) {
          ++pathC;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    first = false;
    // Select the next literal on the trail to resolve.
    while (index > 0 && !seen_[static_cast<std::size_t>(
                            trail_[index - 1].var())]) {
      --index;
    }
    PSSE_ASSERT(index > 0);
    p = trail_[--index];
    seen_[static_cast<std::size_t>(p.var())] = false;
    --pathC;
    if (pathC <= 0) break;
    conflLits = reason_clause(p.var());
    PSSE_ASSERT(!conflLits.empty());
    // conflLits[0] is the implied literal p; resolve over the rest.
  }
  out_learnt[0] = ~p;

  // Clause minimisation: drop literals whose reason is fully subsumed by the
  // rest of the learnt clause.
  std::size_t w = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    Var v = out_learnt[i].var();
    const VarInfo& info = var_info_[static_cast<std::size_t>(v)];
    bool redundant = false;
    if (info.reason.kind != Reason::Kind::None) {
      std::vector<Lit> r = reason_clause(v);
      redundant = true;
      for (std::size_t k = 1; k < r.size(); ++k) {
        Var rv = r[k].var();
        const VarInfo& ri = var_info_[static_cast<std::size_t>(rv)];
        if (ri.level > 0 && !seen_[static_cast<std::size_t>(rv)]) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) out_learnt[w++] = out_learnt[i];
  }
  out_learnt.resize(w);

  for (Lit l : toClear) seen_[static_cast<std::size_t>(l.var())] = false;

  // Backjump level: second-highest level in the clause.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t maxI = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (var_info_[static_cast<std::size_t>(out_learnt[i].var())].level >
          var_info_[static_cast<std::size_t>(out_learnt[maxI].var())].level) {
        maxI = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[maxI]);
    out_btlevel =
        var_info_[static_cast<std::size_t>(out_learnt[1].var())].level;
  }
}

void SatSolver::var_bump(Var v) {
  if (options_.engine.branching == BranchingHeuristic::kLrb) {
    // Under LRB a conflict-analysis appearance is *participation*, not an
    // immediate activity bump: the rate is folded into the score when the
    // variable is unassigned (cancel_until).
    ++lrb_participated_[static_cast<std::size_t>(v)];
    return;
  }
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  int idx = heap_index_[static_cast<std::size_t>(v)];
  if (idx >= 0) heap_up(idx);
}

void SatSolver::var_decay() {
  if (options_.engine.branching == BranchingHeuristic::kLrb) {
    // LRB's per-conflict step: anneal the EMA weight towards its floor so
    // early noisy rates stop dominating mature scores.
    lrb_alpha_ =
        std::max(0.06, lrb_alpha_ - options_.engine.lrb_alpha_decay);
    return;
  }
  var_inc_ /= options_.var_decay;
}

void SatSolver::clause_bump(ClauseRef r) {
  // Clause activities are packed floats; the increment stays a double and
  // the sum is rounded once per bump.
  float a = static_cast<float>(clause_activity(r) + clause_inc_);
  set_clause_activity(r, a);
  if (a > 1e20f) {
    for (ClauseRef lr : learned_refs_) {
      set_clause_activity(lr, clause_activity(lr) * 1e-20f);
    }
    clause_inc_ *= 1e-20;
  }
}

Lit SatSolver::pick_branch() {
  if (options_.random_branch_permil > 0 && num_vars() > 0 &&
      (next_rand() & 1023) < options_.random_branch_permil) {
    // Diversification: occasionally branch on a random unassigned variable
    // (it stays in the heap; the VSIDS path skips assigned entries anyway).
    for (int tries = 0; tries < 8; ++tries) {
      Var v = static_cast<Var>(next_rand() %
                               static_cast<std::uint64_t>(num_vars()));
      if (value(v) == LBool::Undef) {
        return Lit(v, !phase_[static_cast<std::size_t>(v)]);
      }
    }
  }
  while (!heap_empty()) {
    Var v = heap_pop();
    if (value(v) == LBool::Undef) {
      if (options_.engine.branching == BranchingHeuristic::kLrb) {
        ++stats_.lrb_selections;
      }
      return Lit(v, !phase_[static_cast<std::size_t>(v)]);
    }
  }
  return Lit();  // invalid: everything assigned
}

void SatSolver::reduce_db() {
  // Keep glue clauses (lbd <= 2) and clauses locked as reasons; drop the
  // least active half of the rest.
  std::vector<ClauseRef> locked;
  for (Lit l : trail_) {
    const VarInfo& info = var_info_[static_cast<std::size_t>(l.var())];
    if (info.reason.kind == Reason::Kind::Clause) {
      locked.push_back(info.reason.index);
    }
  }
  std::sort(locked.begin(), locked.end());
  std::vector<ClauseRef> candidates;
  for (ClauseRef r : learned_refs_) {
    if (!clause_deleted(r) && clause_lbd(r) > 2 &&
        !std::binary_search(locked.begin(), locked.end(), r)) {
      candidates.push_back(r);
    }
  }
  std::sort(candidates.begin(), candidates.end(),
            [&](ClauseRef a, ClauseRef b) {
              return clause_activity(a) < clause_activity(b);
            });
  std::size_t toDelete = candidates.size() / 2;
  for (std::size_t i = 0; i < toDelete; ++i) {
    delete_clause(candidates[i]);
    ++stats_.deleted_clauses;
  }
  // Purge dead refs so learned_refs_.size() is the live learnt count (the
  // reduction trigger and num_learned_clauses() rely on that).
  learned_refs_.erase(
      std::remove_if(learned_refs_.begin(), learned_refs_.end(),
                     [&](ClauseRef r) { return clause_deleted(r); }),
      learned_refs_.end());
  // Compact once a quarter of the arena is dead weight.
  if (wasted_words_ * 4 >= arena_.size()) garbage_collect();
}

ClauseRef SatSolver::relocate(ClauseRef r, std::vector<std::uint32_t>& to) {
  if ((arena_[r] & kRelocBit) != 0) return arena_[r + 1];
  PSSE_ASSERT(!clause_deleted(r));
  const ClauseRef nr = static_cast<ClauseRef>(to.size());
  const std::uint32_t words = kHeaderWords + clause_size(r);
  for (std::uint32_t i = 0; i < words; ++i) to.push_back(arena_[r + i]);
  // Leave a forwarding header behind: later references to the old ref
  // resolve to the new location without a lookup table.
  arena_[r] |= kRelocBit;
  arena_[r + 1] = nr;
  return nr;
}

void SatSolver::garbage_collect() {
  std::vector<std::uint32_t> to;
  to.reserve(arena_.size() - wasted_words_);
  // Every live clause (size >= 2 by construction) sits in exactly two watch
  // lists, so walking the watches relocates all of them; trail reasons and
  // learned_refs_ then resolve through the forwarding headers. Watchers of
  // deleted clauses are dropped here (propagate skips them lazily until a
  // GC happens).
  for (std::vector<Watcher>& ws : watches_) {
    std::size_t j = 0;
    for (std::size_t i = 0; i < ws.size(); ++i) {
      Watcher w = ws[i];
      if ((arena_[w.cref] & kRelocBit) == 0 && clause_deleted(w.cref)) {
        continue;
      }
      ws[j++] = {relocate(w.cref, to), w.blocker};
    }
    ws.resize(j);
  }
  for (Lit l : trail_) {
    Reason& r = var_info_[static_cast<std::size_t>(l.var())].reason;
    if (r.kind == Reason::Kind::Clause) r.index = relocate(r.index, to);
  }
  for (ClauseRef& r : learned_refs_) r = relocate(r, to);
  arena_.swap(to);
  wasted_words_ = 0;
  ++stats_.arena_gcs;
}

void SatSolver::rebuild_order_heap() {
  heap_.clear();
  std::fill(heap_index_.begin(), heap_index_.end(), -1);
  for (Var v = 0; v < num_vars(); ++v) {
    if (value(v) == LBool::Undef) heap_insert(v);
  }
}

void SatSolver::record_learnt(const std::vector<Lit>& lits,
                              std::uint32_t lbd) {
  if (options_.exchange == nullptr) return;
  if (lits.size() > options_.share_max_size || lbd > options_.share_max_lbd) {
    return;
  }
  options_.exchange->export_clause(lits, lbd);
  ++stats_.clauses_exported;
}

bool SatSolver::install_implied_clause(const std::vector<Lit>& lits_in,
                                       std::uint32_t lbd,
                                       std::uint32_t depth) {
  PSSE_ASSERT(decision_level() == 0);
  if (!ok_) return false;
  // Same normalisation as add_clause, but nothing is logged to the pristine
  // database: the clause is implied by it, not part of it.
  std::vector<Lit> lits = lits_in;
  std::sort(lits.begin(), lits.end());
  lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
  std::vector<Lit> kept;
  kept.reserve(lits.size());
  for (std::size_t i = 0; i < lits.size(); ++i) {
    Lit l = lits[i];
    PSSE_CHECK(l.var() >= 0 && l.var() < num_vars(),
               "install_implied_clause: unknown variable");
    if (i + 1 < lits.size() && lits[i + 1] == ~l) return false;  // tautology
    LBool v = value(l);
    if (v == LBool::True) return false;  // already satisfied at level 0
    if (v == LBool::False) continue;
    kept.push_back(l);
  }
  if (kept.empty()) {
    ok_ = false;  // the implied clause is falsified at level 0: UNSAT
    return true;
  }
  if (kept.size() == 1) {
    if (!enqueue(kept[0], Reason::none())) {
      ok_ = false;
      return true;
    }
    learnt_units_.push_back({kept[0], depth});
    return true;
  }
  ClauseRef r = alloc_clause(kept, /*learned=*/true,
                             std::min<std::uint32_t>(lbd, 0xFFFFu), depth);
  attach_clause(r);
  learned_refs_.push_back(r);
  return true;
}

void SatSolver::import_shared_clauses() {
  if (options_.exchange == nullptr || !options_.exchange->has_pending()) {
    return;
  }
  PSSE_ASSERT(decision_level() == 0);
  options_.exchange->import_clauses(import_buf_);
  for (const std::vector<Lit>& lits : import_buf_) {
    ++stats_.clauses_imported;
    if (!ok_) break;
    // The sender's LBD is not meaningful under this solver's levels; a
    // size-based pessimistic glue score keeps imports reducible.
    const std::uint32_t lbd =
        static_cast<std::uint32_t>(std::min<std::size_t>(lits.size(), 0xFFFF));
    if (install_implied_clause(lits, lbd, push_depth())) {
      ++stats_.clauses_accepted;
    }
  }
  import_buf_.clear();
}

SolveResult SatSolver::solve(const std::vector<Lit>& assumptions,
                             const Budget& budget) {
  if (!ok_) return SolveResult::Unsat;
  PSSE_CHECK(decision_level() == 0, "solve: not at decision level 0");
  for (Lit a : assumptions) {
    PSSE_CHECK(a.var() >= 0 && a.var() < num_vars(),
               "solve: unknown assumption variable");
  }
  // Pick up clauses sibling solvers learned since the last call.
  import_shared_clauses();
  if (!ok_) return SolveResult::Unsat;
  const std::uint64_t conflictLimit =
      budget.max_conflicts == 0 ? UINT64_MAX
                                : stats_.conflicts + budget.max_conflicts;
  // One Interrupt object serves this whole solve: the propagate loop, the
  // decision loop, and (via the theory client) the simplex pivot loop all
  // poll the same deadline and stop token, so no layer can observe an abort
  // the others would miss.
  Interrupt interrupt = Interrupt::from(budget);
  struct InterruptScope {
    SatSolver* solver;
    explicit InterruptScope(SatSolver* s, const Interrupt* it) : solver(s) {
      solver->interrupt_ = it;
      if (solver->theory_ != nullptr) solver->theory_->set_interrupt(it);
    }
    ~InterruptScope() {
      solver->interrupt_ = nullptr;
      if (solver->theory_ != nullptr) solver->theory_->set_interrupt(nullptr);
    }
  } interruptScope{this, &interrupt};
  auto interrupted = [&]() { return interrupt.triggered(); };

  rebuild_order_heap();
  const EngineConfig& engine = options_.engine;
  std::uint64_t restartCount = 0;
  std::uint64_t conflictsUntilRestart =
      options_.restart_base * luby(restartCount);
  std::uint64_t conflictsSinceRestart = 0;
  // kGeometric interval (grows by geometric_factor per restart) and the
  // kGlucoseEma learnt-LBD averages. Dead state under kLuby.
  double geomInterval = static_cast<double>(options_.restart_base);
  double emaFast = 0.0;
  double emaSlow = 0.0;
  std::uint32_t fixpointsSinceTheory = 0;
  std::vector<Lit> learnt;
  std::vector<Lit> theoryConfl;

  // Install a freshly learnt clause (from either conflict-analysis site) and
  // assert its first literal, which analyze() made asserting at the current
  // (post-backtrack) level. Returns the clause's LBD (1 for units) so the
  // glucose-style restart schedule can track learnt quality.
  auto learn_clause = [&](const std::vector<Lit>& lits) -> std::uint32_t {
    if (lits.size() == 1) {
      bool okEnq = enqueue(lits[0], Reason::none());
      PSSE_ASSERT(okEnq);
      // A learnt unit is a level-0 fact; remember its push depth so pop()
      // can replay it if its derivation survives.
      learnt_units_.push_back({lits[0], push_depth()});
      record_learnt(lits, 1);
      return 1;
    }
    const std::uint32_t lbd = compute_lbd(lits);
    ClauseRef r = alloc_clause(lits, /*learned=*/true, lbd, push_depth());
    attach_clause(r);
    learned_refs_.push_back(r);
    ++stats_.learned_clauses;
    bool okEnq = enqueue(lits[0], Reason::clause(r));
    PSSE_ASSERT(okEnq);
    record_learnt(lits, lbd);
    return lbd;
  };
  auto note_learnt_lbd = [&](std::uint32_t lbd) {
    if (engine.restart != RestartSchedule::kGlucoseEma) return;
    emaFast += (static_cast<double>(lbd) - emaFast) / 32.0;
    emaSlow += (static_cast<double>(lbd) - emaSlow) / 4096.0;
  };
  // Chronological backtracking: when the full backjump would discard more
  // than cb_limit levels, retreat a single level instead. The learnt
  // clause is still asserting there — analyze() leaves every non-first
  // literal at or below btlevel, so only the asserting literal's variable
  // is unassigned by the shallower backtrack. Unit learnts always take the
  // full jump: they are level-0 facts and learnt_units_ records them as
  // such. Only used when cb_limit > 0 (default: pure backjumping).
  auto backtrack_level = [&](int btlevel, std::size_t learntSize) {
    if (engine.cb_limit > 0 && learntSize > 1 &&
        decision_level() - btlevel > static_cast<int>(engine.cb_limit)) {
      ++stats_.chrono_backtracks;
      return decision_level() - 1;
    }
    return btlevel;
  };

  for (;;) {
    ClauseRef confl = propagate();
    std::vector<Lit> conflLits;
    if (confl == kNoConflictRef) {
      // Propagation fixpoint: consult the theory (lazier configurations
      // skip some fixpoints; the final check below never is).
      if (++fixpointsSinceTheory >= options_.theory_check_period) {
        fixpointsSinceTheory = 0;
        if (!theory_check(false, theoryConfl)) {
          confl = kExplicitConflictRef;
          conflLits = theoryConfl;
        }
      }
    } else if (confl == kExplicitConflictRef) {
      conflLits = pending_conflict_;
    }

    if (confl != kNoConflictRef) {
      ++stats_.conflicts;
      ++conflictsSinceRestart;
      int conflLevel = 0;
      if (confl < kExplicitConflictRef) {
        const std::uint32_t n = clause_size(confl);
        for (std::uint32_t i = 0; i < n; ++i) {
          const int lv =
              var_info_[static_cast<std::size_t>(clause_lit(confl, i).var())]
                  .level;
          if (lv > conflLevel) conflLevel = lv;
        }
      } else {
        for (Lit l : conflLits) {
          const int lv = var_info_[static_cast<std::size_t>(l.var())].level;
          if (lv > conflLevel) conflLevel = lv;
        }
      }
      // A conflict entirely at level 0 closes the instance.
      if (decision_level() == 0 || conflLevel == 0) {
        ok_ = false;
        cancel_until(0);
        return SolveResult::Unsat;
      }
      // A lazy theory check can surface a conflict that lags the search:
      // every literal in it below the current decision level. analyze()
      // needs a current-level literal, so first backjump to the conflict's
      // own level (all its literals stay falsified there).
      if (confl == kExplicitConflictRef && conflLevel < decision_level()) {
        cancel_until(conflLevel);
      }
      int btlevel = 0;
      analyze(confl, conflLits, learnt, btlevel);
      cancel_until(backtrack_level(btlevel, learnt.size()));
      note_learnt_lbd(learn_clause(learnt));
      var_decay();
      clause_inc_ /= 0.999;

      if (stats_.conflicts >= conflictLimit || interrupted()) {
        cancel_until(0);
        return SolveResult::Unknown;
      }
      if (learned_refs_.size() >
          options_.reduce_db_base + 2 * num_problem_clauses_ / 3) {
        reduce_db();
      }
      bool restartNow = false;
      switch (engine.restart) {
        case RestartSchedule::kLuby:
          restartNow = conflictsSinceRestart >= conflictsUntilRestart;
          break;
        case RestartSchedule::kGeometric:
          restartNow = static_cast<double>(conflictsSinceRestart) >=
                       geomInterval;
          break;
        case RestartSchedule::kGlucoseEma:
          // Recent learnt clauses are markedly worse than the long-run
          // average: restart. restart_base is the minimum conflict gap so
          // the EMAs have data before the first comparison.
          restartNow = conflictsSinceRestart >= options_.restart_base &&
                       emaFast > engine.ema_margin * emaSlow;
          break;
      }
      if (restartNow) {
        ++stats_.restarts;
        ++restartCount;
        conflictsSinceRestart = 0;
        switch (engine.restart) {
          case RestartSchedule::kLuby:
            conflictsUntilRestart = options_.restart_base * luby(restartCount);
            break;
          case RestartSchedule::kGeometric:
            geomInterval *= engine.geometric_factor;
            break;
          case RestartSchedule::kGlucoseEma:
            // Re-arm: only a fresh quality degradation triggers again.
            emaFast = emaSlow;
            break;
        }
        int restartLevel =
            static_cast<int>(assumptions.size()) <= decision_level()
                ? static_cast<int>(assumptions.size())
                : 0;
        // Sibling clauses can only be installed at level 0; when some are
        // waiting, spend this restart going all the way down to fetch them
        // (assumptions are simply re-decided afterwards).
        if (options_.exchange != nullptr && options_.exchange->has_pending()) {
          restartLevel = 0;
        }
        cancel_until(restartLevel);
        if (restartLevel == 0) {
          import_shared_clauses();
          if (!ok_) return SolveResult::Unsat;
        }
      }
      continue;
    }

    // No conflict: extend the assignment. The interrupt check also covers
    // early returns from propagate() and from a bailed-out theory check —
    // the interrupt is monotone, so if a lower layer saw it, so do we.
    if (interrupted()) {
      cancel_until(0);
      return SolveResult::Unknown;
    }
    // Theory propagation enqueued literals past the BCP fixpoint: run
    // boolean propagation over them before deciding (they may force clause
    // or cardinality propagations, or a conflict). The interrupt check
    // above keeps this from looping on a bailed-out propagate().
    if (qhead_ < trail_.size()) continue;
    Lit next;
    // Assumption decisions come first, one per level.
    while (decision_level() < static_cast<int>(assumptions.size())) {
      Lit a = assumptions[static_cast<std::size_t>(decision_level())];
      if (value(a) == LBool::True) {
        trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
      } else if (value(a) == LBool::False) {
        cancel_until(0);
        return SolveResult::Unsat;  // assumptions inconsistent
      } else {
        next = a;
        break;
      }
    }
    if (!next.valid()) {
      next = pick_branch();
      if (next.valid()) ++stats_.decisions;
    } else {
      ++stats_.decisions;
    }
    if (!next.valid()) {
      // Full assignment: ask the theory for a final verdict.
      if (!theory_check(true, theoryConfl)) {
        int conflLevel = 0;
        for (Lit l : theoryConfl) {
          const int lv = var_info_[static_cast<std::size_t>(l.var())].level;
          if (lv > conflLevel) conflLevel = lv;
        }
        if (decision_level() == 0 || conflLevel == 0 ||
            theoryConfl.empty()) {
          ok_ = false;
          cancel_until(0);
          return SolveResult::Unsat;
        }
        // Same lagging-conflict backjump as in the main loop: with lazy
        // theory checks the conflict may live entirely below the current
        // decision level.
        if (conflLevel < decision_level()) cancel_until(conflLevel);
        ++stats_.conflicts;
        int btlevel = 0;
        analyze(kExplicitConflictRef, theoryConfl, learnt, btlevel);
        cancel_until(backtrack_level(btlevel, learnt.size()));
        note_learnt_lbd(learn_clause(learnt));
        continue;
      }
      // An interrupted theory check may report "consistent" without having
      // restored bound feasibility; never conclude Sat in that case.
      if (interrupted()) {
        cancel_until(0);
        return SolveResult::Unknown;
      }
      // Satisfiable: snapshot the model.
      if (theory_ != nullptr) theory_->on_model();
      model_.assign(static_cast<std::size_t>(num_vars()), false);
      for (Var v = 0; v < num_vars(); ++v) {
        model_[static_cast<std::size_t>(v)] = value(v) == LBool::True;
      }
      cancel_until(0);
      return SolveResult::Sat;
    }
    trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
    bool okEnq = enqueue(next, Reason::none());
    PSSE_ASSERT(okEnq);
  }
}

int SatSolver::probe_literal(Lit l) {
  PSSE_CHECK(decision_level() == 0, "probe_literal: not at decision level 0");
  PSSE_CHECK(l.valid() && l.var() < num_vars(),
             "probe_literal: unknown variable");
  if (!ok_) return -1;
  // Drain any pending level-0 propagation first so the probe measures only
  // the literal's own consequences. A conflict here closes the instance.
  if (propagate() != kNoConflictRef) {
    ok_ = false;
    return -1;
  }
  const LBool v = value(l);
  if (v == LBool::True) return 0;
  if (v == LBool::False) return -1;
  // One throwaway decision level; boolean propagation only. The theory is
  // never consulted and theory_qhead_ stays at the level-0 prefix, so
  // cancel_until(0) undoes exactly the card counters and assignments.
  trail_lim_.push_back(static_cast<std::int32_t>(trail_.size()));
  const std::size_t before = trail_.size();
  const bool okEnq = enqueue(l, Reason::none());
  PSSE_ASSERT(okEnq);
  const ClauseRef confl = propagate();
  const int forced = static_cast<int>(trail_.size() - before) - 1;
  cancel_until(0);
  return confl == kNoConflictRef ? forced : -1;
}

bool SatSolver::model_value(Var v) const {
  PSSE_CHECK(v >= 0 && static_cast<std::size_t>(v) < model_.size(),
             "model_value: no model for variable");
  return model_[static_cast<std::size_t>(v)];
}

void SatSolver::push() {
  PSSE_CHECK(decision_level() == 0, "push: not at decision level 0");
  // Learnt clauses carry their push depth in a 16-bit header field.
  PSSE_CHECK(save_points_.size() < 0xFFFF, "push: nesting too deep");
  save_points_.push_back(
      {num_vars(), pristine_clauses_.size(), pristine_cards_.size()});
}

void SatSolver::pop() {
  PSSE_CHECK(!save_points_.empty(), "pop without matching push");
  PSSE_CHECK(decision_level() == 0, "pop: not at decision level 0");
  SavePoint sp = save_points_.back();
  const std::uint32_t oldDepth = push_depth();
  save_points_.pop_back();

  pristine_clauses_.resize(sp.num_pristine_clauses);
  pristine_cards_.resize(sp.num_pristine_cards);

  // Learnt clauses tagged with a surviving depth d < oldDepth were derived
  // from constraints (and variables) that all predate the popped push, so
  // they remain implied by the restored database and are kept. Everything
  // learnt at the popped depth may depend on popped constraints and is
  // discarded with the rest of the derived state.
  struct RetainedClause {
    std::vector<Lit> lits;
    std::uint32_t lbd;
    std::uint32_t depth;
  };
  std::vector<RetainedClause> retained;
  for (ClauseRef r : learned_refs_) {
    if (clause_deleted(r) || clause_depth(r) >= oldDepth) continue;
    RetainedClause rc;
    rc.lbd = clause_lbd(r);
    rc.depth = clause_depth(r);
    const std::uint32_t n = clause_size(r);
    rc.lits.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) rc.lits.push_back(clause_lit(r, i));
    retained.push_back(std::move(rc));
  }
  std::vector<std::pair<Lit, std::uint32_t>> retainedUnits;
  for (const auto& [l, d] : learnt_units_) {
    if (d < oldDepth) retainedUnits.push_back({l, d});
  }
  stats_.deleted_clauses += learned_refs_.size() - retained.size();

  // Rebuild the database from the pristine constraints: level-0 facts
  // derived after the push may depend on popped constraints, so the trail
  // and all simplifications are replayed from scratch.
  learned_refs_.clear();
  learnt_units_.clear();
  arena_.clear();
  wasted_words_ = 0;
  num_problem_clauses_ = 0;
  cards_.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  theory_qhead_ = 0;
  theory_assert_count_ = 0;
  theory_reasons_.clear();  // no assigned variables reference the log now
  if (theory_ != nullptr) theory_->pop_to_assertion_count(0);

  assigns_.assign(static_cast<std::size_t>(sp.num_vars), LBool::Undef);
  var_info_.assign(static_cast<std::size_t>(sp.num_vars), {});
  phase_.resize(static_cast<std::size_t>(sp.num_vars));
  activity_.resize(static_cast<std::size_t>(sp.num_vars));
  lrb_assigned_.assign(static_cast<std::size_t>(sp.num_vars), 0);
  lrb_participated_.assign(static_cast<std::size_t>(sp.num_vars), 0);
  seen_.assign(static_cast<std::size_t>(sp.num_vars), false);
  watches_.assign(static_cast<std::size_t>(2 * sp.num_vars), {});
  card_occs_.assign(static_cast<std::size_t>(2 * sp.num_vars), {});
  heap_index_.assign(static_cast<std::size_t>(sp.num_vars), -1);
  heap_.clear();

  ok_ = true;
  replaying_ = true;
  for (const auto& lits : pristine_clauses_) add_clause(lits);
  for (const auto& card : pristine_cards_) add_at_most(card.lits, card.bound);
  replaying_ = false;

  // Reinstall the surviving learnt facts and clauses on top of the rebuilt
  // database. Units are re-logged even when the replay already derived
  // them, so a later pop can still retain them.
  for (const auto& [l, d] : retainedUnits) {
    if (!ok_) break;
    if (!enqueue(l, Reason::none())) {
      ok_ = false;
      break;
    }
    learnt_units_.push_back({l, d});
  }
  for (const RetainedClause& rc : retained) {
    if (!ok_) break;
    install_implied_clause(rc.lits, rc.lbd, rc.depth);
  }
  rebuild_order_heap();
}

std::size_t SatSolver::footprint_bytes() const {
  std::size_t bytes = arena_.capacity() * sizeof(std::uint32_t);
  for (const Card& c : cards_) {
    bytes += sizeof(Card) + c.lits.capacity() * sizeof(Lit);
  }
  for (const auto& w : watches_) bytes += w.capacity() * sizeof(Watcher);
  for (const auto& o : card_occs_) {
    bytes += o.capacity() * sizeof(std::uint32_t);
  }
  bytes += assigns_.capacity() * sizeof(LBool);
  bytes += var_info_.capacity() * sizeof(VarInfo);
  bytes += activity_.capacity() * sizeof(double);
  bytes += trail_.capacity() * sizeof(Lit);
  for (const auto& r : theory_reasons_) bytes += r.capacity() * sizeof(Lit);
  bytes += heap_.capacity() * sizeof(Var);
  bytes += heap_index_.capacity() * sizeof(std::int32_t);
  bytes += learned_refs_.capacity() * sizeof(ClauseRef);
  bytes += learnt_units_.capacity() * sizeof(std::pair<Lit, std::uint32_t>);
  return bytes;
}

void SatSolver::heap_insert(Var v) {
  heap_index_[static_cast<std::size_t>(v)] =
      static_cast<std::int32_t>(heap_.size());
  heap_.push_back(v);
  heap_up(static_cast<int>(heap_.size()) - 1);
}

Var SatSolver::heap_pop() {
  PSSE_ASSERT(!heap_.empty());
  Var top = heap_[0];
  heap_index_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_index_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_down(0);
  }
  return top;
}

void SatSolver::heap_up(int i) {
  Var v = heap_[static_cast<std::size_t>(i)];
  double act = activity_[static_cast<std::size_t>(v)];
  while (i > 0) {
    int parent = (i - 1) / 2;
    Var pv = heap_[static_cast<std::size_t>(parent)];
    if (activity_[static_cast<std::size_t>(pv)] >= act) break;
    heap_[static_cast<std::size_t>(i)] = pv;
    heap_index_[static_cast<std::size_t>(pv)] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_index_[static_cast<std::size_t>(v)] = i;
}

void SatSolver::heap_down(int i) {
  Var v = heap_[static_cast<std::size_t>(i)];
  double act = activity_[static_cast<std::size_t>(v)];
  int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(
            child + 1)])] >
            activity_[static_cast<std::size_t>(
                heap_[static_cast<std::size_t>(child)])]) {
      ++child;
    }
    Var cv = heap_[static_cast<std::size_t>(child)];
    if (act >= activity_[static_cast<std::size_t>(cv)]) break;
    heap_[static_cast<std::size_t>(i)] = cv;
    heap_index_[static_cast<std::size_t>(cv)] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_index_[static_cast<std::size_t>(v)] = i;
}

}  // namespace psse::smt
