// Boolean variables and literals for the CDCL core.
//
// Variables are dense 0-based indices; a literal packs (variable, sign) as
// 2*var + sign with sign==1 meaning negated — the MiniSat convention, which
// makes literal-indexed arrays (watch lists, occurrence lists) trivial.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace psse::smt {

using Var = std::int32_t;
inline constexpr Var kNoVar = -1;

class Lit {
 public:
  Lit() = default;
  Lit(Var v, bool negated) : code_(2 * v + (negated ? 1 : 0)) {}

  /// Positive literal of v.
  static Lit pos(Var v) { return Lit(v, false); }
  /// Negative literal of v.
  static Lit neg(Var v) { return Lit(v, true); }
  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }

  [[nodiscard]] Var var() const { return code_ >> 1; }
  [[nodiscard]] bool negated() const { return (code_ & 1) != 0; }
  [[nodiscard]] std::int32_t code() const { return code_; }
  [[nodiscard]] bool valid() const { return code_ >= 0; }

  [[nodiscard]] Lit operator~() const { return from_code(code_ ^ 1); }

  friend bool operator==(Lit a, Lit b) { return a.code_ == b.code_; }
  friend bool operator<(Lit a, Lit b) { return a.code_ < b.code_; }

  [[nodiscard]] std::string to_string() const {
    return (negated() ? "~b" : "b") + std::to_string(var());
  }

 private:
  std::int32_t code_ = -1;
};

inline constexpr std::int32_t kLitUndefCode = -1;

/// Ternary assignment value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lbool_of(bool b) { return b ? LBool::True : LBool::False; }
inline LBool negate(LBool v) {
  if (v == LBool::Undef) return v;
  return v == LBool::True ? LBool::False : LBool::True;
}

}  // namespace psse::smt

template <>
struct std::hash<psse::smt::Lit> {
  std::size_t operator()(psse::smt::Lit l) const noexcept {
    return std::hash<std::int32_t>()(l.code());
  }
};
