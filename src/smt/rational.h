// Exact rational arithmetic and delta-rationals.
//
// Rational is the coefficient domain of the LRA theory solver. Invariant:
// denominator > 0 and gcd(|num|, den) == 1 (canonical form), so equality is
// structural.
//
// DeltaRational models values of the form a + b*delta where delta is a
// positive infinitesimal; it lets the simplex treat strict bounds (x < c) as
// weak bounds (x <= c - delta) while staying exact (Dutertre & de Moura,
// "A fast linear-arithmetic solver for DPLL(T)", CAV 2006).
#pragma once

#include <compare>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "smt/bigint.h"

namespace psse::smt {

/// A double approximation of an exact value together with a rigorous bound
/// on its absolute error: |value - exact| <= error always holds (error may
/// be +inf, and value NaN, for overflowed conversions — every consumer
/// treats "not provably ordered" as "decide exactly", so a degenerate
/// approximation only costs speed, never soundness). This is the carrier of
/// the simplex float filter (DESIGN.md §6g): comparisons are decided in
/// doubles only when the interval [value-error, value+error] clears the
/// other side's interval.
struct DoubleApprox {
  double value = 0.0;
  double error = 0.0;

  /// Unit roundoff envelope per operation (2^-52 covers the <= 0.5 ulp
  /// rounding of every IEEE op with slack) and an absolute floor that
  /// covers subnormal rounding, where the relative model fails.
  static constexpr double kEps = 2.220446049250313e-16;
  static constexpr double kEta = 1e-290;

  static DoubleApprox exact(double v) { return {v, 0.0}; }

  [[nodiscard]] DoubleApprox operator+(const DoubleApprox& o) const {
    const double v = value + o.value;
    return {v, error + o.error + kEps * abs_(v) + kEta};
  }
  [[nodiscard]] DoubleApprox operator-(const DoubleApprox& o) const {
    const double v = value - o.value;
    return {v, error + o.error + kEps * abs_(v) + kEta};
  }
  [[nodiscard]] DoubleApprox operator*(const DoubleApprox& o) const {
    const double v = value * o.value;
    return {v, abs_(value) * o.error + abs_(o.value) * error +
                   error * o.error + kEps * abs_(v) + kEta};
  }
  void add_mul(const DoubleApprox& x, const DoubleApprox& k) {
    *this = *this + x * k;
  }

  /// True iff the exact value this approximates is provably > the exact
  /// value `o` approximates. NaN/inf poison every comparison to false, so
  /// a degenerate approximation falls through to the exact path.
  [[nodiscard]] bool definitely_greater(const DoubleApprox& o) const {
    return value - o.value > error + o.error + kEps * (abs_(value) + abs_(o.value)) + kEta;
  }
  [[nodiscard]] bool definitely_less(const DoubleApprox& o) const {
    return o.definitely_greater(*this);
  }

 private:
  // std::fabs without <cmath> in this header; also NaN-safe (returns NaN,
  // which poisons comparisons to false as intended).
  static double abs_(double v) { return v < 0 ? -v : v; }
};

class Rational {
 public:
  /// Zero.
  Rational() : num_(0), den_(1) {}
  /// Integer value.
  Rational(std::int64_t v) : num_(v), den_(1) {}  // NOLINT(google-explicit-constructor)
  /// num/den, canonicalised. Throws SmtError if den == 0.
  Rational(BigInt num, BigInt den);
  /// Integer BigInt value.
  explicit Rational(BigInt v) : num_(std::move(v)), den_(1) {}
  /// num/den from machine integers.
  Rational(std::int64_t num, std::int64_t den)
      : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "3", "-3/4", or a decimal like "16.90" / "-0.0125" exactly.
  static Rational from_string(std::string_view s);
  /// Exact value of a decimal string such as "16.90" (no binary rounding).
  static Rational from_decimal(std::string_view s) { return from_string(s); }

  [[nodiscard]] const BigInt& num() const { return num_; }
  [[nodiscard]] const BigInt& den() const { return den_; }
  [[nodiscard]] bool is_zero() const { return num_.is_zero(); }
  [[nodiscard]] bool is_negative() const { return num_.is_negative(); }
  [[nodiscard]] bool is_integer() const { return den_.is_one(); }
  [[nodiscard]] int sign() const { return num_.sign(); }

  [[nodiscard]] double to_double() const {
    return num_.to_double() / den_.to_double();
  }

  /// to_double() plus a rigorous error bound. BigInt::to_double() folds L
  /// limbs with one multiply-add each (<= 2L+1 roundings, each <= eps/2
  /// relative), inline values cast in one rounding, and the final division
  /// adds one more — so relative error <= (4 + 2*(Ln+Ld)) * eps is a safe
  /// envelope on both components and the quotient. Overflow to inf yields
  /// an inf error bound, which consumers read as "never provably ordered".
  [[nodiscard]] DoubleApprox approx() const {
    const double v = to_double();
    const double limbs = static_cast<double>(
        (num_.heap_bytes() + den_.heap_bytes()) / sizeof(std::uint64_t));
    const double rel = DoubleApprox::kEps * (4.0 + 2.0 * limbs);
    const double mag = v < 0 ? -v : v;
    return {v, mag * rel + DoubleApprox::kEta};
  }
  [[nodiscard]] std::string to_string() const;

  /// In-place negation (no renormalisation needed).
  void negate() { num_.negate(); }
  [[nodiscard]] Rational operator-() const;
  [[nodiscard]] Rational abs() const;
  /// Multiplicative inverse. Throws SmtError if zero.
  [[nodiscard]] Rational inverse() const;

  Rational& operator+=(const Rational& rhs);
  Rational& operator-=(const Rational& rhs);
  Rational& operator*=(const Rational& rhs);
  Rational& operator/=(const Rational& rhs);

  /// Fused *this += b*c (resp. -=) without a temporary Rational and with a
  /// single end-of-op normalisation instead of one per operator — the
  /// simplex beta-update and row-elimination workhorses.
  Rational& add_mul(const Rational& b, const Rational& c);
  Rational& sub_mul(const Rational& b, const Rational& c);

  friend Rational operator+(Rational a, const Rational& b) { return a += b; }
  friend Rational operator-(Rational a, const Rational& b) { return a -= b; }
  friend Rational operator*(Rational a, const Rational& b) { return a *= b; }
  friend Rational operator/(Rational a, const Rational& b) { return a /= b; }

  friend bool operator==(const Rational& a, const Rational& b) {
    return a.num_ == b.num_ && a.den_ == b.den_;
  }
  friend std::strong_ordering operator<=>(const Rational& a,
                                          const Rational& b) {
    // Inline fast path: |num|,|den| <= 2^63 so the cross products fit in
    // 128 bits exactly (denominators are positive, order is preserved).
    if (a.num_.is_inline() && a.den_.is_inline() && b.num_.is_inline() &&
        b.den_.is_inline()) {
      const __int128 lhs =
          static_cast<__int128>(a.num_.inline_value()) * b.den_.inline_value();
      const __int128 rhs =
          static_cast<__int128>(b.num_.inline_value()) * a.den_.inline_value();
      return lhs < rhs    ? std::strong_ordering::less
             : lhs > rhs  ? std::strong_ordering::greater
                          : std::strong_ordering::equal;
    }
    return cmp_slow(a, b);
  }

  /// Heap bytes owned by the two BigInts (0 while both stay inline), for
  /// Table IV. Inline values must not be charged phantom limbs.
  [[nodiscard]] std::size_t footprint_bytes() const {
    return num_.heap_bytes() + den_.heap_bytes();
  }

  friend std::ostream& operator<<(std::ostream& os, const Rational& v);

 private:
  void normalize();
  static std::strong_ordering cmp_slow(const Rational& a, const Rational& b);

  BigInt num_;
  BigInt den_;  // > 0
};

/// a + b*delta with delta an arbitrarily small positive infinitesimal.
class DeltaRational {
 public:
  DeltaRational() = default;
  DeltaRational(Rational real) : real_(std::move(real)) {}  // NOLINT(google-explicit-constructor)
  DeltaRational(Rational real, Rational delta)
      : real_(std::move(real)), delta_(std::move(delta)) {}

  /// The value c - delta (used for strict upper bounds x < c).
  static DeltaRational minus_delta(Rational c) {
    return DeltaRational(std::move(c), Rational(-1));
  }
  /// The value c + delta (used for strict lower bounds x > c).
  static DeltaRational plus_delta(Rational c) {
    return DeltaRational(std::move(c), Rational(1));
  }

  [[nodiscard]] const Rational& real() const { return real_; }
  [[nodiscard]] const Rational& delta() const { return delta_; }
  [[nodiscard]] bool is_zero() const {
    return real_.is_zero() && delta_.is_zero();
  }

  [[nodiscard]] DeltaRational operator-() const {
    return DeltaRational(-real_, -delta_);
  }

  DeltaRational& operator+=(const DeltaRational& rhs) {
    real_ += rhs.real_;
    delta_ += rhs.delta_;
    return *this;
  }
  DeltaRational& operator-=(const DeltaRational& rhs) {
    real_ -= rhs.real_;
    delta_ -= rhs.delta_;
    return *this;
  }
  /// Scaling by a rational (delta-rationals form a Q-vector space).
  DeltaRational& operator*=(const Rational& k) {
    real_ *= k;
    delta_ *= k;
    return *this;
  }
  /// Fused *this += x*k (resp. -=) — no temporary DeltaRational; the hot
  /// operation of Simplex::update / pivot_and_update.
  DeltaRational& add_mul(const DeltaRational& x, const Rational& k) {
    real_.add_mul(x.real_, k);
    delta_.add_mul(x.delta_, k);
    return *this;
  }
  DeltaRational& sub_mul(const DeltaRational& x, const Rational& k) {
    real_.sub_mul(x.real_, k);
    delta_.sub_mul(x.delta_, k);
    return *this;
  }

  friend DeltaRational operator+(DeltaRational a, const DeltaRational& b) {
    return a += b;
  }
  friend DeltaRational operator-(DeltaRational a, const DeltaRational& b) {
    return a -= b;
  }
  friend DeltaRational operator*(DeltaRational a, const Rational& k) {
    return a *= k;
  }
  friend DeltaRational operator*(const Rational& k, DeltaRational a) {
    return a *= k;
  }

  friend bool operator==(const DeltaRational& a, const DeltaRational& b) {
    return a.real_ == b.real_ && a.delta_ == b.delta_;
  }
  /// Lexicographic order (real part first) — the order induced by any
  /// sufficiently small positive delta.
  friend std::strong_ordering operator<=>(const DeltaRational& a,
                                          const DeltaRational& b) {
    auto c = a.real_ <=> b.real_;
    return c != std::strong_ordering::equal ? c : a.delta_ <=> b.delta_;
  }

  [[nodiscard]] std::string to_string() const;
  friend std::ostream& operator<<(std::ostream& os, const DeltaRational& v);

 private:
  Rational real_;
  Rational delta_;
};

}  // namespace psse::smt
