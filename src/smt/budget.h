// Resource limits and cooperative interruption for solve calls.
//
// A Budget bounds a single solve() by conflicts and/or wall-clock time, and
// optionally carries a *stop token*: a caller-owned atomic flag that any
// thread may set to abort the solve promptly. The portfolio runtime uses it
// to cancel losing solver configurations once one member of the race has a
// definitive answer.
//
// Interrupt is the solver-internal view of a Budget's abort conditions: a
// single object shared (by pointer) between the CDCL core and the simplex
// theory solver during one solve() call, so both layers observe exactly the
// same deadline and the same flag. It is polled in the CDCL propagate loop
// and in the simplex pivot loop — long theory checks can no longer blow
// past the wall-clock limit, which used to be enforced only at SAT-decision
// boundaries.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace psse::smt {

/// Resource limits for a solve call; zero/null means unlimited.
struct Budget {
  std::uint64_t max_conflicts = 0;
  std::chrono::milliseconds max_time{0};
  /// Cooperative cancellation: when non-null and set to true, the solve
  /// returns Unknown at the next poll point. The pointee must outlive the
  /// solve call; the solver only ever reads it (relaxed loads).
  const std::atomic<bool>* stop = nullptr;
};

/// Shared abort state for one solve() call. Monotone: once triggered()
/// returns true it stays true (stop flags are never cleared mid-solve and
/// deadlines do not move), which lets the layers poll independently without
/// coordination.
struct Interrupt {
  const std::atomic<bool>* stop = nullptr;
  bool has_deadline = false;
  std::chrono::steady_clock::time_point deadline{};

  static Interrupt from(const Budget& budget) {
    Interrupt it;
    it.stop = budget.stop;
    if (budget.max_time.count() > 0) {
      it.has_deadline = true;
      it.deadline = std::chrono::steady_clock::now() + budget.max_time;
    }
    return it;
  }

  [[nodiscard]] bool triggered() const {
    if (stop != nullptr && stop->load(std::memory_order_relaxed)) return true;
    return has_deadline && std::chrono::steady_clock::now() >= deadline;
  }
};

}  // namespace psse::smt
