#include "smt/rational.h"

#include <ostream>
#include <utility>

#include "smt/common.h"

namespace psse::smt {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  PSSE_CHECK(!den_.is_zero(), "Rational: zero denominator");
  normalize();
}

void Rational::normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  // Integer values need no gcd: gcd(n, 1) == 1 by definition, and row
  // merges over integral tableaus hit this on almost every term.
  if (den_.is_one()) return;
  BigInt g = BigInt::gcd(num_, den_);
  if (!g.is_one()) {
    num_ /= g;
    den_ /= g;
  }
}

Rational Rational::from_string(std::string_view s) {
  PSSE_CHECK(!s.empty(), "Rational::from_string: empty input");
  // Fraction form "a/b".
  if (auto slash = s.find('/'); slash != std::string_view::npos) {
    return Rational(BigInt::from_string(s.substr(0, slash)),
                    BigInt::from_string(s.substr(slash + 1)));
  }
  // Decimal form "[-]int[.frac]".
  auto dot = s.find('.');
  if (dot == std::string_view::npos) {
    return Rational(BigInt::from_string(s));
  }
  std::string_view intPart = s.substr(0, dot);
  std::string_view fracPart = s.substr(dot + 1);
  PSSE_CHECK(!fracPart.empty(), "Rational::from_string: trailing dot");
  bool neg = !intPart.empty() && intPart[0] == '-';
  std::string digits(intPart.substr((neg || (!intPart.empty() && intPart[0] == '+')) ? 1 : 0));
  if (digits.empty()) digits = "0";
  digits.append(fracPart);
  BigInt num = BigInt::from_string(digits);
  if (neg) num = -num;
  return Rational(std::move(num),
                  BigInt::pow10(static_cast<unsigned>(fracPart.size())));
}

std::string Rational::to_string() const {
  if (den_.is_one()) return num_.to_string();
  return num_.to_string() + "/" + den_.to_string();
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::abs() const {
  Rational out = *this;
  out.num_ = out.num_.abs();
  return out;
}

Rational Rational::inverse() const {
  PSSE_CHECK(!is_zero(), "Rational::inverse: zero");
  return Rational(den_, num_);
}

Rational& Rational::operator+=(const Rational& rhs) {
  num_ = num_ * rhs.den_ + rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator-=(const Rational& rhs) {
  num_ = num_ * rhs.den_ - rhs.num_ * den_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator*=(const Rational& rhs) {
  num_ *= rhs.num_;
  den_ *= rhs.den_;
  normalize();
  return *this;
}

Rational& Rational::operator/=(const Rational& rhs) {
  PSSE_CHECK(!rhs.is_zero(), "Rational: division by zero");
  num_ *= rhs.den_;
  den_ *= rhs.num_;
  normalize();
  return *this;
}

Rational& Rational::add_mul(const Rational& b, const Rational& c) {
  // A zero operand means nothing to fuse in — and zero-coefficient factor
  // entries are common enough in the eta-replay path to be worth the test.
  if (b.is_zero() || c.is_zero()) return *this;
  // this + b*c == (num*bd*cd + bn*cn*den) / (den*bd*cd), normalised once.
  BigInt prodNum = b.num_ * c.num_;
  BigInt prodDen = b.den_ * c.den_;
  num_ *= prodDen;
  prodNum *= den_;
  num_ += prodNum;
  den_ *= prodDen;
  normalize();
  return *this;
}

Rational& Rational::sub_mul(const Rational& b, const Rational& c) {
  if (b.is_zero() || c.is_zero()) return *this;
  BigInt prodNum = b.num_ * c.num_;
  BigInt prodDen = b.den_ * c.den_;
  num_ *= prodDen;
  prodNum *= den_;
  num_ -= prodNum;
  den_ *= prodDen;
  normalize();
  return *this;
}

std::strong_ordering Rational::cmp_slow(const Rational& a, const Rational& b) {
  // Denominators are positive, so cross-multiplication preserves order.
  return a.num_ * b.den_ <=> b.num_ * a.den_;
}

std::ostream& operator<<(std::ostream& os, const Rational& v) {
  return os << v.to_string();
}

std::string DeltaRational::to_string() const {
  if (delta_.is_zero()) return real_.to_string();
  return real_.to_string() + (delta_.is_negative() ? "-" : "+") +
         delta_.abs().to_string() + "d";
}

std::ostream& operator<<(std::ostream& os, const DeltaRational& v) {
  return os << v.to_string();
}

}  // namespace psse::smt
