// Sparse linear expressions over theory (real) variables.
//
// LinExpr represents sum(coeff_i * var_i) + constant with exact rational
// coefficients. Expressions are kept sorted by variable id with no zero
// coefficients, so structural equality is semantic equality; `normalized()`
// additionally scales the leading coefficient to 1, which the SMT layer uses
// to share one simplex slack variable among all atoms over proportional
// expressions.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "smt/rational.h"

namespace psse::smt {

/// Theory (real) variable id.
using TVar = std::int32_t;
inline constexpr TVar kNoTVar = -1;

struct LinExprNormalized;

class LinExpr {
 public:
  LinExpr() = default;
  /// Constant expression.
  explicit LinExpr(Rational constant) : constant_(std::move(constant)) {}
  /// Single variable with coefficient 1.
  static LinExpr var(TVar v) {
    LinExpr e;
    e.terms_.emplace_back(v, Rational(1));
    return e;
  }
  /// Adopts an already-sorted, zero-free term list without re-merging (the
  /// simplex builds pivoted rows term by term in order). Sortedness is an
  /// asserted precondition.
  static LinExpr from_sorted_terms(
      std::vector<std::pair<TVar, Rational>> terms);

  [[nodiscard]] const std::vector<std::pair<TVar, Rational>>& terms() const {
    return terms_;
  }
  [[nodiscard]] const Rational& constant() const { return constant_; }
  [[nodiscard]] bool is_constant() const { return terms_.empty(); }
  /// True iff the expression is a single variable with coefficient 1 and no
  /// constant.
  [[nodiscard]] bool is_plain_var() const {
    return terms_.size() == 1 && constant_.is_zero() &&
           terms_[0].second == Rational(1);
  }

  /// Adds coeff*v to the expression.
  void add_term(TVar v, const Rational& coeff);
  void add_constant(const Rational& c) { constant_ += c; }

  /// *this += k * rhs as one sorted merge with fused coefficient updates
  /// (Rational::add_mul) — the simplex row-elimination step, with no
  /// per-term temporaries.
  void add_scaled(const LinExpr& rhs, const Rational& k);
  /// add_scaled merging into a caller-owned scratch buffer whose capacity
  /// is recycled across calls (the displaced term vector swaps into
  /// `scratch`), so a pivot's row-elimination loop allocates only on
  /// high-water growth. Requires &rhs != this.
  void add_scaled(const LinExpr& rhs, const Rational& k,
                  std::vector<std::pair<TVar, Rational>>& scratch);

  LinExpr& operator+=(const LinExpr& rhs);
  LinExpr& operator-=(const LinExpr& rhs);
  LinExpr& operator*=(const Rational& k);

  friend LinExpr operator+(LinExpr a, const LinExpr& b) { return a += b; }
  friend LinExpr operator-(LinExpr a, const LinExpr& b) { return a -= b; }
  friend LinExpr operator*(LinExpr a, const Rational& k) { return a *= k; }
  friend LinExpr operator*(const Rational& k, LinExpr a) { return a *= k; }
  [[nodiscard]] LinExpr operator-() const {
    LinExpr e = *this;
    e *= Rational(-1);
    return e;
  }

  friend bool operator==(const LinExpr& a, const LinExpr& b) {
    return a.constant_ == b.constant_ && a.terms_ == b.terms_;
  }

  /// The variable part scaled so its leading coefficient is 1, plus the
  /// factor k and offset c such that this == k * normalized + c. Requires a
  /// non-constant expression.
  [[nodiscard]] LinExprNormalized normalized() const;

  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] std::size_t hash() const;

 private:
  std::vector<std::pair<TVar, Rational>> terms_;  // sorted by var, no zeros
  Rational constant_;
};

/// Result of LinExpr::normalized().
struct LinExprNormalized {
  LinExpr expr;     // leading coefficient 1, zero constant
  Rational scale;   // k (nonzero)
  Rational offset;  // c
};

}  // namespace psse::smt

template <>
struct std::hash<psse::smt::LinExpr> {
  std::size_t operator()(const psse::smt::LinExpr& e) const noexcept {
    return e.hash();
  }
};
