// Shared JSON emission helpers.
//
// Every machine-readable line this repository prints — bench `--json`
// output, batch_runner result lines, and the obs trace stream — goes
// through these helpers, so string escaping is implemented exactly once.
// The writer builds one JSON object per line (JSONL); it does not pretty-
// print, nest, or stream, because every consumer here is `jq`/`json.loads`
// over single lines.
//
// Header-only and dependency-free: the grid/smt/core layers must be able
// to include it without linking anything beyond psse_obs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace psse::obs {

/// Appends `s` to `out` with JSON string escaping: quote, backslash, and
/// every control character below 0x20 (the characters RFC 8259 requires).
/// Bytes >= 0x80 pass through untouched — the stream is byte-transparent
/// for UTF-8.
inline void append_json_escaped(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// `s` escaped for embedding in a JSON string (no surrounding quotes).
[[nodiscard]] inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  append_json_escaped(out, s);
  return out;
}

/// Builder for one flat JSON object, rendered as a single line:
///
///   JsonWriter w;
///   w.field("ev", "solve").field("ms", 1.25).field("sat", true);
///   puts(w.str().c_str());   // {"ev":"solve","ms":1.25,"sat":true}
///
/// Keys and string values are escaped; numbers use shortest-roundtrip-ish
/// "%.6g" for doubles and exact decimal for integers. field_raw() splices
/// pre-rendered JSON (arrays, nested objects) verbatim — the caller is
/// responsible for its validity.
class JsonWriter {
 public:
  JsonWriter() : body_("{") {}

  JsonWriter& field(std::string_view key, std::string_view v) {
    key_prefix(key);
    body_ += '"';
    append_json_escaped(body_, v);
    body_ += '"';
    return *this;
  }

  JsonWriter& field(std::string_view key, const char* v) {
    return field(key, std::string_view(v));
  }

  JsonWriter& field(std::string_view key, double v) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return field_raw(key, buf);
  }

  JsonWriter& field(std::string_view key, std::uint64_t v) {
    return field_raw(key, std::to_string(v));
  }

  JsonWriter& field(std::string_view key, std::int64_t v) {
    return field_raw(key, std::to_string(v));
  }

  JsonWriter& field(std::string_view key, int v) {
    return field_raw(key, std::to_string(v));
  }

  JsonWriter& field(std::string_view key, bool v) {
    return field_raw(key, v ? "true" : "false");
  }

  /// Splices `value` into the object verbatim (must be valid JSON).
  JsonWriter& field_raw(std::string_view key, std::string_view value) {
    key_prefix(key);
    body_ += value;
    return *this;
  }

  /// The finished object. The writer may keep accepting fields afterwards;
  /// str() is non-destructive.
  [[nodiscard]] std::string str() const { return body_ + "}"; }

 private:
  void key_prefix(std::string_view key) {
    if (body_.size() > 1) body_ += ',';
    body_ += '"';
    append_json_escaped(body_, key);
    body_ += "\":";
  }

  std::string body_;
};

}  // namespace psse::obs
