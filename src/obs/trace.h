// Structured diagnostics: a thread-safe JSONL event stream.
//
// A TraceSink owns one output (a file or an adopted FILE*) and serialises
// whole lines under a mutex, so concurrent emitters — portfolio members,
// parallel CEGIS workers, batch_runner jobs — interleave per event, never
// mid-line. Every event is one flat JSON object carrying at least:
//
//   {"ev":"<kind>","t_us":<monotonic microseconds>, ...}
//
// Event construction reuses JsonWriter, so every string that reaches the
// stream is escaped; a trace file is valid JSONL by construction and can
// be replayed with `jq` / `json.loads` line by line.
//
// Gating: instrumented code holds an obs::Config whose sink pointer is
// null when tracing is off. The contract is that the *caller* tests
// `config.enabled()` before building an Event, so the disabled path is a
// single branch with no allocation.
#pragma once

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "obs/json_writer.h"
#include "obs/phase.h"

namespace psse::obs {

class TraceSink {
 public:
  /// Opens (truncates) `path` for writing. Throws std::runtime_error when
  /// the file cannot be created.
  static std::unique_ptr<TraceSink> open(const std::string& path);

  /// Adopts an already-open stream. `owned` controls whether the sink
  /// closes it on destruction (stdout/stderr adopters pass false).
  explicit TraceSink(std::FILE* file, bool owned);
  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;
  ~TraceSink();

  /// Writes one line (a newline is appended) and flushes, atomically with
  /// respect to other writers on this sink.
  void write_line(std::string_view line);

 private:
  std::FILE* file_;
  bool owned_;
  std::mutex mu_;
};

/// Tracing configuration handed down the stack. Copyable and cheap; the
/// sink is borrowed, not owned — whoever opened it (the CLI entry point)
/// must keep it alive for the duration of the traced work.
struct Config {
  TraceSink* sink = nullptr;

  [[nodiscard]] bool enabled() const { return sink != nullptr; }
};

/// One trace event. Builds `{"ev":kind,"t_us":<now>,...}`; fields are
/// forwarded to JsonWriter (strings escaped, numbers exact).
class Event {
 public:
  explicit Event(std::string_view kind) {
    writer_.field("ev", kind);
    writer_.field("t_us", static_cast<std::int64_t>(now_us()));
  }

  template <typename V>
  Event& field(std::string_view key, V&& v) {
    writer_.field(key, std::forward<V>(v));
    return *this;
  }

  /// Splices pre-rendered JSON (e.g. an array built with append_json_array).
  Event& field_raw(std::string_view key, std::string_view json) {
    writer_.field_raw(key, json);
    return *this;
  }

  void emit(TraceSink& sink) { sink.write_line(writer_.str()); }

  /// Convenience: emits iff the config carries a sink.
  void emit(const Config& config) {
    if (config.enabled()) emit(*config.sink);
  }

 private:
  JsonWriter writer_;
};

/// Renders an integer container as a JSON array ("[1,4,9]") for field_raw.
template <typename Container>
[[nodiscard]] std::string json_int_array(const Container& xs) {
  std::string out = "[";
  bool first = true;
  for (const auto& x : xs) {
    if (!first) out += ',';
    first = false;
    out += std::to_string(x);
  }
  out += ']';
  return out;
}

}  // namespace psse::obs
