// Per-phase wall-time accounting for one solver instance.
//
// The DPLL(T) stack attributes its time to four phases: CNF encoding
// (term -> SAT translation), boolean constraint propagation, the simplex
// pivot loop, and the theory-check envelope around it (bound transfer,
// conflict extraction). Accounting is pull-based and allocation-free: the
// instrumented layers hold a `PhaseTimes*` that is null unless a caller
// opted in, so the disabled cost is one pointer test per phase boundary —
// no clock reads, no stores.
//
// The accumulators are plain (non-atomic) counters: a PhaseTimes instance
// belongs to exactly one solver, and solvers are single-threaded by
// contract (the parallel runtime gives each worker its own clone).
#pragma once

#include <chrono>
#include <cstdint>

namespace psse::obs {

/// Monotonic timestamp in microseconds (steady clock; origin unspecified).
[[nodiscard]] inline std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Cumulative microseconds per solver phase. Monotone counters: snapshot
/// and subtract for per-solve deltas, or reset() between solves.
struct PhaseTimes {
  std::uint64_t encode_us = 0;     ///< term -> CNF translation
  std::uint64_t propagate_us = 0;  ///< boolean unit propagation
  std::uint64_t simplex_us = 0;    ///< simplex feasibility restoration
  std::uint64_t tprop_us = 0;      ///< implied-bound derivation (theory
                                   ///< propagation back into the SAT core)
  std::uint64_t theory_us = 0;     ///< whole theory_check envelope
                                   ///< (includes simplex_us and tprop_us)
  std::uint64_t ftran_us = 0;      ///< eta-file replay into exact rows
                                   ///< (Simplex::ensure_fresh; nested inside
                                   ///< simplex_us or tprop_us)
  std::uint64_t btran_us = 0;      ///< basis refactorisation (backlog
                                   ///< drain or Markowitz rebuild + mirror
                                   ///< resync; nested inside simplex_us,
                                   ///< and a drain's replay time counts in
                                   ///< ftran_us too)

  void reset() { *this = PhaseTimes{}; }

  [[nodiscard]] PhaseTimes since(const PhaseTimes& earlier) const {
    PhaseTimes d;
    d.encode_us = encode_us - earlier.encode_us;
    d.propagate_us = propagate_us - earlier.propagate_us;
    d.simplex_us = simplex_us - earlier.simplex_us;
    d.tprop_us = tprop_us - earlier.tprop_us;
    d.theory_us = theory_us - earlier.theory_us;
    d.ftran_us = ftran_us - earlier.ftran_us;
    d.btran_us = btran_us - earlier.btran_us;
    return d;
  }
};

/// RAII accumulator: adds the scope's duration to `*slot` on destruction;
/// a null slot makes both constructor and destructor a single branch.
class ScopedPhaseTimer {
 public:
  explicit ScopedPhaseTimer(std::uint64_t* slot)
      : slot_(slot), start_(slot == nullptr ? 0 : now_us()) {}
  ScopedPhaseTimer(const ScopedPhaseTimer&) = delete;
  ScopedPhaseTimer& operator=(const ScopedPhaseTimer&) = delete;
  ~ScopedPhaseTimer() {
    if (slot_ != nullptr) {
      *slot_ += static_cast<std::uint64_t>(now_us() - start_);
    }
  }

 private:
  std::uint64_t* slot_;
  std::int64_t start_;
};

}  // namespace psse::obs
