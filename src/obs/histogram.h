// Lock-free latency histogram for the serving layer's percentile summary.
//
// Values (microseconds) land in buckets that are exact below 128 and
// log-spaced with 8 linear sub-buckets per octave above — a constant ~400
// buckets covering [0, 2^41) with a worst-case quantile overestimate of
// one sub-bucket width (12.5%). record() is a single relaxed fetch_add on
// an atomic counter, so every pool worker records without coordination;
// quantile() walks the counters with relaxed loads and may run concurrently
// with recorders (a snapshot racing new arrivals is as meaningful as any
// percentile of a live stream gets).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

namespace psse::obs {

class LatencyHistogram {
 public:
  static constexpr int kLinearBuckets = 128;   // exact 0..127 us
  static constexpr int kSubBuckets = 8;        // per octave above that
  static constexpr int kOctaves = 34;          // up to ~2^41 us (~25 days)
  static constexpr int kNumBuckets =
      kLinearBuckets + kOctaves * kSubBuckets;

  void record(std::uint64_t us) {
    counts_[bucket_index(us)].fetch_add(1, std::memory_order_relaxed);
    total_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t count() const {
    return total_.load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket holding the q-quantile (q in [0,1]); 0 when
  /// empty. quantile(0.5) <= quantile(0.95) <= quantile(0.99) always.
  [[nodiscard]] std::uint64_t quantile_us(double q) const {
    const std::uint64_t total = count();
    if (total == 0) return 0;
    if (q < 0) q = 0;
    if (q > 1) q = 1;
    // Rank of the target observation, 1-based ceil: the smallest bucket
    // whose cumulative count reaches it.
    std::uint64_t rank =
        static_cast<std::uint64_t>(q * static_cast<double>(total));
    if (rank == 0) rank = 1;
    if (rank > total) rank = total;
    std::uint64_t cum = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
      cum += counts_[static_cast<std::size_t>(i)].load(
          std::memory_order_relaxed);
      if (cum >= rank) return bucket_upper_bound(i);
    }
    return bucket_upper_bound(kNumBuckets - 1);
  }

  void reset() {
    for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
    total_.store(0, std::memory_order_relaxed);
  }

  /// Exposed for tests: which bucket a value lands in and the inclusive
  /// upper bound that quantile_us reports for it.
  [[nodiscard]] static int bucket_index(std::uint64_t us) {
    if (us < kLinearBuckets) return static_cast<int>(us);
    int msb = 63;
    while ((us & (1ULL << msb)) == 0) --msb;
    if (msb - 7 >= kOctaves) return kNumBuckets - 1;  // clamp: last bucket
    const int sub =
        static_cast<int>((us >> (msb - 3)) & (kSubBuckets - 1));
    return kLinearBuckets + (msb - 7) * kSubBuckets + sub;
  }

  [[nodiscard]] static std::uint64_t bucket_upper_bound(int index) {
    if (index < kLinearBuckets) return static_cast<std::uint64_t>(index);
    const int rel = index - kLinearBuckets;
    const int msb = rel / kSubBuckets + 7;
    const int sub = rel % kSubBuckets;
    // Bucket covers [2^msb + sub*2^(msb-3), 2^msb + (sub+1)*2^(msb-3));
    // report the inclusive upper end.
    return (1ULL << msb) +
           (static_cast<std::uint64_t>(sub + 1) << (msb - 3)) - 1;
  }

 private:
  std::array<std::atomic<std::uint64_t>, kNumBuckets> counts_{};
  std::atomic<std::uint64_t> total_{0};
};

}  // namespace psse::obs
