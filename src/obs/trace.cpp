#include "obs/trace.h"

#include <stdexcept>

namespace psse::obs {

std::unique_ptr<TraceSink> TraceSink::open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    throw std::runtime_error("TraceSink: cannot open trace file: " + path);
  }
  return std::make_unique<TraceSink>(f, /*owned=*/true);
}

TraceSink::TraceSink(std::FILE* file, bool owned)
    : file_(file), owned_(owned) {}

TraceSink::~TraceSink() {
  if (owned_ && file_ != nullptr) std::fclose(file_);
}

void TraceSink::write_line(std::string_view line) {
  std::lock_guard<std::mutex> lock(mu_);
  std::fwrite(line.data(), 1, line.size(), file_);
  std::fputc('\n', file_);
  // Flush per event: traces exist to explain runs that may die mid-way
  // (timeouts, cancellation), so buffered tails must not be lost.
  std::fflush(file_);
}

}  // namespace psse::obs
