#include "runtime/cube.h"

#include <algorithm>
#include <cstddef>
#include <utility>

namespace psse::runtime {

using smt::TermRef;

CubeSet split_cubes(const core::UfdiAttackModel& model,
                    const CubeOptions& options) {
  CubeSet out;
  // Probing perturbs saved phases and burns propagations, so it runs on a
  // throwaway clone; the conquer clones start pristine.
  std::unique_ptr<core::UfdiAttackModel> prober = model.clone();
  std::vector<TermRef> candidates = prober->cube_candidate_terms();

  if (options.burnin_conflicts > 0) {
    // Burn-in: a conflict-bounded solve concentrates branching activity on
    // the contested variables. If it finishes inside the budget the whole
    // split is moot — the instance was easy.
    smt::Budget burnin;
    burnin.max_conflicts = options.burnin_conflicts;
    const core::VerificationResult warm =
        prober->verify_with_assumptions({}, burnin);
    if (warm.result == smt::SolveResult::Unsat) {
      out.refuted = true;
      return out;
    }
    if (warm.result == smt::SolveResult::Sat) return out;  // race re-finds
    std::vector<std::pair<double, TermRef>> ranked;
    ranked.reserve(candidates.size());
    for (TermRef t : candidates) {
      ranked.emplace_back(prober->term_activity(t), t);
    }
    std::stable_sort(ranked.begin(), ranked.end(),
                     [](const auto& a, const auto& b) {
                       return a.first > b.first;
                     });
    for (std::size_t i = 0; i < ranked.size(); ++i) {
      candidates[i] = ranked[i].second;
    }
  }

  struct Scored {
    TermRef term;
    std::uint64_t score;
  };
  std::vector<Scored> scored;
  scored.reserve(candidates.size());
  for (TermRef t : candidates) {
    if (out.probes >= options.max_probes) break;
    const int pos = prober->probe_term(t);
    const int neg = prober->probe_term(~t);
    out.probes += 2;
    if (pos < 0 && neg < 0) {
      // Both phases conflict at level 0: the instance is UNSAT already.
      out.refuted = true;
      out.cubes.clear();
      out.forced.clear();
      return out;
    }
    if (pos < 0) {
      out.forced.push_back(~t);
      continue;
    }
    if (neg < 0) {
      out.forced.push_back(t);
      continue;
    }
    if (pos == 0 && neg == 0) continue;  // inert either way: useless split
    // Two-sided lookahead score, min-biased: a good split variable forces
    // many consequences in *both* phases (a one-sided cascade just makes
    // one cube trivial and leaves the other as hard as the original).
    const auto lo = static_cast<std::uint64_t>(std::min(pos, neg));
    const auto hi = static_cast<std::uint64_t>(std::max(pos, neg));
    scored.push_back({t, (lo << 12) + hi});
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) {
                     return a.score > b.score;
                   });

  std::uint32_t depth = options.depth;
  while (depth > 0 && (1ull << depth) > options.max_cubes) --depth;
  if (scored.size() < depth) depth = static_cast<std::uint32_t>(scored.size());
  if (depth == 0) return out;  // nothing to split on: caller races instead

  out.cubes.reserve(1ull << depth);
  for (std::uint64_t mask = 0; mask < (1ull << depth); ++mask) {
    std::vector<TermRef> cube = out.forced;
    cube.reserve(out.forced.size() + depth);
    for (std::uint32_t k = 0; k < depth; ++k) {
      const TermRef t = scored[k].term;
      cube.push_back((mask >> k) & 1u ? t : ~t);
    }
    out.cubes.push_back(std::move(cube));
  }
  return out;
}

}  // namespace psse::runtime
