// Bounded thread-safe learned-clause sharing channel.
//
// One ClauseChannel is shared by a fleet of sibling solvers (portfolio
// members or parallel CEGIS workers) operating on clones of one model.
// Each solver attaches through its own Endpoint (smt::ClauseExchange):
// exports append to a bounded ring under a mutex; imports drain every
// entry the endpoint has not seen yet, skipping the endpoint's own
// exports. When the ring is full the oldest entry is dropped — sharing is
// best-effort by design, so a slow importer can never stall or bloat the
// fleet, it just misses old clauses.
//
// Sequence numbers are monotone across drops, which gives endpoints an
// O(1) has_pending(): entries published since the endpoint's cursor,
// minus its own exports since then, is exactly the number of sibling
// clauses it has not imported (whether or not they are still in the
// ring).
//
// Thread-safety: channel state is mutex-protected (plus a lock-free
// published-count fast path for has_pending); each Endpoint's cursor is
// owned by its solver's thread, per the ClauseExchange contract.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "smt/clause_exchange.h"

namespace psse::runtime {

class ClauseChannel final : public smt::ClauseExchangeHub {
 public:
  /// `capacity` bounds the ring (entries, not literals); 0 is rejected.
  explicit ClauseChannel(std::size_t capacity = 4096);

  class Endpoint;
  /// Creates this solver's attachment point. The channel owns it; the
  /// pointer stays valid for the channel's lifetime, and each endpoint is
  /// single-owner (one solver thread).
  [[nodiscard]] smt::ClauseExchange* make_endpoint() override;

  /// Lifetime clause count accepted into the ring (monotone across drops).
  [[nodiscard]] std::uint64_t published() const {
    return published_.load(std::memory_order_acquire);
  }
  /// Entries evicted because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  friend class Endpoint;
  struct Entry {
    std::uint64_t seq;
    std::uint32_t producer;
    std::uint32_t lbd;
    std::vector<smt::Lit> lits;
  };

  void publish(std::uint32_t producer, const std::vector<smt::Lit>& lits,
               std::uint32_t lbd);
  void drain(std::uint64_t cursor, std::uint32_t consumer,
             std::vector<std::vector<smt::Lit>>& out);

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::deque<Entry> ring_;          // seq-ordered; front is oldest
  std::atomic<std::uint64_t> published_{0};  // == seq of the next entry
  std::uint64_t dropped_ = 0;
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

/// A solver's view of the channel; plugs into SatOptions::exchange. All
/// methods are called from the owning solver's thread only.
class ClauseChannel::Endpoint final : public smt::ClauseExchange {
 public:
  void export_clause(const std::vector<smt::Lit>& lits,
                     std::uint32_t lbd) override {
    channel_->publish(id_, lits, lbd);
    ++own_since_cursor_;
  }

  [[nodiscard]] bool has_pending() const override {
    // Everything published since our cursor, minus what we published
    // ourselves, was authored by siblings (drops don't reset sequence
    // numbers, so this also counts clauses already evicted — a harmless
    // over-approximation that triggers one empty drain at worst).
    return channel_->published() - cursor_ > own_since_cursor_;
  }

  void import_clauses(std::vector<std::vector<smt::Lit>>& out) override {
    channel_->drain(cursor_, id_, out);
    cursor_ = channel_->published();
    own_since_cursor_ = 0;
  }

 private:
  friend class ClauseChannel;
  Endpoint(ClauseChannel* channel, std::uint32_t id)
      : channel_(channel), id_(id) {}

  ClauseChannel* channel_;
  std::uint32_t id_;
  std::uint64_t cursor_ = 0;         // first sequence number not yet seen
  std::uint64_t own_since_cursor_ = 0;
};

}  // namespace psse::runtime
