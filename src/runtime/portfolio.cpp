#include "runtime/portfolio.h"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>

#include "runtime/clause_channel.h"
#include "runtime/thread_pool.h"
#include "smt/common.h"

namespace psse::runtime {

std::vector<PortfolioMember> default_portfolio(std::size_t n) {
  using smt::SatOptions;
  std::vector<PortfolioMember> members;
  members.reserve(n);
  auto add = [&](const char* label, SatOptions o) {
    if (members.size() < n) members.push_back({label, o});
  };
  // Member 0 must stay the default configuration (serial-equivalence
  // anchor for tests and for the deterministic mode). The rest of the
  // ladder is ordered by measured strength on the data/ verification
  // suite, so small portfolios get the configurations most likely to
  // complement the baseline.
  add("baseline", {});
  {
    SatOptions o;
    o.default_phase = true;
    o.theory_check_period = 2;
    o.restart_base = 200;
    add("pos-lazy", o);
  }
  {
    SatOptions o;
    o.random_branch_permil = 50;
    o.default_phase = true;
    o.seed = 0x9e3779b97f4a7c15ull;
    add("pos-random-5pct", o);
  }
  {
    SatOptions o;
    o.restart_base = 50;
    o.var_decay = 0.90;
    add("agile-restarts", o);
  }
  {
    SatOptions o;
    o.theory_check_period = 4;
    add("lazy-theory", o);
  }
  {
    SatOptions o;
    o.random_branch_permil = 20;
    o.seed = 0x2545f4914f6cdd1dull;
    add("random-2pct", o);
  }
  {
    SatOptions o;
    o.restart_base = 400;
    o.var_decay = 0.99;
    add("slow-restarts", o);
  }
  {
    SatOptions o;
    o.default_phase = true;
    add("pos-phase", o);
  }
  // Beyond the ladder: random-branching variants with distinct seeds.
  for (std::size_t k = members.size(); k < n; ++k) {
    SatOptions o;
    o.random_branch_permil = 30 + 8 * static_cast<std::uint32_t>(k % 8);
    o.default_phase = (k & 1) != 0;
    o.seed = 0x100000001b3ull * (k + 1) + 0xcbf29ce484222325ull;
    members.push_back({"random-seed-" + std::to_string(k), o});
  }
  return members;
}

PortfolioResult verify_portfolio(const core::UfdiAttackModel& model,
                                 const PortfolioOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<PortfolioMember> members =
      options.members.empty() ? default_portfolio(options.num_threads)
                              : options.members;
  PSSE_CHECK(!members.empty(), "verify_portfolio: no portfolio members");
  const std::size_t n = members.size();

  // Learnt-clause sharing: one channel, one endpoint per member. The
  // channel owns the endpoints and is declared before the pool, so it
  // outlives every worker.
  ClauseChannel channel;
  if (options.share_clauses && n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      members[i].options.exchange = channel.make_endpoint();
    }
  }

  PortfolioResult out;
  out.members.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.members[i].label = members[i].label;

  // First-winner cancellation (racing mode only). A caller-supplied stop
  // token is layered on top by the wait loop below, which forwards it into
  // this internal flag so members need to poll only one.
  std::atomic<bool> raceStop{false};
  std::mutex mu;
  std::vector<core::VerificationResult> results(n);
  int firstDefinitive = -1;  // completion order, guarded by mu

  ThreadPool pool(n);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&, i] {
      // Clone inside the worker: model encoding is itself a significant
      // cost on big grids, so members pay it concurrently.
      auto clone = model.clone();
      clone->set_solver_options(members[i].options);
      smt::Budget budget = options.budget;
      budget.stop = &raceStop;
      core::VerificationResult v = clone->verify(budget);
      // Whether the abort flag was up when this member finished decides
      // "cancelled" vs "own budget exhausted" for an Unknown verdict.
      const bool raceDecided = raceStop.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      PortfolioMemberOutcome& outcome = out.members[i];
      outcome.result = v.result;
      outcome.seconds = v.seconds;
      outcome.stats = v.stats;
      outcome.cancelled =
          v.result == smt::SolveResult::Unknown && raceDecided;
      if (options.trace.enabled()) {
        obs::Event("portfolio_member")
            .field("index", static_cast<std::uint64_t>(i))
            .field("label", outcome.label)
            .field("verdict", smt::to_cstring(v.result))
            .field("cancelled", outcome.cancelled)
            .field("seconds", v.seconds)
            .field("decisions", v.stats.sat.decisions)
            .field("conflicts", v.stats.sat.conflicts)
            .field("restarts", v.stats.sat.restarts)
            .field("pivots", v.stats.pivots)
            .field("clauses_exported", v.stats.sat.clauses_exported)
            .field("clauses_imported", v.stats.sat.clauses_imported)
            .field("clauses_accepted", v.stats.sat.clauses_accepted)
            .emit(options.trace);
      }
      results[i] = std::move(v);
      if (results[i].result != smt::SolveResult::Unknown &&
          firstDefinitive < 0) {
        firstDefinitive = static_cast<int>(i);
        if (!options.deterministic) {
          raceStop.store(true, std::memory_order_relaxed);
        }
      }
    }));
  }

  // Wait for all members, forwarding an external stop token if given.
  for (std::future<void>& f : futures) {
    if (options.budget.stop == nullptr) {
      f.wait();
      continue;
    }
    while (f.wait_for(std::chrono::milliseconds(5)) !=
           std::future_status::ready) {
      if (options.budget.stop->load(std::memory_order_relaxed)) {
        raceStop.store(true, std::memory_order_relaxed);
      }
    }
  }

  if (options.deterministic) {
    // Reproducible winner: lowest index with a definitive answer,
    // regardless of completion order.
    for (std::size_t i = 0; i < n; ++i) {
      if (results[i].result != smt::SolveResult::Unknown) {
        out.winner = static_cast<int>(i);
        break;
      }
    }
  } else {
    out.winner = firstDefinitive;
  }
  if (out.winner >= 0) {
    out.verification = std::move(results[static_cast<std::size_t>(out.winner)]);
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (options.trace.enabled()) {
    obs::Event("portfolio_done")
        .field("winner", out.winner)
        .field("winner_label",
               out.winner >= 0
                   ? out.members[static_cast<std::size_t>(out.winner)].label
                   : std::string())
        .field("verdict", smt::to_cstring(out.verification.result))
        .field("deterministic", options.deterministic)
        .field("members", static_cast<std::uint64_t>(n))
        .field("seconds", out.seconds)
        .emit(options.trace);
  }
  return out;
}

}  // namespace psse::runtime
