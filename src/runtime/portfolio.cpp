#include "runtime/portfolio.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <thread>

#include "runtime/clause_channel.h"
#include "runtime/thread_pool.h"
#include "smt/common.h"

namespace psse::runtime {

std::vector<PortfolioMember> engine_presets() {
  using smt::BranchingHeuristic;
  using smt::RestartSchedule;
  using smt::SatOptions;
  std::vector<PortfolioMember> presets;
  presets.reserve(8);
  // Preset 0 must stay the default engine: tools resolve --engine baseline
  // to the serial search, and the conquer scheduler's worker 0 anchors on
  // it.
  presets.push_back({"baseline", {}});
  {
    SatOptions o;
    o.engine.branching = BranchingHeuristic::kLrb;
    presets.push_back({"lrb", o});
  }
  {
    SatOptions o;
    o.engine.cb_limit = 64;
    presets.push_back({"chrono-64", o});
  }
  {
    SatOptions o;
    o.engine.restart = RestartSchedule::kGlucoseEma;
    o.restart_base = 50;
    presets.push_back({"ema-restarts", o});
  }
  {
    SatOptions o;
    o.engine.restart = RestartSchedule::kGeometric;
    o.engine.geometric_factor = 1.3;
    presets.push_back({"geometric-restarts", o});
  }
  {
    SatOptions o;
    o.engine.branching = BranchingHeuristic::kLrb;
    o.engine.cb_limit = 64;
    o.default_phase = true;
    presets.push_back({"lrb-chrono-pos", o});
  }
  {
    SatOptions o;
    o.engine.cb_limit = 16;
    o.engine.restart = RestartSchedule::kGeometric;
    o.var_decay = 0.90;
    presets.push_back({"chrono-geometric", o});
  }
  {
    SatOptions o;
    o.engine.branching = BranchingHeuristic::kLrb;
    o.engine.restart = RestartSchedule::kGlucoseEma;
    presets.push_back({"lrb-ema", o});
  }
  return presets;
}

bool engine_preset(const std::string& name, PortfolioMember& out) {
  for (PortfolioMember& p : engine_presets()) {
    if (p.label == name) {
      out = std::move(p);
      return true;
    }
  }
  return false;
}

std::vector<PortfolioMember> default_portfolio(std::size_t n) {
  using smt::SatOptions;
  std::vector<PortfolioMember> engines = engine_presets();
  std::vector<PortfolioMember> members;
  members.reserve(n);
  auto add = [&](PortfolioMember m) {
    if (members.size() < n) members.push_back(std::move(m));
  };
  // Member 0 must stay the default configuration (serial-equivalence
  // anchor for tests and for the deterministic mode). The ladder
  // interleaves the structural engine presets with the historical
  // seed/phase variants so small portfolios differ in search *shape*, not
  // just in where the RNG sends near-identical searches.
  add(engines[0]);  // baseline
  add(engines[1]);  // lrb
  add(engines[2]);  // chrono-64
  {
    SatOptions o;
    o.default_phase = true;
    o.theory_check_period = 2;
    o.restart_base = 200;
    add({"pos-lazy", o});
  }
  add(engines[3]);  // ema-restarts
  add(engines[4]);  // geometric-restarts
  {
    SatOptions o;
    o.random_branch_permil = 50;
    o.default_phase = true;
    o.seed = 0x9e3779b97f4a7c15ull;
    add({"pos-random-5pct", o});
  }
  add(engines[5]);  // lrb-chrono-pos
  // Beyond the ladder: random-branching overlays of the engine presets
  // with distinct seeds, so even deep portfolios keep structural variety.
  for (std::size_t k = members.size(); k < n; ++k) {
    PortfolioMember m = engines[k % engines.size()];
    m.options.random_branch_permil =
        30 + 8 * static_cast<std::uint32_t>(k % 8);
    m.options.default_phase = (k & 1) != 0;
    m.options.seed = 0x100000001b3ull * (k + 1) + 0xcbf29ce484222325ull;
    m.label = "random-seed-" + std::to_string(k) + "-" + m.label;
    members.push_back(std::move(m));
  }
  return members;
}

namespace {

void emit_member_event(const obs::Config& trace, std::uint64_t index,
                       const PortfolioMemberOutcome& outcome,
                       const core::VerificationResult& v) {
  obs::Event("portfolio_member")
      .field("index", index)
      .field("label", outcome.label)
      .field("verdict", smt::to_cstring(v.result))
      .field("cancelled", outcome.cancelled)
      .field("seconds", v.seconds)
      .field("decisions", v.stats.sat.decisions)
      .field("conflicts", v.stats.sat.conflicts)
      .field("restarts", v.stats.sat.restarts)
      .field("pivots", v.stats.pivots)
      .field("clauses_exported", v.stats.sat.clauses_exported)
      .field("clauses_imported", v.stats.sat.clauses_imported)
      .field("clauses_accepted", v.stats.sat.clauses_accepted)
      .field("chrono_backtracks", v.stats.sat.chrono_backtracks)
      .field("lrb_selections", v.stats.sat.lrb_selections)
      .emit(trace);
}

void emit_done_event(const obs::Config& trace, const PortfolioResult& out,
                     const PortfolioOptions& options, std::size_t members) {
  obs::Event("portfolio_done")
      .field("winner", out.winner)
      .field("winner_label",
             out.winner >= 0
                 ? out.members[static_cast<std::size_t>(out.winner)].label
                 : std::string())
      .field("verdict", smt::to_cstring(out.verification.result))
      .field("deterministic", options.deterministic)
      .field("members", static_cast<std::uint64_t>(members))
      .field("seconds", out.seconds)
      .field("mode", options.mode == PortfolioMode::kCubeAndConquer
                         ? "cube"
                         : "race")
      .field("cubes_generated", out.cubes_generated)
      .field("cubes_refuted", out.cubes_refuted)
      .emit(trace);
}

// Cross-cube effort aggregation for the joint UNSAT verdict: counters sum
// (total work the cube tree cost), gauges take the max (peak footprint of
// any conqueror).
void accumulate_stats(smt::SolverStats& acc, const smt::SolverStats& d) {
  acc.sat.decisions += d.sat.decisions;
  acc.sat.propagations += d.sat.propagations;
  acc.sat.conflicts += d.sat.conflicts;
  acc.sat.restarts += d.sat.restarts;
  acc.sat.learned_clauses += d.sat.learned_clauses;
  acc.sat.deleted_clauses += d.sat.deleted_clauses;
  acc.sat.theory_checks += d.sat.theory_checks;
  acc.sat.theory_conflicts += d.sat.theory_conflicts;
  acc.sat.theory_propagations += d.sat.theory_propagations;
  acc.sat.arena_gcs += d.sat.arena_gcs;
  acc.sat.clauses_exported += d.sat.clauses_exported;
  acc.sat.clauses_imported += d.sat.clauses_imported;
  acc.sat.clauses_accepted += d.sat.clauses_accepted;
  acc.sat.chrono_backtracks += d.sat.chrono_backtracks;
  acc.sat.lrb_selections += d.sat.lrb_selections;
  acc.pivots += d.pivots;
  acc.bound_flips += d.bound_flips;
  acc.bland_fallbacks += d.bland_fallbacks;
  acc.bigint_promotions += d.bigint_promotions;
  acc.float_pivots += d.float_pivots;
  acc.exact_recomputes += d.exact_recomputes;
  acc.filter_disagreements += d.filter_disagreements;
  acc.filter_fallbacks += d.filter_fallbacks;
  acc.eta_updates += d.eta_updates;
  acc.refactorisations += d.refactorisations;
  acc.eta_file_len_max = std::max(acc.eta_file_len_max, d.eta_file_len_max);
  acc.num_terms = std::max(acc.num_terms, d.num_terms);
  acc.num_atoms = std::max(acc.num_atoms, d.num_atoms);
  acc.num_bool_vars = std::max(acc.num_bool_vars, d.num_bool_vars);
  acc.num_real_vars = std::max(acc.num_real_vars, d.num_real_vars);
  acc.footprint_bytes = std::max(acc.footprint_bytes, d.footprint_bytes);
  acc.arena_capacity_bytes =
      std::max(acc.arena_capacity_bytes, d.arena_capacity_bytes);
  acc.arena_live_bytes = std::max(acc.arena_live_bytes, d.arena_live_bytes);
}

PortfolioResult race_portfolio(const core::UfdiAttackModel& model,
                               const PortfolioOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  std::vector<PortfolioMember> members =
      options.members.empty() ? default_portfolio(options.num_threads)
                              : options.members;
  PSSE_CHECK(!members.empty(), "verify_portfolio: no portfolio members");
  const std::size_t n = members.size();

  // Learnt-clause sharing: one channel, one endpoint per member. The
  // channel owns the endpoints and is declared before the pool, so it
  // outlives every worker.
  ClauseChannel channel;
  if (options.share_clauses && n > 1) {
    for (std::size_t i = 0; i < n; ++i) {
      members[i].options.exchange = channel.make_endpoint();
    }
  }

  PortfolioResult out;
  out.members.resize(n);
  for (std::size_t i = 0; i < n; ++i) out.members[i].label = members[i].label;

  // First-winner cancellation (racing mode only). A caller-supplied stop
  // token is layered on top by the wait loop below, which forwards it into
  // this internal flag so members need to poll only one.
  std::atomic<bool> raceStop{false};
  std::mutex mu;
  std::vector<core::VerificationResult> results(n);
  int firstDefinitive = -1;  // completion order, guarded by mu

  ThreadPool pool(n);
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(pool.submit([&, i] {
      // Clone inside the worker: model encoding is itself a significant
      // cost on big grids, so members pay it concurrently.
      auto clone = model.clone();
      clone->set_solver_options(members[i].options);
      smt::Budget budget = options.budget;
      budget.stop = &raceStop;
      core::VerificationResult v = clone->verify(budget);
      // Whether the abort flag was up when this member finished decides
      // "cancelled" vs "own budget exhausted" for an Unknown verdict.
      const bool raceDecided = raceStop.load(std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu);
      PortfolioMemberOutcome& outcome = out.members[i];
      outcome.result = v.result;
      outcome.seconds = v.seconds;
      outcome.stats = v.stats;
      outcome.cancelled =
          v.result == smt::SolveResult::Unknown && raceDecided;
      if (options.trace.enabled()) {
        emit_member_event(options.trace, static_cast<std::uint64_t>(i),
                          outcome, v);
      }
      results[i] = std::move(v);
      if (results[i].result != smt::SolveResult::Unknown &&
          firstDefinitive < 0) {
        firstDefinitive = static_cast<int>(i);
        if (!options.deterministic) {
          raceStop.store(true, std::memory_order_relaxed);
        }
      }
    }));
  }

  // Wait for all members, forwarding an external stop token if given.
  for (std::future<void>& f : futures) {
    if (options.budget.stop == nullptr) {
      f.wait();
      continue;
    }
    while (f.wait_for(std::chrono::milliseconds(5)) !=
           std::future_status::ready) {
      if (options.budget.stop->load(std::memory_order_relaxed)) {
        raceStop.store(true, std::memory_order_relaxed);
      }
    }
  }

  if (options.deterministic) {
    // Reproducible winner: lowest index with a definitive answer,
    // regardless of completion order.
    for (std::size_t i = 0; i < n; ++i) {
      if (results[i].result != smt::SolveResult::Unknown) {
        out.winner = static_cast<int>(i);
        break;
      }
    }
  } else {
    out.winner = firstDefinitive;
  }
  if (out.winner >= 0) {
    out.verification = std::move(results[static_cast<std::size_t>(out.winner)]);
  }
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (options.trace.enabled()) {
    emit_done_event(options.trace, out, options, n);
  }
  return out;
}

// Cube-and-conquer: split the instance into sign-combination cubes on
// topology-poisoning literals, then fan cubes across the pool.
//
// Scheduling: min(num_threads, cubes) workers, each cloning the model
// ONCE and pulling cube indices from a shared counter — more cubes than
// workers keeps everyone busy while a clone's learnt database stays warm
// across the cubes it conquers. Worker w runs engine members[w % |members|]
// for structural diversity across the tree.
//
// Clause sharing between conquerors is sound even though they solve
// different cubes: cube literals enter the solver as *assumptions*, never
// as clauses, and CDCL resolves conflict clauses only over reason clauses
// from the shared database — assumption/decision literals appear in learnt
// clauses as literals but are never resolved away. Every learnt clause is
// therefore implied by the shared database alone, independent of which
// cube produced it, and the existing ClauseChannel level-0 import path
// lands it safely in any sibling (see smt/clause_exchange.h).
//
// Verdicts (cube-tree accounting): the cubes partition the search space,
// so SAT from any cube is a genuine model and short-circuits the rest
// (deterministic mode runs every cube and takes the lowest SAT index);
// UNSAT requires *every* cube refuted; anything else — a budget-exhausted
// or cancelled cube — leaves the tree open and the verdict Unknown.
PortfolioResult conquer_portfolio(const core::UfdiAttackModel& model,
                                  const PortfolioOptions& options) {
  const auto start = std::chrono::steady_clock::now();
  const CubeSet cubes = split_cubes(model, options.cube);
  if (cubes.refuted) {
    // Lookahead alone closed the instance: some split candidate conflicts
    // in both phases at level 0.
    PortfolioResult out;
    out.verification.result = smt::SolveResult::Unsat;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    out.verification.seconds = out.seconds;
    if (options.trace.enabled()) {
      emit_done_event(options.trace, out, options, 0);
    }
    return out;
  }
  if (cubes.cubes.size() < 2) {
    // No usable split: racing is the better use of the threads.
    return race_portfolio(model, options);
  }

  const std::size_t numCubes = cubes.cubes.size();
  // Conquer workers are CPU-bound from the first instant (no member ever
  // idles waiting for a verdict the way a losing racer does), so running
  // more of them than hardware threads only adds clone cost and context
  // switching. num_threads stays the parallelism *budget*; the host core
  // count caps how much of it is spent.
  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  const std::size_t numWorkers = std::min(
      {options.num_threads > 0 ? options.num_threads : 1, numCubes, hw});
  // Default worker engines: robust presets only. A racing portfolio can
  // afford aggressive members (a slow racer just loses), but in conquer
  // every cube gates the UNSAT verdict, so a member that is pathological
  // on one cube stalls the whole tree. Phase-forcing and random-branching
  // variants are exactly the ones observed to do that; callers who want
  // them can still pass explicit members.
  std::vector<PortfolioMember> members;
  if (options.members.empty()) {
    const std::vector<PortfolioMember> presets = engine_presets();
    // baseline, lrb, chrono-64, ema-restarts, geometric-restarts.
    for (std::size_t k = 0; k < numWorkers; ++k) {
      members.push_back(presets[k % 5]);
    }
  } else {
    members = options.members;
  }

  ClauseChannel channel;
  std::vector<smt::ClauseExchange*> endpoints(numWorkers, nullptr);
  if (options.share_clauses && numWorkers > 1) {
    for (std::size_t w = 0; w < numWorkers; ++w) {
      endpoints[w] = channel.make_endpoint();
    }
  }

  PortfolioResult out;
  out.cubes_generated = numCubes;
  out.members.resize(numCubes);
  for (std::size_t k = 0; k < numCubes; ++k) {
    out.members[k].label = "cube-" + std::to_string(k);
  }

  std::atomic<bool> raceStop{false};
  std::atomic<std::size_t> nextCube{0};
  std::mutex mu;
  std::vector<core::VerificationResult> results(numCubes);
  std::uint64_t refuted = 0;  // guarded by mu
  int satCube = -1;           // first SAT observed, guarded by mu

  ThreadPool pool(numWorkers);
  std::vector<std::future<void>> futures;
  futures.reserve(numWorkers);
  for (std::size_t w = 0; w < numWorkers; ++w) {
    futures.push_back(pool.submit([&, w] {
      const PortfolioMember& member = members[w % members.size()];
      auto clone = model.clone();
      smt::SatOptions sopts = member.options;
      sopts.exchange = endpoints[w];
      clone->set_solver_options(sopts);
      for (;;) {
        const std::size_t k =
            nextCube.fetch_add(1, std::memory_order_relaxed);
        if (k >= numCubes) break;
        if (!options.deterministic &&
            raceStop.load(std::memory_order_relaxed)) {
          // The tree is already decided (SAT short-circuit or external
          // stop): mark the unstarted cube cancelled and keep draining so
          // every cube gets an outcome.
          std::lock_guard<std::mutex> lock(mu);
          out.members[k].label += "/" + member.label;
          out.members[k].cancelled = true;
          continue;
        }
        smt::Budget budget = options.budget;
        budget.stop = &raceStop;
        core::VerificationResult v =
            clone->verify_with_assumptions(cubes.cubes[k], budget);
        const bool raceDecided = raceStop.load(std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(mu);
        PortfolioMemberOutcome& outcome = out.members[k];
        outcome.label += "/" + member.label;
        outcome.result = v.result;
        outcome.seconds = v.seconds;
        outcome.stats = v.stats;
        outcome.cancelled =
            v.result == smt::SolveResult::Unknown && raceDecided;
        if (options.trace.enabled()) {
          emit_member_event(options.trace, static_cast<std::uint64_t>(k),
                            outcome, v);
        }
        if (v.result == smt::SolveResult::Unsat) ++refuted;
        if (v.result == smt::SolveResult::Sat && satCube < 0) {
          satCube = static_cast<int>(k);
          if (!options.deterministic) {
            raceStop.store(true, std::memory_order_relaxed);
          }
        }
        results[k] = std::move(v);
      }
    }));
  }

  for (std::future<void>& f : futures) {
    if (options.budget.stop == nullptr) {
      f.wait();
      continue;
    }
    while (f.wait_for(std::chrono::milliseconds(5)) !=
           std::future_status::ready) {
      if (options.budget.stop->load(std::memory_order_relaxed)) {
        raceStop.store(true, std::memory_order_relaxed);
      }
    }
  }

  out.cubes_refuted = refuted;
  int winner = satCube;
  if (options.deterministic) {
    winner = -1;
    for (std::size_t k = 0; k < numCubes; ++k) {
      if (results[k].result == smt::SolveResult::Sat) {
        winner = static_cast<int>(k);
        break;
      }
    }
  }
  if (winner >= 0) {
    out.winner = winner;
    out.verification = std::move(results[static_cast<std::size_t>(winner)]);
  } else if (refuted == numCubes) {
    // Every branch of the cube tree is closed: joint UNSAT. The winner
    // stays -1 — no single cube owns the proof — and the reported stats
    // are the whole tree's effort.
    out.verification.result = smt::SolveResult::Unsat;
    for (std::size_t k = 0; k < numCubes; ++k) {
      accumulate_stats(out.verification.stats, results[k].stats);
    }
  }  // else: some cube Unknown/cancelled — verdict stays Unknown.
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  if (winner < 0) out.verification.seconds = out.seconds;
  if (options.trace.enabled()) {
    emit_done_event(options.trace, out, options, numCubes);
  }
  return out;
}

}  // namespace

PortfolioResult verify_portfolio(const core::UfdiAttackModel& model,
                                 const PortfolioOptions& options) {
  return options.mode == PortfolioMode::kCubeAndConquer
             ? conquer_portfolio(model, options)
             : race_portfolio(model, options);
}

}  // namespace psse::runtime
