// Cube splitting for cube-and-conquer portfolio verification: partition a
// hard UFDI instance into 2^d sub-instances ("cubes") by fixing the signs
// of d high-impact boolean decisions, so conquer workers refute disjoint
// regions of the search space instead of racing near-identical searches.
//
// The split variables come from the model's structural layer — the per-bus
// substation-compromise indicators cb_j and the el/il topology-attack
// literals (UfdiAttackModel::cube_candidate_terms) — because their
// polarity cascades through the residence closure: fixing one decides a
// whole substation's worth of cz freedom. A bounded burn-in solve on a
// private clone first concentrates branching activity on the variables
// the search actually fights over; candidates are ranked by that activity
// (grids have hundreds of cb_j, and splitting on an arbitrary
// construction-order prefix produces cubes as hard as the original), then
// the top candidates are scored by bounded BCP lookahead
// (SatSolver::probe_literal): a probe that conflicts proves the opposite
// literal is level-0 implied (it joins every cube as a forced unit); a
// candidate that conflicts in *both* phases refutes the whole instance
// during splitting.
//
// Soundness of the partition: the cubes are exactly the 2^d sign
// combinations of the chosen terms, so their disjunction is valid — the
// instance is UNSAT iff every cube is refuted, and any SAT cube yields a
// genuine model (the cube literals are assumptions, never clauses, so no
// conqueror's learnt clauses depend on them; see portfolio.cpp for the
// sharing argument).
#pragma once

#include <cstdint>
#include <vector>

#include "core/attack_model.h"

namespace psse::runtime {

struct CubeOptions {
  /// Number of split terms: up to 2^depth cubes, capped by max_cubes (the
  /// depth is lowered until 2^depth <= max_cubes).
  std::uint32_t depth = 5;
  /// Hard cap on generated cubes. More cubes than conquer threads is
  /// deliberate — the scheduler oversubscribes so early finishers pull
  /// fresh cubes instead of idling.
  std::uint32_t max_cubes = 32;
  /// Probe at most this many candidate literals (two BCP probes each)
  /// before ranking; bounds splitter latency on large grids.
  std::uint32_t max_probes = 96;
  /// Conflict budget for the burn-in solve that warms branching activity
  /// before candidates are ranked. 0 skips the burn-in (candidates keep
  /// construction order). When the burn-in *finishes* within the budget
  /// the split is already decided: Unsat sets CubeSet::refuted, Sat
  /// returns no cubes (the caller's race fallback re-derives the model).
  std::uint64_t burnin_conflicts = 300;
};

struct CubeSet {
  /// The sign-combination cubes, each a conjunction of assumption terms
  /// (forced literals first, then the d split signs). Empty when no usable
  /// split exists — the caller should fall back to racing.
  std::vector<std::vector<smt::TermRef>> cubes;
  /// Literals probing proved level-0 implied (opposite phase conflicted);
  /// already prepended to every cube, kept here for reporting.
  std::vector<smt::TermRef> forced;
  /// True when probing refuted the instance outright: some candidate
  /// conflicts in both phases, so the formula is UNSAT and cubes is empty.
  bool refuted = false;
  /// BCP probes spent (two per fully-probed candidate).
  std::uint64_t probes = 0;
};

/// Splits `model`'s instance on its topology-poisoning terms by bounded
/// lookahead. Probes run on a private clone, so `model` itself is never
/// mutated and stays safe for concurrent conquer cloning. TermRefs are
/// stable across clones (clones re-encode the same scenario identically),
/// so the returned cubes are valid assumption lists for any clone.
[[nodiscard]] CubeSet split_cubes(const core::UfdiAttackModel& model,
                                  const CubeOptions& options = {});

}  // namespace psse::runtime
