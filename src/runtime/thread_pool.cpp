#include "runtime/thread_pool.h"

namespace psse::runtime {

ThreadPool::ThreadPool(std::size_t numThreads) {
  if (numThreads == 0) numThreads = 1;
  workers_.reserve(numThreads);
  for (std::size_t i = 0; i < numThreads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::shutdown() {
  // Claim the worker threads under the lock so exactly one concurrent
  // caller owns the joins; everyone else sees an empty vector.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    workers.swap(workers_);
  }
  cv_.notify_all();
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      // Drain-on-shutdown: only exit once the queue is empty, so every
      // submitted future eventually becomes ready.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task routes exceptions into the future
  }
}

}  // namespace psse::runtime
