#include "runtime/clause_channel.h"

#include "smt/common.h"

namespace psse::runtime {

ClauseChannel::ClauseChannel(std::size_t capacity) : capacity_(capacity) {
  PSSE_CHECK(capacity > 0, "ClauseChannel: capacity == 0");
}

smt::ClauseExchange* ClauseChannel::make_endpoint() {
  std::lock_guard<std::mutex> lock(mu_);
  // Late joiners start with cursor 0 and import the ring's backlog on
  // their first solve — sibling clauses learnt before the endpoint existed
  // are still valid for the shared formula.
  const std::uint32_t id = static_cast<std::uint32_t>(endpoints_.size());
  endpoints_.push_back(std::unique_ptr<Endpoint>(new Endpoint(this, id)));
  return endpoints_.back().get();
}

void ClauseChannel::publish(std::uint32_t producer,
                            const std::vector<smt::Lit>& lits,
                            std::uint32_t lbd) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = published_.load(std::memory_order_relaxed);
  if (ring_.size() == capacity_) {
    ring_.pop_front();
    ++dropped_;
  }
  ring_.push_back({seq, producer, lbd, lits});
  // Release pairs with the acquire in published(): an endpoint that sees
  // the new count will find the entry in the ring (or count it dropped).
  published_.store(seq + 1, std::memory_order_release);
}

void ClauseChannel::drain(std::uint64_t cursor, std::uint32_t consumer,
                          std::vector<std::vector<smt::Lit>>& out) {
  out.clear();
  std::lock_guard<std::mutex> lock(mu_);
  // Ring is seq-ordered; skip the prefix the consumer has already seen.
  for (const Entry& e : ring_) {
    if (e.seq < cursor || e.producer == consumer) continue;
    out.push_back(e.lits);
  }
}

std::uint64_t ClauseChannel::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

}  // namespace psse::runtime
