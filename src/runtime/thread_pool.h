// Fixed-size thread pool with a FIFO work queue and std::future task
// handles.
//
// The pool is the dispatch substrate for the parallel runtime: portfolio
// verification races solver configurations on it, and the batch scenario
// runner fans whole scenario files across it. Tasks are arbitrary
// callables; submit() returns a std::future for the callable's result
// (exceptions thrown by the task surface through the future).
//
// Shutdown semantics: the destructor (or an explicit shutdown()) stops
// accepting new work, *drains the queue* — every task already submitted
// still runs — and joins the workers. Dropping queued work on the floor
// would break futures that callers may still be holding; tasks that should
// die early must observe a CancellationToken instead.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "smt/common.h"

namespace psse::runtime {

class ThreadPool {
 public:
  /// Spawns `numThreads` workers (at least 1).
  explicit ThreadPool(std::size_t numThreads);
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  /// Drains the queue and joins the workers.
  ~ThreadPool();

  /// Enqueues a callable; returns the future for its result. Throws
  /// smt::SmtError if the pool has been shut down.
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    // packaged_task is move-only but std::function needs copyable targets;
    // the shared_ptr indirection bridges the two.
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      PSSE_CHECK(!shutdown_, "ThreadPool::submit after shutdown");
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Stops accepting work, runs everything already queued, joins the
  /// workers. Idempotent; implied by the destructor.
  void shutdown();

  [[nodiscard]] std::size_t size() const { return workers_.size(); }
  /// Queued-but-not-started task count (diagnostics).
  [[nodiscard]] std::size_t pending() const;

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool shutdown_ = false;
};

}  // namespace psse::runtime
