// Cooperative cancellation for the parallel runtime.
//
// A CancellationSource owns a heap-allocated atomic flag; any number of
// CancellationTokens share it. Work that should be cancellable plugs the
// token's raw flag into smt::Budget::stop — the solver polls it in the CDCL
// propagate loop and the simplex pivot loop, so cancellation latency is a
// few thousand propagations or a handful of pivots, not a full solve.
//
// Cancellation is one-way: once requested it stays requested. Tokens are
// cheap to copy and keep the flag alive, so a source may be destroyed while
// solves holding its tokens are still draining.
#pragma once

#include <atomic>
#include <memory>

namespace psse::runtime {

class CancellationToken {
 public:
  CancellationToken() = default;

  /// True once the owning source requested cancellation.
  [[nodiscard]] bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_relaxed);
  }

  /// The raw flag for smt::Budget::stop; null for a default-constructed
  /// (never-cancellable) token.
  [[nodiscard]] const std::atomic<bool>* raw() const { return flag_.get(); }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<std::atomic<bool>> flag_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; idempotent, callable from any thread.
  void cancel() { flag_->store(true, std::memory_order_relaxed); }

  [[nodiscard]] bool cancelled() const {
    return flag_->load(std::memory_order_relaxed);
  }

  [[nodiscard]] CancellationToken token() const {
    return CancellationToken(flag_);
  }

  /// The raw flag for smt::Budget::stop (valid while this source or any of
  /// its tokens is alive).
  [[nodiscard]] const std::atomic<bool>* raw() const { return flag_.get(); }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace psse::runtime
