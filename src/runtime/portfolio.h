// Portfolio verification: race diversified solver configurations on clones
// of one UFDI attack model; the first definitive SAT/UNSAT answer wins and
// cancels the rest.
//
// Soundness: every member runs a sound and complete solver over the *same*
// formula, so all definitive answers agree — racing changes which member
// answers (and which concrete attack vector a SAT answer carries), never
// the verdict. Diversification varies branching polarity, restart
// schedule, VSIDS decay, random-branching rate/seed, and theory-propagation
// aggressiveness (see smt::SatOptions).
//
// Determinism mode trades latency for reproducibility: members are not
// cancelled on a sibling's success, and the winner is the lowest-indexed
// member with a definitive answer rather than the first to finish. With no
// wall-clock member budget this makes the reported result — winner index,
// verdict, and attack vector — independent of thread count and scheduling;
// racing mode only guarantees the verdict.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/attack_model.h"
#include "obs/trace.h"
#include "runtime/cube.h"
#include "smt/budget.h"
#include "smt/sat_solver.h"

namespace psse::runtime {

/// One racing member: a labelled CDCL configuration.
struct PortfolioMember {
  std::string label;
  smt::SatOptions options;
};

/// The standard diversification ladder. Member 0 is always the solver's
/// default configuration, so a 1-member portfolio reproduces the serial
/// verify() search exactly; the ladder interleaves the structural
/// engine_presets() with the historical seed/phase variants, and members
/// beyond it cycle through random-branching overlays of the presets with
/// distinct seeds.
[[nodiscard]] std::vector<PortfolioMember> default_portfolio(std::size_t n);

/// The named structural engine presets: configurations that differ in
/// *search shape* (branching heuristic, backtracking style, restart
/// schedule — smt::EngineConfig), not just in seed or polarity. Preset 0
/// is always "baseline", the default engine. These seed the default
/// portfolio mix and the conquer workers' diversification, and tools
/// expose them by name via --engine.
[[nodiscard]] std::vector<PortfolioMember> engine_presets();

/// Looks up an engine preset by label; returns false (and leaves `out`
/// untouched) when no preset has that name.
[[nodiscard]] bool engine_preset(const std::string& name,
                                 PortfolioMember& out);

/// How verify_portfolio spends its threads.
enum class PortfolioMode {
  /// Race full copies of the instance; first definitive answer wins.
  kRace,
  /// Cube-and-conquer: split the instance into sign-combination cubes on
  /// topology-poisoning literals (split_cubes), then fan the cubes across
  /// the pool. UNSAT requires every cube refuted; SAT short-circuits.
  /// Falls back to racing when no usable split exists.
  kCubeAndConquer,
};

struct PortfolioOptions {
  /// Number of racing members (ignored when `members` is non-empty).
  std::size_t num_threads = 4;
  /// Reproducible winner selection (see file comment).
  bool deterministic = false;
  /// Per-member budget. A caller-supplied stop token is honoured (it
  /// cancels the whole portfolio); the internal first-winner cancellation
  /// is layered on top of it.
  smt::Budget budget;
  /// Explicit member list; empty selects default_portfolio(num_threads).
  std::vector<PortfolioMember> members;
  /// Share learnt clauses between members through a ClauseChannel: each
  /// member exports its short/low-LBD lemmas and imports the siblings' at
  /// restart boundaries. Sound because members solve clones of one model
  /// with identical numbering (see smt/clause_exchange.h); off by default
  /// so each member's search is bit-identical to its serial counterpart.
  /// Overrides any `exchange` already set in a member's options.
  bool share_clauses = false;
  /// Structured tracing: one "portfolio_member" event per member as it
  /// completes (including cancelled losers) and a closing "portfolio_done"
  /// event with winner attribution. The sink must outlive the call.
  obs::Config trace;
  /// Racing (the default) or cube-and-conquer (see PortfolioMode).
  PortfolioMode mode = PortfolioMode::kRace;
  /// Splitting knobs for kCubeAndConquer; ignored under kRace.
  CubeOptions cube;
};

/// Every member's outcome — winners *and* losers. A cancelled loser still
/// reports how far it got (its per-solve stats), which is what explains
/// where portfolio time goes.
struct PortfolioMemberOutcome {
  std::string label;
  smt::SolveResult result = smt::SolveResult::Unknown;
  double seconds = 0.0;
  /// This member's solve effort on its own clone (per-call delta).
  smt::SolverStats stats;
  /// True when the member returned Unknown because the race was already
  /// decided (first-winner cancellation or an external stop token), as
  /// opposed to exhausting its own budget.
  bool cancelled = false;
};

struct PortfolioResult {
  /// The winning member's full verification result (attack vector, stats).
  core::VerificationResult verification;
  /// Index into members of the winner; -1 if no member was definitive.
  int winner = -1;
  /// Wall-clock of the whole portfolio call.
  double seconds = 0.0;
  /// Under kRace: one entry per racing member. Under kCubeAndConquer: one
  /// entry per *cube* (labelled "cube-K/engine"), including cubes
  /// cancelled by a sibling's SAT short-circuit.
  std::vector<PortfolioMemberOutcome> members;
  /// Cube-and-conquer accounting (zero under kRace). An UNSAT verdict
  /// implies cubes_refuted == cubes_generated — the cube tree is only
  /// closed when every branch is; the completeness test enforces this.
  std::uint64_t cubes_generated = 0;
  std::uint64_t cubes_refuted = 0;

  [[nodiscard]] smt::SolveResult result() const {
    return verification.result;
  }
  [[nodiscard]] bool feasible() const { return verification.feasible(); }
};

/// Races the portfolio on clones of `model`. The model itself is only read
/// (to clone); its grid must outlive the call. Thread count equals member
/// count — each member runs on its own clone on its own pool thread.
[[nodiscard]] PortfolioResult verify_portfolio(
    const core::UfdiAttackModel& model, const PortfolioOptions& options = {});

}  // namespace psse::runtime
