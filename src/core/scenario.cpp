#include "core/scenario.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <sstream>

#include "grid/ieee_cases.h"

namespace psse::core {

namespace {

struct Parser {
  std::string what;
  int lineNo = 0;

  [[noreturn]] void fail(const std::string& msg) const {
    throw ScenarioError(what + ":" + std::to_string(lineNo) + ": " + msg);
  }

  int parse_int(const std::string& tok) const {
    try {
      std::size_t pos = 0;
      int v = std::stoi(tok, &pos);
      if (pos != tok.size()) fail("bad integer '" + tok + "'");
      return v;
    } catch (const std::exception&) {
      fail("bad integer '" + tok + "'");
    }
  }

  double parse_double(const std::string& tok) const {
    try {
      std::size_t pos = 0;
      double v = std::stod(tok, &pos);
      if (pos != tok.size()) fail("bad number '" + tok + "'");
      return v;
    } catch (const std::exception&) {
      fail("bad number '" + tok + "'");
    }
  }

  bool parse_onoff(const std::string& tok) const {
    if (tok == "on" || tok == "true" || tok == "1") return true;
    if (tok == "off" || tok == "false" || tok == "0") return false;
    fail("expected on/off, got '" + tok + "'");
  }
};

struct PendingLine {
  int from, to;
  double admittance;
  bool open = false;
  bool switchable = false;
  bool statusSecured = false;
};

}  // namespace

Scenario Scenario::parse(std::istream& in, const std::string& what) {
  Parser p{what};
  Scenario sc;
  bool haveGrid = false;
  int declaredBuses = 0;
  std::vector<PendingLine> pendingLines;

  // Directives that need the grid/plan are deferred until the grid is
  // complete (custom grids list their lines over multiple directives).
  struct Deferred {
    std::string directive;
    std::vector<std::string> args;
    int lineNo;
  };
  std::vector<Deferred> deferred;

  std::string line;
  while (std::getline(in, line)) {
    ++p.lineNo;
    if (auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    std::istringstream ls(line);
    std::string directive;
    if (!(ls >> directive)) continue;
    std::vector<std::string> args;
    for (std::string tok; ls >> tok;) args.push_back(tok);

    if (directive == "case") {
      if (args.size() != 1) p.fail("case takes one name");
      sc.case_name = args[0];
      sc.grid = grid::cases::by_name(args[0]);
      haveGrid = true;
    } else if (directive == "buses") {
      if (args.size() != 1) p.fail("buses takes a count");
      declaredBuses = p.parse_int(args[0]);
      if (declaredBuses < 2) p.fail("need at least 2 buses");
    } else if (directive == "line") {
      if (args.size() < 3) p.fail("line takes: from to admittance [flags]");
      PendingLine pl{p.parse_int(args[0]), p.parse_int(args[1]),
                     p.parse_double(args[2])};
      for (std::size_t k = 3; k < args.size(); ++k) {
        if (args[k] == "open") {
          pl.open = true;
        } else if (args[k] == "switchable") {
          pl.switchable = true;
        } else if (args[k] == "status-secured") {
          pl.statusSecured = true;
        } else {
          p.fail("unknown line flag '" + args[k] + "'");
        }
      }
      pendingLines.push_back(pl);
    } else {
      deferred.push_back({directive, args, p.lineNo});
    }
  }

  if (!haveGrid) {
    if (declaredBuses == 0) {
      p.lineNo = 0;
      p.fail("scenario needs 'case <name>' or 'buses N' + 'line ...'");
    }
    sc.grid = grid::Grid(declaredBuses);
    for (const PendingLine& pl : pendingLines) {
      grid::Line l;
      l.from = pl.from - 1;
      l.to = pl.to - 1;
      l.admittance = pl.admittance;
      l.in_service = !pl.open;
      l.fixed = !pl.switchable && !pl.open;
      l.status_secured = pl.statusSecured;
      sc.grid.add_line(l);
    }
  } else if (!pendingLines.empty()) {
    p.lineNo = 0;
    p.fail("'line' directives cannot be combined with 'case'");
  }

  sc.plan = grid::MeasurementPlan(sc.grid.num_lines(), sc.grid.num_buses());
  if (sc.case_name == "ieee14") {
    // Start from Table III when the paper's case is requested; directives
    // below can still override.
  }

  auto check_meas = [&](int id1, const Parser& pp) {
    if (id1 < 1 || id1 > sc.plan.num_potential()) {
      pp.fail("measurement id out of range: " + std::to_string(id1));
    }
    return id1 - 1;
  };
  auto check_bus = [&](int id1, const Parser& pp) {
    if (id1 < 1 || id1 > sc.grid.num_buses()) {
      pp.fail("bus id out of range: " + std::to_string(id1));
    }
    return id1 - 1;
  };
  auto check_line = [&](int id1, const Parser& pp) {
    if (id1 < 1 || id1 > sc.grid.num_lines()) {
      pp.fail("line id out of range: " + std::to_string(id1));
    }
    return id1 - 1;
  };

  for (const auto& d : deferred) {
    Parser pp{what, d.lineNo};
    const auto& a = d.args;
    if (d.directive == "untaken") {
      for (const auto& t : a) sc.plan.set_taken(check_meas(pp.parse_int(t), pp), false);
    } else if (d.directive == "taken-fraction") {
      if (a.size() != 2) pp.fail("taken-fraction takes: fraction seed");
      sc.plan.keep_fraction(pp.parse_double(a[0]),
                            static_cast<std::uint64_t>(pp.parse_int(a[1])));
    } else if (d.directive == "secured-measurements") {
      for (const auto& t : a) sc.plan.set_secured(check_meas(pp.parse_int(t), pp), true);
    } else if (d.directive == "inaccessible") {
      for (const auto& t : a) {
        sc.plan.set_accessible(check_meas(pp.parse_int(t), pp), false);
      }
    } else if (d.directive == "secured-buses") {
      for (const auto& t : a) {
        sc.plan.secure_bus(check_bus(pp.parse_int(t), pp), sc.grid);
      }
    } else if (d.directive == "unknown-lines") {
      for (const auto& t : a) {
        sc.spec.set_unknown(check_line(pp.parse_int(t), pp),
                            sc.grid.num_lines());
      }
    } else if (d.directive == "target") {
      for (const auto& t : a) {
        sc.spec.target_states.push_back(check_bus(pp.parse_int(t), pp));
      }
    } else if (d.directive == "target-only") {
      for (const auto& t : a) {
        sc.spec.target_states.push_back(check_bus(pp.parse_int(t), pp));
      }
      sc.spec.attack_only_targets = true;
    } else if (d.directive == "distinct") {
      if (a.size() != 2) pp.fail("distinct takes two bus ids");
      sc.spec.distinct_changes.emplace_back(check_bus(pp.parse_int(a[0]), pp),
                                            check_bus(pp.parse_int(a[1]), pp));
    } else if (d.directive == "max-measurements") {
      if (a.size() != 1) pp.fail("max-measurements takes a count");
      sc.spec.max_altered_measurements = pp.parse_int(a[0]);
    } else if (d.directive == "max-buses") {
      if (a.size() != 1) pp.fail("max-buses takes a count");
      sc.spec.max_compromised_buses = pp.parse_int(a[0]);
    } else if (d.directive == "topology-attacks") {
      if (a.size() != 1) pp.fail("topology-attacks takes on/off");
      sc.spec.allow_topology_attacks = pp.parse_onoff(a[0]);
    } else if (d.directive == "max-topology-changes") {
      if (a.size() != 1) pp.fail("max-topology-changes takes a count");
      sc.spec.max_topology_changes = pp.parse_int(a[0]);
    } else if (d.directive == "min-target-shift") {
      if (a.size() != 1) pp.fail("min-target-shift takes a value (rad)");
      sc.spec.min_target_shift = pp.parse_double(a[0]);
    } else if (d.directive == "max-measurement-delta") {
      if (a.size() != 1) pp.fail("max-measurement-delta takes a value (p.u.)");
      sc.spec.max_measurement_delta = pp.parse_double(a[0]);
    } else if (d.directive == "reference-bus") {
      if (a.size() != 1) pp.fail("reference-bus takes a bus id");
      sc.spec.reference_bus = check_bus(pp.parse_int(a[0]), pp);
    } else if (d.directive == "max-secured-buses") {
      if (a.size() != 1) pp.fail("max-secured-buses takes a count");
      sc.synthesis.max_secured_buses = pp.parse_int(a[0]);
    } else if (d.directive == "cannot-secure") {
      for (const auto& t : a) {
        sc.synthesis.cannot_secure.push_back(check_bus(pp.parse_int(t), pp));
      }
    } else if (d.directive == "must-secure") {
      for (const auto& t : a) {
        sc.synthesis.must_secure.push_back(check_bus(pp.parse_int(t), pp));
      }
    } else if (d.directive == "adjacency-pruning") {
      if (a.size() != 1) pp.fail("adjacency-pruning takes on/off");
      sc.synthesis.adjacency_pruning = pp.parse_onoff(a[0]);
    } else {
      pp.fail("unknown directive '" + d.directive + "'");
    }
  }
  sc.grid.validate();
  return sc;
}

Scenario Scenario::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ScenarioError("cannot open scenario file: " + path);
  return parse(in, path);
}

namespace {

// splitmix64 finalizer: the per-element mixer for the fingerprints below.
// Chosen for stability (pure arithmetic, no platform dependence), not
// cryptographic strength — these hashes key caches and join trace events.
std::uint64_t fp_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Ordered accumulator over 64-bit words; set-like fields are canonicalised
/// (sorted, deduplicated, pairs normalised) before they reach it, which is
/// what makes the fingerprint order-independent where order has no
/// semantics.
struct Fingerprinter {
  std::uint64_t h;

  explicit Fingerprinter(std::uint64_t domainTag)
      : h(fp_mix(domainTag ^ kScenarioFingerprintVersion)) {}

  void put(std::uint64_t x) { h = fp_mix(h ^ fp_mix(x)); }
  void put(int x) { put(static_cast<std::uint64_t>(static_cast<std::int64_t>(x))); }
  void put(bool x) { put(static_cast<std::uint64_t>(x ? 1 : 2)); }
  void put(double d) {
    std::uint64_t bits = 0;
    static_assert(sizeof bits == sizeof d);
    std::memcpy(&bits, &d, sizeof bits);
    put(bits);
  }
  /// Canonicalised id set: sorted and deduplicated (duplicates and order
  /// carry no meaning for secured/target/unknown lists).
  void put_id_set(std::vector<int> ids) {
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    put(static_cast<std::uint64_t>(ids.size()));
    for (int id : ids) put(id);
  }
};

// Bus injections are deliberately excluded: the UFDI verification problem
// is defined by topology, admittances, and the measurement configuration
// alone (the attack reasons about *deltas*, Eq. (14)), and Scenario text
// files do not carry an operating point — including injections would make
// a scenario fingerprint differ from its own to_string() round trip.
void fingerprint_grid(Fingerprinter& fp, const grid::Grid& g) {
  fp.put(g.num_buses());
  fp.put(g.num_lines());
  for (grid::LineId i = 0; i < g.num_lines(); ++i) {
    const grid::Line& l = g.line(i);
    fp.put(l.from);
    fp.put(l.to);
    fp.put(l.admittance);
    fp.put(l.in_service);
    fp.put(l.fixed);
    fp.put(l.status_secured);
  }
}

void fingerprint_plan(Fingerprinter& fp, const grid::MeasurementPlan& plan) {
  fp.put(plan.num_potential());
  for (grid::MeasId m = 0; m < plan.num_potential(); ++m) {
    std::uint64_t bits = (plan.taken(m) ? 1u : 0u) |
                         (plan.secured(m) ? 2u : 0u) |
                         (plan.accessible(m) ? 4u : 0u);
    fp.put(bits);
  }
}

void fingerprint_spec(Fingerprinter& fp, const grid::Grid& g,
                      const AttackSpec& spec) {
  // Knowledge, normalised: an empty admittance_known equals all-true.
  std::vector<int> unknown;
  for (grid::LineId i = 0; i < g.num_lines(); ++i) {
    if (!spec.knows(i)) unknown.push_back(i);
  }
  fp.put_id_set(std::move(unknown));
  fp.put(spec.max_altered_measurements);
  fp.put(spec.max_compromised_buses);
  fp.put(spec.max_topology_changes);
  fp.put_id_set(spec.target_states);
  fp.put(spec.attack_only_targets);
  fp.put(spec.require_any_state_attack);
  std::vector<std::uint64_t> packed;  // normalised (min,max) pairs, order-free
  for (auto [a, b] : spec.distinct_changes) {
    packed.push_back((static_cast<std::uint64_t>(std::min(a, b)) << 32) |
                     static_cast<std::uint32_t>(std::max(a, b)));
  }
  std::sort(packed.begin(), packed.end());
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
  fp.put(static_cast<std::uint64_t>(packed.size()));
  for (std::uint64_t p : packed) fp.put(p);
  fp.put(spec.allow_topology_attacks);
  fp.put(spec.knowledge_gates_topology_lines);
  fp.put(spec.excluded_meters_must_read_zero);
  fp.put(spec.reference_bus);
  fp.put(spec.min_target_shift);
  fp.put(spec.max_measurement_delta);
}

}  // namespace

std::uint64_t scenario_fingerprint(const grid::Grid& grid,
                                   const grid::MeasurementPlan& plan,
                                   const AttackSpec& spec) {
  Fingerprinter fp(0x5343454e5f465031ULL);  // "SCEN_FP1"
  fingerprint_grid(fp, grid);
  fingerprint_plan(fp, plan);
  fingerprint_spec(fp, grid, spec);
  return fp.h;
}

std::uint64_t scenario_fingerprint(const Scenario& sc) {
  // The *verification* problem only: synthesis options do not change what a
  // verify call answers, so they stay out of the key.
  return scenario_fingerprint(sc.grid, sc.plan, sc.spec);
}

std::uint64_t delta_fingerprint(const ScenarioDelta& delta) {
  Fingerprinter fp(0x44454c54415f4650ULL);  // "DELTA_FP"
  fp.put(delta.max_altered_measurements);
  fp.put(delta.max_compromised_buses);
  fp.put(delta.max_topology_changes);
  fp.put_id_set(delta.target_states);
  fp.put(delta.attack_only_targets);
  fp.put(delta.require_any_state_attack);
  std::vector<std::uint64_t> packed;
  for (auto [a, b] : delta.distinct_changes) {
    packed.push_back((static_cast<std::uint64_t>(std::min(a, b)) << 32) |
                     static_cast<std::uint32_t>(std::max(a, b)));
  }
  std::sort(packed.begin(), packed.end());
  packed.erase(std::unique(packed.begin(), packed.end()), packed.end());
  fp.put(static_cast<std::uint64_t>(packed.size()));
  for (std::uint64_t p : packed) fp.put(p);
  fp.put(delta.min_target_shift);
  fp.put(delta.max_measurement_delta);
  fp.put_id_set(delta.secured_buses);
  fp.put_id_set(delta.secured_measurements);
  return fp.h;
}

std::uint64_t family_fingerprint(const grid::Grid& grid,
                                 const grid::MeasurementPlan& plan,
                                 const AttackSpec& spec) {
  // Dynamic securing is a delta axis, so the family key clears the plan's
  // secured bits: a scenario with statically secured measurements belongs
  // to the same warm-solver family as its unsecured sibling.
  grid::MeasurementPlan base = plan;
  for (grid::MeasId m = 0; m < base.num_potential(); ++m) {
    base.set_secured(m, false);
  }
  return scenario_fingerprint(grid, base, strip_delta(spec));
}

std::uint64_t combine_fingerprints(std::uint64_t family,
                                   std::uint64_t delta) {
  return fp_mix(family ^ fp_mix(delta ^ 0xd1b54a32d192ed03ULL));
}

std::string Scenario::to_string() const {
  std::ostringstream out;
  if (!case_name.empty()) {
    out << "case " << case_name << "\n";
  } else {
    out << "buses " << grid.num_buses() << "\n";
    for (grid::LineId i = 0; i < grid.num_lines(); ++i) {
      const grid::Line& l = grid.line(i);
      out << "line " << l.from + 1 << " " << l.to + 1 << " " << l.admittance;
      if (!l.in_service) out << " open";
      if (!l.fixed && l.in_service) out << " switchable";
      if (l.status_secured) out << " status-secured";
      out << "\n";
    }
  }
  auto list = [&](const char* name, const std::vector<int>& ids) {
    if (ids.empty()) return;
    out << name;
    for (int id : ids) out << " " << id + 1;
    out << "\n";
  };
  std::vector<int> untaken, securedM, inaccessible;
  for (grid::MeasId m = 0; m < plan.num_potential(); ++m) {
    if (!plan.taken(m)) untaken.push_back(m);
    if (plan.secured(m)) securedM.push_back(m);
    if (!plan.accessible(m)) inaccessible.push_back(m);
  }
  list("untaken", untaken);
  list("secured-measurements", securedM);
  list("inaccessible", inaccessible);
  std::vector<int> unknown;
  for (grid::LineId i = 0; i < grid.num_lines(); ++i) {
    if (!spec.knows(i)) unknown.push_back(i);
  }
  list("unknown-lines", unknown);
  list(spec.attack_only_targets ? "target-only" : "target",
       spec.target_states);
  for (auto [a, b] : spec.distinct_changes) {
    out << "distinct " << a + 1 << " " << b + 1 << "\n";
  }
  if (spec.max_altered_measurements > 0) {
    out << "max-measurements " << spec.max_altered_measurements << "\n";
  }
  if (spec.max_compromised_buses > 0) {
    out << "max-buses " << spec.max_compromised_buses << "\n";
  }
  if (spec.allow_topology_attacks) out << "topology-attacks on\n";
  if (spec.max_topology_changes > 0) {
    out << "max-topology-changes " << spec.max_topology_changes << "\n";
  }
  if (spec.min_target_shift > 0) {
    out << "min-target-shift " << spec.min_target_shift << "\n";
  }
  if (spec.max_measurement_delta > 0) {
    out << "max-measurement-delta " << spec.max_measurement_delta << "\n";
  }
  out << "reference-bus " << spec.reference_bus + 1 << "\n";
  if (synthesis.max_secured_buses > 0) {
    out << "max-secured-buses " << synthesis.max_secured_buses << "\n";
  }
  list("cannot-secure", synthesis.cannot_secure);
  list("must-secure", synthesis.must_secure);
  if (!synthesis.adjacency_pruning) out << "adjacency-pruning off\n";
  return out.str();
}

}  // namespace psse::core
