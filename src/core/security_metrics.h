// Security metrics: quantifying per-bus exposure (in the spirit of
// Vukovic et al. [10], computed exactly with the verification model).
//
// For each state, the *attack cost* is the minimum number of measurements
// (and the minimum number of substations) an adversary must tamper with to
// corrupt that state stealthily. Low-cost states are where a defender's
// budget buys the most; the metrics bench ranks them.
#pragma once

#include <vector>

#include "core/attack_spec.h"
#include "grid/grid.h"
#include "grid/measurement.h"
#include "smt/sat_solver.h"

namespace psse::core {

struct BusAttackCost {
  grid::BusId bus = -1;
  /// Minimum T_CZ for which an attack on this state exists; -1 if the
  /// state cannot be attacked at all under the base spec.
  int min_measurements = -1;
  /// Minimum T_CB (given unlimited measurements); -1 if unattackable.
  int min_buses = -1;
};

/// Computes attack costs for every non-reference bus by binary search over
/// the resource limits (feasibility is monotone in both). `base` supplies
/// the adversary's knowledge/accessibility context; its target and resource
/// fields are overridden. Budget bounds each inner SMT solve.
[[nodiscard]] std::vector<BusAttackCost> bus_attack_costs(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const AttackSpec& base, const smt::Budget& perSolve = {});

}  // namespace psse::core
