// The synthesised attack: which measurements to alter, by how much, and
// which breaker statuses to spoof — plus end-to-end validation against the
// WLS estimator and its bad-data detection.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "grid/grid.h"
#include "grid/matrix.h"
#include "grid/measurement.h"
#include "smt/rational.h"

namespace psse::core {

struct AttackVector {
  /// cz — measurements that must be altered (0-based MeasIds).
  std::vector<grid::MeasId> altered_measurements;
  /// cb — substations the adversary must compromise.
  std::vector<grid::BusId> compromised_buses;
  /// Topology poisoning: lines reported open though closed / closed though
  /// open.
  std::vector<grid::LineId> excluded_lines;
  std::vector<grid::LineId> included_lines;
  /// Delta of each bus angle estimate (exact, one valid scaling).
  std::vector<smt::Rational> delta_theta;
  /// Delta applied to each potential measurement under that scaling
  /// (zero where unaltered).
  std::vector<smt::Rational> delta_z;

  [[nodiscard]] std::string summary() const;  // human-readable, 1-based ids
};

/// Result of replaying an attack against the full estimation pipeline.
struct AttackReplay {
  double baseline_objective = 0.0;  // J before the attack
  double attacked_objective = 0.0;  // J after the attack
  double detection_threshold = 0.0; // chi2 threshold
  bool detected = false;            // attacked_objective > threshold
  /// Max |(H_new theta' - H_true theta)| over measurements the attack
  /// leaves untouched — the physical consistency the SMT model promised;
  /// ~0 means the stealth constraints were faithfully encoded.
  double stealth_gap = 0.0;
  /// Angle-estimate shift actually achieved, per bus.
  grid::Vector achieved_shift;
  /// Scaling lambda applied to the model's homogeneous solution.
  double lambda = 1.0;
};

/// Operational impact of the corrupted estimate: how far the operator's
/// view of flows and injections drifts from reality (the quantities that
/// drive re-dispatch and market settlements, per the paper's motivation).
struct AttackImpact {
  double max_flow_distortion = 0.0;       // p.u., over in-service lines
  grid::LineId worst_line = -1;
  double max_injection_distortion = 0.0;  // p.u., over buses
  grid::BusId worst_bus = -1;
};

/// Computes the impact of the state shift lambda * delta_theta on the
/// estimated line flows and bus injections.
[[nodiscard]] AttackImpact attack_impact(const grid::Grid& grid,
                                         const AttackVector& attack,
                                         double lambda = 1.0);

/// Replays `attack` on a concrete operating point: generates noisy
/// telemetry, applies the measurement/topology tampering (scaling the
/// model's homogeneous delta so topology-attacked meters read what physics
/// demands), runs WLS + chi-square BDD on the poisoned inputs, and reports
/// whether the estimator noticed. `sigma`/`alpha` parameterise the noise
/// and the detector; `magnitude` scales pure measurement attacks (ignored
/// when a topology change pins the scale).
[[nodiscard]] AttackReplay replay_attack(const grid::Grid& grid,
                                         const grid::MeasurementPlan& plan,
                                         const AttackVector& attack,
                                         double sigma = 0.01,
                                         double alpha = 0.01,
                                         double magnitude = 1.0,
                                         std::uint64_t seed = 1);

}  // namespace psse::core
