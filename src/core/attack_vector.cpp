#include "core/attack_vector.h"

#include <algorithm>
#include <cmath>
#include <random>

#include "estimation/bad_data.h"
#include "estimation/wls.h"
#include "grid/dc_powerflow.h"
#include "grid/jacobian.h"
#include "grid/topology_processor.h"

namespace psse::core {

using grid::BusId;
using grid::LineId;
using grid::MeasId;
using grid::Vector;

std::string AttackVector::summary() const {
  auto join = [](const auto& ids) {
    std::string out;
    for (auto id : ids) {
      if (!out.empty()) out += ", ";
      out += std::to_string(id + 1);  // 1-based like the paper
    }
    return out.empty() ? std::string("none") : out;
  };
  std::string out;
  out += "altered measurements: " + join(altered_measurements) + "\n";
  out += "compromised buses:    " + join(compromised_buses) + "\n";
  if (!excluded_lines.empty()) {
    out += "excluded lines:       " + join(excluded_lines) + "\n";
  }
  if (!included_lines.empty()) {
    out += "included lines:       " + join(included_lines) + "\n";
  }
  out += "state changes:        ";
  bool first = true;
  for (std::size_t j = 0; j < delta_theta.size(); ++j) {
    if (delta_theta[j].is_zero()) continue;
    if (!first) out += ", ";
    first = false;
    out += "bus" + std::to_string(j + 1) + ": " + delta_theta[j].to_string();
  }
  if (first) out += "none";
  out += "\n";
  return out;
}

namespace {

/// Model-predicted value of every potential measurement for angle vector
/// `theta` under mapped topology `topo` (rows of H applied to theta,
/// extended to the full potential-measurement space).
Vector predict_full(const grid::Grid& grid, const grid::MeasurementPlan& plan,
                    const grid::MappedTopology& topo, const Vector& theta) {
  Vector out(static_cast<std::size_t>(plan.num_potential()));
  for (LineId i = 0; i < grid.num_lines(); ++i) {
    if (!topo.includes(i)) continue;
    const grid::Line& l = grid.line(i);
    double flow = l.admittance * (theta[static_cast<std::size_t>(l.from)] -
                                  theta[static_cast<std::size_t>(l.to)]);
    out[static_cast<std::size_t>(plan.forward_flow(i))] = flow;
    out[static_cast<std::size_t>(plan.backward_flow(i))] = -flow;
  }
  for (BusId j = 0; j < grid.num_buses(); ++j) {
    double sum = 0.0;
    for (LineId i : grid.lines_at(j)) {
      if (!topo.includes(i)) continue;
      const grid::Line& l = grid.line(i);
      double flow = l.admittance * (theta[static_cast<std::size_t>(l.from)] -
                                    theta[static_cast<std::size_t>(l.to)]);
      sum += l.to == j ? flow : -flow;
    }
    out[static_cast<std::size_t>(plan.injection(j))] = sum;
  }
  return out;
}

}  // namespace

AttackImpact attack_impact(const grid::Grid& grid,
                           const AttackVector& attack, double lambda) {
  AttackImpact out;
  Vector dtheta(static_cast<std::size_t>(grid.num_buses()));
  for (std::size_t j = 0; j < dtheta.size(); ++j) {
    dtheta[j] = lambda * attack.delta_theta[j].to_double();
  }
  Vector injection(static_cast<std::size_t>(grid.num_buses()));
  for (LineId i = 0; i < grid.num_lines(); ++i) {
    const grid::Line& l = grid.line(i);
    if (!l.in_service) continue;
    double df = l.admittance * (dtheta[static_cast<std::size_t>(l.from)] -
                                dtheta[static_cast<std::size_t>(l.to)]);
    if (std::fabs(df) > out.max_flow_distortion) {
      out.max_flow_distortion = std::fabs(df);
      out.worst_line = i;
    }
    injection[static_cast<std::size_t>(l.to)] += df;
    injection[static_cast<std::size_t>(l.from)] -= df;
  }
  for (BusId j = 0; j < grid.num_buses(); ++j) {
    if (std::fabs(injection[static_cast<std::size_t>(j)]) >
        out.max_injection_distortion) {
      out.max_injection_distortion =
          std::fabs(injection[static_cast<std::size_t>(j)]);
      out.worst_bus = j;
    }
  }
  return out;
}

AttackReplay replay_attack(const grid::Grid& grid,
                           const grid::MeasurementPlan& plan,
                           const AttackVector& attack, double sigma,
                           double alpha, double magnitude,
                           std::uint64_t seed) {
  // 1. Concrete operating point + noisy telemetry.
  grid::DcPowerFlow pf(grid, 0);
  grid::DcPowerFlowResult op = pf.solve();
  std::mt19937_64 rng(seed);
  grid::Telemetry telem =
      grid::generate_telemetry(grid, op.theta, plan, sigma, rng);

  // 2. Baseline estimate under the honest topology.
  grid::MappedTopology topoTrue = grid::TopologyProcessor::map(
      grid, grid::BreakerTelemetry::truthful(grid));
  grid::JacobianModel modelTrue = grid::build_jacobian(grid, plan, topoTrue);
  est::WlsEstimator estTrue(modelTrue, sigma > 0 ? sigma : 1e-4);
  est::WlsResult base =
      estTrue.estimate(grid::restrict_to_rows(modelTrue, telem.values));

  // 3. Poison breaker telemetry and rebuild the estimator's model.
  grid::BreakerTelemetry breakers = grid::BreakerTelemetry::truthful(grid);
  for (LineId i : attack.excluded_lines) {
    grid::apply_exclusion_attack(grid, breakers, i);
  }
  for (LineId i : attack.included_lines) {
    grid::apply_inclusion_attack(grid, breakers, i);
  }
  grid::MappedTopology topoAtk = grid::TopologyProcessor::map(grid, breakers);
  grid::JacobianModel modelAtk = grid::build_jacobian(grid, plan, topoAtk);

  // 4. Direction of the state shift (the homogeneous SMT solution) and the
  // alteration each measurement would need: a_m(lambda) = alpha_m +
  // lambda*beta_m with alpha the pure-topology mismatch and beta the
  // state-shift response under the poisoned model.
  Vector dtheta(static_cast<std::size_t>(grid.num_buses()));
  for (std::size_t j = 0; j < dtheta.size(); ++j) {
    dtheta[j] = attack.delta_theta[j].to_double();
  }
  Vector predTrue = predict_full(grid, plan, topoTrue, op.theta);
  Vector predAtk0 = predict_full(grid, plan, topoAtk, op.theta);
  Vector beta = predict_full(grid, plan, topoAtk, dtheta);
  Vector alphaVec = predAtk0 - predTrue;

  // 5. Pick lambda: unaltered rows must have a_m(lambda) == 0; a row with
  // beta != 0 pins it (topology attacks), otherwise any scale works and we
  // use `magnitude` normalised to the largest state shift.
  std::vector<bool> altered(static_cast<std::size_t>(plan.num_potential()),
                            false);
  for (MeasId m : attack.altered_measurements) {
    altered[static_cast<std::size_t>(m)] = true;
  }
  AttackReplay out;
  bool pinned = false;
  for (MeasId m = 0; m < plan.num_potential() && !pinned; ++m) {
    if (!plan.taken(m) || altered[static_cast<std::size_t>(m)]) continue;
    double b = beta[static_cast<std::size_t>(m)];
    double a = alphaVec[static_cast<std::size_t>(m)];
    if (std::fabs(b) > 1e-9 && std::fabs(a) > 1e-12) {
      out.lambda = -a / b;
      pinned = true;
    }
  }
  if (!pinned) {
    double maxShift = dtheta.max_abs();
    out.lambda = maxShift > 0 ? magnitude / maxShift : 0.0;
  }

  // 6. Apply the false data and measure how consistent the untouched
  // meters remain (the model's stealth promise).
  Vector poisoned = telem.values;
  for (MeasId m = 0; m < plan.num_potential(); ++m) {
    if (!plan.taken(m)) continue;
    double am = alphaVec[static_cast<std::size_t>(m)] +
                out.lambda * beta[static_cast<std::size_t>(m)];
    if (altered[static_cast<std::size_t>(m)]) {
      poisoned[static_cast<std::size_t>(m)] += am;
    } else {
      out.stealth_gap = std::max(out.stealth_gap, std::fabs(am));
    }
  }

  // 7. Run the operator's pipeline on the poisoned inputs.
  est::WlsEstimator estAtk(modelAtk, sigma > 0 ? sigma : 1e-4);
  est::WlsResult atk =
      estAtk.estimate(grid::restrict_to_rows(modelAtk, poisoned));
  est::BadDataDetector detector(estAtk, alpha);
  est::Chi2TestResult test = detector.chi2_test(atk);

  out.baseline_objective = base.objective;
  out.attacked_objective = atk.objective;
  out.detection_threshold = test.threshold;
  out.detected = test.bad_data;
  out.achieved_shift = atk.theta - base.theta;
  return out;
}

}  // namespace psse::core
