#include "core/synthesis.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>

#include "screen/defense_seeder.h"
#include "smt/common.h"

namespace psse::core {

using grid::BusId;
using grid::LineId;
using smt::Lit;
using smt::SatSolver;
using smt::Var;

SecurityArchitectureSynthesizer::SecurityArchitectureSynthesizer(
    UfdiAttackModel& attackModel, SynthesisOptions options)
    : attackModel_(attackModel), options_(std::move(options)) {
  const int b = attackModel_.grid().num_buses();
  PSSE_CHECK(options_.max_secured_buses >= 0 &&
                 options_.max_secured_buses <= b,
             "SynthesisOptions: bus budget out of range");
  for (BusId j : options_.cannot_secure) {
    PSSE_CHECK(j >= 0 && j < b, "SynthesisOptions: cannot_secure bus range");
  }
  for (BusId j : options_.must_secure) {
    PSSE_CHECK(j >= 0 && j < b, "SynthesisOptions: must_secure bus range");
  }
  PSSE_CHECK(options_.parallel_candidates >= 1,
             "SynthesisOptions: parallel_candidates must be >= 1");
}

void SecurityArchitectureSynthesizer::build_candidate_model(
    SatSolver& solver, std::vector<Var>& sbVars, int budget) const {
  const grid::Grid& grid = attackModel_.grid();
  const grid::MeasurementPlan& plan = attackModel_.plan();
  const int b = grid.num_buses();
  sbVars.clear();
  for (BusId j = 0; j < b; ++j) sbVars.push_back(solver.new_var());

  // Eq. (27): at most T_SB secured buses.
  std::vector<Lit> all;
  for (Var v : sbVars) all.push_back(Lit::pos(v));
  solver.add_at_most(all, static_cast<std::uint32_t>(budget));

  // Eq. (29): operator exclusions, plus required inclusions.
  for (BusId j : options_.cannot_secure) {
    solver.add_clause({Lit::neg(sbVars[static_cast<std::size_t>(j)])});
  }
  for (BusId j : options_.must_secure) {
    solver.add_clause({Lit::pos(sbVars[static_cast<std::size_t>(j)])});
  }

  // Eq. (30): securing bus j makes securing a flow-measured neighbour
  // redundant — prune those candidates.
  if (options_.adjacency_pruning) {
    for (BusId j = 0; j < b; ++j) {
      for (LineId i : grid.lines_at(j)) {
        const grid::Line& line = grid.line(i);
        if (line.from == j && plan.taken(plan.forward_flow(i))) {
          solver.add_clause(
              {Lit::neg(sbVars[static_cast<std::size_t>(j)]),
               Lit::neg(sbVars[static_cast<std::size_t>(line.to)])});
        }
        if (line.to == j && plan.taken(plan.backward_flow(i))) {
          solver.add_clause(
              {Lit::neg(sbVars[static_cast<std::size_t>(j)]),
               Lit::neg(sbVars[static_cast<std::size_t>(line.from)])});
        }
      }
    }
  }
}

const char* SecurityArchitectureSynthesizer::blocking_kind(
    const VerificationResult& v) const {
  if (v.result != smt::SolveResult::Sat) return "none";
  if (options_.counterexample_blocking && v.attack.has_value() &&
      !v.attack->compromised_buses.empty()) {
    return "counterexample";
  }
  if (options_.subset_blocking) return "subset";
  return "exact";
}

void SecurityArchitectureSynthesizer::trace_iteration(
    int iter, const std::vector<BusId>& candidate,
    const VerificationResult& v, const smt::SatStats& candidateEffort,
    bool seed) const {
  if (!options_.trace.enabled()) return;
  obs::Event("cegis_iter")
      .field("iter", iter)
      .field_raw("candidate", obs::json_int_array(candidate))
      .field("verdict", smt::to_cstring(v.result))
      .field("blocking", blocking_kind(v))
      .field("seed", seed)
      .field("seconds", v.seconds)
      .field("decisions", v.stats.sat.decisions)
      .field("conflicts", v.stats.sat.conflicts)
      .field("pivots", v.stats.pivots)
      .field("cand_decisions", candidateEffort.decisions)
      .field("cand_conflicts", candidateEffort.conflicts)
      .emit(options_.trace);
}

bool SecurityArchitectureSynthesizer::try_seeds(
    SatSolver& candidates, const std::vector<Var>& sbVars,
    const std::function<double()>& elapsed, SynthesisResult& out) {
  if (!options_.graph_seeding || options_.max_seed_candidates == 0) {
    return false;
  }
  screen::SeedOptions so;
  so.max_secured_buses = options_.max_secured_buses;
  so.must_secure = options_.must_secure;
  so.cannot_secure = options_.cannot_secure;
  so.adjacency_pruning = options_.adjacency_pruning;
  so.target_states = attackModel_.spec().target_states;
  so.max_candidates = options_.max_seed_candidates;
  const std::vector<std::vector<BusId>> seeds =
      screen::seed_candidates(attackModel_.grid(), attackModel_.plan(), so);
  // Seeds are ranked by graph promise; two consecutive misses mean the
  // ranking is wrong for this instance, so stop paying a verification per
  // seed and let the model enumerate (which inherits the misses' blocking
  // clauses — the spent iterations still prune).
  int misses = 0;
  for (const std::vector<BusId>& S : seeds) {
    if (misses >= 2) break;
    if (options_.time_limit_seconds > 0 &&
        elapsed() > options_.time_limit_seconds) {
      out.status = SynthesisResult::Status::Timeout;
      return true;
    }
    smt::Budget vb = options_.verification_budget;
    if (options_.time_limit_seconds > 0) {
      auto remaining = std::chrono::milliseconds(static_cast<long>(
          1000 * std::max(0.1, options_.time_limit_seconds - elapsed())));
      if (vb.max_time.count() == 0 || vb.max_time > remaining) {
        vb.max_time = remaining;
      }
    }
    ++out.candidates_tried;
    VerificationResult v = attackModel_.verify_with_secured_buses(S, vb);
    trace_iteration(out.candidates_tried, S, v, smt::SatStats{},
                    /*seed=*/true);
    if (v.result == smt::SolveResult::Unsat) {
      out.status = SynthesisResult::Status::Found;
      out.secured_buses = S;
      return true;
    }
    if (v.result == smt::SolveResult::Unknown) {
      out.status = SynthesisResult::Status::Timeout;
      return true;
    }
    // A failed seed prunes the model's enumeration exactly like a failed
    // enumerated candidate (the counterexample clause excludes the seed
    // itself: an attack's compromised buses are never secured buses).
    candidates.add_clause(failure_blocking_clause(sbVars, S, v));
    ++misses;
  }
  return false;
}

std::vector<Lit> SecurityArchitectureSynthesizer::failure_blocking_clause(
    const std::vector<Var>& sbVars, const std::vector<BusId>& S,
    const VerificationResult& v) const {
  const int b = attackModel_.grid().num_buses();
  std::vector<Lit> block;
  if (options_.counterexample_blocking && v.attack.has_value() &&
      !v.attack->compromised_buses.empty()) {
    // The same attack defeats every architecture that secures none of its
    // compromised buses: demand at least one of them.
    for (BusId j : v.attack->compromised_buses) {
      block.push_back(Lit::pos(sbVars[static_cast<std::size_t>(j)]));
    }
    return block;
  }
  if (options_.subset_blocking) {
    for (BusId j = 0; j < b; ++j) {
      if (std::find(S.begin(), S.end(), j) == S.end()) {
        block.push_back(Lit::pos(sbVars[static_cast<std::size_t>(j)]));
      }
    }
    return block;
  }
  for (BusId j = 0; j < b; ++j) {
    bool in = std::find(S.begin(), S.end(), j) != S.end();
    block.push_back(in ? Lit::neg(sbVars[static_cast<std::size_t>(j)])
                       : Lit::pos(sbVars[static_cast<std::size_t>(j)]));
  }
  return block;
}

SynthesisResult SecurityArchitectureSynthesizer::synthesize() {
  if (options_.parallel_candidates > 1) return synthesize_parallel();
  SynthesisResult out;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  SatSolver candidates;
  std::vector<Var> sb;
  build_candidate_model(candidates, sb, options_.max_secured_buses);

  const int b = attackModel_.grid().num_buses();
  bool done = try_seeds(candidates, sb, elapsed, out);
  while (!done) {
    if (options_.time_limit_seconds > 0 &&
        elapsed() > options_.time_limit_seconds) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }
    smt::Budget candBudget;
    if (options_.time_limit_seconds > 0) {
      candBudget.max_time = std::chrono::milliseconds(static_cast<long>(
          1000 * std::max(0.1, options_.time_limit_seconds - elapsed())));
    }
    // Per-candidate effort of the (reused) candidate solver: snapshot and
    // delta, so the journal reports this iteration's work, not lifetime
    // totals.
    const smt::SatStats candBefore = candidates.stats();
    smt::SolveResult cr = candidates.solve({}, candBudget);
    const smt::SatStats candEffort = candidates.stats_since(candBefore);
    if (cr == smt::SolveResult::Unknown) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }
    if (cr == smt::SolveResult::Unsat) {
      // Every architecture within budget has been refuted.
      out.status = SynthesisResult::Status::NoArchitecture;
      break;
    }
    std::vector<BusId> S;
    for (BusId j = 0; j < b; ++j) {
      if (candidates.model_value(sb[static_cast<std::size_t>(j)])) {
        S.push_back(j);
      }
    }
    ++out.candidates_tried;

    smt::Budget vb = options_.verification_budget;
    if (options_.time_limit_seconds > 0) {
      auto remaining = std::chrono::milliseconds(static_cast<long>(
          1000 * std::max(0.1, options_.time_limit_seconds - elapsed())));
      if (vb.max_time.count() == 0 || vb.max_time > remaining) {
        vb.max_time = remaining;
      }
    }
    VerificationResult v = attackModel_.verify_with_secured_buses(S, vb);
    trace_iteration(out.candidates_tried, S, v, candEffort);
    if (v.result == smt::SolveResult::Unsat) {
      out.status = SynthesisResult::Status::Found;
      out.secured_buses = std::move(S);
      break;
    }
    if (v.result == smt::SolveResult::Unknown) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }
    // Candidate fails: block it (and, by monotonicity, all its subsets).
    candidates.add_clause(failure_blocking_clause(sb, S, v));
  }
  out.seconds = elapsed();
  out.candidate_footprint_bytes = candidates.footprint_bytes();
  if (options_.trace.enabled()) {
    obs::Event("cegis_done")
        .field("status", SynthesisResult::status_name(out.status))
        .field("candidates_tried", out.candidates_tried)
        .field("seconds", out.seconds)
        .field_raw("architecture", obs::json_int_array(out.secured_buses))
        .emit(options_.trace);
  }
  return out;
}

SynthesisResult SecurityArchitectureSynthesizer::synthesize_parallel() {
  SynthesisResult out;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  auto remaining_ms = [&]() {
    return std::chrono::milliseconds(static_cast<long>(
        1000 * std::max(0.1, options_.time_limit_seconds - elapsed())));
  };

  SatSolver candidates;
  std::vector<Var> sb;
  build_candidate_model(candidates, sb, options_.max_secured_buses);
  const int b = attackModel_.grid().num_buses();
  const std::size_t slots =
      static_cast<std::size_t>(options_.parallel_candidates);
  // Seeds are evaluated serially up front (they are few and usually
  // decisive); the parallel machinery only spins up for the model loop.
  bool done = try_seeds(candidates, sb, elapsed, out);

  // One attack-model clone per evaluation slot, built up front and reused
  // every round — re-encoding per candidate would dominate the loop.
  std::vector<std::unique_ptr<UfdiAttackModel>> workers;
  if (!done) {
    workers.reserve(slots);
    for (std::size_t i = 0; i < slots; ++i) {
      workers.push_back(attackModel_.clone());
      if (options_.share_clauses != nullptr && slots > 1) {
        // Workers persist across rounds, so clauses learnt while verifying
        // one candidate prune every sibling's search on later rounds (the
        // shared base formula is what they constrain; candidates are pure
        // assumptions).
        smt::SatOptions o;
        o.exchange = options_.share_clauses->make_endpoint();
        workers.back()->set_solver_options(o);
      }
    }
  }

  while (!done) {
    if (options_.time_limit_seconds > 0 &&
        elapsed() > options_.time_limit_seconds) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }

    // --- Enumerate up to `slots` distinct candidates from the shared
    // candidate model. Each is exact-blocked immediately so the next solve
    // yields a different one; failed candidates get their (stronger)
    // failure clause after verification, which subsumes the exact block.
    std::vector<std::vector<BusId>> batch;
    std::vector<smt::SatStats> batchCandEffort;
    bool candUnsat = false;
    bool candUnknown = false;
    while (batch.size() < slots) {
      smt::Budget candBudget;
      if (options_.time_limit_seconds > 0) candBudget.max_time = remaining_ms();
      const smt::SatStats candBefore = candidates.stats();
      smt::SolveResult cr = candidates.solve({}, candBudget);
      batchCandEffort.push_back(candidates.stats_since(candBefore));
      if (cr == smt::SolveResult::Unknown) {
        candUnknown = true;
        break;
      }
      if (cr == smt::SolveResult::Unsat) {
        candUnsat = true;
        break;
      }
      std::vector<BusId> S;
      std::vector<Lit> exactBlock;
      for (BusId j = 0; j < b; ++j) {
        bool in = candidates.model_value(sb[static_cast<std::size_t>(j)]);
        if (in) S.push_back(j);
        exactBlock.push_back(in ? Lit::neg(sb[static_cast<std::size_t>(j)])
                                : Lit::pos(sb[static_cast<std::size_t>(j)]));
      }
      candidates.add_clause(std::move(exactBlock));
      batch.push_back(std::move(S));
    }
    if (batch.empty()) {
      out.status = candUnsat ? SynthesisResult::Status::NoArchitecture
                             : SynthesisResult::Status::Timeout;
      break;
    }

    // --- Evaluate the batch concurrently, one clone per candidate. The
    // first UNSAT (architecture works) raises the stop token so sibling
    // verifications abandon their search promptly; failure clauses are
    // merged under the mutex as workers finish.
    std::atomic<bool> stop{false};
    std::mutex mergeMu;
    std::vector<VerificationResult> results(batch.size());
    std::vector<std::vector<Lit>> learnedBlocks;
    std::vector<std::thread> threads;
    threads.reserve(batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      threads.emplace_back([&, i] {
        smt::Budget vb = options_.verification_budget;
        if (options_.time_limit_seconds > 0) {
          auto rem = remaining_ms();
          if (vb.max_time.count() == 0 || vb.max_time > rem) {
            vb.max_time = rem;
          }
        }
        vb.stop = &stop;
        VerificationResult v =
            workers[i]->verify_with_secured_buses(batch[i], vb);
        std::lock_guard<std::mutex> lock(mergeMu);
        if (v.result == smt::SolveResult::Unsat) {
          stop.store(true, std::memory_order_relaxed);
        } else if (v.result == smt::SolveResult::Sat) {
          learnedBlocks.push_back(failure_blocking_clause(sb, batch[i], v));
        }
        results[i] = std::move(v);
      });
    }
    for (std::thread& t : threads) t.join();
    // Journal in candidate order (not completion order), so serial and
    // parallel traces of the same run read the same way.
    for (std::size_t i = 0; i < batch.size(); ++i) {
      trace_iteration(out.candidates_tried + static_cast<int>(i) + 1,
                      batch[i], results[i], batchCandEffort[i]);
    }
    out.candidates_tried += static_cast<int>(batch.size());
    for (std::vector<Lit>& cl : learnedBlocks) {
      candidates.add_clause(std::move(cl));
    }

    // Lowest-index success wins (ties between concurrent successes resolve
    // by candidate order, not completion order).
    bool found = false;
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (results[i].result == smt::SolveResult::Unsat) {
        out.status = SynthesisResult::Status::Found;
        out.secured_buses = std::move(batch[i]);
        found = true;
        break;
      }
    }
    if (found) break;
    // With no success, stop was never raised, so an Unknown is a genuine
    // budget exhaustion — the serial loop reports Timeout there too.
    bool exhausted = false;
    for (const VerificationResult& v : results) {
      if (v.result == smt::SolveResult::Unknown) exhausted = true;
    }
    if (exhausted || candUnknown) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }
    if (candUnsat) {
      // Every remaining candidate was refuted this round.
      out.status = SynthesisResult::Status::NoArchitecture;
      break;
    }
  }
  out.seconds = elapsed();
  out.candidate_footprint_bytes = candidates.footprint_bytes();
  if (options_.trace.enabled()) {
    obs::Event("cegis_done")
        .field("status", SynthesisResult::status_name(out.status))
        .field("candidates_tried", out.candidates_tried)
        .field("seconds", out.seconds)
        .field_raw("architecture", obs::json_int_array(out.secured_buses))
        .emit(options_.trace);
  }
  return out;
}

MeasurementSecuritySynthesizer::MeasurementSecuritySynthesizer(
    UfdiAttackModel& attackModel, int maxSecuredMeasurements,
    double timeLimitSeconds, smt::Budget verificationBudget)
    : attackModel_(attackModel),
      budget_(maxSecuredMeasurements),
      timeLimit_(timeLimitSeconds),
      verificationBudget_(verificationBudget) {
  PSSE_CHECK(budget_ >= 0, "MeasurementSecuritySynthesizer: bad budget");
}

MeasurementSynthesisResult MeasurementSecuritySynthesizer::synthesize() {
  MeasurementSynthesisResult out;
  const auto start = std::chrono::steady_clock::now();
  auto elapsed = [&]() {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };
  const std::vector<grid::MeasId> universe =
      attackModel_.attackable_measurements();
  // Candidate model: choose <= budget measurements; counterexample
  // attacks contribute "secure at least one altered measurement" clauses.
  SatSolver candidates;
  std::vector<Var> vars;
  std::vector<int> varOf(
      static_cast<std::size_t>(attackModel_.plan().num_potential()), -1);
  for (grid::MeasId m : universe) {
    varOf[static_cast<std::size_t>(m)] = static_cast<int>(vars.size());
    vars.push_back(candidates.new_var());
  }
  {
    std::vector<Lit> all;
    for (Var v : vars) all.push_back(Lit::pos(v));
    candidates.add_at_most(all, static_cast<std::uint32_t>(budget_));
  }

  for (;;) {
    if (timeLimit_ > 0 && elapsed() > timeLimit_) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }
    smt::SolveResult cr = candidates.solve();
    if (cr == smt::SolveResult::Unsat) {
      out.status = SynthesisResult::Status::NoArchitecture;
      break;
    }
    std::vector<grid::MeasId> S;
    for (grid::MeasId m : universe) {
      if (candidates.model_value(
              vars[static_cast<std::size_t>(
                  varOf[static_cast<std::size_t>(m)])])) {
        S.push_back(m);
      }
    }
    ++out.candidates_tried;
    smt::Budget vb = verificationBudget_;
    if (timeLimit_ > 0) {
      auto remaining = std::chrono::milliseconds(
          static_cast<long>(1000 * std::max(0.1, timeLimit_ - elapsed())));
      if (vb.max_time.count() == 0 || vb.max_time > remaining) {
        vb.max_time = remaining;
      }
    }
    VerificationResult v =
        attackModel_.verify_with_secured_measurements(S, vb);
    if (v.result == smt::SolveResult::Unsat) {
      out.status = SynthesisResult::Status::Found;
      out.secured_measurements = std::move(S);
      break;
    }
    if (v.result == smt::SolveResult::Unknown) {
      out.status = SynthesisResult::Status::Timeout;
      break;
    }
    PSSE_ASSERT(v.attack.has_value());
    std::vector<Lit> block;
    for (grid::MeasId m : v.attack->altered_measurements) {
      int idx = varOf[static_cast<std::size_t>(m)];
      PSSE_ASSERT(idx >= 0);
      block.push_back(Lit::pos(vars[static_cast<std::size_t>(idx)]));
    }
    candidates.add_clause(std::move(block));
  }
  out.seconds = elapsed();
  return out;
}

MeasurementSynthesisResult MeasurementSecuritySynthesizer::synthesize_minimal(
    int maxBudget) {
  const auto start = std::chrono::steady_clock::now();
  MeasurementSynthesisResult last;
  double total = 0.0;
  int totalCandidates = 0;
  for (int b = 1; b <= maxBudget; ++b) {
    double remaining = timeLimit_;
    if (timeLimit_ > 0) {
      double used = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      remaining = std::max(0.1, timeLimit_ - used);
    }
    MeasurementSecuritySynthesizer inner(attackModel_, b, remaining,
                                         verificationBudget_);
    last = inner.synthesize();
    total += last.seconds;
    totalCandidates += last.candidates_tried;
    if (last.status != SynthesisResult::Status::NoArchitecture) break;
  }
  last.seconds = total;
  last.candidates_tried = totalCandidates;
  return last;
}

SynthesisResult SecurityArchitectureSynthesizer::synthesize_minimal(
    int maxBudget) {
  const auto start = std::chrono::steady_clock::now();
  SynthesisResult last;
  int from = std::max(1, static_cast<int>(options_.must_secure.size()));
  double totalSeconds = 0.0;
  int totalCandidates = 0;
  for (int budget = from; budget <= maxBudget; ++budget) {
    SynthesisOptions opts = options_;
    opts.max_secured_buses = budget;
    if (options_.time_limit_seconds > 0) {
      double used = std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - start)
                        .count();
      opts.time_limit_seconds =
          std::max(0.1, options_.time_limit_seconds - used);
    }
    SecurityArchitectureSynthesizer inner(attackModel_, opts);
    last = inner.synthesize();
    totalSeconds += last.seconds;
    totalCandidates += last.candidates_tried;
    if (last.status != SynthesisResult::Status::NoArchitecture) break;
  }
  last.seconds = totalSeconds;
  last.candidates_tried = totalCandidates;
  return last;
}

}  // namespace psse::core
