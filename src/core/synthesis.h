// Countermeasure synthesis (paper Section IV, Algorithm 1).
//
// A CEGIS-style loop between two models:
//  * the *candidate selection model* — a boolean problem choosing <= T_SB
//    buses to secure, honouring operator exclusions (Eq. (29)) and the
//    adjacent-bus pruning constraint (Eq. (30));
//  * the *attack verification model* — queried with the candidate's sb_j
//    assumptions; UNSAT means the candidate blocks every attack in the
//    operator's threat model.
//
// Failed candidates are blocked. With subset blocking (default, and
// strictly stronger than the paper's exact blocking) a failed set S prunes
// every subset of S as well, which is sound because securing fewer buses
// can only help the adversary.
#pragma once

#include <functional>
#include <vector>

#include "core/attack_model.h"
#include "obs/trace.h"
#include "smt/sat_solver.h"

namespace psse::core {

struct SynthesisOptions {
  /// T_SB (Eq. (27)): operator budget in buses.
  int max_secured_buses = 0;
  /// Buses the operator cannot secure (Eq. (29)).
  std::vector<grid::BusId> cannot_secure;
  /// Buses that must be part of any architecture.
  std::vector<grid::BusId> must_secure;
  /// Apply the Eq. (30) search-space reduction (no securing both ends of a
  /// line whose near-end flow measurement is taken).
  bool adjacency_pruning = true;
  /// Block all subsets of a failed candidate, not just the candidate.
  bool subset_blocking = true;
  /// Seed the search with graph-derived candidates (screen::seed_candidates
  /// — measurement-cut / greedy-coverage sets over the measurement-bus
  /// incidence graph, after Bi & Zhang 1304.4151) before consulting the
  /// SAT candidate model. Every seed is verified exactly and a failed seed
  /// contributes the same blocking clause as an enumerated candidate, so
  /// the outcome status is unchanged — on structured grids the first seed
  /// often already blocks all attacks, cutting `cegis_iter` counts.
  bool graph_seeding = true;
  /// Cap on the number of graph seeds tried (0 disables seeding).
  std::size_t max_seed_candidates = 6;
  /// Counterexample-guided blocking: a failed candidate comes with a
  /// concrete attack; any architecture securing none of that attack's
  /// compromised buses admits the *same* attack, so the candidate model
  /// learns "secure at least one of them". This turns the loop into a
  /// lazy hitting-set computation (cf. the NP-complete measurement-
  /// protection problem of Bobba et al. [6]) and is what makes 57-bus+
  /// synthesis converge. Strictly subsumes subset_blocking.
  bool counterexample_blocking = true;
  /// Budget for each inner verification call.
  smt::Budget verification_budget;
  /// Wall-clock ceiling for the whole synthesis; 0 = unlimited.
  double time_limit_seconds = 0.0;
  /// Evaluate up to this many candidate architectures concurrently (the
  /// parallel CEGIS path); 1 = the serial loop. Each round enumerates K
  /// distinct candidates from the shared candidate model, verifies them on
  /// per-thread clones of the attack model, and merges the resulting
  /// counterexample-blocking clauses back under a mutex. The first
  /// successful candidate cancels its siblings via the stop token.
  /// Parallel and serial runs agree on the outcome status — and any found
  /// architecture blocks every attack of the model — but they may return
  /// different, equally valid, architectures.
  int parallel_candidates = 1;
  /// Learned-clause sharing hub for the parallel CEGIS workers: when set
  /// (and parallel_candidates > 1), each worker clone gets its own
  /// endpoint, so conflicts one worker derives about the shared attack
  /// formula don't have to be re-learnt by its siblings on later rounds.
  /// Sound because all workers verify clones of one model — candidates
  /// differ only in solver *assumptions*, which learnt clauses never
  /// depend on. Typically a runtime::ClauseChannel; must outlive the
  /// synthesis call. nullptr (default) disables sharing.
  smt::ClauseExchangeHub* share_clauses = nullptr;
  /// Structured tracing of the CEGIS loop: one "cegis_iter" event per
  /// candidate (bus set, verdict, blocking-clause kind, wall time,
  /// per-candidate solver effort) and a final "cegis_done" event. Off by
  /// default (null sink); the sink must outlive the synthesis call. Bus
  /// ids in events are 0-based, matching the C++ API (the CLI prints
  /// 1-based).
  obs::Config trace;
};

struct SynthesisResult {
  enum class Status { Found, NoArchitecture, Timeout };

  /// Lower-case status name for machine-readable reports and traces.
  [[nodiscard]] static constexpr const char* status_name(Status s) {
    switch (s) {
      case Status::Found:
        return "found";
      case Status::NoArchitecture:
        return "no_architecture";
      default:
        return "timeout";
    }
  }
  Status status = Status::Timeout;
  /// The synthesised security architecture (buses to secure).
  std::vector<grid::BusId> secured_buses;
  int candidates_tried = 0;
  double seconds = 0.0;
  /// Candidate-model footprint (Table IV's second column).
  std::size_t candidate_footprint_bytes = 0;

  [[nodiscard]] bool found() const { return status == Status::Found; }
};

class SecurityArchitectureSynthesizer {
 public:
  /// The attack model encodes the *security requirements*: the expected
  /// adversary the architecture must resist.
  SecurityArchitectureSynthesizer(UfdiAttackModel& attackModel,
                                  SynthesisOptions options);

  /// Runs Algorithm 1 with the configured bus budget.
  [[nodiscard]] SynthesisResult synthesize();

  /// Finds a minimum-size architecture by increasing the budget from
  /// |must_secure| up to `maxBudget` and returning the first success.
  [[nodiscard]] SynthesisResult synthesize_minimal(int maxBudget);

 private:
  void build_candidate_model(smt::SatSolver& solver,
                             std::vector<smt::Var>& sbVars, int budget) const;
  /// The clause that prunes the candidate space after S failed with
  /// counterexample v: "secure one of the attack's compromised buses"
  /// (counterexample blocking), "secure something outside S" (subset
  /// blocking), or the exact negation of S.
  [[nodiscard]] std::vector<smt::Lit> failure_blocking_clause(
      const std::vector<smt::Var>& sbVars, const std::vector<grid::BusId>& S,
      const VerificationResult& v) const;
  /// Which pruning rule failure_blocking_clause will choose for `v` — the
  /// "blocking" field of the cegis_iter journal event.
  [[nodiscard]] const char* blocking_kind(const VerificationResult& v) const;
  /// One cegis_iter journal line (no-op when tracing is off).
  void trace_iteration(int iter, const std::vector<grid::BusId>& candidate,
                       const VerificationResult& v,
                       const smt::SatStats& candidateEffort,
                       bool seed = false) const;
  /// Verifies the graph-seeded candidates before the model loop. Returns
  /// true when synthesis concluded (out.status set); false to continue
  /// with the enumeration, which inherits the seeds' blocking clauses.
  bool try_seeds(smt::SatSolver& candidates,
                 const std::vector<smt::Var>& sbVars,
                 const std::function<double()>& elapsed,
                 SynthesisResult& out);
  [[nodiscard]] SynthesisResult synthesize_parallel();

  UfdiAttackModel& attackModel_;
  SynthesisOptions options_;
};

/// Measurement-granular synthesis (Section IV-A's noted variant): find a
/// set of at most `maxSecuredMeasurements` individual measurements whose
/// integrity protection blocks every attack of the model. The loop is the
/// same lazy hitting-set computation as the bus variant, over the altered
/// measurement sets of counterexample attacks.
struct MeasurementSynthesisResult {
  SynthesisResult::Status status = SynthesisResult::Status::Timeout;
  std::vector<grid::MeasId> secured_measurements;
  int candidates_tried = 0;
  double seconds = 0.0;

  [[nodiscard]] bool found() const {
    return status == SynthesisResult::Status::Found;
  }
};

class MeasurementSecuritySynthesizer {
 public:
  MeasurementSecuritySynthesizer(UfdiAttackModel& attackModel,
                                 int maxSecuredMeasurements,
                                 double timeLimitSeconds = 0.0,
                                 smt::Budget verificationBudget = {});

  [[nodiscard]] MeasurementSynthesisResult synthesize();
  /// Smallest secured set by increasing the budget up to `maxBudget`.
  [[nodiscard]] MeasurementSynthesisResult synthesize_minimal(int maxBudget);

 private:
  UfdiAttackModel& attackModel_;
  int budget_;
  double timeLimit_;
  smt::Budget verificationBudget_;
};

}  // namespace psse::core
