#include "core/security_metrics.h"

#include "core/attack_model.h"

namespace psse::core {

namespace {

// Smallest limit in [1, hi] for which the attack is feasible, or -1.
// Feasibility is monotone in the limit, so binary search applies.
int min_feasible_limit(const grid::Grid& grid,
                       const grid::MeasurementPlan& plan,
                       const AttackSpec& spec, bool measurementLimit,
                       int hi, const smt::Budget& budget) {
  auto feasible = [&](int limit) {
    AttackSpec probe = spec;
    if (measurementLimit) {
      probe.max_altered_measurements = limit;
      probe.max_compromised_buses = 0;
    } else {
      probe.max_altered_measurements = 0;
      probe.max_compromised_buses = limit;
    }
    UfdiAttackModel model(grid, plan, probe);
    return model.verify(budget).result == smt::SolveResult::Sat;
  };
  if (!feasible(hi)) return -1;
  int lo = 1;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    if (feasible(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

std::vector<BusAttackCost> bus_attack_costs(const grid::Grid& grid,
                                            const grid::MeasurementPlan& plan,
                                            const AttackSpec& base,
                                            const smt::Budget& perSolve) {
  std::vector<BusAttackCost> out;
  for (grid::BusId bus = 0; bus < grid.num_buses(); ++bus) {
    if (bus == base.reference_bus) continue;
    AttackSpec spec = base;
    spec.target_states = {bus};
    spec.attack_only_targets = false;
    spec.require_any_state_attack = false;
    BusAttackCost cost;
    cost.bus = bus;
    cost.min_measurements = min_feasible_limit(
        grid, plan, spec, /*measurementLimit=*/true, plan.num_taken(),
        perSolve);
    cost.min_buses = min_feasible_limit(grid, plan, spec,
                                        /*measurementLimit=*/false,
                                        grid.num_buses(), perSolve);
    out.push_back(cost);
  }
  return out;
}

}  // namespace psse::core
