// Attack attributes (paper Section II-C / III-G): the adversary's
// knowledge, resources, goals, and topology-tampering capability.
//
// Accessibility (az) and existing measurement security (sz) live on the
// grid::MeasurementPlan; everything else about the adversary is here.
#pragma once

#include <utility>
#include <vector>

#include "grid/grid.h"
#include "grid/measurement.h"

namespace psse::core {

struct AttackSpec {
  /// bd_i — does the adversary know the admittance of line i? Empty means
  /// "knows everything" (Eq. (18) with all positives).
  std::vector<bool> admittance_known;

  /// T_CZ (Eq. (22)): max measurements altered simultaneously; 0 = unlimited.
  int max_altered_measurements = 0;
  /// T_CB (Eq. (24)): max substations compromised; 0 = unlimited.
  int max_compromised_buses = 0;

  /// Target states (Eq. (25)): buses whose angle estimate must be corrupted.
  std::vector<grid::BusId> target_states;
  /// If true, *only* the targets may be affected (Section III-I objective
  /// 2: "attack state 12 only"); otherwise untargeted states are free.
  bool attack_only_targets = false;
  /// Pairs whose state changes must differ (Eq. (26)): attacks through a
  /// grid cut shift whole islands uniformly, which this rules out.
  std::vector<std::pair<grid::BusId, grid::BusId>> distinct_changes;
  /// With no explicit targets, still demand a nontrivial attack
  /// (sum cx >= 1) — the mode countermeasure synthesis verifies against.
  bool require_any_state_attack = true;

  /// Can the adversary poison breaker-status telemetry at all?
  bool allow_topology_attacks = false;
  /// Max lines excluded+included per attack; 0 = unlimited (when allowed).
  int max_topology_changes = 0;
  /// Apply Eq. (17) to the letter: altering a line's flow meters requires
  /// knowing its admittance even when the altering is part of a topology
  /// attack (driving an excluded line's meter to zero). Disable to model
  /// an adversary who can zero a meter without electrical knowledge.
  bool knowledge_gates_topology_lines = true;

  /// Exclusion-attack semantics for the excluded line's own flow meters.
  /// true (default): the meters stay in the estimator's scope, so the
  /// adversary must drive them to read zero — altering them, which fails
  /// if they are secured (this reproduces Section III-I objective 2, whose
  /// solution alters measurements 13 and 33). false: the EMS discards
  /// measurements of unmapped lines, so no alteration is needed and even
  /// secured meters cannot veto the exclusion (this reproduces Section
  /// IV-E scenario 3, where no 5-bus architecture survives topology
  /// attacks). The paper's two case studies are only consistent with
  /// different choices here — see DESIGN.md §4.
  bool excluded_meters_must_read_zero = true;

  /// The estimator's angle reference; its state change is pinned to zero
  /// (a uniform shift is invisible to any measurement and meaningless).
  grid::BusId reference_bus = 0;

  /// Extension beyond the paper: magnitude constraints. The paper's model
  /// is homogeneous (any solution scales), so feasibility never depends on
  /// magnitudes. Real meters have plausibility ranges, though: capping
  /// each injected delta at `max_measurement_delta` (p.u.; 0 = off) while
  /// demanding at least `min_target_shift` radians of corruption on every
  /// target state makes impact-vs-visibility a genuine trade-off.
  double min_target_shift = 0.0;
  double max_measurement_delta = 0.0;

  /// Does the adversary know line i's admittance?
  [[nodiscard]] bool knows(grid::LineId i) const {
    return admittance_known.empty() ||
           admittance_known[static_cast<std::size_t>(i)];
  }

  /// Marks line i's admittance unknown (resizing to `numLines` on first use).
  void set_unknown(grid::LineId i, int numLines) {
    if (admittance_known.empty()) {
      admittance_known.assign(static_cast<std::size_t>(numLines), true);
    }
    admittance_known[static_cast<std::size_t>(i)] = false;
  }
};

/// The *sweepable* axes of an attack scenario — everything a family of
/// related queries varies while the structural encoding (grid topology,
/// measurement layout, knowledge, topology-attack capability) stays fixed.
/// These are exactly the fig4/fig5 sweep axes: resource limits T_CZ/T_CB,
/// the attack goal (targets / distinctness / magnitude), and the
/// dynamically secured sets.
///
/// A delta splits off an AttackSpec: `strip_delta(spec)` is the base spec
/// a warm solver session encodes once, and `ScenarioDelta::of(spec)` is the
/// per-query remainder asserted under a push frame (see
/// UfdiAttackModel::verify_delta). The secured sets have no AttackSpec
/// counterpart — statically secured measurements live on the
/// MeasurementPlan; here they are solver *assumptions*, so toggling them
/// costs nothing.
struct ScenarioDelta {
  /// T_CZ / T_CB / topology-change caps; 0 = unlimited (Eqs. (22)-(24)).
  int max_altered_measurements = 0;
  int max_compromised_buses = 0;
  int max_topology_changes = 0;

  /// Attack goal (Eqs. (25),(26)) — see the AttackSpec fields of the same
  /// names.
  std::vector<grid::BusId> target_states;
  bool attack_only_targets = false;
  std::vector<std::pair<grid::BusId, grid::BusId>> distinct_changes;
  bool require_any_state_attack = true;

  /// Magnitude extension (see AttackSpec).
  double min_target_shift = 0.0;
  double max_measurement_delta = 0.0;

  /// Dynamically secured buses (Eq. (28)) and individual measurements,
  /// applied via assumption literals. Ids that are untaken, inaccessible,
  /// or statically secured in the plan are already unalterable and are
  /// skipped silently.
  std::vector<grid::BusId> secured_buses;
  std::vector<grid::MeasId> secured_measurements;

  /// The delta portion of `spec` (secured sets empty — those have no
  /// AttackSpec representation).
  [[nodiscard]] static ScenarioDelta of(const AttackSpec& spec) {
    ScenarioDelta d;
    d.max_altered_measurements = spec.max_altered_measurements;
    d.max_compromised_buses = spec.max_compromised_buses;
    d.max_topology_changes = spec.max_topology_changes;
    d.target_states = spec.target_states;
    d.attack_only_targets = spec.attack_only_targets;
    d.distinct_changes = spec.distinct_changes;
    d.require_any_state_attack = spec.require_any_state_attack;
    d.min_target_shift = spec.min_target_shift;
    d.max_measurement_delta = spec.max_measurement_delta;
    return d;
  }
};

/// `spec` with every ScenarioDelta axis reset: the base problem a solver
/// session encodes once per family. Applying `ScenarioDelta::of(spec)` on
/// top of `strip_delta(spec)` reproduces the original scenario's verdict.
[[nodiscard]] inline AttackSpec strip_delta(const AttackSpec& spec) {
  AttackSpec base = spec;
  base.max_altered_measurements = 0;
  base.max_compromised_buses = 0;
  base.max_topology_changes = 0;
  base.target_states.clear();
  base.attack_only_targets = false;
  base.distinct_changes.clear();
  base.require_any_state_attack = false;
  base.min_target_shift = 0.0;
  base.max_measurement_delta = 0.0;
  return base;
}

}  // namespace psse::core
