// Baseline countermeasure: basic-measurement protection (Bobba et al. [6],
// greedy variant in the spirit of Kim & Poor [7]).
//
// The classical result: UFDI attacks are impossible iff a set of *basic*
// measurements — enough to make the system observable on its own — is
// integrity-protected. This module implements the bus-granular greedy
// version the paper compares against conceptually: repeatedly secure the
// bus whose resident taken flow-measurements join the most still-separate
// components of the "pinned state" graph (a secured flow meter on line
// (a,b) pins the angle difference of a and b), until the pinned graph
// spans the grid.
//
// It is fast and attack-model-agnostic, but — unlike the SMT synthesis —
// cannot exploit a limited adversary (partial knowledge, bounded
// resources), so it generally over-secures; the ablation bench quantifies
// that gap.
#pragma once

#include <vector>

#include "grid/grid.h"
#include "grid/measurement.h"

namespace psse::core {

struct GreedyDefenseResult {
  /// Buses chosen, in selection order (must_secure first).
  std::vector<grid::BusId> secured_buses;
  /// True iff the pinned-state graph spans the grid (defence complete).
  bool complete = false;
};

/// Greedily secures buses until every bus angle is pinned (relative to the
/// reference) by secured taken flow measurements. `mustSecure` buses are
/// selected first.
[[nodiscard]] GreedyDefenseResult greedy_basic_measurement_defense(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const std::vector<grid::BusId>& mustSecure = {});

}  // namespace psse::core
