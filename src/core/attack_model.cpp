#include "core/attack_model.h"

#include <algorithm>
#include <cmath>

#include "smt/common.h"

namespace psse::core {

using grid::BusId;
using grid::LineId;
using grid::MeasId;
using smt::LinExpr;
using smt::Rational;
using smt::TermRef;

namespace {

/// Exact rational for a double admittance, rounded at 1e-6 — the grid data
/// is decimal to begin with (Table II has two decimals), so this is exact
/// in practice and keeps simplex coefficients small.
Rational to_rational(double v) {
  return Rational(static_cast<std::int64_t>(std::llround(v * 1e6)), 1000000);
}

}  // namespace

UfdiAttackModel::UfdiAttackModel(const grid::Grid& grid,
                                 const grid::MeasurementPlan& plan,
                                 AttackSpec spec, EncodeMode mode)
    : grid_(grid),
      plan_(plan),
      // A base-mode model ignores the delta axes by construction, so strip
      // them up front: clone() then reproduces the same base encoding and
      // the session-cache key need not normalise the spec itself.
      spec_(mode == EncodeMode::kBase ? strip_delta(spec) : std::move(spec)),
      mode_(mode) {
  PSSE_CHECK(plan_.num_lines() == grid_.num_lines() &&
                 plan_.num_buses() == grid_.num_buses(),
             "UfdiAttackModel: plan does not match grid");
  PSSE_CHECK(spec_.reference_bus >= 0 &&
                 spec_.reference_bus < grid_.num_buses(),
             "UfdiAttackModel: reference bus out of range");
  PSSE_CHECK(spec_.admittance_known.empty() ||
                 static_cast<int>(spec_.admittance_known.size()) ==
                     grid_.num_lines(),
             "UfdiAttackModel: admittance_known size mismatch");
  for (BusId t : spec_.target_states) {
    PSSE_CHECK(t >= 0 && t < grid_.num_buses(),
               "UfdiAttackModel: target state out of range");
    PSSE_CHECK(t != spec_.reference_bus,
               "UfdiAttackModel: the reference state cannot be attacked");
  }
  encode();
}

void UfdiAttackModel::encode() {
  auto& t = solver_.terms();
  const int b = grid_.num_buses();
  const int l = grid_.num_lines();

  // --- State variables and cx_j <-> (delta theta_j != 0)  (Eq. (5)) ---
  cx_.resize(static_cast<std::size_t>(b));
  cb_.resize(static_cast<std::size_t>(b));
  sb_.resize(static_cast<std::size_t>(b));
  dtheta_.resize(static_cast<std::size_t>(b));
  for (BusId j = 0; j < b; ++j) {
    dtheta_[static_cast<std::size_t>(j)] =
        solver_.mk_real("dth" + std::to_string(j + 1));
    cx_[static_cast<std::size_t>(j)] =
        solver_.mk_bool("cx" + std::to_string(j + 1));
    cb_[static_cast<std::size_t>(j)] =
        solver_.mk_bool("cb" + std::to_string(j + 1));
    sb_[static_cast<std::size_t>(j)] =
        solver_.mk_bool("sb" + std::to_string(j + 1));
    LinExpr dth = LinExpr::var(dtheta_[static_cast<std::size_t>(j)]);
    solver_.assert_term(t.mk_implies(cx_[static_cast<std::size_t>(j)],
                                     t.mk_ne(dth, Rational(0))));
    solver_.assert_term(t.mk_implies(~cx_[static_cast<std::size_t>(j)],
                                     t.mk_eq(dth, Rational(0))));
  }
  // Reference gauge: a uniform shift is unobservable, so pin it.
  {
    LinExpr ref =
        LinExpr::var(dtheta_[static_cast<std::size_t>(spec_.reference_bus)]);
    solver_.assert_term(t.mk_eq(ref, Rational(0)));
    solver_.assert_term(~cx_[static_cast<std::size_t>(spec_.reference_bus)]);
  }

  // --- Per-line flow deltas and topology-attack structure ---
  el_.resize(static_cast<std::size_t>(l));
  il_.resize(static_cast<std::size_t>(l));
  te_.assign(static_cast<std::size_t>(l), smt::kNoTVar);
  tot_.resize(static_cast<std::size_t>(l));
  tot_is_var_.assign(static_cast<std::size_t>(l), false);
  topology_vars_.clear();
  for (LineId i = 0; i < l; ++i) {
    const grid::Line& line = grid_.line(i);
    Rational y = to_rational(line.admittance);
    LinExpr stateExpr;
    stateExpr.add_term(dtheta_[static_cast<std::size_t>(line.from)], y);
    stateExpr.add_term(dtheta_[static_cast<std::size_t>(line.to)], -y);

    const bool excludable = spec_.allow_topology_attacks && line.in_service &&
                            !line.fixed && !line.status_secured;
    const bool includable = spec_.allow_topology_attacks &&
                            !line.in_service && !line.status_secured;
    if (line.in_service && !excludable) {
      tot_[static_cast<std::size_t>(i)] = stateExpr;
      continue;
    }
    if (!line.in_service && !includable) {
      tot_[static_cast<std::size_t>(i)] = LinExpr();  // constant zero
      continue;
    }
    // Attackable line: total delta becomes a guarded variable (Eqs.
    // (7)-(13) as reconstructed in DESIGN.md §4).
    smt::TVar tot = solver_.mk_real("tot" + std::to_string(i + 1));
    smt::TVar te = solver_.mk_real("te" + std::to_string(i + 1));
    te_[static_cast<std::size_t>(i)] = te;
    tot_[static_cast<std::size_t>(i)] = LinExpr::var(tot);
    tot_is_var_[static_cast<std::size_t>(i)] = true;
    LinExpr totE = LinExpr::var(tot);
    LinExpr teE = LinExpr::var(te);
    TermRef attackVar;
    if (excludable) {
      attackVar = solver_.mk_bool("el" + std::to_string(i + 1));
      el_[static_cast<std::size_t>(i)] = attackVar;
      // ~el: the line behaves normally.
      solver_.assert_term(
          t.mk_implies(~attackVar, t.mk_eq(totE - stateExpr, Rational(0))));
    } else {
      attackVar = solver_.mk_bool("il" + std::to_string(i + 1));
      il_[static_cast<std::size_t>(i)] = attackVar;
      // ~il: an open, unmapped line contributes nothing.
      solver_.assert_term(
          t.mk_implies(~attackVar, t.mk_eq(totE, Rational(0))));
    }
    topology_vars_.push_back(attackVar);
    // Under attack, the delta is the free topology term, forced nonzero
    // (exclusion must hide a real flow; inclusion must fake one).
    solver_.assert_term(
        t.mk_implies(attackVar, t.mk_eq(totE - teE, Rational(0))));
    solver_.assert_term(t.mk_implies(attackVar, t.mk_ne(teE, Rational(0))));
    solver_.assert_term(t.mk_implies(~attackVar, t.mk_eq(teE, Rational(0))));
  }

  // --- Injection deltas (Eq. (14)) ---
  dpb_.resize(static_cast<std::size_t>(b));
  for (BusId j = 0; j < b; ++j) {
    LinExpr sum;
    for (LineId i : grid_.lines_at(j)) {
      const grid::Line& line = grid_.line(i);
      if (line.to == j) {
        sum += tot_[static_cast<std::size_t>(i)];
      } else {
        sum -= tot_[static_cast<std::size_t>(i)];
      }
    }
    dpb_[static_cast<std::size_t>(j)] = sum;
  }

  // --- Measurement alteration: cz_m <-> (its delta != 0)  (Eqs. (15),(16))
  cz_.resize(static_cast<std::size_t>(plan_.num_potential()));
  auto bind_cz = [&](MeasId m, const LinExpr& delta, TermRef discardIf) {
    if (!plan_.taken(m)) return;  // nobody reads it; it constrains nothing
    TermRef cz = solver_.mk_bool("cz" + std::to_string(m + 1));
    cz_[static_cast<std::size_t>(m)] = cz;
    if (delta.is_constant()) {
      // Structurally zero delta: the measurement can never need altering.
      solver_.assert_term(~cz);
      return;
    }
    if (discardIf.valid()) {
      // Discard semantics: under the exclusion attack the estimator drops
      // this meter, so it needs no altering and imposes no constraint.
      solver_.assert_term(t.mk_implies(discardIf, ~cz));
      solver_.assert_term(t.mk_implies(cz, t.mk_ne(delta, Rational(0))));
      solver_.assert_term(t.mk_implies(t.mk_and({~discardIf, ~cz}),
                                       t.mk_eq(delta, Rational(0))));
      return;
    }
    solver_.assert_term(t.mk_implies(cz, t.mk_ne(delta, Rational(0))));
    solver_.assert_term(t.mk_implies(~cz, t.mk_eq(delta, Rational(0))));
  };
  for (LineId i = 0; i < l; ++i) {
    TermRef discardIf;  // invalid = zeroing semantics
    if (!spec_.excluded_meters_must_read_zero &&
        el_[static_cast<std::size_t>(i)].valid()) {
      discardIf = el_[static_cast<std::size_t>(i)];
    }
    bind_cz(plan_.forward_flow(i), tot_[static_cast<std::size_t>(i)],
            discardIf);
    // The backward meter's delta is the negation; != 0 is the same
    // condition, so bind it to the same expression.
    bind_cz(plan_.backward_flow(i), tot_[static_cast<std::size_t>(i)],
            discardIf);
  }
  for (BusId j = 0; j < b; ++j) {
    bind_cz(plan_.injection(j), dpb_[static_cast<std::size_t>(j)], TermRef());
  }

  // --- Accessibility / static security (Eqs. (19)-(21)) and the dynamic
  //     secured-bus / secured-measurement closures (Eq. (28)) ---
  cz_valid_.clear();
  szv_.resize(static_cast<std::size_t>(plan_.num_potential()));
  for (MeasId m = 0; m < plan_.num_potential(); ++m) {
    TermRef cz = cz_[static_cast<std::size_t>(m)];
    if (!cz.valid()) continue;
    cz_valid_.push_back(cz);
    if (!plan_.accessible(m) || plan_.secured(m)) {
      solver_.assert_term(~cz);
      continue;
    }
    BusId res = plan_.residence_bus(m, grid_);
    solver_.assert_term(
        t.mk_or({~sb_[static_cast<std::size_t>(res)], ~cz}));
    TermRef szv = solver_.mk_bool("szv" + std::to_string(m + 1));
    szv_[static_cast<std::size_t>(m)] = szv;
    solver_.assert_term(t.mk_or({~szv, ~cz}));
  }

  // --- Knowledge (Eq. (17)) ---
  for (LineId i = 0; i < l; ++i) {
    if (spec_.knows(i)) continue;
    for (MeasId m : {plan_.forward_flow(i), plan_.backward_flow(i)}) {
      TermRef cz = cz_[static_cast<std::size_t>(m)];
      if (!cz.valid()) continue;
      if (spec_.knowledge_gates_topology_lines) {
        solver_.assert_term(~cz);
      } else {
        // Alteration is allowed only as part of a topology attack.
        std::vector<TermRef> lits{~cz};
        if (el_[static_cast<std::size_t>(i)].valid()) {
          lits.push_back(el_[static_cast<std::size_t>(i)]);
        }
        if (il_[static_cast<std::size_t>(i)].valid()) {
          lits.push_back(il_[static_cast<std::size_t>(i)]);
        }
        solver_.assert_term(t.mk_or(std::move(lits)));
      }
    }
  }

  // --- Residence closure (Eq. (23)): altering a measurement compromises
  //     its substation. Structural — the T_CZ/T_CB caps themselves are
  //     delta axes asserted below (kFull) or per verify_delta (kBase). ---
  for (MeasId m = 0; m < plan_.num_potential(); ++m) {
    TermRef cz = cz_[static_cast<std::size_t>(m)];
    if (!cz.valid()) continue;
    BusId res = plan_.residence_bus(m, grid_);
    solver_.assert_term(t.mk_or({~cz, cb_[static_cast<std::size_t>(res)]}));
  }

  if (mode_ == EncodeMode::kFull) {
    assert_delta(ScenarioDelta::of(spec_));
  }
}

void UfdiAttackModel::assert_delta(const ScenarioDelta& delta) {
  auto& t = solver_.terms();
  const int b = grid_.num_buses();
  const int l = grid_.num_lines();

  // --- Resource limits (Eqs. (22)-(24)) ---
  if (delta.max_topology_changes > 0 && !topology_vars_.empty()) {
    solver_.add_at_most(
        topology_vars_,
        static_cast<std::uint32_t>(delta.max_topology_changes));
  }
  if (delta.max_altered_measurements > 0 && !cz_valid_.empty()) {
    solver_.add_at_most(
        cz_valid_,
        static_cast<std::uint32_t>(delta.max_altered_measurements));
  }
  if (delta.max_compromised_buses > 0) {
    solver_.add_at_most(
        cb_, static_cast<std::uint32_t>(delta.max_compromised_buses));
  }

  // --- Attack goal (Eqs. (25),(26)) ---
  for (BusId target : delta.target_states) {
    solver_.assert_term(cx_[static_cast<std::size_t>(target)]);
  }
  if (delta.attack_only_targets) {
    for (BusId j = 0; j < b; ++j) {
      if (std::find(delta.target_states.begin(), delta.target_states.end(),
                    j) == delta.target_states.end()) {
        solver_.assert_term(~cx_[static_cast<std::size_t>(j)]);
      }
    }
  }
  for (auto [a, bb] : delta.distinct_changes) {
    LinExpr diff = LinExpr::var(dtheta_[static_cast<std::size_t>(a)]) -
                   LinExpr::var(dtheta_[static_cast<std::size_t>(bb)]);
    solver_.assert_term(t.mk_ne(diff, Rational(0)));
  }
  if (delta.target_states.empty() && delta.require_any_state_attack) {
    solver_.add_at_least(cx_, 1);
  }

  // --- Magnitude constraints (extension; see attack_spec.h) ---
  if (delta.min_target_shift > 0.0) {
    Rational eps = to_rational(delta.min_target_shift);
    for (BusId target : delta.target_states) {
      LinExpr dth = LinExpr::var(dtheta_[static_cast<std::size_t>(target)]);
      solver_.assert_term(
          t.mk_or({t.mk_ge(dth, eps), t.mk_le(dth, -eps)}));
    }
  }
  if (delta.max_measurement_delta > 0.0) {
    Rational cap = to_rational(delta.max_measurement_delta);
    auto bound_delta = [&](MeasId m, const LinExpr& deltaExpr) {
      if (!plan_.taken(m) || deltaExpr.is_constant()) return;
      solver_.assert_term(t.mk_le(deltaExpr, cap));
      solver_.assert_term(t.mk_ge(deltaExpr, -cap));
    };
    for (LineId i = 0; i < l; ++i) {
      bound_delta(plan_.forward_flow(i), tot_[static_cast<std::size_t>(i)]);
      bound_delta(plan_.backward_flow(i), tot_[static_cast<std::size_t>(i)]);
    }
    for (BusId j = 0; j < b; ++j) {
      bound_delta(plan_.injection(j), dpb_[static_cast<std::size_t>(j)]);
    }
  }
}

VerificationResult UfdiAttackModel::run(
    const std::vector<TermRef>& assumptions, const smt::Budget& budget) {
  VerificationResult out;
  // Snapshot/delta: the solver is incremental and reused across calls, so
  // its counters are lifetime totals — report what *this* call cost.
  const smt::SolverStats before = solver_.stats();
  const obs::PhaseTimes phasesBefore = solver_.phase_times();
  auto start = std::chrono::steady_clock::now();
  out.result = solver_.solve(assumptions, budget);
  out.seconds = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
  out.stats = solver_.stats().since(before);
  out.phase_times = solver_.phase_times().since(phasesBefore);
  if (out.result == smt::SolveResult::Sat) out.attack = extract_model();
  if (trace_.enabled()) {
    obs::Event("solve")
        .field("verdict", smt::to_cstring(out.result))
        .field("seconds", out.seconds)
        .field("assumptions", static_cast<std::uint64_t>(assumptions.size()))
        .field("decisions", out.stats.sat.decisions)
        .field("propagations", out.stats.sat.propagations)
        .field("conflicts", out.stats.sat.conflicts)
        .field("restarts", out.stats.sat.restarts)
        .field("theory_checks", out.stats.sat.theory_checks)
        .field("theory_conflicts", out.stats.sat.theory_conflicts)
        .field("theory_propagations", out.stats.sat.theory_propagations)
        .field("pivots", out.stats.pivots)
        .field("bound_flips", out.stats.bound_flips)
        .field("bland_fallbacks", out.stats.bland_fallbacks)
        .field("float_pivots", out.stats.float_pivots)
        .field("exact_recomputes", out.stats.exact_recomputes)
        .field("filter_disagreements", out.stats.filter_disagreements)
        .field("filter_fallbacks", out.stats.filter_fallbacks)
        .field("eta_updates", out.stats.eta_updates)
        .field("refactorisations", out.stats.refactorisations)
        .field("eta_file_len_max", out.stats.eta_file_len_max)
        .field("bigint_promotions", out.stats.bigint_promotions)
        .field("arena_gcs", out.stats.sat.arena_gcs)
        .field("arena_capacity_bytes",
               static_cast<std::uint64_t>(out.stats.arena_capacity_bytes))
        .field("arena_live_bytes",
               static_cast<std::uint64_t>(out.stats.arena_live_bytes))
        .field("clauses_exported", out.stats.sat.clauses_exported)
        .field("clauses_imported", out.stats.sat.clauses_imported)
        .field("clauses_accepted", out.stats.sat.clauses_accepted)
        .field("chrono_backtracks", out.stats.sat.chrono_backtracks)
        .field("lrb_selections", out.stats.sat.lrb_selections)
        .field("encode_us", out.phase_times.encode_us)
        .field("propagate_us", out.phase_times.propagate_us)
        .field("simplex_us", out.phase_times.simplex_us)
        .field("tprop_us", out.phase_times.tprop_us)
        .field("theory_us", out.phase_times.theory_us)
        .field("ftran_us", out.phase_times.ftran_us)
        .field("btran_us", out.phase_times.btran_us)
        .emit(trace_);
  }
  return out;
}

std::vector<TermRef> UfdiAttackModel::secured_assumptions(
    const std::vector<BusId>& securedBuses,
    const std::vector<MeasId>& securedMeasurements) const {
  std::vector<bool> busOn(static_cast<std::size_t>(grid_.num_buses()), false);
  for (BusId j : securedBuses) {
    PSSE_CHECK(j >= 0 && j < grid_.num_buses(),
               "secured_assumptions: bus out of range");
    busOn[static_cast<std::size_t>(j)] = true;
  }
  std::vector<bool> measOn(static_cast<std::size_t>(plan_.num_potential()),
                           false);
  for (MeasId m : securedMeasurements) {
    PSSE_CHECK(m >= 0 && m < plan_.num_potential(),
               "secured_assumptions: measurement id out of range");
    // Untaken, inaccessible, or statically secured measurements have no
    // szv variable; they are already unalterable, so securing them is a
    // no-op rather than an error (scenario sweeps toggle freely).
    measOn[static_cast<std::size_t>(m)] = true;
  }
  std::vector<TermRef> assumptions;
  assumptions.reserve(sb_.size() + szv_.size());
  for (BusId j = 0; j < grid_.num_buses(); ++j) {
    assumptions.push_back(busOn[static_cast<std::size_t>(j)]
                              ? sb_[static_cast<std::size_t>(j)]
                              : ~sb_[static_cast<std::size_t>(j)]);
  }
  for (MeasId m = 0; m < plan_.num_potential(); ++m) {
    TermRef s = szv_[static_cast<std::size_t>(m)];
    if (!s.valid()) continue;
    assumptions.push_back(measOn[static_cast<std::size_t>(m)] ? s : ~s);
  }
  return assumptions;
}

VerificationResult UfdiAttackModel::verify(const smt::Budget& budget) {
  // No candidate countermeasures: all sb_j / szv_m assumed off.
  return run(secured_assumptions({}, {}), budget);
}

VerificationResult UfdiAttackModel::verify_with_assumptions(
    const std::vector<smt::TermRef>& extra, const smt::Budget& budget) {
  // The cube rides after the secured-set baseline: assumptions are decided
  // in order, so the secured literals pin the countermeasure state first
  // and the cube then carves the remaining search space.
  std::vector<TermRef> assumptions = secured_assumptions({}, {});
  assumptions.insert(assumptions.end(), extra.begin(), extra.end());
  return run(assumptions, budget);
}

std::vector<smt::TermRef> UfdiAttackModel::cube_candidate_terms() const {
  std::vector<TermRef> out;
  out.reserve(cb_.size() + topology_vars_.size());
  for (TermRef t : cb_) {
    if (t.valid()) out.push_back(t);
  }
  for (TermRef t : topology_vars_) out.push_back(t);
  return out;
}

VerificationResult UfdiAttackModel::verify_with_secured_measurements(
    const std::vector<MeasId>& securedMeasurements,
    const smt::Budget& budget) {
  for (MeasId m : securedMeasurements) {
    PSSE_CHECK(m >= 0 && m < plan_.num_potential(),
               "verify_with_secured_measurements: id out of range");
    PSSE_CHECK(szv_[static_cast<std::size_t>(m)].valid(),
               "verify_with_secured_measurements: measurement is untaken, "
               "inaccessible, or already statically secured");
  }
  return run(secured_assumptions({}, securedMeasurements), budget);
}

VerificationResult UfdiAttackModel::verify_delta(const ScenarioDelta& delta,
                                                 const smt::Budget& budget) {
  PSSE_CHECK(mode_ == EncodeMode::kBase,
             "verify_delta: model was not constructed in EncodeMode::kBase");
  for (BusId t : delta.target_states) {
    PSSE_CHECK(t >= 0 && t < grid_.num_buses(),
               "verify_delta: target state out of range");
    PSSE_CHECK(t != spec_.reference_bus,
               "verify_delta: the reference state cannot be attacked");
  }
  for (auto [a, bb] : delta.distinct_changes) {
    PSSE_CHECK(a >= 0 && a < grid_.num_buses() && bb >= 0 &&
                   bb < grid_.num_buses(),
               "verify_delta: distinct-change bus out of range");
  }
  // The delta lives in its own push frame: pop() retracts its constraints
  // but keeps the learnt-clause database (clauses tagged at or below the
  // base frame survive — DESIGN.md §6e), which is what makes the next
  // delta of the family start warm.
  solver_.push();
  VerificationResult out;
  try {
    assert_delta(delta);
    out = run(
        secured_assumptions(delta.secured_buses, delta.secured_measurements),
        budget);
  } catch (...) {
    solver_.pop();
    throw;
  }
  solver_.pop();
  return out;
}

std::vector<grid::MeasId> UfdiAttackModel::attackable_measurements() const {
  std::vector<MeasId> out;
  for (MeasId m = 0; m < plan_.num_potential(); ++m) {
    if (szv_[static_cast<std::size_t>(m)].valid()) out.push_back(m);
  }
  return out;
}

VerificationResult UfdiAttackModel::verify_with_secured_buses(
    const std::vector<BusId>& securedBuses, const smt::Budget& budget) {
  return run(secured_assumptions(securedBuses, {}), budget);
}

Rational UfdiAttackModel::line_total_delta(LineId i) const {
  const LinExpr& e = tot_[static_cast<std::size_t>(i)];
  Rational v = e.constant();
  for (const auto& [var, coeff] : e.terms()) {
    v += solver_.real_value(var) * coeff;
  }
  return v;
}

AttackVector UfdiAttackModel::extract_model() const {
  AttackVector out;
  const int b = grid_.num_buses();
  const int l = grid_.num_lines();
  out.delta_theta.resize(static_cast<std::size_t>(b));
  for (BusId j = 0; j < b; ++j) {
    out.delta_theta[static_cast<std::size_t>(j)] =
        solver_.real_value(dtheta_[static_cast<std::size_t>(j)]);
  }
  out.delta_z.assign(static_cast<std::size_t>(plan_.num_potential()),
                     Rational(0));
  std::vector<bool> busTouched(static_cast<std::size_t>(b), false);
  for (MeasId m = 0; m < plan_.num_potential(); ++m) {
    TermRef cz = cz_[static_cast<std::size_t>(m)];
    if (!cz.valid() || !solver_.bool_value(cz)) continue;
    out.altered_measurements.push_back(m);
    busTouched[static_cast<std::size_t>(plan_.residence_bus(m, grid_))] =
        true;
    grid::MeasInfo info = plan_.decode(m);
    switch (info.type) {
      case grid::MeasType::ForwardFlow:
        out.delta_z[static_cast<std::size_t>(m)] =
            line_total_delta(info.line);
        break;
      case grid::MeasType::BackwardFlow:
        out.delta_z[static_cast<std::size_t>(m)] =
            -line_total_delta(info.line);
        break;
      case grid::MeasType::Injection: {
        const LinExpr& e = dpb_[static_cast<std::size_t>(info.bus)];
        Rational v = e.constant();
        for (const auto& [var, coeff] : e.terms()) {
          v += solver_.real_value(var) * coeff;
        }
        out.delta_z[static_cast<std::size_t>(m)] = v;
        break;
      }
    }
  }
  for (BusId j = 0; j < b; ++j) {
    if (busTouched[static_cast<std::size_t>(j)]) {
      out.compromised_buses.push_back(j);
    }
  }
  for (LineId i = 0; i < l; ++i) {
    if (el_[static_cast<std::size_t>(i)].valid() &&
        solver_.bool_value(el_[static_cast<std::size_t>(i)])) {
      out.excluded_lines.push_back(i);
    }
    if (il_[static_cast<std::size_t>(i)].valid() &&
        solver_.bool_value(il_[static_cast<std::size_t>(i)])) {
      out.included_lines.push_back(i);
    }
  }
  return out;
}

}  // namespace psse::core
