#include "core/baseline_defense.h"

#include <numeric>

namespace psse::core {

namespace {

// Union-find over buses.
struct Dsu {
  std::vector<int> parent;
  explicit Dsu(int n) : parent(static_cast<std::size_t>(n)) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  int find(int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  }
  bool unite(int a, int b) {
    a = find(a);
    b = find(b);
    if (a == b) return false;
    parent[static_cast<std::size_t>(a)] = b;
    return true;
  }
};

// The taken flow measurements that securing `bus` pins: the near-end meter
// of each incident in-service line.
std::vector<grid::LineId> pinned_lines(const grid::Grid& grid,
                                       const grid::MeasurementPlan& plan,
                                       grid::BusId bus) {
  std::vector<grid::LineId> out;
  for (grid::LineId i : grid.lines_at(bus)) {
    const grid::Line& l = grid.line(i);
    if (!l.in_service) continue;
    grid::MeasId near =
        l.from == bus ? plan.forward_flow(i) : plan.backward_flow(i);
    if (plan.taken(near)) out.push_back(i);
  }
  return out;
}

}  // namespace

GreedyDefenseResult greedy_basic_measurement_defense(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const std::vector<grid::BusId>& mustSecure) {
  GreedyDefenseResult out;
  Dsu dsu(grid.num_buses());
  int components = grid.num_buses();
  std::vector<bool> chosen(static_cast<std::size_t>(grid.num_buses()), false);

  // Already-secured measurements pin their edges for free.
  for (grid::LineId i = 0; i < grid.num_lines(); ++i) {
    const grid::Line& l = grid.line(i);
    if (!l.in_service) continue;
    bool pinned = (plan.taken(plan.forward_flow(i)) &&
                   plan.secured(plan.forward_flow(i))) ||
                  (plan.taken(plan.backward_flow(i)) &&
                   plan.secured(plan.backward_flow(i)));
    if (pinned && dsu.unite(l.from, l.to)) --components;
  }

  auto secure = [&](grid::BusId bus) {
    if (chosen[static_cast<std::size_t>(bus)]) return;
    chosen[static_cast<std::size_t>(bus)] = true;
    out.secured_buses.push_back(bus);
    for (grid::LineId i : pinned_lines(grid, plan, bus)) {
      const grid::Line& l = grid.line(i);
      if (dsu.unite(l.from, l.to)) --components;
    }
  };

  for (grid::BusId b : mustSecure) secure(b);

  while (components > 1) {
    // Pick the bus joining the most components.
    grid::BusId best = -1;
    int bestGain = 0;
    for (grid::BusId b = 0; b < grid.num_buses(); ++b) {
      if (chosen[static_cast<std::size_t>(b)]) continue;
      // Count distinct component merges this bus would cause.
      Dsu trial = dsu;
      int gain = 0;
      for (grid::LineId i : pinned_lines(grid, plan, b)) {
        const grid::Line& l = grid.line(i);
        if (trial.unite(l.from, l.to)) ++gain;
      }
      if (gain > bestGain) {
        bestGain = gain;
        best = b;
      }
    }
    if (best < 0) break;  // flow coverage exhausted; cannot complete
    secure(best);
  }
  out.complete = components == 1;
  return out;
}

}  // namespace psse::core
