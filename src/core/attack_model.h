// The UFDI attack verification model (paper Section III).
//
// Encodes the feasibility of an undetected false-data-injection attack —
// including topology poisoning — as an SMT problem over booleans (which
// measurements/buses/lines are touched) and exact reals (state and
// measurement deltas). Solving answers the operator's question: *can an
// adversary with these attributes corrupt these states stealthily?* SAT
// yields the attack vector; UNSAT certifies immunity.
//
// Variable glossary (paper Table I -> here):
//   cx_j  state j corrupted          <-> delta theta_j != 0
//   cz_i  measurement i altered      <-> its delta != 0 (taken meas only)
//   cb_j  substation j compromised   (residence closure of cz)
//   el_i / il_i  exclusion/inclusion topology attack on line i
//   sb_j  bus j secured — *assumption* variables so the synthesis loop can
//         evaluate candidate architectures without re-encoding (Eq. (28))
//
// Encoding of the reconstructed flow semantics (DESIGN.md §4):
//   in-service, not excludable:  tot_i = ld_i (dth_from - dth_to)
//   in-service, excludable:      el_i  -> tot_i = te_i, te_i != 0
//                                ~el_i -> tot_i = ld_i (dth_from - dth_to)
//   open, includable:            il_i  -> tot_i = te_i, te_i != 0
//                                ~il_i -> tot_i = 0
//   injection delta at bus j:    dPB_j = sum(in) tot_i - sum(out) tot_i
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <vector>

#include "core/attack_spec.h"
#include "core/attack_vector.h"
#include "grid/grid.h"
#include "grid/measurement.h"
#include "obs/trace.h"
#include "smt/solver.h"

namespace psse::core {

struct VerificationResult {
  smt::SolveResult result = smt::SolveResult::Unknown;
  std::optional<AttackVector> attack;  // present iff Sat
  double seconds = 0.0;
  /// Effort of *this* verify call (snapshot/delta over the underlying
  /// solver): counters cover exactly this solve, gauges describe the
  /// current model size. Summing per-call counters over a session equals
  /// the solver's lifetime totals.
  smt::SolverStats stats;
  /// Per-phase wall time of this call; all-zero unless tracing (or
  /// phase timing) is enabled on the model.
  obs::PhaseTimes phase_times;

  [[nodiscard]] bool feasible() const {
    return result == smt::SolveResult::Sat;
  }
};

/// How much of the spec the constructor encodes.
enum class EncodeMode {
  /// Everything: structural constraints plus the spec's resource limits,
  /// attack goal, and magnitude constraints. One-shot models.
  kFull,
  /// Structure only (flow semantics, knowledge, accessibility, residence
  /// closure). The ScenarioDelta axes — resource caps, goal, magnitudes,
  /// dynamically secured sets — are supplied per verify_delta() call under
  /// a push frame, so one warm solver serves a whole scenario family.
  kBase,
};

class UfdiAttackModel {
 public:
  /// Builds the constraint system once; verify calls are incremental. In
  /// kBase mode the ScenarioDelta axes of `spec` are ignored (the base of
  /// `spec` is encoded — pass `strip_delta(spec)` to make that explicit)
  /// and queries go through verify_delta().
  UfdiAttackModel(const grid::Grid& grid, const grid::MeasurementPlan& plan,
                  AttackSpec spec, EncodeMode mode = EncodeMode::kFull);
  UfdiAttackModel(const UfdiAttackModel&) = delete;
  UfdiAttackModel& operator=(const UfdiAttackModel&) = delete;

  /// Fresh model over the same (grid, plan, spec): re-encodes the
  /// constraint system into a new solver with pristine search state. The
  /// clone aliases this model's grid reference, so the grid must outlive
  /// it. Clones are what the parallel runtime hands to worker threads —
  /// solver instances are not thread-safe, but independent clones solving
  /// the same question concurrently are.
  [[nodiscard]] std::unique_ptr<UfdiAttackModel> clone() const {
    return std::make_unique<UfdiAttackModel>(grid_, plan_, spec_, mode_);
  }

  /// Reconfigures the underlying CDCL heuristics (portfolio
  /// diversification). Affects subsequent verify calls only.
  void set_solver_options(const smt::SatOptions& options) {
    solver_.set_sat_options(options);
  }

  /// Attaches structured tracing: every subsequent verify call emits one
  /// "solve" event (verdict, per-call stats, phase times) to the sink and
  /// enables per-phase timing on the solver. A default-constructed Config
  /// detaches. The sink must outlive the model's traced calls.
  void set_trace(const obs::Config& trace) {
    trace_ = trace;
    solver_.enable_phase_timing(trace.enabled());
  }
  [[nodiscard]] const obs::Config& trace() const { return trace_; }

  /// Reconfigures the theory solver (pivot rule, float filter). Affects
  /// subsequent verify calls only — the ci.sh cross-check runs the same
  /// scenarios with the filter on and off through this knob.
  void set_simplex_options(const smt::SimplexOptions& options) {
    solver_.set_simplex_options(options);
  }
  [[nodiscard]] const smt::SimplexOptions& simplex_options() const {
    return solver_.simplex_options();
  }

  /// Enables per-phase wall-time accounting independently of tracing, so
  /// bench --json rows can report the encode/propagate/simplex/tprop split
  /// without a trace sink attached. set_trace also toggles this; call this
  /// after set_trace to keep timing on with tracing off.
  void enable_phase_timing(bool on) { solver_.enable_phase_timing(on); }

  /// Is the specified attack feasible with no extra countermeasures?
  [[nodiscard]] VerificationResult verify(const smt::Budget& budget = {});

  /// One query of a scenario family against a kBase-mode model: asserts
  /// the delta's resource caps, goal, and magnitude constraints under a
  /// push frame, solves with the secured sets as assumptions, and pops.
  /// The verdict (and witness feasibility) matches a fresh kFull encode of
  /// the combined spec, but a warm session skips re-encoding and keeps the
  /// learnt-clause database across pops, so running a family of related
  /// deltas on one model is far cheaper than one cold solve each (the
  /// analytics service's whole reason to exist — DESIGN.md §6f).
  [[nodiscard]] VerificationResult verify_delta(const ScenarioDelta& delta,
                                                const smt::Budget& budget = {});

  /// Is it feasible when additionally the given buses are secured (all
  /// their resident measurements integrity-protected, Eq. (28))? This is
  /// the inner query of Algorithm 1, answered via solver assumptions.
  [[nodiscard]] VerificationResult verify_with_secured_buses(
      const std::vector<grid::BusId>& securedBuses,
      const smt::Budget& budget = {});

  /// Measurement-granular variant (Section IV-A: "similar mechanism can be
  /// used for synthesizing security architecture with respect to
  /// measurements only"): is the attack feasible when the given individual
  /// measurements are additionally secured?
  [[nodiscard]] VerificationResult verify_with_secured_measurements(
      const std::vector<grid::MeasId>& securedMeasurements,
      const smt::Budget& budget = {});

  /// Measurements an adversary could conceivably need to alter (taken,
  /// accessible, not statically secured) — the candidate universe for
  /// measurement-level synthesis.
  [[nodiscard]] std::vector<grid::MeasId> attackable_measurements() const;

  /// Boolean terms worth splitting a hard instance on: the per-bus
  /// substation-compromise indicators cb_j, then the el/il topology-attack
  /// literals. These are the high-fanout structural decisions (a cb_j
  /// polarity decides a whole substation's worth of cz freedom via the
  /// residence closure), so cube-and-conquer cubes on them
  /// (runtime::split_cubes).
  [[nodiscard]] std::vector<smt::TermRef> cube_candidate_terms() const;

  /// BCP-only lookahead on a candidate term (smt::Solver::probe_term):
  /// forced-literal count, or -1 when asserting it conflicts at level 0.
  /// Perturbs the solver's saved phases — call on a dedicated clone.
  [[nodiscard]] int probe_term(smt::TermRef t) {
    return solver_.probe_term(t);
  }

  /// Branching activity of a candidate term's SAT variable (see
  /// smt::Solver::term_activity). After a bounded burn-in verify on a
  /// clone, ranking candidates by activity puts the split on the
  /// variables the refutation is actually fighting over instead of an
  /// arbitrary construction-order prefix.
  [[nodiscard]] double term_activity(smt::TermRef t) {
    return solver_.term_activity(t);
  }

  /// verify() under extra assumption terms (a cube from split_cubes): the
  /// statically-secured baseline assumptions plus `extra`, solved without
  /// touching the assertion database, so one clone conquers many cubes
  /// back to back while keeping its learnt clauses warm.
  [[nodiscard]] VerificationResult verify_with_assumptions(
      const std::vector<smt::TermRef>& extra, const smt::Budget& budget = {});

  [[nodiscard]] const grid::Grid& grid() const { return grid_; }
  [[nodiscard]] const grid::MeasurementPlan& plan() const { return plan_; }
  [[nodiscard]] const AttackSpec& spec() const { return spec_; }
  /// Statistics of the underlying SMT solver (Table IV accounting).
  [[nodiscard]] smt::SolverStats solver_stats() const {
    return solver_.stats();
  }

 private:
  void encode();
  /// Asserts a delta's resource/goal/magnitude constraints at the solver's
  /// current assertion level (level 0 for kFull construction, a push frame
  /// for verify_delta).
  void assert_delta(const ScenarioDelta& delta);
  /// Assumption literals for the dynamically secured sets (every sb_j and
  /// valid szv_m appears, positively iff listed).
  [[nodiscard]] std::vector<smt::TermRef> secured_assumptions(
      const std::vector<grid::BusId>& securedBuses,
      const std::vector<grid::MeasId>& securedMeasurements) const;
  [[nodiscard]] VerificationResult run(
      const std::vector<smt::TermRef>& assumptions, const smt::Budget& budget);
  [[nodiscard]] AttackVector extract_model() const;
  [[nodiscard]] smt::Rational line_total_delta(grid::LineId i) const;

  const grid::Grid& grid_;
  grid::MeasurementPlan plan_;
  AttackSpec spec_;
  EncodeMode mode_;
  smt::Solver solver_;
  obs::Config trace_;

  // Variable maps (invalid/unused entries are default-invalid).
  std::vector<smt::TermRef> cx_;                 // per bus
  std::vector<smt::TermRef> cz_;                 // per potential measurement
  std::vector<smt::TermRef> cb_;                 // per bus
  std::vector<smt::TermRef> sb_;                 // per bus (assumptions)
  std::vector<smt::TermRef> szv_;                // per meas (assumptions)
  std::vector<smt::TermRef> el_;                 // per line
  std::vector<smt::TermRef> il_;                 // per line
  std::vector<smt::TVar> dtheta_;                // per bus
  std::vector<smt::TVar> te_;                    // per line (kNoTVar if n/a)
  std::vector<smt::LinExpr> tot_;                // per line: total flow delta
  std::vector<smt::LinExpr> dpb_;                // per bus: injection delta
  std::vector<bool> tot_is_var_;                 // per line

  // Constraint-bearing variable lists retained for assert_delta: the valid
  // cz terms (T_CZ cardinality) and the el/il attack variables (topology
  // cap).
  std::vector<smt::TermRef> cz_valid_;
  std::vector<smt::TermRef> topology_vars_;
};

}  // namespace psse::core
