// Scenario files: the paper's text "input file" interface (Section III-H).
//
// A scenario bundles the grid, the measurement configuration (Table III
// style), the attack attributes, and optional synthesis options, parsed
// from a line-oriented format. 1-based ids throughout, matching the paper's
// tables. Example:
//
//     # IEEE 14-bus, attack objective 2 with topology poisoning
//     case ieee14
//     untaken 5 10 14 19 22 27 30 35 43 52
//     secured-measurements 1 2 6 15 25 32 41
//     unknown-lines 3 7 17
//     target-only 12
//     topology-attacks on
//     reference-bus 1
//     max-secured-buses 4
//
// Custom grids replace `case` with `buses N` plus `line F T ADMITTANCE
// [open] [switchable] [status-secured]` entries.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>

#include "core/attack_spec.h"
#include "core/synthesis.h"
#include "grid/grid.h"
#include "grid/measurement.h"

namespace psse::core {

class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Scenario {
  std::string case_name;  // empty for inline grids
  grid::Grid grid{1};
  grid::MeasurementPlan plan{0, 1};
  AttackSpec spec;
  SynthesisOptions synthesis;

  /// Parses a scenario from a stream; `what` names it for error messages.
  static Scenario parse(std::istream& in, const std::string& what = "<in>");
  /// Loads a scenario file. Throws ScenarioError on I/O or syntax errors.
  static Scenario load(const std::string& path);

  /// Serialises back to the file format (round-trips through parse()).
  [[nodiscard]] std::string to_string() const;
};

/// Bumped whenever the fingerprint recipe changes, so persisted fingerprints
/// (result memos, trace joins) can never silently collide across versions.
inline constexpr std::uint32_t kScenarioFingerprintVersion = 1;

/// Canonical 64-bit hash of a verification problem: grid topology and
/// admittances, the measurement configuration (taken/secured/accessible
/// bits), and every AttackSpec attribute. Bus injections stay out — the
/// UFDI problem reasons about measurement *deltas*, so the operating
/// point does not change any verdict. Stable across processes and
/// order-independent over set-like fields (target states, distinct-change
/// pairs, secured/untaken id lists reach it positionally), so two
/// scenarios describing the same problem in different directive orders
/// fingerprint identically. Version-tagged via
/// kScenarioFingerprintVersion. Not cryptographic — it keys caches and
/// joins trace events across tools, nothing adversarial.
[[nodiscard]] std::uint64_t scenario_fingerprint(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const AttackSpec& spec);
[[nodiscard]] std::uint64_t scenario_fingerprint(const Scenario& sc);

/// Order-independent hash of a ScenarioDelta (the sweep axes), combined
/// with a family fingerprint to key result memos:
///   memo key = family_fingerprint ^ mix(delta_fingerprint).
[[nodiscard]] std::uint64_t delta_fingerprint(const ScenarioDelta& delta);

/// The session-cache key: the fingerprint of the *base* problem — the
/// grid, the plan with its secured bits cleared (dynamic securing is a
/// delta axis), and strip_delta(spec). Scenarios differing only in
/// ScenarioDelta axes share a family, and therefore a warm solver session.
[[nodiscard]] std::uint64_t family_fingerprint(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const AttackSpec& spec);

/// Combines a family fingerprint with a delta fingerprint into the full
/// scenario key used by the result memo and the service trace events.
[[nodiscard]] std::uint64_t combine_fingerprints(std::uint64_t family,
                                                 std::uint64_t delta);

}  // namespace psse::core
