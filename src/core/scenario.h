// Scenario files: the paper's text "input file" interface (Section III-H).
//
// A scenario bundles the grid, the measurement configuration (Table III
// style), the attack attributes, and optional synthesis options, parsed
// from a line-oriented format. 1-based ids throughout, matching the paper's
// tables. Example:
//
//     # IEEE 14-bus, attack objective 2 with topology poisoning
//     case ieee14
//     untaken 5 10 14 19 22 27 30 35 43 52
//     secured-measurements 1 2 6 15 25 32 41
//     unknown-lines 3 7 17
//     target-only 12
//     topology-attacks on
//     reference-bus 1
//     max-secured-buses 4
//
// Custom grids replace `case` with `buses N` plus `line F T ADMITTANCE
// [open] [switchable] [status-secured]` entries.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "core/attack_spec.h"
#include "core/synthesis.h"
#include "grid/grid.h"
#include "grid/measurement.h"

namespace psse::core {

class ScenarioError : public std::runtime_error {
 public:
  explicit ScenarioError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Scenario {
  std::string case_name;  // empty for inline grids
  grid::Grid grid{1};
  grid::MeasurementPlan plan{0, 1};
  AttackSpec spec;
  SynthesisOptions synthesis;

  /// Parses a scenario from a stream; `what` names it for error messages.
  static Scenario parse(std::istream& in, const std::string& what = "<in>");
  /// Loads a scenario file. Throws ScenarioError on I/O or syntax errors.
  static Scenario load(const std::string& path);

  /// Serialises back to the file format (round-trips through parse()).
  [[nodiscard]] std::string to_string() const;
};

}  // namespace psse::core
