// LP-relaxation screening of UFDI attack feasibility (after Chu et al.,
// "Evaluating Power System Vulnerability to False Data Injection Attacks
// via Scalable Optimization", arXiv:1605.06557).
//
// The full SMT encoding (core/attack_model.cpp) decides attack existence
// exactly but pays a CDCL(T) search per scenario. Most of that search is
// spent on the *combinatorial* attributes — resource caps T_CZ/T_CB,
// topology-change budgets, magnitude bounds. Dropping them leaves a pure
// linear system over the state-change variables dtheta_j:
//
//   * every taken measurement the adversary cannot alter pins its delta
//     expression to zero (secured / inaccessible / knowledge-gated meters);
//   * the reference angle change is zero;
//   * "attack only the targets" pins every non-target state to zero;
//   * attackable topology lines contribute a free flow variable (the SMT
//     model lets an excluded/included line's total flow float).
//
// Every SMT-feasible attack satisfies these equalities, so the solution
// subspace V of the LP *contains* the projection of every attack. The
// attack goals are nonzero-ness functionals: target t needs dtheta_t != 0,
// a distinct-change pair needs dtheta_a - dtheta_b != 0. Because the
// system is homogeneous, a functional f is nonzero somewhere on V iff
// {V, f = 1} is feasible — one simplex feasibility check each. If any
// goal functional vanishes identically on V, no attack exists: the
// scenario is UNSAT, certified without touching the SMT solver. The
// converse does NOT hold (the dropped caps may still bite), so a feasible
// relaxation only yields a hint, never a verdict — that asymmetry is the
// conservativeness contract: verdicts with screening are bit-identical to
// unscreened runs, screening can only skip work on the side it proves.
//
// Proving a functional pinned runs in two phases. A *contraction* phase
// exploits the grid structure of the rows: a pinned flow meter's row
// y(dtheta_f - dtheta_t) = 0 merges its endpoints, and more generally any
// pinned row that reduces to <= 2 angle classes either zero-pins a class
// or merges two at a fixed ratio (weighted union-find, exact rational
// ratios, iterated to fixpoint). On well-secured scenarios this alone
// pins the goal — in microseconds, because no tableau pivoting happens.
// Only goals the contraction cannot decide fall through to the
// exact-rational smt::Simplex (float-first filtered, exactly certified),
// under a wall-clock budget: dense exact pivoting can blow up on
// Laplacian-like pinned systems, and an expired budget simply downgrades
// the answer to kFeasible, which claims nothing. Either way an Infeasible
// answer is a proof, not a numeric guess. One LpScreen instance serves a
// whole scenario *family*: the equality rows for statically unalterable
// meters are asserted once at construction, per-query secured sets and
// goals are trail-marked and popped, mirroring the warm solver sessions
// of the analytics service.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/attack_spec.h"
#include "grid/grid.h"
#include "grid/measurement.h"
#include "smt/simplex.h"

namespace psse::screen {

enum class ScreenVerdict : std::uint8_t {
  /// Provably no attack: some goal functional is identically zero on the
  /// relaxation subspace. Exact — safe to report Unsat without SMT.
  kInfeasible,
  /// The relaxation admits every goal; the SMT search is still needed for
  /// the dropped resource/magnitude constraints.
  kFeasible,
  /// The screen has nothing to prove (no targets, no distinctness, no
  /// any-state demand) — run SMT as usual.
  kInconclusive,
};

[[nodiscard]] const char* to_cstring(ScreenVerdict v);

struct ScreenResult {
  ScreenVerdict verdict = ScreenVerdict::kInconclusive;
  double seconds = 0.0;
  /// Goal functionals tested (targets + distinct pairs, or the per-state
  /// scan of the any-state demand).
  int functionals_checked = 0;
  /// kInfeasible only: human-readable name of the goal that vanished.
  std::string pinned;
  /// kFeasible only: number of meter deltas nonzero in the relaxation's
  /// witness — a (heuristic) lower-bound hint for T_CZ-style sweeps.
  int hint_altered = 0;

  [[nodiscard]] bool decided() const {
    return verdict == ScreenVerdict::kInfeasible;
  }
};

class LpScreen {
 public:
  /// Builds the family-level relaxation for `base` (a strip_delta()-style
  /// spec: targets and resource caps live in the per-query delta). The
  /// grid/plan/spec are copied; the screen owns everything it needs.
  LpScreen(grid::Grid grid, grid::MeasurementPlan plan,
           core::AttackSpec base);

  /// Screens one query. Not thread-safe — callers serialize per instance.
  [[nodiscard]] ScreenResult screen(const core::ScenarioDelta& delta);

  /// Wall-clock ceiling for the simplex fallback of one screen() call
  /// (the contraction phase is never bounded — it is microseconds). An
  /// expired budget returns kFeasible, i.e. "no claim"; 0 = unlimited.
  void set_max_seconds(double s) { max_seconds_ = s; }

  [[nodiscard]] std::uint64_t num_screens() const { return screens_; }
  [[nodiscard]] std::uint64_t num_infeasible() const { return infeasible_; }
  /// Underlying tableau, for diagnostics (pivot counters in tests/benches).
  [[nodiscard]] const smt::Simplex& simplex() const { return simplex_; }

 private:
  struct MeterRow {
    grid::MeasId id = -1;
    smt::TVar slack = smt::kNoTVar;
    grid::BusId residence = -1;
    /// Index into pin_rows_ when the row is expressible over angles alone
    /// (no free topology-flow variable); -1 otherwise.
    int pin_row = -1;
  };
  /// One pinnable row as angle terms (bus, coefficient), aggregated — the
  /// contraction phase's view of "this delta expression equals zero".
  struct PinTerms {
    std::vector<std::pair<grid::BusId, smt::Rational>> terms;
  };

  grid::Grid grid_;
  grid::MeasurementPlan plan_;
  core::AttackSpec base_;
  smt::Simplex simplex_;
  std::vector<smt::TVar> theta_;       // per-bus state-change variable
  std::vector<MeterRow> dynamic_;      // rows pinned per-query by secured sets
  std::vector<smt::TVar> meter_slacks_;  // all meter rows, for the hint
  std::vector<PinTerms> pin_rows_;     // angle-only rows, by index
  std::vector<int> static_pins_;       // pin_rows_ pinned in every query
  double max_seconds_ = 0.25;
  std::uint64_t screens_ = 0;
  std::uint64_t infeasible_ = 0;
};

}  // namespace psse::screen
