// Graph-based defense seeding (Bi & Zhang, "Graphical Methods for Defense
// Against False-data Injection Attacks", arXiv:1304.4151).
//
// Countermeasure synthesis (Algorithm 1) enumerates candidate secured-bus
// sets from a SAT model, which starts blind: early candidates carry no
// information about *where* attacks actually live. But the attack surface
// has graph structure — an attack on target t must alter measurements in a
// neighbourhood of t, and every altered measurement resides at a bus. A
// vertex set that covers the measurement boundary of the targets therefore
// blocks whole families of attacks at once. This module turns that
// observation into candidate generators over the measurement-bus incidence
// graph:
//
//   * target-cut  — the residence buses of every measurement that can sense
//                   a target's angle (the measurement cut isolating it);
//   * greedy max-coverage — buses covering the most attackable
//                   measurements (the classic hitting-set greedy);
//   * distance-weighted coverage — coverage discounted by BFS distance
//                   from the target set, biasing towards the region attacks
//                   must pass through.
//
// The candidates are *seeds*, not answers: core::synthesize verifies each
// one exactly before trusting it, and failed seeds feed the same blocking
// clauses as model-enumerated candidates, so seeding never changes the
// outcome status — only how fast the loop converges (the `cegis_iter`
// journal measures it).
#pragma once

#include <cstddef>
#include <vector>

#include "grid/grid.h"
#include "grid/measurement.h"

namespace psse::screen {

struct SeedOptions {
  /// T_SB — maximum buses per candidate. <= 0 yields no candidates.
  int max_secured_buses = 0;
  /// Operator constraints (Eq. (29)): every candidate contains all of
  /// `must_secure` and none of `cannot_secure`.
  std::vector<grid::BusId> must_secure;
  std::vector<grid::BusId> cannot_secure;
  /// Honour the Eq. (30) search-space reduction: never pick both endpoints
  /// of a line whose near-end flow measurement is taken, so seeds stay
  /// inside the same candidate space as the SAT model's enumeration.
  bool adjacency_pruning = true;
  /// Attack targets the architecture must defend (may be empty — then only
  /// the global coverage generators run).
  std::vector<grid::BusId> target_states;
  /// Cap on the number of distinct candidates returned.
  std::size_t max_candidates = 6;
};

/// Candidate secured-bus sets, most promising first, each sorted by bus id.
/// Deduplicated; every candidate satisfies the budget / must / cannot /
/// adjacency constraints of `opts`. Returns an empty vector when the
/// constraints are unsatisfiable at the seeding level (e.g. must_secure
/// exceeds the budget) — synthesis then proceeds exactly as without seeds.
[[nodiscard]] std::vector<std::vector<grid::BusId>> seed_candidates(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const SeedOptions& opts);

}  // namespace psse::screen
