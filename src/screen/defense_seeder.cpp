#include "screen/defense_seeder.h"

#include <algorithm>
#include <deque>
#include <set>

namespace psse::screen {

namespace {

using grid::BusId;
using grid::LineId;
using grid::MeasId;

/// One greedy build shared by every generator: starting from `must`, add
/// the admissible bus with the best score until the budget is full or no
/// bus scores positive. `score(bus, coveredMeasurements)` returns <= 0 to
/// reject; ties resolve by lower bus id so generation is deterministic.
template <typename Score>
std::vector<BusId> greedy_build(const grid::Grid& g,
                                const grid::MeasurementPlan& plan,
                                const SeedOptions& opts,
                                const std::vector<bool>& admissible,
                                const std::vector<std::vector<MeasId>>& covers,
                                Score&& score) {
  const int b = g.num_buses();
  std::vector<BusId> out = opts.must_secure;
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  if (static_cast<int>(out.size()) > opts.max_secured_buses) return {};

  std::vector<bool> picked(static_cast<std::size_t>(b), false);
  std::vector<bool> covered(
      static_cast<std::size_t>(plan.num_potential()), false);
  for (BusId j : out) {
    picked[static_cast<std::size_t>(j)] = true;
    for (MeasId m : covers[static_cast<std::size_t>(j)]) {
      covered[static_cast<std::size_t>(m)] = true;
    }
  }

  // Eq. (30) exclusions relative to the picked set: endpoints across a
  // flow-measured line.
  auto conflicts = [&](BusId j) {
    if (!opts.adjacency_pruning) return false;
    for (LineId i : g.lines_at(j)) {
      const grid::Line& line = g.line(i);
      const BusId other = line.from == j ? line.to : line.from;
      if (!picked[static_cast<std::size_t>(other)]) continue;
      if (plan.taken(plan.forward_flow(i)) ||
          plan.taken(plan.backward_flow(i))) {
        return true;
      }
    }
    return false;
  };

  while (static_cast<int>(out.size()) < opts.max_secured_buses) {
    BusId best = -1;
    double bestScore = 0.0;
    for (BusId j = 0; j < b; ++j) {
      if (picked[static_cast<std::size_t>(j)] ||
          !admissible[static_cast<std::size_t>(j)] || conflicts(j)) {
        continue;
      }
      const double s = score(j, covered);
      if (s > bestScore) {
        bestScore = s;
        best = j;
      }
    }
    if (best < 0) break;
    picked[static_cast<std::size_t>(best)] = true;
    out.push_back(best);
    for (MeasId m : covers[static_cast<std::size_t>(best)]) {
      covered[static_cast<std::size_t>(m)] = true;
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::vector<std::vector<BusId>> seed_candidates(
    const grid::Grid& g, const grid::MeasurementPlan& plan,
    const SeedOptions& opts) {
  const int b = g.num_buses();
  if (opts.max_secured_buses <= 0 || b == 0) return {};
  if (static_cast<int>(opts.must_secure.size()) > opts.max_secured_buses) {
    return {};
  }

  std::vector<bool> admissible(static_cast<std::size_t>(b), true);
  for (BusId j : opts.cannot_secure) {
    admissible[static_cast<std::size_t>(j)] = false;
  }
  for (BusId j : opts.must_secure) {
    if (!admissible[static_cast<std::size_t>(j)]) return {};
  }

  // covers[j] — the attackable measurements (taken, adversary-accessible,
  // not already secured) that securing bus j removes from the attack
  // surface. This is the measurement-bus incidence graph restricted to
  // what an attack could actually touch.
  std::vector<std::vector<MeasId>> covers(static_cast<std::size_t>(b));
  for (MeasId m = 0; m < plan.num_potential(); ++m) {
    if (!plan.taken(m) || !plan.accessible(m) || plan.secured(m)) continue;
    covers[static_cast<std::size_t>(plan.residence_bus(m, g))].push_back(m);
  }

  // BFS hop distance from the target set over in-service lines; buses in
  // unreachable islands get a large sentinel (their meters cannot sense a
  // target under the DC model, so they are poor seeds).
  constexpr int kFar = 1 << 20;
  std::vector<int> dist(static_cast<std::size_t>(b), kFar);
  if (!opts.target_states.empty()) {
    std::deque<BusId> queue;
    for (BusId t : opts.target_states) {
      if (t >= 0 && t < b && dist[static_cast<std::size_t>(t)] == kFar) {
        dist[static_cast<std::size_t>(t)] = 0;
        queue.push_back(t);
      }
    }
    while (!queue.empty()) {
      const BusId j = queue.front();
      queue.pop_front();
      for (LineId i : g.lines_at(j)) {
        const grid::Line& line = g.line(i);
        if (!line.in_service) continue;
        const BusId other = line.from == j ? line.to : line.from;
        if (dist[static_cast<std::size_t>(other)] == kFar) {
          dist[static_cast<std::size_t>(other)] =
              dist[static_cast<std::size_t>(j)] + 1;
          queue.push_back(other);
        }
      }
    }
  }

  auto fresh_coverage = [&](BusId j, const std::vector<bool>& covered) {
    double n = 0.0;
    for (MeasId m : covers[static_cast<std::size_t>(j)]) {
      if (!covered[static_cast<std::size_t>(m)]) n += 1.0;
    }
    return n;
  };

  std::vector<std::vector<BusId>> out;
  std::set<std::vector<BusId>> seen;
  auto add = [&](std::vector<BusId> cand) {
    if (cand.empty() || out.size() >= opts.max_candidates) return;
    if (seen.insert(cand).second) out.push_back(std::move(cand));
  };

  // 1. Target-cut: restrict to the measurement cut around the targets —
  // the targets themselves plus every bus hosting a meter that senses a
  // target's angle (flow meters of incident lines and neighbour
  // injections all reside within one hop).
  if (!opts.target_states.empty()) {
    add(greedy_build(g, plan, opts, admissible, covers,
                     [&](BusId j, const std::vector<bool>& covered) {
                       if (dist[static_cast<std::size_t>(j)] > 1) return 0.0;
                       return fresh_coverage(j, covered);
                     }));
    // Distance-weighted: same bias, but allowed to spill past the one-hop
    // cut once it is exhausted (or over-constrained by Eq. (30)).
    add(greedy_build(g, plan, opts, admissible, covers,
                     [&](BusId j, const std::vector<bool>& covered) {
                       const int d = dist[static_cast<std::size_t>(j)];
                       if (d >= kFar) return 0.0;
                       return fresh_coverage(j, covered) / (1.0 + d);
                     }));
  }

  // 2. Global greedy max-coverage of the attackable measurement set.
  add(greedy_build(g, plan, opts, admissible, covers,
                   [&](BusId j, const std::vector<bool>& covered) {
                     return fresh_coverage(j, covered);
                   }));

  // 3. Degree-flavoured variant: raw incidence (lines at the bus) breaks
  // coverage ties differently, yielding a structurally distinct seed on
  // meshed grids.
  add(greedy_build(g, plan, opts, admissible, covers,
                   [&](BusId j, const std::vector<bool>& covered) {
                     const double f = fresh_coverage(j, covered);
                     if (f <= 0.0) return 0.0;
                     return f + static_cast<double>(g.lines_at(j).size()) /
                                    (1.0 + static_cast<double>(b));
                   }));

  return out;
}

}  // namespace psse::screen
