#include "screen/lp_screen.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

#include "smt/budget.h"
#include "smt/common.h"

namespace psse::screen {

namespace {

using grid::BusId;
using grid::LineId;
using grid::MeasId;
using smt::DeltaRational;
using smt::LinExpr;
using smt::Lit;
using smt::Rational;
using smt::TVar;

/// Same quantisation as core/attack_model.cpp's to_rational: the screen's
/// equality rows must pin exactly the subspace the SMT encoding pins, or
/// the Infeasible side stops being a proof about the SMT problem.
Rational to_rational(double v) {
  return Rational(static_cast<std::int64_t>(std::llround(v * 1e6)), 1000000);
}

/// Angle-term view of one line / meter row for the contraction phase.
using AngleTerms = std::vector<std::pair<BusId, Rational>>;

/// Sorts by bus, sums duplicates, drops zero coefficients.
AngleTerms aggregate(AngleTerms t) {
  std::sort(t.begin(), t.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  AngleTerms out;
  for (auto& [bus, c] : t) {
    if (!out.empty() && out.back().first == bus) {
      out.back().second += c;
    } else {
      out.emplace_back(bus, std::move(c));
    }
  }
  out.erase(std::remove_if(out.begin(), out.end(),
                           [](const auto& p) { return p.second.is_zero(); }),
            out.end());
  return out;
}

}  // namespace

const char* to_cstring(ScreenVerdict v) {
  switch (v) {
    case ScreenVerdict::kInfeasible:
      return "infeasible";
    case ScreenVerdict::kFeasible:
      return "feasible";
    default:
      return "inconclusive";
  }
}

LpScreen::LpScreen(grid::Grid grid, grid::MeasurementPlan plan,
                   core::AttackSpec base)
    : grid_(std::move(grid)), plan_(std::move(plan)), base_(std::move(base)) {
  smt::SimplexOptions opts;
  opts.derive_bounds = false;  // nobody consumes implied bounds here
  simplex_.set_options(opts);

  const int b = grid_.num_buses();
  const int l = grid_.num_lines();
  theta_.reserve(static_cast<std::size_t>(b));
  for (BusId j = 0; j < b; ++j) {
    theta_.push_back(simplex_.new_var("dth" + std::to_string(j)));
  }
  // The reference angle change is pinned (attack_model asserts dtheta_ref
  // = 0 and ~cx_ref).
  const DeltaRational zero;
  const BusId ref = base_.reference_bus;
  bool ok = simplex_.assert_upper(theta_[static_cast<std::size_t>(ref)], zero,
                                  Lit()) &&
            simplex_.assert_lower(theta_[static_cast<std::size_t>(ref)], zero,
                                  Lit());
  PSSE_ASSERT(ok);

  // Per-line total-flow expressions, mirroring encode(): a line the
  // adversary can switch (exclude or include) has *free* total flow in
  // some SMT branch, so the relaxation gives it an unconstrained variable;
  // a fixed in-service line's flow is the state expression; a fixed open
  // line carries nothing.
  std::vector<LinExpr> tot(static_cast<std::size_t>(l));
  std::vector<AngleTerms> totTerms(static_cast<std::size_t>(l));
  std::vector<bool> excludable(static_cast<std::size_t>(l), false);
  std::vector<bool> attackable(static_cast<std::size_t>(l), false);
  for (LineId i = 0; i < l; ++i) {
    const grid::Line& line = grid_.line(i);
    const bool ex = base_.allow_topology_attacks && line.in_service &&
                    !line.fixed && !line.status_secured;
    const bool in = base_.allow_topology_attacks && !line.in_service &&
                    !line.status_secured;
    excludable[static_cast<std::size_t>(i)] = ex;
    attackable[static_cast<std::size_t>(i)] = ex || in;
    if (ex || in) {
      tot[static_cast<std::size_t>(i)] =
          LinExpr::var(simplex_.new_var("tot" + std::to_string(i)));
    } else if (line.in_service) {
      const Rational y = to_rational(line.admittance);
      LinExpr e = LinExpr::var(theta_[static_cast<std::size_t>(line.from)]) -
                  LinExpr::var(theta_[static_cast<std::size_t>(line.to)]);
      e *= y;
      tot[static_cast<std::size_t>(i)] = std::move(e);
      totTerms[static_cast<std::size_t>(i)] = {{line.from, y}, {line.to, -y}};
    }  // fixed open line: constant zero
  }

  // One row per taken measurement whose delta expression is non-constant.
  // Meters the adversary can never alter are pinned to zero once, here;
  // meters that per-query secured sets may pin go on the dynamic list.
  for (MeasId m = 0; m < plan_.num_potential(); ++m) {
    if (!plan_.taken(m)) continue;
    const grid::MeasInfo info = plan_.decode(m);
    LinExpr expr;
    AngleTerms terms;      // contraction view — valid only while !freeFlow
    bool freeFlow = false;  // row references an unconstrained topology flow
    bool pinned = !plan_.accessible(m) || plan_.secured(m);
    if (info.type != grid::MeasType::Injection) {
      const LineId i = info.line;
      // Discard semantics: an excluded line's meters leave the estimator's
      // scope, so the adversary need not alter them and *no* security
      // attribute can pin them — they never constrain the subspace.
      if (excludable[static_cast<std::size_t>(i)] &&
          !base_.excluded_meters_must_read_zero) {
        continue;
      }
      // Both flow meters bind to the same total-flow expression, exactly
      // as bind_cz does (delta != 0 is sign-independent), so they share
      // one slack row here.
      expr = tot[static_cast<std::size_t>(i)];
      terms = totTerms[static_cast<std::size_t>(i)];
      freeFlow = attackable[static_cast<std::size_t>(i)];
      // Eq. (17): altering a flow meter requires knowing the line's
      // admittance. An unknown line's meters are alterable only as part of
      // a topology change, and only when knowledge does not gate those.
      if (!base_.knows(i) &&
          (base_.knowledge_gates_topology_lines ||
           !attackable[static_cast<std::size_t>(i)])) {
        pinned = true;
      }
    } else {
      for (LineId i : grid_.lines_at(info.bus)) {
        const Rational sign(grid_.line(i).to == info.bus ? 1 : -1);
        expr.add_scaled(tot[static_cast<std::size_t>(i)], sign);
        freeFlow = freeFlow || attackable[static_cast<std::size_t>(i)];
        for (const auto& [bus, c] : totTerms[static_cast<std::size_t>(i)]) {
          terms.emplace_back(bus, c * sign);
        }
      }
    }
    if (expr.is_constant()) continue;  // structurally zero delta
    // Rows free of topology-flow variables get an angle-terms twin for the
    // contraction phase; rows referencing a free flow never pin angles.
    int pinRow = -1;
    if (!freeFlow) {
      PinTerms pt{aggregate(std::move(terms))};
      if (!pt.terms.empty()) {
        pinRow = static_cast<int>(pin_rows_.size());
        pin_rows_.push_back(std::move(pt));
      }
    }
    // Normalizing shares one slack among proportional deltas; a scaled row
    // pins (and frees) exactly the same subspace.
    const TVar s = simplex_.slack_for(expr.normalized().expr);
    if (std::find(meter_slacks_.begin(), meter_slacks_.end(), s) ==
        meter_slacks_.end()) {
      meter_slacks_.push_back(s);  // fwd/bwd meters share a row; count once
    }
    if (pinned) {
      ok = simplex_.assert_upper(s, zero, Lit()) &&
           simplex_.assert_lower(s, zero, Lit());
      PSSE_ASSERT(ok);
      if (pinRow >= 0) static_pins_.push_back(pinRow);
    } else {
      dynamic_.push_back({m, s, plan_.residence_bus(m, grid_), pinRow});
    }
  }
}

ScreenResult LpScreen::screen(const core::ScenarioDelta& delta) {
  const auto start = std::chrono::steady_clock::now();
  ScreenResult out;
  ++screens_;
  auto finish = [&](ScreenVerdict v) {
    out.verdict = v;
    if (v == ScreenVerdict::kInfeasible) ++infeasible_;
    out.seconds = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    return out;
  };

  const int b = grid_.num_buses();
  const BusId ref = base_.reference_bus;
  // Queries verify_delta would reject (or whose goals we cannot express)
  // are deferred to the SMT path untouched, keeping verdicts — and errors
  // — bit-identical to an unscreened run.
  for (BusId t : delta.target_states) {
    if (t < 0 || t >= b || t == ref) return finish(ScreenVerdict::kInconclusive);
  }
  for (auto [a, bb] : delta.distinct_changes) {
    if (a < 0 || a >= b || bb < 0 || bb >= b || a == bb) {
      return finish(ScreenVerdict::kInconclusive);
    }
  }
  for (BusId j : delta.secured_buses) {
    if (j < 0 || j >= b) return finish(ScreenVerdict::kInconclusive);
  }
  for (MeasId m : delta.secured_measurements) {
    if (m < 0 || m >= plan_.num_potential()) {
      return finish(ScreenVerdict::kInconclusive);
    }
  }
  const bool anyState =
      delta.target_states.empty() && delta.require_any_state_attack;
  if (delta.target_states.empty() && delta.distinct_changes.empty() &&
      !anyState) {
    return finish(ScreenVerdict::kInconclusive);  // nothing to prove
  }

  // Per-query pins: dynamically secured meters and, under "attack only the
  // targets", every untargeted state.
  std::vector<bool> busSecured(static_cast<std::size_t>(b), false);
  for (BusId j : delta.secured_buses) {
    busSecured[static_cast<std::size_t>(j)] = true;
  }
  std::vector<bool> measSecured(
      static_cast<std::size_t>(plan_.num_potential()), false);
  for (MeasId m : delta.secured_measurements) {
    measSecured[static_cast<std::size_t>(m)] = true;
  }

  // ---- Phase 1: combinatorial contraction (see the header comment).
  // Weighted union-find over the pinned angle-only rows: theta_x =
  // ratio[x] * theta_root(x), with zeroed[] marking classes proved
  // identically zero. Uses a subset of the LP's equalities, so its
  // solution space contains V — a functional identically zero here is
  // identically zero on V, and the Infeasible conclusion transfers.
  const std::size_t nb = static_cast<std::size_t>(b);
  std::vector<int> parent(nb);
  for (std::size_t j = 0; j < nb; ++j) parent[j] = static_cast<int>(j);
  std::vector<Rational> ratio(nb, Rational(1));
  std::vector<char> zeroed(nb, 0);
  std::vector<int> path;
  auto find = [&](BusId x0) {
    int x = static_cast<int>(x0);
    path.clear();
    while (parent[static_cast<std::size_t>(x)] != x) {
      path.push_back(x);
      x = parent[static_cast<std::size_t>(x)];
    }
    Rational acc(1);  // cumulative ratio to the root, compressed in place
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      acc = ratio[static_cast<std::size_t>(*it)] * acc;
      ratio[static_cast<std::size_t>(*it)] = acc;
      parent[static_cast<std::size_t>(*it)] = x;
    }
    return x;
  };
  auto ratio_of = [&](BusId x, int root) {
    return static_cast<int>(x) == root ? Rational(1)
                                       : ratio[static_cast<std::size_t>(x)];
  };
  bool changed = false;
  auto mark_zero = [&](BusId x) {
    const int r = find(x);
    if (!zeroed[static_cast<std::size_t>(r)]) {
      zeroed[static_cast<std::size_t>(r)] = 1;
      changed = true;
    }
  };
  // Record theta_a = c * theta_b (c != 0). Same class: a mismatched ratio
  // forces the class to zero. Distinct classes: merge at the implied root
  // ratio; zero-ness propagates both ways because c is invertible.
  auto relate = [&](BusId a2, BusId b2, const Rational& c) {
    const int ra = find(a2);
    const int rb = find(b2);
    const Rational k = c * ratio_of(b2, rb) / ratio_of(a2, ra);
    if (ra == rb) {
      if (!(k == Rational(1))) mark_zero(a2);
      return;
    }
    parent[static_cast<std::size_t>(ra)] = rb;
    ratio[static_cast<std::size_t>(ra)] = k;
    if (zeroed[static_cast<std::size_t>(ra)] ||
        zeroed[static_cast<std::size_t>(rb)]) {
      zeroed[static_cast<std::size_t>(rb)] = 1;
    }
    changed = true;
  };

  mark_zero(ref);
  if (delta.attack_only_targets) {
    std::vector<bool> isTarget(nb, false);
    for (BusId t : delta.target_states) {
      isTarget[static_cast<std::size_t>(t)] = true;
    }
    for (BusId j = 0; j < b; ++j) {
      if (!isTarget[static_cast<std::size_t>(j)]) mark_zero(j);
    }
  }
  std::vector<const PinTerms*> active;
  active.reserve(static_pins_.size() + dynamic_.size());
  for (int idx : static_pins_) {
    active.push_back(&pin_rows_[static_cast<std::size_t>(idx)]);
  }
  for (const MeterRow& row : dynamic_) {
    if (row.pin_row < 0) continue;
    if (busSecured[static_cast<std::size_t>(row.residence)] ||
        measSecured[static_cast<std::size_t>(row.id)]) {
      active.push_back(&pin_rows_[static_cast<std::size_t>(row.pin_row)]);
    }
  }
  // Fixpoint: rows with >= 3 surviving classes are retried after merges
  // shrink them; rows resolved to <= 2 classes are consumed exactly once.
  std::vector<char> consumed(active.size(), 0);
  std::vector<std::pair<int, Rational>> agg;
  changed = true;
  while (changed) {
    changed = false;
    for (std::size_t r = 0; r < active.size(); ++r) {
      if (consumed[r]) continue;
      agg.clear();
      for (const auto& [bus, coeff] : active[r]->terms) {
        const int root = find(bus);
        if (zeroed[static_cast<std::size_t>(root)]) continue;
        const Rational c = coeff * ratio_of(bus, root);
        bool merged = false;
        for (auto& [aroot, acoeff] : agg) {
          if (aroot == root) {
            acoeff += c;
            merged = true;
            break;
          }
        }
        if (!merged) agg.emplace_back(root, std::move(c));
      }
      agg.erase(
          std::remove_if(agg.begin(), agg.end(),
                         [](const auto& p) { return p.second.is_zero(); }),
          agg.end());
      if (agg.size() > 2) continue;
      consumed[r] = 1;
      if (agg.size() == 1) {
        mark_zero(static_cast<BusId>(agg[0].first));
      } else if (agg.size() == 2) {
        relate(static_cast<BusId>(agg[0].first),
               static_cast<BusId>(agg[1].first),
               -(agg[1].second / agg[0].second));
      }
      // agg empty: the row is identically satisfied — no information.
    }
  }

  auto contraction_zero = [&](BusId t) {
    return zeroed[static_cast<std::size_t>(find(t))] != 0;
  };
  for (BusId t : delta.target_states) {
    if (contraction_zero(t)) {
      ++out.functionals_checked;
      out.pinned = "dtheta[" + std::to_string(t + 1) + "]";
      return finish(ScreenVerdict::kInfeasible);
    }
  }
  for (auto [a, bb] : delta.distinct_changes) {
    const int ra = find(a);
    const int rb = find(bb);
    const bool equal =
        zeroed[static_cast<std::size_t>(ra)]
            ? zeroed[static_cast<std::size_t>(rb)] != 0
            : ra == rb && ratio_of(a, ra) == ratio_of(bb, rb);
    if (equal) {
      ++out.functionals_checked;
      out.pinned = "dtheta[" + std::to_string(a + 1) + "]-dtheta[" +
                   std::to_string(bb + 1) + "]";
      return finish(ScreenVerdict::kInfeasible);
    }
  }
  if (anyState) {
    bool someFree = false;
    for (BusId j = 0; j < b && !someFree; ++j) {
      someFree = j != ref && !contraction_zero(j);
    }
    if (!someFree) {
      ++out.functionals_checked;
      out.pinned = "every state";
      return finish(ScreenVerdict::kInfeasible);
    }
  }

  // ---- Phase 2: exact simplex on goals the contraction left open (it
  // only sees <= 2-class rows; denser pinned structure needs the tableau).
  // Wall-clock bounded: an interrupted check() reports "feasible", which
  // this screen treats as "no claim" — soundness is unaffected.
  const std::size_t mark = simplex_.trail_size();
  const DeltaRational zero;
  smt::Interrupt budgetInterrupt;
  if (max_seconds_ > 0) {
    smt::Budget budget;
    budget.max_time = std::chrono::milliseconds(std::max<std::int64_t>(
        1, static_cast<std::int64_t>(max_seconds_ * 1000.0)));
    budgetInterrupt = smt::Interrupt::from(budget);
    simplex_.set_interrupt(&budgetInterrupt);
  }
  struct ClearInterrupt {
    smt::Simplex& simplex;
    ~ClearInterrupt() { simplex.set_interrupt(nullptr); }
  } clearInterrupt{simplex_};
  bool ok = true;
  for (const MeterRow& row : dynamic_) {
    if (!busSecured[static_cast<std::size_t>(row.residence)] &&
        !measSecured[static_cast<std::size_t>(row.id)]) {
      continue;
    }
    ok = ok && simplex_.assert_upper(row.slack, zero, Lit()) &&
         simplex_.assert_lower(row.slack, zero, Lit());
  }
  if (delta.attack_only_targets) {
    std::vector<bool> isTarget(static_cast<std::size_t>(b), false);
    for (BusId t : delta.target_states) {
      isTarget[static_cast<std::size_t>(t)] = true;
    }
    for (BusId j = 0; j < b; ++j) {
      if (isTarget[static_cast<std::size_t>(j)] || j == ref) continue;
      ok = ok && simplex_.assert_upper(theta_[static_cast<std::size_t>(j)],
                                       zero, Lit()) &&
           simplex_.assert_lower(theta_[static_cast<std::size_t>(j)], zero,
                                 Lit());
    }
  }
  // The all-zero vector satisfies every homogeneous equality, so the pin
  // phase cannot make the system infeasible.
  PSSE_ASSERT(ok);

  auto capture_hint = [&]() {
    if (out.hint_altered > 0) return;
    int n = 0;
    for (TVar s : meter_slacks_) {
      if (!simplex_.model_value(s).is_zero()) ++n;
    }
    out.hint_altered = n;
  };
  // Homogeneity: the equalities define a linear subspace V, so a
  // functional f takes a nonzero value on V iff {V, f = 1} is feasible
  // (scale any witness by 1/f(x), sign included).
  auto goal_nonzero = [&](TVar v) {
    const std::size_t m2 = simplex_.trail_size();
    const DeltaRational one{Rational(1)};
    const bool feasible = simplex_.assert_lower(v, one, Lit()) &&
                          simplex_.assert_upper(v, one, Lit()) &&
                          simplex_.check();
    // A budget-interrupted check reports feasible but has no model; the
    // hint is best-effort, so skip it rather than read a dirty tableau.
    if (feasible && !budgetInterrupt.triggered()) capture_hint();
    simplex_.pop_to(m2);
    return feasible;
  };

  for (BusId t : delta.target_states) {
    ++out.functionals_checked;
    if (!goal_nonzero(theta_[static_cast<std::size_t>(t)])) {
      out.pinned = "dtheta[" + std::to_string(t + 1) + "]";
      simplex_.pop_to(mark);
      return finish(ScreenVerdict::kInfeasible);
    }
  }
  for (auto [a, bb] : delta.distinct_changes) {
    ++out.functionals_checked;
    LinExpr diff = LinExpr::var(theta_[static_cast<std::size_t>(a)]) -
                   LinExpr::var(theta_[static_cast<std::size_t>(bb)]);
    if (!goal_nonzero(simplex_.slack_for(diff))) {
      out.pinned = "dtheta[" + std::to_string(a + 1) + "]-dtheta[" +
                   std::to_string(bb + 1) + "]";
      simplex_.pop_to(mark);
      return finish(ScreenVerdict::kInfeasible);
    }
  }
  if (anyState) {
    bool some = false;
    for (BusId j = 0; j < b && !some; ++j) {
      if (j == ref) continue;
      ++out.functionals_checked;
      some = goal_nonzero(theta_[static_cast<std::size_t>(j)]);
    }
    if (!some) {
      out.pinned = "every state";
      simplex_.pop_to(mark);
      return finish(ScreenVerdict::kInfeasible);
    }
  }

  simplex_.pop_to(mark);
  return finish(ScreenVerdict::kFeasible);
}

}  // namespace psse::screen
