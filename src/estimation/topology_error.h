// Topology error detection — the defence that uncoordinated topology
// spoofing trips over (paper Section I: "since there are topology error
// detection algorithms [4], it is important to examine if an adversary can
// strengthen UFDI attacks by introducing topology errors").
//
// The detector is the standard residual-search variant: when the WLS
// residual of the mapped topology is anomalous, re-estimate under
// single-line status flips of the non-core lines and report any flip that
// makes the residual statistically clean — the presumed status error. A
// *coordinated* attack (paper Section III-E/F) keeps the original residual
// clean, so the detector never even fires; the tests and the
// topology_poisoning example demonstrate exactly that contrast.
//
// Also here: the sequential largest-normalised-residual identify-and-
// remove loop used by real EMSes to clean multiple gross errors.
#pragma once

#include <optional>
#include <vector>

#include "estimation/bad_data.h"
#include "estimation/wls.h"
#include "grid/jacobian.h"
#include "grid/measurement.h"
#include "grid/topology_processor.h"

namespace psse::est {

struct TopologyErrorReport {
  /// Residual objective under the mapped topology.
  double mapped_objective = 0.0;
  double threshold = 0.0;
  /// True iff the mapped topology's residual is anomalous.
  bool anomaly = false;
  /// If an alternative single-line flip explains the data: the line whose
  /// status is presumed wrong, and the clean objective it achieves.
  std::optional<grid::LineId> suspected_line;
  double best_alternative_objective = 0.0;
};

/// Runs the detector on a full-length telemetry vector against a mapped
/// topology. `alpha` is the chi-square significance level.
[[nodiscard]] TopologyErrorReport detect_topology_error(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    const grid::MappedTopology& mapped, const grid::Vector& telemetry,
    double sigma, double alpha = 0.01);

struct BadDataCleaning {
  /// Rows (of the model) removed, in removal order.
  std::vector<int> removed_rows;
  /// Final estimate after cleaning.
  WlsResult final_result;
  /// False if redundancy ran out before the residual became clean.
  bool clean = false;
};

/// Sequential largest-normalised-residual cleaning: estimate, drop the
/// worst-testing measurement, repeat (at most `maxRemovals`) until the
/// chi-square test passes.
[[nodiscard]] BadDataCleaning clean_bad_data(const grid::Grid& grid,
                                             const grid::MeasurementPlan& plan,
                                             const grid::Vector& telemetry,
                                             double sigma, double alpha = 0.01,
                                             int maxRemovals = 5);

}  // namespace psse::est
