#include "estimation/wls.h"

#include <cmath>

namespace psse::est {

using grid::Matrix;
using grid::Vector;

WlsEstimator::WlsEstimator(const grid::JacobianModel& model, double sigma,
                           grid::BusId referenceBus)
    : WlsEstimator(model, Vector(model.h.rows(), sigma), referenceBus) {}

WlsEstimator::WlsEstimator(const grid::JacobianModel& model,
                           grid::Vector sigmas, grid::BusId referenceBus)
    : model_(model), sigmas_(std::move(sigmas)), ref_(referenceBus) {
  if (sigmas_.size() != model_.h.rows()) {
    throw EstimationError("WlsEstimator: sigma vector size mismatch");
  }
  for (std::size_t i = 0; i < sigmas_.size(); ++i) {
    if (sigmas_[i] <= 0.0) {
      throw EstimationError("WlsEstimator: sigma must be > 0");
    }
  }
  if (ref_ < 0 || static_cast<std::size_t>(ref_) >= model_.h.cols()) {
    throw EstimationError("WlsEstimator: reference bus out of range");
  }
  if (model_.h.rows() < model_.h.cols() - 1) {
    throw EstimationError(
        "WlsEstimator: fewer measurements than states (underdetermined)");
  }
}

Matrix WlsEstimator::reduced_h() const {
  // Drop the reference-bus column (its angle is fixed at zero).
  Matrix out(model_.h.rows(), model_.h.cols() - 1);
  for (std::size_t r = 0; r < model_.h.rows(); ++r) {
    std::size_t cc = 0;
    for (std::size_t c = 0; c < model_.h.cols(); ++c) {
      if (static_cast<grid::BusId>(c) == ref_) continue;
      out(r, cc++) = model_.h(r, c);
    }
  }
  return out;
}

WlsResult WlsEstimator::estimate(const Vector& z) const {
  if (z.size() != model_.h.rows()) {
    throw EstimationError("estimate: measurement vector size mismatch");
  }
  // Row-weighted least squares via the whitened system
  // (H_w = R^{-1/2} H, z_w = R^{-1/2} z).
  Matrix hr = reduced_h();
  Matrix hw = hr;
  Vector zw = z;
  for (std::size_t r = 0; r < hw.rows(); ++r) {
    double w = 1.0 / sigmas_[r];
    for (std::size_t c = 0; c < hw.cols(); ++c) hw(r, c) *= w;
    zw[r] *= w;
  }
  Matrix hwt = hw.transposed();
  Matrix gain = hwt * hw;
  Vector rhs = hwt * zw;
  Vector xr;
  try {
    xr = gain.cholesky_solve(rhs);
  } catch (const grid::LinAlgError&) {
    throw EstimationError(
        "estimate: gain matrix not positive definite (unobservable "
        "measurement configuration)");
  }
  WlsResult out;
  out.theta = Vector(model_.h.cols());
  std::size_t cc = 0;
  for (std::size_t c = 0; c < model_.h.cols(); ++c) {
    out.theta[c] = static_cast<grid::BusId>(c) == ref_ ? 0.0 : xr[cc++];
  }
  Vector predicted = model_.h * out.theta;
  out.residual = z - predicted;
  for (std::size_t i = 0; i < out.residual.size(); ++i) {
    double w = 1.0 / (sigmas_[i] * sigmas_[i]);
    out.objective += w * out.residual[i] * out.residual[i];
  }
  out.residual_norm = out.residual.norm2();
  return out;
}

Vector WlsEstimator::residual_covariance_diagonal() const {
  // Omega = R - H G^{-1} H^T with G = H^T R^{-1} H, computed through the
  // whitened Jacobian.
  Matrix hr = reduced_h();
  Matrix hw = hr;
  for (std::size_t r = 0; r < hw.rows(); ++r) {
    double w = 1.0 / sigmas_[r];
    for (std::size_t c = 0; c < hw.cols(); ++c) hw(r, c) *= w;
  }
  Matrix gain = hw.transposed() * hw;
  Matrix ginvHt = gain.lu_solve(hr.transposed());  // G^{-1} H^T
  Vector diag(hr.rows());
  for (std::size_t i = 0; i < hr.rows(); ++i) {
    double hgh = 0.0;
    for (std::size_t k = 0; k < hr.cols(); ++k) {
      hgh += hr(i, k) * ginvHt(k, i);
    }
    diag[i] = sigmas_[i] * sigmas_[i] - hgh;
  }
  return diag;
}

}  // namespace psse::est
