// Bad data detection — the defence UFDI attacks are engineered to evade.
//
// Two standard tests (Abur & Exposito, ch. 5; paper Section II-B):
//  * chi-square test on the WLS objective J(x) against the (1 - alpha)
//    quantile of chi^2 with m - n degrees of freedom;
//  * largest normalised residual (LNR) test, which also *identifies* the
//    suspect measurement.
#pragma once

#include <optional>

#include "estimation/wls.h"
#include "grid/matrix.h"

namespace psse::est {

struct Chi2TestResult {
  double objective = 0.0;   // J(x_hat)
  double threshold = 0.0;   // chi^2_{1-alpha, m-n}
  int dof = 0;
  bool bad_data = false;    // objective > threshold
};

struct LnrTestResult {
  double largest = 0.0;           // max normalised residual magnitude
  double threshold = 0.0;         // identification threshold (e.g. 3.0)
  int suspect_row = -1;           // row of the largest residual
  bool bad_data = false;
};

class BadDataDetector {
 public:
  /// alpha is the false-alarm probability of the chi-square test.
  BadDataDetector(const WlsEstimator& estimator, double alpha = 0.01,
                  double lnrThreshold = 3.0);

  [[nodiscard]] Chi2TestResult chi2_test(const WlsResult& result) const;
  [[nodiscard]] LnrTestResult lnr_test(const WlsResult& result) const;

  [[nodiscard]] double chi2_threshold() const { return chi2Threshold_; }

 private:
  const WlsEstimator& estimator_;
  double alpha_;
  double lnrThreshold_;
  double chi2Threshold_;
  int dof_;
};

}  // namespace psse::est
