#include "estimation/bad_data.h"

#include <cmath>

#include "estimation/chi2.h"

namespace psse::est {

BadDataDetector::BadDataDetector(const WlsEstimator& estimator, double alpha,
                                 double lnrThreshold)
    : estimator_(estimator), alpha_(alpha), lnrThreshold_(lnrThreshold) {
  if (alpha_ <= 0.0 || alpha_ >= 1.0) {
    throw EstimationError("BadDataDetector: alpha must be in (0,1)");
  }
  dof_ = estimator_.num_measurements() - estimator_.num_states();
  if (dof_ <= 0) {
    throw EstimationError(
        "BadDataDetector: no redundancy (m <= n), detection impossible");
  }
  chi2Threshold_ = chi2_quantile(1.0 - alpha_, dof_);
}

Chi2TestResult BadDataDetector::chi2_test(const WlsResult& result) const {
  Chi2TestResult out;
  out.objective = result.objective;
  out.threshold = chi2Threshold_;
  out.dof = dof_;
  out.bad_data = result.objective > chi2Threshold_;
  return out;
}

LnrTestResult BadDataDetector::lnr_test(const WlsResult& result) const {
  LnrTestResult out;
  out.threshold = lnrThreshold_;
  grid::Vector omega = estimator_.residual_covariance_diagonal();
  for (std::size_t i = 0; i < result.residual.size(); ++i) {
    // Near-zero Omega_ii marks a critical measurement whose residual is
    // structurally zero — it cannot be tested.
    if (omega[i] < 1e-12) continue;
    double rn = std::fabs(result.residual[i]) / std::sqrt(omega[i]);
    if (rn > out.largest) {
      out.largest = rn;
      out.suspect_row = static_cast<int>(i);
    }
  }
  out.bad_data = out.largest > lnrThreshold_;
  return out;
}

}  // namespace psse::est
