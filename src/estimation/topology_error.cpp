#include "estimation/topology_error.h"

#include "estimation/chi2.h"

namespace psse::est {

namespace {

// WLS objective of `telemetry` under a given mapped topology; nullopt when
// the configuration is unobservable (such a flip cannot explain the data).
std::optional<WlsResult> try_estimate(const grid::Grid& grid,
                                      const grid::MeasurementPlan& plan,
                                      const grid::MappedTopology& topo,
                                      const grid::Vector& telemetry,
                                      double sigma) {
  grid::JacobianModel model = grid::build_jacobian(grid, plan, topo);
  try {
    WlsEstimator estimator(model, sigma);
    return estimator.estimate(grid::restrict_to_rows(model, telemetry));
  } catch (const EstimationError&) {
    return std::nullopt;
  }
}

double threshold_for(const grid::MeasurementPlan& plan, int numBuses,
                     double alpha) {
  int dof = plan.num_taken() - (numBuses - 1);
  return dof > 0 ? chi2_quantile(1.0 - alpha, dof) : 0.0;
}

}  // namespace

TopologyErrorReport detect_topology_error(const grid::Grid& grid,
                                          const grid::MeasurementPlan& plan,
                                          const grid::MappedTopology& mapped,
                                          const grid::Vector& telemetry,
                                          double sigma, double alpha) {
  TopologyErrorReport out;
  out.threshold = threshold_for(plan, grid.num_buses(), alpha);
  std::optional<WlsResult> base =
      try_estimate(grid, plan, mapped, telemetry, sigma);
  out.mapped_objective = base.has_value() ? base->objective : 1e300;
  out.anomaly = out.mapped_objective > out.threshold;
  if (!out.anomaly) return out;

  // Search single-line status flips over lines whose status is not
  // integrity-protected (a secured status cannot be wrong).
  double best = out.mapped_objective;
  for (grid::LineId i = 0; i < grid.num_lines(); ++i) {
    if (grid.line(i).status_secured) continue;
    grid::MappedTopology flipped = mapped;
    flipped.mapped[static_cast<std::size_t>(i)] =
        !flipped.mapped[static_cast<std::size_t>(i)];
    std::optional<WlsResult> alt =
        try_estimate(grid, plan, flipped, telemetry, sigma);
    if (!alt.has_value()) continue;
    if (alt->objective < best) {
      best = alt->objective;
      if (alt->objective <= out.threshold) out.suspected_line = i;
    }
  }
  out.best_alternative_objective = best;
  return out;
}

BadDataCleaning clean_bad_data(const grid::Grid& grid,
                               const grid::MeasurementPlan& plan,
                               const grid::Vector& telemetry, double sigma,
                               double alpha, int maxRemovals) {
  BadDataCleaning out;
  grid::MeasurementPlan working = plan;
  for (int round = 0; round <= maxRemovals; ++round) {
    grid::JacobianModel model = grid::build_jacobian(grid, working);
    WlsEstimator estimator(model, sigma);
    out.final_result =
        estimator.estimate(grid::restrict_to_rows(model, telemetry));
    int dof = estimator.num_measurements() - estimator.num_states();
    if (dof <= 0) return out;  // redundancy exhausted
    BadDataDetector detector(estimator, alpha);
    Chi2TestResult chi = detector.chi2_test(out.final_result);
    if (!chi.bad_data) {
      out.clean = true;
      return out;
    }
    if (round == maxRemovals) return out;
    LnrTestResult lnr = detector.lnr_test(out.final_result);
    if (lnr.suspect_row < 0) return out;  // nothing identifiable
    grid::MeasId suspect =
        model.row_meas[static_cast<std::size_t>(lnr.suspect_row)];
    working.set_taken(suspect, false);
    out.removed_rows.push_back(static_cast<int>(suspect));
  }
  return out;
}

}  // namespace psse::est
