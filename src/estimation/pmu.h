// PMU-augmented state estimation — the physical realisation of the
// paper's countermeasure (Section IV-A: "a bus can be secured by deploying
// a PMU at the bus with necessary security measures").
//
// A PMU provides a GPS-synchronised *direct angle measurement* of its bus,
// which enters the DC estimator as a unit row in H with a (much) smaller
// noise sigma than SCADA telemetry. Because the attacker cannot tamper
// with integrity-protected PMU data, a UFDI vector a = Hc built for the
// SCADA rows is no longer in the range of the augmented model whenever c
// moves a PMU-observed angle — the residual test then fires. The tests
// demonstrate exactly this defence-in-action, complementing the abstract
// sb_j treatment in the synthesis model.
#pragma once

#include <random>
#include <vector>

#include "estimation/wls.h"
#include "grid/grid.h"
#include "grid/jacobian.h"
#include "grid/measurement.h"

namespace psse::est {

class PmuEstimator {
 public:
  /// `pmuBuses` carry angle measurements with noise `sigmaPmu`; SCADA rows
  /// keep `sigmaScada`. The reference bus may itself host a PMU.
  PmuEstimator(const grid::Grid& grid, const grid::MeasurementPlan& plan,
               std::vector<grid::BusId> pmuBuses, double sigmaScada,
               double sigmaPmu, grid::BusId referenceBus = 0);

  /// Estimates from full-length SCADA telemetry plus per-PMU angle
  /// readings (in pmuBuses order).
  [[nodiscard]] WlsResult estimate(const grid::Vector& scadaTelemetry,
                                   const grid::Vector& pmuAngles) const;

  /// Simulates PMU readings for a true state (adds Gaussian noise).
  [[nodiscard]] grid::Vector simulate_pmu_readings(
      const grid::Vector& trueTheta, std::mt19937_64& rng) const;

  [[nodiscard]] const WlsEstimator& estimator() const { return estimator_; }
  [[nodiscard]] const std::vector<grid::BusId>& pmu_buses() const {
    return pmuBuses_;
  }
  [[nodiscard]] int num_scada_rows() const { return scadaRows_; }

 private:
  grid::JacobianModel augmented_;
  std::vector<grid::BusId> pmuBuses_;
  double sigmaPmu_;
  int scadaRows_ = 0;
  WlsEstimator estimator_;
};

}  // namespace psse::est
