#include "estimation/chi2.h"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace psse::est {

namespace {

// Series expansion of P(a,x), converges quickly for x < a + 1.
double gamma_p_series(double a, double x) {
  double ap = a;
  double sum = 1.0 / a;
  double del = sum;
  for (int n = 0; n < 500; ++n) {
    ap += 1.0;
    del *= x / ap;
    sum += del;
    if (std::fabs(del) < std::fabs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

// Continued fraction for Q(a,x), converges quickly for x > a + 1.
double gamma_q_cf(double a, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - a;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 500; ++i) {
    double an = -i * (i - a);
    b += 2.0;
    d = an * d + b;
    if (std::fabs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::fabs(c) < tiny) c = tiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < 1e-15) break;
  }
  return h * std::exp(-x + a * std::log(x) - std::lgamma(a));
}

}  // namespace

double gamma_p(double a, double x) {
  if (a <= 0.0 || x < 0.0) {
    throw std::invalid_argument("gamma_p: domain error");
  }
  if (x == 0.0) return 0.0;
  return x < a + 1.0 ? gamma_p_series(a, x) : 1.0 - gamma_q_cf(a, x);
}

double gamma_q(double a, double x) { return 1.0 - gamma_p(a, x); }

double chi2_cdf(double x, double k) {
  if (k <= 0.0) throw std::invalid_argument("chi2_cdf: dof must be positive");
  if (x <= 0.0) return 0.0;
  return gamma_p(k / 2.0, x / 2.0);
}

double chi2_quantile(double p, double k) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("chi2_quantile: p must be in (0,1)");
  }
  // Bracket: the mean is k, variance 2k; expand upward until covered.
  double lo = 0.0;
  double hi = k + 10.0 * std::sqrt(2.0 * k) + 10.0;
  while (chi2_cdf(hi, k) < p) hi *= 2.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (chi2_cdf(mid, k) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi);
}

double normal_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double normal_quantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    throw std::invalid_argument("normal_quantile: p must be in (0,1)");
  }
  double lo = -40.0, hi = 40.0;
  for (int iter = 0; iter < 200; ++iter) {
    double mid = 0.5 * (lo + hi);
    if (normal_cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5 * (lo + hi);
}

}  // namespace psse::est
