// Observability analysis for DC state estimation.
//
// A measurement configuration is observable iff the reduced Jacobian (ref
// column dropped) has full column rank — equivalently, iff the "measured
// graph" (flow-measured lines as edges, plus injection couplings) spans the
// grid. Both the numeric-rank test and a graph-flavoured test are provided;
// the graph test is the classic topological observability heuristic and the
// numeric test is the ground truth.
#pragma once

#include "grid/grid.h"
#include "grid/jacobian.h"
#include "grid/measurement.h"

namespace psse::est {

struct ObservabilityReport {
  bool observable = false;
  std::size_t rank = 0;       // of the reduced Jacobian
  std::size_t required = 0;   // b - 1
};

/// Numeric observability: rank of the reduced H.
[[nodiscard]] ObservabilityReport check_observability(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    grid::BusId referenceBus = 0);

/// Topological sufficient test: a spanning tree of flow-measured lines
/// makes the system observable (injections only help further). Returns
/// true only when the flow measurements alone span the grid.
[[nodiscard]] bool flow_spanning_tree_exists(const grid::Grid& grid,
                                             const grid::MeasurementPlan& plan);

/// Critical measurements: taken measurements whose loss makes the system
/// unobservable. Their residuals are structurally zero, so the LNR test
/// cannot vet them — classic candidates for securing.
[[nodiscard]] std::vector<grid::MeasId> critical_measurements(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    grid::BusId referenceBus = 0);

}  // namespace psse::est
