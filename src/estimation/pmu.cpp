#include "estimation/pmu.h"

namespace psse::est {

namespace {

grid::JacobianModel augment(grid::JacobianModel base,
                            const std::vector<grid::BusId>& pmuBuses,
                            int numPotential) {
  const std::size_t scadaRows = base.h.rows();
  grid::Matrix extended(scadaRows + pmuBuses.size(), base.h.cols());
  for (std::size_t r = 0; r < scadaRows; ++r) {
    for (std::size_t c = 0; c < base.h.cols(); ++c) {
      extended(r, c) = base.h(r, c);
    }
  }
  for (std::size_t k = 0; k < pmuBuses.size(); ++k) {
    extended(scadaRows + k, static_cast<std::size_t>(pmuBuses[k])) = 1.0;
    // PMU rows live beyond the SCADA potential-measurement id space.
    base.row_meas.push_back(numPotential + static_cast<int>(k));
  }
  base.h = std::move(extended);
  return base;
}

grid::Vector sigma_rows(std::size_t scadaRows, std::size_t pmuRows,
                        double sigmaScada, double sigmaPmu) {
  grid::Vector out(scadaRows + pmuRows, sigmaScada);
  for (std::size_t k = 0; k < pmuRows; ++k) out[scadaRows + k] = sigmaPmu;
  return out;
}

}  // namespace

PmuEstimator::PmuEstimator(const grid::Grid& grid,
                           const grid::MeasurementPlan& plan,
                           std::vector<grid::BusId> pmuBuses,
                           double sigmaScada, double sigmaPmu,
                           grid::BusId referenceBus)
    : augmented_(augment(grid::build_jacobian(grid, plan), pmuBuses,
                         plan.num_potential())),
      pmuBuses_(std::move(pmuBuses)),
      sigmaPmu_(sigmaPmu),
      scadaRows_(static_cast<int>(augmented_.h.rows()) -
                 static_cast<int>(pmuBuses_.size())),
      estimator_(augmented_,
                 sigma_rows(static_cast<std::size_t>(scadaRows_),
                            pmuBuses_.size(), sigmaScada, sigmaPmu),
                 referenceBus) {
  for (grid::BusId b : pmuBuses_) {
    if (b < 0 || b >= grid.num_buses()) {
      throw EstimationError("PmuEstimator: PMU bus out of range");
    }
  }
}

WlsResult PmuEstimator::estimate(const grid::Vector& scadaTelemetry,
                                 const grid::Vector& pmuAngles) const {
  if (pmuAngles.size() != pmuBuses_.size()) {
    throw EstimationError("PmuEstimator: PMU reading count mismatch");
  }
  grid::Vector z(augmented_.h.rows());
  for (int r = 0; r < scadaRows_; ++r) {
    z[static_cast<std::size_t>(r)] =
        scadaTelemetry[static_cast<std::size_t>(
            augmented_.row_meas[static_cast<std::size_t>(r)])];
  }
  for (std::size_t k = 0; k < pmuBuses_.size(); ++k) {
    z[static_cast<std::size_t>(scadaRows_) + k] = pmuAngles[k];
  }
  return estimator_.estimate(z);
}

grid::Vector PmuEstimator::simulate_pmu_readings(
    const grid::Vector& trueTheta, std::mt19937_64& rng) const {
  std::normal_distribution<double> noise(0.0, sigmaPmu_);
  grid::Vector out(pmuBuses_.size());
  for (std::size_t k = 0; k < pmuBuses_.size(); ++k) {
    out[k] = trueTheta[static_cast<std::size_t>(pmuBuses_[k])] +
             (sigmaPmu_ > 0 ? noise(rng) : 0.0);
  }
  return out;
}

}  // namespace psse::est
