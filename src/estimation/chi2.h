// Chi-square statistics for bad-data detection, hand-rolled.
//
// The BDD hypothesis test (paper Section II-B) needs the chi-square CDF and
// its inverse: the residual J(x) = sum(r_i^2 / sigma_i^2) follows chi^2 with
// m - n degrees of freedom under Gaussian errors, and the detection
// threshold tau is the (1 - alpha) quantile. Both are built on the
// regularised incomplete gamma functions (series + continued fraction,
// Numerical-Recipes style), with quantiles obtained by bisection — slow but
// robust, and thresholds are computed once per estimator.
#pragma once

namespace psse::est {

/// Regularised lower incomplete gamma P(a, x), a > 0, x >= 0.
[[nodiscard]] double gamma_p(double a, double x);
/// Regularised upper incomplete gamma Q(a, x) = 1 - P(a, x).
[[nodiscard]] double gamma_q(double a, double x);

/// Chi-square CDF with k degrees of freedom.
[[nodiscard]] double chi2_cdf(double x, double k);
/// Chi-square quantile: smallest x with CDF(x) >= p, for p in (0, 1).
[[nodiscard]] double chi2_quantile(double p, double k);

/// Standard normal CDF (for the largest-normalised-residual test).
[[nodiscard]] double normal_cdf(double x);
/// Standard normal quantile.
[[nodiscard]] double normal_quantile(double p);

}  // namespace psse::est
