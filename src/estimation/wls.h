// Weighted least squares state estimation (paper Eq. (1)).
//
// Solves x_hat = (H^T W H)^{-1} H^T W z over the taken measurements, with
// one bus angle pinned as the reference (the standard DC-SE gauge fix; the
// paper's Section IV-E designates bus 1). The gain matrix is factored with
// Cholesky; an unobservable measurement configuration surfaces as a
// non-positive-definite gain and is reported as EstimationError.
#pragma once

#include <stdexcept>
#include <string>

#include "grid/grid.h"
#include "grid/jacobian.h"
#include "grid/matrix.h"

namespace psse::est {

class EstimationError : public std::runtime_error {
 public:
  explicit EstimationError(const std::string& what)
      : std::runtime_error(what) {}
};

struct WlsResult {
  grid::Vector theta;          // estimated bus angles, theta[ref] == 0
  grid::Vector residual;       // z - H*theta over the model's rows
  double objective = 0.0;      // J = sum(w_i * r_i^2)
  double residual_norm = 0.0;  // ||z - H*theta||_2 (unweighted)
};

class WlsEstimator {
 public:
  /// `model` is the measurement Jacobian; `sigma` the common measurement
  /// noise standard deviation (W = I / sigma^2); `referenceBus` the pinned
  /// angle.
  WlsEstimator(const grid::JacobianModel& model, double sigma,
               grid::BusId referenceBus = 0);

  /// Heterogeneous variant: per-row noise standard deviations (W =
  /// diag(1/sigma_i^2)) — how PMU angle rows get their higher weight.
  WlsEstimator(const grid::JacobianModel& model, grid::Vector sigmas,
               grid::BusId referenceBus = 0);

  /// Estimates the state from a measurement vector over the model's rows.
  [[nodiscard]] WlsResult estimate(const grid::Vector& z) const;

  [[nodiscard]] int num_measurements() const {
    return static_cast<int>(model_.row_meas.size());
  }
  /// Estimated states excluding the pinned reference.
  [[nodiscard]] int num_states() const {
    return static_cast<int>(model_.h.cols()) - 1;
  }
  /// Noise standard deviation of row i.
  [[nodiscard]] double sigma(std::size_t row = 0) const {
    return sigmas_[row];
  }
  [[nodiscard]] grid::BusId reference_bus() const { return ref_; }
  [[nodiscard]] const grid::JacobianModel& model() const { return model_; }

  /// Residual covariance diagonal Omega_ii = R_ii - (H G^{-1} H^T)_ii,
  /// used by the largest-normalised-residual test.
  [[nodiscard]] grid::Vector residual_covariance_diagonal() const;

 private:
  [[nodiscard]] grid::Matrix reduced_h() const;

  grid::JacobianModel model_;
  grid::Vector sigmas_;  // per row
  grid::BusId ref_;
};

}  // namespace psse::est
