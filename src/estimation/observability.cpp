#include "estimation/observability.h"

#include <numeric>
#include <vector>

namespace psse::est {

ObservabilityReport check_observability(const grid::Grid& grid,
                                        const grid::MeasurementPlan& plan,
                                        grid::BusId referenceBus) {
  grid::JacobianModel model = grid::build_jacobian(grid, plan);
  // Reduced H: drop the reference column.
  grid::Matrix reduced(model.h.rows(), model.h.cols() - 1);
  for (std::size_t r = 0; r < model.h.rows(); ++r) {
    std::size_t cc = 0;
    for (std::size_t c = 0; c < model.h.cols(); ++c) {
      if (static_cast<grid::BusId>(c) == referenceBus) continue;
      reduced(r, cc++) = model.h(r, c);
    }
  }
  ObservabilityReport out;
  out.required = reduced.cols();
  out.rank = reduced.rank();
  out.observable = out.rank == out.required;
  return out;
}

std::vector<grid::MeasId> critical_measurements(
    const grid::Grid& grid, const grid::MeasurementPlan& plan,
    grid::BusId referenceBus) {
  std::vector<grid::MeasId> out;
  if (!check_observability(grid, plan, referenceBus).observable) return out;
  for (grid::MeasId m = 0; m < plan.num_potential(); ++m) {
    if (!plan.taken(m)) continue;
    grid::MeasurementPlan reduced = plan;
    reduced.set_taken(m, false);
    if (!check_observability(grid, reduced, referenceBus).observable) {
      out.push_back(m);
    }
  }
  return out;
}

bool flow_spanning_tree_exists(const grid::Grid& grid,
                               const grid::MeasurementPlan& plan) {
  // Union-find over buses joined by flow-measured in-service lines.
  std::vector<int> parent(static_cast<std::size_t>(grid.num_buses()));
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  int components = grid.num_buses();
  for (grid::LineId i = 0; i < grid.num_lines(); ++i) {
    const grid::Line& l = grid.line(i);
    if (!l.in_service) continue;
    if (!plan.taken(plan.forward_flow(i)) &&
        !plan.taken(plan.backward_flow(i))) {
      continue;
    }
    int a = find(l.from), b = find(l.to);
    if (a != b) {
      parent[static_cast<std::size_t>(a)] = b;
      --components;
    }
  }
  return components == 1;
}

}  // namespace psse::est
