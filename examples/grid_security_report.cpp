// Grid security report: per-bus attack costs, critical measurements, and
// a comparison of the greedy basic-measurement defence with SMT-driven
// synthesis — the operator-facing view the paper's framework enables.
#include <algorithm>
#include <cstdio>
#include <string>

#include "core/baseline_defense.h"
#include "core/security_metrics.h"
#include "core/synthesis.h"
#include "estimation/observability.h"
#include "grid/ieee_cases.h"

using namespace psse;

int main(int argc, char** argv) {
  std::string caseName = argc > 1 ? argv[1] : "ieee14";
  grid::Grid g = grid::cases::by_name(caseName);
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  std::printf("== security report: %s (%d buses, %d lines, full "
              "measurement set) ==\n\n",
              caseName.c_str(), g.num_buses(), g.num_lines());

  // Critical measurements (structurally untestable by the LNR test).
  std::vector<grid::MeasId> crit = est::critical_measurements(g, plan);
  std::printf("critical measurements: %zu%s\n", crit.size(),
              crit.empty() ? " (full redundancy)" : "");
  for (grid::MeasId m : crit) std::printf("  measurement %d\n", m + 1);

  // Per-bus attack costs, cheapest first.
  core::AttackSpec base;
  std::vector<core::BusAttackCost> costs =
      core::bus_attack_costs(g, plan, base);
  std::sort(costs.begin(), costs.end(),
            [](const core::BusAttackCost& a, const core::BusAttackCost& b) {
              return a.min_measurements < b.min_measurements;
            });
  std::printf("\nper-state attack cost (cheapest first):\n"
              "%-6s %18s %14s\n", "bus", "min measurements", "min buses");
  for (const core::BusAttackCost& c : costs) {
    std::printf("%-6d %18d %14d\n", c.bus + 1, c.min_measurements,
                c.min_buses);
  }

  // Defence sizing: greedy baseline vs SMT synthesis for two adversaries.
  core::GreedyDefenseResult greedy =
      core::greedy_basic_measurement_defense(g, plan, {0});
  std::printf("\ngreedy basic-measurement defence: %zu buses\n",
              greedy.secured_buses.size());

  for (int tcz : {8, 0}) {
    core::AttackSpec spec;
    spec.max_altered_measurements = tcz;
    core::UfdiAttackModel model(g, plan, spec);
    core::SynthesisOptions opt;
    opt.must_secure = {0};
    opt.time_limit_seconds = 300;
    core::SecurityArchitectureSynthesizer syn(model, opt);
    core::SynthesisResult r = syn.synthesize_minimal(g.num_buses());
    std::printf("SMT synthesis vs %s adversary: ",
                tcz > 0 ? "T_CZ=8" : "unlimited");
    if (r.found()) {
      std::printf("%zu buses {", r.secured_buses.size());
      for (std::size_t k = 0; k < r.secured_buses.size(); ++k) {
        std::printf("%s%d", k ? "," : "", r.secured_buses[k] + 1);
      }
      std::printf("}\n");
    } else {
      std::printf("not found within limits\n");
    }
  }
  return 0;
}
