// scenario_tool: the paper's "input file" interface as a CLI.
//
//   scenario_tool verify <file.scn>      run the UFDI verification model
//   scenario_tool synthesize <file.scn>  run countermeasure synthesis
//   scenario_tool print <file.scn>       parse and echo the scenario
//
// An optional `--trace FILE` (after the scenario file) journals structured
// solver/CEGIS events to FILE, one JSON object per line (see obs/trace.h).
// `--no-screen` disables the LP-relaxation front-end (the screen that can
// answer UNSAT without an SMT solve in verify mode, and the graph-seeded
// candidate order in synthesize mode); verdicts are identical either way.
// `--engine NAME` runs verify with a named structural engine preset
// (runtime::engine_presets: baseline, lrb, chrono-64, ...). `--portfolio N`
// verifies through an N-thread portfolio instead of one solver;
// `--portfolio-mode race|cube` picks racing clones or cube-and-conquer.
// Verdicts are identical across every engine and mode.
// Scenario files live in data/ (see data/README for the format).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/attack_model.h"
#include "core/scenario.h"
#include "core/synthesis.h"
#include "obs/trace.h"
#include "runtime/portfolio.h"
#include "screen/lp_screen.h"

using namespace psse;

int main(int argc, char** argv) {
  std::string trace_path;
  std::string engine_name;
  std::size_t portfolio = 0;
  bool portfolio_cube = false;
  bool screen = true;
  {
    std::vector<char*> args(argv, argv + argc);
    auto take_value = [&](std::size_t i, std::string& out) {
      if (i + 1 >= args.size()) return false;
      out = args[i + 1];
      args.erase(args.begin() + static_cast<std::ptrdiff_t>(i),
                 args.begin() + static_cast<std::ptrdiff_t>(i) + 2);
      return true;
    };
    for (std::size_t i = 1; i < args.size();) {
      if (std::strcmp(args[i], "--no-screen") == 0) {
        screen = false;
        args.erase(args.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (std::strcmp(args[i], "--trace") == 0 &&
                 i + 1 < args.size()) {
        if (!take_value(i, trace_path)) ++i;
      } else if (std::strcmp(args[i], "--engine") == 0 &&
                 i + 1 < args.size()) {
        if (!take_value(i, engine_name)) ++i;
      } else if (std::strcmp(args[i], "--portfolio") == 0 &&
                 i + 1 < args.size()) {
        std::string v;
        if (!take_value(i, v)) {
          ++i;
        } else {
          portfolio =
              static_cast<std::size_t>(std::strtoul(v.c_str(), nullptr, 10));
        }
      } else if (std::strcmp(args[i], "--portfolio-mode") == 0 &&
                 i + 1 < args.size()) {
        std::string v;
        if (!take_value(i, v)) {
          ++i;
        } else if (v == "cube") {
          portfolio_cube = true;
        } else if (v != "race") {
          std::fprintf(stderr,
                       "error: --portfolio-mode must be race or cube\n");
          return 2;
        }
      } else {
        ++i;
      }
    }
    argc = static_cast<int>(args.size());
    for (std::size_t i = 0; i < args.size(); ++i) argv[i] = args[i];
  }
  if (argc != 3) {
    std::fprintf(stderr,
                 "usage: %s verify|synthesize|print <scenario-file> "
                 "[--trace FILE] [--no-screen] [--engine NAME] "
                 "[--portfolio N] [--portfolio-mode race|cube]\n",
                 argv[0]);
    return 2;
  }
  const std::string mode = argv[1];
  core::Scenario sc;
  try {
    sc = core::Scenario::load(argv[2]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  if (mode == "print") {
    std::printf("%s", sc.to_string().c_str());
    return 0;
  }

  std::unique_ptr<obs::TraceSink> sink;
  if (!trace_path.empty()) {
    try {
      sink = obs::TraceSink::open(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const obs::Config trace{sink.get()};

  core::UfdiAttackModel model(sc.grid, sc.plan, sc.spec);
  model.set_trace(trace);
  if (!engine_name.empty()) {
    runtime::PortfolioMember preset;
    if (!runtime::engine_preset(engine_name, preset)) {
      std::fprintf(stderr, "error: unknown engine '%s'; presets:",
                   engine_name.c_str());
      for (const runtime::PortfolioMember& p : runtime::engine_presets()) {
        std::fprintf(stderr, " %s", p.label.c_str());
      }
      std::fprintf(stderr, "\n");
      return 2;
    }
    model.set_solver_options(preset.options);
  }
  if (mode == "verify") {
    if (screen) {
      // LP-relaxation front-end: a provably infeasible relaxation means no
      // attack exists under ANY resource caps, so the SMT solve is skipped
      // outright. Anything else (feasible, inconclusive, or a scenario the
      // screen cannot model) falls through to the full verification.
      try {
        screen::LpScreen lp(sc.grid, sc.plan, sc.spec);
        const screen::ScreenResult sr =
            lp.screen(core::ScenarioDelta::of(sc.spec));
        if (sr.verdict == screen::ScreenVerdict::kInfeasible) {
          std::printf(
              "UNSAT: no attack satisfies the scenario "
              "(LP screen, %.3fs)\n",
              sr.seconds);
          return 0;
        }
      } catch (const std::exception&) {
        // Not screenable -> verify normally.
      }
    }
    core::VerificationResult r;
    if (portfolio > 0) {
      runtime::PortfolioOptions popts;
      popts.num_threads = portfolio;
      popts.trace = trace;
      popts.mode = portfolio_cube ? runtime::PortfolioMode::kCubeAndConquer
                                  : runtime::PortfolioMode::kRace;
      if (!engine_name.empty()) {
        // A named engine narrows the portfolio to clones of that preset.
        runtime::PortfolioMember preset;
        (void)runtime::engine_preset(engine_name, preset);
        popts.members.assign(portfolio, preset);
      }
      runtime::PortfolioResult port = runtime::verify_portfolio(model, popts);
      r = std::move(port.verification);
      r.seconds = port.seconds;
    } else {
      r = model.verify();
    }
    switch (r.result) {
      case smt::SolveResult::Sat:
        std::printf("SAT: an undetected attack exists (%.3fs)\n%s",
                    r.seconds, r.attack->summary().c_str());
        return 0;
      case smt::SolveResult::Unsat:
        std::printf("UNSAT: no attack satisfies the scenario (%.3fs)\n",
                    r.seconds);
        return 0;
      default:
        std::printf("UNKNOWN: budget exhausted\n");
        return 3;
    }
  }
  if (mode == "synthesize") {
    core::SynthesisOptions opt = sc.synthesis;
    if (opt.max_secured_buses == 0) {
      opt.max_secured_buses = sc.grid.num_buses();
    }
    opt.trace = trace;
    opt.graph_seeding = screen;
    core::SecurityArchitectureSynthesizer syn(model, opt);
    core::SynthesisResult r = syn.synthesize();
    switch (r.status) {
      case core::SynthesisResult::Status::Found: {
        std::printf("architecture found in %.2fs after %d candidates:\n"
                    "secure buses:",
                    r.seconds, r.candidates_tried);
        for (grid::BusId b : r.secured_buses) std::printf(" %d", b + 1);
        std::printf("\n");
        return 0;
      }
      case core::SynthesisResult::Status::NoArchitecture:
        std::printf("no architecture within budget %d (%.2fs, %d "
                    "candidates)\n",
                    opt.max_secured_buses, r.seconds, r.candidates_tried);
        return 0;
      default:
        std::printf("timeout\n");
        return 3;
    }
  }
  std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
  return 2;
}
