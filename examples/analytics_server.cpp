// analytics_server: the attack-analytics service behind a line-oriented
// JSON protocol on stdin/stdout (DESIGN.md §6f).
//
//   analytics_server [--threads N] [--max-sessions K] [--memo N]
//                    [--time-limit S] [--portfolio-mode race|cube]
//                    [--trace FILE] [--stats-json]
//
// Each input line is one request (see service/json_protocol.h):
//
//   {"op":"verify","id":"q1","scenario_file":"data/ieee14_objective2.scn"}
//   {"op":"sweep","id":"s1","scenario_file":"data/ieee57_verification.scn",
//    "axis":"max-measurements","values":[4,8,12,16,20]}
//   {"op":"stats"}
//
// Responses come back one JSON line each, in *request order* (a printer
// thread joins futures FIFO), while solves themselves run concurrently on
// the service pool — so a cheap memoised query still waits for its turn on
// stdout but never for a solver. EOF drains everything in flight; with
// --stats-json a final service-stats line (p50/p95/p99 latencies, session
// and memo hit rates) follows the last response, and with --trace FILE the
// service journals per-request "service_request" events plus a closing
// "service_stats" event. --portfolio-mode cube switches every portfolio
// verify request to cube-and-conquer, letting clients written against the
// racing default be rerun under splitting without edits (a request that
// already asked for "portfolio_mode":"cube" is unaffected; verdicts are
// identical in either mode).
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <functional>
#include <future>
#include <iostream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "obs/trace.h"
#include "service/analytics_service.h"
#include "service/json_protocol.h"

using namespace psse;

namespace {

struct Config {
  std::size_t threads = 4;
  std::size_t max_sessions = 32;
  std::size_t memo = 4096;
  double time_limit_seconds = 0;
  std::string trace_path;
  bool stats_json = false;
  bool screen = true;  // LP-relaxation screen in front of each solve
  bool portfolio_cube = false;  // force cube mode on portfolio requests
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--max-sessions K] [--memo N] "
               "[--time-limit S] [--portfolio-mode race|cube] "
               "[--trace FILE] [--stats-json] [--no-screen]\n",
               argv0);
  return 2;
}

/// FIFO of deferred response renderers: the reader thread enqueues one
/// renderer per expected output line, the printer thread runs them in
/// order. Renderers that wait on a future block only the printer, never
/// the reader, so request intake keeps ahead of solving.
class ResponsePrinter {
 public:
  void enqueue(std::function<std::string()> render) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      queue_.push_back(std::move(render));
    }
    cv_.notify_one();
  }

  void run() {
    while (true) {
      std::function<std::string()> render;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return done_ || !queue_.empty(); });
        if (queue_.empty()) return;
        render = std::move(queue_.front());
        queue_.pop_front();
      }
      const std::string line = render();
      std::fputs(line.c_str(), stdout);
      std::fputc('\n', stdout);
      std::fflush(stdout);
    }
  }

  void finish() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      done_ = true;
    }
    cv_.notify_one();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<std::string()>> queue_;
  bool done_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto num = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      return true;
    };
    if (arg == "--threads") {
      if (!num(cfg.threads) || cfg.threads == 0) return usage(argv[0]);
    } else if (arg == "--max-sessions") {
      if (!num(cfg.max_sessions) || cfg.max_sessions == 0) {
        return usage(argv[0]);
      }
    } else if (arg == "--memo") {
      if (!num(cfg.memo)) return usage(argv[0]);
    } else if (arg == "--time-limit") {
      if (i + 1 >= argc) return usage(argv[0]);
      cfg.time_limit_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--portfolio-mode") {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string mode = argv[++i];
      if (mode == "cube") {
        cfg.portfolio_cube = true;
      } else if (mode != "race") {
        return usage(argv[0]);
      }
    } else if (arg == "--trace") {
      if (i + 1 >= argc) return usage(argv[0]);
      cfg.trace_path = argv[++i];
    } else if (arg == "--stats-json") {
      cfg.stats_json = true;
    } else if (arg == "--no-screen") {
      cfg.screen = false;
    } else {
      return usage(argv[0]);
    }
  }

  std::unique_ptr<obs::TraceSink> sink;
  if (!cfg.trace_path.empty()) {
    try {
      sink = obs::TraceSink::open(cfg.trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  service::ServiceOptions options;
  options.threads = cfg.threads;
  options.max_sessions = cfg.max_sessions;
  options.memo_capacity = cfg.memo;
  options.default_time_limit_seconds = cfg.time_limit_seconds;
  options.screen = cfg.screen;
  options.trace = obs::Config{sink.get()};
  service::AnalyticsService svc(options);

  ResponsePrinter printer;
  std::thread printerThread([&] { printer.run(); });

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    try {
      service::ParsedRequest req = service::parse_request(line);
      switch (req.op) {
        case service::ParsedRequest::Op::kStats:
          // Runs at print time, i.e. after every earlier response has been
          // rendered — the snapshot covers all preceding requests.
          printer.enqueue(
              [&svc] { return service::encode_stats(svc.stats()); });
          break;
        case service::ParsedRequest::Op::kVerify: {
          if (cfg.portfolio_cube) req.verify.portfolio_cube = true;
          std::shared_future<service::ServiceResponse> fut =
              svc.submit(std::move(req.verify)).share();
          printer.enqueue(
              [fut] { return service::encode_response(fut.get()); });
          break;
        }
        case service::ParsedRequest::Op::kSweep: {
          for (std::future<service::ServiceResponse>& f :
               svc.submit_sweep(req.sweep)) {
            std::shared_future<service::ServiceResponse> fut = f.share();
            printer.enqueue(
                [fut] { return service::encode_response(fut.get()); });
          }
          break;
        }
      }
    } catch (const std::exception& e) {
      const std::string message = e.what();
      printer.enqueue(
          [message] { return service::encode_error("", message); });
    }
  }

  printer.finish();
  printerThread.join();
  if (cfg.stats_json) {
    std::fputs(service::encode_stats(svc.stats()).c_str(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
  }
  svc.emit_stats();
  return 0;
}
