// Reproduction of Section IV-E: countermeasure synthesis on IEEE 14-bus
// under three progressively stronger adversaries (Fig. 3).
#include <cstdio>

#include "core/synthesis.h"
#include "grid/ieee_cases.h"

using namespace psse;

namespace {

grid::MeasurementPlan scenario_plan(const grid::Grid& g) {
  // Table III's taken set; the synthesised architecture provides all
  // measurement security; reference bus 1 hosts the reference PMU.
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  for (int id : {5, 10, 14, 19, 22, 27, 30, 35, 43, 52}) {
    plan.set_taken(id - 1, false);
  }
  return plan;
}

void run(const char* label, core::UfdiAttackModel& model, int budget,
         bool paperOrder) {
  core::SynthesisOptions opt;
  opt.max_secured_buses = budget;
  opt.must_secure = {0};
  opt.time_limit_seconds = 300;
  opt.counterexample_blocking = !paperOrder;
  core::SecurityArchitectureSynthesizer syn(model, opt);
  core::SynthesisResult r = syn.synthesize();
  std::printf("%s, budget %d: ", label, budget);
  switch (r.status) {
    case core::SynthesisResult::Status::Found: {
      std::printf("secure buses {");
      for (std::size_t k = 0; k < r.secured_buses.size(); ++k) {
        std::printf("%s%d", k ? ", " : "", r.secured_buses[k] + 1);
      }
      std::printf("}  (%d candidates, %.2fs)\n", r.candidates_tried,
                  r.seconds);
      break;
    }
    case core::SynthesisResult::Status::NoArchitecture:
      std::printf("NO ARCHITECTURE POSSIBLE (%d candidates, %.2fs)\n",
                  r.candidates_tried, r.seconds);
      break;
    case core::SynthesisResult::Status::Timeout:
      std::printf("timeout\n");
      break;
  }
}

}  // namespace

int main() {
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = scenario_plan(g);

  std::printf("== Scenario 1: limited adversary ==\n"
              "(admittances of lines 3 and 17 unknown; <= 12 measurements)\n");
  {
    core::AttackSpec spec;
    spec.set_unknown(2, g.num_lines());
    spec.set_unknown(16, g.num_lines());
    spec.max_altered_measurements = 12;
    core::UfdiAttackModel model(g, plan, spec);
    run("scenario 1", model, 4, true);  // paper: {1, 6, 7, 10}
  }

  std::printf("\n== Scenario 2: full knowledge, unlimited resources ==\n");
  {
    core::AttackSpec spec;
    core::UfdiAttackModel model(g, plan, spec);
    run("scenario 2", model, 4, true);  // paper: no solution
    run("scenario 2", model, 5, true);  // paper: {1, 3, 6, 8, 9}
  }

  std::printf("\n== Scenario 3: + topology poisoning (lines 5, 13) ==\n");
  {
    core::AttackSpec spec;
    spec.allow_topology_attacks = true;
    spec.excluded_meters_must_read_zero = false;  // see DESIGN.md section 4
    core::UfdiAttackModel model(g, plan, spec);
    run("scenario 3", model, 5, true);  // paper: no solution
    run("scenario 3", model, 6, true);  // paper: {1, 4, 6, 8, 10, 14}
  }
  return 0;
}
