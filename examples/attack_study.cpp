// Reproduction of Section III-I: the paper's IEEE 14-bus case study.
//
// Prints the Table II line data and Table III measurement configuration,
// then runs attack objectives 1 and 2, including the topology-poisoning
// variant, reporting the same measurement/bus sets as the paper.
#include <cstdio>

#include "core/attack_model.h"
#include "grid/ieee_cases.h"

using namespace psse;

namespace {

void print_table2(const grid::Grid& g, const core::AttackSpec& spec) {
  std::printf(
      "Table II - line data (1-based)\n"
      "line  from  to  admittance  known  in-topo  core  status-sec\n");
  for (grid::LineId i = 0; i < g.num_lines(); ++i) {
    const grid::Line& l = g.line(i);
    std::printf("%4d  %4d %3d  %9.2f  %5d  %7d  %4d  %10d\n", i + 1,
                l.from + 1, l.to + 1, l.admittance, spec.knows(i) ? 1 : 0,
                l.in_service ? 1 : 0, l.fixed ? 1 : 0,
                l.status_secured ? 1 : 0);
  }
}

void print_table3(const grid::MeasurementPlan& plan) {
  std::printf("\nTable III - measurement config (1-based id: T=taken "
              "S=secured A=accessible)\n");
  for (grid::MeasId m = 0; m < plan.num_potential(); ++m) {
    std::printf("%2d:%c%c%c%s", m + 1, plan.taken(m) ? 'T' : '-',
                plan.secured(m) ? 'S' : '-', plan.accessible(m) ? 'A' : '-',
                (m + 1) % 9 == 0 ? "\n" : "  ");
  }
  std::printf("\n");
}

void report(const char* label, const core::VerificationResult& r) {
  std::printf("\n%s -> %s (%.3fs)\n", label,
              r.result == smt::SolveResult::Sat
                  ? "SAT (attack exists)"
                  : r.result == smt::SolveResult::Unsat ? "UNSAT (no attack)"
                                                        : "UNKNOWN",
              r.seconds);
  if (r.attack.has_value()) std::printf("%s", r.attack->summary().c_str());
}

}  // namespace

int main() {
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = grid::cases::paper_plan14(g);

  // -------- Objective 1 --------
  core::AttackSpec o1;
  o1.set_unknown(2, g.num_lines());   // line 3
  o1.set_unknown(6, g.num_lines());   // line 7
  o1.set_unknown(16, g.num_lines());  // line 17
  o1.target_states = {8, 9};          // states 9 and 10
  o1.distinct_changes = {{8, 9}};
  o1.max_altered_measurements = 16;
  o1.max_compromised_buses = 7;

  print_table2(g, o1);
  print_table3(plan);

  std::printf("\n== Attack objective 1: states 9 and 10, different amounts ==\n");
  {
    core::UfdiAttackModel model(g, plan, o1);
    report("T_CZ=16, T_CB=7", model.verify());
  }
  {
    core::AttackSpec tight = o1;
    tight.max_altered_measurements = 15;
    tight.max_compromised_buses = 6;
    core::UfdiAttackModel model(g, plan, tight);
    report("T_CZ=15, T_CB=6 (paper: unsat)", model.verify());
  }
  {
    core::AttackSpec equal = o1;
    equal.distinct_changes.clear();
    equal.max_altered_measurements = 15;
    equal.max_compromised_buses = 6;
    core::UfdiAttackModel model(g, plan, equal);
    report("equal amounts, T_CZ=15, T_CB=6", model.verify());
  }

  std::printf("\n== Attack objective 2: state 12 only ==\n");
  core::AttackSpec o2;
  o2.target_states = {11};
  o2.attack_only_targets = true;
  {
    core::UfdiAttackModel model(g, plan, o2);
    report("base (paper: alter 12,32,39,46,53)", model.verify());
  }
  {
    grid::MeasurementPlan plan46 = plan;
    plan46.set_secured(45, true);
    core::UfdiAttackModel model(g, plan46, o2);
    report("measurement 46 secured (paper: unsat)", model.verify());

    core::AttackSpec topo = o2;
    topo.allow_topology_attacks = true;
    core::UfdiAttackModel model2(g, plan46, topo);
    report("topology attacks allowed (paper: exclude line 13; alter "
           "12,13,32,33,39,53)",
           model2.verify());
  }
  return 0;
}
