// Topology-poisoning exploration: for every switchable line of a test
// system, ask (a) whether excluding it enables an attack that the secured
// measurement set otherwise blocks, and (b) replay the combined attack
// end-to-end through the estimator to confirm stealth.
#include <cmath>
#include <cstdio>
#include <random>
#include <string>

#include "core/attack_model.h"
#include "core/attack_vector.h"
#include "estimation/topology_error.h"
#include "grid/dc_powerflow.h"
#include "grid/ieee_cases.h"

using namespace psse;

namespace {

// Why coordination matters: spoof a breaker status WITHOUT adjusting any
// measurement and watch the topology-error detector identify the line.
void naive_spoof_demo(const grid::Grid& g) {
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  grid::DcPowerFlow pf(g, 0);
  grid::DcPowerFlowResult op = pf.solve();
  std::mt19937_64 rng(3);
  grid::Vector telemetry =
      grid::generate_telemetry(g, op.theta, plan, 0.005, rng).values;
  for (grid::LineId i = 0; i < g.num_lines(); ++i) {
    if (g.line(i).fixed || !g.line(i).in_service) continue;
    grid::BreakerTelemetry breakers = grid::BreakerTelemetry::truthful(g);
    grid::apply_exclusion_attack(g, breakers, i);
    grid::MappedTopology poisoned = grid::TopologyProcessor::map(g, breakers);
    est::TopologyErrorReport rep = est::detect_topology_error(
        g, plan, poisoned, telemetry, 0.005);
    std::printf("naive spoof of line %2d: %s", i + 1,
                rep.anomaly ? "ANOMALY" : "missed");
    if (rep.suspected_line.has_value()) {
      std::printf(", detector blames line %d", *rep.suspected_line + 1);
    }
    std::printf("\n");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string caseName = argc > 1 ? argv[1] : "ieee14";
  grid::Grid g = grid::cases::by_name(caseName);
  std::printf("== topology poisoning study: %s ==\n", caseName.c_str());
  naive_spoof_demo(g);
  std::printf("\ncoordinated UFDI + topology attacks (per switchable "
              "line):\n");

  // Baseline defence: secure the injection meter of every bus adjacent to
  // a switchable line, which blocks the cheap measurement-only attacks.
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  std::vector<grid::LineId> switchable;
  for (grid::LineId i = 0; i < g.num_lines(); ++i) {
    if (!g.line(i).fixed && g.line(i).in_service) {
      switchable.push_back(i);
      plan.set_secured(plan.injection(g.line(i).from), true);
      plan.set_secured(plan.injection(g.line(i).to), true);
    }
  }
  std::printf("switchable (non-core) lines: %zu\n", switchable.size());

  for (grid::LineId i : switchable) {
    const grid::Line& line = g.line(i);
    // Target: shift the to-bus state only (skip if it's the reference).
    grid::BusId target = line.to != 0 ? line.to : line.from;
    core::AttackSpec base;
    base.target_states = {target};
    core::UfdiAttackModel noTopo(g, plan, base);
    bool blockedWithout = !noTopo.verify().feasible();

    core::AttackSpec topo = base;
    topo.allow_topology_attacks = true;
    topo.max_topology_changes = 1;
    core::UfdiAttackModel withTopo(g, plan, topo);
    core::VerificationResult r = withTopo.verify();

    std::printf("line %2d (%d-%d): measurement-only attack on state %d %s; "
                "with topology attack: %s",
                i + 1, line.from + 1, line.to + 1, target + 1,
                blockedWithout ? "BLOCKED" : "possible",
                r.feasible() ? "FEASIBLE" : "blocked");
    if (r.feasible() && !r.attack->excluded_lines.empty()) {
      std::printf(" (excludes line %d)", r.attack->excluded_lines[0] + 1);
      core::AttackReplay replay =
          core::replay_attack(g, plan, *r.attack, 0.005, 0.01);
      std::printf(" replay: %s, shift %.4f rad, gap %.2e",
                  replay.detected ? "DETECTED" : "stealthy",
                  std::fabs(replay.achieved_shift[target]),
                  replay.stealth_gap);
    }
    std::printf("\n");
  }
  return 0;
}
