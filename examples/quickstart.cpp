// Quickstart: the full pipeline on the IEEE 14-bus system.
//
//  1. Build the grid and a measurement plan; solve a DC operating point.
//  2. Generate noisy SCADA telemetry; run WLS state estimation.
//  3. Show that bad-data detection catches a gross error...
//  4. ...but not an SMT-synthesised UFDI attack, which silently shifts the
//     operator's view of the grid.
#include <cstdio>

#include "core/attack_model.h"
#include "core/attack_vector.h"
#include "estimation/bad_data.h"
#include "estimation/wls.h"
#include "grid/dc_powerflow.h"
#include "grid/ieee_cases.h"
#include "grid/jacobian.h"

using namespace psse;

int main() {
  std::printf("== psse quickstart: IEEE 14-bus ==\n\n");

  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = grid::cases::paper_plan14(g);
  std::printf("grid: %d buses, %d lines, %d/%d measurements taken\n",
              g.num_buses(), g.num_lines(), plan.num_taken(),
              plan.num_potential());

  // 1. Operating point.
  grid::DcPowerFlow pf(g, 0);
  grid::DcPowerFlowResult op = pf.solve();
  std::printf("DC power flow solved; theta ranges [%.4f, %.4f] rad\n",
              -op.theta.max_abs(), op.theta.max_abs());

  // 2. Telemetry + WLS.
  const double sigma = 0.01;
  std::mt19937_64 rng(2014);
  grid::Telemetry z = grid::generate_telemetry(g, op.theta, plan, sigma, rng);
  grid::JacobianModel model = grid::build_jacobian(g, plan);
  est::WlsEstimator estimator(model, sigma);
  est::WlsResult clean =
      estimator.estimate(grid::restrict_to_rows(model, z.values));
  est::BadDataDetector detector(estimator, 0.01);
  est::Chi2TestResult cleanTest = detector.chi2_test(clean);
  std::printf("\nclean estimate:    J = %8.3f (tau = %.3f)  -> %s\n",
              cleanTest.objective, cleanTest.threshold,
              cleanTest.bad_data ? "BAD DATA" : "accepted");

  // 3. A gross error is caught and identified.
  grid::Vector dirty = grid::restrict_to_rows(model, z.values);
  dirty[3] += 1.0;
  est::WlsResult bad = estimator.estimate(dirty);
  est::Chi2TestResult badTest = detector.chi2_test(bad);
  est::LnrTestResult lnr = detector.lnr_test(bad);
  std::printf("gross error:       J = %8.3f (tau = %.3f)  -> %s (LNR row %d)\n",
              badTest.objective, badTest.threshold,
              badTest.bad_data ? "BAD DATA" : "accepted", lnr.suspect_row);

  // 4. A UFDI attack on states 9 & 10 sails through.
  core::AttackSpec spec;
  spec.target_states = {8, 9};
  core::UfdiAttackModel attackModel(g, plan, spec);
  core::VerificationResult v = attackModel.verify();
  if (!v.feasible()) {
    std::printf("no UFDI attack found (unexpected)\n");
    return 1;
  }
  std::printf("\nSMT found a stealthy attack in %.3fs:\n%s",
              v.seconds, v.attack->summary().c_str());
  core::AttackReplay replay =
      core::replay_attack(g, plan, *v.attack, sigma, 0.01, 0.1);
  std::printf("replayed attack:   J = %8.3f (tau = %.3f)  -> %s\n",
              replay.attacked_objective, replay.detection_threshold,
              replay.detected ? "BAD DATA" : "accepted (stealthy!)");
  std::printf("estimate of bus 10 silently shifted by %.4f rad\n",
              replay.achieved_shift[9]);
  core::AttackImpact impact =
      core::attack_impact(g, *v.attack, replay.lambda);
  std::printf("operator's worst distorted view: line %d flow off by %.3f "
              "p.u., bus %d injection off by %.3f p.u.\n",
              impact.worst_line + 1, impact.max_flow_distortion,
              impact.worst_bus + 1, impact.max_injection_distortion);
  return 0;
}
