// batch_runner: fan a directory of scenario files across the analytics
// service.
//
//   batch_runner [--threads N] [--portfolio M] [--portfolio-mode race|cube]
//                [--time-limit S] [--trace FILE] <dir>
//
// Every `.scn` file under <dir> (sorted, non-recursive) becomes one
// service request; each prints exactly one JSON line to stdout, in file
// order, so the output is directly `jq`-able:
//
//   {"scenario":"ieee14_verification","verdict":"SAT","seconds":0.012,
//    "decisions":1201,"conflicts":54,"pivots":3310,
//    "fingerprint":"91c5ad3e2f08b1d4"}
//
// Routing through service::AnalyticsService means scenarios sharing a
// family (same grid/plan/base spec, different resource caps or secured
// sets) reuse one warm solver session, and repeated scenarios answer from
// the result memo. With --portfolio M each request races an M-member
// diversified portfolio (runtime::verify_portfolio) on fresh clones
// instead, and the line additionally reports the winning configuration;
// --portfolio-mode cube splits each instance with cube-and-conquer rather
// than racing full copies (verdicts are identical either way).
// With --trace FILE the service journals one "service_request" event per
// scenario plus a closing "service_stats" event to FILE.
//
// Scenarios that fail to parse or solve produce an "error" line instead of
// aborting the batch; the exit status is 1 when *any* line carried an
// error, so CI pipelines fail loudly instead of trusting a half-empty
// batch.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/scenario.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "service/analytics_service.h"

using namespace psse;

namespace {

const char* verdict_name(smt::SolveResult r) {
  switch (r) {
    case smt::SolveResult::Sat:
      return "SAT";
    case smt::SolveResult::Unsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

struct Config {
  std::size_t threads = 4;
  std::size_t portfolio = 0;  // 0 = warm single-session verify per scenario
  bool portfolio_cube = false;  // cube-and-conquer instead of racing
  double time_limit_seconds = 0;
  std::string trace_path;
  std::string dir;
  bool screen = true;  // LP-relaxation screen in front of each solve
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--portfolio M] "
               "[--portfolio-mode race|cube] [--time-limit S] "
               "[--trace FILE] [--no-screen] <scenario-dir>\n",
               argv0);
  return 2;
}

std::string fp_hex(std::uint64_t fp) {
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto num = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      return out > 0;
    };
    if (arg == "--threads") {
      if (!num(cfg.threads)) return usage(argv[0]);
    } else if (arg == "--portfolio") {
      if (!num(cfg.portfolio)) return usage(argv[0]);
    } else if (arg == "--portfolio-mode") {
      if (i + 1 >= argc) return usage(argv[0]);
      const std::string mode = argv[++i];
      if (mode == "cube") {
        cfg.portfolio_cube = true;
      } else if (mode != "race") {
        return usage(argv[0]);
      }
    } else if (arg == "--time-limit") {
      if (i + 1 >= argc) return usage(argv[0]);
      cfg.time_limit_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--trace") {
      if (i + 1 >= argc) return usage(argv[0]);
      cfg.trace_path = argv[++i];
    } else if (arg == "--no-screen") {
      cfg.screen = false;
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (cfg.dir.empty()) {
      cfg.dir = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.dir.empty()) return usage(argv[0]);

  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(cfg.dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read directory %s: %s\n",
                 cfg.dir.c_str(), ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "error: no .scn files in %s\n", cfg.dir.c_str());
    return 1;
  }

  std::unique_ptr<obs::TraceSink> sink;
  if (!cfg.trace_path.empty()) {
    try {
      sink = obs::TraceSink::open(cfg.trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  service::ServiceOptions options;
  options.threads = cfg.threads;
  options.default_time_limit_seconds = cfg.time_limit_seconds;
  options.screen = cfg.screen;
  options.trace = obs::Config{sink.get()};
  service::AnalyticsService svc(options);

  // Load + submit everything first (parse failures become error lines with
  // no service round-trip), then print responses in file order.
  struct Job {
    std::string name;
    std::string parse_error;
    std::future<service::ServiceResponse> response;
  };
  std::vector<Job> jobs;
  jobs.reserve(files.size());
  for (const std::filesystem::path& path : files) {
    Job job;
    job.name = path.stem().string();
    try {
      service::ServiceRequest req;
      req.id = job.name;
      req.scenario = core::Scenario::load(path.string());
      req.time_limit_seconds = cfg.time_limit_seconds;
      req.portfolio = cfg.portfolio;
      req.portfolio_cube = cfg.portfolio_cube;
      job.response = svc.submit(std::move(req));
    } catch (const std::exception& e) {
      job.parse_error = e.what();
    }
    jobs.push_back(std::move(job));
  }

  bool anyError = false;
  for (Job& job : jobs) {
    obs::JsonWriter w;
    w.field("scenario", job.name);
    if (!job.parse_error.empty()) {
      w.field("error", std::string_view(job.parse_error));
      anyError = true;
    } else {
      const service::ServiceResponse r = job.response.get();
      if (!r.ok()) {
        w.field("error", std::string_view(r.error));
        anyError = true;
      } else {
        w.field("verdict", verdict_name(r.verdict));
        w.field("seconds", r.solve_seconds);
        if (r.screened) w.field("screened", true);
        w.field("decisions", r.decisions);
        w.field("conflicts", r.conflicts);
        w.field("pivots", r.pivots);
        if (!r.winner.empty()) w.field("winner", r.winner);
        w.field("fingerprint", fp_hex(r.fingerprint));
      }
    }
    std::puts(w.str().c_str());
  }
  svc.emit_stats();
  return anyError ? 1 : 0;
}
