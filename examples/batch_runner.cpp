// batch_runner: fan a directory of scenario files across the thread pool.
//
//   batch_runner [--threads N] [--portfolio M] [--time-limit S]
//                [--trace FILE] <dir>
//
// Every `.scn` file under <dir> (sorted, non-recursive) becomes one
// verification job on the pool; each job prints exactly one JSON line to
// stdout, so the output is directly `jq`-able:
//
//   {"scenario":"ieee14_verification","verdict":"SAT","seconds":0.012,
//    "decisions":1201,"conflicts":54,"pivots":3310}
//
// With --portfolio M each job races an M-member diversified portfolio
// (runtime::verify_portfolio) instead of a single serial solve, and the
// line additionally reports the winning configuration. With --trace FILE
// every solve additionally journals structured events (obs::TraceSink,
// one JSON object per line) to FILE — the sink is thread-safe, so all
// pool workers share it. Scenarios that fail to parse produce an "error"
// line instead of aborting the batch.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/attack_model.h"
#include "core/scenario.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "runtime/portfolio.h"
#include "runtime/thread_pool.h"

using namespace psse;

namespace {

const char* verdict_name(smt::SolveResult r) {
  switch (r) {
    case smt::SolveResult::Sat:
      return "SAT";
    case smt::SolveResult::Unsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

struct Config {
  std::size_t threads = 4;
  std::size_t portfolio = 0;  // 0 = plain serial verify per scenario
  double time_limit_seconds = 0;
  std::string trace_path;
  std::string dir;
};

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--threads N] [--portfolio M] [--time-limit S] "
               "[--trace FILE] <scenario-dir>\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto num = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
      return out > 0;
    };
    if (arg == "--threads") {
      if (!num(cfg.threads)) return usage(argv[0]);
    } else if (arg == "--portfolio") {
      if (!num(cfg.portfolio)) return usage(argv[0]);
    } else if (arg == "--time-limit") {
      if (i + 1 >= argc) return usage(argv[0]);
      cfg.time_limit_seconds = std::strtod(argv[++i], nullptr);
    } else if (arg == "--trace") {
      if (i + 1 >= argc) return usage(argv[0]);
      cfg.trace_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (cfg.dir.empty()) {
      cfg.dir = arg;
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.dir.empty()) return usage(argv[0]);

  std::vector<std::filesystem::path> files;
  std::error_code ec;
  for (const auto& entry :
       std::filesystem::directory_iterator(cfg.dir, ec)) {
    if (entry.is_regular_file() && entry.path().extension() == ".scn") {
      files.push_back(entry.path());
    }
  }
  if (ec) {
    std::fprintf(stderr, "error: cannot read directory %s: %s\n",
                 cfg.dir.c_str(), ec.message().c_str());
    return 1;
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "error: no .scn files in %s\n", cfg.dir.c_str());
    return 1;
  }

  smt::Budget budget;
  if (cfg.time_limit_seconds > 0) {
    budget.max_time = std::chrono::milliseconds(
        static_cast<long>(cfg.time_limit_seconds * 1000));
  }

  std::unique_ptr<obs::TraceSink> sink;
  if (!cfg.trace_path.empty()) {
    try {
      sink = obs::TraceSink::open(cfg.trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const obs::Config trace{sink.get()};

  // One scenario per pool task; stdout is the shared resource, so each
  // task formats its whole line first and prints it under the mutex.
  std::mutex outMu;
  bool anyError = false;
  runtime::ThreadPool pool(cfg.threads);
  std::vector<std::future<void>> jobs;
  jobs.reserve(files.size());
  for (const std::filesystem::path& path : files) {
    jobs.push_back(pool.submit([&, path] {
      const std::string name = path.stem().string();
      std::string line;
      bool failed = false;
      try {
        core::Scenario sc = core::Scenario::load(path.string());
        core::UfdiAttackModel model(sc.grid, sc.plan, sc.spec);
        model.set_trace(trace);
        core::VerificationResult r;
        std::string winner;
        if (cfg.portfolio > 0) {
          runtime::PortfolioOptions popt;
          popt.num_threads = cfg.portfolio;
          popt.budget = budget;
          popt.trace = trace;
          runtime::PortfolioResult pr =
              runtime::verify_portfolio(model, popt);
          r = std::move(pr.verification);
          r.seconds = pr.seconds;
          if (pr.winner >= 0) {
            winner = pr.members[static_cast<std::size_t>(pr.winner)].label;
          }
        } else {
          r = model.verify(budget);
        }
        obs::JsonWriter w;
        w.field("scenario", name);
        w.field("verdict", verdict_name(r.result));
        w.field("seconds", r.seconds);
        w.field("decisions", r.stats.sat.decisions);
        w.field("conflicts", r.stats.sat.conflicts);
        w.field("pivots", r.stats.pivots);
        if (!winner.empty()) w.field("winner", winner);
        line = w.str();
        if (trace.enabled()) {
          obs::Event("batch_scenario")
              .field("scenario", name)
              .field("verdict", verdict_name(r.result))
              .field("seconds", r.seconds)
              .emit(trace);
        }
      } catch (const std::exception& e) {
        obs::JsonWriter w;
        w.field("scenario", name);
        w.field("error", std::string_view(e.what()));
        line = w.str();
        failed = true;
      }
      std::lock_guard<std::mutex> lock(outMu);
      std::puts(line.c_str());
      if (failed) anyError = true;
    }));
  }
  for (std::future<void>& j : jobs) j.wait();
  return anyError ? 1 : 0;
}
