file(REMOVE_RECURSE
  "CMakeFiles/fig4c_verification_resources.dir/fig4c_verification_resources.cpp.o"
  "CMakeFiles/fig4c_verification_resources.dir/fig4c_verification_resources.cpp.o.d"
  "fig4c_verification_resources"
  "fig4c_verification_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4c_verification_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
