# Empty dependencies file for fig4c_verification_resources.
# This may be replaced when dependencies are built.
