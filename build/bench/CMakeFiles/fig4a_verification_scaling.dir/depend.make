# Empty dependencies file for fig4a_verification_scaling.
# This may be replaced when dependencies are built.
