file(REMOVE_RECURSE
  "CMakeFiles/fig4a_verification_scaling.dir/fig4a_verification_scaling.cpp.o"
  "CMakeFiles/fig4a_verification_scaling.dir/fig4a_verification_scaling.cpp.o.d"
  "fig4a_verification_scaling"
  "fig4a_verification_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_verification_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
