file(REMOVE_RECURSE
  "CMakeFiles/fig5d_synthesis_unsat.dir/fig5d_synthesis_unsat.cpp.o"
  "CMakeFiles/fig5d_synthesis_unsat.dir/fig5d_synthesis_unsat.cpp.o.d"
  "fig5d_synthesis_unsat"
  "fig5d_synthesis_unsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5d_synthesis_unsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
