# Empty dependencies file for fig5d_synthesis_unsat.
# This may be replaced when dependencies are built.
