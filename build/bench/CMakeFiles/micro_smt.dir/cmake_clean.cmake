file(REMOVE_RECURSE
  "CMakeFiles/micro_smt.dir/micro_smt.cpp.o"
  "CMakeFiles/micro_smt.dir/micro_smt.cpp.o.d"
  "micro_smt"
  "micro_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
