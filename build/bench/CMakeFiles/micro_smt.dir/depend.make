# Empty dependencies file for micro_smt.
# This may be replaced when dependencies are built.
