# Empty compiler generated dependencies file for table4_memory.
# This may be replaced when dependencies are built.
