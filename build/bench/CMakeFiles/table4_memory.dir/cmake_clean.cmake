file(REMOVE_RECURSE
  "CMakeFiles/table4_memory.dir/table4_memory.cpp.o"
  "CMakeFiles/table4_memory.dir/table4_memory.cpp.o.d"
  "table4_memory"
  "table4_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
