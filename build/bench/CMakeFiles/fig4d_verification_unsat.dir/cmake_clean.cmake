file(REMOVE_RECURSE
  "CMakeFiles/fig4d_verification_unsat.dir/fig4d_verification_unsat.cpp.o"
  "CMakeFiles/fig4d_verification_unsat.dir/fig4d_verification_unsat.cpp.o.d"
  "fig4d_verification_unsat"
  "fig4d_verification_unsat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4d_verification_unsat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
