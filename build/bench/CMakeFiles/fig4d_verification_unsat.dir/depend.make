# Empty dependencies file for fig4d_verification_unsat.
# This may be replaced when dependencies are built.
