# Empty compiler generated dependencies file for fig5c_synthesis_resources.
# This may be replaced when dependencies are built.
