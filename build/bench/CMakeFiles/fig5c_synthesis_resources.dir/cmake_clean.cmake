file(REMOVE_RECURSE
  "CMakeFiles/fig5c_synthesis_resources.dir/fig5c_synthesis_resources.cpp.o"
  "CMakeFiles/fig5c_synthesis_resources.dir/fig5c_synthesis_resources.cpp.o.d"
  "fig5c_synthesis_resources"
  "fig5c_synthesis_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5c_synthesis_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
