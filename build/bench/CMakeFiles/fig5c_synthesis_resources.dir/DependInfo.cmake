
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig5c_synthesis_resources.cpp" "bench/CMakeFiles/fig5c_synthesis_resources.dir/fig5c_synthesis_resources.cpp.o" "gcc" "bench/CMakeFiles/fig5c_synthesis_resources.dir/fig5c_synthesis_resources.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/psse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/psse_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/psse_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/psse_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
