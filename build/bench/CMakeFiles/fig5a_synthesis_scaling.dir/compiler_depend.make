# Empty compiler generated dependencies file for fig5a_synthesis_scaling.
# This may be replaced when dependencies are built.
