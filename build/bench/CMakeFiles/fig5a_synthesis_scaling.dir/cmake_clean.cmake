file(REMOVE_RECURSE
  "CMakeFiles/fig5a_synthesis_scaling.dir/fig5a_synthesis_scaling.cpp.o"
  "CMakeFiles/fig5a_synthesis_scaling.dir/fig5a_synthesis_scaling.cpp.o.d"
  "fig5a_synthesis_scaling"
  "fig5a_synthesis_scaling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_synthesis_scaling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
