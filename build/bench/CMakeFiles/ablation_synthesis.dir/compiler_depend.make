# Empty compiler generated dependencies file for ablation_synthesis.
# This may be replaced when dependencies are built.
