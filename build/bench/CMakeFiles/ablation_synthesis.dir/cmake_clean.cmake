file(REMOVE_RECURSE
  "CMakeFiles/ablation_synthesis.dir/ablation_synthesis.cpp.o"
  "CMakeFiles/ablation_synthesis.dir/ablation_synthesis.cpp.o.d"
  "ablation_synthesis"
  "ablation_synthesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_synthesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
