# Empty compiler generated dependencies file for micro_estimation.
# This may be replaced when dependencies are built.
