file(REMOVE_RECURSE
  "CMakeFiles/micro_estimation.dir/micro_estimation.cpp.o"
  "CMakeFiles/micro_estimation.dir/micro_estimation.cpp.o.d"
  "micro_estimation"
  "micro_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
