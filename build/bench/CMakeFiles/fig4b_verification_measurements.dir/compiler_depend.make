# Empty compiler generated dependencies file for fig4b_verification_measurements.
# This may be replaced when dependencies are built.
