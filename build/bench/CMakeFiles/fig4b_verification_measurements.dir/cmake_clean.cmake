file(REMOVE_RECURSE
  "CMakeFiles/fig4b_verification_measurements.dir/fig4b_verification_measurements.cpp.o"
  "CMakeFiles/fig4b_verification_measurements.dir/fig4b_verification_measurements.cpp.o.d"
  "fig4b_verification_measurements"
  "fig4b_verification_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_verification_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
