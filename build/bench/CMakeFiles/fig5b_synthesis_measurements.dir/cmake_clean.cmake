file(REMOVE_RECURSE
  "CMakeFiles/fig5b_synthesis_measurements.dir/fig5b_synthesis_measurements.cpp.o"
  "CMakeFiles/fig5b_synthesis_measurements.dir/fig5b_synthesis_measurements.cpp.o.d"
  "fig5b_synthesis_measurements"
  "fig5b_synthesis_measurements.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5b_synthesis_measurements.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
