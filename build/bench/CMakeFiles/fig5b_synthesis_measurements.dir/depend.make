# Empty dependencies file for fig5b_synthesis_measurements.
# This may be replaced when dependencies are built.
