file(REMOVE_RECURSE
  "CMakeFiles/grid_security_report.dir/grid_security_report.cpp.o"
  "CMakeFiles/grid_security_report.dir/grid_security_report.cpp.o.d"
  "grid_security_report"
  "grid_security_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_security_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
