# Empty dependencies file for grid_security_report.
# This may be replaced when dependencies are built.
