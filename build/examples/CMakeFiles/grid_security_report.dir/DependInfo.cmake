
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/grid_security_report.cpp" "examples/CMakeFiles/grid_security_report.dir/grid_security_report.cpp.o" "gcc" "examples/CMakeFiles/grid_security_report.dir/grid_security_report.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/psse_core.dir/DependInfo.cmake"
  "/root/repo/build/src/smt/CMakeFiles/psse_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/psse_estimation.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/psse_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
