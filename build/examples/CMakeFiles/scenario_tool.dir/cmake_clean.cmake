file(REMOVE_RECURSE
  "CMakeFiles/scenario_tool.dir/scenario_tool.cpp.o"
  "CMakeFiles/scenario_tool.dir/scenario_tool.cpp.o.d"
  "scenario_tool"
  "scenario_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
