# Empty compiler generated dependencies file for scenario_tool.
# This may be replaced when dependencies are built.
