file(REMOVE_RECURSE
  "CMakeFiles/synthesis_study.dir/synthesis_study.cpp.o"
  "CMakeFiles/synthesis_study.dir/synthesis_study.cpp.o.d"
  "synthesis_study"
  "synthesis_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
