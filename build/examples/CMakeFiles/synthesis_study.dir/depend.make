# Empty dependencies file for synthesis_study.
# This may be replaced when dependencies are built.
