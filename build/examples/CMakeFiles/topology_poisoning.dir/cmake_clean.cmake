file(REMOVE_RECURSE
  "CMakeFiles/topology_poisoning.dir/topology_poisoning.cpp.o"
  "CMakeFiles/topology_poisoning.dir/topology_poisoning.cpp.o.d"
  "topology_poisoning"
  "topology_poisoning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_poisoning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
