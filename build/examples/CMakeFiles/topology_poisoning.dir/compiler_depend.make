# Empty compiler generated dependencies file for topology_poisoning.
# This may be replaced when dependencies are built.
