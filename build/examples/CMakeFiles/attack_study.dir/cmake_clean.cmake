file(REMOVE_RECURSE
  "CMakeFiles/attack_study.dir/attack_study.cpp.o"
  "CMakeFiles/attack_study.dir/attack_study.cpp.o.d"
  "attack_study"
  "attack_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
