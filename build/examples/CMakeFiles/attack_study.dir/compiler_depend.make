# Empty compiler generated dependencies file for attack_study.
# This may be replaced when dependencies are built.
