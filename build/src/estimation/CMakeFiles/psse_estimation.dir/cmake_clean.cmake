file(REMOVE_RECURSE
  "CMakeFiles/psse_estimation.dir/bad_data.cpp.o"
  "CMakeFiles/psse_estimation.dir/bad_data.cpp.o.d"
  "CMakeFiles/psse_estimation.dir/chi2.cpp.o"
  "CMakeFiles/psse_estimation.dir/chi2.cpp.o.d"
  "CMakeFiles/psse_estimation.dir/observability.cpp.o"
  "CMakeFiles/psse_estimation.dir/observability.cpp.o.d"
  "CMakeFiles/psse_estimation.dir/pmu.cpp.o"
  "CMakeFiles/psse_estimation.dir/pmu.cpp.o.d"
  "CMakeFiles/psse_estimation.dir/topology_error.cpp.o"
  "CMakeFiles/psse_estimation.dir/topology_error.cpp.o.d"
  "CMakeFiles/psse_estimation.dir/wls.cpp.o"
  "CMakeFiles/psse_estimation.dir/wls.cpp.o.d"
  "libpsse_estimation.a"
  "libpsse_estimation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psse_estimation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
