
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimation/bad_data.cpp" "src/estimation/CMakeFiles/psse_estimation.dir/bad_data.cpp.o" "gcc" "src/estimation/CMakeFiles/psse_estimation.dir/bad_data.cpp.o.d"
  "/root/repo/src/estimation/chi2.cpp" "src/estimation/CMakeFiles/psse_estimation.dir/chi2.cpp.o" "gcc" "src/estimation/CMakeFiles/psse_estimation.dir/chi2.cpp.o.d"
  "/root/repo/src/estimation/observability.cpp" "src/estimation/CMakeFiles/psse_estimation.dir/observability.cpp.o" "gcc" "src/estimation/CMakeFiles/psse_estimation.dir/observability.cpp.o.d"
  "/root/repo/src/estimation/pmu.cpp" "src/estimation/CMakeFiles/psse_estimation.dir/pmu.cpp.o" "gcc" "src/estimation/CMakeFiles/psse_estimation.dir/pmu.cpp.o.d"
  "/root/repo/src/estimation/topology_error.cpp" "src/estimation/CMakeFiles/psse_estimation.dir/topology_error.cpp.o" "gcc" "src/estimation/CMakeFiles/psse_estimation.dir/topology_error.cpp.o.d"
  "/root/repo/src/estimation/wls.cpp" "src/estimation/CMakeFiles/psse_estimation.dir/wls.cpp.o" "gcc" "src/estimation/CMakeFiles/psse_estimation.dir/wls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/grid/CMakeFiles/psse_grid.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
