file(REMOVE_RECURSE
  "libpsse_estimation.a"
)
