# Empty compiler generated dependencies file for psse_estimation.
# This may be replaced when dependencies are built.
