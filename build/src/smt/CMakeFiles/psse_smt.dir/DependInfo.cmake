
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smt/bigint.cpp" "src/smt/CMakeFiles/psse_smt.dir/bigint.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/bigint.cpp.o.d"
  "/root/repo/src/smt/linear_expr.cpp" "src/smt/CMakeFiles/psse_smt.dir/linear_expr.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/linear_expr.cpp.o.d"
  "/root/repo/src/smt/rational.cpp" "src/smt/CMakeFiles/psse_smt.dir/rational.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/rational.cpp.o.d"
  "/root/repo/src/smt/sat_solver.cpp" "src/smt/CMakeFiles/psse_smt.dir/sat_solver.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/sat_solver.cpp.o.d"
  "/root/repo/src/smt/simplex.cpp" "src/smt/CMakeFiles/psse_smt.dir/simplex.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/simplex.cpp.o.d"
  "/root/repo/src/smt/solver.cpp" "src/smt/CMakeFiles/psse_smt.dir/solver.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/solver.cpp.o.d"
  "/root/repo/src/smt/term.cpp" "src/smt/CMakeFiles/psse_smt.dir/term.cpp.o" "gcc" "src/smt/CMakeFiles/psse_smt.dir/term.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
