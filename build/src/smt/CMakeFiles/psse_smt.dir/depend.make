# Empty dependencies file for psse_smt.
# This may be replaced when dependencies are built.
