file(REMOVE_RECURSE
  "libpsse_smt.a"
)
