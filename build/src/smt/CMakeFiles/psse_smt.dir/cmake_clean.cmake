file(REMOVE_RECURSE
  "CMakeFiles/psse_smt.dir/bigint.cpp.o"
  "CMakeFiles/psse_smt.dir/bigint.cpp.o.d"
  "CMakeFiles/psse_smt.dir/linear_expr.cpp.o"
  "CMakeFiles/psse_smt.dir/linear_expr.cpp.o.d"
  "CMakeFiles/psse_smt.dir/rational.cpp.o"
  "CMakeFiles/psse_smt.dir/rational.cpp.o.d"
  "CMakeFiles/psse_smt.dir/sat_solver.cpp.o"
  "CMakeFiles/psse_smt.dir/sat_solver.cpp.o.d"
  "CMakeFiles/psse_smt.dir/simplex.cpp.o"
  "CMakeFiles/psse_smt.dir/simplex.cpp.o.d"
  "CMakeFiles/psse_smt.dir/solver.cpp.o"
  "CMakeFiles/psse_smt.dir/solver.cpp.o.d"
  "CMakeFiles/psse_smt.dir/term.cpp.o"
  "CMakeFiles/psse_smt.dir/term.cpp.o.d"
  "libpsse_smt.a"
  "libpsse_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psse_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
