
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/grid/dc_powerflow.cpp" "src/grid/CMakeFiles/psse_grid.dir/dc_powerflow.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/dc_powerflow.cpp.o.d"
  "/root/repo/src/grid/grid.cpp" "src/grid/CMakeFiles/psse_grid.dir/grid.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/grid.cpp.o.d"
  "/root/repo/src/grid/ieee_cases.cpp" "src/grid/CMakeFiles/psse_grid.dir/ieee_cases.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/ieee_cases.cpp.o.d"
  "/root/repo/src/grid/jacobian.cpp" "src/grid/CMakeFiles/psse_grid.dir/jacobian.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/jacobian.cpp.o.d"
  "/root/repo/src/grid/matrix.cpp" "src/grid/CMakeFiles/psse_grid.dir/matrix.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/matrix.cpp.o.d"
  "/root/repo/src/grid/measurement.cpp" "src/grid/CMakeFiles/psse_grid.dir/measurement.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/measurement.cpp.o.d"
  "/root/repo/src/grid/topology_processor.cpp" "src/grid/CMakeFiles/psse_grid.dir/topology_processor.cpp.o" "gcc" "src/grid/CMakeFiles/psse_grid.dir/topology_processor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
