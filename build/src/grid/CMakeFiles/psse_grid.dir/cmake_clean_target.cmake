file(REMOVE_RECURSE
  "libpsse_grid.a"
)
