file(REMOVE_RECURSE
  "CMakeFiles/psse_grid.dir/dc_powerflow.cpp.o"
  "CMakeFiles/psse_grid.dir/dc_powerflow.cpp.o.d"
  "CMakeFiles/psse_grid.dir/grid.cpp.o"
  "CMakeFiles/psse_grid.dir/grid.cpp.o.d"
  "CMakeFiles/psse_grid.dir/ieee_cases.cpp.o"
  "CMakeFiles/psse_grid.dir/ieee_cases.cpp.o.d"
  "CMakeFiles/psse_grid.dir/jacobian.cpp.o"
  "CMakeFiles/psse_grid.dir/jacobian.cpp.o.d"
  "CMakeFiles/psse_grid.dir/matrix.cpp.o"
  "CMakeFiles/psse_grid.dir/matrix.cpp.o.d"
  "CMakeFiles/psse_grid.dir/measurement.cpp.o"
  "CMakeFiles/psse_grid.dir/measurement.cpp.o.d"
  "CMakeFiles/psse_grid.dir/topology_processor.cpp.o"
  "CMakeFiles/psse_grid.dir/topology_processor.cpp.o.d"
  "libpsse_grid.a"
  "libpsse_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psse_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
