# Empty compiler generated dependencies file for psse_grid.
# This may be replaced when dependencies are built.
