# Empty dependencies file for psse_core.
# This may be replaced when dependencies are built.
