file(REMOVE_RECURSE
  "libpsse_core.a"
)
