
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/attack_model.cpp" "src/core/CMakeFiles/psse_core.dir/attack_model.cpp.o" "gcc" "src/core/CMakeFiles/psse_core.dir/attack_model.cpp.o.d"
  "/root/repo/src/core/attack_vector.cpp" "src/core/CMakeFiles/psse_core.dir/attack_vector.cpp.o" "gcc" "src/core/CMakeFiles/psse_core.dir/attack_vector.cpp.o.d"
  "/root/repo/src/core/baseline_defense.cpp" "src/core/CMakeFiles/psse_core.dir/baseline_defense.cpp.o" "gcc" "src/core/CMakeFiles/psse_core.dir/baseline_defense.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/core/CMakeFiles/psse_core.dir/scenario.cpp.o" "gcc" "src/core/CMakeFiles/psse_core.dir/scenario.cpp.o.d"
  "/root/repo/src/core/security_metrics.cpp" "src/core/CMakeFiles/psse_core.dir/security_metrics.cpp.o" "gcc" "src/core/CMakeFiles/psse_core.dir/security_metrics.cpp.o.d"
  "/root/repo/src/core/synthesis.cpp" "src/core/CMakeFiles/psse_core.dir/synthesis.cpp.o" "gcc" "src/core/CMakeFiles/psse_core.dir/synthesis.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/smt/CMakeFiles/psse_smt.dir/DependInfo.cmake"
  "/root/repo/build/src/grid/CMakeFiles/psse_grid.dir/DependInfo.cmake"
  "/root/repo/build/src/estimation/CMakeFiles/psse_estimation.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
