file(REMOVE_RECURSE
  "CMakeFiles/psse_core.dir/attack_model.cpp.o"
  "CMakeFiles/psse_core.dir/attack_model.cpp.o.d"
  "CMakeFiles/psse_core.dir/attack_vector.cpp.o"
  "CMakeFiles/psse_core.dir/attack_vector.cpp.o.d"
  "CMakeFiles/psse_core.dir/baseline_defense.cpp.o"
  "CMakeFiles/psse_core.dir/baseline_defense.cpp.o.d"
  "CMakeFiles/psse_core.dir/scenario.cpp.o"
  "CMakeFiles/psse_core.dir/scenario.cpp.o.d"
  "CMakeFiles/psse_core.dir/security_metrics.cpp.o"
  "CMakeFiles/psse_core.dir/security_metrics.cpp.o.d"
  "CMakeFiles/psse_core.dir/synthesis.cpp.o"
  "CMakeFiles/psse_core.dir/synthesis.cpp.o.d"
  "libpsse_core.a"
  "libpsse_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/psse_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
