add_test([=[ArchitectureValidation.SynthesizedPmuPlacementDefeatsReplayedAttacks]=]  /root/repo/build/tests/architecture_validation_test [==[--gtest_filter=ArchitectureValidation.SynthesizedPmuPlacementDefeatsReplayedAttacks]==] --gtest_also_run_disabled_tests)
set_tests_properties([=[ArchitectureValidation.SynthesizedPmuPlacementDefeatsReplayedAttacks]=]  PROPERTIES WORKING_DIRECTORY /root/repo/build/tests SKIP_REGULAR_EXPRESSION [==[\[  SKIPPED \]]==])
set(  architecture_validation_test_TESTS ArchitectureValidation.SynthesizedPmuPlacementDefeatsReplayedAttacks)
