# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/rational_test[1]_include.cmake")
include("/root/repo/build/tests/sat_solver_test[1]_include.cmake")
include("/root/repo/build/tests/simplex_test[1]_include.cmake")
include("/root/repo/build/tests/solver_test[1]_include.cmake")
include("/root/repo/build/tests/attack_model_test[1]_include.cmake")
include("/root/repo/build/tests/synthesis_test[1]_include.cmake")
include("/root/repo/build/tests/matrix_test[1]_include.cmake")
include("/root/repo/build/tests/grid_test[1]_include.cmake")
include("/root/repo/build/tests/estimation_test[1]_include.cmake")
include("/root/repo/build/tests/attack_replay_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/term_test[1]_include.cmake")
include("/root/repo/build/tests/attack_properties_test[1]_include.cmake")
include("/root/repo/build/tests/topology_error_test[1]_include.cmake")
include("/root/repo/build/tests/solver_fuzz_test[1]_include.cmake")
include("/root/repo/build/tests/pmu_test[1]_include.cmake")
include("/root/repo/build/tests/architecture_validation_test[1]_include.cmake")
