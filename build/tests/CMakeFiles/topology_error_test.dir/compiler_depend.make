# Empty compiler generated dependencies file for topology_error_test.
# This may be replaced when dependencies are built.
