file(REMOVE_RECURSE
  "CMakeFiles/topology_error_test.dir/estimation/topology_error_test.cpp.o"
  "CMakeFiles/topology_error_test.dir/estimation/topology_error_test.cpp.o.d"
  "topology_error_test"
  "topology_error_test.pdb"
  "topology_error_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/topology_error_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
