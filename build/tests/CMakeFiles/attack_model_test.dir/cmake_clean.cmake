file(REMOVE_RECURSE
  "CMakeFiles/attack_model_test.dir/core/attack_model_test.cpp.o"
  "CMakeFiles/attack_model_test.dir/core/attack_model_test.cpp.o.d"
  "attack_model_test"
  "attack_model_test.pdb"
  "attack_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
