file(REMOVE_RECURSE
  "CMakeFiles/matrix_test.dir/grid/matrix_test.cpp.o"
  "CMakeFiles/matrix_test.dir/grid/matrix_test.cpp.o.d"
  "matrix_test"
  "matrix_test.pdb"
  "matrix_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
