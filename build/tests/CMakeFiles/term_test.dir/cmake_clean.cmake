file(REMOVE_RECURSE
  "CMakeFiles/term_test.dir/smt/term_test.cpp.o"
  "CMakeFiles/term_test.dir/smt/term_test.cpp.o.d"
  "term_test"
  "term_test.pdb"
  "term_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/term_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
