file(REMOVE_RECURSE
  "CMakeFiles/estimation_test.dir/estimation/estimation_test.cpp.o"
  "CMakeFiles/estimation_test.dir/estimation/estimation_test.cpp.o.d"
  "estimation_test"
  "estimation_test.pdb"
  "estimation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
