file(REMOVE_RECURSE
  "CMakeFiles/sat_solver_test.dir/smt/sat_solver_test.cpp.o"
  "CMakeFiles/sat_solver_test.dir/smt/sat_solver_test.cpp.o.d"
  "sat_solver_test"
  "sat_solver_test.pdb"
  "sat_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sat_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
