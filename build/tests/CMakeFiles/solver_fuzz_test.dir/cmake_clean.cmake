file(REMOVE_RECURSE
  "CMakeFiles/solver_fuzz_test.dir/smt/solver_fuzz_test.cpp.o"
  "CMakeFiles/solver_fuzz_test.dir/smt/solver_fuzz_test.cpp.o.d"
  "solver_fuzz_test"
  "solver_fuzz_test.pdb"
  "solver_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/solver_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
