# Empty dependencies file for solver_fuzz_test.
# This may be replaced when dependencies are built.
