file(REMOVE_RECURSE
  "CMakeFiles/attack_replay_test.dir/core/attack_replay_test.cpp.o"
  "CMakeFiles/attack_replay_test.dir/core/attack_replay_test.cpp.o.d"
  "attack_replay_test"
  "attack_replay_test.pdb"
  "attack_replay_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_replay_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
