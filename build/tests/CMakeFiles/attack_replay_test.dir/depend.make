# Empty dependencies file for attack_replay_test.
# This may be replaced when dependencies are built.
