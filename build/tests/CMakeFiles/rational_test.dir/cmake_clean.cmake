file(REMOVE_RECURSE
  "CMakeFiles/rational_test.dir/smt/rational_test.cpp.o"
  "CMakeFiles/rational_test.dir/smt/rational_test.cpp.o.d"
  "rational_test"
  "rational_test.pdb"
  "rational_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rational_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
