# Empty dependencies file for synthesis_test.
# This may be replaced when dependencies are built.
