file(REMOVE_RECURSE
  "CMakeFiles/synthesis_test.dir/core/synthesis_test.cpp.o"
  "CMakeFiles/synthesis_test.dir/core/synthesis_test.cpp.o.d"
  "synthesis_test"
  "synthesis_test.pdb"
  "synthesis_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesis_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
