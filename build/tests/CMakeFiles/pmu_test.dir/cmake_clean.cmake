file(REMOVE_RECURSE
  "CMakeFiles/pmu_test.dir/estimation/pmu_test.cpp.o"
  "CMakeFiles/pmu_test.dir/estimation/pmu_test.cpp.o.d"
  "pmu_test"
  "pmu_test.pdb"
  "pmu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pmu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
