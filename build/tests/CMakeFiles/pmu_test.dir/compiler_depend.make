# Empty compiler generated dependencies file for pmu_test.
# This may be replaced when dependencies are built.
