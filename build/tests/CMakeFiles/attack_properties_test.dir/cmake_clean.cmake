file(REMOVE_RECURSE
  "CMakeFiles/attack_properties_test.dir/core/attack_properties_test.cpp.o"
  "CMakeFiles/attack_properties_test.dir/core/attack_properties_test.cpp.o.d"
  "attack_properties_test"
  "attack_properties_test.pdb"
  "attack_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
