# Empty compiler generated dependencies file for attack_properties_test.
# This may be replaced when dependencies are built.
