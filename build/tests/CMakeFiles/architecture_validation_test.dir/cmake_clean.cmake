file(REMOVE_RECURSE
  "CMakeFiles/architecture_validation_test.dir/core/architecture_validation_test.cpp.o"
  "CMakeFiles/architecture_validation_test.dir/core/architecture_validation_test.cpp.o.d"
  "architecture_validation_test"
  "architecture_validation_test.pdb"
  "architecture_validation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/architecture_validation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
