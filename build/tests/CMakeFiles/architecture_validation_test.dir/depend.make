# Empty dependencies file for architecture_validation_test.
# This may be replaced when dependencies are built.
