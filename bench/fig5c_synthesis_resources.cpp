// Fig. 5(c): synthesis time vs the attacker's resource limit, expressed as
// a percentage of the total measurements (IEEE 30-bus).
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool seeding = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 5(c) - synthesis time vs attacker resource limit",
                "time decreases slowly as the attacker's resources grow: "
                "failed candidates are refuted (SAT) faster");
  grid::Grid g = grid::cases::ieee30();
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  const int total = plan.num_potential();
  std::printf("%-12s %8s %12s %10s %10s\n", "limit(%)", "T_CZ", "time(s)",
              "arch size", "candidates");
  for (int pct : {20, 30, 40, 50, 60, 80, 100}) {
    core::AttackSpec spec;
    spec.max_altered_measurements = pct * total / 100;
    core::UfdiAttackModel model(g, plan, spec);
    core::SynthesisOptions opt;
    opt.max_secured_buses = g.num_buses();
    opt.must_secure = {0};
    opt.time_limit_seconds = 600;
    opt.graph_seeding = seeding;
    opt.trace = trace;
    core::SecurityArchitectureSynthesizer syn(model, opt);
    core::SynthesisResult r = syn.synthesize();
    std::printf("%-12d %8d %12.2f %10zu %10d\n", pct,
                spec.max_altered_measurements, r.seconds,
                r.secured_buses.size(), r.candidates_tried);
    std::fflush(stdout);
  }
  return 0;
}
