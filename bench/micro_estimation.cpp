// Microbenchmarks for the power-system substrate (google-benchmark):
// Jacobian assembly, DC power flow, WLS estimation, BDD statistics.
#include <benchmark/benchmark.h>

#include <random>

#include "estimation/bad_data.h"
#include "estimation/chi2.h"
#include "estimation/observability.h"
#include "estimation/wls.h"
#include "grid/dc_powerflow.h"
#include "grid/ieee_cases.h"
#include "grid/jacobian.h"

using namespace psse;

namespace {

grid::Grid case_for(int64_t idx) {
  switch (idx) {
    case 0:
      return grid::cases::ieee14();
    case 1:
      return grid::cases::ieee30();
    case 2:
      return grid::cases::ieee57();
    case 3:
      return grid::cases::ieee118_like();
    default:
      return grid::cases::ieee300_like();
  }
}

void BM_JacobianBuild(benchmark::State& state) {
  grid::Grid g = case_for(state.range(0));
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  for (auto _ : state) {
    benchmark::DoNotOptimize(grid::build_jacobian(g, plan));
  }
}
BENCHMARK(BM_JacobianBuild)->Arg(0)->Arg(2)->Arg(4);

void BM_DcPowerFlow(benchmark::State& state) {
  grid::Grid g = case_for(state.range(0));
  grid::DcPowerFlow pf(g, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pf.solve());
  }
}
BENCHMARK(BM_DcPowerFlow)->Arg(0)->Arg(2)->Arg(4);

void BM_WlsEstimate(benchmark::State& state) {
  grid::Grid g = case_for(state.range(0));
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  grid::DcPowerFlow pf(g, 0);
  grid::DcPowerFlowResult op = pf.solve();
  grid::JacobianModel model = grid::build_jacobian(g, plan);
  est::WlsEstimator estimator(model, 0.01);
  std::mt19937_64 rng(1);
  grid::Telemetry z =
      grid::generate_telemetry(g, op.theta, plan, 0.01, rng);
  grid::Vector zr = grid::restrict_to_rows(model, z.values);
  for (auto _ : state) {
    benchmark::DoNotOptimize(estimator.estimate(zr));
  }
}
BENCHMARK(BM_WlsEstimate)->Arg(0)->Arg(2)->Arg(4);

void BM_Chi2Quantile(benchmark::State& state) {
  double k = 30.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(est::chi2_quantile(0.99, k));
    k += 1.0;
    if (k > 1000.0) k = 30.0;
  }
}
BENCHMARK(BM_Chi2Quantile);

void BM_LnrTest(benchmark::State& state) {
  grid::Grid g = grid::cases::ieee30();
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  grid::DcPowerFlow pf(g, 0);
  grid::DcPowerFlowResult op = pf.solve();
  grid::JacobianModel model = grid::build_jacobian(g, plan);
  est::WlsEstimator estimator(model, 0.01);
  est::BadDataDetector detector(estimator, 0.01);
  std::mt19937_64 rng(2);
  grid::Telemetry z =
      grid::generate_telemetry(g, op.theta, plan, 0.01, rng);
  est::WlsResult r = estimator.estimate(grid::restrict_to_rows(model, z.values));
  for (auto _ : state) {
    benchmark::DoNotOptimize(detector.lnr_test(r));
  }
}
BENCHMARK(BM_LnrTest);

void BM_Observability(benchmark::State& state) {
  grid::Grid g = case_for(state.range(0));
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  plan.keep_fraction(0.8, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(est::check_observability(g, plan));
  }
}
BENCHMARK(BM_Observability)->Arg(0)->Arg(2);

}  // namespace

BENCHMARK_MAIN();
