// Table IV: memory usage of the verification model and the candidate
// security-architecture selection model, per IEEE system.
//
// The paper reports Z3's allocation; we account the solver data structures
// (clause/watch databases, simplex tableau, term DAG) byte by byte — the
// comparable quantity is the growth law, which the paper states is close
// to linear in the number of buses.
#include "bench_util.h"
#include "smt/sat_solver.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  bench::header("Table IV - memory requirement (MB)",
                "memory grows ~linearly with the bus count; the candidate-"
                "selection model is orders of magnitude smaller than the "
                "verification model");
  std::printf("%-10s %18s %22s %14s %12s\n", "system", "verification(MB)",
              "candidate-selection(MB)", "arena-cap(MB)", "arena-live(MB)");
  for (const std::string& name : grid::cases::standard_names()) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    core::AttackSpec spec;
    spec.target_states = {g.num_buses() / 2};
    core::UfdiAttackModel model(g, plan, spec);
    smt::Budget budget;
    budget.max_time = std::chrono::milliseconds(600000);
    core::VerificationResult r = model.verify(budget);
    double verifMb =
        static_cast<double>(r.stats.footprint_bytes) / 1048576.0;

    // Candidate model alone: the bus-selection SAT instance. A short,
    // time-bounded synthesis round materialises it.
    core::SynthesisOptions opt;
    opt.max_secured_buses = g.num_buses() / 3;
    opt.time_limit_seconds = 5;
    core::UfdiAttackModel model2(g, plan, core::AttackSpec{});
    core::SecurityArchitectureSynthesizer syn(model2, opt);
    core::SynthesisResult sr = syn.synthesize();
    double candMb =
        static_cast<double>(sr.candidate_footprint_bytes) / 1048576.0;
    // Clause-arena accounting: reserved capacity vs live clause bytes. The
    // gap is growth headroom + not-yet-collected garbage; a capacity far
    // above live on a big case would mean the arena over-reserves.
    double arenaCapMb =
        static_cast<double>(r.stats.arena_capacity_bytes) / 1048576.0;
    double arenaLiveMb =
        static_cast<double>(r.stats.arena_live_bytes) / 1048576.0;
    std::printf("%-10s %18.2f %22.4f %14.4f %12.4f\n", name.c_str(), verifMb,
                candMb, arenaCapMb, arenaLiveMb);
    std::fflush(stdout);
    bench::JsonLine(json, "table4", name)
        .field("ms", r.seconds * 1000.0)
        .field("pivots", r.stats.pivots)
        .field("verification_mb", verifMb)
        .field("candidate_mb", candMb)
        .field("arena_capacity_mb", arenaCapMb)
        .field("arena_live_mb", arenaLiveMb)
        .emit();
  }
  return 0;
}
