// Fig. 4(b): verification time vs the number of taken measurements
// (percentage of the 2l+b potential set), IEEE 30- and 57-bus. With
// --json each (system, percentage) cell also emits one machine-readable
// line: the median plus the per-phase wall-time split summed over the
// cell's runs, so filter regressions are attributable per workload.
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 4(b) - verification time vs taken measurements",
                "time increases roughly linearly with the percentage of "
                "taken measurements");
  std::printf("%-10s", "taken%");
  for (const char* name : {"ieee30", "ieee57"}) std::printf(" %12s", name);
  std::printf("\n");
  for (int pct : {70, 75, 80, 85, 90, 95, 100}) {
    std::printf("%-10d", pct);
    std::vector<std::tuple<std::string, double, obs::PhaseTimes>> cells;
    for (const char* name : {"ieee30", "ieee57"}) {
      grid::Grid g = grid::cases::by_name(name);
      // Median over several measurement draws and targets: CDCL search
      // time on SAT instances is heavy-tailed, and the paper's trend is
      // about the typical cost.
      std::vector<double> ts;
      obs::PhaseTimes phases;
      for (std::uint64_t seed : {7u, 21u, 35u}) {
        grid::MeasurementPlan plan =
            bench::observable_fraction_plan(g, pct / 100.0, seed);
        for (const core::AttackSpec& spec : bench::standard_targets(g)) {
          core::VerificationResult r =
              bench::verify_run(g, plan, spec, 600, trace);
          ts.push_back(r.seconds * 1000.0);
          bench::accumulate_phases(phases, r.phase_times);
        }
      }
      std::printf(" %12.1f", bench::median(ts));
      cells.emplace_back(name, bench::median(ts), phases);
    }
    std::printf("\n");
    // JSON after the table row so the two output styles never interleave.
    for (const auto& [name, medianMs, phases] : cells) {
      bench::JsonLine line(json, "fig4b",
                           name + "/p" + std::to_string(pct));
      line.field("ms", medianMs);
      bench::phase_fields(line, phases).emit();
    }
    std::fflush(stdout);
  }
  return 0;
}
