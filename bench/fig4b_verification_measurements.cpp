// Fig. 4(b): verification time vs the number of taken measurements
// (percentage of the 2l+b potential set), IEEE 30- and 57-bus.
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 4(b) - verification time vs taken measurements",
                "time increases roughly linearly with the percentage of "
                "taken measurements");
  std::printf("%-10s", "taken%");
  for (const char* name : {"ieee30", "ieee57"}) std::printf(" %12s", name);
  std::printf("\n");
  for (int pct : {70, 75, 80, 85, 90, 95, 100}) {
    std::printf("%-10d", pct);
    for (const char* name : {"ieee30", "ieee57"}) {
      grid::Grid g = grid::cases::by_name(name);
      // Median over several measurement draws and targets: CDCL search
      // time on SAT instances is heavy-tailed, and the paper's trend is
      // about the typical cost.
      std::vector<double> ts;
      for (std::uint64_t seed : {7u, 21u, 35u}) {
        grid::MeasurementPlan plan =
            bench::observable_fraction_plan(g, pct / 100.0, seed);
        for (const core::AttackSpec& spec : bench::standard_targets(g)) {
          ts.push_back(bench::verify_ms(g, plan, spec, 600, trace));
        }
      }
      std::printf(" %12.1f", bench::median(ts));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
