// Ablation: design choices in the synthesis loop (not a paper figure).
//
//  (a) candidate-blocking strategy — the paper's exact blocking vs subset
//      blocking vs counterexample-guided (hitting-set) blocking;
//  (b) the Eq. (30) adjacency pruning on/off;
//  (c) SMT synthesis vs the classical greedy basic-measurement defence
//      (Bobba et al. [6]) — the greedy baseline cannot exploit a limited
//      adversary and over-secures.
#include "bench_util.h"
#include "core/baseline_defense.h"

using namespace psse;

namespace {

core::SynthesisResult run(core::UfdiAttackModel& model, int budget,
                          bool cegis, bool subset, bool pruning,
                          double limitSec) {
  core::SynthesisOptions opt;
  opt.max_secured_buses = budget;
  opt.must_secure = {0};
  opt.counterexample_blocking = cegis;
  opt.subset_blocking = subset;
  opt.adjacency_pruning = pruning;
  opt.time_limit_seconds = limitSec;
  core::SecurityArchitectureSynthesizer syn(model, opt);
  return syn.synthesize();
}

void print(const char* label, const core::SynthesisResult& r) {
  const char* status =
      r.status == core::SynthesisResult::Status::Found
          ? "found"
          : r.status == core::SynthesisResult::Status::NoArchitecture
                ? "no-arch"
                : "timeout";
  std::printf("%-34s %8s %10d %10.2f %6zu\n", label, status,
              r.candidates_tried, r.seconds, r.secured_buses.size());
}

}  // namespace

int main() {
  std::printf("== ablation: synthesis design choices ==\n\n");
  for (const char* name : {"ieee14", "ieee30"}) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    core::AttackSpec spec;  // unlimited adversary
    core::UfdiAttackModel model(g, plan, spec);
    int budget = name == std::string("ieee14") ? 6 : 14;
    std::printf("%s, budget %d\n", name, budget);
    std::printf("%-34s %8s %10s %10s %6s\n", "strategy", "status",
                "candidates", "time(s)", "size");
    print("counterexample-guided (default)",
          run(model, budget, true, true, true, 120));
    print("subset blocking only", run(model, budget, false, true, true, 120));
    print("exact blocking (paper Alg. 1)",
          run(model, budget, false, false, true, 120));
    print("CEGIS, no Eq.(30) pruning",
          run(model, budget, true, true, false, 120));
    std::printf("\n");
  }

  std::printf("== SMT synthesis vs greedy basic-measurement defence ==\n");
  std::printf("(limited adversary: admittances of every other line "
              "unknown)\n");
  std::printf("%-10s %24s %16s %10s\n", "system", "greedy baseline (buses)",
              "SMT (buses)", "status");
  for (const char* name : {"ieee14", "ieee30", "ieee57"}) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    core::GreedyDefenseResult greedy =
        core::greedy_basic_measurement_defense(g, plan, {0});
    core::AttackSpec weak;
    for (grid::LineId i = 0; i < g.num_lines(); i += 2) {
      weak.set_unknown(i, g.num_lines());
    }
    core::UfdiAttackModel model(g, plan, weak);
    core::SynthesisOptions opt;
    opt.must_secure = {0};
    opt.time_limit_seconds = 600;
    core::SecurityArchitectureSynthesizer syn(model, opt);
    core::SynthesisResult smtR = syn.synthesize_minimal(g.num_buses());
    const char* status = smtR.found() ? "found"
                         : smtR.status ==
                                 core::SynthesisResult::Status::Timeout
                             ? "timeout"
                             : "no-arch";
    std::printf("%-10s %24zu %16zu %10s\n", name, greedy.secured_buses.size(),
                smtR.secured_buses.size(), status);
    std::fflush(stdout);
  }
  std::printf("\n(the greedy defence is attack-agnostic: it must pin every "
              "state, while the\nSMT synthesis secures only what the "
              "declared adversary can actually exploit)\n");
  return 0;
}
