// Fig. 4(a): UFDI verification time vs bus-system size.
//
// Three experiments per IEEE system (different attacked states) plus the
// average — the series the paper plots as bars + line. With --json each
// experiment additionally emits one machine-readable line carrying the
// verdict, the simplex pivot/filter counters, and the per-phase wall-time
// split. --exact-simplex disables the float filter (ci.sh cross-checks the
// two modes for verdict equality).
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  const bool exact = bench::exact_simplex_enabled(argc, argv);
  const bool screen = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 4(a) - verification time vs problem size",
                "growth between linear and quadratic in the bus count; "
                "different target choices give different times");
  std::printf("%-10s %10s %10s %10s %10s\n", "system", "exp1(ms)", "exp2(ms)",
              "exp3(ms)", "avg(ms)");
  for (const std::string& name : grid::cases::standard_names()) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    std::vector<double> times;
    int exp = 0;
    for (const core::AttackSpec& spec : bench::standard_targets(g)) {
      core::VerificationResult r =
          bench::verify_run(g, plan, spec, 600, trace, exact);
      times.push_back(r.seconds * 1000.0);
      bench::JsonLine line(json, "fig4a",
                           name + "/exp" + std::to_string(++exp));
      line.field("ms", r.seconds * 1000.0)
          .field("pivots", r.stats.pivots)
          .field("float_pivots", r.stats.float_pivots)
          .field("exact_recomputes", r.stats.exact_recomputes)
          .field("filter_fallbacks", r.stats.filter_fallbacks)
          .field("verdict", r.feasible() ? "sat" : "unsat");
      bench::screen_fields(line, g, plan, spec, screen && json);
      bench::phase_fields(line, r.phase_times).emit();
    }
    std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                times[0], times[1], times[2], bench::mean(times));
    std::fflush(stdout);
    bench::JsonLine(json, "fig4a", name)
        .field("ms", bench::mean(times))
        .emit();
  }
  return 0;
}
