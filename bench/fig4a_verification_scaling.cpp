// Fig. 4(a): UFDI verification time vs bus-system size.
//
// Three experiments per IEEE system (different attacked states) plus the
// average — the series the paper plots as bars + line. With --json each
// experiment additionally emits one machine-readable line carrying the
// verdict, the simplex pivot/filter/eta counters, and the per-phase
// wall-time split. --exact-simplex disables the float filter and --no-eta
// the eta-factorised tableau (ci.sh cross-checks the modes for verdict
// equality); --synthetic appends the large synthetic grids (600/1000/1500
// buses at realistic measurement density) to the series.
#include "bench_util.h"
#include "grid/synthetic.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  const bool exact = bench::exact_simplex_enabled(argc, argv);
  const bool eta = !bench::no_eta_enabled(argc, argv);
  const bool screen = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 4(a) - verification time vs problem size",
                "growth between linear and quadratic in the bus count; "
                "different target choices give different times");
  std::printf("%-10s %10s %10s %10s %10s\n", "system", "exp1(ms)", "exp2(ms)",
              "exp3(ms)", "avg(ms)");
  std::vector<std::string> names = grid::cases::standard_names();
  if (bench::synthetic_enabled(argc, argv)) {
    for (const std::string& n : grid::cases::synthetic_names()) {
      names.push_back(n);
    }
  }
  for (const std::string& name : names) {
    const bool synth = name.rfind("synth", 0) == 0;
    grid::Grid g = synth ? grid::cases::synthetic_by_name(name)
                         : grid::cases::by_name(name);
    // IEEE cases take every potential measurement (the paper's setup); the
    // synthetic cases run at their recorded realistic density.
    grid::MeasurementPlan plan =
        synth ? bench::observable_fraction_plan(
                    g, grid::cases::synthetic_spec(name).meas_fraction,
                    grid::cases::synthetic_spec(name).meas_seed)
              : grid::MeasurementPlan(g.num_lines(), g.num_buses());
    std::vector<double> times;
    int exp = 0;
    for (const core::AttackSpec& spec : bench::standard_targets(g)) {
      core::VerificationResult r =
          bench::verify_run(g, plan, spec, 600, trace, exact, eta);
      times.push_back(r.seconds * 1000.0);
      bench::JsonLine line(json, "fig4a",
                           name + "/exp" + std::to_string(++exp));
      line.field("ms", r.seconds * 1000.0)
          .field("pivots", r.stats.pivots)
          .field("float_pivots", r.stats.float_pivots)
          .field("exact_recomputes", r.stats.exact_recomputes)
          .field("filter_fallbacks", r.stats.filter_fallbacks)
          .field("eta_updates", r.stats.eta_updates)
          .field("refactorisations", r.stats.refactorisations)
          .field("eta_file_len_max", r.stats.eta_file_len_max)
          .field("verdict", r.feasible() ? "sat" : "unsat");
      bench::screen_fields(line, g, plan, spec, screen && json);
      bench::phase_fields(line, r.phase_times).emit();
    }
    std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                times[0], times[1], times[2], bench::mean(times));
    std::fflush(stdout);
    bench::JsonLine(json, "fig4a", name)
        .field("ms", bench::mean(times))
        .emit();
  }
  return 0;
}
