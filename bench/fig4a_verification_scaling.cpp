// Fig. 4(a): UFDI verification time vs bus-system size.
//
// Three experiments per IEEE system (different attacked states) plus the
// average — the series the paper plots as bars + line.
#include "bench_util.h"

using namespace psse;

int main() {
  bench::header("Fig. 4(a) - verification time vs problem size",
                "growth between linear and quadratic in the bus count; "
                "different target choices give different times");
  std::printf("%-10s %10s %10s %10s %10s\n", "system", "exp1(ms)", "exp2(ms)",
              "exp3(ms)", "avg(ms)");
  for (const std::string& name : grid::cases::standard_names()) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    std::vector<double> times;
    for (const core::AttackSpec& spec : bench::standard_targets(g)) {
      times.push_back(bench::verify_ms(g, plan, spec));
    }
    std::printf("%-10s %10.1f %10.1f %10.1f %10.1f\n", name.c_str(),
                times[0], times[1], times[2], bench::mean(times));
    std::fflush(stdout);
  }
  return 0;
}
