// Fig. 4(d): verification time in satisfiable vs unsatisfiable cases.
//
// SAT: an unconstrained attack on a mid-grid state. UNSAT: the same goal
// under a resource limit below the cheapest stealthy attack (4
// measurements are always necessary), forcing exhaustion of the space.
// With --json the sat and unsat runs each emit one machine-readable line
// with the verdict and the per-phase wall-time split.
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  const bool eta = !bench::no_eta_enabled(argc, argv);
  const bool screen = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 4(d) - satisfiable vs unsatisfiable verification",
                "unsat takes longer than sat, but the gap stays small "
                "because attack-attribute constraints already bound the "
                "search");
  std::printf("%-10s %12s %12s %8s\n", "system", "sat(ms)", "unsat(ms)",
              "ratio");
  for (const char* name : {"ieee14", "ieee30", "ieee57", "ieee118"}) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    core::AttackSpec sat;
    sat.target_states = {g.num_buses() / 2};
    core::AttackSpec unsat = sat;
    unsat.max_altered_measurements = 3;  // below the 4-measurement floor
    core::VerificationResult satR =
        bench::verify_run(g, plan, sat, 600, trace, false, eta);
    core::VerificationResult unsatR =
        bench::verify_run(g, plan, unsat, 600, trace, false, eta);
    const double satMs = satR.seconds * 1000.0;
    const double unsatMs = unsatR.seconds * 1000.0;
    std::printf("%-10s %12.1f %12.1f %8.2f\n", name, satMs, unsatMs,
                unsatMs / satMs);
    for (const auto& [label, r] :
         {std::pair<const char*, const core::VerificationResult*>{"sat",
                                                                  &satR},
          {"unsat", &unsatR}}) {
      bench::JsonLine line(json, "fig4d",
                           std::string(name) + "/" + label);
      line.field("ms", r->seconds * 1000.0)
          .field("eta_updates", r->stats.eta_updates)
          .field("refactorisations", r->stats.refactorisations)
          .field("eta_file_len_max", r->stats.eta_file_len_max)
          .field("verdict", r->feasible() ? "sat" : "unsat");
      const core::AttackSpec& spec =
          std::string_view(label) == "sat" ? sat : unsat;
      bench::screen_fields(line, g, plan, spec, screen && json);
      bench::phase_fields(line, r->phase_times).emit();
    }
    std::fflush(stdout);
  }
  return 0;
}
