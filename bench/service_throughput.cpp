// service_throughput: warm delta-solve sweeps through the analytics
// service vs. cold per-point re-encoding.
//
// The workload is the IEEE 57-bus verification scenario's resource sweep
// (T_CZ = 4..28, the fig. 4(c) axis): the question a long-lived analytics
// deployment answers all day. "cold" rebuilds a full UfdiAttackModel per
// point, the pre-service workflow; "warm" routes one server-side sweep
// through AnalyticsService, so every point after the first runs as a
// push/pop delta on one persistent kBase session that keeps its learnt
// clauses (and its phase saving) across queries. Encode reuse is worth a
// few ms; the learnt-clause carry-over is the headline — hard mid-range
// points (T_CZ 16, 20 cold-solve in the hundreds of ms) collapse to
// sub-ms once earlier points have seeded the clause database.
//
// Verdicts must be identical down both columns — a speedup that changes
// an answer is a bug, and the bench exits nonzero on any mismatch.
//
// --json emits one line per mode (run "pr6_service", modes cold/warm)
// with total ms, qps, the warm service's p50/p95/p99 solve latencies, and
// the warm row's speedup; BENCH_smt.json keeps the recorded runs.
#include <chrono>
#include <cstdio>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "service/analytics_service.h"

using namespace psse;

namespace {

constexpr double kTimeLimitSeconds = 300;

const char* verdict_name(smt::SolveResult r) {
  switch (r) {
    case smt::SolveResult::Sat:
      return "SAT";
    case smt::SolveResult::Unsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

double now_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  std::string dataDir = PSSE_DATA_DIR;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") dataDir = argv[i];
  }
  core::Scenario sc;
  try {
    sc = core::Scenario::load(dataDir + "/ieee57_verification.scn");
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  std::vector<double> caps;
  for (int cap = 4; cap <= 28; cap += 2) caps.push_back(cap);

  bench::header("Service throughput (ieee57 resource sweep)",
                "a warm kBase session answering T_CZ deltas beats "
                "per-point re-encoding by >=3x with identical verdicts");

  // Cold: the pre-service workflow — fresh full encode per point.
  std::vector<smt::SolveResult> coldVerdicts;
  std::vector<double> coldMs;
  const auto coldStart = std::chrono::steady_clock::now();
  for (double cap : caps) {
    core::AttackSpec spec = sc.spec;
    spec.max_altered_measurements = static_cast<int>(cap);
    const auto pointStart = std::chrono::steady_clock::now();
    const core::VerificationResult r =
        bench::verify_run(sc.grid, sc.plan, spec, kTimeLimitSeconds);
    coldMs.push_back(now_ms(pointStart));
    coldVerdicts.push_back(r.result);
  }
  const double coldTotalMs = now_ms(coldStart);

  // Warm: one server-side sweep; a single worker keeps the comparison
  // sequential-vs-sequential (the speedup measures solver reuse, not
  // parallelism), and the memo is off so every point really solves.
  service::ServiceOptions options;
  options.threads = 1;
  options.default_time_limit_seconds = kTimeLimitSeconds;
  service::AnalyticsService svc(options);
  service::SweepRequest sweep;
  sweep.id = "tcz";
  sweep.scenario = sc;
  sweep.axis = service::SweepAxis::kMaxMeasurements;
  sweep.values = caps;
  sweep.use_memo = false;
  const auto warmStart = std::chrono::steady_clock::now();
  std::vector<std::future<service::ServiceResponse>> futures =
      svc.submit_sweep(sweep);
  std::vector<service::ServiceResponse> warm;
  warm.reserve(futures.size());
  for (auto& f : futures) warm.push_back(f.get());
  const double warmTotalMs = now_ms(warmStart);
  const service::ServiceStats stats = svc.stats();

  std::printf("%-8s %10s %10s %8s %8s %12s\n", "T_CZ", "cold_ms", "warm_ms",
              "cold", "warm", "session");
  bool mismatch = false;
  for (std::size_t k = 0; k < caps.size(); ++k) {
    if (!warm[k].ok()) {
      std::fprintf(stderr, "error: point %zu: %s\n", k,
                   warm[k].error.c_str());
      return 1;
    }
    if (warm[k].verdict != coldVerdicts[k]) mismatch = true;
    std::printf("%-8.0f %10.1f %10.1f %8s %8s %12s\n", caps[k], coldMs[k],
                warm[k].solve_seconds * 1000.0,
                verdict_name(coldVerdicts[k]),
                verdict_name(warm[k].verdict),
                warm[k].session_hit ? "hit" : "miss");
  }
  const double speedup = warmTotalMs > 0 ? coldTotalMs / warmTotalMs : 0;
  std::printf("\ntotal: cold %.1f ms, warm %.1f ms, speedup %.2fx\n",
              coldTotalMs, warmTotalMs, speedup);
  std::printf("warm service: session hits %llu/%llu, solve p50/p95/p99 = "
              "%llu/%llu/%llu us\n",
              static_cast<unsigned long long>(stats.sessions.hits),
              static_cast<unsigned long long>(stats.sessions.hits +
                                              stats.sessions.misses),
              static_cast<unsigned long long>(stats.solve_p50_us),
              static_cast<unsigned long long>(stats.solve_p95_us),
              static_cast<unsigned long long>(stats.solve_p99_us));
  if (mismatch) {
    std::fprintf(stderr, "error: warm/cold verdict mismatch\n");
    return 1;
  }

  const double n = static_cast<double>(caps.size());
  bench::JsonLine(json, "service_throughput", "ieee57_resource_sweep")
      .field("run", "pr6_service")
      .field("mode", "cold")
      .field("points", static_cast<std::uint64_t>(caps.size()))
      .field("ms", coldTotalMs)
      .field("qps", 1000.0 * n / coldTotalMs)
      .emit();
  bench::JsonLine(json, "service_throughput", "ieee57_resource_sweep")
      .field("run", "pr6_service")
      .field("mode", "warm")
      .field("points", static_cast<std::uint64_t>(caps.size()))
      .field("ms", warmTotalMs)
      .field("qps", 1000.0 * n / warmTotalMs)
      .field("solve_p50_us", stats.solve_p50_us)
      .field("solve_p95_us", stats.solve_p95_us)
      .field("solve_p99_us", stats.solve_p99_us)
      .field("speedup", speedup)
      .emit();
  return 0;
}
