// Microbenchmarks for the SMT substrate (google-benchmark): exact
// arithmetic, CDCL search, simplex pivoting, end-to-end small solves.
// Not a paper figure — these support the ablation notes in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <random>

#include "core/attack_model.h"
#include "grid/ieee_cases.h"
#include "smt/solver.h"

using namespace psse;

namespace {

void BM_BigIntMul(benchmark::State& state) {
  smt::BigInt a = smt::BigInt::from_string(
      "123456789123456789123456789123456789");
  smt::BigInt b = smt::BigInt::from_string("987654321987654321987654321");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul);

void BM_BigIntDivMod(benchmark::State& state) {
  smt::BigInt n = smt::BigInt::from_string(
      "340282366920938463463374607431768211457340282366920938463");
  smt::BigInt d = smt::BigInt::from_string("18446744073709551629");
  smt::BigInt q, r;
  for (auto _ : state) {
    smt::BigInt::div_mod(n, d, q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod);

void BM_RationalArith(benchmark::State& state) {
  smt::Rational a(123457, 1000);
  smt::Rational b(-987651, 777);
  for (auto _ : state) {
    smt::Rational c = a * b + a / b - a;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalArith);

// Small-value fast-path targets: the pivot loop spends its time in exactly
// these shapes (gcd-normalised admittance-sized coefficients).
void BM_RationalSmallAdd(benchmark::State& state) {
  smt::Rational a(3, 7);
  const smt::Rational b(-5, 11);
  for (auto _ : state) {
    smt::Rational c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalSmallAdd);

void BM_RationalSmallMul(benchmark::State& state) {
  smt::Rational a(355, 113);
  const smt::Rational b(-113, 355);
  for (auto _ : state) {
    smt::Rational c = a;
    c *= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalSmallMul);

void BM_BigIntSmallGcd(benchmark::State& state) {
  const smt::BigInt a(123456789);
  const smt::BigInt b(987654);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smt::BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntSmallGcd);

void BM_BigIntSmallMulAdd(benchmark::State& state) {
  const smt::BigInt a(774747);
  const smt::BigInt b(-12345);
  smt::BigInt acc(1);
  for (auto _ : state) {
    acc = a * b + acc;
    benchmark::DoNotOptimize(acc);
    acc = smt::BigInt(1);
  }
}
BENCHMARK(BM_BigIntSmallMulAdd);

void BM_SatRandom3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::mt19937_64 rng(42);
    smt::SatSolver s;
    for (int i = 0; i < n; ++i) s.new_var();
    for (int c = 0; c < static_cast<int>(4.0 * n); ++c) {
      std::vector<smt::Lit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(smt::Lit(static_cast<smt::Var>(rng() % n),
                              (rng() & 1) != 0));
      }
      s.add_clause(cl);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

void BM_SimplexChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    std::vector<smt::TVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    state.ResumeTiming();
    // Chain x_{i+1} - x_i == 1 via slacks, then bound both ends.
    int tag = 0;
    for (int i = 0; i + 1 < n; ++i) {
      smt::LinExpr e;
      e.add_term(vars[static_cast<std::size_t>(i + 1)], smt::Rational(1));
      e.add_term(vars[static_cast<std::size_t>(i)], smt::Rational(-1));
      smt::TVar sl = s.slack_for(e);
      s.assert_lower(sl, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
    }
    s.assert_lower(vars[0], smt::DeltaRational(smt::Rational(0)),
                   smt::Lit::pos(tag++));
    bool ok = s.check();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SimplexChain)->Arg(50)->Arg(200);

void BM_SmtGuardedIntervals(benchmark::State& state) {
  for (auto _ : state) {
    smt::Solver s;
    auto& t = s.terms();
    smt::TVar x = s.mk_real("x");
    std::vector<smt::TermRef> sel;
    for (int i = 0; i < 12; ++i) {
      smt::TermRef b = s.mk_bool();
      sel.push_back(b);
      s.assert_term(t.mk_implies(
          b, t.mk_ge(smt::LinExpr::var(x), smt::Rational(i))));
      s.assert_term(t.mk_implies(
          b, t.mk_le(smt::LinExpr::var(x), smt::Rational(i + 2))));
    }
    s.add_at_least(sel, 3);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SmtGuardedIntervals);

void BM_AttackModelBuild(benchmark::State& state) {
  grid::Grid g = grid::cases::ieee30();
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  core::AttackSpec spec;
  spec.target_states = {15};
  for (auto _ : state) {
    core::UfdiAttackModel model(g, plan, spec);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_AttackModelBuild);

void BM_AttackVerify14(benchmark::State& state) {
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = grid::cases::paper_plan14(g);
  core::AttackSpec spec;
  spec.target_states = {11};
  spec.attack_only_targets = true;
  for (auto _ : state) {
    core::UfdiAttackModel model(g, plan, spec);
    benchmark::DoNotOptimize(model.verify().result);
  }
}
BENCHMARK(BM_AttackVerify14);

}  // namespace

BENCHMARK_MAIN();
