// Microbenchmarks for the SMT substrate (google-benchmark): exact
// arithmetic, CDCL search, simplex pivoting, end-to-end small solves.
// Not a paper figure — these support the ablation notes in EXPERIMENTS.md.
#include <benchmark/benchmark.h>

#include <random>
#include <string_view>
#include <vector>

#include "core/attack_model.h"
#include "grid/ieee_cases.h"
#include "screen/lp_screen.h"
#include "smt/solver.h"

using namespace psse;

namespace {

void BM_BigIntMul(benchmark::State& state) {
  smt::BigInt a = smt::BigInt::from_string(
      "123456789123456789123456789123456789");
  smt::BigInt b = smt::BigInt::from_string("987654321987654321987654321");
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
}
BENCHMARK(BM_BigIntMul);

void BM_BigIntDivMod(benchmark::State& state) {
  smt::BigInt n = smt::BigInt::from_string(
      "340282366920938463463374607431768211457340282366920938463");
  smt::BigInt d = smt::BigInt::from_string("18446744073709551629");
  smt::BigInt q, r;
  for (auto _ : state) {
    smt::BigInt::div_mod(n, d, q, r);
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_BigIntDivMod);

void BM_RationalArith(benchmark::State& state) {
  smt::Rational a(123457, 1000);
  smt::Rational b(-987651, 777);
  for (auto _ : state) {
    smt::Rational c = a * b + a / b - a;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalArith);

// Small-value fast-path targets: the pivot loop spends its time in exactly
// these shapes (gcd-normalised admittance-sized coefficients).
void BM_RationalSmallAdd(benchmark::State& state) {
  smt::Rational a(3, 7);
  const smt::Rational b(-5, 11);
  for (auto _ : state) {
    smt::Rational c = a;
    c += b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalSmallAdd);

void BM_RationalSmallMul(benchmark::State& state) {
  smt::Rational a(355, 113);
  const smt::Rational b(-113, 355);
  for (auto _ : state) {
    smt::Rational c = a;
    c *= b;
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_RationalSmallMul);

void BM_BigIntSmallGcd(benchmark::State& state) {
  const smt::BigInt a(123456789);
  const smt::BigInt b(987654);
  for (auto _ : state) {
    benchmark::DoNotOptimize(smt::BigInt::gcd(a, b));
  }
}
BENCHMARK(BM_BigIntSmallGcd);

// Multi-limb gcd: the Rational::normalize hot path once numerators
// outgrow the inline form. Arg(0) runs the reference divmod-based Euclid
// chain (the pre-filter implementation, kept as the differential-test
// oracle), Arg(1) the production binary Stein gcd (shift/subtract only).
void BM_BigIntBigGcd(benchmark::State& state) {
  const bool production = state.range(0) != 0;
  const smt::BigInt a = smt::BigInt::from_string(
      "340282366920938463463374607431768211457340282366920938463");
  const smt::BigInt b = smt::BigInt::from_string(
      "618970019642690137449562111987654321123456789");
  for (auto _ : state) {
    benchmark::DoNotOptimize(production ? smt::BigInt::gcd(a, b)
                                        : smt::BigInt::reference_gcd(a, b));
  }
}
BENCHMARK(BM_BigIntBigGcd)->Arg(0)->Arg(1);

void BM_BigIntSmallMulAdd(benchmark::State& state) {
  const smt::BigInt a(774747);
  const smt::BigInt b(-12345);
  smt::BigInt acc(1);
  for (auto _ : state) {
    acc = a * b + acc;
    benchmark::DoNotOptimize(acc);
    acc = smt::BigInt(1);
  }
}
BENCHMARK(BM_BigIntSmallMulAdd);

// Rational::normalize on already-canonical values: Arg(0) integral
// operands (denominator one, the no-gcd fast path that row merges over
// integral tableaus hit on almost every term), Arg(1) fractional operands
// (the full gcd path, for before/after contrast).
void BM_RationalNormalizeCanonical(benchmark::State& state) {
  const bool fractional = state.range(0) != 0;
  const smt::Rational b = fractional ? smt::Rational(777, 13)
                                     : smt::Rational(777);
  const smt::Rational c = fractional ? smt::Rational(-444, 7)
                                     : smt::Rational(-444);
  smt::Rational acc(12345);
  for (auto _ : state) {
    acc.add_mul(b, c);
    benchmark::DoNotOptimize(acc);
    acc = smt::Rational(12345);
  }
}
BENCHMARK(BM_RationalNormalizeCanonical)->Arg(0)->Arg(1);

void BM_SatRandom3Sat(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    std::mt19937_64 rng(42);
    smt::SatSolver s;
    for (int i = 0; i < n; ++i) s.new_var();
    for (int c = 0; c < static_cast<int>(4.0 * n); ++c) {
      std::vector<smt::Lit> cl;
      for (int k = 0; k < 3; ++k) {
        cl.push_back(smt::Lit(static_cast<smt::Var>(rng() % n),
                              (rng() & 1) != 0));
      }
      s.add_clause(cl);
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SatRandom3Sat)->Arg(50)->Arg(100)->Arg(200);

// Pure boolean-constraint-propagation throughput: one unit clause triggers
// a cascade through binary implication chains with periodic 5-literal
// "conjunction" links, so solve() is one long watched-literal propagation
// pass (no decisions beyond assumptions, no conflicts). This is the
// clause-memory-layout hot path: ns/iteration tracks pointer-chasing cost
// per visited clause.
void BM_Propagation(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  constexpr int kChains = 16;
  for (auto _ : state) {
    state.PauseTiming();
    smt::SatSolver s;
    smt::Var root = s.new_var();
    std::vector<std::vector<smt::Var>> chain(kChains);
    for (int c = 0; c < kChains; ++c) {
      for (int i = 0; i < len; ++i) chain[c].push_back(s.new_var());
      s.add_clause({smt::Lit::neg(root), smt::Lit::pos(chain[c][0])});
      for (int i = 0; i + 1 < len; ++i) {
        s.add_clause({smt::Lit::neg(chain[c][i]),
                      smt::Lit::pos(chain[c][i + 1])});
      }
      // Every 4th link also follows from the conjunction of the previous
      // four variables: these wider clauses force genuine watch scans.
      for (int i = 4; i + 1 < len; i += 4) {
        std::vector<smt::Lit> wide;
        for (int k = 0; k < 4; ++k) {
          wide.push_back(smt::Lit::neg(chain[c][i - k]));
        }
        wide.push_back(smt::Lit::pos(chain[c][i + 1]));
        s.add_clause(wide);
      }
    }
    s.add_clause({smt::Lit::pos(root)});
    state.ResumeTiming();
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_Propagation)->Arg(256)->Arg(2048);

void BM_SimplexChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    std::vector<smt::TVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    state.ResumeTiming();
    // Chain x_{i+1} - x_i == 1 via slacks, then bound both ends.
    int tag = 0;
    for (int i = 0; i + 1 < n; ++i) {
      smt::LinExpr e;
      e.add_term(vars[static_cast<std::size_t>(i + 1)], smt::Rational(1));
      e.add_term(vars[static_cast<std::size_t>(i)], smt::Rational(-1));
      smt::TVar sl = s.slack_for(e);
      s.assert_lower(sl, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
    }
    s.assert_lower(vars[0], smt::DeltaRational(smt::Rational(0)),
                   smt::Lit::pos(tag++));
    bool ok = s.check();
    benchmark::DoNotOptimize(ok);
  }
}
BENCHMARK(BM_SimplexChain)->Arg(50)->Arg(200);

// Pivot-rule comparison on a dense feasibility problem: Arg(0) pins strict
// Bland's rule, Arg(1) uses the default heuristic (largest violation /
// largest coefficient magnitude with Bland fallback). The instance makes
// every slack start violated, so check() must genuinely pivot.
void BM_SimplexCheckFeasibility(benchmark::State& state) {
  const bool heuristic = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    smt::SimplexOptions opts;
    opts.heuristic_pivoting = heuristic;
    opts.derive_bounds = false;
    s.set_options(opts);
    const int n = 40;
    std::vector<smt::TVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    std::mt19937_64 rng(7);
    int tag = 0;
    std::vector<smt::TVar> slacks;
    for (int r = 0; r < n; ++r) {
      smt::LinExpr e;
      for (int k = 0; k < 4; ++k) {
        e.add_term(vars[rng() % n],
                   smt::Rational(1 + static_cast<int>(rng() % 5)));
      }
      if (e.is_constant()) continue;
      slacks.push_back(s.slack_for(e));
    }
    for (smt::TVar v : vars) {
      s.assert_lower(v, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
    }
    state.ResumeTiming();
    for (smt::TVar sl : slacks) {
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(40)),
                     smt::Lit::pos(tag++));
    }
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_SimplexCheckFeasibility)->Arg(0)->Arg(1);

// The float filter's effect in isolation: the same pivot-heavy instance as
// BM_SimplexCheckFeasibility (heuristic rule in both arms), Arg(0) with the
// filter off (pure exact solver), Arg(1) with the default filtered
// configuration. Verdicts are identical by construction; the delta is the
// cost of exact DeltaRational bookkeeping the filter avoids until a
// verdict depends on it.
void BM_SimplexFloatFilter(benchmark::State& state) {
  const bool filtered = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    smt::SimplexOptions opts;
    opts.float_filter = filtered;
    opts.derive_bounds = false;
    s.set_options(opts);
    const int n = 40;
    std::vector<smt::TVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    std::mt19937_64 rng(7);
    int tag = 0;
    std::vector<smt::TVar> slacks;
    for (int r = 0; r < n; ++r) {
      smt::LinExpr e;
      for (int k = 0; k < 4; ++k) {
        e.add_term(vars[rng() % n],
                   smt::Rational(1 + static_cast<int>(rng() % 5)));
      }
      if (e.is_constant()) continue;
      slacks.push_back(s.slack_for(e));
    }
    for (smt::TVar v : vars) {
      s.assert_lower(v, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
    }
    state.ResumeTiming();
    for (smt::TVar sl : slacks) {
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(40)),
                     smt::Lit::pos(tag++));
    }
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_SimplexFloatFilter)->Arg(0)->Arg(1);

// Builds a grid-sparse feasibility instance (banded 3-4 term rows, the
// locality pattern of transmission-system tableaus) whose slack bounds all
// start violated, so check() pivots heavily. Shared by the eta-tableau
// micro benches below.
void make_banded_instance(smt::Simplex& s, const smt::SimplexOptions& opts,
                          std::vector<smt::TVar>& slacks) {
  s.set_options(opts);
  const int n = 160;
  std::vector<smt::TVar> vars;
  for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
  std::mt19937_64 rng(13);
  slacks.clear();
  for (int r = 0; r < n; ++r) {
    smt::LinExpr e;
    const int terms = 3 + static_cast<int>(rng() % 2);
    for (int k = 0; k < terms; ++k) {
      const int lo = r > 8 ? r - 8 : 0;
      const int v = lo + static_cast<int>(rng() % 9);  // within the band
      e.add_term(vars[static_cast<std::size_t>(v)],
                 smt::Rational(1 + static_cast<int>(rng() % 5)));
    }
    if (e.is_constant()) continue;
    slacks.push_back(s.slack_for(e));
  }
  int tag = 0;
  for (smt::TVar v : vars) {
    s.assert_lower(v, smt::DeltaRational(smt::Rational(1)),
                   smt::Lit::pos(tag++));
  }
}

// The eta factorisation's effect in isolation: the same banded pivot-heavy
// instance, Arg(0) with eager row substitution (eta off), Arg(1) with the
// default eta-factorised tableau. Verdicts and pivot sequences are
// identical by construction; the delta is the exact row maintenance the
// eta file defers (and, for rows no verdict reads, never pays).
void BM_SimplexFactorUpdate(benchmark::State& state) {
  const bool eta = state.range(0) != 0;
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    smt::SimplexOptions opts;
    opts.eta_tableau = eta;
    opts.derive_bounds = false;
    std::vector<smt::TVar> slacks;
    make_banded_instance(s, opts, slacks);
    int tag = 10000;
    state.ResumeTiming();
    for (smt::TVar sl : slacks) {
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(40)),
                     smt::Lit::pos(tag++));
    }
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_SimplexFactorUpdate)->Arg(0)->Arg(1);

// FTRAN replay vs refactorisation tradeoff: eta always on, Arg = the
// eta-file length that triggers refactorisation. Small budgets refactorise
// constantly (BTRAN-heavy), large ones replay long files wherever a verdict
// reads a stale row (FTRAN-heavy); the default (64) sits between.
void BM_Ftran(benchmark::State& state) {
  const auto budget = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    smt::SimplexOptions opts;
    opts.eta_refactor_len = budget;
    opts.derive_bounds = false;
    std::vector<smt::TVar> slacks;
    make_banded_instance(s, opts, slacks);
    int tag = 10000;
    state.ResumeTiming();
    for (smt::TVar sl : slacks) {
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(40)),
                     smt::Lit::pos(tag++));
    }
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_Ftran)->Arg(4)->Arg(64)->Arg(1024);

// LP-relaxation screen (screen::LpScreen): one warm per-family screen
// queried per delta — the analytics service's front-end hot path. Arg 0:
// an open goal the screen cannot refute (falls through to SMT); Arg 1:
// every taken measurement secured, so the relaxation pins the target and
// the screen answers Unsat by itself.
void BM_LpScreen(benchmark::State& state) {
  const bool secured = state.range(0) != 0;
  grid::Grid g = grid::cases::by_name("ieee57");
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  core::AttackSpec spec;
  screen::LpScreen lp(g, plan, spec);
  core::ScenarioDelta delta;
  delta.target_states = {g.num_buses() - 1};
  if (secured) {
    for (grid::MeasId m = 0; m < plan.num_potential(); ++m) {
      if (plan.taken(m)) delta.secured_measurements.push_back(m);
    }
  }
  for (auto _ : state) {
    screen::ScreenResult r = lp.screen(delta);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_LpScreen)->Arg(0)->Arg(1);

// Sparse-tableau scaling: fixed row count, Arg = non-zero terms per row.
// Rows are (index, coeff) pair vectors, so pivot cost should track the
// non-zero count, not the column count — the curve over Arg is the check
// that no dense O(columns) pass crept back into the pivot loop.
void BM_SimplexRowDensity(benchmark::State& state) {
  const int termsPerRow = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    smt::Simplex s;
    const int n = 96;
    std::vector<smt::TVar> vars;
    for (int i = 0; i < n; ++i) vars.push_back(s.new_var());
    std::mt19937_64 rng(11);
    int tag = 0;
    std::vector<smt::TVar> slacks;
    for (int r = 0; r < 24; ++r) {
      smt::LinExpr e;
      for (int k = 0; k < termsPerRow; ++k) {
        e.add_term(vars[rng() % n],
                   smt::Rational(1 + static_cast<int>(rng() % 5)));
      }
      if (e.is_constant()) continue;
      slacks.push_back(s.slack_for(e));
    }
    for (smt::TVar v : vars) {
      s.assert_lower(v, smt::DeltaRational(smt::Rational(1)),
                     smt::Lit::pos(tag++));
    }
    state.ResumeTiming();
    for (smt::TVar sl : slacks) {
      s.assert_upper(sl, smt::DeltaRational(smt::Rational(60)),
                     smt::Lit::pos(tag++));
    }
    benchmark::DoNotOptimize(s.check());
  }
}
BENCHMARK(BM_SimplexRowDensity)->Arg(4)->Arg(16)->Arg(48);

// End-to-end DPLL(T) solve with the theory-propagation hook off (Arg 0)
// and on (Arg 1): guarded intervals where each asserted guard's bound
// decides several other atoms, the shape theory propagation shortcuts.
void BM_TheoryPropagation(benchmark::State& state) {
  const bool propagate = state.range(0) != 0;
  for (auto _ : state) {
    smt::Solver s;
    smt::SatOptions o = s.sat_options();
    o.theory_propagation = propagate;
    s.set_sat_options(o);
    auto& t = s.terms();
    smt::TVar x = s.mk_real("x");
    smt::TVar y = s.mk_real("y");
    const smt::LinExpr sum = smt::LinExpr::var(x) + smt::LinExpr::var(y);
    std::vector<smt::TermRef> sel;
    for (int i = 0; i < 24; ++i) {
      smt::TermRef b = s.mk_bool();
      sel.push_back(b);
      s.assert_term(t.mk_implies(b, t.mk_ge(sum, smt::Rational(i))));
      // Once any guard asserts sum >= i, the atoms sum >= i-10 below are
      // implied and the escape booleans d never need exploring; without
      // propagation each is found unusable by a theory conflict.
      smt::TermRef d = s.mk_bool();
      s.assert_term(t.mk_or({t.mk_ge(sum, smt::Rational(i - 10)), d}));
      s.assert_term(t.mk_implies(
          d, t.mk_ge(smt::LinExpr::var(y), smt::Rational(50 + i))));
    }
    s.assert_term(t.mk_le(smt::LinExpr::var(y), smt::Rational(40)));
    s.add_at_least(sel, 6);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_TheoryPropagation)->Arg(0)->Arg(1);

void BM_SmtGuardedIntervals(benchmark::State& state) {
  for (auto _ : state) {
    smt::Solver s;
    auto& t = s.terms();
    smt::TVar x = s.mk_real("x");
    std::vector<smt::TermRef> sel;
    for (int i = 0; i < 12; ++i) {
      smt::TermRef b = s.mk_bool();
      sel.push_back(b);
      s.assert_term(t.mk_implies(
          b, t.mk_ge(smt::LinExpr::var(x), smt::Rational(i))));
      s.assert_term(t.mk_implies(
          b, t.mk_le(smt::LinExpr::var(x), smt::Rational(i + 2))));
    }
    s.add_at_least(sel, 3);
    benchmark::DoNotOptimize(s.solve());
  }
}
BENCHMARK(BM_SmtGuardedIntervals);

void BM_AttackModelBuild(benchmark::State& state) {
  grid::Grid g = grid::cases::ieee30();
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  core::AttackSpec spec;
  spec.target_states = {15};
  for (auto _ : state) {
    core::UfdiAttackModel model(g, plan, spec);
    benchmark::DoNotOptimize(&model);
  }
}
BENCHMARK(BM_AttackModelBuild);

void BM_AttackVerify14(benchmark::State& state) {
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = grid::cases::paper_plan14(g);
  core::AttackSpec spec;
  spec.target_states = {11};
  spec.attack_only_targets = true;
  for (auto _ : state) {
    core::UfdiAttackModel model(g, plan, spec);
    benchmark::DoNotOptimize(model.verify().result);
  }
}
BENCHMARK(BM_AttackVerify14);

}  // namespace

// Same entry-point contract as the figure benches: `--json` requests
// machine-readable output (here google-benchmark's own JSON report, which
// ci.sh validates). Other flags pass through to the benchmark library.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  static char jsonFlag[] = "--benchmark_format=json";
  for (char*& a : args) {
    if (std::string_view(a) == "--json") a = jsonFlag;
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
