// portfolio_scaling: portfolio verification speedup vs. member count,
// with and without learned-clause sharing.
//
// For the IEEE 30- and 57-bus verification scenarios, runs the serial
// verify() baseline and then racing portfolios of 1, 2, 4 and 8 members,
// each member count once with sharing off and once with the clause channel
// on. Speedup is serial_ms / portfolio_ms for the same scenario. Because
// all members are sound and complete — and shared clauses are implied by
// the common formula — the verdict column must be constant down each
// scenario's block, a cheap cross-check that neither racing nor sharing
// changes the answer. On a single-core host the speedup measures
// diversification plus sharing (another member's learnt clauses pruning
// this member's search), not parallelism; with real cores the effects
// combine.
//
// --json adds one machine-readable line per row (BENCH_smt.json keeps the
// before/after baseline).
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "runtime/portfolio.h"

using namespace psse;

namespace {

const char* verdict_name(smt::SolveResult r) {
  switch (r) {
    case smt::SolveResult::Sat:
      return "SAT";
    case smt::SolveResult::Unsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

constexpr double kTimeLimitSeconds = 300;

smt::Budget bench_budget() {
  smt::Budget b;
  b.max_time = std::chrono::milliseconds(
      static_cast<long>(kTimeLimitSeconds * 1000));
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  std::string dataDir = PSSE_DATA_DIR;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) != "--json") dataDir = argv[i];
  }
  const std::vector<std::string> scenarios = {"ieee30_verification",
                                              "ieee57_verification"};
  const std::vector<std::size_t> memberCounts = {1, 2, 4, 8};

  bench::header("Portfolio verification scaling",
                "racing diversified members (and sharing their learnt "
                "clauses) shortens wall time without changing the verdict");
  std::printf("%-22s %8s %8s %10s %8s %8s %-18s\n", "scenario", "members",
              "sharing", "ms", "speedup", "verdict", "winner");

  for (const std::string& name : scenarios) {
    core::Scenario sc;
    try {
      sc = core::Scenario::load(dataDir + "/" + name + ".scn");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    core::UfdiAttackModel model(sc.grid, sc.plan, sc.spec);

    core::VerificationResult serial = model.verify(bench_budget());
    const double serialMs = serial.seconds * 1000.0;
    std::printf("%-22s %8s %8s %10.1f %8.2f %8s %-18s\n", name.c_str(),
                "serial", "-", serialMs, 1.0, verdict_name(serial.result),
                "serial");
    bench::JsonLine(json, "portfolio_scaling", name)
        .field("threads", std::uint64_t{0})
        .field("sharing", "off")
        .field("ms", serialMs)
        .field("speedup", 1.0)
        .field("verdict", verdict_name(serial.result))
        .field("winner", "serial")
        .emit();

    for (std::size_t n : memberCounts) {
      for (bool sharing : {false, true}) {
        runtime::PortfolioOptions popt;
        popt.num_threads = n;
        popt.budget = bench_budget();
        popt.share_clauses = sharing;
        runtime::PortfolioResult pr = runtime::verify_portfolio(model, popt);
        const double ms = pr.seconds * 1000.0;
        const std::string winner =
            pr.winner >= 0
                ? pr.members[static_cast<std::size_t>(pr.winner)].label
                : "none";
        std::printf("%-22s %8zu %8s %10.1f %8.2f %8s %-18s\n", name.c_str(),
                    n, sharing ? "on" : "off", ms,
                    ms > 0 ? serialMs / ms : 0.0, verdict_name(pr.result()),
                    winner.c_str());
        std::fflush(stdout);
        bench::JsonLine(json, "portfolio_scaling", name)
            .field("threads", static_cast<std::uint64_t>(n))
            .field("sharing", sharing ? "on" : "off")
            .field("ms", ms)
            .field("speedup", ms > 0 ? serialMs / ms : 0.0)
            .field("verdict", verdict_name(pr.result()))
            .field("winner", winner)
            .emit();
      }
    }
  }
  return 0;
}
