// portfolio_scaling: portfolio verification speedup vs. member count,
// with and without learned-clause sharing.
//
// For the IEEE 30- and 57-bus verification scenarios, runs the serial
// verify() baseline and then racing portfolios of 1, 2, 4 and 8 members,
// each member count once with sharing off and once with the clause channel
// on. Speedup is serial_ms / portfolio_ms for the same scenario. Because
// all members are sound and complete — and shared clauses are implied by
// the common formula — the verdict column must be constant down each
// scenario's block, a cheap cross-check that neither racing nor sharing
// changes the answer. On a single-core host the speedup measures
// diversification plus sharing (another member's learnt clauses pruning
// this member's search), not parallelism; with real cores the effects
// combine.
//
// --mode cube switches to the cube-and-conquer comparison instead: for
// all-UNSAT fig4d-style instances (full measurement plan, mid-grid target,
// max_altered_measurements below the 4-measurement floor) on ieee57,
// ieee300 and synth1000, it runs the serial baseline, 8-member racing
// portfolios with sharing off/on, and the 8-thread cube-and-conquer
// portfolio. Racing cannot beat serial on UNSAT — every member must
// re-refute the whole space, so the race finishes with the single fastest
// member — while cubes partition the space into disjoint subproblems whose
// refutations run (and finish) in parallel. The verdict column must still
// be constant down each block.
//
// --json adds one machine-readable line per row (BENCH_smt.json keeps the
// before/after baseline).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/scenario.h"
#include "grid/synthetic.h"
#include "runtime/portfolio.h"

using namespace psse;

namespace {

const char* verdict_name(smt::SolveResult r) {
  switch (r) {
    case smt::SolveResult::Sat:
      return "SAT";
    case smt::SolveResult::Unsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

constexpr double kTimeLimitSeconds = 300;

smt::Budget bench_budget() {
  smt::Budget b;
  b.max_time = std::chrono::milliseconds(
      static_cast<long>(kTimeLimitSeconds * 1000));
  return b;
}

/// The cube-and-conquer comparison: all-UNSAT instances where racing is
/// structurally pointless and partitioning is the only parallel win.
int run_cube_mode(bool json, const obs::Config& trace,
                  const std::string& only) {
  bench::header("Cube-and-conquer vs racing on UNSAT verification",
                "racing repeats one refutation per member; cubes split the "
                "space so the refutation itself parallelises");
  std::printf("%-12s %-10s %8s %10s %8s %8s %6s %-14s\n", "system", "mode",
              "sharing", "ms", "speedup", "verdict", "cubes", "winner");

  for (const char* name : {"ieee57", "ieee300", "synth1000"}) {
    if (!only.empty() && only != name) continue;
    grid::Grid g = std::strncmp(name, "synth", 5) == 0
                       ? grid::cases::synthetic_by_name(name)
                       : grid::cases::by_name(name);
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    core::AttackSpec spec;
    spec.target_states = {g.num_buses() / 2};
    spec.max_altered_measurements = 3;  // below the 4-measurement floor
    core::UfdiAttackModel model(g, plan, spec);

    core::VerificationResult serial = model.verify(bench_budget());
    const double serialMs = serial.seconds * 1000.0;
    std::printf("%-12s %-10s %8s %10.1f %8.2f %8s %6s %-14s\n", name,
                "serial", "-", serialMs, 1.0, verdict_name(serial.result),
                "-", "serial");
    std::fflush(stdout);
    bench::JsonLine(json, "portfolio_cube", name)
        .field("mode", "serial")
        .field("threads", std::uint64_t{0})
        .field("ms", serialMs)
        .field("speedup", 1.0)
        .field("verdict", verdict_name(serial.result))
        .emit();

    double bestRaceMs = 0;  // best (smallest) racing wall time
    for (bool sharing : {false, true}) {
      runtime::PortfolioOptions popt;
      popt.num_threads = 8;
      popt.budget = bench_budget();
      popt.share_clauses = sharing;
      runtime::PortfolioResult pr = runtime::verify_portfolio(model, popt);
      const double ms = pr.seconds * 1000.0;
      if (ms > 0 && (bestRaceMs == 0 || ms < bestRaceMs)) bestRaceMs = ms;
      std::printf("%-12s %-10s %8s %10.1f %8.2f %8s %6s %-14s\n", name,
                  "race", sharing ? "on" : "off", ms,
                  ms > 0 ? serialMs / ms : 0.0, verdict_name(pr.result()),
                  "-", "none");
      std::fflush(stdout);
      bench::JsonLine(json, "portfolio_cube", name)
          .field("mode", "race")
          .field("threads", std::uint64_t{8})
          .field("sharing", sharing ? "on" : "off")
          .field("ms", ms)
          .field("speedup", ms > 0 ? serialMs / ms : 0.0)
          .field("verdict", verdict_name(pr.result()))
          .emit();
    }

    runtime::PortfolioOptions popt;
    popt.num_threads = 8;
    popt.budget = bench_budget();
    popt.mode = runtime::PortfolioMode::kCubeAndConquer;
    popt.trace = trace;
    runtime::PortfolioResult pr = runtime::verify_portfolio(model, popt);
    const double ms = pr.seconds * 1000.0;
    char cubes[32];
    std::snprintf(cubes, sizeof cubes, "%llu/%llu",
                  static_cast<unsigned long long>(pr.cubes_refuted),
                  static_cast<unsigned long long>(pr.cubes_generated));
    std::printf("%-12s %-10s %8s %10.1f %8.2f %8s %6s vs-race %.2fx\n",
                name, "cube", "on", ms, ms > 0 ? serialMs / ms : 0.0,
                verdict_name(pr.result()), cubes,
                ms > 0 ? bestRaceMs / ms : 0.0);
    std::fflush(stdout);
    bench::JsonLine(json, "portfolio_cube", name)
        .field("mode", "cube")
        .field("threads", std::uint64_t{8})
        .field("ms", ms)
        .field("speedup", ms > 0 ? serialMs / ms : 0.0)
        .field("speedup_vs_race", ms > 0 ? bestRaceMs / ms : 0.0)
        .field("cubes_generated", pr.cubes_generated)
        .field("cubes_refuted", pr.cubes_refuted)
        .field("verdict", verdict_name(pr.result()))
        .emit();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  std::string dataDir = PSSE_DATA_DIR;
  std::string only;
  bool cubeMode = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--mode" && i + 1 < argc) {
      cubeMode = std::string(argv[++i]) == "cube";
    } else if (arg == "--only" && i + 1 < argc) {
      only = argv[++i];
    } else if (arg == "--trace" && i + 1 < argc) {
      ++i;  // consumed by bench::trace_sink
    } else if (arg != "--json") {
      dataDir = arg;
    }
  }
  if (cubeMode) return run_cube_mode(json, obs::Config{sink.get()}, only);
  const std::vector<std::string> scenarios = {"ieee30_verification",
                                              "ieee57_verification"};
  const std::vector<std::size_t> memberCounts = {1, 2, 4, 8};

  bench::header("Portfolio verification scaling",
                "racing diversified members (and sharing their learnt "
                "clauses) shortens wall time without changing the verdict");
  std::printf("%-22s %8s %8s %10s %8s %8s %-18s\n", "scenario", "members",
              "sharing", "ms", "speedup", "verdict", "winner");

  for (const std::string& name : scenarios) {
    core::Scenario sc;
    try {
      sc = core::Scenario::load(dataDir + "/" + name + ".scn");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    core::UfdiAttackModel model(sc.grid, sc.plan, sc.spec);

    core::VerificationResult serial = model.verify(bench_budget());
    const double serialMs = serial.seconds * 1000.0;
    std::printf("%-22s %8s %8s %10.1f %8.2f %8s %-18s\n", name.c_str(),
                "serial", "-", serialMs, 1.0, verdict_name(serial.result),
                "serial");
    bench::JsonLine(json, "portfolio_scaling", name)
        .field("threads", std::uint64_t{0})
        .field("sharing", "off")
        .field("ms", serialMs)
        .field("speedup", 1.0)
        .field("verdict", verdict_name(serial.result))
        .field("winner", "serial")
        .emit();

    for (std::size_t n : memberCounts) {
      for (bool sharing : {false, true}) {
        runtime::PortfolioOptions popt;
        popt.num_threads = n;
        popt.budget = bench_budget();
        popt.share_clauses = sharing;
        runtime::PortfolioResult pr = runtime::verify_portfolio(model, popt);
        const double ms = pr.seconds * 1000.0;
        const std::string winner =
            pr.winner >= 0
                ? pr.members[static_cast<std::size_t>(pr.winner)].label
                : "none";
        std::printf("%-22s %8zu %8s %10.1f %8.2f %8s %-18s\n", name.c_str(),
                    n, sharing ? "on" : "off", ms,
                    ms > 0 ? serialMs / ms : 0.0, verdict_name(pr.result()),
                    winner.c_str());
        std::fflush(stdout);
        bench::JsonLine(json, "portfolio_scaling", name)
            .field("threads", static_cast<std::uint64_t>(n))
            .field("sharing", sharing ? "on" : "off")
            .field("ms", ms)
            .field("speedup", ms > 0 ? serialMs / ms : 0.0)
            .field("verdict", verdict_name(pr.result()))
            .field("winner", winner)
            .emit();
      }
    }
  }
  return 0;
}
