// portfolio_scaling: portfolio verification speedup vs. member count.
//
// For the IEEE 30- and 57-bus verification scenarios, runs the serial
// verify() baseline and then racing portfolios of 1, 2, 4 and 8 members,
// printing one JSON line per configuration:
//
//   {"bench":"portfolio_scaling","scenario":"ieee57_verification",
//    "threads":4,"ms":812.4,"speedup":1.62,"verdict":"SAT",
//    "winner":"agile-restarts"}
//
// Speedup is serial_ms / portfolio_ms for the same scenario. Because all
// members are sound and complete, the verdict column must be constant down
// each scenario's block — a cheap cross-check that racing never changes
// the answer. On a single-core host the speedup measures diversification
// (a non-default configuration finding the answer in fewer steps), not
// parallelism; with real cores both effects combine.
#include <cstdio>
#include <string>
#include <vector>

#include "core/attack_model.h"
#include "core/scenario.h"
#include "runtime/portfolio.h"

using namespace psse;

namespace {

const char* verdict_name(smt::SolveResult r) {
  switch (r) {
    case smt::SolveResult::Sat:
      return "SAT";
    case smt::SolveResult::Unsat:
      return "UNSAT";
    default:
      return "UNKNOWN";
  }
}

constexpr double kTimeLimitSeconds = 300;

smt::Budget bench_budget() {
  smt::Budget b;
  b.max_time = std::chrono::milliseconds(
      static_cast<long>(kTimeLimitSeconds * 1000));
  return b;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dataDir = PSSE_DATA_DIR;
  if (argc == 2) dataDir = argv[1];
  const std::vector<std::string> scenarios = {"ieee30_verification",
                                              "ieee57_verification"};
  const std::vector<std::size_t> memberCounts = {1, 2, 4, 8};

  for (const std::string& name : scenarios) {
    core::Scenario sc;
    try {
      sc = core::Scenario::load(dataDir + "/" + name + ".scn");
    } catch (const std::exception& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
    core::UfdiAttackModel model(sc.grid, sc.plan, sc.spec);

    core::VerificationResult serial = model.verify(bench_budget());
    const double serialMs = serial.seconds * 1000.0;
    std::printf(
        "{\"bench\":\"portfolio_scaling\",\"scenario\":\"%s\","
        "\"threads\":0,\"ms\":%.1f,\"speedup\":1.00,\"verdict\":\"%s\","
        "\"winner\":\"serial\"}\n",
        name.c_str(), serialMs, verdict_name(serial.result));

    for (std::size_t n : memberCounts) {
      runtime::PortfolioOptions popt;
      popt.num_threads = n;
      popt.budget = bench_budget();
      runtime::PortfolioResult pr = runtime::verify_portfolio(model, popt);
      const double ms = pr.seconds * 1000.0;
      const std::string winner =
          pr.winner >= 0
              ? pr.members[static_cast<std::size_t>(pr.winner)].label
              : "none";
      std::printf(
          "{\"bench\":\"portfolio_scaling\",\"scenario\":\"%s\","
          "\"threads\":%zu,\"ms\":%.1f,\"speedup\":%.2f,"
          "\"verdict\":\"%s\",\"winner\":\"%s\"}\n",
          name.c_str(), n, ms, ms > 0 ? serialMs / ms : 0.0,
          verdict_name(pr.result()), winner.c_str());
      std::fflush(stdout);
    }
  }
  return 0;
}
