// Screened vs unscreened service sweep: single-line poisoning x T_CZ on
// the IEEE 300-bus system (the PR 8 acceptance experiment).
//
// Each family point secures every taken measurement EXCEPT the two flow
// meters of one "poisoned" line, and asks whether the mid-grid state can
// still be stealthily shifted under a T_CZ cap. The rest of the plan pins
// the whole state estimate, so every point is UNSAT — exactly the workload
// the LP-relaxation screen is built for: one warm LP query per secured
// set (shared across all T_CZ values via the cap-free screen memo) versus
// one full SMT solve per point.
//
// The bench runs the identical request list twice through
// service::AnalyticsService — screening on, then off — asserts the
// verdicts are bit-identical, and reports the wall-clock ratio. Exit
// status 1 on any verdict mismatch, so CI can use it as a soundness
// check. Default is a line subsample (every 8th line); --full sweeps all
// lines. With --json one machine-readable summary line is emitted
// (recorded as the pr8_* rows of BENCH_smt.json).
#include <chrono>
#include <cstdio>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "service/analytics_service.h"

using namespace psse;

namespace {

struct RunStats {
  std::vector<smt::SolveResult> verdicts;
  double wall_seconds = 0;
  std::uint64_t screened = 0;
  double screen_seconds = 0;
};

RunStats run_suite(const std::vector<service::ServiceRequest>& requests,
                   bool screen) {
  service::ServiceOptions opt;
  opt.threads = 1;  // serial: wall-clock compares solver work, not cores
  opt.memo_capacity = 0;  // every point must be solved, not memoised
  opt.screen = screen;
  service::AnalyticsService svc(opt);
  RunStats stats;
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::future<service::ServiceResponse>> futures;
  futures.reserve(requests.size());
  for (const service::ServiceRequest& req : requests) {
    futures.push_back(svc.submit(req));
  }
  for (std::future<service::ServiceResponse>& f : futures) {
    service::ServiceResponse r = f.get();
    if (!r.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", r.id.c_str(),
                   r.error.c_str());
      std::exit(1);
    }
    stats.verdicts.push_back(r.verdict);
    if (r.screened) ++stats.screened;
    stats.screen_seconds += r.screen_seconds;
  }
  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  bool full = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) full = true;
  }
  bench::header("screen sweep - single-line poisoning x T_CZ (ieee300)",
                "LP screening answers the all-UNSAT sweep >=3x faster than "
                "per-point SMT solves, with bit-identical verdicts");

  grid::Grid g = grid::cases::by_name("ieee300");
  grid::MeasurementPlan fullPlan(g.num_lines(), g.num_buses());
  const int target = g.num_buses() / 2;
  const int stride = full ? 1 : 8;
  const std::vector<int> tcz = {2, 4, 6, 8};

  std::vector<service::ServiceRequest> requests;
  for (int line = 0; line < g.num_lines(); line += stride) {
    // Secure everything except the poisoned line's two flow meters; the
    // remaining plan still pins the whole estimate, so no cap admits an
    // attack.
    grid::MeasurementPlan plan = fullPlan;
    for (grid::MeasId m = 0; m < plan.num_potential(); ++m) {
      if (plan.taken(m)) plan.set_secured(m, true);
    }
    plan.set_secured(plan.forward_flow(line), false);
    plan.set_secured(plan.backward_flow(line), false);
    for (int cap : tcz) {
      service::ServiceRequest req;
      req.id = "l" + std::to_string(line) + "/t" + std::to_string(cap);
      req.scenario.case_name = "ieee300";
      req.scenario.grid = g;
      req.scenario.plan = plan;
      req.scenario.spec.target_states = {target};
      req.scenario.spec.max_altered_measurements = cap;
      req.use_memo = false;
      requests.push_back(std::move(req));
    }
  }

  std::printf("suite: %zu requests (%d lines x %zu caps)\n",
              requests.size(),
              (g.num_lines() + stride - 1) / stride, tcz.size());
  const RunStats screened = run_suite(requests, /*screen=*/true);
  const RunStats unscreened = run_suite(requests, /*screen=*/false);

  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (screened.verdicts[i] != unscreened.verdicts[i]) {
      std::fprintf(stderr,
                   "VERDICT MISMATCH at %s: screened=%s unscreened=%s\n",
                   requests[i].id.c_str(),
                   smt::to_cstring(screened.verdicts[i]),
                   smt::to_cstring(unscreened.verdicts[i]));
      return 1;
    }
  }

  const double speedup =
      screened.wall_seconds > 0
          ? unscreened.wall_seconds / screened.wall_seconds
          : 0;
  std::printf("screened:   %8.1f ms (%llu/%zu answered by screen, "
              "%.1f ms in LP)\n",
              screened.wall_seconds * 1000.0,
              static_cast<unsigned long long>(screened.screened),
              requests.size(), screened.screen_seconds * 1000.0);
  std::printf("unscreened: %8.1f ms\n", unscreened.wall_seconds * 1000.0);
  std::printf("speedup: %.2fx, verdicts identical across %zu requests\n",
              speedup, requests.size());

  bench::JsonLine line(json, "screen_sweep", "ieee300");
  line.field("requests", static_cast<std::uint64_t>(requests.size()))
      .field("screened", screened.screened)
      .field("screened_ms", screened.wall_seconds * 1000.0)
      .field("unscreened_ms", unscreened.wall_seconds * 1000.0)
      .field("speedup", speedup)
      .field("verdicts_identical", std::uint64_t{1});
  line.emit();
  return 0;
}
