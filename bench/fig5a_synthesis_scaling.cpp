// Fig. 5(a): countermeasure-synthesis time vs bus-system size, with 90%
// and 100% of the potential measurements taken.
#include "bench_util.h"

using namespace psse;

namespace {

double synth_seconds(const grid::Grid& g, const grid::MeasurementPlan& plan,
                     const obs::Config& trace, bool seeding,
                     core::SynthesisResult* out = nullptr) {
  core::AttackSpec spec;  // worst-case adversary, as in Section IV-E scen. 2
  core::UfdiAttackModel model(g, plan, spec);
  core::SynthesisOptions opt;
  opt.max_secured_buses = g.num_buses();
  opt.must_secure = {0};
  opt.time_limit_seconds = 600;
  opt.graph_seeding = seeding;
  opt.trace = trace;
  core::SecurityArchitectureSynthesizer syn(model, opt);
  core::SynthesisResult r = syn.synthesize();
  if (out != nullptr) *out = r;
  return r.seconds;
}

}  // namespace

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  const bool seeding = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 5(a) - synthesis time vs problem size",
                "quadratic-order growth; much slower than one verification "
                "because the loop verifies many candidates");
  std::printf("%-10s %12s %12s %10s %10s\n", "system", "90%(s)", "100%(s)",
              "arch size", "candidates");
  for (const char* name : {"ieee14", "ieee30", "ieee57", "ieee118"}) {
    grid::Grid g = grid::cases::by_name(name);
    grid::MeasurementPlan p90 = bench::observable_fraction_plan(g, 0.9, 5);
    grid::MeasurementPlan p100(g.num_lines(), g.num_buses());
    double t90 = synth_seconds(g, p90, trace, seeding);
    core::SynthesisResult full;
    double t100 = synth_seconds(g, p100, trace, seeding, &full);
    std::printf("%-10s %12.2f %12.2f %10zu %10d\n", name, t90, t100,
                full.secured_buses.size(), full.candidates_tried);
    bench::JsonLine(json, "fig5a", name)
        .field("s90", t90)
        .field("s100", t100)
        .field("arch_size",
               static_cast<std::uint64_t>(full.secured_buses.size()))
        .field("candidates",
               static_cast<std::uint64_t>(full.candidates_tried))
        .emit();
    std::fflush(stdout);
  }
  return 0;
}
