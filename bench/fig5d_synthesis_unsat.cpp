// Fig. 5(d): synthesis time in unsatisfiable cases (IEEE 30-bus).
//
// Two attacker scenarios with different minimum-viable architecture sizes;
// for operator budgets below the minimum, the synthesiser must refute
// every candidate, and the paper observes the refutation time climbing as
// the budget approaches the minimum from below.
#include "bench_util.h"

using namespace psse;

namespace {

int find_minimum(core::UfdiAttackModel& model) {
  core::SynthesisOptions opt;
  opt.must_secure = {0};
  opt.time_limit_seconds = 600;
  core::SecurityArchitectureSynthesizer syn(model, opt);
  core::SynthesisResult r =
      syn.synthesize_minimal(model.grid().num_buses());
  return r.found() ? static_cast<int>(r.secured_buses.size()) : -1;
}

}  // namespace

int main(int argc, char** argv) {
  const bool seeding = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 5(d) - synthesis time in unsatisfiable cases",
                "refuting 'no architecture within budget' takes longer the "
                "closer the budget is to the minimum viable size");
  grid::Grid g = grid::cases::ieee30();
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());

  struct Scenario {
    const char* name;
    core::AttackSpec spec;
  };
  // Matches the paper's setup: one scenario whose minimum viable plan is
  // 10 buses, another where it is 12.
  core::AttackSpec weaker;
  weaker.max_altered_measurements = 8;  // minimum architecture: 10 buses
  core::AttackSpec strong;              // minimum architecture: 12 buses
  Scenario scenarios[] = {{"T_CZ=8 adversary (min 10)", weaker},
                          {"unlimited adversary (min 12)", strong}};

  for (const Scenario& sc : scenarios) {
    core::UfdiAttackModel model(g, plan, sc.spec);
    int minimum = find_minimum(model);
    std::printf("%s: minimum viable architecture = %d buses\n", sc.name,
                minimum);
    std::printf("%-10s %12s %12s %12s\n", "budget", "time(s)", "candidates",
                "result");
    for (int budget = std::max(1, minimum - 4); budget < minimum; ++budget) {
      core::SynthesisOptions opt;
      opt.max_secured_buses = budget;
      opt.must_secure = {0};
      opt.time_limit_seconds = 600;
      opt.graph_seeding = seeding;
      opt.trace = trace;
      core::SecurityArchitectureSynthesizer syn(model, opt);
      core::SynthesisResult r = syn.synthesize();
      const char* status =
          r.status == core::SynthesisResult::Status::NoArchitecture
              ? "no-arch"
              : r.status == core::SynthesisResult::Status::Found ? "found"
                                                                 : "timeout";
      std::printf("%-10d %12.2f %12d %12s\n", budget, r.seconds,
                  r.candidates_tried, status);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
