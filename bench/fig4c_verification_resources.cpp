// Fig. 4(c): verification time vs the attacker's resource limit T_CZ
// (max simultaneously altered measurements), IEEE 14- and 30-bus. With
// --json each cell emits one machine-readable line with the verdict and
// the per-phase wall-time split.
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool json = bench::json_enabled(argc, argv);
  const bool screen = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 4(c) - verification time vs attacker resource limit",
                "time decreases as the limit relaxes and flattens once the "
                "resources suffice (~20 measurements)");
  std::printf("%-8s %14s %6s %14s %6s\n", "T_CZ", "ieee14(ms)", "sat?",
              "ieee30(ms)", "sat?");
  for (int tcz : {4, 6, 8, 10, 12, 14, 16, 20, 24, 28}) {
    std::printf("%-8d", tcz);
    std::vector<std::pair<std::string, core::VerificationResult>> cells;
    for (const char* name : {"ieee14", "ieee30"}) {
      grid::Grid g = grid::cases::by_name(name);
      grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
      core::AttackSpec spec;
      spec.target_states = {g.num_buses() - 1};
      spec.max_altered_measurements = tcz;
      core::VerificationResult r =
          bench::verify_run(g, plan, spec, 600, trace);
      std::printf(" %14.1f %6s", r.seconds * 1000.0,
                  r.feasible() ? "sat" : "unsat");
      cells.emplace_back(name, std::move(r));
    }
    std::printf("\n");
    // JSON after the table row so the two output styles never interleave.
    for (const auto& [name, r] : cells) {
      grid::Grid g = grid::cases::by_name(name.c_str());
      grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
      core::AttackSpec spec;
      spec.target_states = {g.num_buses() - 1};
      spec.max_altered_measurements = tcz;
      bench::JsonLine line(json, "fig4c",
                           name + "/t" + std::to_string(tcz));
      line.field("ms", r.seconds * 1000.0)
          .field("verdict", r.feasible() ? "sat" : "unsat");
      bench::screen_fields(line, g, plan, spec, screen && json);
      bench::phase_fields(line, r.phase_times).emit();
    }
    std::fflush(stdout);
  }
  return 0;
}
