// Fig. 5(b): synthesis time vs the number of taken measurements, IEEE 30-
// and 57-bus.
#include "bench_util.h"

using namespace psse;

int main(int argc, char** argv) {
  const bool seeding = !bench::no_screen_enabled(argc, argv);
  auto sink = bench::trace_sink(argc, argv);
  const obs::Config trace{sink.get()};
  bench::header("Fig. 5(b) - synthesis time vs taken measurements",
                "time increases roughly linearly with the measurement "
                "percentage (candidate selection is bus-based; only the "
                "inner verification grows)");
  std::printf("%-10s %12s %12s\n", "taken%", "ieee30(s)", "ieee57(s)");
  for (int pct : {70, 80, 90, 100}) {
    std::printf("%-10d", pct);
    for (const char* name : {"ieee30", "ieee57"}) {
      grid::Grid g = grid::cases::by_name(name);
      std::vector<double> ts;
      for (std::uint64_t seed : {11u, 23u, 47u}) {
        grid::MeasurementPlan plan =
            bench::observable_fraction_plan(g, pct / 100.0, seed);
        core::AttackSpec spec;
        core::UfdiAttackModel model(g, plan, spec);
        core::SynthesisOptions opt;
        opt.max_secured_buses = g.num_buses();
        opt.must_secure = {0};
        opt.time_limit_seconds = 600;
        opt.graph_seeding = seeding;
        opt.trace = trace;
        core::SecurityArchitectureSynthesizer syn(model, opt);
        ts.push_back(syn.synthesize().seconds);
      }
      std::printf(" %12.2f", bench::median(ts));
    }
    std::printf("\n");
    std::fflush(stdout);
  }
  return 0;
}
