// Shared helpers for the figure/table reproduction benches.
//
// Each bench binary regenerates one table or figure of the paper's
// evaluation (Section V) and prints the series as aligned columns plus the
// paper's qualitative expectation, so paper-vs-measured comparison is a
// side-by-side read (EXPERIMENTS.md records one such run).
#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <numeric>
#include <string>
#include <string_view>
#include <vector>

#include "core/attack_model.h"
#include "core/attack_spec.h"
#include "core/synthesis.h"
#include "estimation/observability.h"
#include "grid/ieee_cases.h"
#include "grid/measurement.h"
#include "obs/json_writer.h"
#include "obs/trace.h"
#include "screen/lp_screen.h"

namespace psse::bench {

/// The attacker's target states for the Fig. 4(a) "three experiments":
/// deterministic spread-out choices (#1 near the far end, #2 mid-grid,
/// #3 a pair of adjacent states).
inline std::vector<core::AttackSpec> standard_targets(const grid::Grid& g) {
  const int b = g.num_buses();
  core::AttackSpec far;
  far.target_states = {b - 1};
  core::AttackSpec mid;
  mid.target_states = {b / 2};
  core::AttackSpec pair;
  pair.target_states = {b / 3, b / 3 + 1};
  return {far, mid, pair};
}

/// A measurement plan with `fraction` of the potential measurements taken,
/// re-seeded until the configuration stays observable (the paper sweeps
/// 70%-100%, where a blind draw is occasionally unobservable).
inline grid::MeasurementPlan observable_fraction_plan(const grid::Grid& g,
                                                      double fraction,
                                                      std::uint64_t seed) {
  for (std::uint64_t attempt = 0; attempt < 50; ++attempt) {
    grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
    plan.keep_fraction(fraction, seed + attempt * 1000003);
    if (est::check_observability(g, plan).observable) return plan;
  }
  throw grid::GridError("observable_fraction_plan: no observable draw");
}

/// One full verification run (the model is rebuilt each time, as the
/// paper's per-run measurements do); the result carries timing and the
/// solver statistics (pivot count, footprint) for machine-readable output.
inline core::VerificationResult verify_run(const grid::Grid& g,
                                           const grid::MeasurementPlan& p,
                                           const core::AttackSpec& spec,
                                           double timeLimitSeconds = 600,
                                           const obs::Config& trace = {},
                                           bool exactSimplex = false,
                                           bool etaTableau = true) {
  core::UfdiAttackModel model(g, p, spec);
  model.set_trace(trace);
  // Phase timing stays on regardless of tracing: the --json rows report the
  // encode/simplex/tprop split, so a filter regression is attributable
  // without a separate trace pass.
  model.enable_phase_timing(true);
  if (exactSimplex || !etaTableau) {
    smt::SimplexOptions so = model.simplex_options();
    if (exactSimplex) so.float_filter = false;
    so.eta_tableau = etaTableau;
    model.set_simplex_options(so);
  }
  smt::Budget budget;
  budget.max_time = std::chrono::milliseconds(
      static_cast<long>(timeLimitSeconds * 1000));
  return model.verify(budget);
}

/// Milliseconds of a verification run.
inline double verify_ms(const grid::Grid& g, const grid::MeasurementPlan& p,
                        const core::AttackSpec& spec,
                        double timeLimitSeconds = 600,
                        const obs::Config& trace = {},
                        bool exactSimplex = false, bool etaTableau = true) {
  return verify_run(g, p, spec, timeLimitSeconds, trace, exactSimplex,
                    etaTableau)
             .seconds * 1000.0;
}

/// True when the bench was invoked with `--json`: each case then emits one
/// machine-readable line alongside the human-readable columns, so runs can
/// be recorded and diffed (BENCH_smt.json keeps the before/after baseline).
inline bool json_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--json") return true;
  }
  return false;
}

/// Builder for one JSON result line:
///   {"bench":"fig4a","case":"ieee57","ms":6.8,"pivots":1042}
/// Keys and string values are escaped per RFC 8259 (scenario names come
/// from the command line and may contain anything); emit() prints the line
/// iff enabled.
class JsonLine {
 public:
  JsonLine(bool enabled, std::string_view bench, std::string_view caseName)
      : enabled_(enabled) {
    writer_.field("bench", bench);
    writer_.field("case", caseName);
  }

  JsonLine& field(std::string_view key, double v) {
    writer_.field(key, v);
    return *this;
  }

  JsonLine& field(std::string_view key, std::uint64_t v) {
    writer_.field(key, v);
    return *this;
  }

  JsonLine& field(std::string_view key, std::string_view v) {
    writer_.field(key, v);
    return *this;
  }

  void emit() {
    if (!enabled_) return;
    std::printf("%s\n", writer_.str().c_str());
    std::fflush(stdout);
  }

 private:
  bool enabled_;
  obs::JsonWriter writer_;
};

/// True when invoked with `--exact-simplex`: the fig4 benches then disable
/// the theory solver's float filter (SimplexOptions::float_filter) — ci.sh
/// runs the fig4a smoke both ways and asserts verdict equality.
inline bool exact_simplex_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--exact-simplex") return true;
  }
  return false;
}

/// True when invoked with `--no-eta`: the fig4 benches then disable the
/// eta-factorised tableau (SimplexOptions::eta_tableau), reverting to eager
/// row substitution — ci.sh cross-checks the two modes for verdict
/// equality.
inline bool no_eta_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--no-eta") return true;
  }
  return false;
}

/// True when invoked with `--synthetic`: fig4a additionally runs the large
/// synthetic grids (600/1000/1500 buses) after the IEEE cases — the scaling
/// series DESIGN/EXPERIMENTS track, kept opt-in so the default smoke stays
/// fast.
inline bool synthetic_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--synthetic") return true;
  }
  return false;
}

/// True when invoked with `--no-screen`: benches and tools that run the
/// LP-relaxation screen in front of verification then skip it (the escape
/// hatch ci.sh uses for the screened-vs-unscreened verdict cross-check).
inline bool no_screen_enabled(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--no-screen") return true;
  }
  return false;
}

/// Runs the LP-relaxation screen over one experiment and appends its
/// verdict and cost to the row ("screened" = the screen alone proved the
/// scenario unsat; the SMT verdict in the same row must then agree).
/// `enabled` false records screened=false at zero cost.
inline JsonLine& screen_fields(JsonLine& line, const grid::Grid& g,
                               const grid::MeasurementPlan& p,
                               const core::AttackSpec& spec, bool enabled) {
  bool screened = false;
  double us = 0;
  if (enabled) {
    screen::LpScreen s(g, p, spec);
    const screen::ScreenResult r = s.screen(core::ScenarioDelta::of(spec));
    screened = r.verdict == screen::ScreenVerdict::kInfeasible;
    us = r.seconds * 1e6;
  }
  line.field("screened", screened ? std::uint64_t{1} : std::uint64_t{0})
      .field("screen_us", static_cast<std::uint64_t>(us));
  return line;
}

/// Accumulates one run's phase split into a cell aggregate (for benches
/// whose JSON rows summarise several runs).
inline void accumulate_phases(obs::PhaseTimes& into,
                              const obs::PhaseTimes& run) {
  into.encode_us += run.encode_us;
  into.propagate_us += run.propagate_us;
  into.simplex_us += run.simplex_us;
  into.tprop_us += run.tprop_us;
  into.theory_us += run.theory_us;
  into.ftran_us += run.ftran_us;
  into.btran_us += run.btran_us;
}

/// Appends the per-phase wall-time split of one verification run to a JSON
/// row (microseconds; zero when the phase never ran).
inline JsonLine& phase_fields(JsonLine& line, const obs::PhaseTimes& pt) {
  line.field("encode_us", static_cast<std::uint64_t>(pt.encode_us))
      .field("simplex_us", static_cast<std::uint64_t>(pt.simplex_us))
      .field("tprop_us", static_cast<std::uint64_t>(pt.tprop_us))
      .field("theory_us", static_cast<std::uint64_t>(pt.theory_us))
      .field("ftran_us", static_cast<std::uint64_t>(pt.ftran_us))
      .field("btran_us", static_cast<std::uint64_t>(pt.btran_us));
  return line;
}

/// `--trace <file>` support for the benches: returns an open sink when the
/// flag is present (nullptr otherwise). Callers hold the unique_ptr for the
/// bench's lifetime and pass {sink.get()} as the obs::Config.
inline std::unique_ptr<obs::TraceSink> trace_sink(int argc, char** argv) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::string_view(argv[i]) == "--trace") {
      return obs::TraceSink::open(argv[i + 1]);
    }
  }
  return nullptr;
}

inline double mean(const std::vector<double>& xs) {
  return std::accumulate(xs.begin(), xs.end(), 0.0) /
         static_cast<double>(xs.size());
}

inline double median(std::vector<double> xs) {
  std::sort(xs.begin(), xs.end());
  std::size_t n = xs.size();
  return n % 2 == 1 ? xs[n / 2] : 0.5 * (xs[n / 2 - 1] + xs[n / 2]);
}

inline void header(const char* figure, const char* claim) {
  std::printf("== %s ==\npaper's expectation: %s\n\n", figure, claim);
}

}  // namespace psse::bench
