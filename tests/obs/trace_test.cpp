// Golden tests for the structured trace stream: a real CEGIS run must
// produce a journal that parses line-by-line and reconstructs the run's
// summary statistics exactly.
#include "obs/trace.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/synthesis.h"
#include "grid/ieee_cases.h"
#include "json_validate.h"

namespace psse {
namespace {

// Section IV-E measurement configuration (same as synthesis_test.cpp).
grid::MeasurementPlan scenario_plan(const grid::Grid& g) {
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  for (int id : {5, 10, 14, 19, 22, 27, 30, 35, 43, 52}) {
    plan.set_taken(id - 1, false);
  }
  return plan;
}

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Value of `"key":<token>` in a flat JSON line, raw (unquoted strings are
/// returned without quotes). Empty when the key is absent. Good enough for
/// the flat single-object lines the sink emits; the structural check is
/// done by the independent validator.
std::string field_of(const std::string& line, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = line.find(needle);
  if (at == std::string::npos) return "";
  std::size_t start = at + needle.size();
  if (line[start] == '"') {
    ++start;
    const std::size_t end = line.find('"', start);
    return line.substr(start, end - start);
  }
  if (line[start] == '[') {
    const std::size_t end = line.find(']', start);
    return line.substr(start, end - start + 1);
  }
  std::size_t end = start;
  while (end < line.size() && line[end] != ',' && line[end] != '}') ++end;
  return line.substr(start, end - start);
}

std::string temp_trace_path(const char* name) {
  return testing::TempDir() + name;
}

TEST(TraceGolden, CegisJournalReconstructsTheRun) {
  const std::string path = temp_trace_path("cegis_ieee14.jsonl");
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = scenario_plan(g);
  core::AttackSpec spec;  // full knowledge, unlimited resources
  core::UfdiAttackModel model(g, plan, spec);
  const std::uint64_t pivotsBefore = model.solver_stats().pivots;

  core::SynthesisResult r;
  {
    auto sink = obs::TraceSink::open(path);
    core::SynthesisOptions opt;
    opt.max_secured_buses = 5;
    opt.must_secure = {0};
    opt.time_limit_seconds = 300;
    opt.trace = {sink.get()};
    core::SecurityArchitectureSynthesizer syn(model, opt);
    r = syn.synthesize();
  }
  ASSERT_EQ(r.status, core::SynthesisResult::Status::Found);

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_FALSE(lines.empty());

  int iters = 0;
  int unsatVerdicts = 0;
  int doneEvents = 0;
  std::uint64_t journalPivots = 0;
  int lastIter = 0;
  for (const std::string& line : lines) {
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
    const std::string ev = field_of(line, "ev");
    ASSERT_FALSE(ev.empty()) << line;
    EXPECT_FALSE(field_of(line, "t_us").empty()) << line;
    if (ev == "cegis_iter") {
      ++iters;
      lastIter = std::stoi(field_of(line, "iter"));
      const std::string verdict = field_of(line, "verdict");
      EXPECT_TRUE(verdict == "sat" || verdict == "unsat") << line;
      if (verdict == "unsat") ++unsatVerdicts;
      journalPivots += std::stoull(field_of(line, "pivots"));
      EXPECT_FALSE(field_of(line, "candidate").empty()) << line;
      EXPECT_FALSE(field_of(line, "blocking").empty()) << line;
    } else if (ev == "cegis_done") {
      ++doneEvents;
      EXPECT_EQ(field_of(line, "status"), "found");
      EXPECT_EQ(std::stoi(field_of(line, "candidates_tried")),
                r.candidates_tried);
    }
  }

  // The journal reconstructs the run exactly: one line per candidate,
  // iterations numbered 1..N, the one blocking architecture is the single
  // UNSAT verdict, and the per-iteration pivot deltas sum to the solver's
  // lifetime pivot growth.
  EXPECT_EQ(iters, r.candidates_tried);
  EXPECT_EQ(lastIter, r.candidates_tried);
  EXPECT_EQ(unsatVerdicts, 1);
  EXPECT_EQ(doneEvents, 1);
  EXPECT_EQ(journalPivots, model.solver_stats().pivots - pivotsBefore);
}

TEST(TraceGolden, ParallelCegisJournalMatchesSerialSchema) {
  const std::string path = temp_trace_path("cegis_ieee14_par.jsonl");
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan = scenario_plan(g);
  core::AttackSpec spec;
  core::UfdiAttackModel model(g, plan, spec);

  core::SynthesisResult r;
  {
    auto sink = obs::TraceSink::open(path);
    core::SynthesisOptions opt;
    opt.max_secured_buses = 5;
    opt.must_secure = {0};
    opt.time_limit_seconds = 300;
    opt.parallel_candidates = 3;
    opt.trace = {sink.get()};
    core::SecurityArchitectureSynthesizer syn(model, opt);
    r = syn.synthesize();
  }
  ASSERT_EQ(r.status, core::SynthesisResult::Status::Found);

  int iters = 0;
  int doneEvents = 0;
  int prevIter = 0;
  for (const std::string& line : read_lines(path)) {
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
    const std::string ev = field_of(line, "ev");
    if (ev == "cegis_iter") {
      ++iters;
      // Candidate order, not completion order: iteration ids ascend.
      const int iter = std::stoi(field_of(line, "iter"));
      EXPECT_EQ(iter, prevIter + 1) << line;
      prevIter = iter;
    } else if (ev == "cegis_done") {
      ++doneEvents;
    }
  }
  EXPECT_EQ(iters, r.candidates_tried);
  EXPECT_EQ(doneEvents, 1);
}

TEST(TraceGolden, VerifyEmitsOneSolveEventPerCall) {
  const std::string path = temp_trace_path("verify_ieee14.jsonl");
  grid::Grid g = grid::cases::ieee14();
  grid::MeasurementPlan plan(g.num_lines(), g.num_buses());
  core::AttackSpec spec;
  core::UfdiAttackModel model(g, plan, spec);
  {
    auto sink = obs::TraceSink::open(path);
    model.set_trace({sink.get()});
    EXPECT_EQ(model.verify().result, smt::SolveResult::Sat);
    EXPECT_EQ(model.verify().result, smt::SolveResult::Sat);
  }
  model.set_trace({});  // detach before the sink goes away

  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 2u);
  for (const std::string& line : lines) {
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
    EXPECT_EQ(field_of(line, "ev"), "solve");
    EXPECT_EQ(field_of(line, "verdict"), "sat");
    // Phase timing is enabled alongside tracing; a full solve spends
    // nonzero time somewhere, and theory time includes simplex time.
    EXPECT_FALSE(field_of(line, "encode_us").empty());
    EXPECT_GE(std::stoll(field_of(line, "theory_us")),
              std::stoll(field_of(line, "simplex_us")));
  }
}

TEST(TraceSinkTest, OpenFailureThrows) {
  EXPECT_THROW(obs::TraceSink::open("/nonexistent-dir/x/y/trace.jsonl"),
               std::runtime_error);
}

TEST(TraceSinkTest, ConcurrentWritersNeverInterleaveMidLine) {
  const std::string path = temp_trace_path("concurrent.jsonl");
  {
    auto sink = obs::TraceSink::open(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&sink, t] {
        for (int i = 0; i < 200; ++i) {
          obs::Event("tick").field("thread", t).field("i", i).emit(*sink);
        }
      });
    }
    for (std::thread& t : threads) t.join();
  }
  const std::vector<std::string> lines = read_lines(path);
  ASSERT_EQ(lines.size(), 800u);
  for (const std::string& line : lines) {
    ASSERT_TRUE(test_json::is_valid_json(line)) << line;
    ASSERT_EQ(field_of(line, "ev"), "tick");
  }
}

}  // namespace
}  // namespace psse
