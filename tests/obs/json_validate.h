// Minimal RFC 8259 JSON validator for the trace/JSON-line tests.
//
// Deliberately independent of the production serializer (obs/json_writer.h)
// so escaping bugs there cannot hide behind a matching decoder bug here.
// Validates structure only; numbers are checked against the JSON grammar
// and strings against the escape rules, but values are not materialised.
#pragma once

#include <cctype>
#include <string_view>

namespace psse::test_json {

class Validator {
 public:
  explicit Validator(std::string_view text) : s_(text) {}

  /// True iff the whole input is exactly one valid JSON value.
  bool valid() {
    pos_ = 0;
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{':
        return object();
      case '[':
        return array();
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (peek() != '"' || !string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  bool string() {
    ++pos_;  // '"'
    while (pos_ < s_.size()) {
      unsigned char c = static_cast<unsigned char>(s_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        char e = s_[pos_];
        if (e == 'u') {
          for (int k = 1; k <= 4; ++k) {
            if (pos_ + static_cast<std::size_t>(k) >= s_.size() ||
                std::isxdigit(static_cast<unsigned char>(
                    s_[pos_ + static_cast<std::size_t>(k)])) == 0) {
              return false;
            }
          }
          pos_ += 5;
          continue;
        }
        if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' &&
            e != 'n' && e != 'r' && e != 't') {
          return false;
        }
        ++pos_;
        continue;
      }
      if (c < 0x20) return false;  // raw control chars are illegal
      ++pos_;
    }
    return false;  // unterminated
  }

  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (peek() == '0') {
      ++pos_;
    } else if (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    } else {
      return false;
    }
    if (peek() == '.') {
      ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (std::isdigit(static_cast<unsigned char>(peek())) == 0) return false;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  [[nodiscard]] char peek() const {
    return pos_ < s_.size() ? s_[pos_] : '\0';
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// One-shot convenience wrapper.
inline bool is_valid_json(std::string_view text) {
  return Validator(text).valid();
}

}  // namespace psse::test_json
