// LatencyHistogram: bucket geometry, quantile semantics, and concurrent
// recording.
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/histogram.h"

namespace psse::obs {
namespace {

TEST(LatencyHistogram, ExactBelowLinearRange) {
  for (std::uint64_t us = 0; us < LatencyHistogram::kLinearBuckets; ++us) {
    const int idx = LatencyHistogram::bucket_index(us);
    EXPECT_EQ(idx, static_cast<int>(us));
    EXPECT_EQ(LatencyHistogram::bucket_upper_bound(idx), us);
  }
}

TEST(LatencyHistogram, BucketsMonotoneAndCovering) {
  // Index is non-decreasing in the value, and every value is <= the upper
  // bound of its own bucket (quantiles never under-report).
  int prev = -1;
  for (std::uint64_t us = 0; us < (1ULL << 22); us = us * 2 + 1) {
    const int idx = LatencyHistogram::bucket_index(us);
    EXPECT_GE(idx, prev) << "us=" << us;
    EXPECT_LE(us, LatencyHistogram::bucket_upper_bound(idx)) << "us=" << us;
    EXPECT_LT(idx, LatencyHistogram::kNumBuckets);
    prev = idx;
  }
}

TEST(LatencyHistogram, RelativeErrorBoundedAboveLinearRange) {
  // Log-spaced buckets with 8 sub-buckets per octave: the upper bound
  // overshoots the value by at most one sub-bucket width (12.5% + 1).
  for (std::uint64_t us = LatencyHistogram::kLinearBuckets;
       us < (1ULL << 30); us = us * 5 / 4 + 3) {
    const std::uint64_t ub = LatencyHistogram::bucket_upper_bound(
        LatencyHistogram::bucket_index(us));
    EXPECT_GE(ub, us);
    EXPECT_LE(ub, us + us / 8 + 1) << "us=" << us;
  }
}

TEST(LatencyHistogram, HugeValuesClampToLastBucket) {
  const int last = LatencyHistogram::kNumBuckets - 1;
  EXPECT_EQ(LatencyHistogram::bucket_index(UINT64_MAX), last);
  EXPECT_EQ(LatencyHistogram::bucket_index(1ULL << 62), last);
}

TEST(LatencyHistogram, QuantilesOnKnownDistribution) {
  LatencyHistogram h;
  EXPECT_EQ(h.quantile_us(0.5), 0u);  // empty
  // 100 observations: 1..100 us (all in the exact range).
  for (std::uint64_t us = 1; us <= 100; ++us) h.record(us);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.quantile_us(0.5), 50u);
  EXPECT_EQ(h.quantile_us(0.95), 95u);
  EXPECT_EQ(h.quantile_us(0.99), 99u);
  EXPECT_EQ(h.quantile_us(1.0), 100u);
  EXPECT_EQ(h.quantile_us(0.0), 1u);
  // Monotone in q by construction.
  EXPECT_LE(h.quantile_us(0.5), h.quantile_us(0.95));
  EXPECT_LE(h.quantile_us(0.95), h.quantile_us(0.99));
}

TEST(LatencyHistogram, ResetClears) {
  LatencyHistogram h;
  h.record(10);
  h.record(1000);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_us(0.99), 0u);
}

TEST(LatencyHistogram, ConcurrentRecordersLoseNothing) {
  LatencyHistogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.record(static_cast<std::uint64_t>((t * 37 + i) % 1000));
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_GT(h.quantile_us(0.99), h.quantile_us(0.01));
}

}  // namespace
}  // namespace psse::obs
